# Tiny CI smoke program: count down and halt with exit code 0.
_start:
  li t0, 10
loop:
  addi t0, t0, -1
  bnez t0, loop
  halt t0
