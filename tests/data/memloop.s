# Memory-heavy CI guest: a load/store-dense copy loop plus mixed-width
# stores, used by the determinism ladder to compare the per-cycle, plain
# fast-step window and superblock stepping tiers byte-for-byte on a workload
# that lives on the trace tier's memory-slot fast path. Halts with the final
# self-checked checksum (0 on success) so every tier's result is checked, too.
_start:
  la t5, src
  la t6, dst
  li s0, 4000
loop:
  lw t0, 0(t5)
  addi t0, t0, 3
  sw t0, 0(t6)
  sh t0, 4(t6)
  sb t0, 8(t6)
  lbu t1, 8(t6)
  add s1, s1, t1
  addi s0, s0, -1
  bnez s0, loop
  li t2, 176000        # 4000 iterations x (41 + 3) accumulated via lbu
  bne s1, t2, fail
  halt zero
fail:
  li a0, 1
  halt a0
  .data
src:
  .word 41
dst:
  .word 0
  .word 0
  .word 0
