# Campaign-test guest: twelve accelerator calls accumulating in MRAM data
# (see campaign_mcode.s), one console byte per iteration, and a
# data-dependent halt code — so silent corruption of the counter changes the
# final architectural digest (registers, console stream and exit code) and
# the campaign classifier can tell masked from SDC.
  _start:
    li s0, 12                 # twelve accelerator calls of +5 each
    li s1, 0
    li s2, 0xF0003000         # console MMIO doorbell
  loop:
    li a0, 5
    menter 1                  # s1 = D_COUNT += 5
    mv s1, a0
    andi t0, s1, 63           # print a counter-derived byte each iteration
    addi t0, t0, 32
    sw t0, 0(s2)
    addi s0, s0, -1
    bnez s0, loop
    halt s1                   # expect 60 on a clean (or fully recovered) run
