# Campaign-test mcode: a counter accelerator whose state lives in the MRAM
# data segment (entry 1) plus a scrub-and-retry machine-check recovery
# mroutine (entry 2). The campaign tests delegate machine checks to entry 2
# (mcamp --mcheck-entry 2), so an injected MRAM parity error is repaired and
# the aborted accelerator call replays — detected_recovered — instead of
# stopping the machine.
#
# Unlike examples/fault_recovery.cc, the recovery mroutine here is
# architecturally TRANSPARENT: it stashes its one scratch GPR in a Metal
# register and restores it before mexit. The campaign classifier digests the
# full register file, so a handler that leaks scratch into x-registers would
# turn every recovered trial into a false SDC.
    .equ D_COUNT, 0           # accumulator in the MRAM data segment
    .equ CR_MEPC, 1
    .equ CR_MRAM_SCRUB, 52

    .mentry 1, count_add      # the "accelerator": D_COUNT += a0
    .mentry 2, mcheck_recover

  count_add:
    mld t0, D_COUNT(zero)     # parity-checked: corruption machine-checks here
    add t0, t0, a0
    mst t0, D_COUNT(zero)
    mv a0, t0
    mexit

  mcheck_recover:
    wcr CR_MRAM_SCRUB, zero   # repair: restore from the shadow copy
    wmr m30, t0               # transparent: preserve the guest's t0
    rcr t0, CR_MEPC           # retry: resume Metal mode at the faulting pc
    wmr m31, t0               # (mexit restores m31 from MCHECKM31 on re-entry)
    rmr t0, m30
    mexit
