// Custom page tables (paper §3.2): radix walk in mcode on TLB miss.
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "ext/cpt.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

constexpr uint32_t kRwx = kPteR | kPteW | kPteX;
constexpr uint32_t kTableRegion = 0x00400000;
constexpr uint32_t kTableRegionSize = 0x00100000;

class CptTest : public ::testing::Test {
 protected:
  // Loads a program and identity-maps its code/data pages, then activates.
  void Boot(const char* program_source, uint32_t os_fault_entry_symbol_value = 0) {
    system_ = std::make_unique<MetalSystem>();
    ASSERT_OK(CustomPageTable::Install(*system_, os_fault_entry_symbol_value));
    program_ = MustAssemble(program_source);
    ASSERT_OK(system_->LoadProgram(program_));
    ASSERT_OK(system_->Boot());
    cpt_ = std::make_unique<CustomPageTable>(core(), kTableRegion, kTableRegionSize);
    auto root = cpt_->CreateAddressSpace();
    ASSERT_OK(root.status());
    root_ = *root;
    // Identity-map the first 64 KiB (text at 0x1000) and the data region.
    for (uint32_t page = 0; page < 16; ++page) {
      ASSERT_OK(cpt_->Map(root_, page * 4096, page * 4096, kRwx));
    }
    for (uint32_t page = 0; page < 16; ++page) {
      const uint32_t addr = 0x00100000 + page * 4096;
      ASSERT_OK(cpt_->Map(root_, addr, addr, kPteR | kPteW));
    }
    ASSERT_OK(cpt_->Activate(root_));
    core().metal().WriteCreg(kCrPgEnable, 1);
  }
  Core& core() { return system_->core(); }
  MetalSystem& system() { return *system_; }

  std::unique_ptr<MetalSystem> system_;
  std::unique_ptr<CustomPageTable> cpt_;
  Program program_;
  uint32_t root_ = 0;
};

TEST_F(CptTest, WalkerRefillsOnMiss) {
  Boot(R"(
    _start:
      la t0, value
      lw a0, 0(t0)
      halt a0
    .data
    value: .word 31337
  )");
  MustHalt(system(), 31337);
  auto fills = cpt_->FillCount();
  ASSERT_OK(fills.status());
  EXPECT_GE(*fills, 2u);  // at least one fetch + one load miss
  EXPECT_GT(core().mmu().tlb().stats().misses, 0u);
}

TEST_F(CptTest, TranslationIsNotIdentityWhenMappedElsewhere) {
  Boot(R"(
    _start:
      li t0, 0x00A00000      # virtual address mapped to a different frame
      lw a0, 0(t0)
      halt a0
  )");
  // Map vaddr 0xA00000 -> paddr 0x00180000 where we planted a value.
  ASSERT_TRUE(core().bus().dram().Write32(0x00180000, 555));
  ASSERT_OK(cpt_->Map(root_, 0x00A00000, 0x00180000, kPteR));
  MustHalt(system(), 555);
}

TEST_F(CptTest, StoreThenLoadThroughMapping) {
  Boot(R"(
    _start:
      li t0, 0x00A00000
      li t1, 777
      sw t1, 0(t0)
      lw a0, 0(t0)
      halt a0
  )");
  ASSERT_OK(cpt_->Map(root_, 0x00A00000, 0x00180000, kPteR | kPteW));
  MustHalt(system(), 777);
  EXPECT_EQ(core().bus().dram().Read32(0x00180000), 777u);
}

TEST_F(CptTest, SuperpageMapping) {
  Boot(R"(
    _start:
      li t0, 0x00C12344      # inside a 4 MiB superpage at 0x00C00000
      lw a0, 0(t0)
      halt a0
  )");
  // Superpage 0x00C00000 -> physical 0x00000000; plant at offset 0x12344.
  ASSERT_TRUE(core().bus().dram().Write32(0x00012344, 888));
  ASSERT_OK(cpt_->Map(root_, 0x00C00000, 0x00000000, kPteR, 0, /*superpage=*/true));
  MustHalt(system(), 888);
}

TEST_F(CptTest, NotPresentFaultsToOs) {
  // The OS fault entry (in the program) halts with a recognizable code.
  const char* kProgram = R"(
    _start:
      li t0, 0x00B00000      # never mapped
      lw a0, 0(t0)
      halt zero
    os_fault:
      # a0 = faulting vaddr, a1 = faulting pc (from the walker)
      li a2, 0x00B00000
      bne a0, a2, wrong
      li a0, 0xAF
      halt a0
    wrong:
      li a0, 0x01
      halt a0
  )";
  system_ = std::make_unique<MetalSystem>();
  program_ = MustAssemble(kProgram);
  ASSERT_OK(CustomPageTable::Install(*system_, program_.symbols.at("os_fault")));
  ASSERT_OK(system_->LoadProgram(program_));
  ASSERT_OK(system_->Boot());
  cpt_ = std::make_unique<CustomPageTable>(core(), kTableRegion, kTableRegionSize);
  auto root = cpt_->CreateAddressSpace();
  ASSERT_OK(root.status());
  root_ = *root;
  for (uint32_t page = 0; page < 16; ++page) {
    ASSERT_OK(cpt_->Map(root_, page * 4096, page * 4096, kRwx));
  }
  ASSERT_OK(cpt_->Activate(root_));
  core().metal().WriteCreg(kCrPgEnable, 1);
  MustHalt(system(), 0xAF);
}

TEST_F(CptTest, UnmapInvalidatesAndFaults) {
  const char* kProgram = R"(
    _start:
      li t0, 0x00A00000
      lw a0, 0(t0)           # works: mapped
      li t1, 0xF0003004      # console EXIT latch: record first read
      sw a0, 0(t1)
      # spin long enough for the host to observe the latch and unmap
      li t2, 400
    spin:
      addi t2, t2, -1
      bnez t2, spin
      # second access faults to os_fault
      lw a0, 0(t0)
      halt zero
    os_fault:
      li a0, 0xAE
      halt a0
  )";
  system_ = std::make_unique<MetalSystem>();
  program_ = MustAssemble(kProgram);
  ASSERT_OK(CustomPageTable::Install(*system_, program_.symbols.at("os_fault")));
  ASSERT_OK(system_->LoadProgram(program_));
  ASSERT_OK(system_->Boot());
  cpt_ = std::make_unique<CustomPageTable>(core(), kTableRegion, kTableRegionSize);
  root_ = *cpt_->CreateAddressSpace();
  for (uint32_t page = 0; page < 16; ++page) {
    ASSERT_OK(cpt_->Map(root_, page * 4096, page * 4096, kRwx));
  }
  ASSERT_TRUE(core().bus().dram().Write32(0x00180000, 123));
  ASSERT_OK(cpt_->Map(root_, 0x00A00000, 0x00180000, kPteR));
  // The program writes the console MMIO page while paging is on.
  ASSERT_OK(cpt_->Map(root_, 0xF0003000, 0xF0003000, kPteR | kPteW));
  ASSERT_OK(cpt_->Activate(root_));
  core().metal().WriteCreg(kCrPgEnable, 1);
  // Run until the console latch records the first read, then unmap.
  while (core().console().Read32(4) == 0) {
    core().StepCycle();
    ASSERT_LT(core().cycle(), 100000u);
    ASSERT_FALSE(core().has_fatal()) << core().fatal_status().ToString();
  }
  EXPECT_EQ(core().console().Read32(4), 123u);
  ASSERT_OK(cpt_->Unmap(root_, 0x00A00000));
  MustHalt(system(), 0xAE);
}

TEST_F(CptTest, AddressSpaceSwitchViaActivate) {
  Boot(R"(
    _start:
      li t0, 0x00A00000
      lw a0, 0(t0)
      halt a0
  )");
  // Two address spaces mapping the same vaddr to different frames.
  auto root2_result = cpt_->CreateAddressSpace();
  ASSERT_OK(root2_result.status());
  const uint32_t root2 = *root2_result;
  for (uint32_t page = 0; page < 16; ++page) {
    ASSERT_OK(cpt_->Map(root2, page * 4096, page * 4096, kRwx));
  }
  ASSERT_TRUE(core().bus().dram().Write32(0x00180000, 111));
  ASSERT_TRUE(core().bus().dram().Write32(0x00190000, 222));
  ASSERT_OK(cpt_->Map(root_, 0x00A00000, 0x00180000, kPteR));
  ASSERT_OK(cpt_->Map(root2, 0x00A00000, 0x00190000, kPteR));
  ASSERT_OK(cpt_->Activate(root2));
  MustHalt(system(), 222);
}

TEST_F(CptTest, WalkerIsShort) {
  // "In a few lines of assembly, we walk an x86-style radix tree."
  CoreConfig config;
  auto module = AssembleMcode(CustomPageTable::McodeSource(), config);
  ASSERT_OK(module.status());
  EXPECT_LT(module->program.text.bytes.size() / 4, 48u);
}

}  // namespace
}  // namespace msim
