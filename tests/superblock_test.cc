// Superblock translation tier (cpu/superblock.h, docs/performance.md).
//
// The tier is "invisible by construction", one rung above the predecode
// cache: N cycles through chained trace execution must leave machine state
// byte-identical to N cycles of the plain fast-step window AND to N
// Core::StepCycle calls. The tests mirror predecode_test.cc's structure —
// digest matrices at awkward sync points, an invalidation matrix against
// every coherence source, and snapshot round trips — with the superblock
// cache's own counters checked on the side so none of the parity checks can
// pass vacuously with the tier disabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "cpu/creg.h"
#include "cpu/superblock.h"
#include "fault/fault.h"
#include "metal/system.h"
#include "snap/snapshot.h"
#include "snap/snapstream.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

struct Retire {
  uint64_t cycle;
  uint32_t pc;
  uint32_t raw;
  bool metal;
  bool operator==(const Retire& o) const {
    return cycle == o.cycle && pc == o.pc && raw == o.raw && metal == o.metal;
  }
};

void RecordRetires(Core& core, std::vector<Retire>* out) {
  core.SetRetireTrace([out](const Core::RetireEvent& e) {
    out->push_back(Retire{e.cycle, e.pc, e.raw, e.metal});
  });
}

void ExpectSameRetires(const std::vector<Retire>& a, const std::vector<Retire>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "retire " << i << ": cycle " << a[i].cycle << " pc 0x"
                              << std::hex << a[i].pc << " raw 0x" << a[i].raw
                              << " vs cycle " << std::dec << b[i].cycle << " pc 0x"
                              << std::hex << b[i].pc << " raw 0x" << b[i].raw;
    if (!(a[i] == b[i])) {
      return;  // the first divergence is the informative one
    }
  }
}

// Identical geometry everywhere so SaveState streams (and digests) compare;
// only the stepping tier under test varies.
CoreConfig NoSuperblockConfig() {
  CoreConfig config;
  config.superblocks = false;
  return config;
}

CoreConfig PerCycleConfig() {
  CoreConfig config;
  config.fast_step = false;
  return config;
}

// ALU/branch loops interleaved with loads and stores: traces build over the
// inner loop, chain on its back edge, and exit at every memory access.
constexpr const char* kMixedProgram = R"(
  _start:
    la s2, counter
    li s0, 400
    li s1, 0
  outer:
    li t0, 9
  inner:
    addi s1, s1, 3
    xor s1, s1, t0
    addi t0, t0, -1
    bne t0, zero, inner
    lw t1, 0(s2)
    addi t1, t1, 1
    sw t1, 0(s2)
    addi s0, s0, -1
    bne s0, zero, outer
    lw a0, 0(s2)
    halt a0
    .data
  counter:
    .word 0
)";

// ---------------------------------------------------------------------------
// Byte-exactness across all three stepping tiers.
// ---------------------------------------------------------------------------

TEST(SuperblockTest, ByteExactAgainstWindowAndPerCycleAtManySyncPoints) {
  Core traced;  // defaults: superblocks on
  Core window(NoSuperblockConfig());
  Core percycle(PerCycleConfig());
  const Program program = MustAssemble(kMixedProgram);
  for (Core* core : {&traced, &window, &percycle}) {
    ASSERT_OK(core->LoadProgram(program));
  }
  std::vector<Retire> a, b, c;
  RecordRetires(traced, &a);
  RecordRetires(window, &b);
  RecordRetires(percycle, &c);

  // Deliberately awkward chunk sizes so sync points land mid-trace, on
  // chained back edges and inside the two-cycle refill. Neither superblocks
  // nor fast_step joins CoreConfigHash, so the digests are comparable.
  const uint64_t kChunks[] = {1, 2, 3, 7, 64, 129, 1000, 4096, 977, 50000};
  uint64_t at = 0;
  for (const uint64_t chunk : kChunks) {
    traced.Run(chunk);
    window.Run(chunk);
    percycle.Run(chunk);
    at += chunk;
    ASSERT_EQ(traced.cycle(), window.cycle()) << "after " << at << " cycles";
    ASSERT_EQ(traced.cycle(), percycle.cycle()) << "after " << at << " cycles";
    ASSERT_EQ(traced.StateDigest(/*include_dram=*/true),
              window.StateDigest(/*include_dram=*/true))
        << "trace tier diverged from the window by cycle " << at;
    ASSERT_EQ(traced.StateDigest(true), percycle.StateDigest(true))
        << "trace tier diverged from per-cycle by cycle " << at;
  }
  const RunResult rt = traced.Run(2'000'000);
  const RunResult rw = window.Run(2'000'000);
  const RunResult rp = percycle.Run(2'000'000);
  EXPECT_EQ(rt.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(rw.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(rp.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(rt.exit_code, rw.exit_code);
  EXPECT_EQ(rt.exit_code, rp.exit_code);
  EXPECT_EQ(traced.StateDigest(true), window.StateDigest(true));
  ExpectSameRetires(a, b);
  ExpectSameRetires(a, c);

  // The parity above actually exercised the tier: traces built, executed,
  // chained on the inner loop's back edge, and retired the bulk of the run.
  const SuperblockStats& stats = traced.superblocks().stats();
  EXPECT_GT(stats.builds, 0u);
  EXPECT_GT(stats.executions, 0u);
  EXPECT_GT(stats.chains, 0u);
  EXPECT_GT(stats.instructions, 0u);
  EXPECT_LE(stats.instructions, traced.stats().instret);
  // And the control cores never ran it.
  EXPECT_EQ(window.superblocks().stats().executions, 0u);
  EXPECT_EQ(percycle.superblocks().stats().executions, 0u);
}

// Counts timer interrupts in MRAM data[0] (same handler as interrupt_test).
constexpr const char* kTimerHandler = R"(
    .mentry 1, irq
  irq:
    wmr m10, t0
    wmr m11, t1
    mld t0, 0(zero)
    addi t0, t0, 1
    mst t0, 0(zero)
    li t0, 0xF0000008
    li t1, 1
    psw t1, 0(t0)
    rmr t0, m10
    rmr t1, m11
    mexit
)";

TEST(SuperblockTest, ByteExactWithTimerInterruptsAcrossHorizons) {
  // Satellite regression for the horizon audit: a chained trace must never
  // commit a cycle at or past the device-event horizon computed at window
  // entry, so every interrupt is taken at exactly the cycle the plain
  // window (and per-cycle core) takes it.
  auto boot = [](Core& core) {
    MustLoadMcodeRaw(core, kTimerHandler);
    ASSERT_OK(core.LoadProgram(MustAssemble(R"(
      _start:
        li t2, 30000
      loop:
        addi t2, t2, -1
        bne t2, zero, loop
        halt zero
    )")));
    core.metal().DelegateIrq(1);
    core.metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
    core.timer().Write32(12, 700);  // interval
    core.timer().Write32(4, 700);   // compare
    core.timer().Write32(8, 1);     // enable
  };
  Core traced;
  Core window(NoSuperblockConfig());
  boot(traced);
  boot(window);

  const uint64_t kChunks[] = {500, 333, 1024, 10000, 50000};
  for (const uint64_t chunk : kChunks) {
    traced.Run(chunk);
    window.Run(chunk);
    ASSERT_EQ(traced.cycle(), window.cycle());
    ASSERT_EQ(traced.StateDigest(true), window.StateDigest(true))
        << "diverged by cycle " << traced.cycle();
  }
  const RunResult rt = traced.Run(2'000'000);
  const RunResult rw = window.Run(2'000'000);
  EXPECT_EQ(rt.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(rw.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(traced.stats().interrupts, window.stats().interrupts);
  EXPECT_GE(traced.stats().interrupts, 10u);
  EXPECT_EQ(traced.StateDigest(true), window.StateDigest(true));
  EXPECT_GT(traced.superblocks().stats().chains, 0u);
}

TEST(SuperblockTest, MaxLenKnobGatesAndBoundsTraces) {
  // Below kSuperblockMinLen the tier shuts off entirely; at the minimum it
  // still runs. Either way behavior is byte-exact (guaranteed by the matrix
  // above; here the knob wiring itself is under test).
  CoreConfig off_config;
  off_config.superblock_max_len = 1;
  Core off(off_config);
  CoreConfig tiny_config;
  tiny_config.superblock_max_len = 2;
  Core tiny(tiny_config);
  const Program program = MustAssemble(kMixedProgram);
  ASSERT_OK(off.LoadProgram(program));
  ASSERT_OK(tiny.LoadProgram(program));
  MustHalt(off, 400);
  MustHalt(tiny, 400);
  EXPECT_FALSE(off.superblocks().enabled());
  EXPECT_EQ(off.superblocks().stats().executions, 0u);
  EXPECT_GT(tiny.superblocks().stats().executions, 0u);
}

// ---------------------------------------------------------------------------
// Invalidation matrix: every coherence source vs a no-trace reference.
// ---------------------------------------------------------------------------

// Patches its own inner loop after three iterations: the stored word must
// take effect on the very next fetch, killing the trace built over it.
constexpr const char* kSelfModifyingProgram = R"(
  _start:
    la t0, slot
    la t1, patch
    lw t1, 0(t1)
    li s0, 6
    li s1, 0
  loop:
  slot:
    addi s1, s1, 1
    addi s0, s0, -1
    beq s0, zero, done
    li t2, 3
    bne s0, t2, loop
    sw t1, 0(t0)
    j loop
  done:
    halt s1
  patch:
    addi s1, s1, 5
)";

TEST(SuperblockInvalidationTest, SelfModifyingStoreKillsAffectedTrace) {
  Core traced;  // defaults
  Core window(NoSuperblockConfig());
  ASSERT_OK(traced.LoadProgram(MustAssemble(kSelfModifyingProgram)));
  ASSERT_OK(window.LoadProgram(MustAssemble(kSelfModifyingProgram)));
  std::vector<Retire> a, b;
  RecordRetires(traced, &a);
  RecordRetires(window, &b);
  // 3 iterations of +1, then the patched +5 for the remaining 3.
  MustHalt(traced, 18);
  MustHalt(window, 18);
  ExpectSameRetires(a, b);
  // The store bumped the DRAM write generation; the per-fetch raw-word
  // revalidation must have caught the stale slot and killed its trace.
  EXPECT_GT(traced.superblocks().stats().executions, 0u);
  EXPECT_GT(traced.superblocks().stats().invalidations, 0u);
}

// A store *inside* the straight line that targets a word a couple of slots
// AHEAD of it in the same trace. With rung-2 memory slots the sw executes on
// the trace fast path as a pending MemOp; the very next trace fetch of the
// patched word must see the store's bytes (the pending-store fetch-merge
// path), detect the raw-word mismatch, and exit + invalidate before the
// cycle commits. The branch warms the trace first so the store really does
// land mid-trace, not on a cold build.
constexpr const char* kStoreAheadProgram = R"(
  _start:
    la t0, target
    la t1, patch
    lw t1, 0(t1)
    li s0, 8
    li s1, 0
  loop:
    addi s1, s1, 1
    li t2, 4
    bne s0, t2, target
    sw t1, 0(t0)
  target:
    addi s1, s1, 2
    addi s0, s0, -1
    bne s0, zero, loop
    halt s1
  patch:
    addi s1, s1, 9
)";

TEST(SuperblockInvalidationTest, StoreIntoExecutingTraceAheadOfPcIsByteExact) {
  Core traced;  // defaults
  Core window(NoSuperblockConfig());
  Core percycle(PerCycleConfig());
  const Program program = MustAssemble(kStoreAheadProgram);
  std::vector<Retire> a, b, c;
  RecordRetires(traced, &a);
  RecordRetires(window, &b);
  RecordRetires(percycle, &c);
  std::vector<RunResult> results;
  for (Core* core : {&traced, &window, &percycle}) {
    ASSERT_OK(core->LoadProgram(program));
    results.push_back(core->Run(100000));
  }
  // The per-cycle machine defines whether the patched word is visible on the
  // patching iteration itself; the tiers must agree byte-for-byte rather
  // than match a hand-computed constant.
  for (const RunResult& r : results) {
    EXPECT_EQ(r.reason, RunResult::Reason::kHalted);
    EXPECT_EQ(r.exit_code, results[0].exit_code);
  }
  ExpectSameRetires(a, b);
  ExpectSameRetires(a, c);
  EXPECT_GT(traced.superblocks().stats().executions, 0u);
  EXPECT_GT(traced.superblocks().stats().mem_fast_hits, 0u);
  EXPECT_GT(traced.superblocks().stats().invalidations, 0u);
}

// TLB eviction between trace executions: an mroutine drops the data page's
// mapping, so the next trace entry reaches its lw slot with ProbeTranslate
// missing — the memory slot must force a slow exit (uncommitted) and replay
// per-cycle, where the architectural TLB miss fires and the delegated
// handler refills. Byte-exact against the window and per-cycle references.
constexpr const char* kTlbEvictMcode = R"(
    .mentry 10, tlb_miss
  tlb_miss:
    rcr t0, 2            # MBADVADDR
    li t1, -4096
    and t1, t0, t1       # frame = page base (identity)
    ori t1, t1, 0x38     # R|W|X
    tlbwr t0, t1
    mexit                # retry the faulting access
    .mentry 11, evict
  evict:
    tlbinv t0            # caller leaves the vaddr to evict in t0
    mexit
)";

constexpr const char* kTlbEvictProgram = R"(
  _start:
    la t6, buf
    li s0, 120
    li s1, 0
  loop:
    li t3, 6
  spin:
    lw t1, 0(t6)
    addi t1, t1, 1
    sw t1, 0(t6)
    addi s1, s1, 1
    addi t3, t3, -1
    bne t3, zero, spin
    mv t0, t6
    menter 11            # evict the data page mid-run
    addi s0, s0, -1
    bne s0, zero, loop
    lw a0, 0(t6)
    halt a0
    .data
  buf:
    .word 0
)";

TEST(SuperblockInvalidationTest, TlbEvictionForcesMidTraceSlowExit) {
  CoreConfig traced_config;
  CoreConfig window_config = NoSuperblockConfig();
  CoreConfig percycle_config = PerCycleConfig();
  MetalSystem traced(traced_config);
  MetalSystem window(window_config);
  MetalSystem percycle(percycle_config);
  std::vector<Retire> a, b, c;
  std::vector<Retire>* streams[] = {&a, &b, &c};
  MetalSystem* systems[] = {&traced, &window, &percycle};
  std::vector<RunResult> results;
  for (int i = 0; i < 3; ++i) {
    MetalSystem& s = *systems[i];
    s.AddMcode(kTlbEvictMcode);
    ASSERT_OK(s.LoadProgramSource(kTlbEvictProgram));
    ASSERT_OK(s.Boot());
    Core& core = s.core();
    core.metal().Delegate(ExcCause::kTlbMissLoad, 10);
    core.metal().Delegate(ExcCause::kTlbMissStore, 10);
    core.metal().Delegate(ExcCause::kTlbMissFetch, 10);
    core.metal().WriteCreg(kCrPgEnable, 1);
    RecordRetires(core, streams[i]);
    results.push_back(s.Run(5'000'000));
  }
  for (const RunResult& r : results) {
    EXPECT_EQ(r.reason, RunResult::Reason::kHalted);
    EXPECT_EQ(r.exit_code, results[0].exit_code);
  }
  ExpectSameRetires(a, b);
  ExpectSameRetires(a, c);
  // The hot spin loop's memory slots ran the fast path between evictions and
  // hit the missing-translation slow exit right after each one.
  EXPECT_GT(traced.core().superblocks().stats().executions, 0u);
  EXPECT_GT(traced.core().superblocks().stats().mem_fast_hits, 0u);
  EXPECT_GT(traced.core().superblocks().stats().mem_slow_exits, 0u);
}

// Accumulates into MRAM data with mld/mst (same mroutine as predecode_test):
// MRAM activity alongside hot DRAM traces.
constexpr const char* kCounterMcode = R"(
    .mentry 1, count_add
  count_add:
    mld t0, 0(zero)
    add t0, t0, a0
    mst t0, 0(zero)
    mv a0, t0
    mexit
)";

// The spin loop keeps a hot DRAM trace alive between mroutine invocations
// (the taken back edge drains the pipeline, so the tier builds and chains
// there); `menter` itself is never part of a trace.
constexpr const char* kLongCounterProgram = R"(
  _start:
    li s0, 400
    li s1, 0
  loop:
    li t3, 8
  spin:
    addi t3, t3, -1
    bne t3, zero, spin
    li a0, 7
    menter 1
    mv s1, a0
    addi s0, s0, -1
    bne s0, zero, loop
    halt s1
)";

TEST(SuperblockInvalidationTest, MramScrubMatchesNoTraceReference) {
  // Traces never contain MRAM code (the tier only runs outside Metal mode
  // and the build walk stops at the DRAM boundary), so a corruption-scrub
  // episode in the mroutine must leave the DRAM traces untouched AND the
  // retire streams identical with and without the tier.
  CoreConfig traced_config;
  traced_config.mram_parity = false;
  CoreConfig window_config = NoSuperblockConfig();
  window_config.mram_parity = false;
  MetalSystem traced(traced_config);
  MetalSystem window(window_config);
  for (MetalSystem* s : {&traced, &window}) {
    s->AddMcode(kCounterMcode);
    ASSERT_OK(s->LoadProgramSource(kLongCounterProgram));
    ASSERT_OK(s->Boot());
  }
  std::vector<Retire> a, b;
  RecordRetires(traced.core(), &a);
  RecordRetires(window.core(), &b);
  auto drive = [](MetalSystem& s) -> RunResult {
    s.Run(1500);
    // Flip `add t0, t0, a0` (second mroutine word) into `sub`.
    EXPECT_TRUE(s.core().mram().CorruptCodeWord(4, 0xFFFFFFFFu, 1u << 30));
    s.Run(1500);
    EXPECT_GT(s.core().mram().Scrub(), 0u);  // restores + bumps MRAM gen
    return s.Run(2'000'000);
  };
  const RunResult ra = drive(traced);
  const RunResult rb = drive(window);
  EXPECT_EQ(ra.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(rb.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(ra.exit_code, rb.exit_code);
  ExpectSameRetires(a, b);
  EXPECT_GT(traced.core().superblocks().stats().executions, 0u);
}

TEST(SuperblockInvalidationTest, FaultEngineAttachDisablesTraceExecution) {
  // An attached fault engine can flip any word at any cycle, behind every
  // generation counter. StepFast refuses the whole window in that case —
  // and the superblock tier with it. Regression for the entry guard: the
  // counters must stay zero and behavior must match the per-cycle reference.
  MetalSystem traced;  // defaults: superblocks on
  MetalSystem reference(PerCycleConfig());
  FaultEngine traced_engine(/*seed=*/7);
  FaultEngine reference_engine(/*seed=*/7);
  ASSERT_OK(traced_engine.AddSpec("mram-data@3000:at=0,bit=3"));
  ASSERT_OK(reference_engine.AddSpec("mram-data@3000:at=0,bit=3"));
  traced.core().SetFaultEngine(&traced_engine);
  reference.core().SetFaultEngine(&reference_engine);
  for (MetalSystem* s : {&traced, &reference}) {
    s->AddMcode(kCounterMcode);
    ASSERT_OK(s->LoadProgramSource(kLongCounterProgram));
  }
  std::vector<Retire> a, b;
  RecordRetires(traced.core(), &a);
  RecordRetires(reference.core(), &b);
  const RunResult ra = traced.Run(2'000'000);
  const RunResult rb = reference.Run(2'000'000);
  EXPECT_EQ(ra.reason, rb.reason);
  EXPECT_EQ(ra.exit_code, rb.exit_code);
  ExpectSameRetires(a, b);
  EXPECT_EQ(traced.core().superblocks().stats().executions, 0u);
  EXPECT_EQ(traced.core().superblocks().stats().builds, 0u);
}

// ---------------------------------------------------------------------------
// Snapshots: restore parity and section round trips.
// ---------------------------------------------------------------------------

TEST(SuperblockSnapshotTest, RestoreMidLoopResumesIdentically) {
  // Core::SaveState deliberately excludes trace state (snapshots are
  // portable across stepping modes); restore invalidates the cache and the
  // tier rebuilds deterministically. The continuation retire stream of the
  // restored machine must equal the uninterrupted one — including into a
  // core with the tier off, and a per-cycle core.
  Core original;  // defaults: superblocks on
  ASSERT_OK(original.LoadProgram(MustAssemble(kMixedProgram)));
  original.Run(1234);  // mid-loop, trace cache warm
  const std::vector<uint8_t> image = SaveSnapshot(original);
  const uint64_t digest_at_save = original.StateDigest(true);

  std::vector<Retire> rest_of_original;
  RecordRetires(original, &rest_of_original);
  const RunResult ro = original.Run(2'000'000);
  EXPECT_EQ(ro.reason, RunResult::Reason::kHalted);

  const auto resume = [&](const CoreConfig& config) {
    Core restored(config);
    ASSERT_OK(RestoreSnapshot(restored, image));
    EXPECT_EQ(restored.StateDigest(true), digest_at_save);
    std::vector<Retire> rest;
    RecordRetires(restored, &rest);
    const RunResult rr = restored.Run(2'000'000);
    EXPECT_EQ(rr.reason, RunResult::Reason::kHalted);
    EXPECT_EQ(rr.exit_code, ro.exit_code);
    ExpectSameRetires(rest_of_original, rest);
  };
  resume(CoreConfig{});
  resume(NoSuperblockConfig());
  resume(PerCycleConfig());
}

TEST(SuperblockSnapshotTest, SaveRestoreRoundTripIsByteIdentical) {
  // The msim "superblocks" extras section: serializing a warm cache,
  // restoring it into a fresh one and serializing again must reproduce the
  // byte stream — traces (stale ones included, via raw-word re-translation)
  // and counters both.
  Core core;
  ASSERT_OK(core.LoadProgram(MustAssemble(kMixedProgram)));
  core.Run(5000);
  ASSERT_GT(core.superblocks().stats().builds, 0u);

  SnapWriter first;
  core.superblocks().SaveState(first);
  const std::vector<uint8_t> bytes = first.TakeBytes();

  SuperblockCache restored(/*enabled=*/true, /*max_len=*/64);
  SnapReader reader(bytes);
  ASSERT_OK(restored.RestoreState(reader));
  SnapWriter second;
  restored.SaveState(second);
  EXPECT_EQ(second.TakeBytes(), bytes);

  // Restoring into a core with the tier disabled keeps the counters (the
  // executor never runs, so --stats-json stays byte-identical) but drops
  // the traces.
  SuperblockCache disabled(/*enabled=*/false, /*max_len=*/64);
  SnapReader reader2(bytes);
  ASSERT_OK(disabled.RestoreState(reader2));
  EXPECT_EQ(disabled.stats().builds, core.superblocks().stats().builds);
  EXPECT_EQ(disabled.stats().executions, core.superblocks().stats().executions);
  EXPECT_EQ(disabled.stats().chains, core.superblocks().stats().chains);
  EXPECT_FALSE(disabled.enabled());
}

TEST(SuperblockSnapshotTest, RestoreRejectsCorruptSections) {
  SuperblockCache cache(/*enabled=*/true, /*max_len=*/64);
  {
    // Trace count past the cache geometry.
    SnapWriter w;
    w.U32(kSuperblockEntries + 1);
    const std::vector<uint8_t> bytes = w.TakeBytes();
    SnapReader r(bytes);
    EXPECT_FALSE(cache.RestoreState(r).ok());
  }
  {
    // Geometry that claims fewer total slots than executable ones.
    SnapWriter w;
    w.U32(1);
    w.U32(0x1000);  // start
    w.U32(4);       // exec_len
    w.U32(3);       // len < exec_len
    const std::vector<uint8_t> bytes = w.TakeBytes();
    SnapReader r(bytes);
    EXPECT_FALSE(cache.RestoreState(r).ok());
  }
  {
    // An executable slot whose raw word is not window-safe (a load).
    SnapWriter w;
    w.U32(1);
    w.U32(0x1000);      // start
    w.U32(2);           // exec_len
    w.U32(2);           // len
    w.U32(0x00000013);  // addi x0, x0, 0 — fine
    w.U32(0x00002003);  // lw x0, 0(x0) — untranslatable
    const std::vector<uint8_t> bytes = w.TakeBytes();
    SnapReader r(bytes);
    EXPECT_FALSE(cache.RestoreState(r).ok());
  }
}

}  // namespace
}  // namespace msim
