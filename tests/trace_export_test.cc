// Chrome trace_event exporter and the per-mroutine profiler.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "tests/sim_test_util.h"
#include "trace/json.h"
#include "trace/profiler.h"
#include "trace/trace.h"

namespace msim {
namespace {

TraceEvent MakeEvent(TraceEventKind kind, uint64_t cycle, uint32_t pc = 0, uint32_t arg0 = 0,
                     uint32_t arg1 = 0, bool metal = false) {
  TraceEvent event;
  event.kind = kind;
  event.metal = metal;
  event.cycle = cycle;
  event.pc = pc;
  event.arg0 = arg0;
  event.arg1 = arg1;
  return event;
}

TEST(ChromeTraceExportTest, EmptyStreamIsValidJson) {
  std::ostringstream out;
  ExportChromeTrace({}, out);
  EXPECT_TRUE(JsonLooksValid(out.str())) << out.str();
  EXPECT_NE(out.str().find("traceEvents"), std::string::npos);
}

TEST(ChromeTraceExportTest, SlicesAndInstantsAreValidJson) {
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent(TraceEventKind::kRetire, 1, 0x1000, 0x13));
  events.push_back(MakeEvent(TraceEventKind::kMenter, 3, 0x1004, 2, 0xffff0000));
  events.push_back(MakeEvent(TraceEventKind::kRetire, 4, 0xffff0000, 0x13, 0, true));
  events.push_back(MakeEvent(TraceEventKind::kMexit, 7, 0xffff0004, 0x1008, 0, true));
  events.push_back(MakeEvent(TraceEventKind::kTrap, 9, 0x1008, 8, 5));
  events.push_back(MakeEvent(TraceEventKind::kMexit, 12, 0xffff0100, 0x100c, 0, true));
  std::ostringstream out;
  ExportChromeTrace(events, out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"mroutine 2\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"retire\""), std::string::npos);
  // B and E slices are balanced (one pair per span).
  size_t begins = 0, ends = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos; ++pos) {
    ++begins;
  }
  for (size_t pos = 0; (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos; ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(begins, ends);
}

TEST(ChromeTraceExportTest, UnbalancedSliceClosedAtLastCycle) {
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent(TraceEventKind::kMenter, 2, 0x1000, 1, 0xffff0000));
  events.push_back(MakeEvent(TraceEventKind::kRetire, 10, 0xffff0000, 0x13, 0, true));
  std::ostringstream out;
  ExportChromeTrace(events, out);
  EXPECT_TRUE(JsonLooksValid(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"ph\":\"E\""), std::string::npos);
}

TEST(ChromeTraceExportTest, FullSystemTraceIsValidWithMonotonicTimestamps) {
  MetalSystem system;
  system.AddMcode(R"(
      .mentry 1, work
    work:
      addi a0, a0, 1
      mexit
  )");
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      li t0, 4
    loop:
      menter 1
      addi t0, t0, -1
      bnez t0, loop
      halt a0
  )"));
  RingBufferSink ring;
  system.SetTraceSink(&ring);
  MustHalt(system, 4);
  system.SetTraceSink(nullptr);

  const std::vector<TraceEvent> events = ring.Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(ring.dropped(), 0u);
  // Emission order is non-decreasing in cycle, so exported "ts" values are
  // monotonic too.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].cycle, events[i - 1].cycle) << "event " << i;
  }
  std::ostringstream out;
  ExportChromeTrace(events, out);
  EXPECT_TRUE(JsonLooksValid(out.str()));

  uint64_t retires = 0;
  uint64_t menters = 0;
  uint64_t mexits = 0;
  for (const TraceEvent& event : events) {
    retires += event.kind == TraceEventKind::kRetire;
    menters += event.kind == TraceEventKind::kMenter;
    mexits += event.kind == TraceEventKind::kMexit;
  }
  EXPECT_EQ(retires, system.core().stats().instret);
  EXPECT_EQ(menters, system.core().stats().menters);
  EXPECT_EQ(mexits, system.core().stats().mexits);
}

TEST(RingBufferSinkTest, DropsOldestBeyondCapacity) {
  RingBufferSink ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.OnEvent(MakeEvent(TraceEventKind::kRetire, i));
  }
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().cycle, 6u);
  EXPECT_EQ(events.back().cycle, 9u);
}

// Profiler attribution must agree with the core's own metal_cycles counter,
// with both the decode-replacement fast path and the slow path.
class MroutineProfilerAttributionTest : public ::testing::TestWithParam<bool> {};

TEST_P(MroutineProfilerAttributionTest, TwoMroutineCyclesSumToCoreStats) {
  CoreConfig config;
  config.fast_transition = GetParam();
  MetalSystem system(config);
  system.AddMcode(R"(
      .mentry 1, short_work
    short_work:
      addi a0, a0, 1
      mexit

      .mentry 2, long_work
    long_work:
      addi a1, a1, 1
      addi a1, a1, 1
      addi a1, a1, 1
      addi a1, a1, 1
      mexit
  )");
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      li t0, 6
    loop:
      menter 1
      menter 2
      addi t0, t0, -1
      bnez t0, loop
      halt a0
  )"));
  MroutineProfiler profiler;
  system.SetTraceSink(&profiler);
  MustHalt(system, 6);
  system.SetTraceSink(nullptr);
  profiler.Finalize(system.core().cycle());

  const CoreStats& stats = system.core().stats();
  EXPECT_EQ(profiler.total_metal_cycles(), stats.metal_cycles);
  EXPECT_EQ(profiler.total_metal_instret(), stats.metal_instret);
  EXPECT_EQ(profiler.normal_instret(), stats.instret - stats.metal_instret);
  EXPECT_EQ(profiler.unattributed_cycles(), 0u);

  const auto& entries = profiler.entries();
  EXPECT_EQ(entries[1].enters, 6u);
  EXPECT_EQ(entries[2].enters, 6u);
  EXPECT_EQ(entries[1].trap_enters, 0u);
  // Entry 2's body is longer, so it accounts for more instructions and at
  // least as many cycles. With fast transitions the decode-replaced mexit is
  // folded away and never retires as its own instruction; the slow path
  // executes it like a jump and it retires in Metal mode.
  if (GetParam()) {
    EXPECT_EQ(entries[1].instret, 6u);   // 6 * addi
    EXPECT_EQ(entries[2].instret, 24u);  // 6 * 4 addi
  } else {
    EXPECT_EQ(entries[1].instret, 12u);  // 6 * (addi + mexit)
    EXPECT_EQ(entries[2].instret, 30u);  // 6 * (4 addi + mexit)
  }
  EXPECT_GE(entries[2].cycles, entries[1].cycles);
  EXPECT_EQ(entries[1].cycles + entries[2].cycles, stats.metal_cycles);
  for (uint32_t entry = 3; entry < kMaxMroutines; ++entry) {
    EXPECT_EQ(entries[entry].total_enters(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(FastAndSlow, MroutineProfilerAttributionTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param) {
                           return param.param ? "FastTransitions" : "SlowTransitions";
                         });

TEST(MroutineProfilerTest, TrapDeliveryCountedAsTrapEnter) {
  MetalSystem system;
  system.AddMcode(R"(
      .mentry 4, on_break
    on_break:
      addi a0, a0, 1
      mexit                # default m31 = pc + 4 resumes after the ebreak
  )");
  system.DelegateException(ExcCause::kBreakpoint, 4);
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      ebreak
      ebreak
      halt a0
  )"));
  MroutineProfiler profiler;
  system.SetTraceSink(&profiler);
  MustHalt(system, 2);
  system.SetTraceSink(nullptr);
  profiler.Finalize(system.core().cycle());

  const auto& entries = profiler.entries();
  EXPECT_EQ(entries[4].trap_enters, 2u);
  EXPECT_EQ(entries[4].enters, 0u);
  EXPECT_EQ(profiler.total_metal_cycles(), system.core().stats().metal_cycles);
  EXPECT_EQ(profiler.total_metal_instret(), system.core().stats().metal_instret);
}

TEST(MroutineProfilerTest, JsonAndTextReports) {
  MroutineProfiler profiler;
  profiler.OnEvent(MakeEvent(TraceEventKind::kMenter, 10, 0x1000, 3, 0xffff0000));
  profiler.OnEvent(MakeEvent(TraceEventKind::kRetire, 11, 0xffff0000, 0x13, 0, true));
  profiler.OnEvent(MakeEvent(TraceEventKind::kMexit, 15, 0xffff0004, 0x1004, 0, true));
  profiler.Finalize(20);

  EXPECT_EQ(profiler.entries()[3].cycles, 5u);
  EXPECT_EQ(profiler.entries()[3].instret, 1u);

  std::ostringstream json_out;
  JsonWriter json(json_out);
  json.BeginObject();
  profiler.AppendJson(json, 20);
  json.EndObject();
  EXPECT_TRUE(JsonLooksValid(json_out.str())) << json_out.str();
  EXPECT_NE(json_out.str().find("\"entry\":3"), std::string::npos);

  std::ostringstream text;
  profiler.WriteText(text, 20);
  EXPECT_NE(text.str().find("3"), std::string::npos);
  EXPECT_NE(text.str().find("%cycles"), std::string::npos);
}

}  // namespace
}  // namespace msim
