// Software transactional memory (paper §3.3).
#include <gtest/gtest.h>

#include "ext/stm.h"
#include "support/rng.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

constexpr uint32_t kClockAddr = 0x00700000;
constexpr uint32_t kVtblAddr = 0x00704000;
constexpr uint32_t kVtblWords = 1024;
constexpr uint32_t kShared = 0x00600000;  // transactional data area

class StmTest : public ::testing::Test {
 protected:
  void Boot(const char* program_source) {
    system_ = std::make_unique<MetalSystem>();
    ASSERT_OK(StmExtension::Install(*system_, kClockAddr, kVtblAddr, kVtblWords));
    ASSERT_OK(system_->LoadProgramSource(program_source));
    ASSERT_OK(system_->Boot());
  }
  Core& core() { return system_->core(); }
  MetalSystem& system() { return *system_; }
  std::unique_ptr<MetalSystem> system_;
};

TEST_F(StmTest, CommitUpdatesMemory) {
  Boot(R"(
    .equ SHARED, 0x00600000
    _start:
      la a0, on_abort
      menter 24            # tstart
      li t5, SHARED
      lw t6, 0(t5)         # intercepted -> tread
      addi t6, t6, 1
      sw t6, 0(t5)         # intercepted -> twrite (buffered)
      menter 27            # tcommit
      beqz a0, failed
      li t5, SHARED
      lw a0, 0(t5)         # after commit: real memory
      halt a0
    on_abort:
      li a0, 0xBB
      halt a0
    failed:
      li a0, 0xCC
      halt a0
  )");
  ASSERT_TRUE(core().bus().dram().Write32(kShared, 41));
  MustHalt(system(), 42);
  EXPECT_EQ(StmExtension::Commits(core()).value(), 1u);
  EXPECT_EQ(StmExtension::Aborts(core()).value(), 0u);
  EXPECT_EQ(core().bus().dram().Read32(kShared), 42u);
  EXPECT_EQ(core().bus().dram().Read32(kClockAddr), 1u);  // clock advanced
}

TEST_F(StmTest, WriteBufferForwardsWithinTransaction) {
  Boot(R"(
    .equ SHARED, 0x00600000
    _start:
      la a0, on_abort
      menter 24
      li t5, SHARED
      li t6, 500
      sw t6, 0(t5)         # buffered
      lw a1, 0(t5)         # must see 500 via forwarding, not memory's 7
      menter 27
      mv a0, a1
      halt a0
    on_abort:
      li a0, 0xBB
      halt a0
  )");
  ASSERT_TRUE(core().bus().dram().Write32(kShared, 7));
  MustHalt(system(), 500);
}

TEST_F(StmTest, UserAbortDiscardsWrites) {
  Boot(R"(
    .equ SHARED, 0x00600000
    _start:
      la a0, on_abort
      menter 24
      li t5, SHARED
      li t6, 999
      sw t6, 0(t5)         # buffered, never written back
      menter 28            # tabort
      halt zero            # unreachable: tabort jumps to on_abort
    on_abort:
      li t5, SHARED
      lw a0, 0(t5)         # interception is off: real memory
      halt a0
  )");
  ASSERT_TRUE(core().bus().dram().Write32(kShared, 123));
  MustHalt(system(), 123);
  EXPECT_EQ(StmExtension::Aborts(core()).value(), 1u);
  EXPECT_EQ(StmExtension::Commits(core()).value(), 0u);
}

TEST_F(StmTest, StaleVersionAbortsOnRead) {
  Boot(R"(
    .equ SHARED, 0x00600000
    _start:
      la a0, on_abort
      menter 24
      li t5, SHARED
      lw t6, 0(t5)         # version > rv: conflict detected here
      menter 27
      li a0, 0x01
      halt a0
    on_abort:
      li a0, 0xAB
      halt a0
  )");
  // A "remote core" committed to SHARED before our rv was sampled being 0:
  // stamp its version above the current clock... the clock is bumped too, so
  // rv(=1) >= version(=1) would pass. Stamp version directly to model a
  // concurrent commit racing our tstart.
  ASSERT_TRUE(core().bus().dram().Write32(kVtblAddr + 4 * ((kShared >> 2) % kVtblWords), 9));
  MustHalt(system(), 0xAB);
  EXPECT_EQ(StmExtension::Aborts(core()).value(), 1u);
}

TEST_F(StmTest, CommitValidationCatchesRemoteCommit) {
  // The transaction reads SHARED, then a remote commit hits SHARED before
  // tcommit -> commit-time validation aborts.
  Boot(R"(
    .equ SHARED, 0x00600000
    .equ FLAG, 0x00600100
    _start:
      la a0, on_abort
      menter 24
      li t5, SHARED
      lw t6, 0(t5)          # read set: SHARED
      # signal the host (plain store to FLAG is intercepted/buffered, so use
      # a long spin instead: the host injects after a fixed cycle count)
      li t4, 2000
    spin:
      addi t4, t4, -1
      bnez t4, spin
      menter 27             # tcommit: must fail validation
      li a0, 0x01
      halt a0
    on_abort:
      li a0, 0xAC
      halt a0
  )");
  // Run ~1000 cycles (inside the spin), then inject a remote commit.
  (void)core().Run(1000);
  ASSERT_FALSE(core().halted());
  ASSERT_OK(StmExtension::InjectRemoteCommit(core(), kClockAddr, kVtblAddr, kVtblWords, kShared,
                                             777));
  MustHalt(system(), 0xAC);
  EXPECT_EQ(StmExtension::Aborts(core()).value(), 1u);
  EXPECT_EQ(core().bus().dram().Read32(kShared), 777u);  // remote value intact
}

TEST_F(StmTest, RetryAfterAbortSucceeds) {
  // Standard retry loop: transaction re-executes from tstart after an abort
  // and commits on the clean second attempt.
  Boot(R"(
    .equ SHARED, 0x00600000
    _start:
    retry:
      la a0, on_abort
      menter 24
      li t5, SHARED
      lw t6, 0(t5)
      addi t6, t6, 1
      sw t6, 0(t5)
      menter 27
      li t5, SHARED
      lw a0, 0(t5)
      halt a0
    on_abort:
      j retry
  )");
  // Stale version -> first attempt aborts; rv of the retry (clock already
  // bumped by the injector) passes validation.
  ASSERT_OK(StmExtension::InjectRemoteCommit(core(), kClockAddr, kVtblAddr, kVtblWords, kShared,
                                             100));
  MustHalt(system(), 101);
  EXPECT_EQ(StmExtension::Aborts(core()).value(), 0u);  // injector ran pre-start
  EXPECT_EQ(StmExtension::Commits(core()).value(), 1u);
}

TEST_F(StmTest, WriteSetOverflowAborts) {
  Boot(R"(
    .equ SHARED, 0x00600000
    _start:
      la a0, on_abort
      menter 24
      li t5, SHARED
      li t4, 33             # one more than the 32-entry write set
    fill:
      sw t4, 0(t5)
      addi t5, t5, 4
      addi t4, t4, -1
      bnez t4, fill
      menter 27
      li a0, 0x01
      halt a0
    on_abort:
      li a0, 0xAD
      halt a0
  )");
  MustHalt(system(), 0xAD);
  EXPECT_EQ(StmExtension::Aborts(core()).value(), 1u);
}

TEST_F(StmTest, TransferPreservesTotal) {
  // Classic STM demo: move 10 units between two accounts transactionally.
  Boot(R"(
    .equ A, 0x00600000
    .equ B, 0x00600004
    _start:
      li s0, 20             # iterations
    again:
      la a0, on_abort
      menter 24
      li t5, A
      lw t6, 0(t5)
      addi t6, t6, -10
      sw t6, 0(t5)
      li t5, B
      lw t6, 0(t5)
      addi t6, t6, 10
      sw t6, 0(t5)
      menter 27
      addi s0, s0, -1
      bnez s0, again
      li t5, A
      lw t0, 0(t5)
      li t5, B
      lw t1, 0(t5)
      add a0, t0, t1
      halt a0
    on_abort:
      j again
  )");
  ASSERT_TRUE(core().bus().dram().Write32(kShared, 500));      // A
  ASSERT_TRUE(core().bus().dram().Write32(kShared + 4, 500));  // B
  MustHalt(system(), 1000);
  EXPECT_EQ(core().bus().dram().Read32(kShared), 300u);
  EXPECT_EQ(core().bus().dram().Read32(kShared + 4), 700u);
  EXPECT_EQ(StmExtension::Commits(core()).value(), 20u);
}

TEST_F(StmTest, ImplementationSizeNearPaperClaim) {
  // "Our implementation is under 100 instructions and closely resembles TL2."
  auto count = StmExtension::InstructionCount();
  ASSERT_OK(count.status());
  // Ours includes register save/restore; stay within 1.5x of the claim.
  EXPECT_LT(*count, 170u);
  EXPECT_GT(*count, 50u);
}


// Property: under ANY interleaving of remote commits, committed transactions
// preserve the transfer invariant (serializability of the TL2 scheme plus
// Metal-mode atomicity of tcommit).
class StmLinearizabilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StmLinearizabilityTest, TransferInvariantHoldsUnderRandomConflicts) {
  MetalSystem system;
  ASSERT_OK(StmExtension::Install(system, kClockAddr, kVtblAddr, kVtblWords));
  ASSERT_OK(system.LoadProgramSource(R"(
    .equ A, 0x00600000
    .equ B, 0x00600004
    _start:
      li s0, 40
    again:
      la a0, on_abort
      menter 24
      li t5, A
      lw t6, 0(t5)
      addi t6, t6, -10
      sw t6, 0(t5)
      li t5, B
      lw t6, 0(t5)
      addi t6, t6, 10
      sw t6, 0(t5)
      menter 27
      addi s0, s0, -1
      bnez s0, again
      halt zero
    on_abort:
      j again
  )"));
  ASSERT_OK(system.Boot());
  Core& core = system.core();
  ASSERT_TRUE(core.bus().dram().Write32(kShared, 1000));
  ASSERT_TRUE(core.bus().dram().Write32(kShared + 4, 1000));
  Rng rng(GetParam() * 7919 + 3);
  uint32_t credits = 0;
  while (!core.halted() && core.cycle() < 5'000'000) {
    (void)core.Run(rng.Range(50, 800));  // irregular interleaving points
    if (!core.halted() && !core.metal_mode() && rng.Chance(1, 3)) {
      const uint32_t target = rng.Chance(1, 2) ? kShared : kShared + 4;
      const uint32_t balance = core.bus().dram().Read32(target).value_or(0);
      ASSERT_OK(StmExtension::InjectRemoteCommit(core, kClockAddr, kVtblAddr, kVtblWords,
                                                 target, balance + 1));
      ++credits;
    }
  }
  ASSERT_TRUE(core.halted());
  const uint32_t a = core.bus().dram().Read32(kShared).value_or(0);
  const uint32_t b = core.bus().dram().Read32(kShared + 4).value_or(0);
  EXPECT_EQ(a + b, 2000u + credits)
      << "A=" << a << " B=" << b << " credits=" << credits
      << " aborts=" << StmExtension::Aborts(core).value();
  EXPECT_EQ(StmExtension::Commits(core).value(), 40u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StmLinearizabilityTest, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace msim
