// Interrupt delivery: delegation to mroutines, enable/pending masking, and
// Metal-mode non-interruptibility (paper §2.1).
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

class InterruptTest : public ::testing::Test {
 protected:
  void Boot(std::string_view mcode, std::string_view program,
            const CoreConfig& config = CoreConfig{}) {
    core_ = std::make_unique<Core>(config);
    MustLoadMcodeRaw(*core_, mcode);
    ASSERT_OK(core_->LoadProgram(MustAssemble(program)));
  }
  Core& core() { return *core_; }
  std::unique_ptr<Core> core_;
};

// Counts timer interrupts in MRAM data[0]; acks the device each time.
constexpr const char* kTimerHandler = R"(
    .mentry 1, irq
  irq:
    wmr m10, t0
    wmr m11, t1
    mld t0, 0(zero)
    addi t0, t0, 1
    mst t0, 0(zero)
    # ack: W1C the timer line in the interrupt controller
    li t0, 0xF0000008
    li t1, 1
    psw t1, 0(t0)
    rmr t0, m10
    rmr t1, m11
    mexit              # m31 = interrupted pc: resume exactly
)";

TEST_F(InterruptTest, TimerInterruptDelivered) {
  Boot(kTimerHandler, R"(
    _start:
      li t2, 20000
    loop:
      addi t2, t2, -1
      bnez t2, loop
      halt zero
  )");
  core().metal().DelegateIrq(1);
  core().metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
  core().timer().Write32(12, 1000);  // interval
  core().timer().Write32(4, 1000);   // compare
  core().timer().Write32(8, 1);      // enable
  const RunResult r = core().Run(2'000'000);
  EXPECT_EQ(r.reason, RunResult::Reason::kHalted) << r.fatal_message;
  const uint32_t count = core().mram().ReadData32(0).value_or(0);
  EXPECT_GE(count, 10u);
  EXPECT_EQ(core().stats().interrupts, count);
}

TEST_F(InterruptTest, MaskedInterruptNotDelivered) {
  Boot(kTimerHandler, R"(
    _start:
      li t2, 5000
    loop:
      addi t2, t2, -1
      bnez t2, loop
      halt zero
  )");
  core().metal().DelegateIrq(1);
  core().metal().WriteCreg(kCrIenable, 0);  // all masked
  core().timer().Write32(12, 500);
  core().timer().Write32(4, 500);
  core().timer().Write32(8, 1);
  MustHalt(core(), 0);
  EXPECT_EQ(core().stats().interrupts, 0u);
  EXPECT_NE(core().intc().pending(), 0u);  // raised but not taken
}

TEST_F(InterruptTest, InterruptResumesInterruptedLoopCorrectly) {
  // The loop result must be unaffected by interrupts (precise resume).
  Boot(kTimerHandler, R"(
    _start:
      li a0, 0
      li t2, 10000
    loop:
      addi a0, a0, 1
      addi t2, t2, -1
      bnez t2, loop
      halt a0
  )");
  core().metal().DelegateIrq(1);
  core().metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
  core().timer().Write32(12, 777);
  core().timer().Write32(4, 777);
  core().timer().Write32(8, 1);
  MustHalt(core(), 10000);
  EXPECT_GT(core().stats().interrupts, 0u);
}

TEST_F(InterruptTest, MroutinesAreNonInterruptible) {
  // A long-running mroutine must never be interrupted: the handler would
  // observe a Metal-mode re-entry (fatal) if delivery were attempted.
  Boot(R"(
      .mentry 1, irq
    irq:
      mld t0, 0(zero)
      addi t0, t0, 1
      mst t0, 0(zero)
      li t0, 0xF0000008
      li t1, 1
      psw t1, 0(t0)
      mexit
      .mentry 2, long_routine
    long_routine:
      li t0, 3000          # longer than the timer interval
    spin:
      addi t0, t0, -1
      bnez t0, spin
      li a0, 1
      mexit
  )",
       R"(
    _start:
      menter 2
      # interrupts only fire here, after the mroutine completes
      li t2, 5000
    loop:
      addi t2, t2, -1
      bnez t2, loop
      halt a0
  )");
  core().metal().DelegateIrq(1);
  core().metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
  core().timer().Write32(12, 100);
  core().timer().Write32(4, 100);
  core().timer().Write32(8, 1);
  const RunResult r = core().Run(2'000'000);
  // No fatal: delivery was deferred until normal mode.
  EXPECT_EQ(r.reason, RunResult::Reason::kHalted) << r.fatal_message;
  EXPECT_EQ(r.exit_code, 1u);
  EXPECT_GT(core().stats().interrupts, 0u);
}

TEST_F(InterruptTest, SoftwareInterruptViaIntcRegister) {
  Boot(R"(
      .mentry 1, irq
    irq:
      rcr a0, 0              # cause
      li t0, 0xF0000008
      li t1, 8               # ack software line (3)
      psw t1, 0(t0)
      # skip halt-loop: jump to done
      mld t0, 4(zero)
      wmr m31, t0
      mexit
  )",
       R"(
    _start:
      li t0, 0xF0000004      # intc RAISE register
      li t1, 8               # line 3
      sw t1, 0(t0)
    spin:
      j spin
    done:
      halt a0
  )");
  core().metal().DelegateIrq(1);
  core().metal().WriteCreg(kCrIenable, 1u << kIrqSoftware);
  // Tell the handler where "done" is via MRAM data[4].
  const Program program = MustAssemble(R"(
    _start:
      li t0, 0xF0000004
      li t1, 8
      sw t1, 0(t0)
    spin:
      j spin
    done:
      halt a0
  )");
  ASSERT_TRUE(core().mram().WriteData32(4, program.symbols.at("done")));
  const RunResult r = core().Run(1'000'000);
  EXPECT_EQ(r.reason, RunResult::Reason::kHalted) << r.fatal_message;
  EXPECT_EQ(r.exit_code, kInterruptCauseFlag | kIrqSoftware);
}

TEST_F(InterruptTest, NicInterruptWakesReceiver) {
  Boot(R"(
      .mentry 1, irq
    irq:
      # read one word from the NIC and stash it for the app
      li t0, 0xF0002008      # RX_POP
      plw t1, 0(t0)
      mst t1, 8(zero)
      li t0, 0xF0000008
      li t1, 2               # ack NIC line (1)
      psw t1, 0(t0)
      li t2, 1
      mst t2, 12(zero)       # flag: got it
      mexit
  )",
       R"(
    _start:
    wait:
      j wait
  )");
  core().metal().DelegateIrq(1);
  core().metal().WriteCreg(kCrIenable, 1u << kIrqNic);
  core().nic().SchedulePacket(500, {0xAA, 0xBB, 0xCC, 0xDD});
  (void)core().Run(2000);
  EXPECT_EQ(core().mram().ReadData32(8).value_or(0), 0xDDCCBBAAu);
  EXPECT_EQ(core().mram().ReadData32(12).value_or(0), 1u);
}

}  // namespace
}  // namespace msim
