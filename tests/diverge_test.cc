// Tests for the lockstep divergence detector (src/snap/diverge.h): an
// injected fault must be pinpointed to its exact cycle with a structured
// architectural diff (true positive), identical machines must compare clean
// (true negative), and the retire-granularity canonicalization must make
// storage/transition modes architecturally invisible.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cpu/core.h"
#include "fault/fault.h"
#include "metal/system.h"
#include "snap/diverge.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

// The bump mroutine counts in m7 and leaves the new value in t0 for the
// caller, so corrupting m7 is architecturally visible to the program.
constexpr const char* kMcode = R"(
    .mentry 1, bump
  bump:
    rmr t0, m7
    addi t0, t0, 1
    wmr m7, t0
    mst t0, 0(zero)
    mexit
)";

constexpr const char* kProgram = R"(
  _start:
    la t6, scratch
    li s11, 40
  loop:
    menter 1
    sw t0, 0(t6)
    addi s11, s11, -1
    bnez s11, loop
    andi a0, t0, 0x7F
    halt a0
  .data
  scratch:
    .word 0
)";

void Build(MetalSystem& system, const char* program = kProgram) {
  system.AddMcode(kMcode);
  ASSERT_OK(system.LoadProgramSource(program));
}

TEST(LockstepCycleTest, TrueNegativeIdenticalMachines) {
  MetalSystem a;
  MetalSystem b;
  Build(a);
  Build(b);
  LockstepOptions options;
  options.granularity = CompareGranularity::kCycle;
  const auto report = RunLockstep(a, b, options);
  ASSERT_OK(report.status());
  EXPECT_FALSE(report->diverged);
  EXPECT_TRUE(report->a_finished);
  EXPECT_TRUE(report->b_finished);
  EXPECT_EQ(a.core().exit_code(), 40u);
}

TEST(LockstepCycleTest, TruePositivePinpointsInjectionCycle) {
  MetalSystem a;
  MetalSystem b;
  Build(a);
  Build(b);
  // Flip bit 0 of m3 in machine B at exactly cycle 100. The detector must
  // report cycle 100, name the Metal unit, and show the m3 delta.
  FaultEngine faults(0);
  ASSERT_OK(faults.AddSpec("mreg@100:at=3,bit=0"));
  b.core().SetFaultEngine(&faults);

  LockstepOptions options;
  options.granularity = CompareGranularity::kCycle;
  const auto report = RunLockstep(a, b, options);
  ASSERT_OK(report.status());
  ASSERT_TRUE(report->diverged);
  EXPECT_EQ(report->cycle_a, 100u);
  EXPECT_EQ(report->cycle_b, 100u);
  ASSERT_EQ(report->components.size(), 1u);
  EXPECT_EQ(report->components[0], "metal-unit");
  bool saw_m3 = false;
  for (const RegDelta& delta : report->deltas) {
    if (delta.name == "m3") {
      saw_m3 = true;
      EXPECT_EQ(delta.a ^ delta.b, 1u);
    }
  }
  EXPECT_TRUE(saw_m3);
}

TEST(LockstepCycleTest, LateInjectionAfterHaltIsClean) {
  // A fault scheduled past the end of the program never fires; the machines
  // stay identical through the halt.
  MetalSystem a;
  MetalSystem b;
  Build(a);
  Build(b);
  FaultEngine faults(0);
  ASSERT_OK(faults.AddSpec("mreg@100000000:at=3,bit=0"));
  b.core().SetFaultEngine(&faults);
  LockstepOptions options;
  options.granularity = CompareGranularity::kCycle;
  const auto report = RunLockstep(a, b, options);
  ASSERT_OK(report.status());
  EXPECT_FALSE(report->diverged);
}

TEST(LockstepRetireTest, StorageModesAreArchitecturallyInvisible) {
  CoreConfig dram;
  dram.mroutine_storage = MroutineStorage::kDramCached;
  MetalSystem a;
  MetalSystem b(dram);
  Build(a);
  Build(b);
  LockstepOptions options;
  options.granularity = CompareGranularity::kRetire;
  options.metal_pc_insensitive = true;      // mroutines live at different PCs
  options.ignore_transition_retires = true; // fast path exists only under MRAM
  const auto report = RunLockstep(a, b, options);
  ASSERT_OK(report.status());
  EXPECT_FALSE(report->diverged) << report->summary;
  EXPECT_EQ(a.core().exit_code(), b.core().exit_code());
}

TEST(LockstepRetireTest, FastAndSlowTransitionsRetireTheSameStream) {
  CoreConfig slow;
  slow.fast_transition = false;
  MetalSystem a;
  MetalSystem b(slow);
  Build(a);
  Build(b);
  LockstepOptions options;
  options.granularity = CompareGranularity::kRetire;
  options.ignore_transition_retires = true;
  const auto report = RunLockstep(a, b, options);
  ASSERT_OK(report.status());
  EXPECT_FALSE(report->diverged) << report->summary;
}

TEST(LockstepRetireTest, CorruptedMregSurfacesAsRetireDivergence) {
  // The injected m7 corruption changes the value the program stores and
  // halts with; the retire comparator reports machines differing in outcome.
  MetalSystem a;
  MetalSystem b;
  Build(a);
  Build(b);
  FaultEngine faults(0);
  ASSERT_OK(faults.AddSpec("mreg@50:at=7,mask=0xFF"));
  b.core().SetFaultEngine(&faults);
  LockstepOptions options;
  options.granularity = CompareGranularity::kRetire;
  const auto report = RunLockstep(a, b, options);
  ASSERT_OK(report.status());
  EXPECT_TRUE(report->diverged);
}

TEST(DivergenceReportTest, JsonAndTextIncludeTheDiff) {
  MetalSystem a;
  MetalSystem b;
  Build(a);
  Build(b);
  FaultEngine faults(0);
  ASSERT_OK(faults.AddSpec("mreg@100:at=3,bit=0"));
  b.core().SetFaultEngine(&faults);
  LockstepOptions options;
  options.granularity = CompareGranularity::kCycle;
  const auto report = RunLockstep(a, b, options);
  ASSERT_OK(report.status());
  ASSERT_TRUE(report->diverged);

  std::ostringstream json;
  WriteDivergenceJson(*report, json);
  EXPECT_NE(json.str().find("\"diverged\":true"), std::string::npos);
  EXPECT_NE(json.str().find("\"cycle_a\":100"), std::string::npos);
  EXPECT_NE(json.str().find("metal-unit"), std::string::npos);

  std::ostringstream text;
  WriteDivergenceText(*report, text);
  EXPECT_NE(text.str().find("cycle 100"), std::string::npos);
  EXPECT_NE(text.str().find("m3"), std::string::npos);
}

}  // namespace
}  // namespace msim
