// Tests for the robustness layer (src/fault/): fault-spec parsing, the
// deterministic injection engine, MRAM parity machine checks with
// scrub-and-retry recovery, the Metal-mode watchdog, and crash dumps.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cpu/creg.h"
#include "fault/crash_dump.h"
#include "fault/fault.h"
#include "metal/system.h"
#include "tests/sim_test_util.h"
#include "trace/flight.h"
#include "trace/json.h"
#include "trace/trace.h"

namespace msim {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing.

TEST(FaultSpecTest, ParsesOneShotWithBit) {
  const auto spec = ParseFaultSpec("mram-code@100:bit=3");
  ASSERT_OK(spec.status());
  EXPECT_EQ(spec->target, FaultTarget::kMramCode);
  EXPECT_FALSE(spec->probabilistic);
  EXPECT_EQ(spec->cycle, 100u);
  EXPECT_EQ(spec->mask, 8u);
  EXPECT_EQ(spec->mode, FaultMode::kFlip);
  EXPECT_FALSE(spec->has_at);
}

TEST(FaultSpecTest, ParsesProbabilisticTrigger) {
  const auto spec = ParseFaultSpec("bus@~1000");
  ASSERT_OK(spec.status());
  EXPECT_EQ(spec->target, FaultTarget::kBus);
  EXPECT_TRUE(spec->probabilistic);
  EXPECT_EQ(spec->period, 1000u);
}

TEST(FaultSpecTest, BitsAccumulateAndAtPinsLocation) {
  const auto spec = ParseFaultSpec("mram-data@5:bit=0,bit=4,at=64");
  ASSERT_OK(spec.status());
  EXPECT_EQ(spec->mask, 0x11u);
  EXPECT_TRUE(spec->has_at);
  EXPECT_EQ(spec->at, 64u);
}

TEST(FaultSpecTest, ParsesStuckAtModes) {
  const auto stuck0 = ParseFaultSpec("mreg@50:at=7,mask=255,stuck=0");
  ASSERT_OK(stuck0.status());
  EXPECT_EQ(stuck0->mode, FaultMode::kStuck0);
  const auto stuck1 = ParseFaultSpec("tlb@50:stuck=1");
  ASSERT_OK(stuck1.status());
  EXPECT_EQ(stuck1->mode, FaultMode::kStuck1);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  const char* kBad[] = {
      "mram-code",             // no trigger
      "flux-capacitor@5",      // unknown target
      "mram-code@soon",        // non-numeric trigger
      "mram-code@~0",          // zero period
      "mram-code@5:bit=32",    // bit out of range
      "mram-code@5:stuck=2",   // stuck must be 0|1
      "mram-code@5:color=red", // unknown parameter
      "mram-code@5:bit",       // not KEY=VALUE
  };
  for (const char* text : kBad) {
    const auto spec = ParseFaultSpec(text);
    EXPECT_FALSE(spec.ok()) << "accepted: " << text;
    EXPECT_EQ(spec.status().code(), ErrorCode::kParseError) << text;
    // Every diagnostic names the offending spec.
    EXPECT_NE(spec.status().message().find(text), std::string::npos) << text;
  }
}

TEST(FaultSpecTest, RejectsZeroWidthMask) {
  const auto spec = ParseFaultSpec("mram-code@5:mask=0");
  EXPECT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("mask=0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Strict semantic validation (msim exits 2 on these instead of silently
// running a spec that can never fire).

TEST(FaultValidateTest, TargetCapacitiesMatchTheMachine) {
  const CoreConfig config;
  EXPECT_EQ(FaultTargetCapacity(FaultTarget::kMramCode, config), kMramCodeSize / 4);
  EXPECT_EQ(FaultTargetCapacity(FaultTarget::kMramData, config), kMramDataSize / 4);
  EXPECT_EQ(FaultTargetCapacity(FaultTarget::kMreg, config), 32u);
  EXPECT_EQ(FaultTargetCapacity(FaultTarget::kTlb, config), config.tlb_entries);
  EXPECT_EQ(FaultTargetCapacity(FaultTarget::kICache, config), config.icache_lines);
  EXPECT_EQ(FaultTargetCapacity(FaultTarget::kDCache, config), config.dcache_lines);
  EXPECT_EQ(FaultTargetCapacity(FaultTarget::kBus, config), 1u);
}

TEST(FaultValidateTest, AcceptsInRangeSpecs) {
  const CoreConfig config;
  for (const char* text : {"mram-code@5:at=16380", "mram-data@5:at=8188,bit=31",
                           "mreg@5:at=31", "tlb@~100:at=31", "icache@5:at=63",
                           "dcache@5:at=0", "bus@5:bit=7"}) {
    const auto spec = ParseFaultSpec(text);
    ASSERT_OK(spec.status());
    EXPECT_OK(ValidateFaultSpec(*spec, config, /*max_cycles=*/1000));
  }
}

TEST(FaultValidateTest, RejectsOutOfRangeLocations) {
  const CoreConfig config;
  for (const char* text : {"mram-code@5:at=16384",  // one past the code array
                           "mram-data@5:at=8192",   // one past the data array
                           "mreg@5:at=32", "tlb@5:at=32", "icache@5:at=64",
                           "dcache@5:at=64", "bus@5:at=0"}) {  // bus has no location
    const auto spec = ParseFaultSpec(text);
    ASSERT_OK(spec.status());
    const Status status = ValidateFaultSpec(*spec, config, /*max_cycles=*/1000);
    EXPECT_FALSE(status.ok()) << "accepted: " << text;
    EXPECT_NE(status.message().find(text), std::string::npos) << text;
  }
}

TEST(FaultValidateTest, RejectsUnreachableTriggerCycle) {
  const CoreConfig config;
  const auto spec = ParseFaultSpec("mram-code@1000");
  ASSERT_OK(spec.status());
  EXPECT_FALSE(ValidateFaultSpec(*spec, config, /*max_cycles=*/1000).ok());  // fires at >= 1000
  EXPECT_OK(ValidateFaultSpec(*spec, config, /*max_cycles=*/1001));
  EXPECT_OK(ValidateFaultSpec(*spec, config, /*max_cycles=*/0));  // 0 = no budget
  // Probabilistic triggers have no fixed cycle, so no budget check applies.
  const auto prob = ParseFaultSpec("mram-code@~50");
  ASSERT_OK(prob.status());
  EXPECT_OK(ValidateFaultSpec(*prob, config, /*max_cycles=*/10));
}

TEST(FaultValidateTest, DescribeFaultTargetsCoversEveryTarget) {
  const CoreConfig config;
  const std::string text = DescribeFaultTargets(config);
  for (const char* name : {"mram-code", "mram-data", "mreg", "tlb", "icache", "dcache", "bus"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("SPEC"), std::string::npos);  // the grammar rides along
}

// ---------------------------------------------------------------------------
// Shared scenarios.

// Counter "accelerator" (entry 1) with state in MRAM data, plus a
// machine-check recovery mroutine (entry 2) that scrubs and retries.
constexpr const char* kCounterMcode = R"(
    .equ D_COUNT, 0
    .equ CR_MEPC, 1
    .equ CR_MRAM_SCRUB, 52
    .mentry 1, count_add
    .mentry 2, recover
  count_add:
    mld t0, D_COUNT(zero)
    add t0, t0, a0
    mst t0, D_COUNT(zero)
    mv a0, t0
    mexit
  recover:
    wcr CR_MRAM_SCRUB, zero
    rcr t0, CR_MEPC
    wmr m31, t0
    mexit
)";

constexpr const char* kCounterProgram = R"(
  _start:
    li s0, 10
    li s1, 0
  loop:
    li a0, 7
    menter 1
    mv s1, a0
    addi s0, s0, -1
    bnez s0, loop
    halt s1
)";

// Entry 1 spins forever; entry 2 just returns to the interrupted program.
constexpr const char* kSpinMcode = R"(
    .mentry 1, spin
    .mentry 2, bail
  spin:
    j spin
  bail:
    mexit
)";

constexpr const char* kSpinProgram = R"(
  _start:
    menter 1
    li a0, 55
    halt a0
)";

// ---------------------------------------------------------------------------
// Injection engine + parity machine checks.

TEST(FaultEngineTest, DataParityFlipIsScrubbedAndRetried) {
  MetalSystem system;
  system.AddMcode(kCounterMcode);
  system.DelegateException(ExcCause::kMachineCheck, 2);
  ASSERT_OK(system.LoadProgramSource(kCounterProgram));

  FaultEngine engine(/*seed=*/1);
  ASSERT_OK(engine.AddSpec("mram-data@120:at=0,bit=13"));
  system.core().SetFaultEngine(&engine);

  MustHalt(system, 70);
  EXPECT_EQ(engine.injections(), 1u);
  EXPECT_EQ(system.core().stats().machine_checks, 1u);
  EXPECT_GE(system.core().mram().stats().parity_errors, 1u);
  EXPECT_GE(system.core().mram().stats().words_scrubbed, 1u);
}

TEST(FaultEngineTest, CodeParityFlipIsScrubbedAndRetried) {
  MetalSystem system;
  system.AddMcode(kCounterMcode);
  system.DelegateException(ExcCause::kMachineCheck, 2);
  ASSERT_OK(system.LoadProgramSource(kCounterProgram));
  ASSERT_OK(system.Boot());

  // Flip a bit of the accelerator's first instruction, behind the write path.
  const auto entry = system.EntryAddress(1);
  ASSERT_OK(entry.status());
  const uint32_t offset = *entry - kMramCodeBase;
  ASSERT_TRUE(system.core().mram().CorruptCodeWord(offset, 0xFFFFFFFFu, 1u << 9));

  MustHalt(system, 70);
  EXPECT_EQ(system.core().stats().machine_checks, 1u);
  EXPECT_GE(system.core().mram().stats().words_scrubbed, 1u);
}

TEST(FaultEngineTest, UndelegatedParityMachineCheckIsFatal) {
  MetalSystem system;
  system.AddMcode(kCounterMcode);  // entry 2 exists but is not delegated
  ASSERT_OK(system.LoadProgramSource(kCounterProgram));

  FaultEngine engine(/*seed=*/1);
  ASSERT_OK(engine.AddSpec("mram-data@120:at=0,bit=13"));
  system.core().SetFaultEngine(&engine);

  const RunResult result = system.Run(100'000);
  EXPECT_EQ(result.reason, RunResult::Reason::kFatal);
  EXPECT_NE(result.fatal_message.find("undelegated machine check"), std::string::npos)
      << result.fatal_message;
  EXPECT_NE(result.fatal_message.find("mram_data_parity"), std::string::npos)
      << result.fatal_message;
}

TEST(FaultEngineTest, ParityDisabledLetsCorruptionThroughSilently) {
  CoreConfig config;
  config.mram_parity = false;
  MetalSystem system(config);
  system.AddMcode(kCounterMcode);
  system.DelegateException(ExcCause::kMachineCheck, 2);
  ASSERT_OK(system.LoadProgramSource(kCounterProgram));

  FaultEngine engine(/*seed=*/1);
  ASSERT_OK(engine.AddSpec("mram-data@120:at=0,bit=13"));
  system.core().SetFaultEngine(&engine);

  const RunResult result = system.Run(100'000);
  EXPECT_EQ(result.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(system.core().stats().machine_checks, 0u);
  EXPECT_NE(result.exit_code, 70u);  // the flipped bit reached the sum
}

TEST(FaultEngineTest, BusFaultCorruptsNextLoadSilently) {
  Core core;
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      la t0, value
      lw a0, 0(t0)
      halt a0
      .data
    value:
      .word 5
  )")));
  FaultEngine engine(/*seed=*/3);
  ASSERT_OK(engine.AddSpec("bus@0:mask=255"));
  core.SetFaultEngine(&engine);
  MustHalt(core, 5u ^ 255u);
  EXPECT_EQ(core.stats().machine_checks, 0u);
}

TEST(FaultEngineTest, MregFlipChangesMetalState) {
  // m5 accumulates across invocations; flipping a bit of it mid-run shows up
  // in the final total (no parity on mregs — silent corruption).
  MetalSystem system;
  system.AddMcode(R"(
      .mentry 1, acc
    acc:
      rmr t0, m5
      add t0, t0, a0
      wmr m5, t0
      mv a0, t0
      mexit
  )");
  ASSERT_OK(system.LoadProgramSource(kCounterProgram));
  FaultEngine engine(/*seed=*/4);
  ASSERT_OK(engine.AddSpec("mreg@60:at=5,bit=20"));
  system.core().SetFaultEngine(&engine);
  const RunResult result = system.Run(100'000);
  EXPECT_EQ(result.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(result.exit_code, 70u + (1u << 20));
  EXPECT_EQ(engine.injections(), 1u);
}

TEST(FaultEngineTest, ProbabilisticInjectionIsDeterministic) {
  const auto count_injections = [](uint64_t seed) {
    MetalSystem system;
    system.AddMcode(kCounterMcode);
    system.DelegateException(ExcCause::kMachineCheck, 2);
    if (!system.LoadProgramSource(kCounterProgram).ok()) return uint64_t{0};
    FaultEngine engine(seed);
    if (!engine.AddSpec("dcache@~40").ok()) return uint64_t{0};
    system.core().SetFaultEngine(&engine);
    system.Run(100'000);
    return engine.injections();
  };
  const uint64_t first = count_injections(99);
  EXPECT_EQ(first, count_injections(99));
  // Not a hard guarantee per seed, but with a 1/40 rate over hundreds of
  // cycles this seed does inject; guards against Tick never drawing.
  EXPECT_GT(first, 0u);
}

// ---------------------------------------------------------------------------
// Watchdog.

TEST(WatchdogTest, DelegatedWatchdogRecoversRunawayMroutine) {
  CoreConfig config;
  config.metal_watchdog_cycles = 200;
  MetalSystem system(config);
  system.AddMcode(kSpinMcode);
  system.DelegateException(ExcCause::kMachineCheck, 2);
  ASSERT_OK(system.LoadProgramSource(kSpinProgram));

  MustHalt(system, 55, 100'000);
  EXPECT_EQ(system.core().stats().watchdog_fires, 1u);
  EXPECT_EQ(system.core().stats().machine_checks, 1u);
}

TEST(WatchdogTest, UndelegatedWatchdogIsFatalAndNamesEntry) {
  CoreConfig config;
  config.metal_watchdog_cycles = 200;
  MetalSystem system(config);
  system.AddMcode(kSpinMcode);
  ASSERT_OK(system.LoadProgramSource(kSpinProgram));

  const RunResult result = system.Run(100'000);
  EXPECT_EQ(result.reason, RunResult::Reason::kFatal);
  EXPECT_NE(result.fatal_message.find("undelegated machine check"), std::string::npos)
      << result.fatal_message;
  EXPECT_NE(result.fatal_message.find("mroutine entry 1"), std::string::npos)
      << result.fatal_message;
}

TEST(WatchdogTest, RunawayRecoveryHandlerIsDoubleMachineCheck) {
  // The recovery mroutine itself spins: the second watchdog fire lands while
  // in_machine_check is still set, which must be fatal, not recursive.
  CoreConfig config;
  config.metal_watchdog_cycles = 200;
  MetalSystem system(config);
  system.AddMcode(R"(
      .mentry 1, spin
      .mentry 2, spin2
    spin:
      j spin
    spin2:
      j spin2
  )");
  system.DelegateException(ExcCause::kMachineCheck, 2);
  ASSERT_OK(system.LoadProgramSource(kSpinProgram));

  const RunResult result = system.Run(100'000);
  EXPECT_EQ(result.reason, RunResult::Reason::kFatal);
  EXPECT_NE(result.fatal_message.find("double machine check"), std::string::npos)
      << result.fatal_message;
  EXPECT_EQ(system.core().stats().watchdog_fires, 2u);
}

TEST(WatchdogTest, DisabledWatchdogNeverFires) {
  MetalSystem system;  // metal_watchdog_cycles defaults to 0 = disabled
  system.AddMcode(kSpinMcode);
  system.DelegateException(ExcCause::kMachineCheck, 2);
  ASSERT_OK(system.LoadProgramSource(kSpinProgram));
  const RunResult result = system.Run(10'000);
  EXPECT_EQ(result.reason, RunResult::Reason::kCycleLimit);
  EXPECT_EQ(system.core().stats().watchdog_fires, 0u);
}

// ---------------------------------------------------------------------------
// Machine-check architectural state.

TEST(MachineCheckTest, CregsRecordKindInfoAndSavedM31) {
  CoreConfig config;
  config.metal_watchdog_cycles = 200;
  MetalSystem system(config);
  system.AddMcode(R"(
      .equ CR_MCHECK_KIND, 49
      .equ CR_MCHECK_INFO, 50
      .mentry 1, spin
      .mentry 2, report
    spin:
      j spin
    report:
      rcr a0, CR_MCHECK_KIND
      rcr a1, CR_MCHECK_INFO
      # fold kind (3 = watchdog) and info (offending entry = 1) into the exit
      slli a0, a0, 4
      or a0, a0, a1
      wmr m30, a0
      mexit
  )");
  system.DelegateException(ExcCause::kMachineCheck, 2);
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      menter 1
      halt zero
  )"));
  MustHalt(system, 0, 100'000);
  EXPECT_EQ(system.core().metal().ReadMreg(30), (3u << 4) | 1u);
}

TEST(MachineCheckTest, TrapInsideMetalModeBecomesDoubleTrapCheck) {
  // A normal-mode-style fault raised while executing mcode cannot be taken as
  // an ordinary trap; it must surface as a double-trap machine check.
  MetalSystem system;
  system.AddMcode(R"(
      .mentry 1, bad_load
    bad_load:
      li t0, 0x7FFFFFF0
      lw t1, 0(t0)
      mexit
  )");
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      menter 1
      halt zero
  )"));
  const RunResult result = system.Run(100'000);
  EXPECT_EQ(result.reason, RunResult::Reason::kFatal);
  EXPECT_NE(result.fatal_message.find("double_trap"), std::string::npos)
      << result.fatal_message;
}

// ---------------------------------------------------------------------------
// Crash dumps.

TEST(CrashDumpTest, DumpIsValidJsonAndRecordsMachineCheck) {
  CoreConfig config;
  config.metal_watchdog_cycles = 200;
  MetalSystem system(config);
  system.AddMcode(kSpinMcode);
  ASSERT_OK(system.LoadProgramSource(kSpinProgram));
  RingBufferSink ring;
  FlightRecorder flight;
  TeeSink tee;
  tee.Add(&ring);
  tee.Add(&flight);
  system.SetTraceSink(&tee);

  const RunResult result = system.Run(100'000);
  ASSERT_EQ(result.reason, RunResult::Reason::kFatal);

  CrashDumpOptions options;
  options.reason = "fatal";
  options.fatal_message = result.fatal_message;
  std::ostringstream out;
  WriteCrashDump(system.core(), &ring, &flight, options, out);
  const std::string dump = out.str();

  EXPECT_TRUE(JsonLooksValid(dump)) << dump;
  EXPECT_NE(dump.find("\"kind_name\":\"watchdog\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"machine_check\""), std::string::npos);
  EXPECT_NE(dump.find("\"trace\""), std::string::npos);
  EXPECT_NE(dump.find("\"flight_recorder\""), std::string::npos);
  EXPECT_GT(flight.total(), 0u);
}

TEST(CrashDumpTest, SameSeedAndSpecGiveByteIdenticalDumps) {
  const auto run_and_dump = [](uint64_t seed) {
    MetalSystem system;
    system.AddMcode(kCounterMcode);
    system.DelegateException(ExcCause::kMachineCheck, 2);
    EXPECT_OK(system.LoadProgramSource(kCounterProgram));
    RingBufferSink ring;
    system.SetTraceSink(&ring);
    FaultEngine engine(seed);
    EXPECT_OK(engine.AddSpec("mram-data@~60"));
    EXPECT_OK(engine.AddSpec("mreg@150"));
    system.core().SetFaultEngine(&engine);
    system.Run(100'000);
    CrashDumpOptions options;
    options.reason = "halted";
    std::ostringstream out;
    WriteCrashDump(system.core(), &ring, /*flight=*/nullptr, options, out);
    return out.str();
  };
  const std::string first = run_and_dump(7);
  EXPECT_EQ(first, run_and_dump(7));
  EXPECT_NE(first, run_and_dump(8));  // the seed actually steers the upsets
  EXPECT_TRUE(JsonLooksValid(first));
}

}  // namespace
}  // namespace msim
