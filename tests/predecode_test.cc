// Predecode cache + hot-path stepping (docs/performance.md).
//
// Two properties are under test, both "invisible by construction":
//   1. StepFast is cycle- and byte-exact: after the same number of cycles a
//      fast_step core serializes to the identical SaveState stream as a
//      per-cycle core.
//   2. The predecode cache never changes behavior: for every invalidation
//      source in the coherence matrix (mst/loader writes, MRAMSCRUB,
//      fault-engine flips behind the write path, self-modifying DRAM stores,
//      snapshot restore) the retire stream matches a no-cache reference core
//      cycle for cycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/core.h"
#include "cpu/creg.h"
#include "fault/fault.h"
#include "metal/system.h"
#include "snap/snapshot.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

struct Retire {
  uint64_t cycle;
  uint32_t pc;
  uint32_t raw;
  bool metal;
  bool operator==(const Retire& o) const {
    return cycle == o.cycle && pc == o.pc && raw == o.raw && metal == o.metal;
  }
};

void RecordRetires(Core& core, std::vector<Retire>* out) {
  core.SetRetireTrace([out](const Core::RetireEvent& e) {
    out->push_back(Retire{e.cycle, e.pc, e.raw, e.metal});
  });
}

void ExpectSameRetires(const std::vector<Retire>& a, const std::vector<Retire>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "retire " << i << ": cycle " << a[i].cycle << " pc 0x"
                              << std::hex << a[i].pc << " raw 0x" << a[i].raw
                              << " vs cycle " << std::dec << b[i].cycle << " pc 0x"
                              << std::hex << b[i].pc << " raw 0x" << b[i].raw;
    if (!(a[i] == b[i])) {
      return;  // the first divergence is the informative one
    }
  }
}

// A no-cache, per-cycle reference configuration. Both knobs are
// architecturally invisible, so a default core must match it cycle-exactly.
CoreConfig ReferenceConfig() {
  CoreConfig config;
  config.predecode_entries = 0;
  config.fast_step = false;
  return config;
}

// ---------------------------------------------------------------------------
// StepFast byte-exactness.
// ---------------------------------------------------------------------------

// ALU/branch loop interleaved with loads and stores: windows open over the
// inner loop and break on every memory access and at the taken-branch refills.
constexpr const char* kMixedProgram = R"(
  _start:
    la s2, counter
    li s0, 400
    li s1, 0
  outer:
    li t0, 9
  inner:
    addi s1, s1, 3
    xor s1, s1, t0
    addi t0, t0, -1
    bne t0, zero, inner
    lw t1, 0(s2)
    addi t1, t1, 1
    sw t1, 0(s2)
    addi s0, s0, -1
    bne s0, zero, outer
    lw a0, 0(s2)
    halt a0
    .data
  counter:
    .word 0
)";

TEST(FastStepTest, ByteExactAgainstPerCycleAtManySyncPoints) {
  CoreConfig fast_config;  // defaults: fast_step on, predecode on
  Core fast(fast_config);
  CoreConfig slow_config = fast_config;
  slow_config.fast_step = false;  // same predecode geometry, per-cycle stepping
  Core slow(slow_config);
  const Program program = MustAssemble(kMixedProgram);
  ASSERT_OK(fast.LoadProgram(program));
  ASSERT_OK(slow.LoadProgram(program));

  std::vector<Retire> fast_retires, slow_retires;
  RecordRetires(fast, &fast_retires);
  RecordRetires(slow, &slow_retires);

  // Deliberately awkward chunk sizes so sync points land inside windows, on
  // taken branches and mid-refill. CoreConfigHash excludes fast_step, so the
  // SaveState streams (and hence digests) are comparable across the pair.
  const uint64_t kChunks[] = {1, 2, 3, 7, 64, 129, 1000, 4096, 977, 50000};
  uint64_t at = 0;
  for (const uint64_t chunk : kChunks) {
    fast.Run(chunk);
    slow.Run(chunk);
    at += chunk;
    ASSERT_EQ(fast.cycle(), slow.cycle()) << "after " << at << " cycles";
    ASSERT_EQ(fast.StateDigest(/*include_dram=*/true),
              slow.StateDigest(/*include_dram=*/true))
        << "state diverged by cycle " << at;
  }
  const RunResult fr = fast.Run(2'000'000);
  const RunResult sr = slow.Run(2'000'000);
  EXPECT_EQ(fr.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(sr.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(fr.exit_code, sr.exit_code);
  EXPECT_EQ(fast.StateDigest(true), slow.StateDigest(true));
  ExpectSameRetires(fast_retires, slow_retires);
}

// Counts timer interrupts in MRAM data[0] (same handler as interrupt_test).
constexpr const char* kTimerHandler = R"(
    .mentry 1, irq
  irq:
    wmr m10, t0
    wmr m11, t1
    mld t0, 0(zero)
    addi t0, t0, 1
    mst t0, 0(zero)
    li t0, 0xF0000008
    li t1, 1
    psw t1, 0(t0)
    rmr t0, m10
    rmr t1, m11
    mexit
)";

TEST(FastStepTest, ByteExactWithTimerInterrupts) {
  // Device events and interrupt delivery exercise the event-horizon exit and
  // the single TickDevices catch-up: the fast core must take every interrupt
  // at exactly the cycle the per-cycle core does.
  auto boot = [](Core& core) {
    MustLoadMcodeRaw(core, kTimerHandler);
    ASSERT_OK(core.LoadProgram(MustAssemble(R"(
      _start:
        li t2, 30000
      loop:
        addi t2, t2, -1
        bne t2, zero, loop
        halt zero
    )")));
    core.metal().DelegateIrq(1);
    core.metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
    core.timer().Write32(12, 700);  // interval
    core.timer().Write32(4, 700);   // compare
    core.timer().Write32(8, 1);     // enable
  };
  CoreConfig fast_config;
  Core fast(fast_config);
  CoreConfig slow_config = fast_config;
  slow_config.fast_step = false;
  Core slow(slow_config);
  boot(fast);
  boot(slow);

  const uint64_t kChunks[] = {500, 333, 1024, 10000, 50000};
  for (const uint64_t chunk : kChunks) {
    fast.Run(chunk);
    slow.Run(chunk);
    ASSERT_EQ(fast.cycle(), slow.cycle());
    ASSERT_EQ(fast.StateDigest(true), slow.StateDigest(true))
        << "diverged by cycle " << fast.cycle();
  }
  const RunResult fr = fast.Run(2'000'000);
  const RunResult sr = slow.Run(2'000'000);
  EXPECT_EQ(fr.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(sr.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(fast.stats().interrupts, slow.stats().interrupts);
  EXPECT_GE(fast.stats().interrupts, 10u);
  EXPECT_EQ(fast.StateDigest(true), slow.StateDigest(true));
}

TEST(FastStepTest, RetireBoundedSteppingStopsExactly) {
  // The lockstep pump (snap/diverge) relies on max_retires: a bounded call
  // must never overshoot, and the bounded trajectory must match an unbounded
  // per-cycle run.
  Core fast;  // defaults
  ASSERT_OK(fast.LoadProgram(MustAssemble(kMixedProgram)));
  std::vector<Retire> retires;
  RecordRetires(fast, &retires);
  // Pump forward 10 retires at a time using the public StepFast + StepCycle
  // fallback, mirroring RunRetireLockstep's structure.
  while (!fast.halted() && retires.size() < 500) {
    const size_t before = retires.size();
    if (fast.StepFast(100000, /*max_retires=*/10) == 0) {
      fast.StepCycle();
    }
    EXPECT_LE(retires.size() - before, 10u);
  }
  Core slow(ReferenceConfig());
  ASSERT_OK(slow.LoadProgram(MustAssemble(kMixedProgram)));
  std::vector<Retire> slow_retires;
  RecordRetires(slow, &slow_retires);
  while (!slow.halted() && slow_retires.size() < retires.size()) {
    slow.StepCycle();
  }
  ASSERT_GE(slow_retires.size(), retires.size());
  slow_retires.resize(retires.size());
  ExpectSameRetires(retires, slow_retires);
}

TEST(FastStepTest, SingleCycleLockstepHoldsAtEveryHorizonBoundary) {
  // Horizon audit regression: pump the fast core ONE cycle at a time
  // (StepFast(1) with the StepCycle fallback, exactly the diverge-pump
  // shape) against a per-cycle core, with a short-interval timer so device
  // horizons land on every possible window phase — mid-trace, on chained
  // back edges, during refills. A window or trace that commits even one
  // cycle at or past its horizon shows up as a digest mismatch at that
  // exact cycle instead of a smeared end-of-run failure.
  auto boot = [](Core& core) {
    MustLoadMcodeRaw(core, kTimerHandler);
    ASSERT_OK(core.LoadProgram(MustAssemble(R"(
      _start:
        li t2, 3000
      loop:
        addi t2, t2, -1
        bne t2, zero, loop
        halt zero
    )")));
    core.metal().DelegateIrq(1);
    core.metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
    core.timer().Write32(12, 97);  // short, odd interval: all phases hit
    core.timer().Write32(4, 97);
    core.timer().Write32(8, 1);
  };
  Core fast;  // defaults: fast_step + superblocks
  CoreConfig slow_config;
  slow_config.fast_step = false;
  Core slow(slow_config);
  boot(fast);
  boot(slow);
  while (!fast.halted() && !slow.halted()) {
    if (fast.StepFast(1) == 0) {
      fast.StepCycle();
    }
    slow.StepCycle();
    ASSERT_EQ(fast.cycle(), slow.cycle());
    // DRAM excluded per cycle to keep the pump cheap; the program never
    // stores, and the final full digest below covers memory anyway.
    ASSERT_EQ(fast.StateDigest(/*include_dram=*/false),
              slow.StateDigest(/*include_dram=*/false))
        << "diverged at cycle " << fast.cycle();
  }
  EXPECT_TRUE(fast.halted());
  EXPECT_TRUE(slow.halted());
  EXPECT_EQ(fast.StateDigest(true), slow.StateDigest(true));
  EXPECT_GE(fast.stats().interrupts, 10u);
}

// ---------------------------------------------------------------------------
// Invalidation matrix: every coherence source vs the no-cache reference.
// ---------------------------------------------------------------------------

// Patches its own inner loop after three iterations: the stored word must
// take effect on the very next fetch, exactly as without the cache.
constexpr const char* kSelfModifyingProgram = R"(
  _start:
    la t0, slot
    la t1, patch
    lw t1, 0(t1)
    li s0, 6
    li s1, 0
  loop:
  slot:
    addi s1, s1, 1
    addi s0, s0, -1
    beq s0, zero, done
    li t2, 3
    bne s0, t2, loop
    sw t1, 0(t0)
    j loop
  done:
    halt s1
  patch:
    addi s1, s1, 5
)";

TEST(PredecodeInvalidationTest, SelfModifyingStoreMatchesNoCacheReference) {
  Core cached;  // defaults: predecode on, fast_step on
  Core reference(ReferenceConfig());
  ASSERT_OK(cached.LoadProgram(MustAssemble(kSelfModifyingProgram)));
  ASSERT_OK(reference.LoadProgram(MustAssemble(kSelfModifyingProgram)));
  std::vector<Retire> a, b;
  RecordRetires(cached, &a);
  RecordRetires(reference, &b);
  // 3 iterations of +1, then the patched +5 for the remaining 3.
  MustHalt(cached, 18);
  MustHalt(reference, 18);
  ExpectSameRetires(a, b);
  EXPECT_GT(cached.predecode().stats().hits, 0u);
}

// Accumulates into MRAM data with mld/mst: every mst bumps the shared MRAM
// generation, so cached decodes of the mroutine's own code must re-verify.
constexpr const char* kCounterMcode = R"(
    .mentry 1, count_add
  count_add:
    mld t0, 0(zero)
    add t0, t0, a0
    mst t0, 0(zero)
    mv a0, t0
    mexit
)";

constexpr const char* kCounterProgram = R"(
  _start:
    li s0, 10
    li s1, 0
  loop:
    li a0, 7
    menter 1
    mv s1, a0
    addi s0, s0, -1
    bne s0, zero, loop
    halt s1
)";

TEST(PredecodeInvalidationTest, MstGenerationBumpKeepsMramDecodesCoherent) {
  MetalSystem cached;  // defaults
  MetalSystem reference(ReferenceConfig());
  for (MetalSystem* s : {&cached, &reference}) {
    s->AddMcode(kCounterMcode);
    ASSERT_OK(s->LoadProgramSource(kCounterProgram));
  }
  std::vector<Retire> a, b;
  RecordRetires(cached.core(), &a);
  RecordRetires(reference.core(), &b);
  MustHalt(cached, 70);
  MustHalt(reference, 70);
  ExpectSameRetires(a, b);
  // The generation bumps forced re-verification, not silent stale hits:
  // verified hits happened, and the caches agree on the architectural result.
  EXPECT_GT(cached.core().predecode().stats().verified_hits, 0u);
}

// 400 invocations (exit 2800): long enough that mid-run corruption at a few
// thousand cycles lands while the accelerator loop is still hot.
constexpr const char* kLongCounterProgram = R"(
  _start:
    li s0, 400
    li s1, 0
  loop:
    li a0, 7
    menter 1
    mv s1, a0
    addi s0, s0, -1
    bne s0, zero, loop
    halt s1
)";

TEST(PredecodeInvalidationTest, ScrubRestoresCorruptedDecodeIdentically) {
  // With parity off, a bit flipped behind the write path silently decodes to
  // a DIFFERENT valid instruction (add -> sub at bit 30) and gets cached.
  // MRAMSCRUB then restores the word from the shadow copy; the generation
  // bump must invalidate the cached corrupt decode on both machines alike.
  CoreConfig cached_config;
  cached_config.mram_parity = false;
  CoreConfig reference_config = ReferenceConfig();
  reference_config.mram_parity = false;
  MetalSystem cached(cached_config);
  MetalSystem reference(reference_config);
  for (MetalSystem* s : {&cached, &reference}) {
    s->AddMcode(kCounterMcode);
    ASSERT_OK(s->LoadProgramSource(kLongCounterProgram));
    ASSERT_OK(s->Boot());
  }
  std::vector<Retire> a, b;
  RecordRetires(cached.core(), &a);
  RecordRetires(reference.core(), &b);

  auto drive = [](MetalSystem& s) -> RunResult {
    s.Run(1500);  // invocations fill the predecode cache
    // Flip `add t0, t0, a0` (second mroutine word) into `sub`.
    EXPECT_TRUE(s.core().mram().CorruptCodeWord(4, 0xFFFFFFFFu, 1u << 30));
    s.Run(1500);  // the corrupted decode is fetched, cached and executed
    EXPECT_GT(s.core().mram().Scrub(), 0u);  // MRAMSCRUB restores + bumps gen
    return s.Run(2'000'000);
  };
  const RunResult ra = drive(cached);
  const RunResult rb = drive(reference);
  EXPECT_EQ(ra.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(rb.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(ra.exit_code, rb.exit_code);
  // The corruption must actually have been observed (sub ran for a while).
  EXPECT_NE(ra.exit_code, 2800u);
  ExpectSameRetires(a, b);
}

TEST(PredecodeInvalidationTest, FaultEngineMramCodeFlipMatchesReference) {
  CoreConfig cached_config;
  cached_config.mram_parity = false;
  CoreConfig reference_config = ReferenceConfig();
  reference_config.mram_parity = false;
  MetalSystem cached(cached_config);
  MetalSystem reference(reference_config);
  FaultEngine cached_engine(/*seed=*/7);
  FaultEngine reference_engine(/*seed=*/7);
  // Pinned location and bit: add -> sub, mid-run, silently (parity off).
  ASSERT_OK(cached_engine.AddSpec("mram-code@3000:at=4,bit=30"));
  ASSERT_OK(reference_engine.AddSpec("mram-code@3000:at=4,bit=30"));
  cached.core().SetFaultEngine(&cached_engine);
  reference.core().SetFaultEngine(&reference_engine);
  for (MetalSystem* s : {&cached, &reference}) {
    s->AddMcode(kCounterMcode);
    ASSERT_OK(s->LoadProgramSource(kLongCounterProgram));
  }
  std::vector<Retire> a, b;
  RecordRetires(cached.core(), &a);
  RecordRetires(reference.core(), &b);
  const RunResult ra = cached.Run(2'000'000);
  const RunResult rb = reference.Run(2'000'000);
  EXPECT_EQ(cached_engine.injections(), 1u);
  EXPECT_EQ(ra.reason, rb.reason);
  EXPECT_EQ(ra.exit_code, rb.exit_code);
  EXPECT_NE(ra.exit_code, 2800u);  // the flip changed the result on both
  ExpectSameRetires(a, b);
}

TEST(PredecodeInvalidationTest, SnapshotRestoreMidLoopResumesIdentically) {
  // Restore must resume with the saved predecode contents (or an invalidated
  // cache — either way, identical behavior): the continuation retire stream
  // of the restored machine must equal the uninterrupted one.
  Core original;  // defaults: predecode on, fast_step on
  ASSERT_OK(original.LoadProgram(MustAssemble(kMixedProgram)));
  original.Run(1234);  // mid-loop, predecode warm
  const std::vector<uint8_t> image = SaveSnapshot(original);
  const uint64_t digest_at_save = original.StateDigest(true);

  std::vector<Retire> rest_of_original;
  RecordRetires(original, &rest_of_original);
  const RunResult ro = original.Run(2'000'000);
  EXPECT_EQ(ro.reason, RunResult::Reason::kHalted);

  // Same config restore.
  Core restored;
  ASSERT_OK(RestoreSnapshot(restored, image));
  EXPECT_EQ(restored.StateDigest(true), digest_at_save);
  std::vector<Retire> rest_of_restored;
  RecordRetires(restored, &rest_of_restored);
  const RunResult rr = restored.Run(2'000'000);
  EXPECT_EQ(rr.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(rr.exit_code, ro.exit_code);
  ExpectSameRetires(rest_of_original, rest_of_restored);

  // A snapshot taken under fast_step restores into a per-cycle core (the
  // config hash deliberately excludes fast_step) and resumes identically.
  CoreConfig slow_config;
  slow_config.fast_step = false;
  Core slow(slow_config);
  ASSERT_OK(RestoreSnapshot(slow, image));
  EXPECT_EQ(slow.StateDigest(true), digest_at_save);
  std::vector<Retire> rest_of_slow;
  RecordRetires(slow, &rest_of_slow);
  const RunResult rs = slow.Run(2'000'000);
  EXPECT_EQ(rs.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(rs.exit_code, ro.exit_code);
  ExpectSameRetires(rest_of_original, rest_of_slow);
}

// ---------------------------------------------------------------------------
// Decode-trap audit: undecodable mroutine words.
// ---------------------------------------------------------------------------

TEST(PredecodeTrapTest, UndecodableMroutineWordTrapsIdenticallyCachedAndNot) {
  // With parity disabled (--no-parity), a word zeroed behind the write path
  // is fetched silently and fails decode. Whether the word enters EX via the
  // decode-stage replacement chain (fast_transition) or via a redirected
  // Metal-frontend fetch, and whether the decode came from the predecode
  // cache or cold, the trap must be the same illegal-instruction exception.
  auto run_one = [](bool predecode_on, bool fast_transition,
                    std::vector<Retire>* retires, CoreStats* stats) -> RunResult {
    CoreConfig config;
    config.mram_parity = false;
    config.fast_transition = fast_transition;
    if (!predecode_on) {
      config.predecode_entries = 0;
      config.fast_step = false;
    }
    MetalSystem system(config);
    system.AddMcode(kCounterMcode);
    EXPECT_OK(system.LoadProgramSource(kCounterProgram));
    EXPECT_OK(system.Boot());
    // Zero the mroutine's FIRST word (the replacement-chain target).
    EXPECT_TRUE(system.core().mram().CorruptCodeWord(0, 0u, 0u));
    RecordRetires(system.core(), retires);
    const RunResult r = system.Run(100'000);
    *stats = system.core().stats();
    return r;
  };

  for (const bool fast_transition : {true, false}) {
    std::vector<Retire> cached_retires, reference_retires;
    CoreStats cached_stats, reference_stats;
    const RunResult cached =
        run_one(/*predecode_on=*/true, fast_transition, &cached_retires, &cached_stats);
    const RunResult reference = run_one(/*predecode_on=*/false, fast_transition,
                                        &reference_retires, &reference_stats);
    // The undelegated illegal-instruction trap from Metal mode must surface
    // the same way on both machines, at the same point in the program.
    EXPECT_EQ(cached.reason, reference.reason) << "fast_transition=" << fast_transition;
    EXPECT_EQ(cached.exit_code, reference.exit_code);
    EXPECT_EQ(cached.fatal_message, reference.fatal_message);
    EXPECT_EQ(cached_stats.exceptions, reference_stats.exceptions);
    EXPECT_EQ(cached_stats.machine_checks, reference_stats.machine_checks);
    ExpectSameRetires(cached_retires, reference_retires);
  }
}

}  // namespace
}  // namespace msim
