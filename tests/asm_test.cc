#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "isa/decode.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

uint32_t TextWord(const Program& program, size_t index) {
  uint32_t word = 0;
  for (int b = 0; b < 4; ++b) {
    word |= static_cast<uint32_t>(program.text.bytes[4 * index + b]) << (8 * b);
  }
  return word;
}

TEST(AssemblerTest, BasicInstruction) {
  const Program program = MustAssemble("add a0, a1, a2");
  ASSERT_EQ(program.text.bytes.size(), 4u);
  const Decoded d = DecodeInstr(TextWord(program, 0));
  EXPECT_EQ(d.kind, InstrKind::kAdd);
  EXPECT_EQ(d.rd, 10);
  EXPECT_EQ(d.rs1, 11);
  EXPECT_EQ(d.rs2, 12);
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  const Program program = MustAssemble(R"(
    # full line comment
    add a0, a1, a2   # trailing
    sub a0, a0, a1   // c++ style
    and a0, a0, a1   ; asm style
  )");
  EXPECT_EQ(program.text.bytes.size(), 12u);
}

TEST(AssemblerTest, LabelsAndBranches) {
  const Program program = MustAssemble(R"(
    _start:
      beq a0, a1, done
      addi a0, a0, 1
    done:
      halt a0
  )");
  const Decoded beq = DecodeInstr(TextWord(program, 0));
  EXPECT_EQ(beq.kind, InstrKind::kBeq);
  EXPECT_EQ(beq.imm, 8);  // two instructions forward
  EXPECT_EQ(program.entry, program.symbols.at("_start"));
}

TEST(AssemblerTest, BackwardBranch) {
  const Program program = MustAssemble(R"(
    loop:
      addi a0, a0, -1
      bnez a0, loop
  )");
  const Decoded bne = DecodeInstr(TextWord(program, 1));
  EXPECT_EQ(bne.kind, InstrKind::kBne);
  EXPECT_EQ(bne.imm, -4);
}

TEST(AssemblerTest, MultipleLabelsSameAddress) {
  const Program program = MustAssemble(R"(
    a: b: c:
      nop
  )");
  EXPECT_EQ(program.symbols.at("a"), program.symbols.at("c"));
}

TEST(AssemblerTest, LiSmallExpandsToOneInstruction) {
  const Program program = MustAssemble("li a0, 42");
  ASSERT_EQ(program.text.bytes.size(), 4u);
  const Decoded d = DecodeInstr(TextWord(program, 0));
  EXPECT_EQ(d.kind, InstrKind::kAddi);
  EXPECT_EQ(d.imm, 42);
}

TEST(AssemblerTest, LiLargeExpandsToLuiAddi) {
  const Program program = MustAssemble("li a0, 0xDEADBEEF");
  ASSERT_EQ(program.text.bytes.size(), 8u);
  EXPECT_EQ(DecodeInstr(TextWord(program, 0)).kind, InstrKind::kLui);
  EXPECT_EQ(DecodeInstr(TextWord(program, 1)).kind, InstrKind::kAddi);
}

TEST(AssemblerTest, LiNegative) {
  const Program program = MustAssemble("li a0, -1");
  ASSERT_EQ(program.text.bytes.size(), 4u);
  EXPECT_EQ(DecodeInstr(TextWord(program, 0)).imm, -1);
}

TEST(AssemblerTest, LaUsesHiLo) {
  const Program program = MustAssemble(R"(
    .data
    value: .word 7
    .text
    _start:
      la a0, value
  )");
  ASSERT_EQ(program.text.bytes.size(), 8u);
  const uint32_t addr = program.symbols.at("value");
  const Decoded lui = DecodeInstr(TextWord(program, 0));
  const Decoded addi = DecodeInstr(TextWord(program, 1));
  const uint32_t materialized =
      (static_cast<uint32_t>(lui.imm) << 12) + static_cast<uint32_t>(addi.imm);
  EXPECT_EQ(materialized, addr);
}

TEST(AssemblerTest, PseudoInstructions) {
  const Program program = MustAssemble(R"(
    nop
    mv a0, a1
    not a0, a1
    neg a0, a1
    seqz a0, a1
    snez a0, a1
    j target
    jr ra
    ret
  target:
    call target
  )");
  EXPECT_EQ(program.text.bytes.size(), 10 * 4u);
  EXPECT_EQ(DecodeInstr(TextWord(program, 0)).kind, InstrKind::kAddi);  // nop
  EXPECT_EQ(DecodeInstr(TextWord(program, 6)).kind, InstrKind::kJal);   // j
  EXPECT_EQ(DecodeInstr(TextWord(program, 6)).rd, 0);
  EXPECT_EQ(DecodeInstr(TextWord(program, 9)).rd, 1);                   // call links ra
}

TEST(AssemblerTest, ConditionalPseudos) {
  const Program program = MustAssemble(R"(
    t:
    beqz a0, t
    bnez a0, t
    blez a0, t
    bgez a0, t
    bltz a0, t
    bgtz a0, t
    bgt a0, a1, t
    ble a0, a1, t
    bgtu a0, a1, t
    bleu a0, a1, t
  )");
  EXPECT_EQ(program.text.bytes.size(), 40u);
  // bgt a,b swaps into blt b,a
  const Decoded bgt = DecodeInstr(TextWord(program, 6));
  EXPECT_EQ(bgt.kind, InstrKind::kBlt);
  EXPECT_EQ(bgt.rs1, 11);
  EXPECT_EQ(bgt.rs2, 10);
}

TEST(AssemblerTest, DataDirectives) {
  const Program program = MustAssemble(R"(
    .data
    words: .word 1, 2, 0xFFFFFFFF
    halves: .half 3, 4
    bytes: .byte 5, 6, 7
    str: .asciz "hi\n"
    .align 2
    aligned: .word 8
  )");
  EXPECT_EQ(program.data.bytes[0], 1);
  EXPECT_EQ(program.data.bytes[8], 0xFF);
  EXPECT_EQ(program.symbols.at("halves"), program.symbols.at("words") + 12);
  EXPECT_EQ(program.data.bytes[program.symbols.at("str") - program.data.base], 'h');
  EXPECT_EQ(program.symbols.at("aligned") % 4, 0u);
}

TEST(AssemblerTest, EquAndExpressions) {
  const Program program = MustAssemble(R"(
    .equ BASE, 0x100
    .equ SIZE, 16
    li a0, BASE + SIZE
    li a1, BASE - 1
    li a2, -(SIZE)
  )");
  EXPECT_EQ(DecodeInstr(TextWord(program, 0)).imm, 0x110);
  EXPECT_EQ(DecodeInstr(TextWord(program, 1)).imm, 0xFF);
  EXPECT_EQ(DecodeInstr(TextWord(program, 2)).imm, -16);
}

TEST(AssemblerTest, HiLoRelocations) {
  const Program program = MustAssemble(R"(
    .equ ADDR, 0x12345FFF
    lui a0, %hi(ADDR)
    addi a0, a0, %lo(ADDR)
  )");
  const Decoded lui = DecodeInstr(TextWord(program, 0));
  const Decoded addi = DecodeInstr(TextWord(program, 1));
  EXPECT_EQ((static_cast<uint32_t>(lui.imm) << 12) + static_cast<uint32_t>(addi.imm),
            0x12345FFFu);
}

TEST(AssemblerTest, MentryDirective) {
  AssembleOptions options;
  options.text_base = 0x1000;
  const Program program = MustAssemble(R"(
      .mentry 5, handler
      nop
    handler:
      mexit
  )",
                                       options);
  ASSERT_TRUE(program.metal_entries.contains(5));
  EXPECT_EQ(program.metal_entries.at(5), program.symbols.at("handler"));
}

TEST(AssemblerTest, MetalInstructions) {
  const Program program = MustAssemble(R"(
    menter 7
    mexit
    rmr a0, m3
    wmr m3, a0
    mld a0, 8(zero)
    mst a0, 8(zero)
    rcr a0, cr6
    wcr 6, a0
    plw a0, 0(a1)
    psw a0, 0(a1)
    tlbwr a0, a1
    tlbinv a0
    tlbflush zero
    tlbrd a0, a1
    mintset a0, a1
    mopr a0, 1
    mopw a0
    halt
  )");
  EXPECT_EQ(program.text.bytes.size(), 18 * 4u);
  EXPECT_EQ(DecodeInstr(TextWord(program, 0)).kind, InstrKind::kMenter);
  EXPECT_EQ(DecodeInstr(TextWord(program, 0)).imm, 7);
  EXPECT_EQ(DecodeInstr(TextWord(program, 6)).kind, InstrKind::kRcr);
  EXPECT_EQ(DecodeInstr(TextWord(program, 6)).imm, 6);
  EXPECT_EQ(DecodeInstr(TextWord(program, 15)).kind, InstrKind::kMopr);
  EXPECT_EQ(DecodeInstr(TextWord(program, 15)).rs2, 1);
}

TEST(AssemblerTest, OrgAndSpace) {
  AssembleOptions options;
  options.text_base = 0x1000;
  const Program program = MustAssemble(R"(
      nop
      .org 0x1010
    here:
      nop
  )",
                                       options);
  EXPECT_EQ(program.symbols.at("here"), 0x1010u);
  EXPECT_EQ(program.text.bytes.size(), 0x14u);
}

// ---- Error cases ----------------------------------------------------------

TEST(AssemblerErrorTest, UnknownMnemonic) {
  auto result = Assemble("frobnicate a0");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown mnemonic"), std::string::npos);
}

TEST(AssemblerErrorTest, UndefinedSymbol) {
  auto result = Assemble("j nowhere");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("nowhere"), std::string::npos);
}

TEST(AssemblerErrorTest, DuplicateLabel) {
  auto result = Assemble("a:\na:\n nop");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(AssemblerErrorTest, ImmediateOutOfRange) {
  auto result = Assemble("addi a0, a0, 5000");
  ASSERT_FALSE(result.ok());
}

TEST(AssemblerErrorTest, WrongOperandCount) {
  auto result = Assemble("add a0, a1");
  ASSERT_FALSE(result.ok());
}

TEST(AssemblerErrorTest, LiWithLabelRejected) {
  auto result = Assemble("li a0, later\nlater: nop");
  ASSERT_FALSE(result.ok());
}

TEST(AssemblerErrorTest, ErrorNamesLine) {
  auto result = Assemble("nop\nnop\nbogus x9\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(AssemblerErrorTest, InstructionsInDataRejected) {
  auto result = Assemble(".data\n add a0, a1, a2\n");
  ASSERT_FALSE(result.ok());
}

TEST(AssemblerErrorTest, OrgBackwardsRejected) {
  auto result = Assemble("nop\n.org 0\n");
  ASSERT_FALSE(result.ok());
}

TEST(AssemblerErrorTest, BadMentryNumber) {
  auto result = Assemble(".mentry 64, h\nh: mexit\n");
  ASSERT_FALSE(result.ok());
}

}  // namespace
}  // namespace msim
