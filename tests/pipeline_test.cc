// Functional and timing tests of the 5-stage pipeline.
#include <gtest/gtest.h>

#include "tests/sim_test_util.h"

namespace msim {
namespace {

// Runs an assembly program on a fresh default core and returns the result.
RunResult RunProgram(std::string_view source, const CoreConfig& config = CoreConfig{}) {
  Core core(config);
  const Program program = MustAssemble(source);
  EXPECT_OK(core.LoadProgram(program));
  return core.Run(2'000'000);
}

// Fixture keeping the core alive for post-run inspection.
class PipelineTest : public ::testing::Test {
 protected:
  RunResult Run(std::string_view source, const CoreConfig& config = CoreConfig{}) {
    core_ = std::make_unique<Core>(config);
    const Program program = MustAssemble(source);
    EXPECT_OK(core_->LoadProgram(program));
    return core_->Run(2'000'000);
  }

  Core& core() { return *core_; }

  std::unique_ptr<Core> core_;
};

TEST_F(PipelineTest, ArithmeticHaltsWithResult) {
  const RunResult r = Run(R"(
    _start:
      li a0, 20
      li a1, 22
      add a0, a0, a1
      halt a0
  )");
  EXPECT_EQ(r.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(r.exit_code, 42u);
}

TEST_F(PipelineTest, SumLoop) {
  const RunResult r = Run(R"(
    _start:
      li a0, 0
      li t0, 1
      li t1, 101
    loop:
      add a0, a0, t0
      addi t0, t0, 1
      bne t0, t1, loop
      halt a0
  )");
  EXPECT_EQ(r.exit_code, 5050u);
}

TEST_F(PipelineTest, ComparisonAndLogicOps) {
  const RunResult r = Run(R"(
    _start:
      li t0, -5
      li t1, 3
      slt t2, t0, t1      # 1 (signed)
      sltu t3, t0, t1     # 0 (unsigned: big)
      xor t4, t0, t1      # -8+... just use known: -5 ^ 3 = -8
      and t5, t0, t1      # 3
      or t6, t0, t1       # -5
      slli a0, t2, 4      # 0x10
      add a0, a0, t3      # 0x10
      li a1, -8
      bne t4, a1, fail
      li a1, 3
      bne t5, a1, fail
      li a1, -5
      bne t6, a1, fail
      halt a0
    fail:
      li a0, 99
      halt a0
  )");
  EXPECT_EQ(r.exit_code, 0x10u);
}

TEST_F(PipelineTest, ShiftsAndArithmeticRightShift) {
  const RunResult r = Run(R"(
    _start:
      li t0, -16
      srai t1, t0, 2     # -4
      srli t2, t0, 28    # 0xF
      li t3, 1
      sll t3, t3, t2     # 1 << 15
      li a0, 0
      li t4, -4
      bne t1, t4, fail
      li t4, 15
      bne t2, t4, fail
      li t4, 0x8000
      bne t3, t4, fail
      li a0, 1
      halt a0
    fail:
      halt zero
  )");
  EXPECT_EQ(r.exit_code, 1u);
}

TEST_F(PipelineTest, MulDivRem) {
  const RunResult r = Run(R"(
    _start:
      li t0, -7
      li t1, 3
      mul t2, t0, t1      # -21
      div t3, t0, t1      # -2 (trunc)
      rem t4, t0, t1      # -1
      divu t5, t0, t1     # big
      li a0, 0
      li t6, -21
      bne t2, t6, fail
      li t6, -2
      bne t3, t6, fail
      li t6, -1
      bne t4, t6, fail
      # div by zero: result all ones, no trap (RISC-V semantics)
      div t6, t1, zero
      li t5, -1
      bne t6, t5, fail
      rem t6, t1, zero    # dividend
      bne t6, t1, fail
      li a0, 1
      halt a0
    fail:
      halt zero
  )");
  EXPECT_EQ(r.exit_code, 1u);
}

TEST_F(PipelineTest, MulhVariants) {
  const RunResult r = Run(R"(
    _start:
      li t0, 0x40000000
      li t1, 4
      mulhu t2, t0, t1     # (0x40000000 * 4) >> 32 = 1
      li t3, -1
      mulh t4, t3, t3      # (-1 * -1) >> 32 = 0
      mulhsu t5, t3, t1    # (-1 * 4) >> 32 = -1
      li a0, 0
      li t6, 1
      bne t2, t6, fail
      bnez t4, fail
      li t6, -1
      bne t5, t6, fail
      li a0, 1
      halt a0
    fail:
      halt zero
  )");
  EXPECT_EQ(r.exit_code, 1u);
}

TEST_F(PipelineTest, LoadStoreAllWidths) {
  const RunResult r = Run(R"(
    _start:
      la t0, buffer
      li t1, 0x80FF7F01
      sw t1, 0(t0)
      lb t2, 0(t0)        # 0x01
      lb t3, 1(t0)        # 0x7F
      lb t4, 2(t0)        # -1 (0xFF sign-extended)
      lbu t5, 2(t0)       # 0xFF
      lh t6, 2(t0)        # 0x80FF sign-extended = negative
      lhu a1, 2(t0)       # 0x80FF
      li a0, 0
      li a2, 1
      bne t2, a2, fail
      li a2, 0x7F
      bne t3, a2, fail
      li a2, -1
      bne t4, a2, fail
      li a2, 0xFF
      bne t5, a2, fail
      li a2, -32513        # 0xFFFF80FF
      bne t6, a2, fail
      li a2, 0x80FF
      bne a1, a2, fail
      # byte/halfword stores
      sb a2, 4(t0)
      lbu a3, 4(t0)
      li a2, 0xFF
      bne a3, a2, fail
      li a0, 1
      halt a0
    fail:
      halt zero
    .data
    buffer: .space 16
  )");
  EXPECT_EQ(r.exit_code, 1u);
}

TEST_F(PipelineTest, JalJalrLinkAndCall) {
  const RunResult r = Run(R"(
    _start:
      li sp, 0x8000
      li a0, 5
      call double_it
      call double_it
      halt a0            # 20
    double_it:
      add a0, a0, a0
      ret
  )");
  EXPECT_EQ(r.exit_code, 20u);
}

TEST_F(PipelineTest, JalrClearsLowBit) {
  const RunResult r = Run(R"(
    _start:
      la t0, target
      ori t0, t0, 1
      jalr ra, 0(t0)     # bit 0 cleared by hardware
      halt zero
    target:
      li a0, 7
      halt a0
  )");
  EXPECT_EQ(r.exit_code, 7u);
}

TEST_F(PipelineTest, AuipcIsPcRelative) {
  const RunResult r = Run(R"(
    _start:
      auipc a0, 0
      la a1, _start
      sub a0, a0, a1
      halt a0           # 0: auipc at _start
  )");
  EXPECT_EQ(r.exit_code, 0u);
}

TEST_F(PipelineTest, BranchTakenAndNotTaken) {
  const RunResult r = Run(R"(
    _start:
      li a0, 0
      li t0, 3
      li t1, 5
      blt t0, t1, l1
      j fail
    l1:
      addi a0, a0, 1
      bge t1, t0, l2
      j fail
    l2:
      addi a0, a0, 1
      bltu t0, t1, l3
      j fail
    l3:
      addi a0, a0, 1
      bgeu t1, t0, l4
      j fail
    l4:
      addi a0, a0, 1
      beq t0, t0, l5
      j fail
    l5:
      addi a0, a0, 1
      bne t0, t1, done
      j fail
    done:
      addi a0, a0, 1
      halt a0
    fail:
      halt zero
  )");
  EXPECT_EQ(r.exit_code, 6u);
}

TEST_F(PipelineTest, X0IsHardwiredZero) {
  const RunResult r = Run(R"(
    _start:
      li t0, 77
      add zero, t0, t0
      halt zero
  )");
  EXPECT_EQ(r.exit_code, 0u);
}

// ---- Timing behaviour ------------------------------------------------------

TEST_F(PipelineTest, SteadyStateCpiApproachesOne) {
  // 2000 independent ALU ops: cycles should be ~instructions + small constant.
  std::string source = "_start:\n";
  for (int i = 0; i < 2000; ++i) {
    source += "  addi a0, a0, 1\n";
  }
  source += "  halt a0\n";
  const RunResult r = Run(source);
  EXPECT_EQ(r.exit_code, 2000u);
  // Pipeline fill + a handful of I-cache misses (2000 instrs / 16 per line).
  const uint64_t expected_overhead = 2000 / 16 * (core().config().dram_latency - 1) + 40;
  EXPECT_LT(r.cycles, 2000 + expected_overhead);
  EXPECT_GT(r.cycles, 2000u);
}

TEST_F(PipelineTest, TakenBranchCostsTwoBubbles) {
  // Tight loop: addi + taken bne = 2 instructions + 2 flush bubbles per iter.
  const RunResult r = Run(R"(
    _start:
      li t0, 1000
    loop:
      addi t0, t0, -1
      bnez t0, loop
      halt zero
  )");
  EXPECT_EQ(r.reason, RunResult::Reason::kHalted);
  // ~4 cycles per iteration.
  EXPECT_NEAR(static_cast<double>(r.cycles) / 1000.0, 4.0, 0.3);
}

TEST_F(PipelineTest, LoadUseHazardAddsOneBubble) {
  // Compare a dependent load-use pair against an independent pair.
  const char* kDependent = R"(
    _start:
      la t0, word
      li t2, 4000
    loop:
      lw t1, 0(t0)
      add t3, t1, t1     # uses t1 immediately -> 1 bubble
      addi t2, t2, -1
      bnez t2, loop
      halt zero
    .data
    word: .word 1
  )";
  const char* kIndependent = R"(
    _start:
      la t0, word
      li t2, 4000
    loop:
      lw t1, 0(t0)
      add t3, t4, t4     # independent
      addi t2, t2, -1
      bnez t2, loop
      halt zero
    .data
    word: .word 1
  )";
  const RunResult dependent = Run(kDependent);
  const uint64_t dep_cycles = dependent.cycles;
  const uint64_t dep_stalls = core().stats().load_use_stalls;
  const RunResult independent = Run(kIndependent);
  EXPECT_EQ(dependent.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(independent.reason, RunResult::Reason::kHalted);
  EXPECT_NEAR(static_cast<double>(dep_cycles - independent.cycles), 4000.0, 100.0);
  EXPECT_GE(dep_stalls, 4000u);
  EXPECT_LT(core().stats().load_use_stalls, 10u);
}

TEST_F(PipelineTest, DcacheMissCostsDramLatency) {
  // Stride past the cache so every load misses vs. hitting one line.
  const char* kMissy = R"(
    _start:
      li t0, 0x100000
      li t3, 4096
      li t2, 256
    loop:
      lw t1, 0(t0)
      add t0, t0, t3      # new line + new index every time
      addi t2, t2, -1
      bnez t2, loop
      halt zero
  )";
  const char* kHitty = R"(
    _start:
      li t0, 0x100000
      li t2, 256
    loop:
      lw t1, 0(t0)
      addi t2, t2, -1
      bnez t2, loop
      halt zero
  )";
  const RunResult missy = Run(kMissy);
  const uint64_t missy_cycles = missy.cycles;
  const RunResult hitty = Run(kHitty);
  // 256 extra misses x (dram_latency - hit) ~= 256 * 19.
  EXPECT_GT(missy_cycles, hitty.cycles + 256 * 15);
}

TEST_F(PipelineTest, InstretCountsRetiredInstructions) {
  const RunResult r = Run(R"(
    _start:
      li t0, 10
    loop:
      addi t0, t0, -1
      bnez t0, loop
      halt zero
  )");
  // li + 10 * (addi + bnez) + halt
  EXPECT_EQ(r.instret, 1 + 20 + 1u);
}

// ---- Exceptions ------------------------------------------------------------

TEST_F(PipelineTest, UndelegatedExceptionIsFatal) {
  const RunResult r = Run(R"(
    _start:
      .word 0xFFFFFFFF    # illegal instruction
  )");
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("illegal_instruction"), std::string::npos);
}

TEST_F(PipelineTest, MisalignedLoadFatalWithoutHandler) {
  const RunResult r = Run(R"(
    _start:
      li t0, 0x1001
      lw t1, 0(t0)
  )");
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("misaligned_load"), std::string::npos);
}

TEST_F(PipelineTest, BusErrorOnUnmappedMmio) {
  const RunResult r = Run(R"(
    _start:
      li t0, 0xF8000000
      lw t1, 0(t0)
  )");
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("bus_error"), std::string::npos);
}

TEST_F(PipelineTest, MetalOnlyInstructionFaultsInNormalMode) {
  const RunResult r = Run(R"(
    _start:
      tlbflush zero
  )");
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("privilege_violation"), std::string::npos);
}

TEST_F(PipelineTest, ConsoleOutput) {
  const RunResult r = Run(R"(
    _start:
      li t0, 0xF0003000
      li t1, 72          # 'H'
      sw t1, 0(t0)
      li t1, 105         # 'i'
      sw t1, 0(t0)
      halt zero
  )");
  EXPECT_EQ(r.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(core().console().output(), "Hi");
}

TEST_F(PipelineTest, CycleLimitStopsRunaway) {
  core_ = std::make_unique<Core>(CoreConfig{});
  const Program program = MustAssemble(R"(
    _start:
      j _start
  )");
  ASSERT_OK(core_->LoadProgram(program));
  const RunResult r = core_->Run(1000);
  EXPECT_EQ(r.reason, RunResult::Reason::kCycleLimit);
}

TEST_F(PipelineTest, SelfModifyingCodeTakesEffect) {
  // Store a "li a0, 9" over a "li a0, 1" before reaching it. The fetch path
  // reads DRAM functionally, so the new instruction executes.
  const RunResult r = Run(R"(
    _start:
      la t0, patch_me
      # encoding of "addi a0, zero, 9" = 0x00900513
      li t1, 0x00900513
      sw t1, 0(t0)
      # flush the pipeline with a jump so the patched word is refetched
      j patch_me
    patch_me:
      li a0, 1
      halt a0
  )");
  EXPECT_EQ(r.exit_code, 9u);
}

TEST(RunProgramHelper, Compiles) {
  // Silences unused-function warnings for the standalone helper.
  const RunResult r = RunProgram("_start: halt zero");
  EXPECT_EQ(r.reason, RunResult::Reason::kHalted);
}

}  // namespace
}  // namespace msim
