// Cross-extension integration tests: all extensions loaded into one MRAM
// image, a miniature OS combining privilege levels, custom page tables and
// preemptive timer interrupts, and ASID-based address-space isolation.
#include <gtest/gtest.h>

#include <set>

#include "cpu/creg.h"
#include "ext/caps.h"
#include "ext/cpt.h"
#include "ext/enclave.h"
#include "ext/isolation.h"
#include "ext/nested.h"
#include "ext/privilege.h"
#include "ext/shadowstack.h"
#include "ext/stm.h"
#include "ext/uli.h"
#include "metal/mroutine.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

TEST(IntegrationTest, AllExtensionsCoexistInOneMramImage) {
  // Every extension installs simultaneously: entry numbers and MRAM data
  // ranges must not collide, and the combined image must verify and fit.
  MetalSystem system;
  const Program probe = MustAssemble(R"(
    _start:
      halt zero
    kfault:
      halt zero
    .data
    syscall_table: .word kfault
  )");
  ASSERT_OK(PrivilegeExtension::Install(system, probe.symbols.at("syscall_table"), 1,
                                        probe.symbols.at("kfault")));
  ASSERT_OK(IsolationExtension::Install(system));
  ASSERT_OK(CustomPageTable::Install(system, 0));
  ASSERT_OK(StmExtension::Install(system, 0x00700000, 0x00704000, 1024));
  ASSERT_OK(UliExtension::Install(system));
  ASSERT_OK(ShadowStackExtension::Install(system));
  ASSERT_OK(CapabilityExtension::Install(system));
  ASSERT_OK(EnclaveExtension::Install(system));
  ASSERT_OK(NestedMetalExtension::Install(system));
  ASSERT_OK(system.LoadProgram(probe));
  ASSERT_OK(system.Boot());
  // Every advertised entry resolves to a distinct MRAM address.
  std::set<uint32_t> addresses;
  for (const uint32_t entry :
       {PrivilegeExtension::kKenterEntry, PrivilegeExtension::kKexitEntry,
        IsolationExtension::kEnterEntry, CustomPageTable::kFaultEntry,
        StmExtension::kTstartEntry, StmExtension::kTcommitEntry, UliExtension::kDispatchEntry,
        ShadowStackExtension::kCallEntry, CapabilityExtension::kCreateEntry,
        EnclaveExtension::kCreateEntry, NestedMetalExtension::kDispatchEntry}) {
    auto addr = system.EntryAddress(entry);
    ASSERT_OK(addr.status());
    EXPECT_TRUE(addresses.insert(*addr).second) << "entry " << entry << " address collision";
  }
  MustHalt(system, 0);
}

TEST(IntegrationTest, MiniOsWithPagingSyscallsAndPreemption) {
  // A miniature OS: user code runs under custom page tables, makes syscalls
  // through kenter/kexit, and a periodic timer interrupt increments a tick
  // counter in the kernel — all three mechanisms active at once.
  constexpr const char* kOsImage = R"(
      .equ INTC_ACK, 0xF0000008
    _start:                    # "userspace"
      li s0, 2000
    compute:
      addi s1, s1, 1
      addi s0, s0, -1
      bnez s0, compute
      li a0, 0                 # sys_ticks
      menter 8
      halt a0                  # exit with the kernel's tick count

    sys_ticks:                 # kernel: report timer ticks
      la t0, ticks
      lw a0, 0(t0)
      menter 9

    kirq:                      # kernel interrupt handler (from ULI fallback)
      # ULI dispatcher saved a0 in m6 and set kernel privilege.
      la t1, ticks
      lw t2, 0(t1)
      addi t2, t2, 1
      sw t2, 0(t1)
      li t1, 0xF0000008
      li t2, 1
      sw t2, 0(t1)             # ack the timer line
      menter 33                # uli_ret: restore a0, unmask, resume user

    kfault:
      li a0, 0xEE
      halt a0

    .data
    syscall_table:
      .word sys_ticks
    ticks:
      .word 0
  )";

  MetalSystem system;
  const Program program = MustAssemble(kOsImage);
  ASSERT_OK(PrivilegeExtension::Install(system, program.symbols.at("syscall_table"), 1,
                                        program.symbols.at("kfault")));
  ASSERT_OK(CustomPageTable::Install(system, program.symbols.at("kfault")));
  ASSERT_OK(UliExtension::Install(system));
  ASSERT_OK(system.LoadProgram(program));
  ASSERT_OK(system.Boot());

  Core& core = system.core();
  // Page tables: identity-map text/data and the MMIO pages the kernel uses.
  CustomPageTable cpt(core, 0x00400000, 0x00100000);
  const uint32_t root = *cpt.CreateAddressSpace();
  for (uint32_t page = 0; page < 16; ++page) {
    ASSERT_OK(cpt.Map(root, page * 4096, page * 4096, kPteR | kPteW | kPteX));
  }
  for (uint32_t page = 0; page < 4; ++page) {
    const uint32_t addr = 0x00100000 + page * 4096;
    ASSERT_OK(cpt.Map(root, addr, addr, kPteR | kPteW));
  }
  ASSERT_OK(cpt.Map(root, 0xF0000000, 0xF0000000, kPteR | kPteW));  // intc ack
  ASSERT_OK(cpt.Activate(root));
  core.metal().WriteCreg(kCrPgEnable, 1);
  // Kernel registers its interrupt handler through the ULI fallback path.
  ASSERT_TRUE(core.mram().WriteData32(UliExtension::kDataKernel,
                                      program.symbols.at("kirq")));
  core.metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
  core.timer().Write32(12, 700);  // periodic, every 700 cycles
  core.timer().Write32(4, 700);
  core.timer().Write32(8, 1);

  const RunResult result = system.Run(2'000'000);
  ASSERT_EQ(result.reason, RunResult::Reason::kHalted) << result.fatal_message;
  EXPECT_GE(result.exit_code, 5u);  // several ticks observed through a syscall
  EXPECT_GT(core.stats().interrupts, 0u);
  EXPECT_GT(core.mmu().tlb().stats().misses, 0u);  // paging really was on
}

TEST(IntegrationTest, AsidSeparatesAddressSpacesWithoutFlush) {
  // Two "processes" map the same virtual page to different frames under
  // different ASIDs; switching the ASID control register flips the view
  // without flushing the TLB (paper §2.3: "Address space IDs allow TLBs to
  // cache multiple address spaces").
  MetalSystem system;
  system.AddMcode(R"(
      .equ CR_ASID, 4
      .mentry 1, set_asid       # a0 = new ASID
    set_asid:
      wcr CR_ASID, a0
      mexit
  )");
  ASSERT_OK(system.LoadProgramSource(R"(
      .equ SHARED_VADDR, 0x00A00000
    _start:
      li a0, 1
      menter 1                  # run as process 1
      li t0, 0x00A00000
      lw s1, 0(t0)
      li a0, 2
      menter 1                  # switch to process 2
      li t0, 0x00A00000
      lw s2, 0(t0)
      li a0, 1
      menter 1                  # and back: must still hit the TLB
      li t0, 0x00A00000
      lw s3, 0(t0)
      bne s1, s3, fail
      slli a0, s1, 8
      or a0, a0, s2
      halt a0
    fail:
      li a0, 0xBD
      halt a0
  )"));
  ASSERT_OK(system.Boot());
  Core& core = system.core();
  // Kernel-prepared TLB: code pages global, the shared vaddr per-ASID.
  for (uint32_t page = 0; page < 16; ++page) {
    core.mmu().tlb().Insert(0x1000 + page * 4096,
                            MakePte(0x1000 + page * 4096, kPteR | kPteW | kPteX, 0,
                                    /*global=*/true),
                            0);
  }
  core.mmu().tlb().Insert(0x00A00000, MakePte(0x00180000, kPteR), /*asid=*/1);
  core.mmu().tlb().Insert(0x00A00000, MakePte(0x00190000, kPteR), /*asid=*/2);
  ASSERT_TRUE(core.bus().dram().Write32(0x00180000, 0x11));
  ASSERT_TRUE(core.bus().dram().Write32(0x00190000, 0x22));
  core.metal().WriteCreg(kCrPgEnable, 1);
  MustHalt(system, (0x11 << 8) | 0x22);
}

TEST(IntegrationTest, ShadowStackSurvivesTimerInterrupts) {
  // Control-flow protection must stay consistent when interrupts preempt the
  // program between intercepted calls and returns.
  MetalSystem system;
  ASSERT_OK(ShadowStackExtension::Install(system));
  ASSERT_OK(UliExtension::Install(system));
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      li sp, 0x8000
      la a0, kirq
      menter 35              # uli_kernel_set
      li a0, 1
      menter 38              # shadow stack on
      li s0, 200
    loop:
      call f
      addi s0, s0, -1
      bnez s0, loop
      li a0, 0
      menter 38              # off
      halt s1
    f:
      addi sp, sp, -4
      sw ra, 0(sp)
      call g
      lw ra, 0(sp)
      addi sp, sp, 4
      ret
    g:
      addi s1, s1, 1
      ret
    kirq:
      # count and ack; no calls (handler runs with interception armed)
      la t1, irqs
      lw t2, 0(t1)
      addi t2, t2, 1
      sw t2, 0(t1)
      li t1, 0xF0000008
      li t2, 1
      sw t2, 0(t1)
      menter 33
    .data
    irqs: .word 0
  )"));
  ASSERT_OK(system.Boot());
  Core& core = system.core();
  core.metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
  core.timer().Write32(12, 150);
  core.timer().Write32(4, 150);
  core.timer().Write32(8, 1);
  MustHalt(system, 200);
  const uint32_t irqs = core.bus().dram().Read32(*system.Symbol("irqs")).value_or(0);
  EXPECT_GT(irqs, 3u);
  EXPECT_GT(core.stats().intercepts, 700u);  // calls + returns, repeatedly
}

TEST(IntegrationTest, CombinedImageStillFitsMram) {
  MetalSystem system;
  std::string all;
  for (const char* source :
       {PrivilegeExtension::McodeSource(), IsolationExtension::McodeSource(),
        CustomPageTable::McodeSource(), StmExtension::McodeSource(),
        UliExtension::McodeSource(), ShadowStackExtension::McodeSource(),
        CapabilityExtension::McodeSource(), EnclaveExtension::McodeSource(),
        NestedMetalExtension::McodeSource()}) {
    all += source;
    all += "\n";
  }
  auto module = AssembleMcode(all, CoreConfig{});
  ASSERT_OK(module.status());
  EXPECT_OK(VerifyMcode(*module));
  // Report the footprint: the whole catalogue of paper applications fits in
  // a fraction of the 16 KiB MRAM.
  EXPECT_LT(module->program.text.bytes.size(), kMramCodeSize / 2);
}

}  // namespace
}  // namespace msim
