// Tests for the Metal extension: mode transitions, Metal registers, MRAM,
// control registers, delegation, interception, the verifier and the loader.
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "metal/loader.h"
#include "metal/mroutine.h"
#include "metal/system.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

class MetalTest : public ::testing::Test {
 protected:
  void Boot(std::string_view mcode, std::string_view program,
            const CoreConfig& config = CoreConfig{}) {
    core_ = std::make_unique<Core>(config);
    MustLoadMcodeRaw(*core_, mcode);
    ASSERT_OK(core_->LoadProgram(MustAssemble(program)));
  }
  Core& core() { return *core_; }
  std::unique_ptr<Core> core_;
};

TEST_F(MetalTest, MenterRunsMroutineAndReturns) {
  Boot(R"(
      .mentry 1, add100
    add100:
      addi a0, a0, 100
      mexit
  )",
       R"(
    _start:
      li a0, 5
      menter 1
      addi a0, a0, 1
      halt a0
  )");
  MustHalt(core(), 106);
  EXPECT_EQ(core().stats().menters, 1u);
  EXPECT_EQ(core().stats().mexits, 1u);
}

TEST_F(MetalTest, NoOpMroutineHasZeroOverhead) {
  // §2.2: decode-stage replacement makes a no-op round trip free.
  const char* kMcode = R"(
      .mentry 1, noop
    noop:
      mexit
  )";
  const char* kWith = R"(
    _start:
      li t0, 2000
    loop:
      menter 1
      addi t0, t0, -1
      bnez t0, loop
      halt zero
  )";
  const char* kWithout = R"(
    _start:
      li t0, 2000
    loop:
      addi t0, t0, -1
      bnez t0, loop
      halt zero
  )";
  Boot(kMcode, kWith);
  const uint64_t with_cycles = core().Run(1'000'000).cycles;
  Boot(kMcode, kWithout);
  const uint64_t without_cycles = core().Run(1'000'000).cycles;
  EXPECT_EQ(with_cycles, without_cycles);
}

TEST_F(MetalTest, M31HoldsReturnAddressAndCanBeRedirected) {
  // kenter-style control transfer: overwrite m31, mexit jumps there.
  Boot(R"(
      .mentry 2, redirect
    redirect:
      # jump to the address in a1 instead of returning
      wmr m31, a1
      mexit
  )",
       R"(
    _start:
      la a1, elsewhere
      menter 2
      halt zero          # skipped
    elsewhere:
      li a0, 77
      halt a0
  )");
  MustHalt(core(), 77);
}

TEST_F(MetalTest, MetalRegistersPersistAcrossInvocations) {
  Boot(R"(
      .mentry 3, counter
    counter:
      rmr t0, m5
      addi t0, t0, 1
      wmr m5, t0
      mv a0, t0
      mexit
  )",
       R"(
    _start:
      menter 3
      menter 3
      menter 3
      halt a0
  )");
  MustHalt(core(), 3);
  EXPECT_EQ(core().metal().ReadMreg(5), 3u);
}

TEST_F(MetalTest, MramDataSegmentPersists) {
  Boot(R"(
      .mentry 4, bump
    bump:
      mld t0, 16(zero)
      addi t0, t0, 7
      mst t0, 16(zero)
      mv a0, t0
      mexit
  )",
       R"(
    _start:
      menter 4
      menter 4
      halt a0
  )");
  MustHalt(core(), 14);
  EXPECT_EQ(core().mram().ReadData32(16), 14u);
}

TEST_F(MetalTest, McodeDataSectionInitializesMram) {
  CoreConfig config;
  MetalSystem system(config);
  system.AddMcode(R"(
      .mentry 5, read_init
    read_init:
      mld a0, 0(zero)
      mexit
      .data
      .word 0xC0FFEE
  )");
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      menter 5
      halt a0
  )"));
  MustHalt(system, 0xC0FFEE);
}

TEST_F(MetalTest, MldOutOfBoundsIsFatal) {
  Boot(R"(
      .mentry 6, bad
    bad:
      li t0, 0x4000
      mld t1, 0(t0)      # beyond the 8 KiB data segment
      mexit
  )",
       R"(
    _start:
      menter 6
      halt zero
  )");
  const RunResult r = core().Run(100000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("Metal-mode"), std::string::npos);
}

TEST_F(MetalTest, ControlRegistersScratchAndCounters) {
  Boot(R"(
      .mentry 7, crs
    crs:
      li t0, 1234
      wcr 12, t0          # scratch0
      rcr a0, 12
      rcr t1, 9           # cycle counter
      beqz t1, fail
      rcr t1, 11          # instret
      beqz t1, fail
      mexit
    fail:
      li t0, 1
      halt t0
  )",
       R"(
    _start:
      menter 7
      halt a0
  )");
  MustHalt(core(), 1234);
}

TEST_F(MetalTest, EcallDelegatesToMroutine) {
  Boot(R"(
      .mentry 9, ecall_handler
    ecall_handler:
      rcr t0, 0            # MCAUSE == 12 (ecall)
      li t1, 12
      bne t0, t1, bad
      addi a0, a0, 50
      mexit                # m31 = pc + 4: resume after the ecall
    bad:
      li t0, 99
      halt t0
  )",
       R"(
    _start:
      li a0, 1
      ecall
      halt a0
  )");
  core().metal().Delegate(ExcCause::kEcall, 9);
  MustHalt(core(), 51);
  EXPECT_EQ(core().stats().exceptions, 1u);
}

TEST_F(MetalTest, TlbMissHandlerRefillsAndRetries) {
  // A hand-rolled software TLB: identity-map the faulting page and retry.
  Boot(R"(
      .mentry 10, tlb_miss
    tlb_miss:
      rcr t0, 2            # MBADVADDR
      li t1, -4096
      and t1, t0, t1       # frame = page base (identity)
      ori t1, t1, 0x38     # R|W|X
      tlbwr t0, t1
      mexit                # retry the faulting access
  )",
       R"(
    _start:
      # enable paging via an mroutine? No: host enables below.
      la t0, value
      lw a0, 0(t0)
      halt a0
    .data
    value: .word 4242
  )");
  core().metal().Delegate(ExcCause::kTlbMissLoad, 10);
  core().metal().Delegate(ExcCause::kTlbMissStore, 10);
  core().metal().Delegate(ExcCause::kTlbMissFetch, 10);
  core().metal().WriteCreg(kCrPgEnable, 1);
  MustHalt(core(), 4242);
  EXPECT_GE(core().stats().exceptions, 2u);  // at least fetch + load misses
}

TEST_F(MetalTest, InterceptionSkipAndEmulate) {
  // Intercept stores and emulate them doubled: sw writes 2*value.
  Boot(R"(
      .mentry 11, enable
    enable:
      li t0, 0x80000023    # intercept STORE opcode
      li t1, 11
      slli t2, t1, 0       # entry 11... build target = (slot 0 << 8) | 12
      li t1, 12
      mintset t0, t1
      mexit
      .mentry 12, dbl_store
    dbl_store:
      mopr t0, 0           # rs1 value
      mopr t1, 2           # imm
      add t0, t0, t1
      mopr t1, 1           # rs2 value (store data)
      slli t1, t1, 1
      psw t1, 0(t0)
      mexit                # m31 = pc+4: skip the original store
  )",
       R"(
    _start:
      menter 11
      la t0, slot
      li t1, 21
      sw t1, 0(t0)
      lw a0, 0(t0)         # loads are NOT intercepted
      halt a0
    .data
    slot: .word 0
  )");
  MustHalt(core(), 42);
  EXPECT_EQ(core().stats().intercepts, 1u);
}

TEST_F(MetalTest, InterceptRdWritebackViaMopw) {
  // Intercept loads and return a constant through mopw.
  Boot(R"(
      .mentry 13, enable
    enable:
      li t0, 0x80000003
      li t1, 14
      mintset t0, t1
      mexit
      .mentry 14, fake_load
    fake_load:
      li t0, 1337
      mopw t0
      mexit
  )",
       R"(
    _start:
      menter 13
      la t0, slot
      lw a0, 0(t0)
      halt a0
    .data
    slot: .word 1
  )");
  MustHalt(core(), 1337);
}

TEST_F(MetalTest, InterceptDisableRestoresNormalExecution) {
  Boot(R"(
      .mentry 15, ctl
    ctl:
      beqz a0, off
      li t0, 0x80000003
      li t1, 16
      mintset t0, t1
      mexit
    off:
      li t0, 3
      li t1, 16
      mintset t0, t1
      mexit
      .mentry 16, fake
    fake:
      li t0, 5
      mopw t0
      mexit
  )",
       R"(
    _start:
      la t2, slot
      li a0, 1
      menter 15            # enable
      lw t3, 0(t2)         # -> 5
      li a0, 0
      menter 15            # disable
      lw t4, 0(t2)         # -> 9 (real memory)
      slli t3, t3, 8
      or a0, t3, t4
      halt a0
    .data
    slot: .word 9
  )");
  MustHalt(core(), (5 << 8) | 9);
}

TEST_F(MetalTest, NestedMenterFaults) {
  Boot(R"(
      .mentry 17, outer
    outer:
      menter 17          # nested entry is not architected
      mexit
  )",
       R"(
    _start:
      menter 17
      halt zero
  )");
  const RunResult r = core().Run(100000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
}

TEST_F(MetalTest, MenterToUnconfiguredEntryFaults) {
  Boot(R"(
      .mentry 18, something
    something:
      mexit
  )",
       R"(
    _start:
      menter 40          # never configured
      halt zero
  )");
  const RunResult r = core().Run(100000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("illegal_instruction"), std::string::npos);
}

TEST_F(MetalTest, SlowTransitionProducesSameResultButMoreCycles) {
  const char* kMcode = R"(
      .mentry 19, work
    work:
      addi a0, a0, 3
      mexit
  )";
  const char* kProgram = R"(
    _start:
      li a0, 0
      li t0, 500
    loop:
      menter 19
      addi t0, t0, -1
      bnez t0, loop
      halt a0
  )";
  Boot(kMcode, kProgram);
  const RunResult fast = core().Run(1'000'000);
  CoreConfig slow_config;
  slow_config.fast_transition = false;
  Boot(kMcode, kProgram, slow_config);
  const RunResult slow = core().Run(1'000'000);
  EXPECT_EQ(fast.exit_code, 1500u);
  EXPECT_EQ(slow.exit_code, 1500u);
  EXPECT_GT(slow.cycles, fast.cycles + 2 * 500);  // >= flush costs per call
  EXPECT_GT(core().stats().menters, 0u);
  EXPECT_EQ(core().stats().fast_replacements, 0u);
}

TEST_F(MetalTest, DramStorageConfigurationsWork) {
  for (const MroutineStorage storage :
       {MroutineStorage::kDramCached, MroutineStorage::kDramUncached}) {
    CoreConfig config;
    config.mroutine_storage = storage;
    MetalSystem system(config);
    system.AddMcode(R"(
        .mentry 20, add9
      add9:
        addi a0, a0, 9
        mld t0, 24(zero)    # handler data lives in DRAM in these configs
        add a0, a0, t0
        mexit
    )");
    system.AddBootHook([](Core& core) { return WriteHandlerData32(core, 24, 100); });
    ASSERT_OK(system.LoadProgramSource(R"(
      _start:
        li a0, 1
        menter 20
        halt a0
    )"));
    MustHalt(system, 110);
  }
}

TEST_F(MetalTest, BackToBackMexitMenterChainKeepsMetalMode) {
  // Regression test: when an mexit's resume instruction is itself a menter,
  // decode-stage replacement folds exit->enter into one op. The committed
  // mode after the chain must be Metal (the second mroutine is running) —
  // an earlier implementation applied enter-then-exit unconditionally and
  // left the machine architecturally in normal mode during the second
  // mroutine (observable through metal_mode()/metal_cycles, and it let the
  // host interleave work that Metal-mode atomicity must exclude).
  Boot(R"(
      .mentry 1, quick
    quick:
      addi s1, s1, 1
      mexit
      .mentry 2, slow
    slow:
      li t0, 400
    slow_loop:
      addi t0, t0, -1
      bnez t0, slow_loop
      mexit
  )",
       R"(
    _start:
      menter 1
      menter 2             # fetched as mroutine 1's mexit resume instruction
      halt s1
  )");
  MustHalt(core(), 1);
  // The slow mroutine runs ~1600 cycles; all of them must be Metal cycles.
  EXPECT_GT(core().stats().metal_cycles, 1000u);
  EXPECT_EQ(core().stats().menters, 2u);
  EXPECT_EQ(core().stats().mexits, 2u);
}

TEST_F(MetalTest, EmptyMroutineChainEndsInNormalMode) {
  // The converse chain: menter whose mroutine is a bare mexit (enter->exit
  // in one op). The machine must end in normal mode and keep running.
  Boot(R"(
      .mentry 1, noop
    noop:
      mexit
  )",
       R"(
    _start:
      menter 1
      li a0, 5
      halt a0
  )");
  MustHalt(core(), 5);
  EXPECT_FALSE(core().metal_mode());
}

TEST_F(MetalTest, MexitFastPathAfterWmrSeesNewM31) {
  // wmr m31 immediately before mexit must take effect (hazard ordering).
  Boot(R"(
      .mentry 21, jumper
    jumper:
      wmr m31, a1
      mexit
  )",
       R"(
    _start:
      la a1, target
      menter 21
      halt zero
    target:
      li a0, 8
      halt a0
  )");
  MustHalt(core(), 8);
}

TEST_F(MetalTest, MetalModeBypassesPaging) {
  // With paging on and an empty TLB, an mroutine can still plw anywhere.
  Boot(R"(
      .mentry 22, peek
    peek:
      li t0, 0x2000
      plw a0, 0(t0)
      lw a1, 0(t0)        # normal load in Metal mode is also physical
      add a0, a0, a1
      mexit
  )",
       R"(
    _start:
      menter 22
      halt a0
  )");
  ASSERT_TRUE(core().bus().dram().Write32(0x2000, 11));
  core().metal().WriteCreg(kCrPgEnable, 1);
  // Map the program's own pages so normal-mode fetch works: identity TLB.
  for (uint32_t page = 0; page < 8; ++page) {
    core().mmu().tlb().Insert(0x1000 + page * 4096,
                              MakePte(0x1000 + page * 4096, kPteR | kPteW | kPteX), 0);
  }
  MustHalt(core(), 22);
}

// ---- Verifier --------------------------------------------------------------

TEST(VerifierTest, AcceptsWellFormedModule) {
  CoreConfig config;
  auto module = AssembleMcode(R"(
      .mentry 1, ok
    ok:
      addi a0, a0, 1
      mexit
  )",
                              config);
  ASSERT_OK(module.status());
  EXPECT_OK(VerifyMcode(*module));
}

TEST(VerifierTest, RejectsNoEntries) {
  auto module = AssembleMcode("nop\nmexit\n", CoreConfig{});
  ASSERT_OK(module.status());
  EXPECT_FALSE(VerifyMcode(*module).ok());
}

TEST(VerifierTest, RejectsEcall) {
  auto module = AssembleMcode(R"(
      .mentry 1, bad
    bad:
      ecall
      mexit
  )",
                              CoreConfig{});
  ASSERT_OK(module.status());
  const Status status = VerifyMcode(*module);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("ecall"), std::string::npos);
}

TEST(VerifierTest, RejectsFallOffEnd) {
  auto module = AssembleMcode(R"(
      .mentry 1, bad
    bad:
      addi a0, a0, 1
  )",
                              CoreConfig{});
  ASSERT_OK(module.status());
  EXPECT_FALSE(VerifyMcode(*module).ok());
}

TEST(VerifierTest, RejectsOversizedData) {
  auto module = AssembleMcode(R"(
      .mentry 1, ok
    ok:
      mexit
    .data
    .space 9000
  )",
                              CoreConfig{});
  ASSERT_OK(module.status());
  EXPECT_FALSE(VerifyMcode(*module).ok());
}

// ---- MetalSystem -----------------------------------------------------------

TEST(MetalSystemTest, BootHooksRunInOrder) {
  MetalSystem system;
  int order = 0;
  int first = 0;
  int second = 0;
  system.AddMcode(".mentry 1, e\ne: mexit\n");
  system.AddBootHook([&](Core&) {
    first = ++order;
    return Status::Ok();
  });
  system.AddBootHook([&](Core&) {
    second = ++order;
    return Status::Ok();
  });
  ASSERT_OK(system.Boot());
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
  EXPECT_TRUE(system.booted());
}

TEST(MetalSystemTest, SymbolLookup) {
  MetalSystem system;
  ASSERT_OK(system.LoadProgramSource("_start: halt zero\nmarker: nop\n"));
  auto addr = system.Symbol("marker");
  ASSERT_OK(addr.status());
  EXPECT_GT(*addr, 0u);
  EXPECT_FALSE(system.Symbol("nope").ok());
}

TEST(MetalSystemTest, EntryAddressAfterBoot) {
  MetalSystem system;
  system.AddMcode(".mentry 2, h\nh: mexit\n");
  ASSERT_OK(system.Boot());
  auto addr = system.EntryAddress(2);
  ASSERT_OK(addr.status());
  EXPECT_EQ(*addr, kMramCodeBase);
  EXPECT_FALSE(system.EntryAddress(3).ok());
}

TEST(MetalSystemTest, BadMcodeFailsBoot) {
  MetalSystem system;
  system.AddMcode("this is not assembly");
  EXPECT_FALSE(system.Boot().ok());
}

}  // namespace
}  // namespace msim
