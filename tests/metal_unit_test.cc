// Direct unit tests of the Metal hardware unit (register file, control
// registers, delegation, intercept matchers, operand latch).
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "cpu/metal_unit.h"
#include "isa/encoding.h"

namespace msim {
namespace {

TEST(MetalUnitTest, ResetState) {
  MetalUnit unit;
  for (uint8_t i = 0; i < kNumMetalRegisters; ++i) {
    EXPECT_EQ(unit.ReadMreg(i), 0u);
  }
  EXPECT_EQ(unit.ReadCreg(kCrKeyPerm, 0, 0, 0), 0xFFFFFFFFu);  // permissive
  EXPECT_EQ(unit.DelegatedEntry(ExcCause::kEcall), kNoDelegation);
  EXPECT_EQ(unit.IrqEntry(), kNoDelegation);
  EXPECT_FALSE(unit.AnyInterceptEnabled());
}

TEST(MetalUnitTest, MregReadWrite) {
  MetalUnit unit;
  unit.WriteMreg(5, 0xABCD);
  EXPECT_EQ(unit.ReadMreg(5), 0xABCDu);
  unit.WriteMreg(kMetalLinkRegister, 0x1234);
  EXPECT_EQ(unit.ReadMreg(31), 0x1234u);
}

TEST(MetalUnitTest, CountersComeFromCore) {
  MetalUnit unit;
  EXPECT_EQ(unit.ReadCreg(kCrCycle, 0x100000005ull, 77, 0), 5u);
  EXPECT_EQ(unit.ReadCreg(kCrCycleH, 0x100000005ull, 77, 0), 1u);
  EXPECT_EQ(unit.ReadCreg(kCrInstret, 0, 77, 0), 77u);
  EXPECT_EQ(unit.ReadCreg(kCrIpend, 0, 0, 0xA5), 0xA5u);
  // All read-only: writes are ignored.
  unit.WriteCreg(kCrCycle, 99);
  unit.WriteCreg(kCrIpend, 99);
  EXPECT_EQ(unit.ReadCreg(kCrCycle, 5, 0, 0), 5u);
  EXPECT_EQ(unit.ReadCreg(kCrIpend, 0, 0, 3), 3u);
}

TEST(MetalUnitTest, DelegationViaControlRegisters) {
  MetalUnit unit;
  unit.WriteCreg(kCrDelegBase + static_cast<uint32_t>(ExcCause::kEcall), 9);
  EXPECT_EQ(unit.DelegatedEntry(ExcCause::kEcall), 9u);
  EXPECT_EQ(unit.ReadCreg(kCrDelegBase + static_cast<uint32_t>(ExcCause::kEcall), 0, 0, 0), 9u);
  unit.WriteCreg(kCrIrqEntry, 12);
  EXPECT_EQ(unit.IrqEntry(), 12u);
}

TEST(MetalUnitTest, TrapStateLatches) {
  MetalUnit unit;
  unit.SetTrapState(0x11, 0x1000, 0xBAD0, 0xDEAD);
  EXPECT_EQ(unit.ReadCreg(kCrMcause, 0, 0, 0), 0x11u);
  EXPECT_EQ(unit.ReadCreg(kCrMepc, 0, 0, 0), 0x1000u);
  EXPECT_EQ(unit.ReadCreg(kCrMbadvaddr, 0, 0, 0), 0xBAD0u);
  EXPECT_EQ(unit.ReadCreg(kCrMinstr, 0, 0, 0), 0xDEADu);
}

TEST(MetalUnitTest, InterceptMatchByOpcodeOnly) {
  MetalUnit unit;
  // enable | opcode LOAD(0x03) -> slot 0, entry 25
  unit.ApplyMintset(0x80000003, 25);
  EXPECT_TRUE(unit.AnyInterceptEnabled());
  const uint32_t lw = *EncodeI(InstrKind::kLw, 1, 2, 4);
  const uint32_t lb = *EncodeI(InstrKind::kLb, 1, 2, 4);
  const uint32_t sw = *EncodeS(InstrKind::kSw, 1, 2, 4);
  ASSERT_NE(unit.MatchIntercept(lw), nullptr);
  ASSERT_NE(unit.MatchIntercept(lb), nullptr);  // opcode-only: all loads
  EXPECT_EQ(unit.MatchIntercept(lw)->entry, 25);
  EXPECT_EQ(unit.MatchIntercept(sw), nullptr);
}

TEST(MetalUnitTest, InterceptMatchWithFunct3) {
  MetalUnit unit;
  // enable | match_funct3 | funct3=2 (lw) | opcode LOAD
  const uint32_t spec = 0x80000003u | (1u << 24) | (2u << 7);
  unit.ApplyMintset(spec, 7);
  const uint32_t lw = *EncodeI(InstrKind::kLw, 1, 2, 4);
  const uint32_t lb = *EncodeI(InstrKind::kLb, 1, 2, 4);
  EXPECT_NE(unit.MatchIntercept(lw), nullptr);
  EXPECT_EQ(unit.MatchIntercept(lb), nullptr);  // funct3 differs
}

TEST(MetalUnitTest, InterceptDisableClearsSlot) {
  MetalUnit unit;
  unit.ApplyMintset(0x80000003, 25);
  unit.ApplyMintset(0x00000003, 25);  // enable bit clear, same slot
  EXPECT_FALSE(unit.AnyInterceptEnabled());
  EXPECT_EQ(unit.MatchIntercept(*EncodeI(InstrKind::kLw, 1, 2, 4)), nullptr);
}

TEST(MetalUnitTest, MultipleSlotsIndependent) {
  MetalUnit unit;
  unit.ApplyMintset(0x80000003, 25);          // loads -> entry 25, slot 0
  unit.ApplyMintset(0x80000023, (1 << 8) | 26);  // stores -> entry 26, slot 1
  const InterceptSlot* load_slot = unit.MatchIntercept(*EncodeI(InstrKind::kLw, 1, 2, 4));
  const InterceptSlot* store_slot = unit.MatchIntercept(*EncodeS(InstrKind::kSw, 1, 2, 4));
  ASSERT_NE(load_slot, nullptr);
  ASSERT_NE(store_slot, nullptr);
  EXPECT_EQ(load_slot->entry, 25);
  EXPECT_EQ(store_slot->entry, 26);
  // Disabling one leaves the other armed.
  unit.ApplyMintset(0x00000003, 25);
  EXPECT_EQ(unit.MatchIntercept(*EncodeI(InstrKind::kLw, 1, 2, 4)), nullptr);
  EXPECT_NE(unit.MatchIntercept(*EncodeS(InstrKind::kSw, 1, 2, 4)), nullptr);
  EXPECT_TRUE(unit.AnyInterceptEnabled());
}

TEST(MetalUnitTest, PackHelpersRoundTrip) {
  InterceptSlot slot;
  slot.enable = true;
  slot.opcode = 0x63;
  slot.funct3 = 5;
  slot.match_funct3 = true;
  slot.entry = 42;
  MetalUnit unit;
  unit.ApplyMintset(PackInterceptSpec(slot), PackInterceptTarget(3, slot));
  const uint32_t bge = *EncodeB(InstrKind::kBge, 1, 2, 8);
  const uint32_t blt = *EncodeB(InstrKind::kBlt, 1, 2, 8);
  ASSERT_NE(unit.MatchIntercept(bge), nullptr);  // funct3 5 = bge
  EXPECT_EQ(unit.MatchIntercept(bge)->entry, 42);
  EXPECT_EQ(unit.MatchIntercept(blt), nullptr);
}

TEST(MetalUnitTest, PendingWritebackConsumedOnce) {
  MetalUnit unit;
  OperandLatch latch;
  latch.rd_index = 7;
  unit.LatchOperands(latch);
  unit.SetPendingWriteback(0x55);
  uint8_t rd = 0;
  uint32_t value = 0;
  ASSERT_TRUE(unit.TakePendingWriteback(&rd, &value));
  EXPECT_EQ(rd, 7);
  EXPECT_EQ(value, 0x55u);
  EXPECT_FALSE(unit.TakePendingWriteback(&rd, &value));
}

TEST(MetalUnitTest, EntryTableWraps) {
  MetalUnit unit;
  unit.SetEntryAddress(5, 0xFFFF0040);
  EXPECT_EQ(unit.EntryAddress(5), 0xFFFF0040u);
  EXPECT_EQ(unit.EntryAddress(5 + 64), 0xFFFF0040u);  // masked to 64 entries
}

}  // namespace
}  // namespace msim
