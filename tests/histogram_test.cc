// Histogram: log-bucketing edges, deterministic percentiles, JSON export and
// checkpoint/restore round trips.
#include "trace/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "snap/snapstream.h"
#include "tests/sim_test_util.h"
#include "trace/json.h"

namespace msim {
namespace {

TEST(HistogramTest, BucketIndexEdges) {
  // Bucket 0 holds only the value 0; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex((1ull << 32) - 1), 32u);
  EXPECT_EQ(Histogram::BucketIndex(1ull << 32), 33u);
  EXPECT_EQ(Histogram::BucketIndex(1ull << 63), 64u);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()), 64u);
}

TEST(HistogramTest, BucketBoundsRoundTrip) {
  // Every bucket's bounds are consistent with BucketIndex at both edges.
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLow(b)), b) << b;
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketHigh(b)), b) << b;
  }
  EXPECT_EQ(Histogram::BucketLow(0), 0u);
  EXPECT_EQ(Histogram::BucketHigh(0), 0u);
  EXPECT_EQ(Histogram::BucketLow(1), 1u);
  EXPECT_EQ(Histogram::BucketHigh(1), 1u);
  EXPECT_EQ(Histogram::BucketLow(64), 1ull << 63);
  EXPECT_EQ(Histogram::BucketHigh(64), std::numeric_limits<uint64_t>::max());
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0, not the sentinel
  EXPECT_EQ(h.max(), 0u);

  h.Record(5);
  h.Record(0);
  h.Record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1005u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[Histogram::BucketIndex(5)], 1u);
  EXPECT_EQ(h.buckets()[Histogram::BucketIndex(1000)], 1u);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, RecordExtremeValues) {
  Histogram h;
  h.Record(std::numeric_limits<uint64_t>::max());
  h.Record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(h.buckets()[64], 1u);
  // Percentiles stay within [min, max] even in the saturated top bucket.
  EXPECT_GE(h.Percentile(100), 0.0);
  EXPECT_LE(h.Percentile(100), static_cast<double>(std::numeric_limits<uint64_t>::max()));
}

TEST(HistogramTest, MergeFoldsBucketsAndExtremes) {
  Histogram a;
  a.Record(3);
  a.Record(100);
  Histogram b;
  b.Record(0);
  b.Record(5000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 5103u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 5000u);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[Histogram::BucketIndex(5000)], 1u);
  // Merging an empty histogram is a no-op (and does not disturb min).
  const Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 0u);
}

TEST(HistogramTest, PercentileOfEmptyIsZero) {
  Histogram h;
  // Edges and out-of-range p included: an empty histogram has no min/max to
  // pin the edge percentiles to, so everything is the documented 0.0.
  EXPECT_EQ(h.Percentile(0), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
  EXPECT_EQ(h.Percentile(100), 0.0);
  EXPECT_EQ(h.Percentile(-5), 0.0);
  EXPECT_EQ(h.Percentile(200), 0.0);
  EXPECT_EQ(h.Percentile(std::numeric_limits<double>::quiet_NaN()), 0.0);
}

TEST(HistogramTest, PercentileEdgesPinToMinAndMax) {
  Histogram h;
  h.Record(10);   // bucket [8, 15]
  h.Record(100);  // bucket [64, 127]
  h.Record(900);  // bucket [512, 1023]
  // p = 0 is the minimum BY DEFINITION — not an interpolated value inside
  // the lowest occupied bucket, which the rank-1 walk would produce.
  EXPECT_EQ(h.Percentile(0), 10.0);
  EXPECT_EQ(h.Percentile(-1), 10.0);
  // p = 100 is the maximum; values above 100 clamp to it.
  EXPECT_EQ(h.Percentile(100), 900.0);
  EXPECT_EQ(h.Percentile(1000), 900.0);
  // NaN does not propagate or select an arbitrary rank: it reports min.
  EXPECT_EQ(h.Percentile(std::numeric_limits<double>::quiet_NaN()), 10.0);
  // Infinities behave like their clamped edges.
  EXPECT_EQ(h.Percentile(std::numeric_limits<double>::infinity()), 900.0);
  EXPECT_EQ(h.Percentile(-std::numeric_limits<double>::infinity()), 10.0);
}

TEST(HistogramTest, PercentileSingleValue) {
  Histogram h;
  h.Record(42);
  // Every percentile of a single sample is that sample (clamped to min=max).
  EXPECT_EQ(h.Percentile(0), 42.0);
  EXPECT_EQ(h.Percentile(50), 42.0);
  EXPECT_EQ(h.Percentile(99), 42.0);
  EXPECT_EQ(h.Percentile(100), 42.0);
}

TEST(HistogramTest, PercentileRankWalk) {
  // 100 samples in well-separated buckets: ranks land where expected.
  Histogram h;
  for (int i = 0; i < 50; ++i) {
    h.Record(10);  // bucket [8, 15]
  }
  for (int i = 0; i < 40; ++i) {
    h.Record(100);  // bucket [64, 127]
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(1000);  // bucket [512, 1023]
  }
  // p50 -> rank 50, the last sample of the low bucket.
  EXPECT_GE(h.Percentile(50), 8.0);
  EXPECT_LE(h.Percentile(50), 15.0);
  // p90 -> rank 90, the last sample of the middle bucket.
  EXPECT_GE(h.Percentile(90), 64.0);
  EXPECT_LE(h.Percentile(90), 127.0);
  // p99 -> rank 99, in the top bucket but clamped to max = 1000.
  EXPECT_GE(h.Percentile(99), 512.0);
  EXPECT_LE(h.Percentile(99), 1000.0);
  // Percentiles are monotone in p.
  EXPECT_LE(h.Percentile(50), h.Percentile(90));
  EXPECT_LE(h.Percentile(90), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.Percentile(100));
}

TEST(HistogramTest, PercentileIsDeterministic) {
  const auto build = [] {
    Histogram h;
    for (uint64_t v = 0; v < 1000; ++v) {
      h.Record(v * v % 977);
    }
    return h;
  };
  const Histogram a = build();
  const Histogram b = build();
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    // Bit-identical, not just approximately equal: the export must be
    // byte-stable across runs.
    EXPECT_EQ(a.Percentile(p), b.Percentile(p)) << p;
  }
}

TEST(HistogramTest, AppendJsonIsValidAndListsNonEmptyBuckets) {
  Histogram h;
  h.Record(3);
  h.Record(3);
  h.Record(300);

  std::ostringstream out;
  JsonWriter json(out);
  json.BeginObject();
  h.AppendJson(json);
  json.EndObject();
  const std::string text = out.str();
  EXPECT_TRUE(JsonLooksValid(text)) << text;
  EXPECT_NE(text.find("\"count\":3"), std::string::npos) << text;
  EXPECT_NE(text.find("\"p50\""), std::string::npos);
  EXPECT_NE(text.find("\"p90\""), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
  EXPECT_NE(text.find("\"buckets\""), std::string::npos);
  // Only the two touched buckets appear.
  EXPECT_NE(text.find("\"lo\":2,\"hi\":3,\"n\":2"), std::string::npos) << text;
  EXPECT_NE(text.find("\"lo\":256,\"hi\":511,\"n\":1"), std::string::npos) << text;
}

TEST(HistogramTest, SaveRestoreRoundTripIsExact) {
  Histogram h;
  for (uint64_t v : {0ull, 1ull, 17ull, 1ull << 20, ~0ull}) {
    h.Record(v);
  }
  SnapWriter w;
  h.SaveState(w);
  const std::vector<uint8_t> bytes = w.TakeBytes();

  Histogram restored;
  SnapReader r(bytes);
  ASSERT_OK(restored.RestoreState(r));
  EXPECT_EQ(restored.count(), h.count());
  EXPECT_EQ(restored.sum(), h.sum());
  EXPECT_EQ(restored.min(), h.min());
  EXPECT_EQ(restored.max(), h.max());
  EXPECT_EQ(restored.buckets(), h.buckets());
  EXPECT_EQ(restored.Percentile(99), h.Percentile(99));

  // The JSON of the restored histogram is byte-identical.
  const auto dump = [](const Histogram& hist) {
    std::ostringstream out;
    JsonWriter json(out);
    json.BeginObject();
    hist.AppendJson(json);
    json.EndObject();
    return out.str();
  };
  EXPECT_EQ(dump(restored), dump(h));
}

}  // namespace
}  // namespace msim
