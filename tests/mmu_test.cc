#include <gtest/gtest.h>

#include "mmu/mmu.h"
#include "mmu/tlb.h"

namespace msim {
namespace {

constexpr uint32_t kRwx = kPteR | kPteW | kPteX;

TEST(TlbTest, InsertAndLookup) {
  Tlb tlb(4);
  tlb.Insert(0x00401000, MakePte(0x00080000, kRwx), /*asid=*/1);
  const TlbEntry* entry = tlb.Lookup(0x00401ABC, 1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->pte & 0xFFFFF000u, 0x00080000u);
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.Lookup(0x00402000, 1), nullptr);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(TlbTest, AsidIsolation) {
  Tlb tlb(4);
  tlb.Insert(0x1000, MakePte(0x2000, kRwx), 1);
  EXPECT_EQ(tlb.Lookup(0x1000, 2), nullptr);
  EXPECT_NE(tlb.Lookup(0x1000, 1), nullptr);
}

TEST(TlbTest, GlobalEntriesMatchAllAsids) {
  Tlb tlb(4);
  tlb.Insert(0x1000, MakePte(0x2000, kRwx, 0, /*global=*/true), 1);
  EXPECT_NE(tlb.Lookup(0x1000, 2), nullptr);
  EXPECT_NE(tlb.Lookup(0x1000, 7), nullptr);
}

TEST(TlbTest, SuperpageMatches4MiB) {
  Tlb tlb(4);
  tlb.Insert(0x00800000, MakePte(0x11400000, kRwx, 0, false, /*superpage=*/true), 1);
  EXPECT_NE(tlb.Lookup(0x00BFFFFC, 1), nullptr);  // same 4 MiB region
  EXPECT_EQ(tlb.Lookup(0x00C00000, 1), nullptr);
}

TEST(TlbTest, UpdateInPlace) {
  Tlb tlb(2);
  tlb.Insert(0x1000, MakePte(0x2000, kPteR), 1);
  tlb.Insert(0x1000, MakePte(0x3000, kRwx), 1);
  EXPECT_EQ(tlb.ValidCount(), 1u);
  EXPECT_EQ(tlb.Probe(0x1000, 1) & 0xFFFFF000u, 0x3000u);
}

TEST(TlbTest, RoundRobinReplacement) {
  Tlb tlb(2);
  tlb.Insert(0x1000, MakePte(0xA000, kRwx), 1);
  tlb.Insert(0x2000, MakePte(0xB000, kRwx), 1);
  tlb.Insert(0x3000, MakePte(0xC000, kRwx), 1);  // evicts one
  EXPECT_EQ(tlb.ValidCount(), 2u);
  EXPECT_NE(tlb.Probe(0x3000, 1), 0u);
}

TEST(TlbTest, InvalidateAndFlush) {
  Tlb tlb(8);
  tlb.Insert(0x1000, MakePte(0xA000, kRwx), 1);
  tlb.Insert(0x2000, MakePte(0xB000, kRwx), 1);
  tlb.Insert(0x3000, MakePte(0xC000, kRwx), 2);
  tlb.InvalidateVaddr(0x1000, 1);
  EXPECT_EQ(tlb.Probe(0x1000, 1), 0u);
  EXPECT_NE(tlb.Probe(0x2000, 1), 0u);
  tlb.FlushAsid(1);
  EXPECT_EQ(tlb.Probe(0x2000, 1), 0u);
  EXPECT_NE(tlb.Probe(0x3000, 2), 0u);
  tlb.FlushAll();
  EXPECT_EQ(tlb.ValidCount(), 0u);
}

TEST(TlbTest, FlushAsidKeepsGlobal) {
  Tlb tlb(8);
  tlb.Insert(0x1000, MakePte(0xA000, kRwx, 0, /*global=*/true), 1);
  tlb.FlushAsid(1);
  EXPECT_NE(tlb.Probe(0x1000, 1), 0u);
}

class MmuTranslateTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kAllKeys = 0xFFFFFFFF;
  Mmu mmu_{8};
};

TEST_F(MmuTranslateTest, MissFaultsByAccessType) {
  EXPECT_EQ(mmu_.Translate(0x1000, AccessType::kLoad, 0, kAllKeys).fault,
            ExcCause::kTlbMissLoad);
  EXPECT_EQ(mmu_.Translate(0x1000, AccessType::kStore, 0, kAllKeys).fault,
            ExcCause::kTlbMissStore);
  EXPECT_EQ(mmu_.Translate(0x1000, AccessType::kFetch, 0, kAllKeys).fault,
            ExcCause::kTlbMissFetch);
}

TEST_F(MmuTranslateTest, PermissionChecks) {
  mmu_.tlb().Insert(0x1000, MakePte(0x5000, kPteR), 0);
  EXPECT_TRUE(mmu_.Translate(0x1000, AccessType::kLoad, 0, kAllKeys).ok);
  EXPECT_EQ(mmu_.Translate(0x1000, AccessType::kStore, 0, kAllKeys).fault,
            ExcCause::kPageFaultStore);
  EXPECT_EQ(mmu_.Translate(0x1000, AccessType::kFetch, 0, kAllKeys).fault,
            ExcCause::kPageFaultFetch);
}

TEST_F(MmuTranslateTest, OffsetPreserved) {
  mmu_.tlb().Insert(0x00401000, MakePte(0x00080000, kRwx), 0);
  const TranslateResult r = mmu_.Translate(0x00401ABC, AccessType::kLoad, 0, kAllKeys);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.paddr, 0x00080ABCu);
}

TEST_F(MmuTranslateTest, SuperpageOffset) {
  mmu_.tlb().Insert(0x00800000, MakePte(0x11400000, kRwx, 0, false, true), 0);
  const TranslateResult r = mmu_.Translate(0x008ABCDE, AccessType::kLoad, 0, kAllKeys);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.paddr, 0x114ABCDEu);
}

TEST_F(MmuTranslateTest, PageKeyDeniesRead) {
  // Key 2 occupies KEYPERM bits 4 (read) and 5 (write).
  mmu_.tlb().Insert(0x1000, MakePte(0x5000, kRwx, /*key=*/2), 0);
  const uint32_t no_key2 = 0xFFFFFFFF & ~0x30u;
  EXPECT_EQ(mmu_.Translate(0x1000, AccessType::kLoad, 0, no_key2).fault,
            ExcCause::kKeyViolation);
  EXPECT_TRUE(mmu_.Translate(0x1000, AccessType::kLoad, 0, 0xFFFFFFFF).ok);
}

TEST_F(MmuTranslateTest, PageKeyReadOnlyDeniesWrite) {
  mmu_.tlb().Insert(0x1000, MakePte(0x5000, kRwx, /*key=*/2), 0);
  const uint32_t read_only_key2 = (0xFFFFFFFF & ~0x30u) | 0x10u;
  EXPECT_TRUE(mmu_.Translate(0x1000, AccessType::kLoad, 0, read_only_key2).ok);
  EXPECT_EQ(mmu_.Translate(0x1000, AccessType::kStore, 0, read_only_key2).fault,
            ExcCause::kKeyViolation);
}

TEST_F(MmuTranslateTest, BatchPermissionChangeViaKeyperm) {
  // The paper's motivation for page keys: one register write revokes a whole
  // class of pages at once.
  for (uint32_t page = 0; page < 4; ++page) {
    mmu_.tlb().Insert(0x10000 + page * kPageSize, MakePte(0x50000 + page * kPageSize, kRwx, 5),
                      0);
  }
  const uint32_t all = 0xFFFFFFFF;
  const uint32_t revoked = all & ~(3u << 10);  // key 5 bits
  for (uint32_t page = 0; page < 4; ++page) {
    EXPECT_TRUE(mmu_.Translate(0x10000 + page * kPageSize, AccessType::kLoad, 0, all).ok);
    EXPECT_EQ(mmu_.Translate(0x10000 + page * kPageSize, AccessType::kLoad, 0, revoked).fault,
              ExcCause::kKeyViolation);
  }
}

}  // namespace
}  // namespace msim
