// Edge cases of the pipeline/Metal interaction: replacement fallbacks,
// illegal control transfers, runtime reconfiguration through control
// registers, and trap/intercept interplay.
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

class PipelineEdgeTest : public ::testing::Test {
 protected:
  void Boot(std::string_view mcode, std::string_view program,
            const CoreConfig& config = CoreConfig{}) {
    core_ = std::make_unique<Core>(config);
    if (!mcode.empty()) {
      MustLoadMcodeRaw(*core_, mcode);
    }
    ASSERT_OK(core_->LoadProgram(MustAssemble(program)));
  }
  Core& core() { return *core_; }
  std::unique_ptr<Core> core_;
};

TEST_F(PipelineEdgeTest, MexitFallsBackWhenResumeNotCached) {
  // The decode-stage mexit replacement needs the resume instruction resident
  // in the I-cache; when the host invalidates the cache mid-mroutine, the
  // slow path (EX redirect + refetch) must produce the same result.
  Boot(R"(
      .mentry 1, spin
    spin:
      li t0, 200
    spin_loop:
      addi t0, t0, -1
      bnez t0, spin_loop
      addi a0, a0, 7
      mexit
  )",
       R"(
    _start:
      li a0, 1
      menter 1
      addi a0, a0, 1
      halt a0
  )");
  // Step until inside the mroutine, then blow the I-cache away.
  while (!core().metal_mode()) {
    core().StepCycle();
    ASSERT_LT(core().cycle(), 10000u);
  }
  core().icache().InvalidateAll();
  MustHalt(core(), 9);
}

TEST_F(PipelineEdgeTest, MexitToMisalignedAddressFaults) {
  Boot(R"(
      .mentry 1, bad
    bad:
      li t0, 0x1001
      wmr m31, t0
      mexit
  )",
       R"(
    _start:
      menter 1
      halt zero
  )");
  const RunResult r = core().Run(100000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("misaligned_fetch"), std::string::npos);
}

TEST_F(PipelineEdgeTest, NormalModeCannotJumpIntoMram) {
  Boot(R"(
      .mentry 1, secret
    secret:
      mexit
  )",
       R"(
    _start:
      li t0, 0xFFFF0000
      jr t0                 # jump straight at MRAM: privilege violation
  )");
  const RunResult r = core().Run(100000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("privilege_violation"), std::string::npos);
}

TEST_F(PipelineEdgeTest, FetchFromMmioFaults) {
  Boot("", R"(
    _start:
      li t0, 0xF0003000
      jr t0
  )");
  const RunResult r = core().Run(100000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("bus_error"), std::string::npos);
}

TEST_F(PipelineEdgeTest, KeypermBatchRevocationTakesImmediateEffect) {
  // An mroutine revokes a page key; the very next user access must fault.
  Boot(R"(
      .equ CR_KEYPERM, 6
      .mentry 1, revoke_key5
    revoke_key5:
      wmr m10, t0
      wmr m11, t1
      rcr t0, CR_KEYPERM
      li t1, 0xC00          # bits 10/11: key 5
      not t1, t1
      and t0, t0, t1
      wcr CR_KEYPERM, t0
      rmr t0, m10
      rmr t1, m11
      mexit
  )",
       R"(
      .equ PAGE, 0x00A00000
    _start:
      li t0, 0x00A00000
      lw s1, 0(t0)           # allowed: key 5 open
      menter 1               # batch-revoke key 5
      lw s2, 0(t0)           # must fault now
      halt zero
  )");
  Core& c = core();
  for (uint32_t page = 0; page < 16; ++page) {
    c.mmu().tlb().Insert(0x1000 + page * 4096,
                         MakePte(0x1000 + page * 4096, kPteR | kPteW | kPteX), 0);
  }
  c.mmu().tlb().Insert(0x00A00000, MakePte(0x00A00000, kPteR, /*key=*/5), 0);
  ASSERT_TRUE(c.bus().dram().Write32(0x00A00000, 1));
  c.metal().WriteCreg(kCrPgEnable, 1);
  const RunResult r = c.Run(100000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("key_violation"), std::string::npos);
}

TEST_F(PipelineEdgeTest, DelegationReconfiguredAtRuntime) {
  // An mroutine rewrites the delegation table through control registers;
  // subsequent ecalls take the new handler.
  Boot(R"(
      .equ CR_DELEG_ECALL, 28    # kCrDelegBase (16) + ecall cause (12)
      .mentry 1, handler_a
    handler_a:
      li a0, 0xA
      mexit
      .mentry 2, handler_b
    handler_b:
      li a0, 0xB
      mexit
      .mentry 3, redelegate      # a0 = new entry for ecall
    redelegate:
      wcr CR_DELEG_ECALL, a0
      mexit
  )",
       R"(
    _start:
      ecall                  # -> handler_a
      mv s1, a0
      li a0, 2
      menter 3               # redelegate ecall to handler_b
      ecall                  # -> handler_b
      slli s1, s1, 4
      or a0, s1, a0
      halt a0
  )");
  core().metal().Delegate(ExcCause::kEcall, 1);
  MustHalt(core(), 0xAB);
}

TEST_F(PipelineEdgeTest, InterceptedInstructionCanBeRetriedViaMepc) {
  // A handler can emulate-and-skip (default m31 = pc+4) or rewrite m31 with
  // MEPC to re-execute the original instruction after disabling interception
  // — the paper's "patch an insecure instruction at runtime" use case.
  Boot(R"(
      .equ CR_MEPC, 1
      .mentry 1, arm
    arm:
      li t0, 0x80000023      # intercept stores -> slot 0, entry 2
      li t1, 2
      mintset t0, t1
      mexit
      .mentry 2, once
    once:
      # disable interception and RETRY the same store natively
      wmr m10, t0
      wmr m11, t1
      li t0, 0x23
      li t1, 2
      mintset t0, t1
      rcr t0, CR_MEPC
      wmr m31, t0            # retry instead of skip
      rmr t0, m10
      rmr t1, m11
      mexit
  )",
       R"(
    _start:
      menter 1
      la t0, slot
      li t1, 77
      sw t1, 0(t0)           # intercepted once, then re-executed natively
      lw a0, 0(t0)
      halt a0
    .data
    slot: .word 0
  )");
  MustHalt(core(), 77);
  EXPECT_EQ(core().stats().intercepts, 1u);
}

TEST_F(PipelineEdgeTest, InterruptDuringInterceptedRegionIsPrecise) {
  // Interrupts hitting instructions that would be intercepted must deliver
  // first and re-execute (and re-intercept) the instruction afterwards.
  Boot(R"(
      .mentry 1, arm
    arm:
      li t0, 0x80000003      # intercept loads -> slot 0, entry 2
      li t1, 2
      mintset t0, t1
      mexit
      .mentry 2, fake_load
    fake_load:
      wmr m10, t0
      mld t0, 0(zero)
      addi t0, t0, 1
      mst t0, 0(zero)        # count intercepted loads
      li t0, 123
      mopw t0
      rmr t0, m10
      mexit
      .mentry 3, irq
    irq:
      wmr m10, t0
      wmr m11, t1
      mld t0, 4(zero)
      addi t0, t0, 1
      mst t0, 4(zero)        # count interrupts
      li t0, 0xF0000008
      li t1, 1
      psw t1, 0(t0)
      rmr t0, m10
      rmr t1, m11
      mexit
  )",
       R"(
    _start:
      menter 1
      li s0, 500
      la s2, slot
    loop:
      lw s1, 0(s2)           # intercepted -> always 123
      li t2, 123
      bne s1, t2, fail
      addi s0, s0, -1
      bnez s0, loop
      halt s0                # 0 on success
    fail:
      li a0, 1
      halt a0
    .data
    slot: .word 55
  )");
  core().metal().DelegateIrq(3);
  core().metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
  core().timer().Write32(12, 90);
  core().timer().Write32(4, 90);
  core().timer().Write32(8, 1);
  MustHalt(core(), 0);
  EXPECT_EQ(core().mram().ReadData32(0).value_or(0), 500u);  // all loads intercepted
  EXPECT_GT(core().mram().ReadData32(4).value_or(0), 10u);   // interrupts interleaved
}

TEST_F(PipelineEdgeTest, ScratchControlRegistersSurviveAcrossMroutines) {
  Boot(R"(
      .mentry 1, save
    save:
      wcr 12, a0
      wcr 13, a1
      mexit
      .mentry 2, restore
    restore:
      rcr a0, 12
      rcr a1, 13
      mexit
  )",
       R"(
    _start:
      li a0, 0x12
      li a1, 0x34
      menter 1
      li a0, 0
      li a1, 0
      menter 2
      slli a0, a0, 8
      or a0, a0, a1
      halt a0
  )");
  MustHalt(core(), 0x1234);
}

TEST_F(PipelineEdgeTest, BranchInsideMroutineStaysInMetalMode) {
  Boot(R"(
      .mentry 1, looper
    looper:
      li t0, 50
    mloop:
      addi t0, t0, -1
      bnez t0, mloop
      rcr a0, 11             # instret: proves we are still in Metal mode
      snez a0, a0
      mexit
  )",
       R"(
    _start:
      menter 1
      halt a0
  )");
  MustHalt(core(), 1);
  EXPECT_GT(core().stats().metal_cycles, 100u);
}

TEST_F(PipelineEdgeTest, MramBoundaryExecutionIsCaught) {
  // An mroutine placed so that straight-line execution would run past the
  // MRAM code segment is rejected by the verifier; the raw loader test here
  // drives the hardware path: fetch past the segment end is a bus error.
  Boot(R"(
      .org 0xFFFF3FF8        # last two words of the code segment
      .mentry 1, edge
    edge:
      nop
      nop                    # falls off the end
  )",
       R"(
    _start:
      menter 1
      halt zero
  )");
  const RunResult r = core().Run(100000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
}

}  // namespace
}  // namespace msim
