// Tests for the structural hardware-resource model (paper Table 2).
#include <gtest/gtest.h>

#include "synth/designs.h"

namespace msim {
namespace {

TEST(ComponentTest, CostHelpersArePositiveAndMonotonic) {
  EXPECT_GT(RegisterBits("r", 32).cells, 0);
  EXPECT_GT(RegisterBits("r", 64).cells, RegisterBits("r", 32).cells);
  EXPECT_GT(RegisterBits("r", 32, 2).cells, RegisterBits("r", 32, 1).cells);
  EXPECT_GT(CamBits("c", 32).cells, RegisterBits("r", 32).cells);  // CAM adds matchers
  EXPECT_GT(Mux32("m", 4).wires, Mux32("m", 4).cells);             // muxes are wire-heavy
  EXPECT_GT(RamMacro("ram", 65536, 1).wires, RamMacro("ram", 32768, 1).wires);
}

TEST(DesignTest, TotalsSumComponents) {
  Design design("d");
  design.Add(Comb("a", 10, 20));
  design.Add(Comb("b", 5, 7));
  EXPECT_DOUBLE_EQ(design.Totals().cells, 15);
  EXPECT_DOUBLE_EQ(design.Totals().wires, 27);
}

TEST(DesignTest, MetalIsSupersetOfBaseline) {
  const Design baseline = BaselineProcessorDesign();
  const Design metal = MetalProcessorDesign();
  EXPECT_GT(metal.components().size(), baseline.components().size());
  // Every baseline component appears in the Metal design.
  for (size_t i = 0; i < baseline.components().size(); ++i) {
    EXPECT_EQ(metal.components()[i].name, baseline.components()[i].name);
  }
}

TEST(Table2Test, BaselineCalibratedToPaper) {
  const Table2Result table = GenerateTable2();
  EXPECT_NEAR(table.wires.baseline, Table2Reference::kBaselineWires, 1.0);
  EXPECT_NEAR(table.cells.baseline, Table2Reference::kBaselineCells, 1.0);
}

TEST(Table2Test, MetalOverheadMatchesPaperShape) {
  // Paper: +16.1% wires, +14.3% cells. The component inventory must land in
  // the same band without per-row fudging.
  const Table2Result table = GenerateTable2();
  EXPECT_GT(table.cells.percent_change, 11.0);
  EXPECT_LT(table.cells.percent_change, 18.0);
  EXPECT_GT(table.wires.percent_change, 12.0);
  EXPECT_LT(table.wires.percent_change, 20.0);
  // Wires grow at least as fast as cells (Metal's additions are routing- and
  // port-heavy), matching the paper's ordering.
  EXPECT_GE(table.wires.percent_change, table.cells.percent_change - 0.5);
}

TEST(Table2Test, MramDominatesMetalAdditions) {
  // Sanity on the inventory: the MRAM macro and MReg file are the largest
  // Metal additions, as Figure 1 suggests.
  const Design baseline = BaselineProcessorDesign();
  const Design metal = MetalProcessorDesign();
  double mram_wires = 0;
  double total_added_wires = 0;
  for (size_t i = baseline.components().size(); i < metal.components().size(); ++i) {
    const Component& component = metal.components()[i];
    total_added_wires += component.wires;
    if (component.name.find("MRAM") != std::string::npos ||
        component.name.find("MReg") != std::string::npos) {
      mram_wires += component.wires;
    }
  }
  EXPECT_GT(mram_wires, 0.5 * total_added_wires);
}

TEST(Table2Test, FormatContainsPaperRows) {
  const std::string text = FormatTable2(GenerateTable2());
  EXPECT_NE(text.find("Number of Wires"), std::string::npos);
  EXPECT_NE(text.find("Number of Cells"), std::string::npos);
  EXPECT_NE(text.find('%'), std::string::npos);
}

}  // namespace
}  // namespace msim
