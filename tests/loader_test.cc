// Rejection paths in the mcode verifier and loader (metal/mroutine.cc,
// metal/loader.cc): malformed modules must be refused at load time with a
// descriptive error, never installed partially.
#include <gtest/gtest.h>

#include <string>

#include "metal/loader.h"
#include "metal/mroutine.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

McodeModule MustAssembleMcode(std::string_view source,
                              const CoreConfig& config = CoreConfig{}) {
  auto module = AssembleMcode(source, config);
  EXPECT_OK(module.status());
  return module.ok() ? std::move(module).value() : McodeModule{};
}

constexpr const char* kGoodMcode = R"(
    .mentry 1, ok
  ok:
    mexit
)";

TEST(LoaderTest, RejectsStorageModeMismatch) {
  CoreConfig mram_config;
  McodeModule module = MustAssembleMcode(kGoodMcode, mram_config);

  CoreConfig dram_config;
  dram_config.mroutine_storage = MroutineStorage::kDramCached;
  Core core(dram_config);
  const Status status = LoadMcode(core, module);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition) << status.ToString();
}

TEST(LoaderTest, RejectsOversizeText) {
  std::string source = "    .mentry 1, top\n  top:\n";
  // One instruction more than the 4096-slot MRAM code segment holds.
  for (uint32_t i = 0; i < kMramCodeSize / 4; ++i) {
    source += "    addi t0, t0, 1\n";
  }
  source += "    mexit\n";
  McodeModule module = MustAssembleMcode(source);
  const Status status = VerifyMcode(module);
  EXPECT_EQ(status.code(), ErrorCode::kResourceExhausted) << status.ToString();
}

TEST(LoaderTest, RejectsOversizeData) {
  std::string source = kGoodMcode;
  source += "    .data\n    .space " + std::to_string(kMramDataSize + 4) + "\n";
  McodeModule module = MustAssembleMcode(source);
  const Status status = VerifyMcode(module);
  EXPECT_EQ(status.code(), ErrorCode::kResourceExhausted) << status.ToString();
}

TEST(LoaderTest, RejectsModuleWithNoEntries) {
  McodeModule module = MustAssembleMcode(R"(
    lonely:
      mexit
  )");
  const Status status = VerifyMcode(module);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition) << status.ToString();
}

TEST(LoaderTest, RejectsEntryNumberBeyondTable) {
  McodeModule module = MustAssembleMcode(kGoodMcode);
  module.program.metal_entries[kMaxMroutines] = module.program.text.base;
  const Status status = VerifyMcode(module);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument) << status.ToString();
}

TEST(LoaderTest, RejectsEntryAddressOutsideText) {
  McodeModule module = MustAssembleMcode(kGoodMcode);
  module.program.metal_entries[2] = module.program.text.end() + 16;
  const Status status = VerifyMcode(module);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument) << status.ToString();
}

TEST(LoaderTest, RejectsEcallInsideMcode) {
  McodeModule module = MustAssembleMcode(R"(
      .mentry 1, bad
    bad:
      ecall
      mexit
  )");
  const Status status = VerifyMcode(module);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition) << status.ToString();
}

TEST(LoaderTest, RejectsEntryThatFallsOffTheEnd) {
  McodeModule module = MustAssembleMcode(R"(
      .mentry 1, runs_off
    runs_off:
      addi t0, t0, 1
      addi t0, t0, 2
  )");
  const Status status = VerifyMcode(module);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition) << status.ToString();
}

TEST(LoaderTest, GoodModuleLoadsAndEntryIsInstalled) {
  Core core{CoreConfig{}};
  McodeModule module = MustAssembleMcode(kGoodMcode);
  ASSERT_OK(LoadMcode(core, module));
  EXPECT_NE(core.metal().EntryAddress(1), 0u);
}

TEST(LoaderTest, HandlerDataAccessRejectsOutOfRangeOffsets) {
  Core core{CoreConfig{}};
  EXPECT_EQ(WriteHandlerData32(core, kMramDataSize, 1).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(ReadHandlerData32(core, kMramDataSize).status().code(), ErrorCode::kOutOfRange);

  ASSERT_OK(WriteHandlerData32(core, 8, 0xDEADBEEFu));
  const auto value = ReadHandlerData32(core, 8);
  ASSERT_OK(value.status());
  EXPECT_EQ(*value, 0xDEADBEEFu);
}

}  // namespace
}  // namespace msim
