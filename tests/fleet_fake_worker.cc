// A scriptable stand-in for `msim run`, used by fleet_test.cc to exercise the
// fleet supervisor's failure handling without paying for real simulations.
//
// It accepts the same command-line shape PlanAttempt() generates and takes its
// behaviour from the first line of the "program" file:
//
//   ok [CYCLES]        write a stats.json reporting CYCLES (default 100), exit 0
//   exit CODE          exit with CODE (no stats)
//   crash-until N      abort() while fewer than N attempts have run for this
//                      job (attempt count persists in the job directory),
//                      then behave like `ok 4242`
//   hang-until N       sleep forever (no heartbeat progress; the supervisor
//                      must kill us) while fewer than N attempts have run,
//                      then behave like `ok 4242`
//   dump               write a crash.json crash dump, exit 11 (fatal fault)
//   evict-wait         write heartbeat lines and wait for SIGTERM; on SIGTERM
//                      write an "evicted" stats.json and exit 13. If no
//                      SIGTERM arrives within ~1.5s, succeed like `ok 500`
//                      (so a worker running solo, below the supervisor's
//                      memory-pressure pair threshold, still terminates)
#include <signal.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/exit_codes.h"

namespace {

volatile std::sig_atomic_t g_term = 0;
void OnTerm(int) { g_term = 1; }

std::string DirName(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

void WriteStats(const std::string& path, const char* reason, uint64_t cycles) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\"result\": {\"reason\": \"" << reason << "\", \"exit_code\": 0, \"cycles\": " << cycles
      << ", \"instret\": " << cycles << "}}\n";
}

// Attempts already made for this job, persisted next to stats.json so retried
// attempts (fresh processes) can count themselves.
uint64_t BumpAttemptCount(const std::string& job_dir) {
  const std::string path = job_dir + "/fake-attempts";
  uint64_t prior = 0;
  if (std::ifstream in(path); in) {
    in >> prior;
  }
  std::ofstream out(path, std::ios::trunc);
  out << (prior + 1) << "\n";
  return prior;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || std::strcmp(argv[1], "run") != 0) {
    std::fprintf(stderr, "fake worker: want `run <directive-file> ...`\n");
    return msim::kExitUsage;
  }
  std::string stats_json;
  std::string crash_dump;
  std::string metrics_jsonl;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    // Every PlanAttempt flag takes a value; skip the ones we don't model.
    if (arg == "--stats-json" && i + 1 < argc) {
      stats_json = argv[++i];
    } else if (arg == "--crash-dump" && i + 1 < argc) {
      crash_dump = argv[++i];
    } else if (arg == "--metrics-jsonl" && i + 1 < argc) {
      metrics_jsonl = argv[++i];
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc && argv[i + 1][0] != '-') {
      ++i;
    }
  }
  if (stats_json.empty()) {
    std::fprintf(stderr, "fake worker: no --stats-json\n");
    return msim::kExitUsage;
  }
  const std::string job_dir = DirName(stats_json);

  std::ifstream directive_file(argv[2]);
  std::string line;
  std::getline(directive_file, line);
  std::istringstream directive(line);
  std::string mode;
  directive >> mode;

  if (mode == "ok") {
    uint64_t cycles = 100;
    directive >> cycles;
    WriteStats(stats_json, "halted", cycles);
    return msim::kExitOk;
  }
  if (mode == "exit") {
    int code = 1;
    directive >> code;
    return code;
  }
  if (mode == "crash-until" || mode == "hang-until") {
    uint64_t until = 1;
    directive >> until;
    if (BumpAttemptCount(job_dir) < until) {
      if (mode == "crash-until") {
        std::fprintf(stderr, "fake worker: injected crash\n");
        std::abort();
      }
      for (;;) {
        ::pause();  // no heartbeat progress; wait to be killed
      }
    }
    WriteStats(stats_json, "halted", 4242);
    return msim::kExitOk;
  }
  if (mode == "dump") {
    if (!crash_dump.empty()) {
      std::ofstream out(crash_dump, std::ios::trunc);
      out << "{\"crash\": {\"kind\": \"fake\", \"cycle\": 77}}\n";
    }
    std::fprintf(stderr, "fake worker: fatal fault\n");
    return msim::kExitFatalFault;
  }
  if (mode == "evict-wait") {
    if (BumpAttemptCount(job_dir) > 0) {
      // A resumed attempt: pretend the checkpoint covered the work and finish.
      WriteStats(stats_json, "halted", 500);
      return msim::kExitOk;
    }
    struct sigaction sa = {};
    sa.sa_handler = OnTerm;
    ::sigaction(SIGTERM, &sa, nullptr);
    for (int beat = 0; g_term == 0; ++beat) {
      if (beat >= 75) {  // ~1.5s with no eviction: finish normally
        WriteStats(stats_json, "halted", 500);
        return msim::kExitOk;
      }
      if (!metrics_jsonl.empty()) {
        std::ofstream out(metrics_jsonl, std::ios::app);
        out << "{\"cycle\": " << beat * 1000 << "}\n";
      }
      ::usleep(20 * 1000);
    }
    WriteStats(stats_json, "evicted", 500);
    return msim::kExitEvicted;
  }
  std::fprintf(stderr, "fake worker: unknown directive '%s'\n", mode.c_str());
  return msim::kExitUsage;
}
