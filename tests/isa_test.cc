#include <gtest/gtest.h>

#include <vector>

#include "isa/decode.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/isa.h"
#include "support/rng.h"

namespace msim {
namespace {

std::vector<InstrKind> AllKinds() {
  std::vector<InstrKind> kinds;
  for (unsigned i = 1; i < static_cast<unsigned>(InstrKind::kCount); ++i) {
    kinds.push_back(static_cast<InstrKind>(i));
  }
  return kinds;
}

// Property: Encode(kind, fields) decodes back to the same kind and fields for
// randomized operands, for every instruction in the ISA.
class EncodeDecodeRoundTrip : public ::testing::TestWithParam<InstrKind> {};

TEST_P(EncodeDecodeRoundTrip, RoundTrips) {
  const InstrKind kind = GetParam();
  const InstrInfo& info = GetInstrInfo(kind);
  Rng rng(static_cast<uint64_t>(kind) * 7919);
  for (int trial = 0; trial < 50; ++trial) {
    const uint8_t rd = static_cast<uint8_t>(rng.Below(32));
    const uint8_t rs1 = static_cast<uint8_t>(rng.Below(32));
    const uint8_t rs2 = static_cast<uint8_t>(rng.Below(32));
    int32_t imm = 0;
    switch (info.format) {
      case InstrFormat::kI:
        imm = info.has_funct7 ? static_cast<int32_t>(rng.Below(32))        // shamt
                              : static_cast<int32_t>(rng.Below(4096)) - 2048;
        if (kind == InstrKind::kEcall) imm = 0;
        if (kind == InstrKind::kEbreak) imm = 1;
        if (kind == InstrKind::kMenter) imm = static_cast<int32_t>(rng.Below(64));
        if (kind == InstrKind::kMexit) imm = 0;
        if (kind == InstrKind::kRmr || kind == InstrKind::kWmr) {
          imm = static_cast<int32_t>(rng.Below(32));
        }
        if (kind == InstrKind::kRcr || kind == InstrKind::kWcr) {
          imm = static_cast<int32_t>(rng.Below(64));
        }
        if (kind == InstrKind::kHalt || kind == InstrKind::kFence) imm = 0;
        break;
      case InstrFormat::kS:
        imm = static_cast<int32_t>(rng.Below(4096)) - 2048;
        break;
      case InstrFormat::kB:
        imm = (static_cast<int32_t>(rng.Below(4096)) - 2048) * 2;
        break;
      case InstrFormat::kU:
        imm = static_cast<int32_t>(rng.Below(1u << 20));
        break;
      case InstrFormat::kJ:
        imm = (static_cast<int32_t>(rng.Below(1u << 20)) - (1 << 19)) * 2;
        break;
      default:
        break;
    }
    auto encoded = Encode(kind, rd, rs1, rs2, imm);
    ASSERT_TRUE(encoded.ok()) << info.mnemonic << ": " << encoded.status().ToString();
    const Decoded decoded = DecodeInstr(*encoded);
    ASSERT_EQ(decoded.kind, kind)
        << info.mnemonic << " decoded as " << decoded.info().mnemonic;
    switch (info.format) {
      case InstrFormat::kR:
        EXPECT_EQ(decoded.rd, rd);
        EXPECT_EQ(decoded.rs1, rs1);
        EXPECT_EQ(decoded.rs2, rs2);
        break;
      case InstrFormat::kI:
        EXPECT_EQ(decoded.rd, rd);
        EXPECT_EQ(decoded.rs1, rs1);
        EXPECT_EQ(decoded.imm, imm) << info.mnemonic;
        break;
      case InstrFormat::kS:
        EXPECT_EQ(decoded.rs1, rs1);
        EXPECT_EQ(decoded.rs2, rs2);
        EXPECT_EQ(decoded.imm, imm);
        break;
      case InstrFormat::kB:
        EXPECT_EQ(decoded.rs1, rs1);
        EXPECT_EQ(decoded.rs2, rs2);
        EXPECT_EQ(decoded.imm, imm);
        break;
      case InstrFormat::kU:
        EXPECT_EQ(decoded.rd, rd);
        EXPECT_EQ(decoded.imm, imm);
        break;
      case InstrFormat::kJ:
        EXPECT_EQ(decoded.rd, rd);
        EXPECT_EQ(decoded.imm, imm);
        break;
      default:
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllInstructions, EncodeDecodeRoundTrip,
                         ::testing::ValuesIn(AllKinds()),
                         [](const ::testing::TestParamInfo<InstrKind>& info) {
                           return std::string(GetInstrInfo(info.param).mnemonic);
                         });

TEST(DecodeTest, UnknownOpcodeIsIllegal) {
  EXPECT_EQ(DecodeInstr(0x00000000).kind, InstrKind::kIllegal);
  EXPECT_EQ(DecodeInstr(0xFFFFFFFF).kind, InstrKind::kIllegal);
  EXPECT_EQ(DecodeInstr(0x0000007F).kind, InstrKind::kIllegal);
}

TEST(DecodeTest, ImmediateBoundaries) {
  // addi x1, x0, -2048
  auto word = EncodeI(InstrKind::kAddi, 1, 0, -2048);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(DecodeInstr(*word).imm, -2048);
  // beq offset 4094 (max positive B immediate)
  word = EncodeB(InstrKind::kBeq, 1, 2, 4094);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(DecodeInstr(*word).imm, 4094);
  // jal offset -1048576 (min J immediate)
  word = EncodeJ(InstrKind::kJal, 1, -1048576);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(DecodeInstr(*word).imm, -1048576);
}

TEST(EncodeTest, RejectsOutOfRange) {
  EXPECT_FALSE(EncodeI(InstrKind::kAddi, 1, 0, 2048).ok());
  EXPECT_FALSE(EncodeI(InstrKind::kAddi, 1, 0, -2049).ok());
  EXPECT_FALSE(EncodeB(InstrKind::kBeq, 1, 2, 3).ok());  // odd offset
  EXPECT_FALSE(EncodeB(InstrKind::kBeq, 1, 2, 4096).ok());
  EXPECT_FALSE(EncodeI(InstrKind::kSlli, 1, 1, 32).ok());  // shamt > 31
  EXPECT_FALSE(EncodeU(InstrKind::kLui, 1, 1 << 20).ok());
}

TEST(EncodeTest, EcallEbreakDistinguished) {
  auto ecall = EncodeI(InstrKind::kEcall, 0, 0, 0);
  auto ebreak = EncodeI(InstrKind::kEbreak, 0, 0, 0);
  ASSERT_TRUE(ecall.ok());
  ASSERT_TRUE(ebreak.ok());
  EXPECT_EQ(DecodeInstr(*ecall).kind, InstrKind::kEcall);
  EXPECT_EQ(DecodeInstr(*ebreak).kind, InstrKind::kEbreak);
}

TEST(RegisterNamesTest, ParseGprAliases) {
  EXPECT_EQ(ParseGpr("x0"), 0);
  EXPECT_EQ(ParseGpr("zero"), 0);
  EXPECT_EQ(ParseGpr("ra"), 1);
  EXPECT_EQ(ParseGpr("sp"), 2);
  EXPECT_EQ(ParseGpr("t0"), 5);
  EXPECT_EQ(ParseGpr("s0"), 8);
  EXPECT_EQ(ParseGpr("fp"), 8);
  EXPECT_EQ(ParseGpr("a0"), 10);
  EXPECT_EQ(ParseGpr("t6"), 31);
  EXPECT_EQ(ParseGpr("x31"), 31);
  EXPECT_FALSE(ParseGpr("x32").has_value());
  EXPECT_FALSE(ParseGpr("q3").has_value());
  EXPECT_FALSE(ParseGpr("").has_value());
}

TEST(RegisterNamesTest, ParseMetalRegisters) {
  EXPECT_EQ(ParseMetalRegister("m0"), 0);
  EXPECT_EQ(ParseMetalRegister("m31"), 31);
  EXPECT_FALSE(ParseMetalRegister("m32").has_value());
  EXPECT_FALSE(ParseMetalRegister("t0").has_value());
}

TEST(RegisterNamesTest, GprNameRoundTrip) {
  for (uint8_t i = 0; i < 32; ++i) {
    EXPECT_EQ(ParseGpr(GprName(i)), i);
  }
}

TEST(InstrTableTest, MnemonicLookup) {
  EXPECT_EQ(FindInstrByMnemonic("add")->kind, InstrKind::kAdd);
  EXPECT_EQ(FindInstrByMnemonic("menter")->kind, InstrKind::kMenter);
  EXPECT_EQ(FindInstrByMnemonic("tlbwr")->kind, InstrKind::kTlbwr);
  EXPECT_EQ(FindInstrByMnemonic("nosuch"), nullptr);
}

TEST(InstrTableTest, MetalOnlyFlags) {
  // Table 1: applications invoke menter from normal mode; the rest of the
  // Metal instructions are Metal-mode only.
  EXPECT_FALSE(GetInstrInfo(InstrKind::kMenter).metal_only);
  EXPECT_TRUE(GetInstrInfo(InstrKind::kMexit).metal_only);
  EXPECT_TRUE(GetInstrInfo(InstrKind::kRmr).metal_only);
  EXPECT_TRUE(GetInstrInfo(InstrKind::kWmr).metal_only);
  EXPECT_TRUE(GetInstrInfo(InstrKind::kMld).metal_only);
  EXPECT_TRUE(GetInstrInfo(InstrKind::kMst).metal_only);
  EXPECT_TRUE(GetInstrInfo(InstrKind::kPlw).metal_only);
  EXPECT_TRUE(GetInstrInfo(InstrKind::kTlbwr).metal_only);
  EXPECT_TRUE(GetInstrInfo(InstrKind::kRcr).metal_only);
  EXPECT_FALSE(GetInstrInfo(InstrKind::kAdd).metal_only);
}

TEST(DisasmTest, RendersCommonForms) {
  EXPECT_EQ(Disassemble(*EncodeR(InstrKind::kAdd, 10, 11, 12)), "add a0, a1, a2");
  EXPECT_EQ(Disassemble(*EncodeI(InstrKind::kAddi, 10, 10, -1)), "addi a0, a0, -1");
  EXPECT_EQ(Disassemble(*EncodeI(InstrKind::kLw, 5, 2, 8)), "lw t0, 8(sp)");
  EXPECT_EQ(Disassemble(*EncodeS(InstrKind::kSw, 2, 5, 8)), "sw t0, 8(sp)");
  EXPECT_EQ(Disassemble(*EncodeI(InstrKind::kMenter, 0, 0, 3)), "menter 3");
  EXPECT_EQ(Disassemble(*EncodeI(InstrKind::kMexit, 0, 0, 0)), "mexit");
  EXPECT_EQ(Disassemble(*EncodeI(InstrKind::kRmr, 1, 0, 31)), "rmr ra, m31");
  EXPECT_EQ(Disassemble(*EncodeI(InstrKind::kWmr, 0, 5, 0)), "wmr m0, t0");
  EXPECT_EQ(Disassemble(0u), "illegal (0x00000000)");
}

}  // namespace
}  // namespace msim
