// Shadow stack, in-process isolation, capabilities, enclaves and nested
// Metal (paper §3.1 / §3.5).
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "ext/caps.h"
#include "ext/enclave.h"
#include "ext/isolation.h"
#include "ext/nested.h"
#include "ext/shadowstack.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

// ---- Shadow stack -----------------------------------------------------------

class ShadowStackTest : public ::testing::Test {
 protected:
  void Boot(const char* program) {
    system_ = std::make_unique<MetalSystem>();
    ASSERT_OK(ShadowStackExtension::Install(*system_));
    ASSERT_OK(system_->LoadProgramSource(program));
    ASSERT_OK(system_->Boot());
  }
  Core& core() { return system_->core(); }
  MetalSystem& system() { return *system_; }
  std::unique_ptr<MetalSystem> system_;
};

TEST_F(ShadowStackTest, WellBehavedCallsRunNormally) {
  Boot(R"(
    _start:
      li sp, 0x8000
      li a0, 1
      menter 38            # enable protection
      call f
      call f
      li a0, 0
      menter 38            # disable
      halt s1
    f:                       # non-leaf: must save/restore ra
      addi sp, sp, -4
      sw ra, 0(sp)
      addi s1, s1, 5
      call g
      lw ra, 0(sp)
      addi sp, sp, 4
      ret
    g:
      addi s1, s1, 1
      ret
  )");
  MustHalt(system(), 12);
  EXPECT_GE(core().stats().intercepts, 8u);  // calls + rets intercepted
}

TEST_F(ShadowStackTest, SmashedReturnAddressHalts) {
  Boot(R"(
    _start:
      li sp, 0x8000
      li a0, 1
      menter 38
      call f
      halt zero
    f:
      la ra, attacker      # simulate a corrupted return address
      ret                  # shadow stack mismatch -> halt 0xDC
    attacker:
      li a0, 0x66
      halt a0
  )");
  MustHalt(system(), ShadowStackExtension::kViolationExitCode);
}

TEST_F(ShadowStackTest, ReturnWithoutCallUnderflows) {
  Boot(R"(
    _start:
      li a0, 1
      menter 38
      la ra, nowhere
      ret
    nowhere:
      halt zero
  )");
  MustHalt(system(), ShadowStackExtension::kViolationExitCode);
}

TEST_F(ShadowStackTest, PlainJumpsUnaffected) {
  Boot(R"(
    _start:
      li a0, 1
      menter 38
      j over               # jal x0: intercepted but emulated transparently
      halt zero
    over:
      la t0, target
      jr t0                # jalr through non-ra register: plain jump
      halt zero
    target:
      li a0, 0
      menter 38
      li a0, 33
      halt a0
  )");
  MustHalt(system(), 33);
}

// ---- In-process isolation ---------------------------------------------------

class IsolationTest : public ::testing::Test {
 protected:
  void Boot(const char* program) {
    system_ = std::make_unique<MetalSystem>();
    ASSERT_OK(IsolationExtension::Install(*system_));
    ASSERT_OK(system_->LoadProgramSource(program));
    ASSERT_OK(system_->Boot());
  }
  Core& core() { return system_->core(); }
  MetalSystem& system() { return *system_; }
  std::unique_ptr<MetalSystem> system_;
};

constexpr const char* kIsolationProgram = R"(
    .equ SECRET_VADDR, 0x00300000
  _start:
    la a0, gate
    menter 14              # iso_setup: register the gate
    bnez a0, fail
    # direct access to the secret page must fault (key closed)
    li t0, SECRET_VADDR
    lw a0, 0(t0)           # -> key violation -> violation handler
    halt zero
  after_direct:
    # now go through the compartment gate
    menter 12              # iso_enter
    halt zero
  gate:                    # trusted compartment: key open here
    li t0, SECRET_VADDR
    lw s1, 0(t0)           # works
    menter 13              # iso_exit -> returns to after iso_enter... m31=caller
  back:
    halt zero
  fail:
    li a0, 0xE9
    halt a0
  violation:
    # key violation lands here (delegated); continue at after_direct
    li a0, 1
    halt a0
)";

TEST_F(IsolationTest, SecretInaccessibleOutsideCompartment) {
  Boot(kIsolationProgram);
  // Map the program + secret page with paging; secret page carries key 2.
  Core& c = core();
  for (uint32_t page = 0; page < 16; ++page) {
    c.mmu().tlb().Insert(0x1000 + page * 4096,
                         MakePte(0x1000 + page * 4096, kPteR | kPteW | kPteX), 0);
  }
  c.mmu().tlb().Insert(0x00300000,
                       MakePte(0x00300000, kPteR | kPteW, IsolationExtension::kSecretKey), 0);
  c.metal().WriteCreg(kCrPgEnable, 1);
  // Delegate key violations to a halting mroutine via extra mcode? Use the
  // undelegated-fatal path instead: expect a fatal mentioning key_violation.
  const RunResult r = system().Run(200000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("key_violation"), std::string::npos);
}

TEST_F(IsolationTest, GateCanReadSecret) {
  Boot(R"(
      .equ SECRET_VADDR, 0x00300000
    _start:
      la a0, gate
      menter 14
      bnez a0, fail
      menter 12            # iso_enter -> gate
      mv a0, s1            # secret value read inside the compartment
      halt a0
    gate:
      li t0, SECRET_VADDR
      lw s1, 0(t0)
      menter 13            # iso_exit: back to the instruction after iso_enter
      halt zero
    fail:
      li a0, 0xE9
      halt a0
  )");
  Core& c = core();
  for (uint32_t page = 0; page < 16; ++page) {
    c.mmu().tlb().Insert(0x1000 + page * 4096,
                         MakePte(0x1000 + page * 4096, kPteR | kPteW | kPteX), 0);
  }
  c.mmu().tlb().Insert(0x00300000,
                       MakePte(0x00300000, kPteR | kPteW, IsolationExtension::kSecretKey), 0);
  ASSERT_TRUE(c.bus().dram().Write32(0x00300000, 0x5EC2E7));
  c.metal().WriteCreg(kCrPgEnable, 1);
  MustHalt(system(), 0x5EC2E7);
}

TEST_F(IsolationTest, GateRegistrationIsOneShot) {
  Boot(R"(
    _start:
      la a0, g1
      menter 14
      bnez a0, fail
      la a0, g2
      menter 14            # second registration must be refused
      li t0, -1
      bne a0, t0, fail
      li a0, 0x11
      halt a0
    g1:
      menter 13
    g2:
      menter 13
    fail:
      li a0, 0xE8
      halt a0
  )");
  MustHalt(system(), 0x11);
}

// ---- Capabilities -----------------------------------------------------------

class CapsTest : public ::testing::Test {
 protected:
  void Boot(const char* program) {
    system_ = std::make_unique<MetalSystem>();
    ASSERT_OK(CapabilityExtension::Install(*system_));
    ASSERT_OK(system_->LoadProgramSource(program));
    ASSERT_OK(system_->Boot());
  }
  Core& core() { return system_->core(); }
  MetalSystem& system() { return *system_; }
  std::unique_ptr<MetalSystem> system_;
};

TEST_F(CapsTest, CreateLoadStoreWithinBounds) {
  Boot(R"(
    _start:
      li a0, 0x00500000    # base
      li a1, 64            # length
      li a2, 3             # read + write
      menter 40            # cap_create -> a0 = id 0
      bltz a0, fail
      mv s0, a0
      # store 77 at offset 8
      mv a0, s0
      li a1, 8
      li a2, 77
      menter 42            # cap_store
      bnez a1, fail
      # load it back
      mv a0, s0
      li a1, 8
      menter 41            # cap_load
      bnez a1, fail
      halt a0
    fail:
      li a0, 0xC1
      halt a0
  )");
  MustHalt(system(), 77);
  EXPECT_EQ(core().bus().dram().Read32(0x00500008), 77u);
}

TEST_F(CapsTest, OutOfBoundsRejected) {
  Boot(R"(
    _start:
      li a0, 0x00500000
      li a1, 64
      li a2, 3
      menter 40
      mv s0, a0
      mv a0, s0
      li a1, 61            # 61 + 4 > 64
      menter 41
      li t0, -1
      bne a1, t0, fail
      li a0, 0x22
      halt a0
    fail:
      li a0, 0xC2
      halt a0
  )");
  MustHalt(system(), 0x22);
}

TEST_F(CapsTest, WritePermissionEnforced) {
  Boot(R"(
    _start:
      li a0, 0x00500000
      li a1, 64
      li a2, 1             # read-only
      menter 40
      mv s0, a0
      mv a0, s0
      li a1, 0
      li a2, 5
      menter 42            # cap_store must fail
      li t0, -1
      bne a1, t0, fail
      li a0, 0x33
      halt a0
    fail:
      li a0, 0xC3
      halt a0
  )");
  MustHalt(system(), 0x33);
}

TEST_F(CapsTest, RevokedCapabilityDies) {
  Boot(R"(
    _start:
      li a0, 0x00500000
      li a1, 64
      li a2, 3
      menter 40
      mv s0, a0
      mv a0, s0
      menter 43            # cap_revoke
      bnez a0, fail
      mv a0, s0
      li a1, 0
      menter 41            # cap_load on revoked id
      li t0, -1
      bne a1, t0, fail
      li a0, 0x44
      halt a0
    fail:
      li a0, 0xC4
      halt a0
  )");
  MustHalt(system(), 0x44);
}

TEST_F(CapsTest, CreateRequiresKernelPrivilege) {
  Boot(R"(
    _start:
      li a0, 0x00500000
      li a1, 64
      li a2, 3
      menter 40
      halt a0              # -1: denied
  )");
  core().metal().WriteMreg(0, 1);  // user level
  MustHalt(system(), 0xFFFFFFFF);
}

// ---- Enclaves ---------------------------------------------------------------

class EnclaveTest : public ::testing::Test {
 protected:
  void Boot(const char* program) {
    system_ = std::make_unique<MetalSystem>();
    ASSERT_OK(EnclaveExtension::Install(*system_));
    ASSERT_OK(system_->LoadProgramSource(program));
    ASSERT_OK(system_->Boot());
  }
  Core& core() { return system_->core(); }
  MetalSystem& system() { return *system_; }
  std::unique_ptr<MetalSystem> system_;
};

TEST_F(EnclaveTest, CreateEnterExitRoundTrip) {
  Boot(R"(
    _start:
      la a0, enclave_code
      li a1, 16            # 4 instructions
      menter 48            # encl_create (we are kernel: m0 == 0)
      bnez a0, fail
      menter 49            # encl_enter -> jumps to enclave_code at level 2
      # returned here via encl_exit
      halt s2
    fail:
      li a0, 0xD1
      halt a0
    .align 4
    enclave_code:
      li s2, 0x42
      menter 50            # encl_exit
      nop
      nop
  )");
  MustHalt(system(), 0x42);
  // Privilege restored after exit.
  EXPECT_EQ(core().metal().ReadMreg(0), 0u);
}

TEST_F(EnclaveTest, MeasurementMatchesHost) {
  Boot(R"(
    _start:
      la a0, enclave_code
      li a1, 16
      menter 48
      menter 51            # encl_measure
      halt a0
    .align 4
    enclave_code:
      li s2, 0x42
      menter 50
      nop
      nop
  )");
  ASSERT_OK(system().Boot());
  const uint32_t base = *system().Symbol("enclave_code");
  const RunResult r = system().Run(2'000'000);
  ASSERT_EQ(r.reason, RunResult::Reason::kHalted);
  EXPECT_EQ(r.exit_code, EnclaveExtension::MeasureRegion(core(), base, 16));
}

TEST_F(EnclaveTest, EnterRequiresCreatedEnclave) {
  Boot(R"(
    _start:
      menter 49            # no enclave created
      halt a0              # -1
  )");
  MustHalt(system(), 0xFFFFFFFF);
}

TEST_F(EnclaveTest, OsCannotReadEnclavePages) {
  // With paging on and the enclave page keyed, the kernel-mode application
  // (outside the enclave) cannot touch enclave memory.
  Boot(R"(
      .equ ENCLAVE_PAGE, 0x00310000
    _start:
      li t0, ENCLAVE_PAGE
      lw a0, 0(t0)         # key violation
      halt zero
  )");
  Core& c = core();
  for (uint32_t page = 0; page < 16; ++page) {
    c.mmu().tlb().Insert(0x1000 + page * 4096,
                         MakePte(0x1000 + page * 4096, kPteR | kPteW | kPteX), 0);
  }
  c.mmu().tlb().Insert(0x00310000,
                       MakePte(0x00310000, kPteR | kPteW, EnclaveExtension::kEnclaveKey), 0);
  c.metal().WriteCreg(kCrPgEnable, 1);
  const RunResult r = system().Run(200000);
  EXPECT_EQ(r.reason, RunResult::Reason::kFatal);
  EXPECT_NE(r.fatal_message.find("key_violation"), std::string::npos);
}

// ---- Nested Metal -----------------------------------------------------------

class NestedTest : public ::testing::Test {
 protected:
  void Boot(const char* program) {
    system_ = std::make_unique<MetalSystem>();
    ASSERT_OK(NestedMetalExtension::Install(*system_));
    ASSERT_OK(system_->LoadProgramSource(program));
    ASSERT_OK(system_->Boot());
  }
  Core& core() { return system_->core(); }
  MetalSystem& system() { return *system_; }
  std::unique_ptr<MetalSystem> system_;
};

TEST_F(NestedTest, HigherLayerInterceptsFirst) {
  Boot(R"(
    _start:
      li a0, 1
      la a1, guest_handler
      menter 52            # register layer 1
      li a0, 0
      la a1, vmm_handler
      menter 52            # register layer 0
      li a0, 1
      menter 55            # enable load interception
      la t0, slot
      lw s3, 0(t0)         # intercepted -> guest handler consumes with 0x91
      li a0, 0
      menter 55
      mv a0, s3
      halt a0
    guest_handler:
      li a0, 1             # consume
      li a2, 0x91
      menter 54            # nested_ret
      halt zero
    vmm_handler:
      li a0, 1
      li a2, 0x92
      menter 54
      halt zero
    .data
    slot: .word 7
  )");
  MustHalt(system(), 0x91);
}

TEST_F(NestedTest, ReusePropagatesDownThenEmulates) {
  Boot(R"(
    _start:
      li a0, 1
      la a1, guest_handler
      menter 52
      li a0, 0
      la a1, vmm_handler
      menter 52
      li a0, 1
      menter 55
      la t0, slot
      lw s3, 0(t0)         # guest reuses -> vmm reuses -> native emulation
      li a0, 0
      menter 55
      mv a0, s3
      halt a0
    guest_handler:
      la t1, guest_mark
      li t2, 1
      sw t2, 0(t1)         # NOT intercepted: handlers run... (see note)
      li a0, 0             # reuse: propagate down
      menter 54
      halt zero
    vmm_handler:
      li a0, 0             # reuse again: fall through to native emulation
      menter 54
      halt zero
    .data
    slot: .word 1234
    guest_mark: .word 0
  )");
  MustHalt(system(), 1234);
}

TEST_F(NestedTest, NoHandlersMeansNativeEmulation) {
  Boot(R"(
    _start:
      li a0, 1
      menter 55
      la t0, slot
      lw s3, 0(t0)
      li a0, 0
      menter 55
      mv a0, s3
      halt a0
    .data
    slot: .word 4321
  )");
  MustHalt(system(), 4321);
}

}  // namespace
}  // namespace msim
