// Nested page tables for virtualization (paper §3.5).
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "ext/virt.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

constexpr uint32_t kRwx = kPteR | kPteW | kPteX;
constexpr uint32_t kTableRegion = 0x00400000;   // host-physical frames for tables
constexpr uint32_t kGpaBase = 0x00900000;       // guest-physical 0 backing
constexpr uint32_t kGuestTableGpa = 0x00100000; // guest tables live here (gPA)

class VirtTest : public ::testing::Test {
 protected:
  // Loads `program` (host-physical at 0x1000/0x100000 as usual) and builds a
  // two-dimensional address space where the guest sees its code at the same
  // virtual addresses but through scrambled guest-physical pages.
  void Boot(const char* program_source, uint32_t guest_fault = 0, uint32_t vmm_fault = 0) {
    system_ = std::make_unique<MetalSystem>();
    program_ = MustAssemble(program_source);
    ASSERT_OK(NestedPaging::Install(
        *system_, guest_fault != 0 ? program_.symbols.at("guest_fault") : 0,
        vmm_fault != 0 ? program_.symbols.at("vmm_fault") : 0));
    ASSERT_OK(system_->LoadProgram(program_));
    ASSERT_OK(system_->Boot());
    npt_ = std::make_unique<NestedPaging>(core(), kTableRegion, 0x00100000, kGpaBase);
    hroot_ = *npt_->CreateHostSpace();
    groot_ = *npt_->CreateGuestSpace(kGuestTableGpa, 8);
    // The walker reads guest tables through the host table: map their gPAs
    // to the contiguous backing.
    for (uint32_t frame = 0; frame < 8; ++frame) {
      const uint32_t gpa = kGuestTableGpa + frame * 4096;
      ASSERT_OK(npt_->MapHost(hroot_, gpa, kGpaBase + gpa, kPteR | kPteW));
    }
    // Guest code: gVA 0x1000+p -> gPA 0x20000+p -> hPA 0x1000+p (the real
    // program text), with a deliberate gVA != gPA != hPA chain.
    for (uint32_t page = 0; page < 16; ++page) {
      const uint32_t gva = 0x1000 + page * 4096;
      const uint32_t gpa = 0x20000 + page * 4096;
      ASSERT_OK(npt_->MapGuest(groot_, gva, gpa, kRwx));
      ASSERT_OK(npt_->MapHost(hroot_, gpa, 0x1000 + page * 4096, kRwx));
    }
    // Guest data: gVA 0x00100000+p -> gPA 0x40000+p -> hPA 0x00100000+p.
    for (uint32_t page = 0; page < 8; ++page) {
      const uint32_t gva = 0x00100000 + page * 4096;
      const uint32_t gpa = 0x40000 + page * 4096;
      ASSERT_OK(npt_->MapGuest(groot_, gva, gpa, kPteR | kPteW));
      ASSERT_OK(npt_->MapHost(hroot_, gpa, 0x00100000 + page * 4096, kPteR | kPteW));
    }
    ASSERT_OK(npt_->Activate(groot_, hroot_));
    core().metal().WriteCreg(kCrPgEnable, 1);
  }

  Core& core() { return system_->core(); }
  MetalSystem& system() { return *system_; }

  std::unique_ptr<MetalSystem> system_;
  std::unique_ptr<NestedPaging> npt_;
  Program program_;
  uint32_t hroot_ = 0;
  uint32_t groot_ = 0;
};

TEST_F(VirtTest, GuestRunsUnderTwoDimensionalTranslation) {
  Boot(R"(
    _start:
      la t0, value
      lw a0, 0(t0)
      li t1, 1000
      add a0, a0, t1
      sw a0, 0(t0)
      lw a0, 0(t0)
      halt a0
    .data
    value: .word 234
  )");
  MustHalt(system(), 1234);
  // The store really landed in host-physical .data (three-level indirection
  // collapsed into one TLB entry by the nested walker).
  EXPECT_EQ(core().bus().dram().Read32(*system().Symbol("value")), 1234u);
  EXPECT_GT(core().mmu().tlb().stats().misses, 0u);
}

TEST_F(VirtTest, GuestNotPresentDeliversToGuestOs) {
  Boot(R"(
    _start:
      li t0, 0x0BAD0000      # gVA never mapped by the guest OS
      lw a0, 0(t0)
      halt zero
    guest_fault:
      # a0 = faulting gVA delivered by the nested walker
      li a1, 0x0BAD0000
      bne a0, a1, wrong
      li a0, 0xA1
      halt a0
    wrong:
      li a0, 0x02
      halt a0
    vmm_fault:
      li a0, 0x03
      halt a0
  )",
       /*guest_fault=*/1, /*vmm_fault=*/1);
  MustHalt(system(), 0xA1);
}

TEST_F(VirtTest, HostNotPresentDeliversToVmm) {
  Boot(R"(
    _start:
      li t0, 0x00200000      # guest-mapped below, but NOT host-mapped
      lw a0, 0(t0)
      halt zero
    guest_fault:
      li a0, 0x02
      halt a0
    vmm_fault:
      li a0, 0xF1
      halt a0
  )",
       /*guest_fault=*/1, /*vmm_fault=*/1);
  // gVA 0x00200000 -> gPA 0x60000 exists in the guest table, but the VMM has
  // not backed gPA 0x60000: stage-2 misses mid-walk -> VMM fault.
  ASSERT_OK(npt_->MapGuest(groot_, 0x00200000, 0x60000, kPteR));
  MustHalt(system(), 0xF1);
}

TEST_F(VirtTest, WalkerIsReasonablySized) {
  auto module = AssembleMcode(NestedPaging::McodeSource(), CoreConfig{});
  ASSERT_OK(module.status());
  EXPECT_LT(module->program.text.bytes.size() / 4, 96u);
}

}  // namespace
}  // namespace msim
