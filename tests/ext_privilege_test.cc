// User-defined privilege levels (paper §3.1 / Listing 2).
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "ext/privilege.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

// A mini kernel: syscall 0 adds a1 + a2; syscall 1 reports the privilege
// level the kernel observes; the fault entry halts with 0xEE.
constexpr const char* kKernelAndUser = R"(
    .equ SYS_ADD, 0
    .equ SYS_NOP, 1

  _start:                     # userspace
    li a0, SYS_ADD
    li a1, 30
    li a2, 12
    menter 8                  # kenter
    # back in userspace with the syscall result in a0
    halt a0

  sys_add:                    # kernel, entered from kenter via the table
    add a0, a1, a2
    menter 9                  # kexit -> returns to the saved user ra
    halt zero                 # unreachable

  sys_nop:
    menter 9
    halt zero

  kfault:                     # privilege-fault upcall
    li a0, 0xEE
    halt a0

    .data
  syscall_table:
    .word sys_add
    .word sys_nop
)";

class PrivilegeTest : public ::testing::Test {
 protected:
  void BootWith(const char* program_source) {
    system_ = std::make_unique<MetalSystem>();
    const Program program = MustAssemble(program_source);
    ASSERT_OK(PrivilegeExtension::Install(*system_, program.symbols.at("syscall_table"),
                                          /*syscall_count=*/2,
                                          program.symbols.at("kfault")));
    ASSERT_OK(system_->LoadProgram(program));
    ASSERT_OK(system_->Boot());
  }
  MetalSystem& system() { return *system_; }
  Core& core() { return system_->core(); }
  std::unique_ptr<MetalSystem> system_;
};

TEST_F(PrivilegeTest, SyscallRoundTrip) {
  BootWith(kKernelAndUser);
  MustHalt(system(), 42);
  // Back in user mode after kexit.
  EXPECT_EQ(core().metal().ReadMreg(0), PrivilegeExtension::kUserLevel);
}

TEST_F(PrivilegeTest, KernelObservesKernelPrivilege) {
  constexpr const char* kProgram = R"(
    _start:
      li a0, 0
      menter 8
      halt a0
    sys_probe:                # reads m0 via a privileged mroutine? The kernel
      # cannot read m0 directly (rmr is Metal-only), so it calls ktlbflush,
      # which succeeds only at kernel level, then returns 7.
      menter 10
      li a0, 7
      menter 9
    kfault:
      li a0, 0xEE
      halt a0
    .data
    syscall_table:
      .word sys_probe
  )";
  system_ = std::make_unique<MetalSystem>();
  const Program program = MustAssemble(kProgram);
  ASSERT_OK(PrivilegeExtension::Install(*system_, program.symbols.at("syscall_table"), 1,
                                        program.symbols.at("kfault")));
  ASSERT_OK(system_->LoadProgram(program));
  MustHalt(system(), 7);
}

TEST_F(PrivilegeTest, OutOfRangeSyscallHitsFaultEntry) {
  constexpr const char* kProgram = R"(
    _start:
      li a0, 99               # no such syscall
      menter 8
      halt zero
    sys_add:
      menter 9
    kfault:
      li a0, 0xEE
      halt a0
    .data
    syscall_table:
      .word sys_add
  )";
  system_ = std::make_unique<MetalSystem>();
  const Program program = MustAssemble(kProgram);
  ASSERT_OK(PrivilegeExtension::Install(*system_, program.symbols.at("syscall_table"), 1,
                                        program.symbols.at("kfault")));
  ASSERT_OK(system_->LoadProgram(program));
  MustHalt(system(), 0xEE);
}

TEST_F(PrivilegeTest, UserCannotUsePrivilegedTlbFlush) {
  // Calling ktlbflush from user mode (m0 == 1) must divert to the fault
  // entry; the TLB stays intact.
  constexpr const char* kProgram = R"(
    _start:
      menter 10               # privileged TLB flush, from user mode
      halt zero               # unreachable
    kfault:
      li a0, 0xEE
      halt a0
    .data
    syscall_table:
      .word kfault
  )";
  system_ = std::make_unique<MetalSystem>();
  const Program program = MustAssemble(kProgram);
  ASSERT_OK(PrivilegeExtension::Install(*system_, program.symbols.at("syscall_table"), 1,
                                        program.symbols.at("kfault")));
  ASSERT_OK(system_->LoadProgram(program));
  ASSERT_OK(system_->Boot());
  core().mmu().tlb().Insert(0x5000, MakePte(0x5000, kPteR), 0);
  MustHalt(system(), 0xEE);
  EXPECT_EQ(core().mmu().tlb().ValidCount(), 1u);  // flush did NOT happen
}

TEST_F(PrivilegeTest, KernelPageKeyOpensAndCloses) {
  // kenter must open the kernel page key, kexit must close it (batch
  // permission change through KEYPERM, paper §2.3).
  constexpr const char* kProgram = R"(
    _start:
      li a0, 0
      menter 8
      halt a0
    sys_probe:
      li a0, 1                # kernel ran
      menter 9
    kfault:
      li a0, 0xEE
      halt a0
    .data
    syscall_table:
      .word sys_probe
  )";
  system_ = std::make_unique<MetalSystem>();
  const Program program = MustAssemble(kProgram);
  ASSERT_OK(PrivilegeExtension::Install(*system_, program.symbols.at("syscall_table"), 1,
                                        program.symbols.at("kfault")));
  ASSERT_OK(system_->LoadProgram(program));
  ASSERT_OK(system_->Boot());
  const uint32_t kernel_bits = 3u << (2 * PrivilegeExtension::kKernelPageKey);
  // Closed at boot (user mode).
  EXPECT_EQ(core().metal().ReadCreg(kCrKeyPerm, 0, 0, 0) & kernel_bits, 0u);
  MustHalt(system(), 1);
  // Closed again after kexit.
  EXPECT_EQ(core().metal().ReadCreg(kCrKeyPerm, 0, 0, 0) & kernel_bits, 0u);
}

TEST_F(PrivilegeTest, ListingTwoShapeIsSmall) {
  // The paper stresses that kenter/kexit are a handful of instructions.
  CoreConfig config;
  auto module = AssembleMcode(PrivilegeExtension::McodeSource(), config);
  ASSERT_OK(module.status());
  EXPECT_LT(module->program.text.bytes.size() / 4, 48u);
  EXPECT_OK(VerifyMcode(*module));
}

}  // namespace
}  // namespace msim
