// SpanSink: causal span construction from the trace-event stream, latency
// histograms, cause chaining through machine-check recovery, watchdog
// margins, checkpoint/restore, fast-vs-slow parity and the span-aware Chrome
// trace export.
#include "trace/span.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cpu/creg.h"
#include "fault/fault.h"
#include "snap/snapstream.h"
#include "tests/sim_test_util.h"
#include "trace/json.h"
#include "trace/metrics.h"

namespace msim {
namespace {

TraceEvent Event(TraceEventKind kind, uint64_t cycle, uint32_t pc = 0, uint32_t arg0 = 0,
                 uint32_t arg1 = 0, bool metal = false) {
  TraceEvent event;
  event.kind = kind;
  event.metal = metal;
  event.cycle = cycle;
  event.pc = pc;
  event.arg0 = arg0;
  event.arg1 = arg1;
  return event;
}

// ---------------------------------------------------------------------------
// Synthetic event feeds.

TEST(SpanSinkTest, MenterSpanRecordsLatency) {
  SpanSink sink;
  sink.OnEvent(Event(TraceEventKind::kMenter, 100, 0x1000, /*entry=*/3));
  EXPECT_EQ(sink.open_depth(), 1u);
  sink.OnEvent(Event(TraceEventKind::kMexit, 110, 0x8000, /*resume=*/0x1004));
  EXPECT_EQ(sink.open_depth(), 0u);

  EXPECT_EQ(sink.opened(), 1u);
  EXPECT_EQ(sink.closed(), 1u);
  EXPECT_EQ(sink.aborted(), 0u);
  EXPECT_EQ(sink.menter_latency().count(), 1u);
  EXPECT_EQ(sink.menter_latency().sum(), 10u);

  const std::vector<Span> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].cls, SpanClass::kMenter);
  EXPECT_EQ(spans[0].entry, 3u);
  EXPECT_EQ(spans[0].begin_cycle, 100u);
  EXPECT_EQ(spans[0].end_cycle, 110u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].cause, 0u);
}

TEST(SpanSinkTest, TrapLatencyIsPerCause) {
  SpanSink sink;
  sink.OnEvent(Event(TraceEventKind::kTrap, 5, 0x2000,
                     static_cast<uint32_t>(ExcCause::kEcall), /*entry=*/3));
  sink.OnEvent(Event(TraceEventKind::kMexit, 9, 0x8000, 0x2004));

  EXPECT_EQ(sink.trap_latency(ExcCause::kEcall).count(), 1u);
  EXPECT_EQ(sink.trap_latency(ExcCause::kEcall).sum(), 4u);
  EXPECT_EQ(sink.trap_latency(ExcCause::kPageFaultLoad).count(), 0u);
  EXPECT_EQ(sink.menter_latency().count(), 0u);
}

TEST(SpanSinkTest, NestedMentersLinkParents) {
  SpanSink sink;
  sink.OnEvent(Event(TraceEventKind::kMenter, 10, 0x1000, 1));
  sink.OnEvent(Event(TraceEventKind::kMenter, 20, 0x8010, 2, 0, /*metal=*/true));
  EXPECT_EQ(sink.open_depth(), 2u);
  sink.OnEvent(Event(TraceEventKind::kMexit, 30, 0x8050, 0x8014, /*arg1=*/1, /*metal=*/true));
  sink.OnEvent(Event(TraceEventKind::kMexit, 40, 0x8020, 0x1004));

  const std::vector<Span> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 2u);  // retained in close order: inner first
  const Span& inner = spans[0];
  const Span& outer = spans[1];
  EXPECT_EQ(inner.entry, 2u);
  EXPECT_EQ(outer.entry, 1u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(outer.parent, 0u);
  // An inner mexit resuming into MRAM (arg1 bit 0) is a plain nested return,
  // not a scrub-retry: no extra span opens.
  EXPECT_EQ(sink.opened(), 2u);
  EXPECT_EQ(sink.scrub_retry_latency().count(), 0u);
}

TEST(SpanSinkTest, MachineCheckAbortsAndChainsCauses) {
  SpanSink sink;
  // A pagefault trap is in service when a machine check (double trap) hits;
  // the recovery mexits back into MRAM (scrub-and-retry), and the retried
  // routine finally mexits cleanly: trap -> machine check -> scrub-retry.
  sink.OnEvent(Event(TraceEventKind::kTrap, 10, 0x2000,
                     static_cast<uint32_t>(ExcCause::kPageFaultLoad), 4));
  sink.OnEvent(
      Event(TraceEventKind::kMachineCheck, 20, 0x8008, /*kind=*/1, 0, /*metal=*/true));
  sink.OnEvent(Event(TraceEventKind::kMexit, 50, 0x8100, /*resume=*/0x8008,
                     /*arg1=*/3, /*metal=*/true));
  sink.OnEvent(Event(TraceEventKind::kMexit, 70, 0x8010, 0x2000, /*arg1=*/0, /*metal=*/true));

  EXPECT_EQ(sink.opened(), 3u);
  EXPECT_EQ(sink.aborted(), 1u);
  EXPECT_EQ(sink.closed(), 2u);

  const std::vector<Span> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 3u);
  const Span& trap = spans[0];
  const Span& check = spans[1];
  const Span& retry = spans[2];
  EXPECT_EQ(trap.cls, SpanClass::kTrap);
  EXPECT_TRUE(trap.aborted);
  EXPECT_EQ(trap.end_cycle, 20u);
  EXPECT_EQ(check.cls, SpanClass::kMachineCheck);
  EXPECT_EQ(check.cause, trap.id);
  EXPECT_EQ(retry.cls, SpanClass::kScrubRetry);
  EXPECT_EQ(retry.cause, check.id);
  EXPECT_EQ(retry.code, 0x8008u);  // MRAM retry address

  // Aborted spans record no latency; the recovery and retry do.
  EXPECT_EQ(sink.trap_latency(ExcCause::kPageFaultLoad).count(), 0u);
  EXPECT_EQ(sink.machine_check_latency().count(), 1u);
  EXPECT_EQ(sink.machine_check_latency().sum(), 30u);
  EXPECT_EQ(sink.scrub_retry_latency().count(), 1u);
  EXPECT_EQ(sink.scrub_retry_latency().sum(), 20u);
}

TEST(SpanSinkTest, WatchdogMarginClampsAtZero) {
  SpanSink sink;
  sink.SetWatchdogBudget(100);
  sink.OnEvent(Event(TraceEventKind::kMenter, 0, 0x1000, 1));
  sink.OnEvent(Event(TraceEventKind::kMexit, 30, 0x8000, 0x1004));
  sink.OnEvent(Event(TraceEventKind::kMenter, 200, 0x1000, 1));
  sink.OnEvent(Event(TraceEventKind::kMexit, 350, 0x8000, 0x1004));

  ASSERT_EQ(sink.watchdog_margin().count(), 2u);
  EXPECT_EQ(sink.watchdog_margin().max(), 70u);  // 100 - 30
  EXPECT_EQ(sink.watchdog_margin().min(), 0u);   // 150 cycles > budget
}

TEST(SpanSinkTest, FinalizeAbortsDanglingSpans) {
  SpanSink sink;
  sink.OnEvent(Event(TraceEventKind::kInterrupt, 40, 0x2000, 0x80000000u, 1));
  EXPECT_EQ(sink.open_depth(), 1u);
  sink.Finalize(90);
  EXPECT_EQ(sink.open_depth(), 0u);
  EXPECT_EQ(sink.aborted(), 1u);
  EXPECT_EQ(sink.interrupt_latency().count(), 0u);  // aborted: no latency
  const std::vector<Span> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].cls, SpanClass::kInterrupt);
  EXPECT_EQ(spans[0].code, 0u);  // top bit stripped from mcause
  EXPECT_EQ(spans[0].end_cycle, 90u);
  EXPECT_TRUE(spans[0].aborted);
}

TEST(SpanSinkTest, SaveRestoreContinuesAcrossOpenSpan) {
  // Feed half the stream, snapshot mid-span, restore into a fresh sink, feed
  // the rest: counters and histograms must match an uninterrupted run.
  const std::vector<TraceEvent> first = {
      Event(TraceEventKind::kMenter, 10, 0x1000, 1),
      Event(TraceEventKind::kMexit, 25, 0x8000, 0x1004),
      Event(TraceEventKind::kMenter, 40, 0x1000, 2),
  };
  const std::vector<TraceEvent> second = {
      Event(TraceEventKind::kMexit, 90, 0x8000, 0x1004),
      Event(TraceEventKind::kMenter, 100, 0x1000, 1),
      Event(TraceEventKind::kMexit, 103, 0x8000, 0x1004),
  };

  SpanSink straight;
  straight.SetWatchdogBudget(200);
  for (const auto& event : first) {
    straight.OnEvent(event);
  }
  for (const auto& event : second) {
    straight.OnEvent(event);
  }

  SpanSink before;
  before.SetWatchdogBudget(200);
  for (const auto& event : first) {
    before.OnEvent(event);
  }
  SnapWriter w;
  before.SaveState(w);
  const std::vector<uint8_t> bytes = w.TakeBytes();
  SpanSink after;
  SnapReader r(bytes);
  ASSERT_OK(after.RestoreState(r));
  for (const auto& event : second) {
    after.OnEvent(event);
  }

  EXPECT_EQ(after.opened(), straight.opened());
  EXPECT_EQ(after.closed(), straight.closed());
  EXPECT_EQ(after.aborted(), straight.aborted());
  EXPECT_EQ(after.menter_latency().buckets(), straight.menter_latency().buckets());
  EXPECT_EQ(after.menter_latency().sum(), straight.menter_latency().sum());
  EXPECT_EQ(after.watchdog_margin().buckets(), straight.watchdog_margin().buckets());
  // The mid-span snapshot preserved the open span's identity: ids keep
  // matching the straight run after restore.
  const std::vector<Span> straight_spans = straight.Spans();
  const std::vector<Span> after_spans = after.Spans();
  ASSERT_EQ(after_spans.size(), 2u);  // retained ring restarts at restore
  EXPECT_EQ(after_spans[0].id, straight_spans[1].id);
  EXPECT_EQ(after_spans[0].begin_cycle, 40u);
  EXPECT_EQ(after_spans[0].end_cycle, 90u);
}

TEST(SpanSinkTest, RegisterMetricsExposesCountersAndHistograms) {
  MetricRegistry registry;
  SpanSink sink;
  sink.RegisterMetrics(registry);
  sink.OnEvent(Event(TraceEventKind::kMenter, 0, 0x1000, 1));
  sink.OnEvent(Event(TraceEventKind::kMexit, 7, 0x8000, 0x1004));

  EXPECT_EQ(registry.Value("span", "opened"), 1u);
  EXPECT_EQ(registry.Value("span", "closed"), 1u);
  const Histogram* menter = registry.FindHistogram("latency", "menter");
  ASSERT_NE(menter, nullptr);
  EXPECT_EQ(menter->count(), 1u);
  ASSERT_NE(registry.FindHistogram("latency", "trap_ecall"), nullptr);
  ASSERT_NE(registry.FindHistogram("latency", "interrupt"), nullptr);

  // Empty histograms are skipped in the JSON export; the touched one appears.
  std::ostringstream out;
  JsonWriter json(out);
  json.BeginObject();
  registry.AppendHistogramsJson(json);
  json.EndObject();
  EXPECT_TRUE(JsonLooksValid(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"menter\""), std::string::npos);
  EXPECT_EQ(out.str().find("\"trap_ecall\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Real-core scenarios.

// Counter accelerator (entry 1) plus a machine-check recovery mroutine
// (entry 2) that scrubs MRAM and retries the faulted instruction — the
// fault_test scrub-and-retry scenario, observed here through spans.
constexpr const char* kCounterMcode = R"(
    .equ D_COUNT, 0
    .equ CR_MEPC, 1
    .equ CR_MRAM_SCRUB, 52
    .mentry 1, count_add
    .mentry 2, recover
  count_add:
    mld t0, D_COUNT(zero)
    add t0, t0, a0
    mst t0, D_COUNT(zero)
    mv a0, t0
    mexit
  recover:
    wcr CR_MRAM_SCRUB, zero
    rcr t0, CR_MEPC
    wmr m31, t0
    mexit
)";

constexpr const char* kCounterProgram = R"(
  _start:
    li s0, 10
    li s1, 0
  loop:
    li a0, 7
    menter 1
    mv s1, a0
    addi s0, s0, -1
    bnez s0, loop
    halt s1
)";

TEST(SpanSinkCoreTest, ParityMachineCheckProducesCausalChain) {
  MetalSystem system;
  system.AddMcode(kCounterMcode);
  system.DelegateException(ExcCause::kMachineCheck, 2);
  ASSERT_OK(system.LoadProgramSource(kCounterProgram));

  FaultEngine engine(/*seed=*/1);
  ASSERT_OK(engine.AddSpec("mram-data@120:at=0,bit=13"));
  system.core().SetFaultEngine(&engine);

  SpanSink spans;
  system.SetTraceSink(&spans);
  MustHalt(system, 70);
  spans.Finalize(system.core().cycle());

  // One mroutine activation was aborted by the parity machine check; the
  // recovery and the scrub-retry both completed.
  EXPECT_EQ(spans.aborted(), 1u);
  EXPECT_EQ(spans.machine_check_latency().count(), 1u);
  EXPECT_EQ(spans.scrub_retry_latency().count(), 1u);
  EXPECT_EQ(spans.menter_latency().count(), 9u);  // 10 menters, one aborted

  // Walk the retained spans and check the three-link cause chain.
  const std::vector<Span> all = spans.Spans();
  const Span* aborted_menter = nullptr;
  const Span* check = nullptr;
  const Span* retry = nullptr;
  for (const Span& span : all) {
    if (span.cls == SpanClass::kMenter && span.aborted) {
      aborted_menter = &span;
    } else if (span.cls == SpanClass::kMachineCheck) {
      check = &span;
    } else if (span.cls == SpanClass::kScrubRetry) {
      retry = &span;
    }
  }
  ASSERT_NE(aborted_menter, nullptr);
  ASSERT_NE(check, nullptr);
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(check->cause, aborted_menter->id);
  EXPECT_EQ(retry->cause, check->id);
  EXPECT_FALSE(check->aborted);
  EXPECT_FALSE(retry->aborted);
}

// Timer-interrupt handler that counts deliveries in MRAM data[0].
constexpr const char* kTimerHandler = R"(
    .mentry 1, irq
  irq:
    wmr m10, t0
    wmr m11, t1
    mld t0, 0(zero)
    addi t0, t0, 1
    mst t0, 0(zero)
    li t0, 0xF0000008
    li t1, 1
    psw t1, 0(t0)
    rmr t0, m10
    rmr t1, m11
    mexit
)";

// The StepFast parity acceptance check: a run with the batched hot path and a
// per-cycle run must produce identical spans, counters and histogram buckets
// — interrupts, menters and traps included. Any metric hook the fast path
// bypassed would show up as a diff here. The superblock tier's own counters
// are mode-dependent by nature (the executor only runs inside StepFast), so
// the strict byte-compare runs with the tier off and a second check pins the
// superblock-enabled run to differ in the "superblock" component ONLY.
TEST(SpanSinkCoreTest, FastStepAndPerCycleEmitIdenticalStatistics) {
  const auto run = [](bool fast_step, bool superblocks = false) {
    CoreConfig config;
    config.fast_step = fast_step;
    config.superblocks = superblocks;
    auto core = std::make_unique<Core>(config);
    MustLoadMcodeRaw(*core, kTimerHandler);
    EXPECT_OK(core->LoadProgram(MustAssemble(R"(
      _start:
        li t2, 20000
      loop:
        addi t2, t2, -1
        bnez t2, loop
        halt zero
    )")));
    auto spans = std::make_unique<SpanSink>();
    spans->RegisterMetrics(core->metrics());
    core->SetTraceSink(spans.get());
    core->metal().DelegateIrq(1);
    core->metal().WriteCreg(kCrIenable, 1u << kIrqTimer);
    core->timer().Write32(12, 1000);
    core->timer().Write32(4, 1000);
    core->timer().Write32(8, 1);
    MustHalt(*core, 0);
    spans->Finalize(core->cycle());

    // Serialize every registered counter and histogram to one string.
    std::ostringstream out;
    JsonWriter json(out);
    json.BeginObject();
    json.BeginObject("metrics");
    core->metrics().AppendJson(json);
    json.EndObject();
    json.BeginObject("histograms");
    core->metrics().AppendHistogramsJson(json);
    json.EndObject();
    json.Field("interrupts", spans->interrupt_latency().count());
    json.EndObject();
    return out.str();
  };

  const std::string fast = run(true);
  const std::string slow = run(false);
  EXPECT_EQ(fast, slow);
  // The run actually delivered interrupts (the parity check is not vacuous).
  EXPECT_NE(fast.find("\"interrupt\""), std::string::npos) << fast;

  // Superblock tier on: every architectural counter, span and histogram must
  // still be byte-identical — only the "superblock" component may change.
  const auto scrub_superblock = [](std::string s) {
    const size_t begin = s.find("\"superblock\":{");
    EXPECT_NE(begin, std::string::npos) << s;
    const size_t end = s.find('}', begin);
    EXPECT_NE(end, std::string::npos) << s;
    s.erase(begin, end + 2 - begin);  // includes the trailing comma
    return s;
  };
  const std::string traced = run(true, true);
  EXPECT_EQ(scrub_superblock(traced), scrub_superblock(fast));
  // And the tier actually ran (this check is not vacuous either).
  EXPECT_EQ(traced.find("\"superblock\":{\"builds\":0,"), std::string::npos) << traced;
}

// ---------------------------------------------------------------------------
// Span-aware Chrome trace export.

TEST(SpanExportTest, ChromeTraceHasSlicesAndFlowArrows) {
  SpanSink sink;
  sink.OnEvent(Event(TraceEventKind::kTrap, 10, 0x2000,
                     static_cast<uint32_t>(ExcCause::kPageFaultLoad), 4));
  sink.OnEvent(Event(TraceEventKind::kMachineCheck, 20, 0x8008, 1, 0, true));
  sink.OnEvent(Event(TraceEventKind::kMexit, 50, 0x8100, 0x8008, 3, true));
  sink.OnEvent(Event(TraceEventKind::kMexit, 70, 0x8010, 0x2000, 0, true));

  const std::vector<TraceEvent> events = {
      Event(TraceEventKind::kRetire, 5, 0x1ffc, 0x13),
      Event(TraceEventKind::kMachineCheck, 20, 0x8008, 1, 0, true),
  };
  std::ostringstream out;
  ExportChromeTraceWithSpans(events, sink.Spans(), out);
  const std::string text = out.str();
  EXPECT_TRUE(JsonLooksValid(text)) << text;
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);      // span slices
  EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos);      // flow start
  EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos);      // flow finish
  EXPECT_NE(text.find("machine check"), std::string::npos);
  EXPECT_NE(text.find("scrub-retry"), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"causal\""), std::string::npos);
  // Non-transition events still render as instants.
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
}

}  // namespace
}  // namespace msim
