#include <gtest/gtest.h>

#include <set>

#include "support/bits.h"
#include "support/log.h"
#include "support/result.h"
#include "support/rng.h"
#include "support/strings.h"

namespace msim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgument("bad register");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad register");
  EXPECT_EQ(status.ToString(), "invalid_argument: bad register");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

Result<int> Doubler(Result<int> input) {
  MSIM_ASSIGN_OR_RETURN(int value, std::move(input));
  return value * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(OutOfRange("x")).status().code(), ErrorCode::kOutOfRange);
}

TEST(BitsTest, ExtractAndSignExtend) {
  EXPECT_EQ(Bits(0xDEADBEEF, 31, 28), 0xDu);
  EXPECT_EQ(Bits(0xDEADBEEF, 7, 0), 0xEFu);
  EXPECT_EQ(Bits(0xFFFFFFFF, 31, 0), 0xFFFFFFFFu);
  EXPECT_EQ(Bit(0x80000000, 31), 1u);
  EXPECT_EQ(Bit(0x80000000, 0), 0u);
  EXPECT_EQ(SignExtend(0xFFF, 12), -1);
  EXPECT_EQ(SignExtend(0x7FF, 12), 2047);
  EXPECT_EQ(SignExtend(0x800, 12), -2048);
}

TEST(BitsTest, FitsChecks) {
  EXPECT_TRUE(FitsSigned(-2048, 12));
  EXPECT_TRUE(FitsSigned(2047, 12));
  EXPECT_FALSE(FitsSigned(2048, 12));
  EXPECT_FALSE(FitsSigned(-2049, 12));
  EXPECT_TRUE(FitsUnsigned(31, 5));
  EXPECT_FALSE(FitsUnsigned(32, 5));
}

TEST(BitsTest, Alignment) {
  EXPECT_EQ(AlignUp(13, 4), 16u);
  EXPECT_EQ(AlignUp(16, 4), 16u);
  EXPECT_EQ(AlignDown(13, 4), 12u);
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(48));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  hi \t"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringsTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, ParseIntForms) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-42"), -42);
  EXPECT_EQ(ParseInt("0x10"), 16);
  EXPECT_EQ(ParseInt("0b101"), 5);
  EXPECT_EQ(ParseInt("0xFFFFFFFF"), 0xFFFFFFFFll);
  EXPECT_EQ(ParseInt("1_000"), 1000);
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("0x").has_value());
  EXPECT_FALSE(ParseInt("12z").has_value());
  EXPECT_FALSE(ParseInt("--3").has_value());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%08x", 0xABu), "000000ab");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next64() == b.Next64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    const uint64_t r = rng.Range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

TEST(RngTest, CoversRange) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.Below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(LogTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("trace", LogLevel::kWarning), LogLevel::kTrace);
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kWarning), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info", LogLevel::kWarning), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kError), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warning", LogLevel::kError), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kWarning), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off", LogLevel::kWarning), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("0", LogLevel::kWarning), LogLevel::kTrace);
  EXPECT_EQ(ParseLogLevel("5", LogLevel::kWarning), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("7", LogLevel::kWarning), LogLevel::kWarning);
}

TEST(LogTest, CycleSourceRegistration) {
  const uint64_t* saved = GetLogCycleSource();
  uint64_t cycle = 42;
  SetLogCycleSource(&cycle);
  EXPECT_EQ(GetLogCycleSource(), &cycle);
  SetLogCycleSource(nullptr);
  EXPECT_EQ(GetLogCycleSource(), nullptr);
  SetLogCycleSource(saved);
}

}  // namespace
}  // namespace msim
