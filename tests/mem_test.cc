#include <gtest/gtest.h>

#include "dev/console.h"
#include "dev/intc.h"
#include "dev/nic.h"
#include "dev/timer.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/mram.h"
#include "mem/phys_mem.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

TEST(PhysicalMemoryTest, ReadWriteWidths) {
  PhysicalMemory mem(4096);
  EXPECT_TRUE(mem.Write32(0, 0xDEADBEEF));
  EXPECT_EQ(mem.Read32(0), 0xDEADBEEFu);
  EXPECT_EQ(mem.Read8(0), 0xEF);   // little-endian
  EXPECT_EQ(mem.Read8(3), 0xDE);
  EXPECT_EQ(mem.Read16(0), 0xBEEF);
  EXPECT_TRUE(mem.Write8(1, 0x11));
  EXPECT_EQ(mem.Read32(0), 0xDEAD11EFu);
  EXPECT_TRUE(mem.Write16(2, 0x2233));
  EXPECT_EQ(mem.Read32(0), 0x223311EFu);
}

TEST(PhysicalMemoryTest, OutOfRange) {
  PhysicalMemory mem(16);
  EXPECT_FALSE(mem.Read32(13).has_value());
  EXPECT_FALSE(mem.Read32(16).has_value());
  EXPECT_TRUE(mem.Read32(12).has_value());
  EXPECT_FALSE(mem.Write32(0xFFFFFFFE, 1));  // overflow guard
  EXPECT_FALSE(mem.Read8(16).has_value());
}

TEST(PhysicalMemoryTest, LoadSection) {
  PhysicalMemory mem(64);
  Section section;
  section.base = 8;
  section.bytes = {1, 2, 3, 4};
  ASSERT_OK(mem.LoadSection(section));
  EXPECT_EQ(mem.Read32(8), 0x04030201u);
  section.base = 62;
  EXPECT_FALSE(mem.LoadSection(section).ok());
}

TEST(BusTest, RoutesDramAndDevices) {
  Bus bus(4096);
  ConsoleDevice console;
  ASSERT_OK(bus.AttachDevice(ConsoleDevice::kDefaultBase, &console));
  EXPECT_TRUE(bus.Write32(0, 7));
  EXPECT_EQ(bus.Read32(0), 7u);
  EXPECT_TRUE(bus.Write32(ConsoleDevice::kDefaultBase, 'A'));
  EXPECT_TRUE(bus.Write32(ConsoleDevice::kDefaultBase, 'B'));
  EXPECT_EQ(console.output(), "AB");
}

TEST(BusTest, UnmappedMmioFails) {
  Bus bus(4096);
  EXPECT_FALSE(bus.Read32(0xF0000000).has_value());
  EXPECT_FALSE(bus.Write32(0xF0000000, 1));
}

TEST(BusTest, RejectsOverlappingDevices) {
  Bus bus(4096);
  ConsoleDevice a;
  ConsoleDevice b;
  ASSERT_OK(bus.AttachDevice(0xF0000000, &a));
  EXPECT_FALSE(bus.AttachDevice(0xF0000800, &b).ok());
  EXPECT_OK(bus.AttachDevice(0xF0001000, &b));
}

TEST(BusTest, SubWordMmioRejected) {
  Bus bus(4096);
  ConsoleDevice console;
  ASSERT_OK(bus.AttachDevice(0xF0000000, &console));
  EXPECT_FALSE(bus.Read8(0xF0000000).has_value());
  EXPECT_FALSE(bus.Write16(0xF0000000, 1));
}

TEST(CacheTest, HitAfterMiss) {
  Cache cache(4, 16, 1, 20);
  EXPECT_EQ(cache.Access(0x100), 20u);  // cold miss
  EXPECT_EQ(cache.Access(0x100), 1u);   // hit
  EXPECT_EQ(cache.Access(0x104), 1u);   // same line
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheTest, ConflictEviction) {
  Cache cache(4, 16, 1, 20);
  // 4 lines x 16 bytes: addresses 0 and 64 share index 0.
  EXPECT_EQ(cache.Access(0), 20u);
  EXPECT_EQ(cache.Access(64), 20u);  // evicts 0
  EXPECT_EQ(cache.Access(0), 20u);   // miss again
}

TEST(CacheTest, ProbeDoesNotModify) {
  Cache cache(4, 16, 1, 20);
  EXPECT_FALSE(cache.Probe(0x40));
  cache.Access(0x40);
  EXPECT_TRUE(cache.Probe(0x40));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheTest, InvalidateAll) {
  Cache cache(4, 16, 1, 20);
  cache.Access(0);
  cache.InvalidateAll();
  EXPECT_EQ(cache.Access(0), 20u);
}

TEST(MramTest, CodeFetch) {
  Mram mram;
  EXPECT_TRUE(mram.WriteCodeWord(0, 0x12345678));
  EXPECT_EQ(mram.FetchWord(kMramCodeBase), 0x12345678u);
  EXPECT_FALSE(mram.FetchWord(kMramCodeBase - 4).has_value());
  EXPECT_FALSE(mram.FetchWord(kMramCodeBase + kMramCodeSize).has_value());
  EXPECT_FALSE(mram.FetchWord(kMramCodeBase + 2).has_value());  // misaligned
}

TEST(MramTest, DataSegment) {
  Mram mram;
  EXPECT_TRUE(mram.WriteData32(0, 0xAABBCCDD));
  EXPECT_EQ(mram.ReadData32(0), 0xAABBCCDDu);
  EXPECT_TRUE(mram.WriteData32(kMramDataSize - 4, 1));
  EXPECT_FALSE(mram.WriteData32(kMramDataSize, 1));
  EXPECT_FALSE(mram.ReadData32(kMramDataSize - 2).has_value());
}

TEST(MramTest, InCodeRange) {
  EXPECT_TRUE(Mram::InCodeRange(kMramCodeBase));
  EXPECT_TRUE(Mram::InCodeRange(kMramCodeBase + kMramCodeSize - 4));
  EXPECT_FALSE(Mram::InCodeRange(kMramCodeBase - 1));
  EXPECT_FALSE(Mram::InCodeRange(0x1000));
}

TEST(IntcTest, RaiseAckViaRegisters) {
  InterruptController intc;
  intc.Raise(3);
  EXPECT_EQ(intc.Read32(0), 8u);
  intc.Write32(4, 0x10);  // software raise line 4
  EXPECT_EQ(intc.pending(), 0x18u);
  intc.Write32(8, 0x08);  // W1C ack line 3
  EXPECT_EQ(intc.pending(), 0x10u);
}

TEST(TimerTest, OneShotFires) {
  InterruptController intc;
  TimerDevice timer;
  timer.Write32(4, 10);  // compare
  timer.Write32(8, 1);   // enable
  for (uint64_t cycle = 1; cycle < 10; ++cycle) {
    timer.Tick(cycle, intc);
    EXPECT_EQ(intc.pending(), 0u) << cycle;
  }
  timer.Tick(10, intc);
  EXPECT_EQ(intc.pending(), 1u << kIrqTimer);
  intc.Clear(kIrqTimer);
  timer.Tick(11, intc);
  EXPECT_EQ(intc.pending(), 0u);  // one-shot
}

TEST(TimerTest, PeriodicRearms) {
  InterruptController intc;
  TimerDevice timer;
  timer.Write32(12, 10);  // interval
  timer.Write32(4, 10);
  timer.Write32(8, 1);
  int fires = 0;
  for (uint64_t cycle = 1; cycle <= 35; ++cycle) {
    timer.Tick(cycle, intc);
    if (intc.pending() != 0) {
      ++fires;
      intc.Clear(kIrqTimer);
    }
  }
  EXPECT_EQ(fires, 3);
}

TEST(NicTest, PacketDeliveryAndDrain) {
  InterruptController intc;
  NicDevice nic;
  nic.SchedulePacket(5, {1, 2, 3, 4, 5});
  nic.Tick(4, intc);
  EXPECT_EQ(nic.rx_queued(), 0u);
  nic.Tick(5, intc);
  EXPECT_EQ(nic.rx_queued(), 1u);
  EXPECT_EQ(intc.pending(), 1u << kIrqNic);
  EXPECT_EQ(nic.Read32(4), 5u);           // length
  EXPECT_EQ(nic.Read32(8), 0x04030201u);  // first word
  EXPECT_EQ(nic.Read32(8), 0x00000005u);  // tail word, zero-padded
  EXPECT_EQ(nic.rx_queued(), 0u);
}

TEST(NicTest, OrderedByArrival) {
  InterruptController intc;
  NicDevice nic;
  nic.SchedulePacket(20, {2});
  nic.SchedulePacket(10, {1});
  nic.Tick(30, intc);
  EXPECT_EQ(nic.rx_queued(), 2u);
  EXPECT_EQ(nic.Read32(8) & 0xFF, 1u);
  EXPECT_EQ(nic.Read32(8) & 0xFF, 2u);
}

TEST(NicTest, DropHead) {
  InterruptController intc;
  NicDevice nic;
  nic.SchedulePacket(0, {9});
  nic.Tick(1, intc);
  nic.Write32(12, 1);
  EXPECT_EQ(nic.rx_queued(), 0u);
}

TEST(ConsoleTest, ExitCodeLatch) {
  ConsoleDevice console;
  console.Write32(4, 55);
  EXPECT_EQ(console.Read32(4), 55u);
}

}  // namespace
}  // namespace msim
