// Shared helpers for the test suite.
#ifndef MSIM_TESTS_SIM_TEST_UTIL_H_
#define MSIM_TESTS_SIM_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "asm/assembler.h"
#include "cpu/core.h"
#include "metal/system.h"

namespace msim {

// Asserts the status/result is ok, printing the message otherwise.
#define ASSERT_OK(expr)                                          \
  do {                                                           \
    const auto& status_ = (expr);                                \
    ASSERT_TRUE(status_.ok()) << status_.ToString();             \
  } while (0)
#define EXPECT_OK(expr)                                          \
  do {                                                           \
    const auto& status_ = (expr);                                \
    EXPECT_TRUE(status_.ok()) << status_.ToString();             \
  } while (0)

// Assembles or fails the test.
inline Program MustAssemble(std::string_view source,
                            const AssembleOptions& options = AssembleOptions{}) {
  auto program = Assemble(source, options);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!program.ok()) {
    return Program{};
  }
  return std::move(program).value();
}

// Assembles mcode at the MRAM base and loads it directly (low-level tests
// that do not use MetalSystem).
inline void MustLoadMcodeRaw(Core& core, std::string_view source) {
  AssembleOptions options;
  options.text_base = kMramCodeBase;
  options.data_base = 0;
  const Program program = MustAssemble(source, options);
  for (size_t i = 0; i + 4 <= program.text.bytes.size(); i += 4) {
    uint32_t word = 0;
    for (int b = 0; b < 4; ++b) {
      word |= static_cast<uint32_t>(program.text.bytes[i + b]) << (8 * b);
    }
    ASSERT_TRUE(core.mram().WriteCodeWord(static_cast<uint32_t>(i), word));
  }
  for (size_t i = 0; i < program.data.bytes.size(); i += 4) {
    uint32_t word = 0;
    for (size_t b = 0; b < 4 && i + b < program.data.bytes.size(); ++b) {
      word |= static_cast<uint32_t>(program.data.bytes[i + b]) << (8 * b);
    }
    ASSERT_TRUE(core.mram().WriteData32(static_cast<uint32_t>(i), word));
  }
  for (const auto& [entry, addr] : program.metal_entries) {
    core.metal().SetEntryAddress(entry, addr);
  }
}

// Runs and expects a clean halt with the given exit code.
inline RunResult MustHalt(Core& core, uint32_t want_exit, uint64_t max_cycles = 2'000'000) {
  const RunResult result = core.Run(max_cycles);
  EXPECT_EQ(result.reason, RunResult::Reason::kHalted) << result.fatal_message;
  EXPECT_EQ(result.exit_code, want_exit);
  return result;
}

inline RunResult MustHalt(MetalSystem& system, uint32_t want_exit,
                          uint64_t max_cycles = 2'000'000) {
  const RunResult result = system.Run(max_cycles);
  EXPECT_EQ(result.reason, RunResult::Reason::kHalted) << result.fatal_message;
  EXPECT_EQ(result.exit_code, want_exit);
  return result;
}

}  // namespace msim

#endif  // MSIM_TESTS_SIM_TEST_UTIL_H_
