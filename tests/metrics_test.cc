// MetricRegistry: registration, enumeration, lookup, exporters — and the
// core's registry agreeing with its CoreStats after a run.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "tests/sim_test_util.h"
#include "trace/histogram.h"
#include "trace/json.h"
#include "trace/metrics.h"

namespace msim {
namespace {

TEST(MetricRegistryTest, RegisterAndEnumerate) {
  MetricRegistry registry;
  uint64_t hits = 7;
  uint64_t misses = 3;
  registry.Register("cache", "hits", &hits, "cache hits");
  registry.Register("cache", "misses", &misses);
  registry.RegisterFn("cache", "accesses", [&] { return hits + misses; });

  ASSERT_EQ(registry.metrics().size(), 3u);
  EXPECT_EQ(registry.metrics()[0].component, "cache");
  EXPECT_EQ(registry.metrics()[0].name, "hits");
  EXPECT_EQ(registry.metrics()[0].help, "cache hits");
  EXPECT_EQ(registry.metrics()[0].value(), 7u);
  EXPECT_EQ(registry.metrics()[2].value(), 10u);

  // Registered pointers are read live, not copied.
  hits = 100;
  EXPECT_EQ(registry.metrics()[0].value(), 100u);
  EXPECT_EQ(registry.metrics()[2].value(), 103u);
}

TEST(MetricRegistryTest, ValueLookup) {
  MetricRegistry registry;
  uint64_t counter = 42;
  registry.Register("core", "cycles", &counter);

  bool found = false;
  EXPECT_EQ(registry.Value("core", "cycles", &found), 42u);
  EXPECT_TRUE(found);
  EXPECT_EQ(registry.Value("core", "nonexistent", &found), 0u);
  EXPECT_FALSE(found);
  EXPECT_EQ(registry.Value("nope", "cycles", &found), 0u);
  EXPECT_FALSE(found);
}

TEST(MetricRegistryTest, WriteJsonIsValidAndGrouped) {
  MetricRegistry registry;
  uint64_t a = 1, b = 2, c = 3;
  registry.Register("alpha", "a", &a);
  registry.Register("beta", "b", &b);
  registry.Register("alpha", "c", &c);  // straggler joins its component group

  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_EQ(json, R"({"alpha":{"a":1,"c":3},"beta":{"b":2}})");
}

TEST(MetricRegistryTest, WriteTextListsEveryMetric) {
  MetricRegistry registry;
  uint64_t a = 11, b = 22;
  registry.Register("core", "cycles", &a);
  registry.Register("icache", "misses", &b);

  std::ostringstream out;
  registry.WriteText(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("core.cycles"), std::string::npos);
  EXPECT_NE(text.find("11"), std::string::npos);
  EXPECT_NE(text.find("icache.misses"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(MetricRegistryTest, AppendJsonEmbedsInLargerDocument) {
  MetricRegistry registry;
  uint64_t v = 5;
  registry.Register("core", "cycles", &v);

  std::ostringstream out;
  JsonWriter json(out);
  json.BeginObject();
  json.Field("schema", "test");
  json.BeginObject("metrics");
  registry.AppendJson(json);
  json.EndObject();
  json.EndObject();
  EXPECT_TRUE(JsonLooksValid(out.str())) << out.str();
  EXPECT_EQ(out.str(), R"({"schema":"test","metrics":{"core":{"cycles":5}}})");
}

TEST(JsonTest, EscapeAndValidate) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_TRUE(JsonLooksValid(R"({"k":[1,2.5,-3,"s",true,false,null]})"));
  EXPECT_FALSE(JsonLooksValid(R"({"k":1,})"));
  EXPECT_FALSE(JsonLooksValid(R"({"k":1} extra)"));
  EXPECT_FALSE(JsonLooksValid("{"));
}

TEST(JsonTest, EscapesEveryControlCharacter) {
  // RFC 8259: everything below 0x20 must be escaped — shorthand where one
  // exists, \u00XX otherwise. A fatal_message or program path containing
  // control bytes must never produce invalid JSON.
  EXPECT_EQ(JsonEscape("\b\f\t\r\n"), "\\b\\f\\t\\r\\n");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
  for (int c = 0; c < 0x20; ++c) {
    std::ostringstream doc;
    doc << "{\"k\":\"" << JsonEscape(std::string(1, static_cast<char>(c))) << "\"}";
    EXPECT_TRUE(JsonLooksValid(doc.str())) << "control char " << c << ": " << doc.str();
  }
}

TEST(JsonTest, PassesUtf8Through) {
  // Multi-byte sequences (bytes >= 0x80) are not control characters and must
  // survive unmodified, not be mangled into \u00XX per byte.
  const std::string utf8 = "h\xc3\xa9llo \xe2\x86\x92 w\xc3\xb6rld";
  EXPECT_EQ(JsonEscape(utf8), utf8);
  EXPECT_TRUE(JsonLooksValid("{\"k\":\"" + utf8 + "\"}"));
}

TEST(JsonTest, NonFiniteDoublesEmitNull) {
  // JSON has no literal for inf/nan; "null" keeps the document parseable.
  std::ostringstream out;
  JsonWriter json(out);
  json.BeginObject();
  json.Field("nan", std::nan(""));
  json.Field("inf", std::numeric_limits<double>::infinity());
  json.Field("ninf", -std::numeric_limits<double>::infinity());
  json.Field("ok", 2.5);
  json.EndObject();
  EXPECT_EQ(out.str(), R"({"nan":null,"inf":null,"ninf":null,"ok":2.5})");
  EXPECT_TRUE(JsonLooksValid(out.str()));
}

TEST(MetricRegistryTest, HistogramRegistrationAndLookup) {
  MetricRegistry registry;
  Histogram latency;
  registry.RegisterHistogram("latency", "menter", &latency, "service cycles");

  ASSERT_EQ(registry.histograms().size(), 1u);
  EXPECT_EQ(registry.histograms()[0].component, "latency");
  EXPECT_EQ(registry.histograms()[0].name, "menter");
  EXPECT_EQ(registry.FindHistogram("latency", "menter"), &latency);
  EXPECT_EQ(registry.FindHistogram("latency", "nope"), nullptr);
  EXPECT_EQ(registry.FindHistogram("nope", "menter"), nullptr);

  // Registered histograms are read live.
  latency.Record(12);
  EXPECT_EQ(registry.FindHistogram("latency", "menter")->count(), 1u);

  // WriteText lists non-empty histograms with their percentiles.
  std::ostringstream out;
  registry.WriteText(out);
  EXPECT_NE(out.str().find("latency.menter"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("p99"), std::string::npos);
}

TEST(CoreMetricsTest, RegistryMatchesStatsAfterRun) {
  Core core;
  MustLoadMcodeRaw(core, R"(
      .mentry 1, work
    work:
      addi a0, a0, 1
      mexit
  )");
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      li t0, 5
    loop:
      menter 1
      addi t0, t0, -1
      bnez t0, loop
      la t1, word
      lw t2, 0(t1)
      halt a0
    .data
    word: .word 9
  )")));
  MustHalt(core, 5);

  const CoreStats& stats = core.stats();
  const MetricRegistry& metrics = core.metrics();
  EXPECT_EQ(metrics.Value("core", "cycles"), stats.cycles);
  EXPECT_EQ(metrics.Value("core", "instret"), stats.instret);
  EXPECT_EQ(metrics.Value("core", "metal_instret"), stats.metal_instret);
  EXPECT_EQ(metrics.Value("core", "metal_cycles"), stats.metal_cycles);
  EXPECT_EQ(metrics.Value("core", "menters"), stats.menters);
  EXPECT_EQ(metrics.Value("core", "mexits"), stats.mexits);
  EXPECT_EQ(metrics.Value("icache", "hits"), core.icache().stats().hits);
  EXPECT_EQ(metrics.Value("icache", "misses"), core.icache().stats().misses);
  EXPECT_EQ(metrics.Value("dcache", "hits"), core.dcache().stats().hits);
  EXPECT_EQ(metrics.Value("tlb", "misses"), core.mmu().tlb().stats().misses);
  EXPECT_EQ(metrics.Value("mram", "code_fetches"), core.mram().stats().code_fetches);
  EXPECT_GE(core.mram().stats().code_fetches, 5u);  // five mroutine activations

  // The JSON dump of a live core's registry is structurally valid.
  std::ostringstream out;
  metrics.WriteJson(out);
  EXPECT_TRUE(JsonLooksValid(out.str())) << out.str();
}

TEST(CoreMetricsTest, ResetStatsClearsComponentCounters) {
  Core core;
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      halt zero
  )")));
  MustHalt(core, 0);
  EXPECT_GT(core.metrics().Value("core", "cycles"), 0u);
  EXPECT_GT(core.metrics().Value("icache", "hits") + core.metrics().Value("icache", "misses"),
            0u);
  core.ResetStats();
  EXPECT_EQ(core.metrics().Value("core", "cycles"), 0u);
  EXPECT_EQ(core.metrics().Value("icache", "hits"), 0u);
  EXPECT_EQ(core.metrics().Value("icache", "misses"), 0u);
  EXPECT_EQ(core.metrics().Value("mram", "code_fetches"), 0u);
  EXPECT_EQ(core.metrics().Value("metal", "operand_latches"), 0u);
}

}  // namespace
}  // namespace msim
