// Fleet supervisor tests (src/fleet): manifest parsing, backoff, wait-status
// classification, and end-to-end supervision of scripted fake workers
// (tests/fleet_fake_worker.cc) plus real msim checkpoint-evict-resume.
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>
#include "fleet/backoff.h"
#include "fleet/manifest.h"
#include "fleet/report.h"
#include "fleet/scheduler.h"
#include "fleet/worker.h"
#include "snap/snapshot.h"
#include "support/exit_codes.h"

namespace msim {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/fleet_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good());
}

std::string ReadText(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Fast supervision budgets so failure paths resolve in milliseconds.
FleetOptions FakeWorkerOptions(const std::string& out_dir) {
  FleetOptions options;
  options.msim_path = FLEET_FAKE_WORKER_PATH;
  options.out_dir = out_dir;
  options.workers = 2;
  options.retries = 2;
  options.deadline_ms = 10000;
  options.backoff.base_ms = 1;
  options.backoff.max_ms = 4;
  options.grace_ms = 150;
  options.poll_ms = 2;
  options.verbose = false;
  return options;
}

JobSpec FakeJob(const std::string& dir, const std::string& name, const std::string& directive) {
  JobSpec spec;
  spec.name = name;
  spec.program = dir + "/" + name + ".directive";
  WriteText(spec.program, directive + "\n");
  return spec;
}

TEST(ManifestTest, ParsesDefaultsAndOverrides) {
  const auto jobs = ParseManifest(
      "# comment\n"
      "[defaults]\n"
      "checkpoint-every = 500\n"
      "retries = 4\n"
      "\n"
      "[job alpha]\n"
      "program = a.s\n"
      "mcode = m1.s\n"
      "mcode = m2.s\n"
      "storage = mram\n"
      "max-cycles = 1000\n"
      "\n"
      "[job beta.2]\n"
      "program = b.s\n"
      "checkpoint-every = 0\n"
      "retries = 0\n"
      "deadline-ms = 123\n"
      "args = --no-fast-step --no-parity\n");
  ASSERT_TRUE(jobs.ok()) << jobs.status().message();
  ASSERT_EQ(jobs->size(), 2u);
  const JobSpec& alpha = (*jobs)[0];
  EXPECT_EQ(alpha.name, "alpha");
  EXPECT_EQ(alpha.mcode.size(), 2u);
  EXPECT_EQ(alpha.storage, "mram");
  EXPECT_EQ(alpha.checkpoint_every, 500u);  // inherited
  EXPECT_EQ(alpha.retries, 4);
  EXPECT_EQ(alpha.max_cycles, 1000u);
  const JobSpec& beta = (*jobs)[1];
  EXPECT_EQ(beta.checkpoint_every, 0u);  // overridden
  EXPECT_EQ(beta.retries, 0);
  EXPECT_EQ(beta.deadline_ms, 123u);
  ASSERT_EQ(beta.extra_args.size(), 2u);
  EXPECT_EQ(beta.extra_args[0], "--no-fast-step");
}

TEST(ManifestTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseManifest("").ok());
  EXPECT_FALSE(ParseManifest("[job a]\n").ok());                      // no program
  EXPECT_FALSE(ParseManifest("[job a]\nprogram=x\nbogus=1\n").ok());  // unknown key
  EXPECT_FALSE(ParseManifest("[job a]\nprogram=x\nretries=2x\n").ok());
  EXPECT_FALSE(ParseManifest("[job a]\nprogram=x\n[job a]\nprogram=y\n").ok());
  EXPECT_FALSE(ParseManifest("[job ../evil]\nprogram=x\n").ok());
  EXPECT_FALSE(ParseManifest("[defaults]\nprogram=x\n").ok());  // not a budget key
}

TEST(BackoffTest, DoublesUpToCap) {
  BackoffPolicy policy;
  policy.base_ms = 100;
  policy.max_ms = 1000;
  EXPECT_EQ(BackoffDelayMs(policy, 0), 0u);
  EXPECT_EQ(BackoffDelayMs(policy, 1), 100u);
  EXPECT_EQ(BackoffDelayMs(policy, 2), 200u);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 800u);
  EXPECT_EQ(BackoffDelayMs(policy, 5), 1000u);
  EXPECT_EQ(BackoffDelayMs(policy, 64), 1000u);
  EXPECT_EQ(BackoffDelayMs(policy, 1000), 1000u);
}

TEST(WorkerTest, ClassifiesWaitStatuses) {
  // Raw wait(2) statuses, Linux encoding: exit code in bits 8..15, signal in
  // bits 0..6.
  EXPECT_EQ(ClassifyWaitStatus(0).cls, AttemptClass::kSuccess);
  EXPECT_EQ(ClassifyWaitStatus(kExitEvicted << 8).cls, AttemptClass::kEvicted);
  EXPECT_EQ(ClassifyWaitStatus(kExitTimeout << 8).cls, AttemptClass::kGuestTimeout);
  EXPECT_EQ(ClassifyWaitStatus(kExitUsage << 8).cls, AttemptClass::kUsageError);
  EXPECT_EQ(ClassifyWaitStatus(kExitSdc << 8).cls, AttemptClass::kSdc);
  EXPECT_EQ(ClassifyWaitStatus(1 << 8).cls, AttemptClass::kCrash);
  const AttemptOutcome segv = ClassifyWaitStatus(SIGSEGV);
  EXPECT_EQ(segv.cls, AttemptClass::kCrash);
  EXPECT_EQ(segv.signal, SIGSEGV);
  EXPECT_EQ(segv.exit_code, 128 + SIGSEGV);
}

TEST(WorkerTest, PlanCarriesResumeAndShrinksBudget) {
  JobSpec spec;
  spec.name = "j";
  spec.program = "p.s";
  spec.max_cycles = 1000;
  spec.checkpoint_every = 100;
  const AttemptPlan plan = PlanAttempt(spec, "/bin/msim", "/out/jobs/j", 2,
                                       "/out/jobs/j/ckpts/checkpoint-300.msnap", 300, 0);
  const std::string joined = [&] {
    std::string s;
    for (const auto& a : plan.argv) s += a + " ";
    return s;
  }();
  EXPECT_NE(joined.find("--restore /out/jobs/j/ckpts/checkpoint-300.msnap"), std::string::npos);
  EXPECT_NE(joined.find("--max-cycles 700"), std::string::npos)
      << "resume must shrink the guest budget to keep max-cycles absolute: " << joined;
  EXPECT_NE(joined.find("--checkpoint-dir /out/jobs/j/ckpts"), std::string::npos);
  EXPECT_EQ(plan.stderr_path, "/out/jobs/j/attempt-2.stderr");
}

TEST(ChaosTest, ParsesSpecs) {
  const auto kill = ParseChaosSpec("kill@my-job");
  ASSERT_TRUE(kill.ok());
  EXPECT_EQ(kill->action, ChaosSpec::Action::kKill);
  EXPECT_EQ(kill->job, "my-job");
  EXPECT_TRUE(ParseChaosSpec("stop@a").ok());
  EXPECT_FALSE(ParseChaosSpec("maim@a").ok());
  EXPECT_FALSE(ParseChaosSpec("kill").ok());
  EXPECT_FALSE(ParseChaosSpec("kill@").ok());
}

TEST(SnapshotDiscoveryTest, SkipsCorruptAndOrdersByCycle) {
  const std::string dir = MakeTempDir();
  WriteText(dir + "/checkpoint-200.msnap", "not a snapshot");
  WriteText(dir + "/checkpoint-100.msnap", "also garbage");
  WriteText(dir + "/unrelated.txt", "ignored");
  const auto listed = ListSnapshots(dir);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  EXPECT_EQ((*listed)[0].cycle, 100u);
  EXPECT_EQ((*listed)[1].cycle, 200u);
  // Neither parses as a snapshot, so there is no valid one to resume from.
  EXPECT_FALSE(FindLatestValidSnapshot(dir).ok());
}

TEST(FleetTest, RetriesCrashesUntilSuccess) {
  const std::string dir = MakeTempDir();
  std::vector<JobSpec> jobs = {FakeJob(dir, "flaky", "crash-until 2")};
  FleetSupervisor fleet(std::move(jobs), FakeWorkerOptions(dir + "/out"));
  ASSERT_TRUE(fleet.Run().ok());
  const JobRecord& record = fleet.records()[0];
  EXPECT_EQ(record.outcome, JobOutcome::kRetriedOk);
  EXPECT_EQ(record.attempts, 3u);
  EXPECT_EQ(record.failures, 2u);
  EXPECT_EQ(record.guest_cycles, 4242u);
  EXPECT_EQ(fleet.SuggestedExitCode(), kExitOk);
  EXPECT_EQ(fleet.metrics().Value("fleet", "retries_total"), 2u);
}

TEST(FleetTest, ExhaustsRetryBudgetAndHarvestsRepro) {
  const std::string dir = MakeTempDir();
  std::vector<JobSpec> jobs = {FakeJob(dir, "doomed", "crash-until 99")};
  jobs[0].retries = 1;
  FleetSupervisor fleet(std::move(jobs), FakeWorkerOptions(dir + "/out"));
  ASSERT_TRUE(fleet.Run().ok());
  const JobRecord& record = fleet.records()[0];
  EXPECT_EQ(record.outcome, JobOutcome::kCrashed);
  EXPECT_EQ(record.attempts, 2u);  // 1 + 1 retry
  EXPECT_EQ(record.signal, SIGABRT);
  EXPECT_EQ(fleet.SuggestedExitCode(), kExitJobsFailed);
  // The repro directory is self-contained: script + stderr tail.
  ASSERT_EQ(record.repro_dir, "jobs/doomed/repro");
  const std::string repro = dir + "/out/jobs/doomed/repro";
  const std::string script = ReadText(repro + "/repro.sh");
  EXPECT_NE(script.find("exec '" FLEET_FAKE_WORKER_PATH "' 'run'"), std::string::npos) << script;
  EXPECT_NE(ReadText(repro + "/stderr.tail").find("injected crash"), std::string::npos);
}

TEST(FleetTest, HarvestsCrashDump) {
  const std::string dir = MakeTempDir();
  std::vector<JobSpec> jobs = {FakeJob(dir, "faulty", "dump")};
  jobs[0].retries = 0;
  FleetSupervisor fleet(std::move(jobs), FakeWorkerOptions(dir + "/out"));
  ASSERT_TRUE(fleet.Run().ok());
  EXPECT_EQ(fleet.records()[0].outcome, JobOutcome::kCrashed);
  EXPECT_EQ(fleet.records()[0].exit_code, kExitFatalFault);
  EXPECT_NE(ReadText(dir + "/out/jobs/faulty/repro/crash.json").find("\"kind\": \"fake\""),
            std::string::npos);
}

TEST(FleetTest, GuestTimeoutIsTerminalWithoutRetry) {
  const std::string dir = MakeTempDir();
  std::vector<JobSpec> jobs = {FakeJob(dir, "slow", "exit 12")};
  FleetSupervisor fleet(std::move(jobs), FakeWorkerOptions(dir + "/out"));
  ASSERT_TRUE(fleet.Run().ok());
  EXPECT_EQ(fleet.records()[0].outcome, JobOutcome::kTimedOut);
  EXPECT_EQ(fleet.records()[0].attempts, 1u) << "deterministic timeouts must not retry";
}

TEST(FleetTest, UsageErrorIsTerminalWithoutRetry) {
  const std::string dir = MakeTempDir();
  std::vector<JobSpec> jobs = {FakeJob(dir, "broken", "exit 2")};
  FleetSupervisor fleet(std::move(jobs), FakeWorkerOptions(dir + "/out"));
  ASSERT_TRUE(fleet.Run().ok());
  EXPECT_EQ(fleet.records()[0].outcome, JobOutcome::kCrashed);
  EXPECT_EQ(fleet.records()[0].attempts, 1u);
}

TEST(FleetTest, DeadlineKillsHungWorker) {
  const std::string dir = MakeTempDir();
  std::vector<JobSpec> jobs = {FakeJob(dir, "wedged", "hang-until 99")};
  jobs[0].retries = 0;
  FleetOptions options = FakeWorkerOptions(dir + "/out");
  options.deadline_ms = 200;
  FleetSupervisor fleet(std::move(jobs), options);
  ASSERT_TRUE(fleet.Run().ok());
  EXPECT_EQ(fleet.records()[0].outcome, JobOutcome::kTimedOut);
  EXPECT_GE(fleet.records()[0].deadline_kills, 1u);
}

TEST(FleetTest, HangDetectorRecoversViaRetry) {
  const std::string dir = MakeTempDir();
  // First attempt wedges with no heartbeat progress; the retry succeeds.
  std::vector<JobSpec> jobs = {FakeJob(dir, "stuck", "hang-until 1")};
  FleetOptions options = FakeWorkerOptions(dir + "/out");
  options.hang_timeout_ms = 200;
  FleetSupervisor fleet(std::move(jobs), options);
  ASSERT_TRUE(fleet.Run().ok());
  const JobRecord& record = fleet.records()[0];
  EXPECT_EQ(record.outcome, JobOutcome::kRetriedOk);
  EXPECT_GE(record.hang_kills, 1u);
  EXPECT_EQ(record.guest_cycles, 4242u);
}

TEST(FleetTest, FleetJsonIsDeterministicAcrossWorkerCounts) {
  const auto run = [](uint64_t workers) {
    const std::string dir = MakeTempDir();
    std::vector<JobSpec> jobs;
    for (int i = 0; i < 5; ++i) {
      jobs.push_back(FakeJob(dir, "job" + std::to_string(i), "ok " + std::to_string(100 + i)));
    }
    jobs.push_back(FakeJob(dir, "flaky", "crash-until 1"));
    FleetOptions options = FakeWorkerOptions(dir + "/out");
    options.workers = workers;
    FleetSupervisor fleet(std::move(jobs), options);
    EXPECT_TRUE(fleet.Run().ok());
    std::ostringstream report;
    WriteFleetJson(fleet, report);
    return report.str();
  };
  const std::string serial = run(1);
  const std::string parallel = run(4);
  EXPECT_EQ(serial, parallel) << "fleet.json must not depend on host scheduling";
  EXPECT_NE(serial.find("\"outcome\":\"retried\""), std::string::npos);
  // Every attempt record names its exit code so post-mortems don't need the
  // numeric table from support/exit_codes.h at hand.
  EXPECT_NE(serial.find("\"exit_name\":\"ok\""), std::string::npos);
}

TEST(FleetTest, MemoryPressureEvictsAndResumes) {
  const std::string dir = MakeTempDir();
  std::vector<JobSpec> jobs = {FakeJob(dir, "big0", "evict-wait"),
                               FakeJob(dir, "big1", "evict-wait")};
  FleetOptions options = FakeWorkerOptions(dir + "/out");
  options.mem_limit_mb = 1;  // any two live workers exceed this immediately
  FleetSupervisor fleet(std::move(jobs), options);
  ASSERT_TRUE(fleet.Run().ok());
  EXPECT_EQ(fleet.SuggestedExitCode(), kExitOk);
  EXPECT_GE(fleet.metrics().Value("fleet", "mem_evictions"), 1u);
  uint64_t evicted_ok = 0;
  for (const JobRecord& record : fleet.records()) {
    evicted_ok += record.outcome == JobOutcome::kEvictedOk ? 1 : 0;
  }
  EXPECT_GE(evicted_ok, 1u);
}

// End-to-end with the real simulator: a chaos SIGKILL mid-run, resume from
// the latest checkpoint, and a stats.json byte-identical to an uninterrupted
// run — the core promise of checkpoint-restart retries.
TEST(FleetRealMsimTest, CrashResumeStatsAreByteIdentical) {
  const std::string dir = MakeTempDir();
  const std::string program = dir + "/loop.s";
  WriteText(program,
            "_start:\n"
            "  li t0, 60000\n"
            "loop:\n"
            "  addi t0, t0, -1\n"
            "  bnez t0, loop\n"
            "  halt t0\n");
  const auto manifest = [&](const std::string& name) {
    JobSpec spec;
    spec.name = name;
    spec.program = program;
    spec.max_cycles = 10000000;
    // Snapshots carry the whole guest DRAM (~20 MB): keep the cadence coarse
    // so parallel test shards don't saturate the disk and trip the deadline.
    spec.checkpoint_every = 50000;
    return spec;
  };
  FleetOptions options = FakeWorkerOptions(dir + "/chaos");
  options.msim_path = MSIM_CLI_PATH;
  options.workers = 1;
  options.deadline_ms = 60000;  // headroom for checkpoint I/O under test load
  options.chaos = {"kill@victim"};
  FleetSupervisor chaos_fleet({manifest("victim")}, options);
  ASSERT_TRUE(chaos_fleet.Run().ok());
  const JobRecord& victim = chaos_fleet.records()[0];
  ASSERT_TRUE(victim.outcome == JobOutcome::kRetriedOk || victim.outcome == JobOutcome::kOk);
  EXPECT_EQ(chaos_fleet.SuggestedExitCode(), kExitOk);

  FleetOptions clean_options = FakeWorkerOptions(dir + "/clean");
  clean_options.msim_path = MSIM_CLI_PATH;
  clean_options.workers = 1;
  clean_options.deadline_ms = 60000;
  FleetSupervisor clean_fleet({manifest("victim")}, clean_options);
  ASSERT_TRUE(clean_fleet.Run().ok());
  ASSERT_EQ(clean_fleet.records()[0].outcome, JobOutcome::kOk);

  const std::string interrupted = ReadText(dir + "/chaos/jobs/victim/stats.json");
  const std::string straight = ReadText(dir + "/clean/jobs/victim/stats.json");
  ASSERT_FALSE(straight.empty());
  EXPECT_EQ(interrupted, straight)
      << "a checkpoint-resumed run must report byte-identical stats";
  if (victim.outcome == JobOutcome::kRetriedOk) {
    EXPECT_TRUE(Exists(dir + "/chaos/jobs/victim/ckpts")) << "resume implies checkpoints";
  }
}

TEST(FleetRealMsimTest, GracefulEvictionWritesFinalCheckpoint) {
  const std::string dir = MakeTempDir();
  const std::string program = dir + "/loop.s";
  WriteText(program,
            "_start:\n"
            "  li t0, 60000\n"
            "loop:\n"
            "  addi t0, t0, -1\n"
            "  bnez t0, loop\n"
            "  halt t0\n");
  JobSpec spec;
  spec.name = "evictee";
  spec.program = program;
  spec.max_cycles = 10000000;
  spec.checkpoint_every = 50000;
  FleetOptions options = FakeWorkerOptions(dir + "/out");
  options.msim_path = MSIM_CLI_PATH;
  options.workers = 1;
  options.deadline_ms = 60000;  // headroom for checkpoint I/O under test load
  // The evicted worker must flush a ~20 MB final checkpoint before the
  // SIGTERM -> SIGKILL escalation fires, even on a disk busy with parallel
  // test shards.
  options.grace_ms = 10000;
  options.chaos = {"term@evictee"};
  FleetSupervisor fleet({spec}, options);
  ASSERT_TRUE(fleet.Run().ok());
  const JobRecord& record = fleet.records()[0];
  ASSERT_TRUE(record.outcome == JobOutcome::kEvictedOk || record.outcome == JobOutcome::kOk);
  EXPECT_EQ(record.failures, 0u) << "evictions must not consume the retry budget";
  if (record.outcome == JobOutcome::kEvictedOk) {
    EXPECT_GE(record.evictions, 1u);
    EXPECT_GT(record.guest_cycles, 0u);
  }
}

// ---------------------------------------------------------------------------
// The msimd CLI, end to end: numeric flags hold msim's strict parsing
// standard (support/strings.h ParseInt) — negative values, garbage suffixes
// and overflow exit 2, never a silent 0 or a saturated value.

int RunShell(const std::string& command) {
  const int raw = std::system(command.c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

TEST(MsimdCliTest, RejectsMalformedNumericFlags) {
  const std::string dir = MakeTempDir();
  const std::string manifest = dir + "/fleet.ini";
  WriteText(manifest, "[job noop]\nprogram = " + dir + "/noop.s\n");
  WriteText(dir + "/noop.s", "_start:\n  halt zero\n");
  const std::string base = std::string(MSIMD_CLI_PATH) + " run " + manifest + " ";
  EXPECT_EQ(RunShell(std::string(MSIMD_CLI_PATH) + " 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunShell(base + "--workers -2 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunShell(base + "--workers 4abc 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunShell(base + "--workers 0 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunShell(base + "--retries 99999999999999999999 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunShell(base + "--deadline-ms 5s 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunShell(base + "--heartbeat-every banana 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunShell(base + "--mem-limit-mb 1e9 2>/dev/null"), kExitUsage);
}

}  // namespace
}  // namespace msim
