// FlightRecorder: event filtering, drop-oldest ring behaviour, JSON export,
// checkpoint/restore byte-identity and crash-dump embedding.
#include "trace/flight.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "snap/snapstream.h"
#include "tests/sim_test_util.h"
#include "trace/json.h"

namespace msim {
namespace {

TraceEvent Event(TraceEventKind kind, uint64_t cycle, uint32_t pc = 0) {
  TraceEvent event;
  event.kind = kind;
  event.cycle = cycle;
  event.pc = pc;
  return event;
}

TEST(FlightRecorderTest, RecordsArchitecturalEventsOnly) {
  // Retires and transitions matter for post-mortem reconstruction;
  // micro-architectural noise (cache misses, stalls) does not.
  EXPECT_TRUE(FlightRecorder::Records(TraceEventKind::kRetire));
  EXPECT_TRUE(FlightRecorder::Records(TraceEventKind::kMenter));
  EXPECT_TRUE(FlightRecorder::Records(TraceEventKind::kMexit));
  EXPECT_TRUE(FlightRecorder::Records(TraceEventKind::kTrap));
  EXPECT_TRUE(FlightRecorder::Records(TraceEventKind::kInterrupt));
  EXPECT_TRUE(FlightRecorder::Records(TraceEventKind::kFaultInject));
  EXPECT_TRUE(FlightRecorder::Records(TraceEventKind::kMachineCheck));
  EXPECT_FALSE(FlightRecorder::Records(TraceEventKind::kICacheMiss));
  EXPECT_FALSE(FlightRecorder::Records(TraceEventKind::kDCacheMiss));
  EXPECT_FALSE(FlightRecorder::Records(TraceEventKind::kTlbMiss));
  EXPECT_FALSE(FlightRecorder::Records(TraceEventKind::kStall));
  EXPECT_FALSE(FlightRecorder::Records(TraceEventKind::kFlush));
  EXPECT_FALSE(FlightRecorder::Records(TraceEventKind::kMramAccess));

  FlightRecorder flight(8);
  flight.OnEvent(Event(TraceEventKind::kRetire, 1));
  flight.OnEvent(Event(TraceEventKind::kStall, 2));
  flight.OnEvent(Event(TraceEventKind::kICacheMiss, 3));
  EXPECT_EQ(flight.total(), 1u);
  ASSERT_EQ(flight.Events().size(), 1u);
  EXPECT_EQ(flight.Events()[0].kind, TraceEventKind::kRetire);
}

TEST(FlightRecorderTest, RingKeepsMostRecentInOrder) {
  FlightRecorder flight(4);
  for (uint64_t c = 1; c <= 10; ++c) {
    flight.OnEvent(Event(TraceEventKind::kRetire, c, static_cast<uint32_t>(c * 4)));
  }
  EXPECT_EQ(flight.total(), 10u);
  EXPECT_EQ(flight.dropped(), 6u);
  const std::vector<TraceEvent> events = flight.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].cycle, 7 + i);  // oldest-first: cycles 7..10
  }
}

TEST(FlightRecorderTest, AppendJsonIsValid) {
  FlightRecorder flight(4);
  flight.OnEvent(Event(TraceEventKind::kTrap, 12, 0x2000));
  std::ostringstream out;
  JsonWriter json(out);
  json.BeginObject();
  flight.AppendJson(json);
  json.EndObject();
  EXPECT_TRUE(JsonLooksValid(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"kind\":\"trap\""), std::string::npos);
  EXPECT_NE(out.str().find("\"capacity\":4"), std::string::npos);
}

TEST(FlightRecorderTest, SaveRestoreIsByteIdentical) {
  FlightRecorder flight(4);
  for (uint64_t c = 1; c <= 7; ++c) {
    flight.OnEvent(Event(TraceEventKind::kRetire, c));
  }
  SnapWriter w;
  flight.SaveState(w);
  const std::vector<uint8_t> bytes = w.TakeBytes();
  FlightRecorder restored(1);  // capacity comes from the snapshot
  SnapReader r(bytes);
  ASSERT_OK(restored.RestoreState(r));

  EXPECT_EQ(restored.total(), flight.total());
  EXPECT_EQ(restored.dropped(), flight.dropped());
  const auto dump = [](const FlightRecorder& f) {
    std::ostringstream out;
    JsonWriter json(out);
    json.BeginObject();
    f.AppendJson(json);
    json.EndObject();
    return out.str();
  };
  EXPECT_EQ(dump(restored), dump(flight));

  // The restored ring keeps rolling correctly.
  restored.OnEvent(Event(TraceEventKind::kRetire, 8));
  const std::vector<TraceEvent> events = restored.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().cycle, 5u);
  EXPECT_EQ(events.back().cycle, 8u);
}

TEST(FlightRecorderTest, RestoreRejectsImplausibleState) {
  {
    SnapWriter w;
    w.U64(0);  // capacity 0
    const std::vector<uint8_t> bytes = w.TakeBytes();
    FlightRecorder flight;
    SnapReader r(bytes);
    EXPECT_FALSE(flight.RestoreState(r).ok());
  }
  {
    SnapWriter w;
    w.U64(2);   // capacity
    w.U64(9);   // total
    w.U64(0);   // dropped
    w.U64(5);   // count > capacity
    const std::vector<uint8_t> bytes = w.TakeBytes();
    FlightRecorder flight;
    SnapReader r(bytes);
    EXPECT_FALSE(flight.RestoreState(r).ok());
  }
}

}  // namespace
}  // namespace msim
