// Configuration-variant coverage: every extension must be functionally
// identical across the three mroutine placements and with the fast-path
// ablation disabled; timing must respond monotonically to the latency knobs.
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "ext/cpt.h"
#include "ext/privilege.h"
#include "ext/stm.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

std::vector<CoreConfig> AllMetalConfigs() {
  CoreConfig mram;
  CoreConfig mram_slow;
  mram_slow.fast_transition = false;
  CoreConfig trap;
  trap.mroutine_storage = MroutineStorage::kDramCached;
  CoreConfig palcode;
  palcode.mroutine_storage = MroutineStorage::kDramUncached;
  return {mram, mram_slow, trap, palcode};
}

std::string ConfigName(const CoreConfig& config) {
  if (config.mroutine_storage == MroutineStorage::kDramCached) return "dram_cached";
  if (config.mroutine_storage == MroutineStorage::kDramUncached) return "dram_uncached";
  return config.fast_transition ? "mram_fast" : "mram_slow";
}

class StorageVariantTest : public ::testing::TestWithParam<int> {
 protected:
  CoreConfig config() const { return AllMetalConfigs()[GetParam()]; }
};

TEST_P(StorageVariantTest, PrivilegeSyscallsWork) {
  MetalSystem system(config());
  const Program program = MustAssemble(R"(
    _start:
      li a0, 0
      li a1, 7
      li a2, 8
      menter 8
      halt a0
    sys_add:
      add a0, a1, a2
      menter 9
    kfault:
      li a0, 0xEE
      halt a0
    .data
    syscall_table: .word sys_add
  )");
  ASSERT_OK(PrivilegeExtension::Install(system, program.symbols.at("syscall_table"), 1,
                                        program.symbols.at("kfault")));
  ASSERT_OK(system.LoadProgram(program));
  MustHalt(system, 15);
}

TEST_P(StorageVariantTest, CustomPageTableWalkerWorks) {
  MetalSystem system(config());
  ASSERT_OK(CustomPageTable::Install(system, 0));
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      la t0, value
      lw a0, 0(t0)
      halt a0
    .data
    value: .word 777
  )"));
  ASSERT_OK(system.Boot());
  Core& core = system.core();
  CustomPageTable cpt(core, 0x00400000, 0x00100000);
  const uint32_t root = *cpt.CreateAddressSpace();
  for (uint32_t page = 0; page < 16; ++page) {
    ASSERT_OK(cpt.Map(root, page * 4096, page * 4096, kPteR | kPteW | kPteX));
  }
  for (uint32_t page = 0; page < 16; ++page) {
    const uint32_t addr = 0x00100000 + page * 4096;
    ASSERT_OK(cpt.Map(root, addr, addr, kPteR | kPteW));
  }
  ASSERT_OK(cpt.Activate(root));
  core.metal().WriteCreg(kCrPgEnable, 1);
  MustHalt(system, 777);
}

TEST_P(StorageVariantTest, StmCommitWorks) {
  MetalSystem system(config());
  ASSERT_OK(StmExtension::Install(system, 0x00700000, 0x00704000, 1024));
  ASSERT_OK(system.LoadProgramSource(R"(
    .equ SHARED, 0x00600000
    _start:
      la a0, on_abort
      menter 24
      li t5, SHARED
      lw t6, 0(t5)
      addi t6, t6, 5
      sw t6, 0(t5)
      menter 27
      li t5, SHARED
      lw a0, 0(t5)
      halt a0
    on_abort:
      li a0, 0xBB
      halt a0
  )"));
  ASSERT_OK(system.Boot());
  ASSERT_TRUE(system.core().bus().dram().Write32(0x00600000, 37));
  MustHalt(system, 42);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, StorageVariantTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return ConfigName(AllMetalConfigs()[info.param]);
                         });

// ---- Timing monotonicity ---------------------------------------------------

uint64_t CyclesFor(const CoreConfig& config) {
  MetalSystem system(config);
  system.AddMcode(R"(
      .mentry 1, work
    work:
      addi a1, a1, 1
      mexit
  )");
  EXPECT_OK(system.LoadProgramSource(R"(
    _start:
      li s0, 300
      la s2, buffer
    loop:
      menter 1
      lw t1, 0(s2)
      addi t1, t1, 1
      sw t1, 0(s2)
      addi s2, s2, 64      # a fresh cache line every iteration
      addi s0, s0, -1
      bnez s0, loop
      halt zero
    .data
    buffer: .space 32768
  )"));
  const RunResult result = system.Run(10'000'000);
  EXPECT_EQ(result.reason, RunResult::Reason::kHalted) << result.fatal_message;
  return result.cycles;
}

TEST(TimingMonotonicityTest, SlowerDramNeverSpeedsUp) {
  uint64_t previous = 0;
  for (const uint32_t dram : {5u, 10u, 20u, 40u, 80u}) {
    CoreConfig config;
    config.dram_latency = dram;
    const uint64_t cycles = CyclesFor(config);
    EXPECT_GE(cycles, previous) << "dram_latency " << dram;
    previous = cycles;
  }
}

TEST(TimingMonotonicityTest, FastTransitionNeverHurts) {
  CoreConfig fast;
  CoreConfig slow;
  slow.fast_transition = false;
  EXPECT_LE(CyclesFor(fast), CyclesFor(slow));
}

TEST(TimingMonotonicityTest, MramNeverSlowerThanDramHandlers) {
  CoreConfig mram;
  CoreConfig trap;
  trap.mroutine_storage = MroutineStorage::kDramCached;
  CoreConfig palcode;
  palcode.mroutine_storage = MroutineStorage::kDramUncached;
  const uint64_t mram_cycles = CyclesFor(mram);
  const uint64_t trap_cycles = CyclesFor(trap);
  const uint64_t palcode_cycles = CyclesFor(palcode);
  EXPECT_LE(mram_cycles, trap_cycles);
  EXPECT_LE(trap_cycles, palcode_cycles);
}

TEST(TimingMonotonicityTest, BiggerCachesNeverHurt) {
  uint64_t previous = UINT64_MAX;
  for (const uint32_t lines : {16u, 64u, 256u}) {
    CoreConfig config;
    config.icache_lines = lines;
    config.dcache_lines = lines;
    const uint64_t cycles = CyclesFor(config);
    EXPECT_LE(cycles, previous) << "cache lines " << lines;
    previous = cycles;
  }
}

// ---- Disassembler coverage --------------------------------------------------

class DisasmCoverage : public ::testing::TestWithParam<int> {};

TEST_P(DisasmCoverage, EveryInstructionRendersItsMnemonic) {
  const InstrKind kind = static_cast<InstrKind>(GetParam());
  const InstrInfo& info = GetInstrInfo(kind);
  // Build a representative encoding.
  int32_t imm = 0;
  if (kind == InstrKind::kEbreak) imm = 1;
  auto word = Encode(kind, 1, 2, 3, imm);
  if (!word.ok()) {
    word = Encode(kind, 1, 2, 3, 4);  // formats needing a non-zero immediate
  }
  ASSERT_TRUE(word.ok()) << info.mnemonic;
  const std::string text = Disassemble(*word);
  EXPECT_NE(text.find(info.mnemonic), std::string::npos) << text;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DisasmCoverage,
                         ::testing::Range(1, static_cast<int>(InstrKind::kCount)),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(
                               GetInstrInfo(static_cast<InstrKind>(info.param)).mnemonic);
                         });

}  // namespace
}  // namespace msim
