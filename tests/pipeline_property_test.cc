// Property-based testing: the pipelined core must agree with a simple
// unpipelined reference interpreter on randomized programs.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "isa/encoding.h"
#include "support/rng.h"
#include "support/strings.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

// Minimal golden-model executor for straight-line ALU/memory programs.
class ReferenceModel {
 public:
  std::array<uint32_t, 32> regs{};
  std::vector<uint8_t> memory;

  explicit ReferenceModel(size_t mem_size) : memory(mem_size, 0) {}

  void Execute(const Decoded& d) {
    const uint32_t a = regs[d.rs1];
    const uint32_t b = regs[d.rs2];
    const int32_t sa = static_cast<int32_t>(a);
    const int32_t sb = static_cast<int32_t>(b);
    const uint32_t imm = static_cast<uint32_t>(d.imm);
    uint32_t result = 0;
    bool writes = true;
    switch (d.kind) {
      case InstrKind::kAddi: result = a + imm; break;
      case InstrKind::kSlti: result = sa < d.imm ? 1 : 0; break;
      case InstrKind::kSltiu: result = a < imm ? 1 : 0; break;
      case InstrKind::kXori: result = a ^ imm; break;
      case InstrKind::kOri: result = a | imm; break;
      case InstrKind::kAndi: result = a & imm; break;
      case InstrKind::kSlli: result = a << (imm & 31); break;
      case InstrKind::kSrli: result = a >> (imm & 31); break;
      case InstrKind::kSrai: result = static_cast<uint32_t>(sa >> (imm & 31)); break;
      case InstrKind::kAdd: result = a + b; break;
      case InstrKind::kSub: result = a - b; break;
      case InstrKind::kSll: result = a << (b & 31); break;
      case InstrKind::kSlt: result = sa < sb ? 1 : 0; break;
      case InstrKind::kSltu: result = a < b ? 1 : 0; break;
      case InstrKind::kXor: result = a ^ b; break;
      case InstrKind::kSrl: result = a >> (b & 31); break;
      case InstrKind::kSra: result = static_cast<uint32_t>(sa >> (b & 31)); break;
      case InstrKind::kOr: result = a | b; break;
      case InstrKind::kAnd: result = a & b; break;
      case InstrKind::kMul: result = a * b; break;
      case InstrKind::kMulh:
        result = static_cast<uint32_t>((static_cast<int64_t>(sa) * sb) >> 32);
        break;
      case InstrKind::kMulhu:
        result = static_cast<uint32_t>((static_cast<uint64_t>(a) * b) >> 32);
        break;
      case InstrKind::kMulhsu:
        result = static_cast<uint32_t>((static_cast<int64_t>(sa) * static_cast<uint64_t>(b)) >>
                                       32);
        break;
      case InstrKind::kDiv:
        result = b == 0 ? 0xFFFFFFFF
                 : (sa == INT32_MIN && sb == -1) ? static_cast<uint32_t>(INT32_MIN)
                                                 : static_cast<uint32_t>(sa / sb);
        break;
      case InstrKind::kDivu: result = b == 0 ? 0xFFFFFFFF : a / b; break;
      case InstrKind::kRem:
        result = b == 0 ? a : (sa == INT32_MIN && sb == -1) ? 0 : static_cast<uint32_t>(sa % sb);
        break;
      case InstrKind::kRemu: result = b == 0 ? a : a % b; break;
      case InstrKind::kLui: result = imm << 12; break;
      case InstrKind::kLw: {
        const uint32_t addr = a + imm;
        result = 0;
        for (int i = 0; i < 4; ++i) {
          result |= static_cast<uint32_t>(memory[addr + i]) << (8 * i);
        }
        break;
      }
      case InstrKind::kSw: {
        const uint32_t addr = a + imm;
        for (int i = 0; i < 4; ++i) {
          memory[addr + i] = static_cast<uint8_t>(b >> (8 * i));
        }
        writes = false;
        break;
      }
      default:
        writes = false;
        break;
    }
    if (writes && d.rd != 0) {
      regs[d.rd] = result;
    }
  }
};

constexpr InstrKind kAluR[] = {
    InstrKind::kAdd,  InstrKind::kSub,  InstrKind::kSll,  InstrKind::kSlt,
    InstrKind::kSltu, InstrKind::kXor,  InstrKind::kSrl,  InstrKind::kSra,
    InstrKind::kOr,   InstrKind::kAnd,  InstrKind::kMul,  InstrKind::kMulh,
    InstrKind::kMulhu, InstrKind::kMulhsu, InstrKind::kDiv, InstrKind::kDivu,
    InstrKind::kRem,  InstrKind::kRemu,
};
constexpr InstrKind kAluI[] = {
    InstrKind::kAddi, InstrKind::kSlti, InstrKind::kSltiu, InstrKind::kXori,
    InstrKind::kOri,  InstrKind::kAndi, InstrKind::kSlli,  InstrKind::kSrli,
    InstrKind::kSrai,
};

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, CoreMatchesReferenceModel) {
  Rng rng(GetParam());
  constexpr uint32_t kBufferBase = 0x00200000;
  constexpr uint32_t kBufferWords = 64;

  // Generate a random program of ALU and memory ops. x1 is reserved as the
  // buffer base so loads/stores stay in bounds; x0 stays zero.
  std::vector<uint32_t> words;
  std::vector<Decoded> golden;
  const int length = 200 + static_cast<int>(rng.Below(200));
  for (int i = 0; i < length; ++i) {
    const int pick = static_cast<int>(rng.Below(10));
    uint32_t word = 0;
    auto reg = [&rng]() {
      uint8_t r = static_cast<uint8_t>(rng.Below(32));
      return r == 1 ? uint8_t{2} : r;  // never clobber x1 (buffer base)
    };
    if (pick < 4) {
      const InstrKind kind = kAluR[rng.Below(std::size(kAluR))];
      word = *EncodeR(kind, reg(), reg(), reg());
    } else if (pick < 7) {
      const InstrKind kind = kAluI[rng.Below(std::size(kAluI))];
      const bool shift = kind == InstrKind::kSlli || kind == InstrKind::kSrli ||
                         kind == InstrKind::kSrai;
      const int32_t imm = shift ? static_cast<int32_t>(rng.Below(32))
                                : static_cast<int32_t>(rng.Below(4096)) - 2048;
      word = *EncodeI(kind, reg(), reg(), imm);
    } else if (pick < 8) {
      word = *EncodeU(InstrKind::kLui, reg(), static_cast<int32_t>(rng.Below(1 << 20)));
    } else if (pick < 9) {
      const int32_t offset = static_cast<int32_t>(rng.Below(kBufferWords)) * 4;
      word = *EncodeI(InstrKind::kLw, reg(), 1, offset);
    } else {
      const int32_t offset = static_cast<int32_t>(rng.Below(kBufferWords)) * 4;
      word = *EncodeS(InstrKind::kSw, 1, reg(), offset);
    }
    words.push_back(word);
    golden.push_back(DecodeInstr(word));
  }

  // Reference execution.
  ReferenceModel ref(kBufferBase + kBufferWords * 4 + 64);
  ref.regs[1] = kBufferBase;
  for (const Decoded& d : golden) {
    ref.Execute(d);
  }

  // Pipelined execution.
  Core core;
  Program program;
  program.text.base = 0x1000;
  for (const uint32_t word : words) {
    for (int b = 0; b < 4; ++b) {
      program.text.bytes.push_back(static_cast<uint8_t>(word >> (8 * b)));
    }
  }
  const uint32_t halt_word = *EncodeI(InstrKind::kHalt, 0, 0, 0);
  for (int b = 0; b < 4; ++b) {
    program.text.bytes.push_back(static_cast<uint8_t>(halt_word >> (8 * b)));
  }
  program.entry = program.text.base;
  ASSERT_OK(core.LoadProgram(program));
  core.WriteReg(1, kBufferBase);
  const RunResult result = core.Run(1'000'000);
  ASSERT_EQ(result.reason, RunResult::Reason::kHalted) << result.fatal_message;

  for (uint8_t r = 0; r < 32; ++r) {
    EXPECT_EQ(core.ReadReg(r), ref.regs[r]) << "register x" << int(r);
  }
  for (uint32_t w = 0; w < kBufferWords; ++w) {
    uint32_t ref_word = 0;
    for (int b = 0; b < 4; ++b) {
      ref_word |= static_cast<uint32_t>(ref.memory[kBufferBase + 4 * w + b]) << (8 * b);
    }
    EXPECT_EQ(core.bus().dram().Read32(kBufferBase + 4 * w), ref_word) << "word " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range<uint64_t>(1, 25));

// Branch-heavy property: computed sums through random taken/not-taken
// branches must match a closed-form value.
class BranchPatternTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BranchPatternTest, BranchMazeMatchesExpectation) {
  Rng rng(GetParam() * 97 + 13);
  // Build a chain of blocks; each block conditionally skips an addi with a
  // distinct power of two, based on a pseudo-random bit both sides compute.
  std::string source = "_start:\n  li a0, 0\n";
  uint32_t expected = 0;
  for (int i = 0; i < 24; ++i) {
    const bool take = rng.Chance(1, 2);
    const uint32_t delta = 1u << i;
    source += StrFormat("  li t0, %d\n", take ? 1 : 0);
    source += StrFormat("  beqz t0, skip%d\n", i);
    source += StrFormat("  li t1, 0x%x\n  add a0, a0, t1\n", delta);
    source += StrFormat("skip%d:\n", i);
    if (take) {
      expected += delta;
    }
  }
  source += "  halt a0\n";
  Core core;
  ASSERT_OK(core.LoadProgram(MustAssemble(source)));
  const RunResult result = core.Run(1'000'000);
  ASSERT_EQ(result.reason, RunResult::Reason::kHalted) << result.fatal_message;
  EXPECT_EQ(result.exit_code, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchPatternTest, ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace msim
