// Tests for the differential fault-injection campaign engine (src/campaign):
// the outcome classifier (one test per taxonomy class), snapshot-fork vs.
// cold-start byte identity, campaign.json two-run determinism, the
// parity-on/off headline behavior (detection converts every would-be SDC
// into detected_recovered), SDC repro harvesting, and the mcamp CLI.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.h"
#include "cpu/trap.h"
#include "metal/system.h"
#include "support/exit_codes.h"
#include "tests/sim_test_util.h"
#include "trace/json.h"

namespace msim {
namespace {

// The campaign guest pair from tests/data/ (embedded so the unit tests are
// path-independent; CI runs the same sources through the mcamp CLI). Entry 1
// accumulates in MRAM data word 0, entry 2 is the transparent scrub-and-retry
// machine-check recovery mroutine.
constexpr const char* kMcode = R"(
    .equ D_COUNT, 0
    .equ CR_MEPC, 1
    .equ CR_MRAM_SCRUB, 52

    .mentry 1, count_add
    .mentry 2, mcheck_recover

  count_add:
    mld t0, D_COUNT(zero)
    add t0, t0, a0
    mst t0, D_COUNT(zero)
    mv a0, t0
    mexit

  mcheck_recover:
    wcr CR_MRAM_SCRUB, zero
    wmr m30, t0
    rcr t0, CR_MEPC
    wmr m31, t0
    rmr t0, m30
    mexit
)";

constexpr const char* kGuest = R"(
  _start:
    li s0, 12
    li s1, 0
    li s2, 0xF0003000
  loop:
    li a0, 5
    menter 1
    mv s1, a0
    andi t0, s1, 63
    addi t0, t0, 32
    sw t0, 0(s2)
    addi s0, s0, -1
    bnez s0, loop
    halt s1
)";

CampaignEngine::SystemSetup MakeSetup() {
  return [](MetalSystem& system) -> Status {
    system.AddMcode(kMcode);
    system.DelegateException(ExcCause::kMachineCheck, 2);
    return system.LoadProgramSource(kGuest);
  };
}

// Focused MRAM-data fault space: every trial lands on the accelerator's live
// counter word, so the parity-on/off contrast is sharp with a small budget.
CampaignOptions FocusedOptions(uint64_t trials) {
  CampaignOptions options;
  options.targets = {FaultTarget::kMramData};
  options.max_location = 1;
  options.trials = trials;
  options.snapshots = 4;
  return options;
}

// ---------------------------------------------------------------------------
// Classifier: one test per taxonomy class, on canned outcomes.

ArchOutcome GoldenOutcome() {
  ArchOutcome golden;
  golden.halted = true;
  golden.exit_code = 60;
  golden.arch_digest = 0xAAAAu;
  return golden;
}

TEST(ClassifyTrialTest, IdenticalOutcomeIsMasked) {
  const ArchOutcome golden = GoldenOutcome();
  EXPECT_EQ(ClassifyTrial(golden, golden), TrialOutcome::kMasked);
}

TEST(ClassifyTrialTest, RecoveredTrialIsDetectedRecovered) {
  const ArchOutcome golden = GoldenOutcome();
  ArchOutcome trial = golden;
  trial.machine_checks = 1;  // a machine check fired, yet the outcome matches
  trial.words_scrubbed = 1;
  EXPECT_EQ(ClassifyTrial(golden, trial), TrialOutcome::kDetectedRecovered);
}

TEST(ClassifyTrialTest, FatalMachineCheckIsDetectedFatal) {
  const ArchOutcome golden = GoldenOutcome();
  ArchOutcome trial;
  trial.fatal = true;
  trial.fatal_message = "undelegated machine check (mram_data_parity) at pc=0xffff0000";
  EXPECT_EQ(ClassifyTrial(golden, trial), TrialOutcome::kDetectedFatal);
}

TEST(ClassifyTrialTest, OtherFatalIsCrash) {
  const ArchOutcome golden = GoldenOutcome();
  ArchOutcome trial;
  trial.fatal = true;
  trial.fatal_message = "metal watchdog expired after 1000 cycles";
  EXPECT_EQ(ClassifyTrial(golden, trial), TrialOutcome::kCrash);
}

TEST(ClassifyTrialTest, NeitherHaltedNorFatalIsHang) {
  const ArchOutcome golden = GoldenOutcome();
  ArchOutcome trial;  // still running when the budget expired
  EXPECT_EQ(ClassifyTrial(golden, trial), TrialOutcome::kHang);
}

TEST(ClassifyTrialTest, DivergentDigestIsSdc) {
  const ArchOutcome golden = GoldenOutcome();
  ArchOutcome trial = golden;
  trial.arch_digest = 0xBBBBu;
  EXPECT_EQ(ClassifyTrial(golden, trial), TrialOutcome::kSdc);
}

TEST(ClassifyTrialTest, DivergentDigestIsSdcEvenWhenDetected) {
  // Corruption that escapes into the final state is a recovery bug; a
  // machine check along the way must not reclassify it as detected.
  const ArchOutcome golden = GoldenOutcome();
  ArchOutcome trial = golden;
  trial.arch_digest = 0xBBBBu;
  trial.machine_checks = 3;
  EXPECT_EQ(ClassifyTrial(golden, trial), TrialOutcome::kSdc);
}

TEST(ClassifyTrialTest, OutcomeNamesAreStable) {
  EXPECT_STREQ(TrialOutcomeName(TrialOutcome::kMasked), "masked");
  EXPECT_STREQ(TrialOutcomeName(TrialOutcome::kDetectedRecovered), "detected_recovered");
  EXPECT_STREQ(TrialOutcomeName(TrialOutcome::kDetectedFatal), "detected_fatal");
  EXPECT_STREQ(TrialOutcomeName(TrialOutcome::kSdc), "sdc");
  EXPECT_STREQ(TrialOutcomeName(TrialOutcome::kHang), "hang");
  EXPECT_STREQ(TrialOutcomeName(TrialOutcome::kCrash), "crash");
}

// ---------------------------------------------------------------------------
// Engine.

TEST(CampaignEngineTest, GoldenRunMustHaltCleanly) {
  CampaignOptions options;
  options.max_cycles = 500;
  CampaignEngine engine(
      CoreConfig{},
      [](MetalSystem& system) {
        return system.LoadProgramSource("  _start:\n    li s0, 1\n  spin:\n    bnez s0, spin\n");
      },
      options);
  const Status status = engine.Prepare();
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition) << status.ToString();
}

TEST(CampaignEngineTest, PlanIsDeterministicStratifiedAndInRange) {
  CampaignEngine a(CoreConfig{}, MakeSetup(), FocusedOptions(40));
  CampaignEngine b(CoreConfig{}, MakeSetup(), FocusedOptions(40));
  ASSERT_OK(a.Prepare());
  ASSERT_OK(b.Prepare());
  const auto plan_a = a.PlanTrials();
  const auto plan_b = b.PlanTrials();
  ASSERT_EQ(plan_a.size(), 40u);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  uint64_t last_cycle = 0;
  for (size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].spec.text, plan_b[i].spec.text);
    EXPECT_GE(plan_a[i].spec.cycle, 1u);
    EXPECT_LT(plan_a[i].spec.cycle, a.golden().cycles);
    EXPECT_TRUE(plan_a[i].spec.has_at);
    EXPECT_EQ(plan_a[i].spec.at, 0u);  // max_location=1 pins the live word
    // Single-target stratification: injection cycles are non-decreasing
    // across the run, i.e. coverage sweeps the execution end to end.
    EXPECT_GE(plan_a[i].spec.cycle, last_cycle);
    last_cycle = plan_a[i].spec.cycle;
  }
}

TEST(CampaignEngineTest, ForkedTrialIsByteIdenticalToColdStart) {
  CampaignEngine engine(CoreConfig{}, MakeSetup(), FocusedOptions(12));
  ASSERT_OK(engine.Prepare());
  bool any_forked = false;
  for (const TrialPlan& plan : engine.PlanTrials()) {
    auto forked = engine.RunTrial(plan, /*allow_fork=*/true);
    auto cold = engine.RunTrial(plan, /*allow_fork=*/false);
    ASSERT_OK(forked.status());
    ASSERT_OK(cold.status());
    EXPECT_FALSE(cold->forked);
    any_forked |= forked->forked;
    // Identical final machine state, byte for byte (DRAM included) — the
    // fork optimization is invisible to the campaign's results.
    EXPECT_EQ(forked->result.state_digest, cold->result.state_digest) << plan.spec.text;
    EXPECT_EQ(forked->outcome, cold->outcome) << plan.spec.text;
    EXPECT_EQ(forked->detected, cold->detected) << plan.spec.text;
    EXPECT_EQ(forked->detect_cycle, cold->detect_cycle) << plan.spec.text;
  }
  EXPECT_TRUE(any_forked);  // late-cycle trials must actually use the forks
}

// ---------------------------------------------------------------------------
// Full campaigns: the parity headline and report determinism.

TEST(CampaignTest, ParityConvertsEverySdcIntoDetectedRecovered) {
  CampaignEngine with_parity(CoreConfig{}, MakeSetup(), FocusedOptions(30));
  auto on = RunCampaign(with_parity);
  ASSERT_OK(on.status());

  CoreConfig unprotected;
  unprotected.mram_parity = false;
  CampaignEngine without_parity(unprotected, MakeSetup(), FocusedOptions(30));
  auto off = RunCampaign(without_parity);
  ASSERT_OK(off.status());

  const auto count = [](const CampaignReport& r, TrialOutcome o) {
    return r.counts[static_cast<size_t>(o)];
  };
  // Parity on: faults on the live word are caught and recovered, none silent.
  EXPECT_GT(count(*on, TrialOutcome::kDetectedRecovered), 0u);
  EXPECT_EQ(count(*on, TrialOutcome::kSdc), 0u);
  EXPECT_TRUE(on->sdcs.empty());
  // Parity off: the same fault space, the same trials — every one of those
  // recoveries becomes silent data corruption.
  EXPECT_EQ(count(*off, TrialOutcome::kDetectedRecovered), 0u);
  EXPECT_EQ(count(*off, TrialOutcome::kSdc), count(*on, TrialOutcome::kDetectedRecovered));
  EXPECT_EQ(count(*off, TrialOutcome::kMasked), count(*on, TrialOutcome::kMasked));
  // Every SDC carries a lockstep pinpoint at or after its injection cycle.
  ASSERT_EQ(off->sdcs.size(), count(*off, TrialOutcome::kSdc));
  for (const TrialRecord& sdc : off->sdcs) {
    ASSERT_TRUE(sdc.has_divergence) << sdc.plan.spec.text;
    EXPECT_TRUE(sdc.divergence.diverged);
    EXPECT_GE(sdc.divergence.cycle_a, sdc.plan.spec.cycle);
  }
}

TEST(CampaignTest, CampaignJsonIsByteIdenticalAcrossRuns) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    CampaignOptions options = FocusedOptions(20);
    options.collect_trial_records = true;
    CampaignEngine engine(CoreConfig{}, MakeSetup(), options);
    auto report = RunCampaign(engine);
    ASSERT_OK(report.status());
    std::ostringstream json;
    WriteCampaignJson(*report, json);
    EXPECT_TRUE(JsonLooksValid(json.str()));
    if (run == 0) {
      first = json.str();
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(first, json.str());
    }
  }
}

TEST(CampaignTest, HarvestsSelfContainedSdcRepro) {
  const std::string out_dir = testing::TempDir() + "campaign_sdc_repro";
  CoreConfig unprotected;
  unprotected.mram_parity = false;
  CampaignOptions options = FocusedOptions(8);
  options.out_dir = out_dir;
  options.repro_files.push_back({"guest.s", kGuest});
  options.repro_files.push_back({"mcode.s", kMcode});
  options.repro_msim_args = "guest.s --mcode mcode.s --no-parity";
  CampaignEngine engine(unprotected, MakeSetup(), options);
  auto report = RunCampaign(engine);
  ASSERT_OK(report.status());
  ASSERT_FALSE(report->sdcs.empty());
  const TrialRecord& sdc = report->sdcs.front();
  ASSERT_FALSE(sdc.repro_dir.empty());
  const std::string dir = out_dir + "/" + sdc.repro_dir;
  for (const char* name : {"guest.s", "mcode.s", "spec.txt", "divergence.json", "repro.sh"}) {
    std::ifstream in(dir + "/" + name);
    EXPECT_TRUE(in.good()) << dir << "/" << name;
  }
  std::ifstream spec_in(dir + "/spec.txt");
  std::string spec_line;
  std::getline(spec_in, spec_line);
  EXPECT_EQ(spec_line, sdc.plan.spec.text);
}

// ---------------------------------------------------------------------------
// The mcamp CLI, end to end.

int RunCommand(const std::string& command) {
  const int raw = std::system(command.c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

std::string WriteGuestFiles(const std::string& dir) {
  std::ofstream guest(dir + "/guest.s");
  guest << kGuest;
  std::ofstream mcode(dir + "/mcode.s");
  mcode << kMcode;
  return dir;
}

TEST(McampCliTest, CleanCampaignExitsZeroAndSdcCampaignExits14) {
  const std::string dir = WriteGuestFiles(testing::TempDir());
  const std::string base = std::string(MCAMP_CLI_PATH) + " run " + dir + "/guest.s --mcode " +
                           dir + "/mcode.s --mcheck-entry 2 --target mram-data --locations 1 "
                           "--trials 10 --campaign-json " +
                           dir + "/campaign.json 2>/dev/null";
  EXPECT_EQ(RunCommand(base), kExitOk);
  std::ifstream json_in(dir + "/campaign.json");
  std::stringstream json;
  json << json_in.rdbuf();
  EXPECT_TRUE(JsonLooksValid(json.str()));
  EXPECT_NE(json.str().find("\"detected_recovered\""), std::string::npos);

  const std::string no_parity = std::string(MCAMP_CLI_PATH) + " run " + dir +
                                "/guest.s --mcode " + dir +
                                "/mcode.s --mcheck-entry 2 --no-parity --target mram-data "
                                "--locations 1 --trials 10 --campaign-json " +
                                dir + "/campaign-np.json 2>/dev/null";
  EXPECT_EQ(RunCommand(no_parity), kExitSdc);
}

TEST(McampCliTest, RejectsUsageErrors) {
  EXPECT_EQ(RunCommand(std::string(MCAMP_CLI_PATH) + " 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunCommand(std::string(MCAMP_CLI_PATH) + " run 2>/dev/null"), kExitUsage);
  const std::string dir = WriteGuestFiles(testing::TempDir());
  EXPECT_EQ(RunCommand(std::string(MCAMP_CLI_PATH) + " run " + dir +
                       "/guest.s --trials 0 2>/dev/null"),
            kExitUsage);
  EXPECT_EQ(RunCommand(std::string(MCAMP_CLI_PATH) + " run " + dir +
                       "/guest.s --target warp-core 2>/dev/null"),
            kExitUsage);
}

// Numeric flags hold msim's strict parsing standard: negative values, garbage
// suffixes and overflow are usage errors (exit 2), never a silent 0 or a
// saturated value, and documented range floors are enforced at the CLI.
TEST(McampCliTest, RejectsMalformedNumericFlags) {
  const std::string dir = WriteGuestFiles(testing::TempDir());
  const std::string base = std::string(MCAMP_CLI_PATH) + " run " + dir + "/guest.s ";
  EXPECT_EQ(RunCommand(base + "--trials -3 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunCommand(base + "--trials 10abc 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunCommand(base + "--max-cycles 99999999999999999999 2>/dev/null"),
            kExitUsage);
  EXPECT_EQ(RunCommand(base + "--seed banana 2>/dev/null"), kExitUsage);
  // --hang-factor documents "min 2"; the engine no longer clamps silently.
  EXPECT_EQ(RunCommand(base + "--hang-factor 1 2>/dev/null"), kExitUsage);
  EXPECT_EQ(RunCommand(base + "--hang-factor 0 2>/dev/null"), kExitUsage);
}

}  // namespace
}  // namespace msim
