// Retirement-trace facility: program order, Metal-mode attribution, and
// agreement with the instret counter — plus the structured event tracer
// (trace/trace.h) fed from the same pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "isa/decode.h"
#include "tests/sim_test_util.h"
#include "trace/trace.h"

namespace msim {
namespace {

TEST(RetireTraceTest, EventsArriveInProgramOrder) {
  Core core;
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      li t0, 3
    loop:
      addi t0, t0, -1
      bnez t0, loop
      la t1, word
      lw t2, 0(t1)
      sw t2, 4(t1)
      halt zero
    .data
    word: .word 5, 0
  )")));
  std::vector<Core::RetireEvent> events;
  core.SetRetireTrace([&](const Core::RetireEvent& event) { events.push_back(event); });
  MustHalt(core, 0);
  ASSERT_EQ(events.size(), core.stats().instret);
  // Cycles are non-decreasing and pcs follow the executed path.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].cycle, events[i - 1].cycle);
  }
  EXPECT_EQ(events.front().pc, 0x1000u);
  EXPECT_EQ(DecodeInstr(events.back().raw).kind, InstrKind::kHalt);
  // The loop body retires exactly 3 times (bnez at 0x1008).
  int loop_branches = 0;
  for (const auto& event : events) {
    if (event.pc == 0x1008) {
      ++loop_branches;
    }
  }
  EXPECT_EQ(loop_branches, 3);
  // Loads and stores (MEM-retired) appear in order with ALU ops.
  std::vector<InstrKind> kinds;
  for (const auto& event : events) {
    kinds.push_back(DecodeInstr(event.raw).kind);
  }
  const auto lw_it = std::find(kinds.begin(), kinds.end(), InstrKind::kLw);
  const auto sw_it = std::find(kinds.begin(), kinds.end(), InstrKind::kSw);
  ASSERT_NE(lw_it, kinds.end());
  ASSERT_NE(sw_it, kinds.end());
  EXPECT_LT(lw_it - kinds.begin(), sw_it - kinds.begin());
}

TEST(RetireTraceTest, MetalInstructionsAttributed) {
  Core core;
  MustLoadMcodeRaw(core, R"(
      .mentry 1, work
    work:
      addi a0, a0, 1
      addi a0, a0, 1
      mexit
  )");
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      menter 1
      halt a0
  )")));
  uint64_t metal_events = 0;
  uint64_t normal_events = 0;
  core.SetRetireTrace([&](const Core::RetireEvent& event) {
    (event.metal ? metal_events : normal_events) += 1;
  });
  MustHalt(core, 2);
  EXPECT_EQ(metal_events, core.stats().metal_instret);
  EXPECT_EQ(metal_events + normal_events, core.stats().instret);
  EXPECT_GE(metal_events, 2u);  // the two mroutine addis
}

TEST(RetireTraceTest, SquashedInstructionsNeverRetire) {
  // Instructions after a taken branch must not appear in the trace.
  Core core;
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      j over
      li s1, 99          # must never retire
    over:
      halt zero
  )")));
  bool saw_skipped = false;
  core.SetRetireTrace([&](const Core::RetireEvent& event) {
    if (event.pc == 0x1004) {
      saw_skipped = true;
    }
  });
  MustHalt(core, 0);
  EXPECT_FALSE(saw_skipped);
}

std::vector<TraceEvent> EventsOfKind(const std::vector<TraceEvent>& events,
                                     TraceEventKind kind) {
  std::vector<TraceEvent> matching;
  for (const TraceEvent& event : events) {
    if (event.kind == kind) {
      matching.push_back(event);
    }
  }
  return matching;
}

TEST(StructuredTraceTest, MenterMexitChainEmitsPairedEvents) {
  Core core;
  MustLoadMcodeRaw(core, R"(
      .mentry 1, work
    work:
      addi a0, a0, 1
      mexit
  )");
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      li t0, 3
    loop:
      menter 1
      addi t0, t0, -1
      bnez t0, loop
      halt a0
  )")));
  RingBufferSink ring;
  core.SetTraceSink(&ring);
  MustHalt(core, 3);
  core.SetTraceSink(nullptr);

  const std::vector<TraceEvent> events = ring.Events();
  const std::vector<TraceEvent> menters = EventsOfKind(events, TraceEventKind::kMenter);
  const std::vector<TraceEvent> mexits = EventsOfKind(events, TraceEventKind::kMexit);
  ASSERT_EQ(menters.size(), 3u);
  ASSERT_EQ(mexits.size(), 3u);
  for (const TraceEvent& event : menters) {
    EXPECT_EQ(event.arg0, 1u);                     // entry number
    EXPECT_EQ(event.arg1, core.metal().EntryAddress(1));  // handler address
    EXPECT_EQ(event.pc, 0x1004u);                  // the menter site
  }
  for (const TraceEvent& event : mexits) {
    EXPECT_TRUE(event.metal);
    EXPECT_EQ(event.arg0, 0x1008u);  // resume address (after the menter)
  }
  // Enter always precedes its exit in emission order.
  const auto first_menter = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.kind == TraceEventKind::kMenter;
  });
  const auto first_mexit = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.kind == TraceEventKind::kMexit;
  });
  EXPECT_LT(first_menter - events.begin(), first_mexit - events.begin());
}

TEST(StructuredTraceTest, EmptyMroutineFoldsIntoOneChainEvent) {
  // An empty mroutine (menter straight into mexit) is folded by the decode
  // stage into a single zero-bubble op: the enter and exit events carry the
  // same cycle and a kChainFold event records the fold.
  Core core;
  MustLoadMcodeRaw(core, R"(
      .mentry 1, empty
    empty:
      mexit
  )");
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      menter 1
      halt zero
  )")));
  RingBufferSink ring;
  core.SetTraceSink(&ring);
  MustHalt(core, 0);
  core.SetTraceSink(nullptr);

  const std::vector<TraceEvent> events = ring.Events();
  const std::vector<TraceEvent> menters = EventsOfKind(events, TraceEventKind::kMenter);
  const std::vector<TraceEvent> mexits = EventsOfKind(events, TraceEventKind::kMexit);
  const std::vector<TraceEvent> folds = EventsOfKind(events, TraceEventKind::kChainFold);
  ASSERT_EQ(menters.size(), 1u);
  ASSERT_EQ(mexits.size(), 1u);
  ASSERT_EQ(folds.size(), 1u);
  EXPECT_EQ(menters[0].cycle, mexits[0].cycle);  // zero-bubble round trip
  EXPECT_EQ(folds[0].arg0, 1u);                  // enters folded
  EXPECT_EQ(folds[0].arg1, 1u);                  // exits folded
  EXPECT_EQ(core.stats().fast_replacements, 2u);
}

TEST(StructuredTraceTest, SlowTransitionsEmitSameEventsAcrossCycles) {
  CoreConfig config;
  config.fast_transition = false;
  Core core(config);
  MustLoadMcodeRaw(core, R"(
      .mentry 1, empty
    empty:
      mexit
  )");
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      menter 1
      halt zero
  )")));
  RingBufferSink ring;
  core.SetTraceSink(&ring);
  MustHalt(core, 0);
  core.SetTraceSink(nullptr);

  const std::vector<TraceEvent> events = ring.Events();
  const std::vector<TraceEvent> menters = EventsOfKind(events, TraceEventKind::kMenter);
  const std::vector<TraceEvent> mexits = EventsOfKind(events, TraceEventKind::kMexit);
  ASSERT_EQ(menters.size(), 1u);
  ASSERT_EQ(mexits.size(), 1u);
  EXPECT_LT(menters[0].cycle, mexits[0].cycle);  // slow path costs cycles
  EXPECT_TRUE(EventsOfKind(events, TraceEventKind::kChainFold).empty());
}

TEST(StructuredTraceTest, InterceptEmitsEventPerTakenInterception) {
  MetalSystem system;
  system.AddMcode(R"(
      .mentry 1, arm
    arm:
      li t0, 0x80000023      # intercept stores -> slot 0, entry 2
      li t1, 2
      mintset t0, t1
      mexit
      .mentry 2, emulate_store
    emulate_store:
      wmr m10, t0
      wmr m11, t1
      mopr t0, 0             # rs1 value
      mopr t1, 2             # immediate
      add t0, t0, t1
      mopr t1, 1             # rs2 value
      psw t1, 0(t0)
      rmr t0, m10
      rmr t1, m11
      mexit
  )");
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      menter 1
      la t0, slot
      li t1, 7
      sw t1, 0(t0)           # intercepted
      sw t1, 4(t0)           # intercepted
      lw a0, 0(t0)
      halt a0
    .data
    slot: .word 0, 0
  )"));
  RingBufferSink ring;
  system.SetTraceSink(&ring);
  MustHalt(system, 7);
  system.SetTraceSink(nullptr);

  const std::vector<TraceEvent> events = ring.Events();
  const std::vector<TraceEvent> intercepts = EventsOfKind(events, TraceEventKind::kIntercept);
  ASSERT_EQ(intercepts.size(), system.core().stats().intercepts);
  ASSERT_EQ(intercepts.size(), 2u);
  // arg0 carries the raw intercepted instruction word (an sw).
  EXPECT_EQ(DecodeInstr(intercepts[0].arg0).kind, InstrKind::kSw);
  // Trap-style delivery to the handling mroutine follows each interception.
  const std::vector<TraceEvent> traps = EventsOfKind(events, TraceEventKind::kTrap);
  EXPECT_GE(traps.size(), 2u);
}

TEST(StructuredTraceTest, NoSinkMeansNoObservableSideEffects) {
  // Two identical runs, one with a sink attached: architectural results and
  // stats must match exactly (the tracer is observe-only).
  auto run = [](bool attach) {
    Core core;
    EXPECT_OK(core.LoadProgram(MustAssemble(R"(
      _start:
        li t0, 10
      loop:
        addi t0, t0, -1
        bnez t0, loop
        halt t0
    )")));
    RingBufferSink ring;
    if (attach) {
      core.SetTraceSink(&ring);
    }
    MustHalt(core, 0);
    return core.stats().cycles;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace msim
