// Retirement-trace facility: program order, Metal-mode attribution, and
// agreement with the instret counter.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "isa/decode.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

TEST(RetireTraceTest, EventsArriveInProgramOrder) {
  Core core;
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      li t0, 3
    loop:
      addi t0, t0, -1
      bnez t0, loop
      la t1, word
      lw t2, 0(t1)
      sw t2, 4(t1)
      halt zero
    .data
    word: .word 5, 0
  )")));
  std::vector<Core::RetireEvent> events;
  core.SetRetireTrace([&](const Core::RetireEvent& event) { events.push_back(event); });
  MustHalt(core, 0);
  ASSERT_EQ(events.size(), core.stats().instret);
  // Cycles are non-decreasing and pcs follow the executed path.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].cycle, events[i - 1].cycle);
  }
  EXPECT_EQ(events.front().pc, 0x1000u);
  EXPECT_EQ(DecodeInstr(events.back().raw).kind, InstrKind::kHalt);
  // The loop body retires exactly 3 times (bnez at 0x1008).
  int loop_branches = 0;
  for (const auto& event : events) {
    if (event.pc == 0x1008) {
      ++loop_branches;
    }
  }
  EXPECT_EQ(loop_branches, 3);
  // Loads and stores (MEM-retired) appear in order with ALU ops.
  std::vector<InstrKind> kinds;
  for (const auto& event : events) {
    kinds.push_back(DecodeInstr(event.raw).kind);
  }
  const auto lw_it = std::find(kinds.begin(), kinds.end(), InstrKind::kLw);
  const auto sw_it = std::find(kinds.begin(), kinds.end(), InstrKind::kSw);
  ASSERT_NE(lw_it, kinds.end());
  ASSERT_NE(sw_it, kinds.end());
  EXPECT_LT(lw_it - kinds.begin(), sw_it - kinds.begin());
}

TEST(RetireTraceTest, MetalInstructionsAttributed) {
  Core core;
  MustLoadMcodeRaw(core, R"(
      .mentry 1, work
    work:
      addi a0, a0, 1
      addi a0, a0, 1
      mexit
  )");
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      menter 1
      halt a0
  )")));
  uint64_t metal_events = 0;
  uint64_t normal_events = 0;
  core.SetRetireTrace([&](const Core::RetireEvent& event) {
    (event.metal ? metal_events : normal_events) += 1;
  });
  MustHalt(core, 2);
  EXPECT_EQ(metal_events, core.stats().metal_instret);
  EXPECT_EQ(metal_events + normal_events, core.stats().instret);
  EXPECT_GE(metal_events, 2u);  // the two mroutine addis
}

TEST(RetireTraceTest, SquashedInstructionsNeverRetire) {
  // Instructions after a taken branch must not appear in the trace.
  Core core;
  ASSERT_OK(core.LoadProgram(MustAssemble(R"(
    _start:
      j over
      li s1, 99          # must never retire
    over:
      halt zero
  )")));
  bool saw_skipped = false;
  core.SetRetireTrace([&](const Core::RetireEvent& event) {
    if (event.pc == 0x1004) {
      saw_skipped = true;
    }
  });
  MustHalt(core, 0);
  EXPECT_FALSE(saw_skipped);
}

}  // namespace
}  // namespace msim
