// User-level interrupts (paper §3.4).
#include <gtest/gtest.h>

#include "cpu/creg.h"
#include "ext/uli.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

class UliTest : public ::testing::Test {
 protected:
  void Boot(const char* program_source) {
    system_ = std::make_unique<MetalSystem>();
    ASSERT_OK(UliExtension::Install(*system_));
    ASSERT_OK(system_->LoadProgramSource(program_source));
    ASSERT_OK(system_->Boot());
    core().metal().WriteCreg(kCrIenable, 0xFFFFFFFF);
  }
  Core& core() { return system_->core(); }
  MetalSystem& system() { return *system_; }
  std::unique_ptr<MetalSystem> system_;
};

TEST_F(UliTest, NicInterruptDeliveredToUserHandler) {
  // The "DPDK" process registers a user handler for the NIC line, then waits;
  // the handler reads the packet word and the main loop halts with it.
  Boot(R"(
    .equ NIC_POP, 0xF0002008
    .equ INTC_ACK, 0xF0000008
    _start:
      li sp, 0x9000
      li a0, 1               # NIC line
      la a1, rx_handler
      li a2, 1               # privilege 0 allowed (we run at m0 == 0)
      menter 34              # uli_register
      bnez a0, fail
      # wait for data
    wait:
      la t0, mailbox
      lw t1, 0(t0)
      beqz t1, wait
      mv a0, t1
      halt a0
    rx_handler:              # runs in NORMAL mode, no kernel involved
      # like a signal handler: preserve every register we touch (a0 is
      # saved/restored by the dispatcher itself)
      addi sp, sp, -8
      sw t0, 0(sp)
      sw t1, 4(sp)
      la t0, mailbox
      li t1, 0xF0002008
      lw t1, 0(t1)           # pop the packet word
      sw t1, 0(t0)
      li t0, 0xF0000008
      li t1, 2
      sw t1, 0(t0)           # ack line 1
      lw t0, 0(sp)
      lw t1, 4(sp)
      addi sp, sp, 8
      menter 33              # uli_ret: resume the interrupted code
      halt zero
    fail:
      li a0, 0xE1
      halt a0
    .data
    mailbox: .word 0
  )");
  core().nic().SchedulePacket(2000, {0x78, 0x56, 0x34, 0x12});
  MustHalt(system(), 0x12345678);
  EXPECT_EQ(UliExtension::UserDeliveries(core()).value(), 1u);
  EXPECT_EQ(core().stats().interrupts, 1u);
}

TEST_F(UliTest, UnregisteredLineFallsBackToKernel) {
  Boot(R"(
    _start:
      la a0, kirq
      menter 35              # uli_kernel_set
      # enable the timer via MMIO and spin
      li t0, 0xF0001004      # compare
      li t1, 500
      sw t1, 0(t0)
      li t0, 0xF0001008      # ctrl
      li t1, 1
      sw t1, 0(t0)
    spin:
      j spin
    kirq:
      # kernel handler: a0 = cause
      li t0, 0xF0000008
      li t1, 1
      sw t1, 0(t0)           # ack timer
      halt a0
  )");
  const RunResult r = system().Run(100000);
  EXPECT_EQ(r.reason, RunResult::Reason::kHalted) << r.fatal_message;
  EXPECT_EQ(r.exit_code, kInterruptCauseFlag | kIrqTimer);
  EXPECT_EQ(UliExtension::UserDeliveries(core()).value(), 0u);
}

TEST_F(UliTest, DisallowedPrivilegeFallsBackToKernel) {
  // Register a user handler whose allowed-privilege mask excludes level 0.
  Boot(R"(
    _start:
      la a0, kirq
      menter 35
      li a0, 1
      la a1, user_handler
      li a2, 2               # only privilege level 1 may take it; we are 0
      menter 34
    spin:
      j spin
    user_handler:
      li a0, 0xE2
      halt a0
    kirq:
      li t0, 0xF0000008
      li t1, 2
      sw t1, 0(t0)
      li a0, 0xE3
      halt a0
  )");
  core().nic().SchedulePacket(1000, {1});
  MustHalt(system(), 0xE3);
  EXPECT_EQ(UliExtension::UserDeliveries(core()).value(), 0u);
}

TEST_F(UliTest, LineMaskedDuringUserHandlerThenRearmed) {
  // Two packets: the second arrives while the first handler runs; it must be
  // delivered only after uli_ret re-enables the line.
  Boot(R"(
    _start:
      li a0, 1
      la a1, rx_handler
      li a2, 1
      menter 34
    wait:
      la t0, count
      lw t1, 0(t0)
      li t2, 2
      blt t1, t2, wait
      mv a0, t1
      halt a0
    rx_handler:
      la t0, count
      lw t1, 0(t0)
      addi t1, t1, 1
      sw t1, 0(t0)
      # drop the packet and ack
      li t0, 0xF000200C
      sw zero, 0(t0)
      li t0, 0xF0000008
      li t1, 2
      sw t1, 0(t0)
      # burn time so packet 2 arrives while we are still in the handler
      li t3, 400
    burn:
      addi t3, t3, -1
      bnez t3, burn
      menter 33
      halt zero
    .data
    count: .word 0
  )");
  core().nic().SchedulePacket(1500, {1});
  core().nic().SchedulePacket(1700, {2});
  MustHalt(system(), 2);
  EXPECT_EQ(UliExtension::UserDeliveries(core()).value(), 2u);
}

TEST_F(UliTest, RegistrationRequiresKernelPrivilege) {
  Boot(R"(
    _start:
      li a0, 1
      la a1, h
      li a2, 1
      menter 34
      halt a0              # -1 expected (denied)
    h:
      halt zero
  )");
  core().metal().WriteMreg(0, 1);  // user privilege
  MustHalt(system(), 0xFFFFFFFF);
}

}  // namespace
}  // namespace msim
