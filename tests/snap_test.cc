// Tests for the checkpoint/restore subsystem (src/snap/): the byte-stream
// codec, snapshot container validation, and the round-trip property — a run
// snapshotted at an arbitrary cycle and restored into a fresh machine must be
// indistinguishable from the uninterrupted run (docs/determinism.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "metal/system.h"
#include "snap/replay.h"
#include "snap/snapshot.h"
#include "snap/snapstream.h"
#include "support/result.h"
#include "support/rng.h"
#include "tests/sim_test_util.h"

namespace msim {
namespace {

// ---------------------------------------------------------------------------
// SnapWriter / SnapReader.

TEST(SnapStreamTest, RoundTripsAllTypes) {
  SnapWriter w;
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.Bool(true);
  w.Bool(false);
  w.Bytes(std::vector<uint8_t>{1, 2, 3});
  w.Str("hello");

  SnapReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.Bytes(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapStreamTest, TruncationIsStickyAndReportsContext) {
  SnapWriter w;
  w.U32(7);
  SnapReader r(w.bytes());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0u);  // past the end: zero, and ok() flips
  EXPECT_FALSE(r.ok());
  const Status status = r.ToStatus("test payload");
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.message().find("test payload"), std::string::npos);
}

TEST(SnapStreamTest, DigestOnlyModeMatchesBufferedDigest) {
  SnapWriter buffered;
  SnapWriter digest_only(SnapWriter::Mode::kDigestOnly);
  for (SnapWriter* w : {&buffered, &digest_only}) {
    w->U64(0x1122334455667788ull);
    w->Str("digest me");
    w->U8(9);
  }
  EXPECT_EQ(buffered.digest(), digest_only.digest());
  EXPECT_EQ(digest_only.size(), buffered.size());
  EXPECT_TRUE(digest_only.bytes().empty());
}

// ---------------------------------------------------------------------------
// CoreConfig hashing.

TEST(CoreConfigHashTest, EqualConfigsHashEqual) {
  CoreConfig a;
  CoreConfig b;
  EXPECT_EQ(CoreConfigHash(a), CoreConfigHash(b));
}

TEST(CoreConfigHashTest, TimingFieldsChangeTheHash) {
  const CoreConfig base;
  CoreConfig no_fast = base;
  no_fast.fast_transition = false;
  CoreConfig dram = base;
  dram.mroutine_storage = MroutineStorage::kDramCached;
  CoreConfig watchdog = base;
  watchdog.metal_watchdog_cycles = 1000;
  EXPECT_NE(CoreConfigHash(base), CoreConfigHash(no_fast));
  EXPECT_NE(CoreConfigHash(base), CoreConfigHash(dram));
  EXPECT_NE(CoreConfigHash(base), CoreConfigHash(watchdog));
  EXPECT_NE(CoreConfigHash(no_fast), CoreConfigHash(dram));
}

// ---------------------------------------------------------------------------
// Snapshot container validation.

// The bump mroutine keeps a counter in m7, mirrors it to MRAM data, and
// leaves the new value in t0 for the normal-mode caller (GPRs are shared
// across the mode transition).
constexpr const char* kMcode = R"(
    .mentry 1, bump
  bump:
    rmr t0, m7
    addi t0, t0, 1
    wmr m7, t0
    mst t0, 0(zero)
    mexit
)";

// Metal transitions, DRAM stores, a loop and console-free compute: enough
// machinery that a broken field in the snapshot shows up as a different run.
constexpr const char* kProgram = R"(
  _start:
    la t6, scratch
    li s11, 25
  loop:
    menter 1
    sw t0, 0(t6)
    lw t2, 0(t6)
    add s2, s2, t2
    addi s11, s11, -1
    bnez s11, loop
    andi a0, s2, 0x7F
    halt a0
  .data
  scratch:
    .word 0
)";

TEST(SnapshotTest, RejectsBadMagic) {
  MetalSystem system;
  system.AddMcode(kMcode);
  ASSERT_OK(system.LoadProgramSource(kProgram));
  ASSERT_OK(system.Boot());
  std::vector<uint8_t> garbage = {'N', 'O', 'P', 'E', 0, 0, 0, 0, 1, 2, 3};
  const Status status = RestoreSnapshot(system.core(), garbage);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(SnapshotTest, RejectsVersionMismatch) {
  MetalSystem system;
  system.AddMcode(kMcode);
  ASSERT_OK(system.LoadProgramSource(kProgram));
  ASSERT_OK(system.Boot());
  std::vector<uint8_t> image = SaveSnapshot(system.core());
  image[8] = static_cast<uint8_t>(kSnapshotVersion + 1);  // little-endian u32
  const Status status = RestoreSnapshot(system.core(), image);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(SnapshotTest, RejectsConfigMismatch) {
  MetalSystem saver;
  saver.AddMcode(kMcode);
  ASSERT_OK(saver.LoadProgramSource(kProgram));
  ASSERT_OK(saver.Boot());
  const std::vector<uint8_t> image = SaveSnapshot(saver.core());

  CoreConfig other_config;
  other_config.fast_transition = false;
  MetalSystem other(other_config);
  other.AddMcode(kMcode);
  ASSERT_OK(other.LoadProgramSource(kProgram));
  ASSERT_OK(other.Boot());
  const Status status = RestoreSnapshot(other.core(), image);
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("CoreConfig"), std::string::npos);
}

TEST(SnapshotTest, MetaReportsCycleAndVersion) {
  MetalSystem system;
  system.AddMcode(kMcode);
  ASSERT_OK(system.LoadProgramSource(kProgram));
  ASSERT_OK(system.Boot());
  system.core().Run(37);
  const std::vector<uint8_t> image = SaveSnapshot(system.core());
  const auto meta = ReadSnapshotMeta(image);
  ASSERT_OK(meta.status());
  EXPECT_EQ(meta->version, kSnapshotVersion);
  EXPECT_EQ(meta->cycle, 37u);
  EXPECT_EQ(meta->config_hash, CoreConfigHash(system.core().config()));
}

TEST(SnapshotTest, ExtraSectionsRoundTrip) {
  MetalSystem system;
  system.AddMcode(kMcode);
  ASSERT_OK(system.LoadProgramSource(kProgram));
  ASSERT_OK(system.Boot());
  std::vector<SnapshotSection> extras = {{"custom", {9, 8, 7}}};
  const std::vector<uint8_t> image = SaveSnapshot(system.core(), extras);
  std::vector<SnapshotSection> restored_extras;
  ASSERT_OK(RestoreSnapshot(system.core(), image, &restored_extras));
  ASSERT_EQ(restored_extras.size(), 1u);
  EXPECT_EQ(restored_extras[0].name, "custom");
  EXPECT_EQ(restored_extras[0].payload, (std::vector<uint8_t>{9, 8, 7}));
}

// ---------------------------------------------------------------------------
// The round-trip property.

struct Retire {
  uint64_t cycle;
  uint32_t pc;
  uint32_t raw;
  bool operator==(const Retire& other) const {
    return cycle == other.cycle && pc == other.pc && raw == other.raw;
  }
};

void CollectRetires(Core& core, std::vector<Retire>& out) {
  core.SetRetireTrace([&out](const Core::RetireEvent& event) {
    out.push_back({event.cycle, event.pc, event.raw});
  });
}

// Snapshot the reference machine at `snap_cycle`, restore into a fresh
// machine, run both to completion: the restored machine must retire the same
// instruction stream (absolute cycles included) and end in the same state.
void CheckRoundTripAtCycle(const CoreConfig& config, uint64_t snap_cycle) {
  MetalSystem reference(config);
  reference.AddMcode(kMcode);
  ASSERT_OK(reference.LoadProgramSource(kProgram));
  ASSERT_OK(reference.Boot());
  reference.core().Run(snap_cycle);
  ASSERT_FALSE(reference.core().halted()) << "snap cycle beyond program end";
  const std::vector<uint8_t> image = SaveSnapshot(reference.core());

  MetalSystem restored(config);
  restored.AddMcode(kMcode);
  ASSERT_OK(restored.LoadProgramSource(kProgram));
  ASSERT_OK(restored.Boot());
  ASSERT_OK(RestoreSnapshot(restored.core(), image));
  EXPECT_EQ(restored.core().cycle(), snap_cycle);
  EXPECT_EQ(restored.core().StateDigest(true), reference.core().StateDigest(true));

  std::vector<Retire> ref_retires;
  std::vector<Retire> res_retires;
  CollectRetires(reference.core(), ref_retires);
  CollectRetires(restored.core(), res_retires);
  const RunResult ref_result = reference.core().Run(1'000'000);
  const RunResult res_result = restored.core().Run(1'000'000);

  ASSERT_EQ(ref_result.reason, RunResult::Reason::kHalted) << ref_result.fatal_message;
  EXPECT_EQ(res_result.reason, ref_result.reason);
  EXPECT_EQ(res_result.exit_code, ref_result.exit_code);
  EXPECT_EQ(res_result.instret, ref_result.instret);
  EXPECT_EQ(restored.core().cycle(), reference.core().cycle());
  EXPECT_EQ(res_retires, ref_retires);
  EXPECT_EQ(restored.core().StateDigest(true), reference.core().StateDigest(true));
  EXPECT_EQ(restored.core().console().output(), reference.core().console().output());
}

TEST(SnapshotRoundTripTest, ResumesBitIdenticallyAtRandomCycles) {
  // Property test: seeded-random snapshot points across the run, under both
  // the default config and DRAM-resident mroutines.
  Rng rng(0xC0FFEE);
  CoreConfig dram;
  dram.mroutine_storage = MroutineStorage::kDramCached;
  for (int i = 0; i < 6; ++i) {
    const uint64_t snap_cycle = rng.Range(1, 200);
    SCOPED_TRACE("snap cycle " + std::to_string(snap_cycle));
    CheckRoundTripAtCycle(CoreConfig{}, snap_cycle);
    CheckRoundTripAtCycle(dram, snap_cycle);
  }
}

TEST(SnapshotRoundTripTest, SparseDramPagesSurvive) {
  MetalSystem system;
  ASSERT_OK(system.LoadProgramSource(R"(
    _start:
      li t0, 0x00300000
      li t1, 0x5AFE5AFE
      sw t1, 0(t0)
      li t0, 0x00000100
      sw t1, 0(t0)
      halt zero
  )"));
  MustHalt(system, 0);
  const std::vector<uint8_t> image = SaveSnapshot(system.core());

  MetalSystem restored;
  ASSERT_OK(restored.LoadProgramSource("_start:\n  halt zero\n"));
  ASSERT_OK(restored.Boot());
  ASSERT_OK(RestoreSnapshot(restored.core(), image));
  EXPECT_EQ(restored.core().StateDigest(true), system.core().StateDigest(true));
}

// ---------------------------------------------------------------------------
// Replay log.

TEST(ReplayLogTest, SaveRestoreRoundTripsEvents) {
  MetalSystem system;
  ASSERT_OK(system.LoadProgramSource("_start:\n  halt zero\n"));
  ASSERT_OK(system.Boot());
  ReplayLog log;
  log.RecordNicPacket(system, 500, {0xAA, 0xBB});
  log.RecordNicPacket(system, 900, {0x01});

  SnapWriter w;
  log.Save(w);
  ReplayLog loaded;
  SnapReader r(w.bytes());
  ASSERT_OK(loaded.Restore(r));
  ASSERT_EQ(loaded.events().size(), 2u);
  EXPECT_EQ(loaded.events()[0].cycle, 500u);
  EXPECT_EQ(loaded.events()[0].payload, (std::vector<uint8_t>{0xAA, 0xBB}));
  EXPECT_EQ(loaded.events()[1].cycle, 900u);
}

TEST(ReplayLogTest, ReplayReproducesRecordedNicRun) {
  // The recorded run: packets perturb NIC state while the program spins.
  constexpr const char* kSpin = R"(
    _start:
      li s11, 300
    loop:
      addi s11, s11, -1
      bnez s11, loop
      halt zero
  )";
  MetalSystem recorded;
  ASSERT_OK(recorded.LoadProgramSource(kSpin));
  ASSERT_OK(recorded.Boot());
  ReplayLog log;
  log.RecordNicPacket(recorded, 100, {1, 2, 3, 4});
  log.RecordNicPacket(recorded, 400, {5, 6});
  const RunResult want = recorded.Run(10'000);
  ASSERT_EQ(want.reason, RunResult::Reason::kHalted);

  MetalSystem replayed;
  ASSERT_OK(replayed.LoadProgramSource(kSpin));
  const auto got = log.Replay(replayed, 10'000);
  ASSERT_OK(got.status());
  EXPECT_EQ(got->reason, want.reason);
  EXPECT_EQ(got->instret, want.instret);
  EXPECT_EQ(replayed.core().cycle(), recorded.core().cycle());
  EXPECT_EQ(replayed.core().StateDigest(true), recorded.core().StateDigest(true));
}

}  // namespace
}  // namespace msim
