// Custom page tables (paper §3.2): software-walked radix tree + demand zero.
//
// There is no hardware page-table walker in the processor. The mcode walker
// (installed by CustomPageTable::Install) services every TLB miss from an
// x86-style two-level tree. This example adds an OS layer that implements
// DEMAND-ZERO paging on top: the heap is not mapped until first touch; the
// OS fault handler asks the "kernel allocator" (an mroutine invoked via
// menter) for a fresh frame, maps it, and retries.
//
// Build & run:  ./build/examples/custom_page_tables
#include <cstdio>

#include "cpu/creg.h"
#include "ext/cpt.h"
#include "metal/system.h"

using namespace msim;

namespace {

constexpr uint32_t kTableRegion = 0x00400000;
constexpr uint32_t kFramePool = 0x00500000;  // frames handed out on demand
constexpr uint32_t kHeapVaddr = 0x40000000;  // virtual heap, unmapped at boot

// OS mroutines (entries 4 and 5): frame allocator and page mapper. Mapping
// means writing the PTE into the radix tree with physical stores, then
// letting the walker TLB-fill on retry — the OS manages its *own* format.
constexpr const char* kOsMcode = R"(
    .equ D_NEXT_FRAME, 16      # example-private MRAM data slot
    .equ D_ROOT, 20
    .equ D_DEMAND_COUNT, 24

    .mentry 4, os_alloc_frame  # -> a0 = fresh zeroed frame
  os_alloc_frame:
    mld t0, D_NEXT_FRAME(zero)
    mv a0, t0
    # zero the frame
    li t1, 1024
  zero_loop:
    psw zero, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, zero_loop
    mld t0, D_NEXT_FRAME(zero)
    li t1, 4096
    add t0, t0, t1
    mst t0, D_NEXT_FRAME(zero)
    mexit

    .mentry 5, os_map_page     # a0 = vaddr, a1 = frame -> maps RW
  os_map_page:
    mld t0, D_ROOT(zero)
    srli t1, a0, 22
    slli t1, t1, 2
    add t0, t0, t1             # &PDE
    plw t2, 0(t0)
    andi t3, t2, 1
    bnez t3, have_l2
    # allocate a level-2 table from the frame pool
    mld t2, D_NEXT_FRAME(zero)
    mv t4, t2
    li t5, 1024
  zero_l2:
    psw zero, 0(t4)
    addi t4, t4, 4
    addi t5, t5, -1
    bnez t5, zero_l2
    mld t4, D_NEXT_FRAME(zero)
    li t5, 4096
    add t4, t4, t5
    mst t4, D_NEXT_FRAME(zero)
    ori t2, t2, 1              # present
    psw t2, 0(t0)
  have_l2:
    li t3, -4096
    and t2, t2, t3             # level-2 table frame
    srli t1, a0, 12
    andi t1, t1, 0x3FF
    slli t1, t1, 2
    add t2, t2, t1             # &PTE
    li t3, -4096
    and t1, a1, t3
    ori t1, t1, 0x19           # R | W | present (0x8 | 0x10 | 0x1)
    psw t1, 0(t2)
    mld t0, D_DEMAND_COUNT(zero)
    addi t0, t0, 1
    mst t0, D_DEMAND_COUNT(zero)
    mexit
)";

// User program: writes then sums 8 heap pages that do not exist yet.
constexpr const char* kProgram = R"(
    .equ HEAP, 0x40000000
  _start:
    li s0, 8               # pages
    li s1, HEAP
    li s2, 0
  fill:
    sw s2, 0(s1)           # first touch: demand-zero fault -> os_fault
    li t0, 0x10000
    add s1, s1, t0         # stride 64 KiB: eight distinct unmapped pages
    addi s2, s2, 1
    addi s0, s0, -1
    bnez s0, fill
    # sum the pages back
    li s0, 8
    li s1, HEAP
    li a0, 0
  sum:
    lw t1, 0(s1)
    add a0, a0, t1
    li t0, 0x10000
    add s1, s1, t0
    addi s0, s0, -1
    bnez s0, sum
    halt a0                # 0+1+...+7 = 28

  os_fault:                # a0 = faulting vaddr (from the walker)
    # demand-zero: allocate a frame and map it, then retry the access
    mv s6, a0              # remember the vaddr
    mv s7, a1              # faulting pc = retry target
    menter 4               # os_alloc_frame -> a0 = frame
    mv a1, a0
    mv a0, s6
    menter 5               # os_map_page(vaddr, frame)
    jr s7                  # retry the faulting instruction
)";

}  // namespace

int main() {
  MetalSystem system;
  const auto program = Assemble(kProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "assemble: %s\n", program.status().ToString().c_str());
    return 1;
  }
  if (Status status = CustomPageTable::Install(system, program->symbols.at("os_fault"));
      !status.ok()) {
    std::fprintf(stderr, "install: %s\n", status.ToString().c_str());
    return 1;
  }
  system.AddMcode(kOsMcode);
  if (Status status = system.LoadProgram(*program); !status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = system.Boot(); !status.ok()) {
    std::fprintf(stderr, "boot: %s\n", status.ToString().c_str());
    return 1;
  }

  Core& core = system.core();
  // Build the initial address space: identity-map program text/data only.
  CustomPageTable cpt(core, kTableRegion, 0x00100000);
  const auto root = cpt.CreateAddressSpace();
  if (!root.ok()) {
    std::fprintf(stderr, "root: %s\n", root.status().ToString().c_str());
    return 1;
  }
  for (uint32_t page = 0; page < 16; ++page) {
    (void)cpt.Map(*root, page * 4096, page * 4096, kPteR | kPteW | kPteX);
  }
  for (uint32_t page = 0; page < 4; ++page) {  // .data region
    const uint32_t addr = 0x00100000 + page * 4096;
    (void)cpt.Map(*root, addr, addr, kPteR | kPteW);
  }
  (void)cpt.Activate(*root);
  // Boot data for the OS mroutines: frame pool cursor and the tree root.
  (void)core.mram().WriteData32(16, kFramePool);
  (void)core.mram().WriteData32(20, *root);
  (void)core.mram().WriteData32(24, 0);
  core.metal().WriteCreg(kCrPgEnable, 1);

  const RunResult result = system.Run();
  if (result.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "run failed: %s\n", result.fatal_message.c_str());
    return 1;
  }
  std::printf("heap sum = %u (expected 28)\n", result.exit_code);
  std::printf("demand-zero pages mapped by the OS: %u\n",
              core.mram().ReadData32(24).value_or(0));
  std::printf("TLB fills by the mcode walker: %u\n",
              core.mram().ReadData32(CustomPageTable::kDataFillCount).value_or(0));
  std::printf("TLB stats: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(core.mmu().tlb().stats().hits),
              static_cast<unsigned long long>(core.mmu().tlb().stats().misses));
  return 0;
}
