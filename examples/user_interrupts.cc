// User-level interrupts (paper §3.4): a DPDK-style packet receiver without
// polling and without the kernel.
//
// The process registers a handler for the NIC interrupt line. When packets
// arrive, the uli_dispatch mroutine delivers the interrupt STRAIGHT to the
// user handler (no kernel transition); the handler drains the packet into a
// ring buffer and resumes the interrupted computation with `menter uli_ret`.
//
// Build & run:  ./build/examples/user_interrupts
#include <cstdio>
#include <string>

#include "cpu/creg.h"
#include "ext/uli.h"
#include "metal/system.h"

using namespace msim;

namespace {

constexpr const char* kProgram = R"(
    .equ NIC_RX_LEN, 0xF0002004
    .equ NIC_RX_POP, 0xF0002008
    .equ INTC_ACK, 0xF0000008
  _start:
    li sp, 0x9000
    li a0, 1               # NIC line
    la a1, rx_handler
    li a2, 1               # allow privilege level 0
    menter 34              # uli_register
    bnez a0, fail
    # main loop: count work units until 4 packets have been received
  work:
    lw t0, 0(gp)           # gp -> counters (set by host)
    addi t0, t0, 1
    sw t0, 0(gp)
    lw t1, 4(gp)           # packets received so far
    li t2, 4
    blt t1, t2, work
    lw a0, 0(gp)
    halt a0                # exit code: work units completed

  rx_handler:              # runs at user level; a0 = line number
    addi sp, sp, -12
    sw t0, 0(sp)
    sw t1, 4(sp)
    sw t2, 8(sp)
    # drain one packet word into the ring buffer
    li t0, 0xF0002008
    lw t1, 0(t0)           # pop (word 1 of the 4-byte packets we send)
    lw t2, 4(gp)
    slli t0, t2, 2
    add t0, t0, gp
    sw t1, 8(t0)           # ring[packets] (offset 8 from counters)
    addi t2, t2, 1
    sw t2, 4(gp)
    # acknowledge the NIC line
    li t0, 0xF0000008
    li t1, 2
    sw t1, 0(t0)
    lw t0, 0(sp)
    lw t1, 4(sp)
    lw t2, 8(sp)
    addi sp, sp, 12
    menter 33              # uli_ret: resume exactly where we were

  fail:
    li a0, 0xE1
    halt a0

  .data
  counters: .word 0, 0     # [work_units, packets], then the ring buffer
  ring: .word 0, 0, 0, 0
)";

}  // namespace

int main() {
  MetalSystem system;
  if (Status status = UliExtension::Install(system); !status.ok()) {
    std::fprintf(stderr, "install: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = system.LoadProgramSource(kProgram); !status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = system.Boot(); !status.ok()) {
    std::fprintf(stderr, "boot: %s\n", status.ToString().c_str());
    return 1;
  }
  Core& core = system.core();
  core.metal().WriteCreg(kCrIenable, 1u << kIrqNic);
  core.WriteReg(3, *system.Symbol("counters"));  // gp

  // Four packets with irregular arrival times.
  const uint32_t payloads[4] = {0xCAFE0001, 0xCAFE0002, 0xCAFE0003, 0xCAFE0004};
  const uint64_t arrivals[4] = {3000, 9000, 9800, 21000};
  for (int i = 0; i < 4; ++i) {
    std::vector<uint8_t> bytes(4);
    for (int b = 0; b < 4; ++b) {
      bytes[b] = static_cast<uint8_t>(payloads[i] >> (8 * b));
    }
    core.nic().SchedulePacket(arrivals[i], bytes);
  }

  const RunResult result = system.Run(1'000'000);
  if (result.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "run failed: %s\n", result.fatal_message.c_str());
    return 1;
  }

  const uint32_t counters = *system.Symbol("counters");
  std::printf("work units completed while receiving: %u\n", result.exit_code);
  std::printf("packets delivered to the USER handler: %u (kernel was never involved)\n",
              UliExtension::UserDeliveries(core).value());
  std::printf("ring buffer contents:");
  for (int i = 0; i < 4; ++i) {
    std::printf(" 0x%08X", core.bus().dram().Read32(counters + 8 + 4 * i).value_or(0));
  }
  std::printf("\ninterrupts taken: %llu; cycles: %llu\n",
              static_cast<unsigned long long>(core.stats().interrupts),
              static_cast<unsigned long long>(result.cycles));
  return 0;
}
