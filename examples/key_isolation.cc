// In-process isolation (paper §3.1): protecting a signing key inside one
// process without CFI.
//
// The scenario from the paper: "isolating sensitive cryptographic keys in
// OpenSSL from the rest of the application." A signing compartment owns a
// secret key page (page key 2). The rest of the process — including any
// compromised code — cannot read the key: the KEYPERM register denies page
// key 2 outside the compartment, and the only way in is `iso_enter`, whose
// transition code lives in MRAM where the application cannot jump into its
// middle. "Metal enables developers to safely encapsulate the transition
// code without CFI."
//
// Build & run:  ./build/examples/key_isolation
#include <cstdio>

#include "cpu/creg.h"
#include "ext/isolation.h"
#include "metal/system.h"

using namespace msim;

namespace {

constexpr uint32_t kSecretPage = 0x00300000;

constexpr const char* kProgram = R"(
    .equ SECRET, 0x00300000
  _start:
    li sp, 0x8000
    la a0, sign_gate
    menter 14              # iso_setup: register the compartment gate
    bnez a0, fail

    # --- untrusted application code ---
    la s0, message
    lw s1, 0(s0)           # the message word to "sign"
    menter 12              # iso_enter -> sign_gate (key opens inside)
    # s2 now holds the MAC computed inside the compartment
    mv a0, s2
    halt a0

  sign_gate:               # trusted compartment
    # toy MAC: mix the message with the secret key (never visible outside)
    li t0, SECRET
    lw t1, 0(t0)           # the key — only readable here
    xor s2, s1, t1
    slli t2, s2, 13
    xor s2, s2, t2
    menter 13              # iso_exit: key closes, return to caller

  fail:
    li a0, 0xE9
    halt a0

  .data
  message: .word 0x6D7367  # "msg"
)";

}  // namespace

int main() {
  MetalSystem system;
  if (Status status = IsolationExtension::Install(system); !status.ok()) {
    std::fprintf(stderr, "install: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = system.LoadProgramSource(kProgram); !status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = system.Boot(); !status.ok()) {
    std::fprintf(stderr, "boot: %s\n", status.ToString().c_str());
    return 1;
  }
  Core& core = system.core();
  // Page tables: program pages under key 0, the secret page under key 2.
  for (uint32_t page = 0; page < 16; ++page) {
    core.mmu().tlb().Insert(0x1000 + page * 4096,
                            MakePte(0x1000 + page * 4096, kPteR | kPteW | kPteX), 0);
  }
  for (uint32_t page = 0; page < 4; ++page) {
    const uint32_t addr = 0x00100000 + page * 4096;
    core.mmu().tlb().Insert(addr, MakePte(addr, kPteR | kPteW), 0);
  }
  core.mmu().tlb().Insert(kSecretPage,
                          MakePte(kSecretPage, kPteR, IsolationExtension::kSecretKey), 0);
  core.bus().dram().Write32(kSecretPage, 0x5ECE7C0D);  // the signing key
  core.metal().WriteCreg(kCrPgEnable, 1);

  const RunResult result = system.Run();
  if (result.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "run failed: %s\n", result.fatal_message.c_str());
    return 1;
  }
  const uint32_t expected = [] {
    uint32_t mac = 0x6D7367 ^ 0x5ECE7C0D;
    mac ^= mac << 13;
    return mac;
  }();
  std::printf("MAC computed inside the compartment: 0x%08X (expected 0x%08X)\n",
              result.exit_code, expected);

  // Now demonstrate the protection: a fresh run where "compromised" code
  // tries to read the key directly.
  MetalSystem attacked;
  (void)IsolationExtension::Install(attacked);
  (void)attacked.LoadProgramSource(R"(
    _start:
      li t0, 0x00300000
      lw a0, 0(t0)         # read the key directly -> key violation
      halt a0
  )");
  (void)attacked.Boot();
  Core& c2 = attacked.core();
  for (uint32_t page = 0; page < 16; ++page) {
    c2.mmu().tlb().Insert(0x1000 + page * 4096,
                          MakePte(0x1000 + page * 4096, kPteR | kPteW | kPteX), 0);
  }
  c2.mmu().tlb().Insert(kSecretPage,
                        MakePte(kSecretPage, kPteR, IsolationExtension::kSecretKey), 0);
  c2.bus().dram().Write32(kSecretPage, 0x5ECE7C0D);
  c2.metal().WriteCreg(kCrPgEnable, 1);
  const RunResult attack = attacked.Run(100000);
  std::printf("direct key read from application code: %s\n",
              attack.reason == RunResult::Reason::kFatal ? attack.fatal_message.c_str()
                                                         : "UNEXPECTEDLY SUCCEEDED");
  return result.exit_code == expected &&
                 attack.reason == RunResult::Reason::kFatal
             ? 0
             : 1;
}
