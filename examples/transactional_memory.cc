// Transactional memory via instruction interception (paper §3.3).
//
// A bank transfers money between two accounts inside transactions while a
// simulated remote core occasionally commits conflicting updates. No STM
// library calls appear in the transaction body — plain lw/sw are intercepted
// by the tread/twrite mroutines while a transaction is active, exactly as
// the paper describes ("neither compilers nor developers need to replace
// loads and stores with calls into an STM library").
//
// Build & run:  ./build/examples/transactional_memory
#include <cstdio>

#include "ext/stm.h"
#include "metal/system.h"
#include "support/rng.h"

using namespace msim;

namespace {

constexpr uint32_t kClockAddr = 0x00700000;
constexpr uint32_t kVtblAddr = 0x00704000;
constexpr uint32_t kVtblWords = 1024;
constexpr uint32_t kAccountA = 0x00600000;
constexpr uint32_t kAccountB = 0x00600004;

constexpr const char* kProgram = R"(
    .equ ACCOUNT_A, 0x00600000
    .equ ACCOUNT_B, 0x00600004
  _start:
    li s0, 100             # transfers to perform
  transfer:
    la a0, on_abort
    menter 24              # tstart(abort_handler)
    # --- transaction body: ordinary loads and stores ---
    li t5, ACCOUNT_A
    lw t6, 0(t5)
    addi t6, t6, -10
    sw t6, 0(t5)
    li t5, ACCOUNT_B
    lw t6, 0(t5)
    addi t6, t6, 10
    sw t6, 0(t5)
    # ---------------------------------------------------
    menter 27              # tcommit
    addi s0, s0, -1
    bnez s0, transfer
    # verify the invariant: total is unchanged
    li t5, ACCOUNT_A
    lw t0, 0(t5)
    li t5, ACCOUNT_B
    lw t1, 0(t5)
    add a0, t0, t1
    halt a0
  on_abort:
    j transfer             # classic retry loop
)";

}  // namespace

int main() {
  MetalSystem system;
  if (Status status = StmExtension::Install(system, kClockAddr, kVtblAddr, kVtblWords);
      !status.ok()) {
    std::fprintf(stderr, "install: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = system.LoadProgramSource(kProgram); !status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = system.Boot(); !status.ok()) {
    std::fprintf(stderr, "boot: %s\n", status.ToString().c_str());
    return 1;
  }
  Core& core = system.core();
  core.bus().dram().Write32(kAccountA, 5000);
  core.bus().dram().Write32(kAccountB, 5000);

  // Interleave a "remote core" that credits interest to account A at random
  // times — each remote commit invalidates in-flight transactions that read
  // the account, forcing an abort + retry.
  Rng rng(2026);
  int remote_commits = 0;
  while (!core.halted() && core.cycle() < 10'000'000) {
    (void)core.Run(500);
    // Inject only while the core is in normal mode: a real remote core would
    // serialize against tcommit's write-back through the version locks.
    if (!core.halted() && !core.metal_mode() && rng.Chance(1, 6)) {
      const uint32_t balance = core.bus().dram().Read32(kAccountA).value_or(0);
      (void)StmExtension::InjectRemoteCommit(core, kClockAddr, kVtblAddr, kVtblWords, kAccountA,
                                             balance + 1);
      ++remote_commits;
    }
  }
  if (!core.halted()) {
    std::fprintf(stderr, "did not finish\n");
    return 1;
  }

  const uint32_t a = core.bus().dram().Read32(kAccountA).value_or(0);
  const uint32_t b = core.bus().dram().Read32(kAccountB).value_or(0);
  std::printf("final balances: A = %u, B = %u, total = %u\n", a, b, a + b);
  std::printf("expected total: 10000 (initial) + %d (remote interest credits)\n",
              remote_commits);
  std::printf("transactions: %u started, %u committed, %u aborted+retried\n",
              StmExtension::Starts(core).value(), StmExtension::Commits(core).value(),
              StmExtension::Aborts(core).value());
  std::printf("invariant %s\n",
              a + b == 10000u + static_cast<uint32_t>(remote_commits) ? "HELD" : "VIOLATED");
  return 0;
}
