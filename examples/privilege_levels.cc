// User-defined privilege levels (paper §3.1): a miniature OS.
//
// The kernel/user split is built entirely from mroutines (kenter/kexit,
// Figure 2). The "OS" provides three system calls:
//   0  sys_putc(ch)   write a character to the console (an MMIO device the
//                     kernel owns)
//   1  sys_getpid()   return the current process id
//   2  sys_halt(code) shut down
// The user program prints a message through syscalls and exits. Undefined
// syscalls divert to the kernel fault entry.
//
// Build & run:  ./build/examples/privilege_levels
#include <cstdio>

#include "ext/privilege.h"
#include "metal/system.h"

using namespace msim;

namespace {

constexpr const char* kOsAndUser = R"(
    .equ CONSOLE_PUTC, 0xF0003000

  # ---------------- userspace ----------------
  _start:
    li sp, 0x8000
    la s0, message
  print_loop:
    lbu a1, 0(s0)
    beqz a1, printed
    li a0, 0              # sys_putc
    menter 8              # kenter: switch to the kernel
    addi s0, s0, 1
    j print_loop
  printed:
    li a0, 1              # sys_getpid
    menter 8
    mv s1, a0             # pid
    li a0, 2              # sys_halt(pid)
    mv a1, s1
    menter 8
    halt zero             # unreachable: sys_halt stops the machine

  # ---------------- kernel ----------------
  sys_putc:               # a1 = character
    li t0, CONSOLE_PUTC
    sw a1, 0(t0)
    menter 9              # kexit: back to userspace (return address in ra)
  sys_getpid:
    li a0, 42
    menter 9
  sys_halt:
    halt a1
  kfault:
    li a0, 0xEE
    halt a0

  .data
  syscall_table:
    .word sys_putc
    .word sys_getpid
    .word sys_halt
  message:
    .asciz "hello from userspace via kenter/kexit!\n"
)";

}  // namespace

int main() {
  MetalSystem system;
  const auto program = Assemble(kOsAndUser);
  if (!program.ok()) {
    std::fprintf(stderr, "assemble: %s\n", program.status().ToString().c_str());
    return 1;
  }
  if (Status status = PrivilegeExtension::Install(
          system, program->symbols.at("syscall_table"), /*syscall_count=*/3,
          program->symbols.at("kfault"));
      !status.ok()) {
    std::fprintf(stderr, "install: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = system.LoadProgram(*program); !status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }

  const RunResult result = system.Run();
  Core& core = system.core();
  std::printf("console output: %s", core.console().output().c_str());
  if (result.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "run failed: %s\n", result.fatal_message.c_str());
    return 1;
  }
  std::printf("machine halted by sys_halt with pid = %u\n\n", result.exit_code);
  std::printf("syscalls made: %llu menter/mexit pairs in %llu cycles "
              "(%.1f cycles per privilege crossing)\n",
              static_cast<unsigned long long>(core.stats().menters),
              static_cast<unsigned long long>(result.cycles),
              static_cast<double>(result.cycles) / core.stats().menters);
  std::printf("current privilege level (m0): %u (%s)\n", core.metal().ReadMreg(0),
              core.metal().ReadMreg(0) == PrivilegeExtension::kKernelLevel ? "kernel" : "user");
  return 0;
}
