// Quickstart: define a custom instruction with Metal and call it.
//
// This is the paper's core promise in miniature: a *developer* (not the
// processor vendor) extends the instruction set. We add `sataddv` — a
// saturating vector-ish add over four words — as an mroutine, then invoke it
// from an ordinary program with `menter`. Thanks to MRAM placement and
// decode-stage replacement the call costs about as much as the mroutine's
// own instructions (paper §2.2).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "metal/system.h"

using namespace msim;

namespace {

// The new "instruction": saturating add of 4 words at [a0] += [a1], clamping
// each lane to 0xFF. Pointers are physical (paging is off in this demo).
constexpr const char* kMcode = R"(
    .mentry 1, sataddv

  sataddv:
    li t0, 4              # four lanes
  lane:
    plw t1, 0(a0)
    plw t2, 0(a1)
    add t1, t1, t2
    li t3, 0xFF
    ble t1, t3, store     # clamp to 255
    mv t1, t3
  store:
    psw t1, 0(a0)
    addi a0, a0, 4
    addi a1, a1, 4
    addi t0, t0, -1
    bnez t0, lane
    mexit
)";

constexpr const char* kProgram = R"(
  _start:
    la a0, dst
    la a1, src
    menter 1              # the custom instruction
    # return the last lane (clamped to 0xFF)
    la t0, dst
    lw a0, 12(t0)
    halt a0

  .data
  dst: .word 10, 100, 200, 250
  src: .word 1,  10,  100, 100
)";

}  // namespace

int main() {
  MetalSystem system;
  system.AddMcode(kMcode);
  if (Status status = system.LoadProgramSource(kProgram); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  const RunResult result = system.Run();
  if (result.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "run failed: %s\n", result.fatal_message.c_str());
    return 1;
  }

  Core& core = system.core();
  std::printf("sataddv result lanes: ");
  const uint32_t dst = *system.Symbol("dst");
  for (int lane = 0; lane < 4; ++lane) {
    std::printf("%u ", core.bus().dram().Read32(dst + 4 * lane).value_or(0));
  }
  std::printf("\n(lane 3 saturated at 255: exit code %u)\n\n", result.exit_code);

  std::printf("simulation: %llu cycles, %llu instructions, %llu in Metal mode\n",
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.instret),
              static_cast<unsigned long long>(core.stats().metal_instret));
  std::printf("menter/mexit pairs: %llu (decode-stage replacements: %llu)\n",
              static_cast<unsigned long long>(core.stats().menters),
              static_cast<unsigned long long>(core.stats().fast_replacements));
  return 0;
}
