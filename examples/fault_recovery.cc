// Fault recovery: surviving MRAM corruption with a machine-check mroutine.
//
// The robustness layer (docs/robustness.md) models MRAM with per-word parity:
// fault injection corrupts words *behind* the write path, the next fetch/mld
// observes the mismatch, and the pipeline raises a machine check instead of
// consuming the bad word. Machine checks are the one trap deliverable FROM
// Metal mode, and they delegate like any other cause — so a developer can
// install a *recovery mroutine* that repairs the damage and retries.
//
// This demo builds a counter "accelerator" (entry 1) whose state lives in the
// MRAM data segment, then uses the fault engine to flip a bit of that state
// mid-run. The recovery mroutine (entry 2):
//   1. reads MCHECKKIND/MCHECKINFO to see what broke,
//   2. writes MRAMSCRUB, restoring the corrupted word from the shadow copy,
//   3. points m31 at MEPC and mexits — the hardware resumes Metal mode at the
//      faulting instruction (restoring m31 from MCHECKM31), so the aborted
//      accelerator call replays as if the upset never happened.
// The program computes the same final count as an uninjected run.
//
// Build & run:  ./build/examples/fault_recovery
#include <cstdio>

#include "fault/fault.h"
#include "metal/system.h"

using namespace msim;

namespace {

constexpr const char* kMcode = R"(
    .equ D_COUNT, 0           # accumulator in the MRAM data segment
    .equ CR_MEPC, 1
    .equ CR_MCHECK_KIND, 49
    .equ CR_MCHECK_INFO, 50
    .equ CR_MRAM_SCRUB, 52

    .mentry 1, count_add      # the "accelerator": D_COUNT += a0
    .mentry 2, mcheck_recover

  count_add:
    mld t0, D_COUNT(zero)     # parity-checked: corruption machine-checks here
    add t0, t0, a0
    mst t0, D_COUNT(zero)
    mv a0, t0
    mexit

  mcheck_recover:
    rcr t0, CR_MCHECK_KIND    # what broke (2 = mram_data_parity)
    rcr t1, CR_MCHECK_INFO    # where (byte offset of the bad word)
    wcr CR_MRAM_SCRUB, zero   # repair: restore from the shadow copy
    rcr t2, CR_MEPC           # retry: resume Metal mode at the faulting pc
    wmr m31, t2               # (mexit restores m31 from MCHECKM31 on re-entry)
    mexit
)";

constexpr const char* kProgram = R"(
  _start:
    li s0, 10                 # ten accelerator calls of +7 each
    li s1, 0
  loop:
    li a0, 7
    menter 1
    mv s1, a0
    addi s0, s0, -1
    bnez s0, loop
    halt s1                   # expect 70 even with the injected upset
)";

}  // namespace

int main() {
  MetalSystem system;
  system.AddMcode(kMcode);
  system.DelegateException(ExcCause::kMachineCheck, 2);
  if (Status status = system.LoadProgramSource(kProgram); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Flip bit 13 of the accelerator's counter word (MRAM data offset 0) at
  // cycle 120 — mid-run, between two accelerator calls. Same spec string as
  // `msim run --inject mram-data@120:at=0,bit=13`.
  FaultEngine engine(/*seed=*/42);
  if (Status status = engine.AddSpec("mram-data@120:at=0,bit=13"); !status.ok()) {
    std::fprintf(stderr, "bad spec: %s\n", status.ToString().c_str());
    return 1;
  }
  system.core().SetFaultEngine(&engine);

  const RunResult result = system.Run();
  if (result.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "run failed: %s\n", result.fatal_message.c_str());
    return 1;
  }

  const CoreStats& stats = system.core().stats();
  const MramStats& mram = system.core().mram().stats();
  std::printf("final count: %u (expected 70)\n", result.exit_code);
  std::printf("faults injected: %llu, parity errors observed: %llu\n",
              static_cast<unsigned long long>(engine.injections()),
              static_cast<unsigned long long>(mram.parity_errors));
  std::printf("machine checks delivered: %llu, words scrubbed: %llu\n",
              static_cast<unsigned long long>(stats.machine_checks),
              static_cast<unsigned long long>(mram.words_scrubbed));
  return result.exit_code == 70 ? 0 : 1;
}
