// §3.4 "User Level Interrupt": delivery latency and polling cost.
//
// The paper's motivation: DPDK/SPDK poll devices from user mode, which
// "consumes all cores used by the application"; with user-level interrupts
// the process is notified only when data is available. We measure:
//
//   Experiment 1 — delivery latency: cycles from packet arrival at the NIC
//   to the first instruction of the receiving user handler, for (a) Metal
//   user-level interrupts (the uli_dispatch mroutine mexits straight into
//   the user handler) and (b) a conventional kernel-mediated path (the
//   kernel interrupt handler saves context and "delivers a signal" before
//   the user handler runs).
//
//   Experiment 2 — CPU occupancy: useful work completed while receiving
//   packets, polling vs. interrupt-driven, across packet inter-arrival
//   times.
#include <cstdio>

#include "bench/bench_util.h"
#include "cpu/creg.h"
#include "ext/uli.h"
#include "support/strings.h"

using namespace msim;

namespace {

// rdcycle helper mroutine for timestamps taken from normal mode.
constexpr const char* kRdcycleMcode = R"(
    .mentry 7, rdcycle
  rdcycle:
    rcr a0, 9
    mexit
)";

constexpr uint64_t kArrival = 5000;

// Returns delivery latency in cycles: handler timestamp - arrival cycle.
uint64_t MeasureDelivery(bool user_level) {
  MetalSystem system;
  DieIfError(UliExtension::Install(system), "install");
  system.AddMcode(kRdcycleMcode);
  // The kernel-mediated variant burns a realistic context-save/dispatch cost
  // (~150 instructions) before handing control to the user handler.
  const char* source = user_level ? R"(
    _start:
      li a0, 1
      la a1, rx_handler
      li a2, 1
      menter 34            # uli_register: direct user delivery
    wait:
      j wait
    rx_handler:
      menter 7             # rdcycle -> a0
      halt a0
  )"
                                  : R"(
    _start:
      la a0, kirq
      menter 35            # kernel fallback only
    wait:
      j wait
    kirq:
      # conventional kernel path: save "trap frame", look up the process,
      # post a signal, switch back to user mode
      li t0, 150
    dispatch:
      addi t0, t0, -1
      bnez t0, dispatch
      li t0, 0xF0000008
      li t1, 2
      sw t1, 0(t0)         # ack NIC
      j rx_handler
    rx_handler:
      menter 7
      halt a0
  )";
  DieIfError(system.LoadProgramSource(source), "load");
  DieIfError(system.Boot(), "boot");
  Core& core = system.core();
  core.metal().WriteCreg(kCrIenable, 0xFFFFFFFF);
  core.nic().SchedulePacket(kArrival, {1, 2, 3, 4});
  const RunResult result = system.Run(1'000'000);
  if (result.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "delivery run failed: %s\n", result.fatal_message.c_str());
    std::exit(1);
  }
  return result.exit_code - kArrival;
}

struct OccupancyResult {
  uint64_t work_units = 0;
  uint64_t packets = 0;
  // Interrupt service latency (delivery -> handler return), interrupt-driven
  // variant only; empty for polling runs.
  Histogram irq_latency;
};

// Runs for a fixed budget with packets arriving every `interval` cycles.
// Returns useful-work units completed and packets processed.
OccupancyResult MeasureOccupancy(bool polling, uint64_t interval) {
  MetalSystem system;
  DieIfError(UliExtension::Install(system), "install");
  const char* source = polling ? R"(
    .equ NIC_COUNT, 0xF0002000
    .equ NIC_DROP, 0xF000200C
    _start:
      la s0, counters
    loop:
      # poll the NIC (DPDK-style)
      li t0, 0xF0002000
      lw t1, 0(t0)
      beqz t1, work
      li t0, 0xF000200C
      sw zero, 0(t0)       # consume the packet
      lw t1, 4(s0)
      addi t1, t1, 1
      sw t1, 4(s0)
    work:
      # one unit of useful work
      lw t1, 0(s0)
      addi t1, t1, 1
      sw t1, 0(s0)
      j loop
    .data
    counters: .word 0, 0
  )"
                               : R"(
    _start:
      la s0, counters
      li a0, 1
      la a1, rx_handler
      li a2, 1
      menter 34
    loop:
      # one unit of useful work; packets arrive via interrupts
      lw t1, 0(s0)
      addi t1, t1, 1
      sw t1, 0(s0)
      j loop
    rx_handler:
      addi sp, sp, -8
      sw t0, 0(sp)
      sw t1, 4(sp)
      li t0, 0xF000200C
      sw zero, 0(t0)       # consume
      lw t1, 4(s0)
      addi t1, t1, 1
      sw t1, 4(s0)
      li t0, 0xF0000008
      li t1, 2
      sw t1, 0(t0)
      lw t0, 0(sp)
      lw t1, 4(sp)
      addi sp, sp, 8
      menter 33
    .data
    counters: .word 0, 0
  )";
  DieIfError(system.LoadProgramSource(source), "load");
  DieIfError(system.Boot(), "boot");
  Core& core = system.core();
  core.WriteReg(2, 0x9000);  // sp
  if (!polling) {
    core.metal().WriteCreg(kCrIenable, 0xFFFFFFFF);
  }
  SpanSink spans(/*retain=*/16);
  system.SetTraceSink(&spans);
  constexpr uint64_t kBudget = 200'000;
  for (uint64_t at = 1000; at < kBudget; at += interval) {
    core.nic().SchedulePacket(at, {0xAB});
  }
  (void)system.Run(kBudget);
  spans.Finalize(core.cycle());
  const uint32_t counters = *system.Symbol("counters");
  OccupancyResult result;
  result.work_units = core.bus().dram().Read32(counters).value_or(0);
  result.packets = core.bus().dram().Read32(counters + 4).value_or(0);
  result.irq_latency = spans.interrupt_latency();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("User-level interrupts: delivery latency and CPU occupancy",
              "paper §3.4 (kernel-bypass IO without polling)");
  BenchReport report("uli", "paper §3.4");

  std::printf("\nExperiment 1: NIC interrupt -> user handler latency (cycles)\n");
  const uint64_t uli = MeasureDelivery(/*user_level=*/true);
  const uint64_t kernel = MeasureDelivery(/*user_level=*/false);
  std::printf("%-46s %8llu\n", "Metal user-level interrupt (uli_dispatch)",
              static_cast<unsigned long long>(uli));
  std::printf("%-46s %8llu\n", "kernel-mediated delivery (trap + dispatch)",
              static_cast<unsigned long long>(kernel));
  std::printf("%-46s %8.1fx\n", "speedup", static_cast<double>(kernel) / uli);
  report.AddRow("delivery")
      .Field("uli_cycles", uli)
      .Field("kernel_cycles", kernel)
      .Field("speedup", static_cast<double>(kernel) / uli);

  std::printf("\nExperiment 2: useful work while receiving (200k-cycle budget)\n");
  std::printf("%12s %16s %16s %12s %12s\n", "pkt interval", "poll work", "intr work",
              "poll pkts", "intr pkts");
  Histogram service;  // interrupt service latency pooled across intervals
  for (const uint64_t interval : {500u, 1000u, 2000u, 5000u, 20000u}) {
    const OccupancyResult poll = MeasureOccupancy(/*polling=*/true, interval);
    const OccupancyResult intr = MeasureOccupancy(/*polling=*/false, interval);
    std::printf("%12llu %16llu %16llu %12llu %12llu\n",
                static_cast<unsigned long long>(interval),
                static_cast<unsigned long long>(poll.work_units),
                static_cast<unsigned long long>(intr.work_units),
                static_cast<unsigned long long>(poll.packets),
                static_cast<unsigned long long>(intr.packets));
    report.AddRow("occupancy_" + std::to_string(interval))
        .Field("poll_work", poll.work_units)
        .Field("intr_work", intr.work_units)
        .Field("poll_pkts", poll.packets)
        .Field("intr_pkts", intr.packets);
    service.Merge(intr.irq_latency);
  }
  std::printf("\nInterrupt service latency, spans (delivery -> handler return)\n");
  PrintLatencyLine("uli_dispatch service", service);
  report.AddRow("irq_service_latency").LatencyFields(service);
  std::printf(
      "\nPolling burns cycles probing the (mostly empty) NIC on every loop\n"
      "iteration; interrupt-driven receive does useful work until a packet\n"
      "actually arrives — the paper's DPDK/SPDK argument. At very high packet\n"
      "rates the gap narrows, which is why DPDK polls in the first place.\n");
  return report.WriteIfRequested(argc, argv) ? 0 : 1;
}
