// §2.2 "Fast Metal Mode Transition": invocation overhead of an mroutine.
//
// The paper's claims:
//   * decode-stage replacement of menter/mexit makes a round trip cost
//     "virtually zero" cycles;
//   * an Alpha PALcode no-op call costs ~18 cycles (handler fetched from
//     main memory), making low-latency instruction encapsulation
//     impractical without MRAM.
//
// We measure the per-invocation overhead of an mroutine whose body is N
// no-ops, for four configurations:
//   1. Metal (MRAM + decode-stage replacement)        -- the paper's design
//   2. Metal without fast transitions (ablation)      -- MRAM, jump-like
//   3. trap-style handler in cached DRAM              -- conventional traps
//   4. PALcode-style handler in uncached main memory  -- the Alpha datum
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "support/strings.h"

using namespace msim;

namespace {

constexpr int kIterations = 2000;

// Per-invocation overhead of `menter 1` whose mroutine body is `body_nops`
// no-ops, under `config`.
double MeasureOverhead(const CoreConfig& config, int body_nops) {
  std::string mcode = "  .mentry 1, handler\nhandler:\n";
  for (int i = 0; i < body_nops; ++i) {
    mcode += "  nop\n";
  }
  mcode += "  mexit\n";

  const std::string with_call = StrFormat(R"(
    _start:
      li t0, %d
    loop:
      menter 1
      addi t0, t0, -1
      bnez t0, loop
      halt zero
  )",
                                          kIterations);
  const std::string without_call = StrFormat(R"(
    _start:
      li t0, %d
    loop:
      addi t0, t0, -1
      bnez t0, loop
      halt zero
  )",
                                             kIterations);

  uint64_t cycles[2];
  for (int variant = 0; variant < 2; ++variant) {
    MetalSystem system(config);
    system.AddMcode(mcode);
    DieIfError(system.LoadProgramSource(variant == 0 ? with_call : without_call), "load");
    cycles[variant] = RunOrDie(system).cycles;
  }
  return static_cast<double>(cycles[0] - cycles[1]) / kIterations;
}

// Span-measured mroutine residency (menter delivery -> mexit resume) for a
// `body_nops`-long handler: the distribution behind the mean overhead above.
Histogram MeasureResidency(const CoreConfig& config, int body_nops) {
  std::string mcode = "  .mentry 1, handler\nhandler:\n";
  for (int i = 0; i < body_nops; ++i) {
    mcode += "  nop\n";
  }
  mcode += "  mexit\n";
  const std::string source = StrFormat(R"(
    _start:
      li t0, %d
    loop:
      menter 1
      addi t0, t0, -1
      bnez t0, loop
      halt zero
  )",
                                       kIterations);
  MetalSystem system(config);
  system.AddMcode(mcode);
  DieIfError(system.LoadProgramSource(source), "load");
  SpanSink spans(/*retain=*/16);
  system.SetTraceSink(&spans);
  RunOrDie(system);
  spans.Finalize(system.core().cycle());
  return spans.menter_latency();
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Metal mode transition overhead (cycles per invocation)",
              "paper §2.2 (fast transitions; PALcode ~18-cycle no-op call, §5)");
  BenchReport report("transition", "paper §2.2 / §5");

  CoreConfig metal_fast;
  CoreConfig metal_slow;
  metal_slow.fast_transition = false;
  CoreConfig trap;
  trap.mroutine_storage = MroutineStorage::kDramCached;
  CoreConfig palcode;
  palcode.mroutine_storage = MroutineStorage::kDramUncached;

  struct Config {
    const char* name;
    const CoreConfig* config;
  };
  const Config configs[] = {
      {"Metal (MRAM, decode replacement)", &metal_fast},
      {"Metal w/o fast transition (ablation)", &metal_slow},
      {"trap handler, cached DRAM", &trap},
      {"PALcode-style, uncached DRAM", &palcode},
  };

  std::printf("\n%-40s", "handler body (instructions):");
  const int kBodies[] = {0, 1, 2, 4, 8, 16, 32, 64};
  for (const int body : kBodies) {
    std::printf("%8d", body);
  }
  std::printf("\n");
  for (const Config& config : configs) {
    std::printf("%-40s", config.name);
    report.AddRow(config.name);
    for (const int body : kBodies) {
      const double overhead = MeasureOverhead(*config.config, body);
      std::printf("%8.2f", overhead);
      report.Field(StrFormat("overhead_body_%d", body), overhead);
    }
    std::printf("\n");
  }

  std::printf("\nMroutine residency, spans (body=16, delivery -> resume)\n");
  for (const Config& config : configs) {
    const Histogram residency = MeasureResidency(*config.config, 16);
    PrintLatencyLine(config.name, residency);
    report.AddRow(StrFormat("residency_body_16: %s", config.name))
        .LatencyFields(residency);
  }

  std::printf(
      "\nInterpretation: the Metal row at body=0 is the paper's \"virtually zero\n"
      "overhead\" no-op round trip; the PALcode row at body=0 corresponds to the\n"
      "~18-cycle Alpha no-op PAL call the paper cites (§5). Longer bodies show\n"
      "that MRAM-resident code executes at pipeline speed while PALcode-style\n"
      "handlers pay main-memory latency on every fetch.\n");
  return report.WriteIfRequested(argc, argv) ? 0 : 1;
}
