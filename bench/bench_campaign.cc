// Differential fault-injection campaign: parity + scrub-and-retry recovery
// vs. an unprotected machine (docs/robustness.md "Fault campaigns").
//
// Runs the SAME seeded campaign — identical guest, fault plan and trial
// budget — against two configs that differ only in MRAM parity checking:
//
//   protected     parity on, machine checks delegated to a scrub-and-retry
//                 recovery mroutine (the paper's §2.3 machine-check story);
//   unprotected   --no-parity: faults land silently.
//
// The headline row pair: every trial the protected machine reports as
// detected-recovered shows up as silent data corruption (SDC) or a crash on
// the unprotected one. Detection latency percentiles come from the campaign's
// per-target histograms; everything is simulated cycles, so the output is
// byte-stable across runs and machines.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "campaign/campaign.h"
#include "metal/system.h"
#include "support/strings.h"

using namespace msim;

namespace {

// The counter accelerator + transparent scrub-and-retry recovery mroutine
// (same machine as tests/data/campaign_mcode.s; see the comments there).
constexpr const char* kMcode = R"(
    .equ D_COUNT, 0
    .equ CR_MEPC, 1
    .equ CR_MRAM_SCRUB, 52

    .mentry 1, count_add
    .mentry 2, mcheck_recover

  count_add:
    mld t0, D_COUNT(zero)
    add t0, t0, a0
    mst t0, D_COUNT(zero)
    mv a0, t0
    mexit

  mcheck_recover:
    wcr CR_MRAM_SCRUB, zero
    wmr m30, t0
    rcr t0, CR_MEPC
    wmr m31, t0
    rmr t0, m30
    mexit
)";

// Twelve accelerator calls, one console byte per iteration, data-dependent
// halt code — corruption of the counter is architecturally visible.
constexpr const char* kGuest = R"(
  _start:
    li s0, 12
    li s1, 0
    li s2, 0xF0003000
  loop:
    li a0, 5
    menter 1
    mv s1, a0
    andi t0, s1, 63
    addi t0, t0, 32
    sw t0, 0(s2)
    addi s0, s0, -1
    bnez s0, loop
    halt s1
)";

CampaignReport RunOne(bool parity) {
  CoreConfig config;
  config.mram_parity = parity;

  CampaignOptions options;
  options.targets = {FaultTarget::kMramData, FaultTarget::kMramCode};
  options.trials = 600;
  options.seed = 1;
  // Focus the location universe on live state: D_COUNT is MRAM data word 0
  // and the mcode body is the first handful of code words. Uniform sampling
  // over the full 2048-word segments would mostly measure dead space.
  options.max_location = 8;

  CampaignEngine::SystemSetup setup = [](MetalSystem& system) -> Status {
    system.AddMcode(kMcode);
    system.DelegateException(ExcCause::kMachineCheck, 2);
    return system.LoadProgramSource(kGuest);
  };
  CampaignEngine engine(config, std::move(setup), std::move(options));
  return UnwrapOrDie(RunCampaign(engine), parity ? "protected campaign"
                                                 : "unprotected campaign");
}

uint64_t Count(const CampaignReport& report, TrialOutcome outcome) {
  return report.counts[static_cast<size_t>(outcome)];
}

void AddRows(BenchReport& json, const char* label, const CampaignReport& report) {
  json.AddRow(label)
      .Field("trials", static_cast<uint64_t>(report.options.trials))
      .Field("masked", Count(report, TrialOutcome::kMasked))
      .Field("detected_recovered", Count(report, TrialOutcome::kDetectedRecovered))
      .Field("detected_fatal", Count(report, TrialOutcome::kDetectedFatal))
      .Field("sdc", Count(report, TrialOutcome::kSdc))
      .Field("hang", Count(report, TrialOutcome::kHang))
      .Field("crash", Count(report, TrialOutcome::kCrash));
  for (const TargetSummary& target : report.per_target) {
    json.AddRow(std::string(label) + "/" + FaultTargetName(target.target))
        .Field("trials", target.trials)
        .Field("masked", target.counts[static_cast<size_t>(TrialOutcome::kMasked)])
        .Field("detected_recovered",
               target.counts[static_cast<size_t>(TrialOutcome::kDetectedRecovered)])
        .Field("detected_fatal",
               target.counts[static_cast<size_t>(TrialOutcome::kDetectedFatal)])
        .Field("sdc", target.counts[static_cast<size_t>(TrialOutcome::kSdc)])
        .Field("hang", target.counts[static_cast<size_t>(TrialOutcome::kHang)])
        .Field("crash", target.counts[static_cast<size_t>(TrialOutcome::kCrash)])
        .LatencyFields(target.detect_latency);
  }
}

void PrintRow(const char* label, const CampaignReport& report) {
  std::printf("%-14s %8llu %8llu %12llu %10llu %8llu %8llu %8llu\n", label,
              (unsigned long long)report.options.trials,
              (unsigned long long)Count(report, TrialOutcome::kMasked),
              (unsigned long long)Count(report, TrialOutcome::kDetectedRecovered),
              (unsigned long long)Count(report, TrialOutcome::kDetectedFatal),
              (unsigned long long)Count(report, TrialOutcome::kSdc),
              (unsigned long long)Count(report, TrialOutcome::kHang),
              (unsigned long long)Count(report, TrialOutcome::kCrash));
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Fault campaign: parity + scrub-and-retry vs. unprotected MRAM",
              "docs/robustness.md \"Fault campaigns\" (supports paper §2.3)");

  const CampaignReport protected_run = RunOne(/*parity=*/true);
  const CampaignReport unprotected_run = RunOne(/*parity=*/false);

  std::printf("\n%-14s %8s %8s %12s %10s %8s %8s %8s\n", "config", "trials",
              "masked", "recovered", "fatal", "sdc", "hang", "crash");
  PrintRow("protected", protected_run);
  PrintRow("unprotected", unprotected_run);
  for (const TargetSummary& target : protected_run.per_target) {
    PrintLatencyLine(
        StrFormat("protected detect latency (%s)", FaultTargetName(target.target)).c_str(),
        target.detect_latency);
  }
  std::printf("\nSame seeded fault plan both rows: parity converts silent corruption\n"
              "into detected machine checks the recovery mroutine repairs in place.\n");

  BenchReport json("bench_campaign", "docs/robustness.md fault campaigns");
  AddRows(json, "protected", protected_run);
  AddRows(json, "unprotected", unprotected_run);
  if (!json.WriteIfRequested(argc, argv)) {
    return 1;
  }

  // The headline claim is checkable, so check it: the protected machine must
  // finish the campaign with zero SDCs and actually exercise recovery, and
  // removing parity must surface silent corruption.
  if (Count(protected_run, TrialOutcome::kSdc) != 0 ||
      Count(protected_run, TrialOutcome::kDetectedRecovered) == 0 ||
      Count(unprotected_run, TrialOutcome::kSdc) == 0) {
    std::fprintf(stderr, "headline claim violated\n");
    return 1;
  }
  return 0;
}
