// Instruction interception overhead (supports §2.3 / §3.3).
//
// Measures the per-instruction cost of intercepting loads with an mroutine
// that emulates them (the mechanism underneath the STM's tread/twrite), and
// the zero-cost property when interception is configured but does not match.
#include <cstdio>

#include "bench/bench_util.h"
#include "support/strings.h"

using namespace msim;

namespace {

constexpr int kIterations = 2000;

// Minimal load-emulating intercept handler (entry 2), enabled by entry 1.
constexpr const char* kMcode = R"(
    .mentry 1, ctl
  ctl:
    beqz a0, ctl_off
    li t0, 0x80000003      # intercept LOAD opcode -> slot 0, entry 2
    li t1, 2
    mintset t0, t1
    mexit
  ctl_off:
    li t0, 3
    li t1, 2
    mintset t0, t1
    mexit

    .mentry 2, emulate_load
  emulate_load:
    wmr m10, t0
    wmr m11, t1
    mopr t0, 0             # rs1 value
    mopr t1, 2             # immediate
    add t0, t0, t1
    plw t0, 0(t0)
    mopw t0
    rmr t0, m10
    rmr t1, m11
    mexit
)";

// Loop body: one lw + loop control. Returns cycles per iteration.
double MeasureLoop(bool intercept_loads, bool intercept_stores_only) {
  MetalSystem system;
  system.AddMcode(kMcode);
  std::string prologue;
  if (intercept_loads) {
    prologue = "  li a0, 1\n  menter 1\n";
  } else if (intercept_stores_only) {
    // Matching is configured but misses every load: measures matcher cost.
    prologue = R"(
      li a0, 0
      menter 3
    )";
  }
  const std::string source = StrFormat(R"(
    _start:
      %s
      la t2, slot
      li s0, %d
    loop:
      lw t3, 0(t2)
      addi s0, s0, -1
      bnez s0, loop
      halt zero
    .data
    slot: .word 7
  )",
                                       prologue.c_str(), kIterations);
  // Entry 3: enable a store-only intercept so matchers are active but never
  // hit the loop's loads.
  system.AddMcode(R"(
      .mentry 3, stores_only
    stores_only:
      li t0, 0x80000023
      li t1, 2
      mintset t0, t1
      mexit
  )");
  DieIfError(system.LoadProgramSource(source), "load");
  const RunResult result = RunOrDie(system);
  return static_cast<double>(result.cycles) / kIterations;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Instruction interception overhead",
              "paper §2.3 (Instruction Interception) / §3.3 (STM substrate)");
  BenchReport report("intercept", "paper §2.3 / §3.3");

  const double plain = MeasureLoop(false, false);
  const double matcher_only = MeasureLoop(false, true);
  const double intercepted = MeasureLoop(true, false);

  std::printf("\n%-52s %10s\n", "loop with one lw per iteration", "cyc/iter");
  std::printf("%-52s %10.2f\n", "interception disabled", plain);
  std::printf("%-52s %10.2f\n", "matchers armed, no match (store-only filter)",
              matcher_only);
  std::printf("%-52s %10.2f\n", "loads intercepted + emulated by mroutine", intercepted);
  std::printf("%-52s %10.2f\n", "per-intercept overhead (cycles)", intercepted - plain);
  report.AddRow("interception disabled").Field("cycles_per_iter", plain);
  report.AddRow("matchers armed, no match").Field("cycles_per_iter", matcher_only);
  report.AddRow("loads intercepted").Field("cycles_per_iter", intercepted);
  report.AddRow("per-intercept overhead").Field("cycles", intercepted - plain);

  std::printf(
      "\nArmed-but-missing matchers are free (combinational decode-stage\n"
      "compare); a taken intercept costs a pipeline redirect plus the handler\n"
      "body — cheap enough to toggle per-transaction, as §3.3 requires.\n");
  return report.WriteIfRequested(argc, argv) ? 0 : 1;
}
