// Fleet supervision overhead (docs/robustness.md "Fleet supervision").
//
// Three measurements against a real msim worker binary:
//   throughput    jobs/sec for a batch of short jobs across a worker pool —
//                 the supervisor's per-job cost (fork/exec, polling, report);
//   cold          one uninterrupted checkpointing job, the baseline;
//   crash-resume  the same job SIGKILLed by chaos injection after its first
//                 checkpoint, restarted from the newest checkpoint — the cost
//                 of a mid-run crash under checkpoint-restart retry.
//
// Guest-cycle fields are deterministic; wall_ms fields are host timing (this
// bench measures the supervisor itself, which only exists in wall time).
//
// usage: bench_fleet [--msim PATH] [--jobs N] [--workers N] [--json FILE]
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fleet/manifest.h"
#include "fleet/scheduler.h"
#include "support/exit_codes.h"

using namespace msim;

namespace {

constexpr const char* kShortProgram = R"(
_start:
  li t0, 200
loop:
  addi t0, t0, -1
  bnez t0, loop
  halt t0
)";

// ~1.8M cycles: long enough that checkpoints and a mid-run crash matter.
constexpr const char* kLongProgram = R"(
_start:
  li t0, 600000
loop:
  addi t0, t0, -1
  bnez t0, loop
  halt t0
)";

uint64_t NowMs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

std::string WriteProgram(const std::string& dir, const char* name, const char* text) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

struct FleetRun {
  uint64_t wall_ms = 0;
  std::vector<JobRecord> records;
};

FleetRun RunFleet(std::vector<JobSpec> jobs, FleetOptions options) {
  FleetSupervisor fleet(std::move(jobs), std::move(options));
  const uint64_t start = NowMs();
  DieIfError(fleet.Run(), "fleet run");
  FleetRun run;
  run.wall_ms = NowMs() - start;
  run.records = fleet.records();
  for (const JobRecord& record : run.records) {
    if (record.outcome != JobOutcome::kOk && record.outcome != JobOutcome::kRetriedOk &&
        record.outcome != JobOutcome::kEvictedOk) {
      std::fprintf(stderr, "job %s ended %s\n", record.name.c_str(),
                   JobOutcomeName(record.outcome));
      std::exit(1);
    }
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string msim_path;
  uint64_t jobs = 16;
  uint64_t workers = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--msim") {
      msim_path = argv[i + 1];
    } else if (arg == "--jobs") {
      jobs = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (arg == "--workers") {
      workers = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  if (msim_path.empty()) {
    // Default: the msim binary in the sibling tools/ build directory.
    const std::string self(argv[0]);
    const size_t slash = self.rfind('/');
    msim_path = (slash == std::string::npos ? std::string(".") : self.substr(0, slash)) +
                "/../tools/msim";
  }
  if (::access(msim_path.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "no msim binary at '%s' (pass --msim PATH)\n", msim_path.c_str());
    return 1;
  }

  char tmpl[] = "/tmp/bench_fleet_XXXXXX";
  const std::string dir = ::mkdtemp(tmpl);
  const std::string short_prog = WriteProgram(dir, "short.s", kShortProgram);
  const std::string long_prog = WriteProgram(dir, "long.s", kLongProgram);

  PrintHeader("Fleet supervision overhead (msimd)", "robustness addendum; not a paper table");
  BenchReport report("fleet", "docs/robustness.md fleet supervision");

  FleetOptions base;
  base.msim_path = msim_path;
  base.retries = 2;
  base.deadline_ms = 120000;
  base.backoff.base_ms = 1;
  base.backoff.max_ms = 8;
  base.poll_ms = 2;
  base.verbose = false;

  // Throughput: N short jobs across the pool.
  {
    std::vector<JobSpec> specs;
    for (uint64_t i = 0; i < jobs; ++i) {
      JobSpec spec;
      spec.name = "short" + std::to_string(i);
      spec.program = short_prog;
      spec.max_cycles = 1000000;
      specs.push_back(spec);
    }
    FleetOptions options = base;
    options.out_dir = dir + "/throughput";
    options.workers = workers;
    const FleetRun run = RunFleet(std::move(specs), options);
    const double jobs_per_sec =
        run.wall_ms != 0 ? 1000.0 * (double)jobs / (double)run.wall_ms : 0.0;
    std::printf("throughput: %llu jobs / %u workers: %llu ms (%.1f jobs/sec)\n",
                (unsigned long long)jobs, (unsigned)workers, (unsigned long long)run.wall_ms,
                jobs_per_sec);
    report.AddRow("throughput")
        .Field("jobs", jobs)
        .Field("workers", workers)
        .Field("wall_ms", run.wall_ms)
        .Field("jobs_per_sec", jobs_per_sec);
  }

  // Cold baseline: one long checkpointing job, no faults.
  const auto long_job = [&](const char* name) {
    JobSpec spec;
    spec.name = name;
    spec.program = long_prog;
    spec.max_cycles = 50000000;
    spec.checkpoint_every = 100000;
    return spec;
  };
  uint64_t cold_ms = 0;
  uint64_t cold_cycles = 0;
  {
    FleetOptions options = base;
    options.out_dir = dir + "/cold";
    options.workers = 1;
    const FleetRun run = RunFleet({long_job("cold")}, options);
    cold_ms = run.wall_ms;
    cold_cycles = run.records[0].guest_cycles;
    std::printf("cold:       %llu guest cycles, %llu ms, %llu attempt(s)\n",
                (unsigned long long)cold_cycles, (unsigned long long)cold_ms,
                (unsigned long long)run.records[0].attempts);
    report.AddRow("cold")
        .Field("guest_cycles", cold_cycles)
        .Field("attempts", run.records[0].attempts)
        .Field("wall_ms", cold_ms);
  }

  // Crash-resume: the same job SIGKILLed once mid-run by chaos injection.
  {
    FleetOptions options = base;
    options.out_dir = dir + "/resume";
    options.workers = 1;
    options.chaos = {"kill@resume"};
    const FleetRun run = RunFleet({long_job("resume")}, options);
    const JobRecord& record = run.records[0];
    if (record.guest_cycles != cold_cycles) {
      std::fprintf(stderr, "resumed run reported %llu cycles, cold run %llu — determinism bug\n",
                    (unsigned long long)record.guest_cycles, (unsigned long long)cold_cycles);
      return 1;
    }
    const double overhead_pct =
        cold_ms != 0 ? 100.0 * ((double)run.wall_ms - (double)cold_ms) / (double)cold_ms : 0.0;
    std::printf("crash-resume: %llu guest cycles, %llu ms, %llu attempt(s), %+.1f%% wall vs cold\n",
                (unsigned long long)record.guest_cycles, (unsigned long long)run.wall_ms,
                (unsigned long long)record.attempts, overhead_pct);
    report.AddRow("crash_resume")
        .Field("guest_cycles", record.guest_cycles)
        .Field("attempts", record.attempts)
        .Field("failures", record.failures)
        .Field("wall_ms", run.wall_ms)
        .Field("overhead_pct", overhead_pct);
  }

  return report.WriteIfRequested(argc, argv) ? 0 : 1;
}
