// Paper Table 1: "New Metal instructions."
//
// Prints the implemented Metal instruction set straight from the ISA tables,
// as a documentation/consistency artifact: the paper's Table 1 lists menter,
// mexit, rmr, wmr, mld and mst, with menter usable from normal mode and the
// rest Metal-mode only. We additionally list the architectural-feature
// instructions our processor exposes to Metal mode (paper §2.3 describes
// them as implementation-chosen).
#include <cstdio>

#include "bench/bench_util.h"
#include "isa/isa.h"

using namespace msim;

namespace {

void PrintRow(InstrKind kind, const char* description) {
  const InstrInfo& info = GetInstrInfo(kind);
  std::printf("  %-10s %-12s %-46s %s\n", info.mnemonic,
              info.format == InstrFormat::kR   ? "R-type"
              : info.format == InstrFormat::kI ? "I-type"
              : info.format == InstrFormat::kS ? "S-type"
                                               : "?",
              description, info.metal_only ? "Metal mode only" : "normal mode");
}

}  // namespace

int main() {
  PrintHeader("Table 1: New Metal instructions", "paper Table 1 (and §2.3 exposed features)");

  std::printf("\nMetal core instructions (paper Table 1):\n");
  PrintRow(InstrKind::kMenter, "enter Metal mode via mroutine entry number");
  PrintRow(InstrKind::kMexit, "exit Metal mode; resume at address in m31");
  PrintRow(InstrKind::kRmr, "read Metal register into GPR");
  PrintRow(InstrKind::kWmr, "write GPR into Metal register");
  PrintRow(InstrKind::kMld, "load from the MRAM data segment");
  PrintRow(InstrKind::kMst, "store to the MRAM data segment");

  std::printf("\nArchitectural features exposed to Metal mode (paper §2.3):\n");
  PrintRow(InstrKind::kPlw, "physical (untranslated) word load");
  PrintRow(InstrKind::kPsw, "physical (untranslated) word store");
  PrintRow(InstrKind::kTlbwr, "write TLB entry (vaddr, PTE)");
  PrintRow(InstrKind::kTlbinv, "invalidate TLB entries for vaddr");
  PrintRow(InstrKind::kTlbflush, "flush the TLB (all, or one ASID)");
  PrintRow(InstrKind::kTlbrd, "probe the TLB");
  PrintRow(InstrKind::kMintset, "configure instruction interception");
  PrintRow(InstrKind::kMopr, "read intercepted-instruction operand");
  PrintRow(InstrKind::kMopw, "write intercepted instruction's rd");
  PrintRow(InstrKind::kRcr, "read control register");
  PrintRow(InstrKind::kWcr, "write control register");

  std::printf("\nSimulator-only:\n");
  PrintRow(InstrKind::kHalt, "stop the simulation (exit code in rs1)");
  return 0;
}
