// Figure 2 / §3.1: kenter/kexit system-call round trip.
//
// Reproduces the paper's traditional kernel-user privilege model built from
// mroutines (Listing/Figure 2) and measures a no-op system call:
//   user --menter kenter--> kernel handler --menter kexit--> user
// under the three handler placements. This quantifies why user-defined
// privilege levels are practical with MRAM-resident mroutines.
#include <cstdio>

#include "bench/bench_util.h"
#include "ext/privilege.h"
#include "support/strings.h"

using namespace msim;

namespace {

constexpr int kIterations = 2000;

constexpr const char* kProgramTemplate = R"(
  _start:
    li s0, %d
  loop:
    li a0, 0             # syscall number 0: sys_nop
    menter 8             # kenter
    # kernel returned control here via kexit
    addi s0, s0, -1
    bnez s0, loop
    halt zero

  sys_nop:               # kernel: return immediately
    menter 9             # kexit (to the user address saved in ra)
    halt zero

  kfault:
    li a0, 0xEE
    halt a0

  .data
  syscall_table:
    .word sys_nop
)";

constexpr const char* kBaselineTemplate = R"(
  _start:
    li s0, %d
  loop:
    li a0, 0
    addi s0, s0, -1
    bnez s0, loop
    halt zero
)";

double MeasureSyscall(const CoreConfig& config) {
  uint64_t cycles[2];
  for (int variant = 0; variant < 2; ++variant) {
    MetalSystem system(config);
    const std::string source =
        StrFormat(variant == 0 ? kProgramTemplate : kBaselineTemplate, kIterations);
    const auto program = Assemble(source);
    DieIfError(program.status(), "assemble");
    if (variant == 0) {
      DieIfError(PrivilegeExtension::Install(system, program->symbols.at("syscall_table"), 1,
                                             program->symbols.at("kfault")),
                 "install");
    }
    DieIfError(system.LoadProgram(*program), "load");
    cycles[variant] = RunOrDie(system).cycles;
  }
  return static_cast<double>(cycles[0] - cycles[1]) / kIterations;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("kenter/kexit system-call round trip (cycles per syscall)",
              "paper Figure 2 / §3.1 (user-defined privilege levels)");
  BenchReport report("fig2_syscall", "paper Figure 2 / §3.1");

  CoreConfig metal;
  CoreConfig metal_slow;
  metal_slow.fast_transition = false;
  CoreConfig trap;
  trap.mroutine_storage = MroutineStorage::kDramCached;
  CoreConfig palcode;
  palcode.mroutine_storage = MroutineStorage::kDramUncached;

  struct Row {
    const char* name;
    const CoreConfig* config;
  };
  const Row rows[] = {
      {StorageName(MroutineStorage::kMram), &metal},
      {"Metal w/o fast transition (ablation)", &metal_slow},
      {StorageName(MroutineStorage::kDramCached), &trap},
      {StorageName(MroutineStorage::kDramUncached), &palcode},
  };
  std::printf("\n%-42s %10s\n", "configuration", "cycles");
  for (const Row& row : rows) {
    const double cycles = MeasureSyscall(*row.config);
    std::printf("%-42s %10.2f\n", row.name, cycles);
    report.AddRow(row.name).Field("cycles_per_syscall", cycles);
  }

  std::printf(
      "\nThe syscall executes the paper's kenter (privilege update, kernel page\n"
      "key open, syscall-table dispatch) and kexit mroutines. With MRAM +\n"
      "decode-stage replacement the entire privilege switch costs a handful of\n"
      "cycles — the mroutine instructions themselves — while DRAM-resident\n"
      "handlers pay tens to hundreds of cycles of fetch latency.\n");
  return report.WriteIfRequested(argc, argv) ? 0 : 1;
}
