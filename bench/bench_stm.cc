// §3.3 "Transactional Memory": throughput and abort behaviour of the
// interception-based STM.
//
// The paper: "neither compilers nor developers need to replace loads and
// stores with calls into an STM library. Instead, Metal turns on and off
// interception of loads and stores at runtime ... Our implementation is
// under 100 instructions and closely resembles TL2."
//
// Workload: transactions that read-modify-write K words of a shared array.
// A simulated remote core injects conflicting commits at a configurable
// rate (the host advances the global version clock and stamps a location
// in the working set). Baseline: the same RMW protected by a global
// test-and-set lock (no interception).
#include <cstdio>

#include "bench/bench_util.h"
#include "ext/stm.h"
#include "support/rng.h"
#include "support/strings.h"

using namespace msim;

namespace {

constexpr uint32_t kClockAddr = 0x00700000;
constexpr uint32_t kVtblAddr = 0x00704000;
constexpr uint32_t kVtblWords = 1024;
constexpr uint32_t kShared = 0x00600000;
constexpr int kTransactions = 300;

struct StmRunResult {
  uint64_t cycles = 0;
  uint32_t commits = 0;
  uint32_t aborts = 0;
  // Service time of the tcommit mroutine (entry 27), from causal spans.
  Histogram commit_latency;
};

constexpr uint32_t kTcommitEntry = 27;

// STM workload: each transaction increments words [0, k) of the shared array.
StmRunResult RunStm(int k, double inject_probability, uint64_t seed) {
  MetalSystem system;
  DieIfError(StmExtension::Install(system, kClockAddr, kVtblAddr, kVtblWords), "install");
  const std::string source = StrFormat(R"(
    _start:
      li s0, %d              # transactions to commit
    next_tx:
      la a0, on_abort
      menter 24              # tstart
      li s1, %d              # words per transaction
      li t5, 0x00600000
    rmw:
      lw t6, 0(t5)
      addi t6, t6, 1
      sw t6, 0(t5)
      addi t5, t5, 4
      addi s1, s1, -1
      bnez s1, rmw
      menter 27              # tcommit
      addi s0, s0, -1
      bnez s0, next_tx
      halt zero
    on_abort:
      j next_tx
  )",
                                       kTransactions, k);
  DieIfError(system.LoadProgramSource(source), "load");
  DieIfError(system.Boot(), "boot");
  Core& core = system.core();

  // Retain enough completed spans for every menter of the largest workload
  // (~34 per transaction at k=16: tstart + per-access interceptions + tcommit)
  // so the tcommit latency histogram covers all commits, not a suffix.
  SpanSink spans(/*retain=*/16384);
  system.SetTraceSink(&spans);

  // Interleave execution with remote commits: every chunk of cycles, a
  // simulated second core commits to word 0 with probability p.
  Rng rng(seed);
  constexpr uint64_t kChunk = 400;
  uint64_t total_cycles = 0;
  while (!core.halted() && total_cycles < 100'000'000) {
    (void)core.Run(kChunk);
    total_cycles += kChunk;
    if (!core.halted() && rng.NextDouble() < inject_probability) {
      DieIfError(StmExtension::InjectRemoteCommit(core, kClockAddr, kVtblAddr, kVtblWords,
                                                  kShared, 0),
                 "inject");
    }
  }
  spans.Finalize(core.cycle());
  StmRunResult result;
  result.cycles = core.stats().cycles;
  result.commits = UnwrapOrDie(StmExtension::Commits(core), "commits");
  result.aborts = UnwrapOrDie(StmExtension::Aborts(core), "aborts");
  result.commit_latency =
      SpanLatencyHistogram(spans.Spans(), SpanClass::kMenter, kTcommitEntry);
  return result;
}

// Global-lock baseline: no interception, lock word guards the RMW.
uint64_t RunLockBaseline(int k) {
  MetalSystem system;
  const std::string source = StrFormat(R"(
    .equ LOCK, 0x00610000
    _start:
      li s0, %d
    next:
      # acquire (uncontended test-and-set)
      li t0, 0x00610000
    acquire:
      lw t1, 0(t0)
      bnez t1, acquire
      li t1, 1
      sw t1, 0(t0)
      li s1, %d
      li t5, 0x00600000
    rmw:
      lw t6, 0(t5)
      addi t6, t6, 1
      sw t6, 0(t5)
      addi t5, t5, 4
      addi s1, s1, -1
      bnez s1, rmw
      sw zero, 0(t0)       # release
      addi s0, s0, -1
      bnez s0, next
      halt zero
  )",
                                       kTransactions, k);
  DieIfError(system.LoadProgramSource(source), "load");
  return RunOrDie(system).cycles;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Software transactional memory via instruction interception",
              "paper §3.3 (TL2-style STM; <100-instruction implementation)");
  BenchReport report("stm", "paper §3.3");

  const uint32_t instr_count = UnwrapOrDie(StmExtension::InstructionCount(), "count");
  std::printf("\nInstalled STM mroutines: %u instructions "
              "(paper claims <100; ours adds register save/restore + statistics)\n",
              instr_count);

  std::printf("\nThroughput, no conflicts (cycles per committed transaction):\n");
  std::printf("%8s %14s %14s %10s %12s %12s\n", "tx size", "STM cyc/tx", "lock cyc/tx",
              "overhead", "commit p50", "commit p99");
  for (const int k : {1, 2, 4, 8, 16}) {
    const StmRunResult stm = RunStm(k, 0.0, 1);
    const uint64_t lock_cycles = RunLockBaseline(k);
    const double stm_per = static_cast<double>(stm.cycles) / stm.commits;
    const double lock_per = static_cast<double>(lock_cycles) / kTransactions;
    std::printf("%8d %14.1f %14.1f %9.1fx %12.1f %12.1f\n", k, stm_per, lock_per,
                stm_per / lock_per, stm.commit_latency.Percentile(50),
                stm.commit_latency.Percentile(99));
    report.AddRow("throughput_k" + std::to_string(k))
        .Field("stm_cyc_per_tx", stm_per)
        .Field("lock_cyc_per_tx", lock_per)
        .Field("overhead", stm_per / lock_per)
        .LatencyFields(stm.commit_latency);
  }

  std::printf("\nConflict sweep (tx size 4, %d commits):\n", kTransactions);
  std::printf("%18s %10s %10s %14s %12s\n", "inject probability", "commits", "aborts",
              "cyc/commit", "commit p99");
  for (const double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const StmRunResult stm = RunStm(4, p, 42);
    std::printf("%18.2f %10u %10u %14.1f %12.1f\n", p, stm.commits, stm.aborts,
                static_cast<double>(stm.cycles) / stm.commits,
                stm.commit_latency.Percentile(99));
    report.AddRow(StrFormat("conflict_p%02d", static_cast<int>(p * 100)))
        .Field("commits", static_cast<uint64_t>(stm.commits))
        .Field("aborts", static_cast<uint64_t>(stm.aborts))
        .Field("cyc_per_commit", static_cast<double>(stm.cycles) / stm.commits)
        .LatencyFields(stm.commit_latency);
  }

  std::printf(
      "\nThe STM pays a constant per-access interception cost (tread/twrite\n"
      "mroutines) but needs no compiler support; aborts grow with the conflict\n"
      "rate and every abort rolls back buffered writes, as in TL2.\n");
  return report.WriteIfRequested(argc, argv) ? 0 : 1;
}
