// Shared helpers for the benchmark binaries.
//
// Every bench prints the paper-style rows it reproduces (see DESIGN.md §1 and
// EXPERIMENTS.md). Results are simulated cycle counts — deterministic, not
// wall clock — so the output is stable across runs and machines. Benches that
// fill a BenchReport can additionally emit their rows as a JSON file for CI
// and plotting (`--json FILE` / `--stats-json FILE`, or MSIM_BENCH_JSON=FILE).
#ifndef MSIM_BENCH_BENCH_UTIL_H_
#define MSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "metal/system.h"
#include "trace/histogram.h"
#include "trace/json.h"
#include "trace/span.h"

namespace msim {

// Aborts the bench with a message if a Status/Result is an error.
template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void DieIfError(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

// Runs to halt or dies with the fatal message.
inline RunResult RunOrDie(MetalSystem& system, uint64_t max_cycles = 50'000'000) {
  const RunResult result = system.Run(max_cycles);
  if (result.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "simulation did not halt: %s\n", result.fatal_message.c_str());
    std::exit(1);
  }
  return result;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================================\n");
}

inline const char* StorageName(MroutineStorage storage) {
  switch (storage) {
    case MroutineStorage::kMram:
      return "Metal (MRAM)";
    case MroutineStorage::kDramCached:
      return "trap handler (cached DRAM)";
    case MroutineStorage::kDramUncached:
      return "PALcode-style (uncached DRAM)";
  }
  return "?";
}

// Collects named result rows and writes them as one JSON document:
//   {"bench": ..., "paper_ref": ..., "rows": [{"label": ..., <fields>}, ...]}
class BenchReport {
 public:
  BenchReport(std::string bench, std::string paper_ref)
      : bench_(std::move(bench)), paper_ref_(std::move(paper_ref)) {}

  // Starts a row; chain Field() calls to fill it.
  BenchReport& AddRow(std::string label) {
    rows_.push_back(Row{std::move(label), {}});
    return *this;
  }
  BenchReport& Field(std::string name, uint64_t value) {
    rows_.back().fields.push_back(FieldValue{std::move(name), false, value, 0.0});
    return *this;
  }
  BenchReport& Field(std::string name, double value) {
    rows_.back().fields.push_back(FieldValue{std::move(name), true, 0, value});
    return *this;
  }

  void WriteJson(std::ostream& out) const {
    JsonWriter json(out);
    json.BeginObject();
    json.Field("bench", bench_);
    json.Field("paper_ref", paper_ref_);
    json.BeginArray("rows");
    for (const Row& row : rows_) {
      json.BeginObject();
      json.Field("label", row.label);
      for (const FieldValue& field : row.fields) {
        if (field.is_double) {
          json.Field(field.name, field.real);
        } else {
          json.Field(field.name, field.integer);
        }
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
  }

  // Writes the report if the command line (`--json FILE`, `--stats-json FILE`)
  // or the MSIM_BENCH_JSON environment variable requests a path. Returns
  // false when a requested write failed.
  bool WriteIfRequested(int argc, char** argv) const {
    std::string path;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json" || std::string(argv[i]) == "--stats-json") {
        path = argv[i + 1];
      }
    }
    if (path.empty()) {
      if (const char* env = std::getenv("MSIM_BENCH_JSON")) {
        path = env;
      }
    }
    if (path.empty()) {
      return true;
    }
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
      return false;
    }
    WriteJson(out);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    return out.good();
  }

  // Appends the standard service-latency fields (count, p50/p90/p99, max in
  // simulated cycles) of a histogram to the current row.
  BenchReport& LatencyFields(const Histogram& histogram) {
    return Field("count", histogram.count())
        .Field("p50_cycles", histogram.Percentile(50))
        .Field("p90_cycles", histogram.Percentile(90))
        .Field("p99_cycles", histogram.Percentile(99))
        .Field("max_cycles", histogram.max());
  }

 private:
  struct FieldValue {
    std::string name;
    bool is_double;
    uint64_t integer;
    double real;
  };
  struct Row {
    std::string label;
    std::vector<FieldValue> fields;
  };

  std::string bench_;
  std::string paper_ref_;
  std::vector<Row> rows_;
};

// Rebuilds a latency histogram from a SpanSink's retained spans, filtered by
// class and (optionally) mroutine entry — for benches that care about one
// entry's service time when several mroutines share the aggregate histogram.
inline Histogram SpanLatencyHistogram(const std::vector<Span>& spans, SpanClass cls,
                                      uint32_t entry = Span::kNoEntry) {
  Histogram histogram;
  for (const Span& span : spans) {
    if (span.cls != cls || span.aborted) {
      continue;
    }
    if (entry != Span::kNoEntry && span.entry != entry) {
      continue;
    }
    histogram.Record(span.cycles());
  }
  return histogram;
}

// Prints one aligned latency line on stdout beneath a bench table.
inline void PrintLatencyLine(const char* label, const Histogram& histogram) {
  std::printf("%-44s n=%-6llu p50=%-8.1f p90=%-8.1f p99=%-8.1f max=%llu\n", label,
              (unsigned long long)histogram.count(), histogram.Percentile(50),
              histogram.Percentile(90), histogram.Percentile(99),
              (unsigned long long)histogram.max());
}

}  // namespace msim

#endif  // MSIM_BENCH_BENCH_UTIL_H_
