// Shared helpers for the benchmark binaries.
//
// Every bench prints the paper-style rows it reproduces (see DESIGN.md §1 and
// EXPERIMENTS.md). Results are simulated cycle counts — deterministic, not
// wall clock — so the output is stable across runs and machines.
#ifndef MSIM_BENCH_BENCH_UTIL_H_
#define MSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "metal/system.h"

namespace msim {

// Aborts the bench with a message if a Status/Result is an error.
template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void DieIfError(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

// Runs to halt or dies with the fatal message.
inline RunResult RunOrDie(MetalSystem& system, uint64_t max_cycles = 50'000'000) {
  const RunResult result = system.Run(max_cycles);
  if (result.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "simulation did not halt: %s\n", result.fatal_message.c_str());
    std::exit(1);
  }
  return result;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================================\n");
}

inline const char* StorageName(MroutineStorage storage) {
  switch (storage) {
    case MroutineStorage::kMram:
      return "Metal (MRAM)";
    case MroutineStorage::kDramCached:
      return "trap handler (cached DRAM)";
    case MroutineStorage::kDramUncached:
      return "PALcode-style (uncached DRAM)";
  }
  return "?";
}

}  // namespace msim

#endif  // MSIM_BENCH_BENCH_UTIL_H_
