// Paper Table 2: "Hardware resources for adding Metal to our 5-stage
// pipelined processor."
//
// The paper synthesizes Verilog with Yosys + the Synopsys standard cell
// library and reports: baseline 170,264 wires / 180,546 cells; with Metal
// 197,705 wires (+16.1%) / 206,384 cells (+14.3%). We evaluate the
// structural hardware-resource model (src/synth): the component inventory of
// both designs, calibrated to the paper's baseline row (DESIGN.md §2
// documents the substitution).
#include <cstdio>

#include "bench/bench_util.h"
#include "synth/designs.h"

using namespace msim;

int main() {
  PrintHeader("Table 2: Hardware resources (wires and cells)", "paper Table 2 / §2.4");

  const Table2Result table = GenerateTable2();
  std::printf("\nOur model:\n%s\n", FormatTable2(table).c_str());

  std::printf("Paper reference:\n");
  std::printf("%-18s %12.0f %12.0f %9.1f%%\n", "Number of Wires",
              Table2Reference::kBaselineWires, Table2Reference::kMetalWires, 16.1);
  std::printf("%-18s %12.0f %12.0f %9.1f%%\n\n", "Number of Cells",
              Table2Reference::kBaselineCells, Table2Reference::kMetalCells, 14.3);

  std::printf("Component inventory added by Metal (abstract units):\n");
  const Design baseline = BaselineProcessorDesign();
  const Design metal = MetalProcessorDesign();
  for (size_t i = baseline.components().size(); i < metal.components().size(); ++i) {
    const Component& component = metal.components()[i];
    std::printf("  %-52s cells %8.0f  wires %8.0f\n", component.name.c_str(), component.cells,
                component.wires);
  }
  std::printf("\nBaseline inventory (abstract units):\n");
  for (const Component& component : baseline.components()) {
    std::printf("  %-52s cells %8.0f  wires %8.0f\n", component.name.c_str(), component.cells,
                component.wires);
  }
  return 0;
}
