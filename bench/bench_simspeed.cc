// Engineering benchmark: simulator throughput (google-benchmark).
//
// Not a paper experiment — this measures how many simulated instructions per
// wall-clock second the cycle-level model achieves, for the configurations
// the other benches use heavily.
//
// items_per_second is therefore simulated-instructions per wall second,
// computed from the measured RunResult::instret of every iteration — never
// from a hardcoded instruction count, which silently rots when a program or
// the pipeline model changes.
//
// The *FastStep / *StepCycle pairs measure the same program under both
// stepping modes (CoreConfig::fast_step on and off); CI computes the speedup
// ratio from the JSON output and gates regressions against
// bench/baseline_simspeed.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstring>

#include "asm/assembler.h"
#include "bench/bench_util.h"
#include "cpu/core.h"
#include "metal/system.h"

namespace msim {
namespace {

const char* kAluLoop = R"(
  _start:
    li t0, 100000
  loop:
    addi a0, a0, 1
    xor a1, a1, a0
    addi t0, t0, -1
    bnez t0, loop
    halt zero
)";

// Memory-bound rows: the superblock memory slots (docs/performance.md) keep
// these loops inside traces, so their throughput tracks the trace tier's
// dcache/TLB fast path rather than the ALU ceiling. CI gates the ratio of
// BM_MemCopyLoop over its --no-superblocks twin (memloop_superblock_speedup).
const char* kMemCopyLoop = R"(
  _start:
    la t5, src
    la t6, dst
    li t0, 25000
  loop:
    lw a0, 0(t5)
    addi a0, a0, 1
    sw a0, 0(t6)
    addi t0, t0, -1
    bnez t0, loop
    halt zero
    .data
  src:
    .word 7
  dst:
    .word 0
)";

const char* kStridedStoreLoop = R"(
  _start:
    la t6, buf
    li t0, 12500
  loop:
    sw t0, 0(t6)
    sh t0, 32(t6)
    sb t0, 64(t6)
    lbu a1, 64(t6)
    addi t0, t0, -1
    bnez t0, loop
    halt zero
    .data
  buf:
    .space 128
)";

const char* kMixedAluMemLoop = R"(
  _start:
    la t6, buf
    li t0, 20000
  loop:
    addi a0, a0, 3
    xor a1, a1, a0
    lw a2, 0(t6)
    add a2, a2, a0
    sw a2, 4(t6)
    addi t0, t0, -1
    bnez t0, loop
    halt zero
    .data
  buf:
    .word 5
    .word 0
)";

const char* kMetalLoop = R"(
  _start:
    li t0, 50000
  loop:
    menter 1
    addi t0, t0, -1
    bnez t0, loop
    halt zero
)";

const char* kNoopMroutine = R"(
    .mentry 1, noop
  noop:
    mexit
)";

// Runs `source` to completion once per iteration under `config`, reporting
// measured simulated instructions as items.
void RunLoopProgram(benchmark::State& state, const char* source,
                    const CoreConfig& config) {
  const auto program = Assemble(source);
  uint64_t total_instret = 0;
  for (auto _ : state) {
    Core core(config);
    (void)core.LoadProgram(*program);
    const RunResult result = core.Run(5'000'000);
    benchmark::DoNotOptimize(result.exit_code);
    total_instret += result.instret;
    state.counters["sim_instr"] = static_cast<double>(result.instret);
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_instret));
}

void BM_AluLoop(benchmark::State& state) {
  RunLoopProgram(state, kAluLoop, CoreConfig{});  // fast_step + superblocks on
}

void BM_AluLoopNoSuperblocks(benchmark::State& state) {
  CoreConfig config;
  config.superblocks = false;  // the plain fast-step window, no trace tier
  RunLoopProgram(state, kAluLoop, config);
}
BENCHMARK(BM_AluLoopNoSuperblocks)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AluLoop)->Unit(benchmark::kMillisecond);

void BM_AluLoopStepCycle(benchmark::State& state) {
  CoreConfig config;
  config.fast_step = false;
  RunLoopProgram(state, kAluLoop, config);
}
BENCHMARK(BM_AluLoopStepCycle)->Unit(benchmark::kMillisecond);

void BM_MemCopyLoop(benchmark::State& state) {
  RunLoopProgram(state, kMemCopyLoop, CoreConfig{});
}
BENCHMARK(BM_MemCopyLoop)->Unit(benchmark::kMillisecond);

void BM_MemCopyLoopNoSuperblocks(benchmark::State& state) {
  CoreConfig config;
  config.superblocks = false;
  RunLoopProgram(state, kMemCopyLoop, config);
}
BENCHMARK(BM_MemCopyLoopNoSuperblocks)->Unit(benchmark::kMillisecond);

void BM_StridedStoreLoop(benchmark::State& state) {
  RunLoopProgram(state, kStridedStoreLoop, CoreConfig{});
}
BENCHMARK(BM_StridedStoreLoop)->Unit(benchmark::kMillisecond);

void BM_MixedAluMemLoop(benchmark::State& state) {
  RunLoopProgram(state, kMixedAluMemLoop, CoreConfig{});
}
BENCHMARK(BM_MixedAluMemLoop)->Unit(benchmark::kMillisecond);

void BM_MetalTransitionLoop(benchmark::State& state) {
  uint64_t total_instret = 0;
  for (auto _ : state) {
    MetalSystem system;
    system.AddMcode(kNoopMroutine);
    (void)system.LoadProgramSource(kMetalLoop);
    const RunResult result = system.Run(5'000'000);
    benchmark::DoNotOptimize(result.exit_code);
    total_instret += result.instret + system.core().stats().metal_instret;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_instret));
}
BENCHMARK(BM_MetalTransitionLoop)->Unit(benchmark::kMillisecond);

void BM_Assembler(benchmark::State& state) {
  std::string source = "_start:\n";
  for (int i = 0; i < 1000; ++i) {
    source += "  addi a0, a0, 1\n";
  }
  source += "  halt a0\n";
  for (auto _ : state) {
    auto program = Assemble(source);
    benchmark::DoNotOptimize(program.ok());
  }
  state.SetItemsProcessed(state.iterations() * 1002);
}
BENCHMARK(BM_Assembler)->Unit(benchmark::kMillisecond);

}  // namespace

// Best-of-N wall-clock measurement of `source` under `config`, in simulated
// instructions per second. Self-contained (std::chrono, not the
// google-benchmark timer) so the BenchReport path works identically across
// library versions and never depends on benchmark CLI flags. With `observed`
// a SpanSink is attached (the msim --stats-json / --trace-json configuration),
// measuring the cost of full observability on the hot path.
double MeasureInstrPerSec(const char* source, const CoreConfig& config, int reps,
                          bool observed = false) {
  const auto program = Assemble(source);
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Core core(config);
    SpanSink spans;
    if (observed) {
      core.SetTraceSink(&spans);
    }
    (void)core.LoadProgram(*program);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult result = core.Run(5'000'000);
    const auto t1 = std::chrono::steady_clock::now();
    if (observed) {
      spans.Finalize(core.cycle());
    }
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (seconds > 0.0) {
      const double rate = static_cast<double>(result.instret) / seconds;
      if (rate > best) {
        best = rate;
      }
    }
  }
  return best;
}

// CI entry point: `bench_simspeed --json FILE` writes a BenchReport with the
// measured throughput of both stepping modes and their speedup ratio; the
// perf job gates it against bench/baseline_simspeed.json (>20% regression on
// any baseline field fails). Without --json/--stats-json the binary behaves
// as a plain google-benchmark main.
int RunBenchReport(int argc, char** argv) {
  BenchReport report("simspeed", "engineering throughput (not a paper experiment)");
  CoreConfig fast_config;  // defaults: fast_step on, superblocks on
  CoreConfig nosb_config;
  nosb_config.superblocks = false;
  CoreConfig slow_config;
  slow_config.fast_step = false;
  const int kReps = 10;
  const double fast = MeasureInstrPerSec(kAluLoop, fast_config, kReps);
  const double nosb = MeasureInstrPerSec(kAluLoop, nosb_config, kReps);
  const double slow = MeasureInstrPerSec(kAluLoop, slow_config, kReps);
  const double observed = MeasureInstrPerSec(kAluLoop, fast_config, kReps,
                                             /*observed=*/true);
  const double memcopy = MeasureInstrPerSec(kMemCopyLoop, fast_config, kReps);
  const double memcopy_nosb = MeasureInstrPerSec(kMemCopyLoop, nosb_config, kReps);
  const double strided = MeasureInstrPerSec(kStridedStoreLoop, fast_config, kReps);
  const double mixed = MeasureInstrPerSec(kMixedAluMemLoop, fast_config, kReps);
  std::printf("BM_AluLoop                %12.0f sim-instr/s (superblocks on)\n", fast);
  std::printf("BM_AluLoopNoSuperblocks   %12.0f sim-instr/s (plain fast-step window)\n",
              nosb);
  std::printf("BM_AluLoopStepCycle       %12.0f sim-instr/s (fast_step off)\n", slow);
  std::printf("BM_AluLoopObserved        %12.0f sim-instr/s (superblocks on + span sink)\n",
              observed);
  std::printf("BM_MemCopyLoop            %12.0f sim-instr/s (lw/sw trace fast path)\n",
              memcopy);
  std::printf("BM_MemCopyLoopNoSuperblocks%11.0f sim-instr/s (plain fast-step window)\n",
              memcopy_nosb);
  std::printf("BM_StridedStoreLoop       %12.0f sim-instr/s (sw/sh/sb/lbu widths)\n",
              strided);
  std::printf("BM_MixedAluMemLoop        %12.0f sim-instr/s (interleaved ALU + mem)\n",
              mixed);
  std::printf("speedup (fast/stepcycle)  %12.2fx\n", slow > 0.0 ? fast / slow : 0.0);
  std::printf("speedup (superblock/window)%11.2fx\n", nosb > 0.0 ? fast / nosb : 0.0);
  std::printf("speedup (memloop sb/window)%11.2fx\n",
              memcopy_nosb > 0.0 ? memcopy / memcopy_nosb : 0.0);
  report.AddRow("BM_AluLoop").Field("sim_instr_per_sec", fast);
  report.AddRow("BM_AluLoopNoSuperblocks").Field("sim_instr_per_sec", nosb);
  report.AddRow("BM_AluLoopStepCycle").Field("sim_instr_per_sec", slow);
  report.AddRow("BM_AluLoopObserved").Field("sim_instr_per_sec", observed);
  report.AddRow("BM_MemCopyLoop").Field("sim_instr_per_sec", memcopy);
  report.AddRow("BM_MemCopyLoopNoSuperblocks").Field("sim_instr_per_sec", memcopy_nosb);
  report.AddRow("BM_StridedStoreLoop").Field("sim_instr_per_sec", strided);
  report.AddRow("BM_MixedAluMemLoop").Field("sim_instr_per_sec", mixed);
  report.AddRow("speedup").Field("fast_over_stepcycle", slow > 0.0 ? fast / slow : 0.0);
  report.AddRow("superblock_speedup")
      .Field("superblock_over_window", nosb > 0.0 ? fast / nosb : 0.0);
  report.AddRow("memloop_superblock_speedup")
      .Field("superblock_over_window",
             memcopy_nosb > 0.0 ? memcopy / memcopy_nosb : 0.0);
  return report.WriteIfRequested(argc, argv) ? 0 : 1;
}

}  // namespace msim

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 || std::strcmp(argv[i], "--stats-json") == 0) {
      return msim::RunBenchReport(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
