// Engineering benchmark: simulator throughput (google-benchmark).
//
// Not a paper experiment — this measures how many simulated instructions per
// wall-clock second the cycle-level model achieves, for the configurations
// the other benches use heavily.
#include <benchmark/benchmark.h>

#include "asm/assembler.h"
#include "cpu/core.h"
#include "metal/system.h"

namespace msim {
namespace {

const char* kAluLoop = R"(
  _start:
    li t0, 100000
  loop:
    addi a0, a0, 1
    xor a1, a1, a0
    addi t0, t0, -1
    bnez t0, loop
    halt zero
)";

const char* kMetalLoop = R"(
  _start:
    li t0, 50000
  loop:
    menter 1
    addi t0, t0, -1
    bnez t0, loop
    halt zero
)";

const char* kNoopMroutine = R"(
    .mentry 1, noop
  noop:
    mexit
)";

void BM_AluLoop(benchmark::State& state) {
  const auto program = Assemble(kAluLoop);
  for (auto _ : state) {
    Core core;
    (void)core.LoadProgram(*program);
    const RunResult result = core.Run(5'000'000);
    benchmark::DoNotOptimize(result.exit_code);
    state.counters["sim_instr"] = static_cast<double>(result.instret);
  }
  state.SetItemsProcessed(state.iterations() * 400'002);
}
BENCHMARK(BM_AluLoop)->Unit(benchmark::kMillisecond);

void BM_MetalTransitionLoop(benchmark::State& state) {
  for (auto _ : state) {
    MetalSystem system;
    system.AddMcode(kNoopMroutine);
    (void)system.LoadProgramSource(kMetalLoop);
    const RunResult result = system.Run(5'000'000);
    benchmark::DoNotOptimize(result.exit_code);
  }
  state.SetItemsProcessed(state.iterations() * 200'002);
}
BENCHMARK(BM_MetalTransitionLoop)->Unit(benchmark::kMillisecond);

void BM_Assembler(benchmark::State& state) {
  std::string source = "_start:\n";
  for (int i = 0; i < 1000; ++i) {
    source += "  addi a0, a0, 1\n";
  }
  source += "  halt a0\n";
  for (auto _ : state) {
    auto program = Assemble(source);
    benchmark::DoNotOptimize(program.ok());
  }
  state.SetItemsProcessed(state.iterations() * 1002);
}
BENCHMARK(BM_Assembler)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace msim

BENCHMARK_MAIN();
