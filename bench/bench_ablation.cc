// Ablation study of the design choices DESIGN.md §6 calls out.
//
//   A. Memory-latency sweep: as DRAM gets slower relative to the pipeline,
//      MRAM-resident mroutines keep a constant invocation cost while
//      DRAM-resident handlers degrade linearly — the architectural argument
//      for collocating MRAM with the fetch unit (paper §2.2).
//   B. Decode-stage replacement on/off across handler body sizes: isolates
//      the §2.2 optimization from MRAM placement.
//   C. TLB-reach sweep under the custom-page-table walker: how the software
//      walker's cost scales with miss rate (paper §3.2).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cpu/creg.h"
#include "ext/cpt.h"
#include "support/strings.h"

using namespace msim;

namespace {

constexpr int kIterations = 1000;

double TransitionOverhead(const CoreConfig& config) {
  const char* kMcode = R"(
      .mentry 1, handler
    handler:
      addi a1, a1, 1
      mexit
  )";
  uint64_t cycles[2];
  for (int variant = 0; variant < 2; ++variant) {
    MetalSystem system(config);
    system.AddMcode(kMcode);
    const std::string source = StrFormat(variant == 0 ? R"(
      _start:
        li t0, %d
      loop:
        menter 1
        addi t0, t0, -1
        bnez t0, loop
        halt zero
    )"
                                                      : R"(
      _start:
        li t0, %d
      loop:
        addi t0, t0, -1
        bnez t0, loop
        halt zero
    )",
                                         kIterations);
    DieIfError(system.LoadProgramSource(source), "load");
    cycles[variant] = RunOrDie(system).cycles;
  }
  return static_cast<double>(cycles[0] - cycles[1]) / kIterations;
}

}  // namespace

int main() {
  PrintHeader("Ablations: MRAM placement, decode replacement, TLB reach",
              "DESIGN.md §6 (supports paper §2.2 / §3.2)");

  std::printf("\nA. One-instruction mroutine invocation cost vs. DRAM latency\n");
  std::printf("%12s %10s %14s %16s\n", "DRAM cycles", "Metal", "trap (cached)",
              "PALcode (uncached)");
  for (const uint32_t dram : {5u, 10u, 20u, 50u, 100u, 200u}) {
    CoreConfig metal;
    metal.dram_latency = dram;
    CoreConfig trap = metal;
    trap.mroutine_storage = MroutineStorage::kDramCached;
    CoreConfig palcode = metal;
    palcode.mroutine_storage = MroutineStorage::kDramUncached;
    std::printf("%12u %10.2f %14.2f %16.2f\n", dram, TransitionOverhead(metal),
                TransitionOverhead(trap), TransitionOverhead(palcode));
  }
  std::printf("Metal's cost is latency-INDEPENDENT; PALcode-style handlers degrade\n"
              "linearly with memory distance — why MRAM sits next to the fetch unit.\n");

  std::printf("\nB. Decode-stage replacement (fast transitions) on vs. off\n");
  std::printf("%12s %10s %10s\n", "", "fast on", "fast off");
  CoreConfig fast_on;
  CoreConfig fast_off;
  fast_off.fast_transition = false;
  std::printf("%12s %10.2f %10.2f   (cycles per 1-instruction mroutine call)\n", "",
              TransitionOverhead(fast_on), TransitionOverhead(fast_off));

  std::printf("\nC. Software TLB-walker cost vs. TLB reach (64-page working set)\n");
  std::printf("%12s %14s %14s\n", "TLB entries", "total cycles", "TLB fills");
  for (const uint32_t entries : {8u, 16u, 32u, 64u, 128u}) {
    CoreConfig config;
    config.tlb_entries = entries;
    MetalSystem system(config);
    DieIfError(CustomPageTable::Install(system, 0), "install");
    DieIfError(system.LoadProgramSource(R"(
      _start:
        li s0, 20
      round:
        li t0, 0x00800000
        li s1, 64
        li t2, 4096
      touch:
        lw t1, 0(t0)
        add t0, t0, t2
        addi s1, s1, -1
        bnez s1, touch
        addi s0, s0, -1
        bnez s0, round
        halt zero
    )"),
               "load");
    DieIfError(system.Boot(), "boot");
    Core& core = system.core();
    CustomPageTable cpt(core, 0x00400000, 0x00100000);
    const uint32_t root = UnwrapOrDie(cpt.CreateAddressSpace(), "root");
    for (uint32_t page = 0; page < 16; ++page) {
      DieIfError(cpt.Map(root, page * 4096, page * 4096, kPteR | kPteW | kPteX), "map");
    }
    for (uint32_t page = 0; page < 64; ++page) {
      const uint32_t addr = 0x00800000 + page * 4096;
      DieIfError(cpt.Map(root, addr, addr, kPteR | kPteW), "map");
    }
    DieIfError(cpt.Activate(root), "activate");
    core.metal().WriteCreg(kCrPgEnable, 1);
    const RunResult result = system.Run(50'000'000);
    if (result.reason != RunResult::Reason::kHalted) {
      std::fprintf(stderr, "ablation C failed: %s\n", result.fatal_message.c_str());
      return 1;
    }
    std::printf("%12u %14llu %14u\n", entries,
                static_cast<unsigned long long>(result.cycles),
                UnwrapOrDie(cpt.FillCount(), "fills"));
  }
  std::printf("Once the working set fits (>= 64 + code entries), fills collapse to the\n"
              "cold-start minimum and the walker vanishes from the profile.\n");
  return 0;
}
