// §3.2 "Custom Page Tables": TLB-miss service cost of the mcode radix walker.
//
// The paper's claim: "the proximity of MRAM to the instruction fetch unit
// enables fast exception dispatching with costs similar to microcode
// implementations. This greatly closes the performance gap between hardware
// and software managed TLBs with the flexibility of user defined data
// structures."
//
// Experiment 1 — miss service time: a workload strides through more pages
// than the TLB holds, so every access TLB-misses; the walker (identical mcode
// in all configurations) refills from an x86-style radix tree. We report
// cycles per miss for the three walker placements plus an idealized hardware
// walker (two D-side table accesses, no pipeline redirect).
//
// Experiment 2 — cache pollution (ablation): MRAM-resident walkers leave the
// I-cache untouched (paper §2: "Accesses to the RAM do not alter processor
// caches"); a trap-style walker evicts application code on every miss.
#include <cstdio>

#include "bench/bench_util.h"
#include "cpu/creg.h"
#include "ext/cpt.h"
#include "support/strings.h"

using namespace msim;

namespace {

constexpr uint32_t kTableRegion = 0x00400000;
constexpr uint32_t kTableRegionSize = 0x00100000;
constexpr uint32_t kDataBase = 0x00800000;  // 64 mapped data pages
constexpr int kPages = 64;
constexpr int kRounds = 50;

struct PagefaultResult {
  uint64_t cycles = 0;
  uint32_t fills = 0;
  uint64_t icache_misses = 0;
  // Per-miss service latency (TLB-miss trap delivery -> resume), from spans.
  Histogram miss_latency;
};

// Strides over kPages pages kRounds times. With a 32-entry TLB every access
// misses; with a TLB larger than the working set only the first round does.
PagefaultResult RunStride(const CoreConfig& config) {
  MetalSystem system(config);
  DieIfError(CustomPageTable::Install(system, 0), "install cpt");
  const std::string source = StrFormat(R"(
    _start:
      li s0, %d            # rounds
    round:
      li t0, 0x00800000
      li s1, %d            # pages
      li t2, 4096
    touch:
      lw t1, 0(t0)
      add t0, t0, t2
      addi s1, s1, -1
      bnez s1, touch
      addi s0, s0, -1
      bnez s0, round
      halt zero
  )",
                                       kRounds, kPages);
  DieIfError(system.LoadProgramSource(source), "load");
  DieIfError(system.Boot(), "boot");

  Core& core = system.core();
  CustomPageTable cpt(core, kTableRegion, kTableRegionSize);
  const uint32_t root = UnwrapOrDie(cpt.CreateAddressSpace(), "root");
  for (uint32_t page = 0; page < 16; ++page) {  // program text/stack pages
    DieIfError(cpt.Map(root, page * 4096, page * 4096, kPteR | kPteW | kPteX), "map");
  }
  for (int page = 0; page < kPages; ++page) {
    const uint32_t addr = kDataBase + static_cast<uint32_t>(page) * 4096;
    DieIfError(cpt.Map(root, addr, addr, kPteR | kPteW), "map");
  }
  DieIfError(cpt.Activate(root), "activate");
  core.metal().WriteCreg(kCrPgEnable, 1);

  // Span tracing gives the per-miss service distribution directly (delivery
  // to resume), complementing the aggregate diff method below.
  SpanSink spans(/*retain=*/16);
  system.SetTraceSink(&spans);

  PagefaultResult result;
  const RunResult run = system.Run(50'000'000);
  if (run.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "stride run failed: %s\n", run.fatal_message.c_str());
    std::exit(1);
  }
  spans.Finalize(core.cycle());
  result.cycles = run.cycles;
  result.fills = UnwrapOrDie(cpt.FillCount(), "fills");
  result.icache_misses = core.icache().stats().misses;
  result.miss_latency = spans.trap_latency(ExcCause::kTlbMissLoad);
  return result;
}

// Experiment 2 workload: each round touches kPages pages (TLB-missing) and
// then runs a large straight-line compute block that fills most of the
// I-cache. A DRAM-resident walker's code conflicts with the block and evicts
// application lines on every miss; the MRAM walker does not.
PagefaultResult RunPollution(const CoreConfig& config) {
  MetalSystem system(config);
  DieIfError(CustomPageTable::Install(system, 0), "install cpt");
  std::string compute;
  for (int i = 0; i < 700; ++i) {
    compute += "      addi a1, a1, 1\n";
  }
  const std::string source = StrFormat(R"(
    _start:
      li s0, %d
      li t2, 4096
    round:
      li t0, 0x00800000
      li s1, %d
    touch:
      lw t1, 0(t0)
      add t0, t0, t2
      addi s1, s1, -1
      bnez s1, touch
%s
      addi s0, s0, -1
      bnez s0, round
      halt zero
  )",
                                       kRounds, kPages, compute.c_str());
  DieIfError(system.LoadProgramSource(source), "load");
  DieIfError(system.Boot(), "boot");
  Core& core = system.core();
  CustomPageTable cpt(core, kTableRegion, kTableRegionSize);
  const uint32_t root = UnwrapOrDie(cpt.CreateAddressSpace(), "root");
  for (uint32_t page = 0; page < 16; ++page) {
    DieIfError(cpt.Map(root, page * 4096, page * 4096, kPteR | kPteW | kPteX), "map");
  }
  for (int page = 0; page < kPages; ++page) {
    const uint32_t addr = kDataBase + static_cast<uint32_t>(page) * 4096;
    DieIfError(cpt.Map(root, addr, addr, kPteR | kPteW), "map");
  }
  DieIfError(cpt.Activate(root), "activate");
  core.metal().WriteCreg(kCrPgEnable, 1);
  PagefaultResult result;
  const RunResult run = system.Run(100'000'000);
  if (run.reason != RunResult::Reason::kHalted) {
    std::fprintf(stderr, "pollution run failed: %s\n", run.fatal_message.c_str());
    std::exit(1);
  }
  result.cycles = run.cycles;
  result.fills = UnwrapOrDie(cpt.FillCount(), "fills");
  result.icache_misses = core.icache().stats().misses;
  return result;
}

struct MissService {
  double diff_cycles = 0.0;  // aggregate (run delta / extra fills)
  Histogram latency;         // per-miss trap service spans, small-TLB run
};

MissService MissServiceCycles(const CoreConfig& config) {
  CoreConfig small_tlb = config;
  small_tlb.tlb_entries = 32;  // working set (64) exceeds the TLB
  CoreConfig big_tlb = config;
  big_tlb.tlb_entries = 128;  // everything fits after round 1
  const PagefaultResult missy = RunStride(small_tlb);
  const PagefaultResult hitty = RunStride(big_tlb);
  const uint32_t extra_fills = missy.fills - hitty.fills;
  MissService service;
  service.diff_cycles = static_cast<double>(missy.cycles - hitty.cycles) / extra_fills;
  service.latency = missy.miss_latency;
  return service;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Custom page tables: TLB-miss service cost",
              "paper §3.2 (software-managed TLB vs hardware walkers)");
  BenchReport report("pagefault", "paper §3.2");

  CoreConfig metal;
  CoreConfig trap;
  trap.mroutine_storage = MroutineStorage::kDramCached;
  CoreConfig palcode;
  palcode.mroutine_storage = MroutineStorage::kDramUncached;

  std::printf("\nExperiment 1: cycles per TLB miss (radix walk + refill + retry)\n");
  std::printf("%-44s %10s\n", "configuration", "cyc/miss");
  const MissService metal_service = MissServiceCycles(metal);
  const MissService trap_service = MissServiceCycles(trap);
  const MissService palcode_service = MissServiceCycles(palcode);
  const double metal_cycles = metal_service.diff_cycles;
  std::printf("%-44s %10.1f\n", "Metal walker in MRAM", metal_cycles);
  std::printf("%-44s %10.1f\n", "OS trap walker, cached DRAM", trap_service.diff_cycles);
  std::printf("%-44s %10.1f\n", "PALcode-style walker, uncached DRAM",
              palcode_service.diff_cycles);
  // An idealized hardware walker performs the two table reads through the
  // D-cache with no pipeline redirect: ~2 accesses + refill.
  CoreConfig reference;
  const double hw_walker = 2.0 * reference.cache_hit_latency + 2.0;
  std::printf("%-44s %10.1f   (analytical)\n", "idealized hardware walker", hw_walker);
  std::printf("%-44s %10.1fx  vs hardware walker\n", "Metal gap",
              metal_cycles / hw_walker);

  // Per-miss service-latency distribution from causal spans (trap delivery to
  // retried access), small-TLB run of each configuration.
  std::printf("\nPer-miss service latency, spans (simulated cycles)\n");
  PrintLatencyLine("Metal walker in MRAM", metal_service.latency);
  PrintLatencyLine("OS trap walker, cached DRAM", trap_service.latency);
  PrintLatencyLine("PALcode-style walker, uncached DRAM", palcode_service.latency);
  report.AddRow("miss_service_mram")
      .Field("cyc_per_miss", metal_cycles)
      .LatencyFields(metal_service.latency);
  report.AddRow("miss_service_dram_cached")
      .Field("cyc_per_miss", trap_service.diff_cycles)
      .LatencyFields(trap_service.latency);
  report.AddRow("miss_service_dram_uncached")
      .Field("cyc_per_miss", palcode_service.diff_cycles)
      .LatencyFields(palcode_service.latency);

  std::printf("\nExperiment 2: I-cache pollution (app with a 2.8 KiB hot loop)\n");
  CoreConfig small_metal = metal;
  small_metal.tlb_entries = 32;
  CoreConfig small_trap = trap;
  small_trap.tlb_entries = 32;
  const PagefaultResult metal_run = RunPollution(small_metal);
  const PagefaultResult trap_run = RunPollution(small_trap);
  std::printf("%-44s %10llu icache misses, %12llu cycles (%u TLB fills)\n",
              "Metal walker in MRAM",
              static_cast<unsigned long long>(metal_run.icache_misses),
              static_cast<unsigned long long>(metal_run.cycles), metal_run.fills);
  std::printf("%-44s %10llu icache misses, %12llu cycles (%u TLB fills)\n",
              "OS trap walker, cached DRAM",
              static_cast<unsigned long long>(trap_run.icache_misses),
              static_cast<unsigned long long>(trap_run.cycles), trap_run.fills);
  std::printf(
      "\nThe MRAM walker never touches the I-cache; the trap walker keeps its\n"
      "own code resident, evicting application lines (paper §2: MRAM accesses\n"
      "\"do not alter processor caches\").\n");
  report.AddRow("pollution_mram")
      .Field("icache_misses", metal_run.icache_misses)
      .Field("cycles", metal_run.cycles)
      .Field("tlb_fills", static_cast<uint64_t>(metal_run.fills));
  report.AddRow("pollution_dram_cached")
      .Field("icache_misses", trap_run.icache_misses)
      .Field("cycles", trap_run.cycles)
      .Field("tlb_fills", static_cast<uint64_t>(trap_run.fills));
  return report.WriteIfRequested(argc, argv) ? 0 : 1;
}
