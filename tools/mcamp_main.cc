// mcamp — differential fault-injection campaign front end (src/campaign).
//
// Usage:
//   mcamp run <program.s> [options]
//
// Options:
//   --mcode FILE        install an mcode module (repeatable)
//   --mcheck-entry N    delegate machine checks to mroutine entry N
//   --storage MODE      mram | dram-cached | dram-uncached
//   --no-fast           disable decode-stage menter/mexit replacement
//   --no-fast-step      disable batched hot-path stepping
//   --no-parity         disable the MRAM parity model (the ablation arm of
//                       the parity-on/off headline experiment)
//   --watchdog N        Metal-mode watchdog budget in cycles (0 = off)
//   --target T          fault target to sweep (repeatable; default: all of
//                       mram-code mram-data mreg tlb icache dcache bus)
//   --trials N          trial budget (default 200)
//   --seed N            fault-space sampling seed (default 0)
//   --locations N       sample locations only from each structure's first N
//                       words/registers/entries/lines (0 = whole structure);
//                       focuses the fault space on the guest's live state
//   --snapshots N       golden-run fork points (default 8; 0 = cold-start)
//   --no-fork           cold-start every trial (debugging / verification)
//   --hang-factor N     hang budget = golden cycles * N (default 4, min 2)
//   --max-cycles N      golden-run cycle budget (default 50M)
//   --campaign-json F   write the campaign report JSON to F (default stdout)
//   --out DIR           harvest a self-contained repro dir per SDC under DIR
//   --trial-log         include the per-trial records array in the JSON
//
// The report is deterministic and wall-clock-free: identical inputs produce
// byte-identical campaign.json (the CI campaign smoke enforces this). Exit
// codes (src/support/exit_codes.h): 0 = campaign ran and found no silent
// data corruption, 14 = at least one SDC, 2 = usage error, 1 = runtime
// error. Human-readable reporting goes to stderr; stdout carries only the
// report JSON (when no --campaign-json file is given).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "cpu/trap.h"
#include "metal/system.h"
#include "support/exit_codes.h"
#include "support/strings.h"

using namespace msim;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mcamp run <program.s> [--mcode file.s]... [--mcheck-entry N]\n"
               "            [--storage mram|dram-cached|dram-uncached] [--no-fast]\n"
               "            [--no-fast-step] [--no-parity] [--watchdog N]\n"
               "            [--target T]... [--trials N] [--seed N] [--locations N]\n"
               "            [--snapshots N]\n"
               "            [--no-fork] [--hang-factor N] [--max-cycles N]\n"
               "            [--campaign-json FILE] [--out DIR] [--trial-log]\n");
  return kExitUsage;
}

bool ParseU64Flag(const char* flag, const std::string& text, uint64_t* out) {
  const auto value = ParseInt(text);
  if (!value || *value < 0) {
    std::fprintf(stderr, "invalid value for %s: '%s' (want a non-negative integer)\n", flag,
                 text.c_str());
    return false;
  }
  *out = static_cast<uint64_t>(*value);
  return true;
}

bool ParseStorageMode(const std::string& mode, MroutineStorage* out) {
  if (mode == "mram") {
    *out = MroutineStorage::kMram;
  } else if (mode == "dram-cached") {
    *out = MroutineStorage::kDramCached;
  } else if (mode == "dram-uncached") {
    *out = MroutineStorage::kDramUncached;
  } else {
    return false;
  }
  return true;
}

bool ParseTarget(const std::string& name, FaultTarget* out) {
  for (const FaultTarget target :
       {FaultTarget::kMramCode, FaultTarget::kMramData, FaultTarget::kMreg, FaultTarget::kTlb,
        FaultTarget::kICache, FaultTarget::kDCache, FaultTarget::kBus}) {
    if (name == FaultTargetName(target)) {
      *out = target;
      return true;
    }
  }
  return false;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Final path component, for naming guest copies inside SDC repro dirs.
std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int CmdRun(const std::vector<std::string>& args) {
  std::string program_path;
  std::vector<std::string> mcode_paths;
  CoreConfig config;
  CampaignOptions options;
  int64_t mcheck_entry = -1;
  std::string campaign_json_path;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--mcode" && i + 1 < args.size()) {
      mcode_paths.push_back(args[++i]);
    } else if (arg == "--mcheck-entry" && i + 1 < args.size()) {
      uint64_t entry = 0;
      if (!ParseU64Flag("--mcheck-entry", args[++i], &entry) || entry > 255) {
        return kExitUsage;
      }
      mcheck_entry = static_cast<int64_t>(entry);
    } else if (arg == "--storage" && i + 1 < args.size()) {
      const std::string& mode = args[++i];
      if (!ParseStorageMode(mode, &config.mroutine_storage)) {
        std::fprintf(stderr, "unknown storage mode '%s'\n", mode.c_str());
        return kExitUsage;
      }
    } else if (arg == "--no-fast") {
      config.fast_transition = false;
    } else if (arg == "--no-fast-step") {
      config.fast_step = false;
    } else if (arg == "--no-parity") {
      config.mram_parity = false;
    } else if (arg == "--watchdog" && i + 1 < args.size()) {
      if (!ParseU64Flag("--watchdog", args[++i], &config.metal_watchdog_cycles)) {
        return kExitUsage;
      }
    } else if (arg == "--target" && i + 1 < args.size()) {
      FaultTarget target;
      const std::string& name = args[++i];
      if (!ParseTarget(name, &target)) {
        std::fprintf(stderr,
                     "unknown fault target '%s' (want mram-code|mram-data|mreg|tlb|icache|"
                     "dcache|bus)\n",
                     name.c_str());
        return kExitUsage;
      }
      options.targets.push_back(target);
    } else if (arg == "--trials" && i + 1 < args.size()) {
      if (!ParseU64Flag("--trials", args[++i], &options.trials)) {
        return kExitUsage;
      }
    } else if (arg == "--seed" && i + 1 < args.size()) {
      if (!ParseU64Flag("--seed", args[++i], &options.seed)) {
        return kExitUsage;
      }
    } else if (arg == "--locations" && i + 1 < args.size()) {
      uint64_t locations = 0;
      if (!ParseU64Flag("--locations", args[++i], &locations) || locations > UINT32_MAX) {
        return kExitUsage;
      }
      options.max_location = static_cast<uint32_t>(locations);
    } else if (arg == "--snapshots" && i + 1 < args.size()) {
      uint64_t snapshots = 0;
      if (!ParseU64Flag("--snapshots", args[++i], &snapshots) || snapshots > 1024) {
        std::fprintf(stderr, "invalid value for --snapshots (want 0..1024)\n");
        return kExitUsage;
      }
      options.snapshots = static_cast<uint32_t>(snapshots);
    } else if (arg == "--no-fork") {
      options.use_forks = false;
    } else if (arg == "--hang-factor" && i + 1 < args.size()) {
      if (!ParseU64Flag("--hang-factor", args[++i], &options.hang_factor)) {
        return kExitUsage;
      }
      // The documented minimum is 2 (a factor below that cannot distinguish a
      // hang from the golden run itself). The engine used to clamp silently;
      // reject at the CLI like every other out-of-range numeric flag.
      if (options.hang_factor < 2) {
        std::fprintf(stderr, "invalid value for --hang-factor (want >= 2)\n");
        return kExitUsage;
      }
    } else if (arg == "--max-cycles" && i + 1 < args.size()) {
      if (!ParseU64Flag("--max-cycles", args[++i], &options.max_cycles)) {
        return kExitUsage;
      }
    } else if (arg == "--campaign-json" && i + 1 < args.size()) {
      campaign_json_path = args[++i];
    } else if (arg == "--out" && i + 1 < args.size()) {
      options.out_dir = args[++i];
    } else if (arg == "--trial-log") {
      options.collect_trial_records = true;
    } else if (!arg.empty() && arg[0] != '-' && program_path.empty()) {
      program_path = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return kExitUsage;
    }
  }
  if (program_path.empty()) {
    return Usage();
  }
  if (options.trials == 0) {
    std::fprintf(stderr, "invalid value for --trials: 0 (want >= 1)\n");
    return kExitUsage;
  }

  auto program_source = ReadFile(program_path);
  if (!program_source.ok()) {
    std::fprintf(stderr, "%s\n", program_source.status().ToString().c_str());
    return kExitRuntimeError;
  }
  std::vector<std::string> mcode_sources;
  for (const std::string& path : mcode_paths) {
    auto source = ReadFile(path);
    if (!source.ok()) {
      std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
      return kExitRuntimeError;
    }
    mcode_sources.push_back(std::move(*source));
  }

  // Self-contained SDC repro dirs: the guest sources ride along, and the
  // repro command refers to the local copies. Machine-check delegation is not
  // part of the replay command — an SDC is silent by definition, so no
  // machine check fires during its replay.
  options.repro_files.push_back({BaseName(program_path), *program_source});
  std::string repro_args = BaseName(program_path);
  for (size_t i = 0; i < mcode_paths.size(); ++i) {
    const std::string name = StrFormat("mcode%zu-%s", i, BaseName(mcode_paths[i]).c_str());
    options.repro_files.push_back({name, mcode_sources[i]});
    repro_args += " --mcode " + name;
  }
  if (config.mroutine_storage == MroutineStorage::kDramCached) {
    repro_args += " --storage dram-cached";
  } else if (config.mroutine_storage == MroutineStorage::kDramUncached) {
    repro_args += " --storage dram-uncached";
  }
  if (!config.fast_transition) {
    repro_args += " --no-fast";
  }
  if (!config.mram_parity) {
    repro_args += " --no-parity";
  }
  if (config.metal_watchdog_cycles != 0) {
    repro_args += StrFormat(" --watchdog %llu",
                            (unsigned long long)config.metal_watchdog_cycles);
  }
  options.repro_msim_args = repro_args;

  CampaignEngine::SystemSetup setup = [&mcode_sources, &program_source,
                                       mcheck_entry](MetalSystem& system) -> Status {
    for (const std::string& source : mcode_sources) {
      system.AddMcode(source);
    }
    if (mcheck_entry >= 0) {
      system.DelegateException(ExcCause::kMachineCheck, static_cast<uint32_t>(mcheck_entry));
    }
    return system.LoadProgramSource(*program_source);
  };

  CampaignEngine engine(config, std::move(setup), std::move(options));
  auto report = RunCampaign(engine);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return report.status().code() == ErrorCode::kFailedPrecondition ? kExitUsage
                                                                    : kExitRuntimeError;
  }

  WriteCampaignText(*report, std::cerr);
  if (campaign_json_path.empty()) {
    WriteCampaignJson(*report, std::cout);
    if (!std::cout.good()) {
      return kExitRuntimeError;
    }
  } else {
    std::ofstream out(campaign_json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", campaign_json_path.c_str());
      return kExitRuntimeError;
    }
    WriteCampaignJson(*report, out);
    out.flush();
    if (!out.good()) {
      return kExitRuntimeError;
    }
  }
  return report->sdcs.empty() ? kExitOk : kExitSdc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "run") {
    return CmdRun(args);
  }
  return Usage();
}
