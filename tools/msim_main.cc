// msim — command-line front end for the Metal simulator.
//
// Usage:
//   msim run <program.s> [--mcode file.s]... [options]   assemble + simulate
//   msim asm <file.s>                                    assemble + disassemble
//   msim table2                                          print paper Table 2
//
// Options for `run`:
//   --mcode FILE        install an mcode module (repeatable)
//   --storage MODE      mram | dram-cached | dram-uncached
//   --no-fast           disable decode-stage menter/mexit replacement
//   --max-cycles N        simulation budget (default 50M)
//   --trace-stats         print detailed pipeline statistics
//   --trace [N]           print the first N retired instructions (default 200)
//   --stats-json FILE     write run result + counters + latency histograms as JSON
//   --trace-json FILE     record structured events, export a span-aware Chrome
//                         trace JSON (causal flow arrows between spans)
//   --profile-mroutines   print per-mroutine cycle/instret breakdown
//
// Observability options (docs/observability.md):
//   --metrics-every N     sample the metric registry every N machine cycles
//                         (requires --metrics-jsonl; marks are absolute-cycle
//                         multiples, the same contract as checkpoints)
//   --metrics-jsonl FILE  streaming time-series output, one JSON object/line
//   --flight-events K     flight-recorder capacity (default 256; the recorder
//                         is armed whenever --crash-dump is given)
//
// Robustness options (docs/robustness.md):
//   --inject SPEC         inject a fault (repeatable; see src/fault/fault.h).
//                         Specs are validated against the machine: an
//                         out-of-range location, a zero-width mask or a
//                         one-shot trigger beyond the cycle budget exits 2
//   --list-fault-targets  print the fault-spec grammar and each target's
//                         valid ranges, then exit 0
//   --fault-seed N        seed for the fault-injection RNG (default 0)
//   --watchdog N          Metal-mode watchdog budget in cycles (0 = off)
//   --no-parity           disable the MRAM parity model
//   --crash-dump FILE     write a crash-dump JSON at end of run
//
// Determinism options (docs/determinism.md):
//   --checkpoint-every N  save a snapshot every N cycles (requires
//                         --checkpoint-dir; files: checkpoint-<cycle>.msnap)
//   --checkpoint-dir D    directory for checkpoint files
//   --restore FILE        resume from a snapshot (version/config validated)
//
//   msim replay <program.s> [run options] --until-divergence [replay options]
//     runs configuration A (the shared run options) in lockstep against a
//     second configuration B derived from it (--b-storage / --b-fast /
//     --b-no-fast / --b-inject / --b-fault-seed) and reports the first
//     divergence. Exit: 0 = identical, 10 = divergence, 2 = usage, 1 = error.
//
// Malformed numeric arguments exit with status 2. The program's exit code
// (from `halt rs1`) becomes the process exit code; every other outcome uses
// the shared table in src/support/exit_codes.h — 11 fatal simulation fault,
// 12 guest cycle budget exhausted, 13 evicted (SIGTERM/SIGINT wrote a final
// checkpoint when --checkpoint-dir is configured and flushed all artifacts,
// docs/robustness.md "Fleet supervision"). Human-readable output
// (status lines, statistics, profiles) goes to stderr; stdout carries only
// the simulated program's console output; JSON artifacts go to their own
// files — so piping stdout or a JSON file never picks up log interleaving.
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "cpu/core.h"
#include "fault/crash_dump.h"
#include "fault/fault.h"
#include "isa/disasm.h"
#include "metal/system.h"
#include "snap/diverge.h"
#include "snap/snapshot.h"
#include "snap/snapstream.h"
#include "support/exit_codes.h"
#include "support/strings.h"
#include "synth/designs.h"
#include "trace/flight.h"
#include "trace/json.h"
#include "trace/metrics.h"
#include "trace/profiler.h"
#include "trace/sampler.h"
#include "trace/span.h"
#include "trace/trace.h"

using namespace msim;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  msim run <program.s> [--mcode file.s]... [--storage mram|dram-cached|"
               "dram-uncached]\n"
               "           [--no-fast] [--no-fast-step] [--no-superblocks]\n"
               "           [--superblock-max-trees N] [--max-cycles N]\n"
               "           [--trace-stats] [--trace [N]]\n"
               "           [--stats-json FILE] [--trace-json FILE] [--profile-mroutines]\n"
               "           [--inject SPEC]... [--list-fault-targets] [--fault-seed N]\n"
               "           [--watchdog N] [--no-parity]\n"
               "           [--crash-dump FILE] [--flight-events K]\n"
               "           [--metrics-every N --metrics-jsonl FILE]\n"
               "           [--checkpoint-every N --checkpoint-dir D] [--restore FILE]\n"
               "  msim replay <program.s> [run options] --until-divergence\n"
               "           [--compare auto|cycle|retire] [--b-storage MODE] [--b-fast|"
               "--b-no-fast]\n"
               "           [--b-fast-step|--b-no-fast-step] [--b-superblocks|--b-no-superblocks]\n"
               "           [--b-inject SPEC]... [--b-fault-seed N] [--divergence-json FILE]\n"
               "  msim asm <file.s>\n"
               "  msim table2\n");
  return kExitUsage;
}

// Strict numeric flag parsing (support/strings.h ParseInt): rejects trailing
// junk ("100abc"), bare garbage and values that overflow, instead of the
// strtoull behaviour of silently yielding 0 or saturating.
bool ParseU64Flag(const char* flag, const std::string& text, uint64_t* out) {
  const auto value = ParseInt(text);
  if (!value || *value < 0) {
    std::fprintf(stderr, "invalid value for %s: '%s' (want a non-negative integer)\n", flag,
                 text.c_str());
    return false;
  }
  *out = static_cast<uint64_t>(*value);
  return true;
}

bool ParseStorageMode(const std::string& mode, MroutineStorage* out) {
  if (mode == "mram") {
    *out = MroutineStorage::kMram;
  } else if (mode == "dram-cached") {
    *out = MroutineStorage::kDramCached;
  } else if (mode == "dram-uncached") {
    *out = MroutineStorage::kDramUncached;
  } else {
    return false;
  }
  return true;
}

const char* ReasonName(RunResult::Reason reason) {
  switch (reason) {
    case RunResult::Reason::kHalted: return "halted";
    case RunResult::Reason::kCycleLimit: return "cycle-limit";
    case RunResult::Reason::kFatal: return "fatal";
  }
  return "unknown";
}

// Graceful stop (docs/robustness.md "Fleet supervision"): SIGTERM/SIGINT set
// a flag the run loop polls at chunk boundaries. The run then writes a final
// checkpoint (when checkpointing is configured), flushes every requested
// artifact, and exits kExitEvicted — so a supervisor's evict is lossless.
volatile std::sig_atomic_t g_stop_signal = 0;

void HandleStopSignal(int sig) { g_stop_signal = sig; }

void InstallStopHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

// How often the run loop surfaces from Core::Run to poll g_stop_signal when
// no checkpoint/metrics mark is nearer. Chunking does not change simulation
// results (the CI determinism job proves chunked == straight byte-for-byte),
// so this only bounds stop latency, ~1 ms of host time per chunk.
constexpr uint64_t kSignalPollCycles = 1u << 16;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Enumerates the core's MetricRegistry instead of hand-copying struct fields;
// every counter any component registered shows up here automatically. Written
// to stderr with the rest of the human-readable reporting: stdout is reserved
// for the simulated program's console output.
void PrintStats(Core& core) {
  const CoreStats& stats = core.stats();
  std::fprintf(stderr, "--- pipeline statistics ---\n");
  std::fprintf(stderr, "IPC %.3f (%llu instructions / %llu cycles)\n",
               stats.cycles ? (double)stats.instret / stats.cycles : 0.0,
               (unsigned long long)stats.instret, (unsigned long long)stats.cycles);
  std::ostringstream text;
  core.metrics().WriteText(text);
  std::fputs(text.str().c_str(), stderr);
}

bool WriteStatsJson(MetalSystem& system, const RunResult& result, const char* reason_name,
                    const std::string& program_path, const MroutineProfiler* profiler,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  JsonWriter json(out);
  json.BeginObject();
  json.Field("program", program_path);
  json.BeginObject("result");
  json.Field("reason", reason_name);
  json.Field("exit_code", result.exit_code);
  // Absolute machine cycles (not this invocation's delta), so a straight run
  // and a run restored from a mid-execution checkpoint report byte-identical
  // JSON (docs/determinism.md).
  json.Field("cycles", system.core().cycle());
  json.Field("instret", result.instret);
  json.EndObject();
  json.BeginObject("metrics");
  system.metrics().AppendJson(json);
  json.EndObject();
  // Latency distributions (trace/histogram.h): per-event-class service
  // latencies with p50/p90/p99/max, registered by the span sink.
  json.BeginObject("histograms");
  system.metrics().AppendHistogramsJson(json);
  json.EndObject();
  if (profiler != nullptr) {
    json.BeginObject("mroutine_profile");
    profiler->AppendJson(json, system.core().stats().cycles);
    json.EndObject();
  }
  json.EndObject();
  out << "\n";
  return out.good();
}

bool WriteTraceJson(const RingBufferSink& ring, const SpanSink* spans, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  if (ring.dropped() != 0) {
    std::fprintf(stderr, "[trace] ring buffer dropped %llu of %llu events\n",
                 (unsigned long long)ring.dropped(), (unsigned long long)ring.total());
  }
  if (spans != nullptr) {
    ExportChromeTraceWithSpans(ring.Events(), spans->Spans(), out);
  } else {
    ExportChromeTrace(ring.Events(), out);
  }
  return out.good();
}

int CmdRun(const std::vector<std::string>& args) {
  std::string program_path;
  std::vector<std::string> mcode_paths;
  CoreConfig config;
  uint64_t max_cycles = 0;
  bool trace_stats = false;
  uint64_t trace_limit = 0;
  std::string stats_json_path;
  std::string trace_json_path;
  bool profile_mroutines = false;
  std::vector<std::string> inject_specs;
  uint64_t fault_seed = 0;
  std::string crash_dump_path;
  uint64_t flight_events = FlightRecorder::kDefaultCapacity;
  uint64_t metrics_every = 0;
  std::string metrics_jsonl_path;
  uint64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  std::string restore_path;
  bool list_fault_targets = false;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--mcode" && i + 1 < args.size()) {
      mcode_paths.push_back(args[++i]);
    } else if (arg == "--storage" && i + 1 < args.size()) {
      const std::string& mode = args[++i];
      if (!ParseStorageMode(mode, &config.mroutine_storage)) {
        std::fprintf(stderr, "unknown storage mode '%s'\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--no-fast") {
      config.fast_transition = false;
    } else if (arg == "--no-fast-step") {
      config.fast_step = false;
    } else if (arg == "--no-superblocks") {
      config.superblocks = false;
    } else if (arg == "--superblock-max-trees" && i + 1 < args.size()) {
      uint64_t trees = 0;
      if (!ParseU64Flag("--superblock-max-trees", args[++i], &trees)) {
        return 2;
      }
      config.superblock_max_trees = static_cast<uint32_t>(trees);
    } else if (arg == "--max-cycles" && i + 1 < args.size()) {
      if (!ParseU64Flag("--max-cycles", args[++i], &max_cycles)) {
        return 2;
      }
    } else if (arg == "--inject" && i + 1 < args.size()) {
      inject_specs.push_back(args[++i]);
    } else if (arg == "--list-fault-targets") {
      list_fault_targets = true;
    } else if (arg == "--fault-seed" && i + 1 < args.size()) {
      if (!ParseU64Flag("--fault-seed", args[++i], &fault_seed)) {
        return 2;
      }
    } else if (arg == "--watchdog" && i + 1 < args.size()) {
      if (!ParseU64Flag("--watchdog", args[++i], &config.metal_watchdog_cycles)) {
        return 2;
      }
    } else if (arg == "--no-parity") {
      config.mram_parity = false;
    } else if (arg == "--crash-dump" && i + 1 < args.size()) {
      crash_dump_path = args[++i];
    } else if (arg == "--flight-events" && i + 1 < args.size()) {
      if (!ParseU64Flag("--flight-events", args[++i], &flight_events)) {
        return 2;
      }
      if (flight_events == 0 || flight_events > (1u << 20)) {
        std::fprintf(stderr,
                     "invalid value for --flight-events: %llu (want 1..%u)\n",
                     (unsigned long long)flight_events, 1u << 20);
        return 2;
      }
    } else if (arg == "--metrics-every" && i + 1 < args.size()) {
      if (!ParseU64Flag("--metrics-every", args[++i], &metrics_every)) {
        return 2;
      }
      if (metrics_every == 0) {
        std::fprintf(stderr, "invalid value for --metrics-every: 0 (want a cycle interval >= 1)\n");
        return 2;
      }
    } else if (arg == "--metrics-jsonl" && i + 1 < args.size()) {
      metrics_jsonl_path = args[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < args.size()) {
      if (!ParseU64Flag("--checkpoint-every", args[++i], &checkpoint_every)) {
        return 2;
      }
      if (checkpoint_every == 0) {
        std::fprintf(stderr, "invalid value for --checkpoint-every: 0 (want a cycle interval >= 1)\n");
        return 2;
      }
    } else if (arg == "--checkpoint-dir" && i + 1 < args.size()) {
      checkpoint_dir = args[++i];
    } else if (arg == "--restore" && i + 1 < args.size()) {
      restore_path = args[++i];
    } else if (arg == "--trace-stats") {
      trace_stats = true;
    } else if (arg == "--stats-json" && i + 1 < args.size()) {
      stats_json_path = args[++i];
    } else if (arg == "--trace-json" && i + 1 < args.size()) {
      trace_json_path = args[++i];
    } else if (arg == "--profile-mroutines") {
      profile_mroutines = true;
    } else if (arg == "--trace") {
      trace_limit = 200;
      if (i + 1 < args.size() && !args[i + 1].empty() && args[i + 1][0] != '-' &&
          isdigit(static_cast<unsigned char>(args[i + 1][0]))) {
        if (!ParseU64Flag("--trace", args[++i], &trace_limit)) {
          return 2;
        }
      }
    } else if (!arg.empty() && arg[0] != '-' && program_path.empty()) {
      program_path = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (list_fault_targets) {
    std::fputs(DescribeFaultTargets(config).c_str(), stdout);
    return kExitOk;
  }
  if (program_path.empty()) {
    return Usage();
  }
  if ((checkpoint_every != 0) != !checkpoint_dir.empty()) {
    std::fprintf(stderr, "--checkpoint-every and --checkpoint-dir must be given together\n");
    return 2;
  }
  if ((metrics_every != 0) != !metrics_jsonl_path.empty()) {
    std::fprintf(stderr, "--metrics-every and --metrics-jsonl must be given together\n");
    return 2;
  }

  MetalSystem system(config);
  for (const std::string& path : mcode_paths) {
    auto source = ReadFile(path);
    if (!source.ok()) {
      std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
      return 1;
    }
    system.AddMcode(*source);
  }
  auto program_source = ReadFile(program_path);
  if (!program_source.ok()) {
    std::fprintf(stderr, "%s\n", program_source.status().ToString().c_str());
    return 1;
  }
  if (Status status = system.LoadProgramSource(*program_source); !status.ok()) {
    std::fprintf(stderr, "%s: %s\n", program_path.c_str(), status.ToString().c_str());
    return 1;
  }

  // Fault injection: parse AND validate specs up front — malformed specs,
  // out-of-range locations and unreachable trigger cycles are usage errors,
  // not silently-inert runs. A restored run's budget is relative to the
  // restore point while trigger cycles are absolute, so the trigger-cycle
  // check only applies to cold starts.
  FaultEngine fault_engine(fault_seed);
  const uint64_t validate_budget =
      restore_path.empty() ? (max_cycles != 0 ? max_cycles : config.default_max_cycles) : 0;
  for (const std::string& text : inject_specs) {
    auto spec = ParseFaultSpec(text);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    if (Status status = ValidateFaultSpec(*spec, config, validate_budget); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 2;
    }
    fault_engine.AddSpec(*spec);
  }
  if (fault_engine.num_specs() != 0) {
    fault_engine.RegisterMetrics(system.core().metrics());
    system.core().SetFaultEngine(&fault_engine);
  }

  // Structured-event sinks. The ring buffer feeds the Chrome-trace export and
  // the crash dump's last-N event window; the profiler, span sink and flight
  // recorder aggregate in place. When several consumers are requested they
  // share one stream through a tee.
  RingBufferSink ring;
  MroutineProfiler profiler;
  SpanSink spans;
  FlightRecorder flight(static_cast<size_t>(flight_events));
  TeeSink tee;
  TraceSink* sink = nullptr;
  const bool want_ring = !trace_json_path.empty() || !crash_dump_path.empty();
  const bool want_profile = profile_mroutines || !stats_json_path.empty();
  const bool want_spans =
      !stats_json_path.empty() || !trace_json_path.empty() || metrics_every != 0;
  const bool want_flight = !crash_dump_path.empty();
  std::vector<TraceSink*> sinks;
  if (want_ring) {
    sinks.push_back(&ring);
  }
  if (want_profile) {
    sinks.push_back(&profiler);
  }
  if (want_spans) {
    sinks.push_back(&spans);
  }
  if (want_flight) {
    sinks.push_back(&flight);
  }
  if (sinks.size() == 1) {
    sink = sinks.front();
  } else if (!sinks.empty()) {
    for (TraceSink* consumer : sinks) {
      tee.Add(consumer);
    }
    sink = &tee;
  }
  if (sink != nullptr) {
    system.SetTraceSink(sink);
  }
  if (want_spans) {
    spans.SetWatchdogBudget(config.metal_watchdog_cycles);
    spans.RegisterMetrics(system.metrics());
  }

  uint64_t traced = 0;
  if (trace_limit != 0) {
    system.core().SetRetireTrace([&traced, trace_limit](const Core::RetireEvent& event) {
      if (traced++ >= trace_limit) {
        return;
      }
      std::fprintf(stderr, "%10llu  %c %08x  %s\n", (unsigned long long)event.cycle,
                   event.metal ? 'M' : ' ', event.pc, Disassemble(event.raw).c_str());
    });
  }

  // Restore replaces the freshly-booted machine state wholesale, so boot
  // explicitly first — MetalSystem::Run() would otherwise auto-boot on top of
  // the restored image.
  if (!restore_path.empty()) {
    if (Status status = system.Boot(); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::vector<SnapshotSection> extras;
    if (Status status = RestoreSnapshotFile(system.core(), restore_path, &extras);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      // Incompatible snapshots (wrong version / CoreConfig hash / malformed)
      // are usage errors; I/O failures are runtime errors.
      return (status.code() == ErrorCode::kFailedPrecondition ||
              status.code() == ErrorCode::kInvalidArgument)
                 ? 2
                 : 1;
    }
    for (const SnapshotSection& section : extras) {
      if (section.name == "fault") {
        SnapReader reader(section.payload);
        if (Status status = fault_engine.RestoreState(reader); !status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          return 2;
        }
      } else if (section.name == "profiler") {
        SnapReader reader(section.payload);
        if (Status status = profiler.RestoreState(reader); !status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          return 1;
        }
      } else if (section.name == "spans") {
        SnapReader reader(section.payload);
        if (Status status = spans.RestoreState(reader); !status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          return 1;
        }
      } else if (section.name == "flight") {
        SnapReader reader(section.payload);
        if (Status status = flight.RestoreState(reader); !status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          return 1;
        }
      } else if (section.name == "ring") {
        SnapReader reader(section.payload);
        if (Status status = ring.RestoreState(reader); !status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          return 1;
        }
      } else if (section.name == "superblocks") {
        SnapReader reader(section.payload);
        if (Status status = system.core().superblocks().RestoreState(reader);
            !status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          return 1;
        }
      }
    }
  }

  // Streaming metrics: opened before the run so an early fatal still leaves a
  // well-formed (possibly empty) JSONL file behind.
  std::ofstream metrics_out;
  if (metrics_every != 0) {
    metrics_out.open(metrics_jsonl_path);
    if (!metrics_out) {
      std::fprintf(stderr, "cannot write '%s'\n", metrics_jsonl_path.c_str());
      return 1;
    }
  }
  IntervalSampler sampler(metrics_every == 0 ? 1 : metrics_every, &system.metrics(),
                          metrics_every != 0 ? &metrics_out : nullptr);

  // The run is always chunked (even with no checkpoint/metrics marks) so the
  // loop can poll g_stop_signal; chunking is byte-invariant, see above.
  InstallStopHandlers();
  if (checkpoint_every != 0 && ::mkdir(checkpoint_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create checkpoint directory '%s': %s\n", checkpoint_dir.c_str(),
                 std::strerror(errno));
    return 1;
  }
  if (Status status = system.Boot(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  Core& core = system.core();
  const auto save_checkpoint = [&]() -> Status {
    std::vector<SnapshotSection> extras;
    if (fault_engine.num_specs() != 0) {
      SnapWriter writer;
      fault_engine.SaveState(writer);
      extras.push_back({"fault", writer.TakeBytes()});
    }
    if (want_profile) {
      SnapWriter writer;
      profiler.SaveState(writer);
      extras.push_back({"profiler", writer.TakeBytes()});
    }
    if (want_spans) {
      SnapWriter writer;
      spans.SaveState(writer);
      extras.push_back({"spans", writer.TakeBytes()});
    }
    if (want_flight) {
      SnapWriter writer;
      flight.SaveState(writer);
      extras.push_back({"flight", writer.TakeBytes()});
    }
    if (want_ring) {
      SnapWriter writer;
      ring.SaveState(writer);
      extras.push_back({"ring", writer.TakeBytes()});
    }
    {
      // Always present: a restored run must report the same --stats-json
      // superblock counters (and rebuild the same trace cache) as the
      // straight run, in every stepping mode. Restoring into a core with the
      // tier disabled keeps the counters and drops the traces.
      SnapWriter writer;
      core.superblocks().SaveState(writer);
      extras.push_back({"superblocks", writer.TakeBytes()});
    }
    const std::string path = StrFormat("%s/checkpoint-%llu.msnap", checkpoint_dir.c_str(),
                                       (unsigned long long)core.cycle());
    return SaveSnapshotFile(core, path, extras);
  };
  RunResult result;
  int stop_signal = 0;
  const uint64_t budget = max_cycles != 0 ? max_cycles : config.default_max_cycles;
  const uint64_t start_cycle = core.cycle();
  // Run in chunks that land exactly on the next checkpoint and/or metrics
  // mark (absolute machine cycles, so a restored run saves and samples at
  // the same marks the straight run did).
  while (!core.halted() && !core.has_fatal() && core.cycle() - start_cycle < budget) {
    if (g_stop_signal != 0) {
      stop_signal = g_stop_signal;
      break;
    }
    uint64_t next_mark = core.cycle() + kSignalPollCycles;
    if (checkpoint_every != 0) {
      next_mark = std::min(next_mark, (core.cycle() / checkpoint_every + 1) * checkpoint_every);
    }
    if (metrics_every != 0) {
      next_mark = std::min(next_mark, sampler.NextMark(core.cycle()));
    }
    const uint64_t remaining = budget - (core.cycle() - start_cycle);
    result = core.Run(std::min(next_mark - core.cycle(), remaining));
    if (core.halted() || core.has_fatal()) {
      break;
    }
    if (metrics_every != 0 && core.cycle() % metrics_every == 0) {
      sampler.SampleAt(core.cycle());
    }
    if (checkpoint_every != 0 && core.cycle() % checkpoint_every == 0) {
      if (Status status = save_checkpoint(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  const bool evicted = stop_signal != 0;
  if (evicted && checkpoint_every != 0) {
    // Final checkpoint at the eviction cycle (not necessarily a
    // --checkpoint-every mark); a resumed run still saves/samples at the
    // original absolute marks, so its artifacts stay byte-identical to an
    // uninterrupted run's.
    if (Status status = save_checkpoint(); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  // The loop's last Run() only covers the final chunk; rebuild the summary
  // for the whole invocation from core state.
  result.cycles = core.cycle() - start_cycle;
  result.instret = core.stats().instret;
  result.exit_code = core.exit_code();
  if (core.has_fatal()) {
    result.reason = RunResult::Reason::kFatal;
    result.fatal_message = core.fatal_status().message();
  } else if (core.halted()) {
    result.reason = RunResult::Reason::kHalted;
  } else {
    result.reason = RunResult::Reason::kCycleLimit;
  }
  const char* reason_name = evicted ? "evicted" : ReasonName(result.reason);
  const std::string& console = system.core().console().output();
  if (!console.empty()) {
    std::fwrite(console.data(), 1, console.size(), stdout);
  }
  if (evicted) {
    std::fprintf(stderr, "[evicted] signal=%d cycle=%llu%s\n", stop_signal,
                 (unsigned long long)core.cycle(),
                 checkpoint_every != 0 ? " (final checkpoint written)" : "");
  } else {
    switch (result.reason) {
      case RunResult::Reason::kHalted:
        std::fprintf(stderr, "[halted] exit=%u cycles=%llu instret=%llu\n", result.exit_code,
                     (unsigned long long)result.cycles, (unsigned long long)result.instret);
        break;
      case RunResult::Reason::kCycleLimit:
        std::fprintf(stderr, "[cycle limit reached] cycles=%llu\n",
                     (unsigned long long)result.cycles);
        break;
      case RunResult::Reason::kFatal:
        std::fprintf(stderr, "[fatal] %s\n", result.fatal_message.c_str());
        break;
    }
  }
  if (sink != nullptr) {
    profiler.Finalize(system.core().cycle());
    spans.Finalize(system.core().cycle());
  }
  if (trace_stats) {
    PrintStats(system.core());
  }
  if (profile_mroutines) {
    std::ostringstream text;
    profiler.WriteText(text, system.core().stats().cycles);
    std::fputs(text.str().c_str(), stderr);
  }
  bool io_ok = true;
  if (metrics_every != 0) {
    metrics_out.flush();
    io_ok &= metrics_out.good();
  }
  if (!stats_json_path.empty()) {
    io_ok &= WriteStatsJson(system, result, reason_name, program_path,
                            want_profile ? &profiler : nullptr, stats_json_path);
  }
  if (!trace_json_path.empty()) {
    io_ok &= WriteTraceJson(ring, want_spans ? &spans : nullptr, trace_json_path);
  }
  if (!crash_dump_path.empty()) {
    // Written for every outcome (the reason field records which), so fatal
    // paths are debuggable and deterministic runs diff byte-identically.
    CrashDumpOptions options;
    options.reason = reason_name;
    options.fatal_message = result.fatal_message;
    if (Status status = WriteCrashDumpFile(system.core(), want_ring ? &ring : nullptr,
                                           want_flight ? &flight : nullptr, options,
                                           crash_dump_path);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      io_ok = false;
    }
  }
  if (!io_ok) {
    return kExitRuntimeError;
  }
  if (evicted) {
    return kExitEvicted;
  }
  switch (result.reason) {
    case RunResult::Reason::kHalted:
      return static_cast<int>(result.exit_code & 0xFF);
    case RunResult::Reason::kCycleLimit:
      return kExitTimeout;
    case RunResult::Reason::kFatal:
      return kExitFatalFault;
  }
  return kExitRuntimeError;
}

// msim replay: run configuration A (the shared run options) in lockstep
// against configuration B (A plus the --b-* overrides) and report the first
// divergence. With no --b-* overrides B is an exact copy of A, which checks
// that the machine itself is deterministic.
int CmdReplay(const std::vector<std::string>& args) {
  std::string program_path;
  std::vector<std::string> mcode_paths;
  CoreConfig config_a;
  uint64_t max_cycles = 0;
  std::vector<std::string> inject_a;
  uint64_t fault_seed_a = 0;
  bool b_storage_set = false;
  MroutineStorage b_storage = MroutineStorage::kMram;
  int b_fast = -1;  // -1 = inherit A's setting, 0 = slow, 1 = fast
  int b_fast_step = -1;  // same convention, for CoreConfig::fast_step
  int b_superblocks = -1;  // same convention, for CoreConfig::superblocks
  std::vector<std::string> inject_b;
  uint64_t fault_seed_b = 0;
  bool b_seed_set = false;
  std::string compare_mode = "auto";
  std::string divergence_json_path;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--mcode" && i + 1 < args.size()) {
      mcode_paths.push_back(args[++i]);
    } else if (arg == "--storage" && i + 1 < args.size()) {
      const std::string& mode = args[++i];
      if (!ParseStorageMode(mode, &config_a.mroutine_storage)) {
        std::fprintf(stderr, "unknown storage mode '%s'\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--no-fast") {
      config_a.fast_transition = false;
    } else if (arg == "--no-fast-step") {
      config_a.fast_step = false;
    } else if (arg == "--no-superblocks") {
      config_a.superblocks = false;
    } else if (arg == "--superblock-max-trees" && i + 1 < args.size()) {
      uint64_t trees = 0;
      if (!ParseU64Flag("--superblock-max-trees", args[++i], &trees)) {
        return 2;
      }
      config_a.superblock_max_trees = static_cast<uint32_t>(trees);
    } else if (arg == "--max-cycles" && i + 1 < args.size()) {
      if (!ParseU64Flag("--max-cycles", args[++i], &max_cycles)) {
        return 2;
      }
    } else if (arg == "--inject" && i + 1 < args.size()) {
      inject_a.push_back(args[++i]);
    } else if (arg == "--fault-seed" && i + 1 < args.size()) {
      if (!ParseU64Flag("--fault-seed", args[++i], &fault_seed_a)) {
        return 2;
      }
    } else if (arg == "--watchdog" && i + 1 < args.size()) {
      if (!ParseU64Flag("--watchdog", args[++i], &config_a.metal_watchdog_cycles)) {
        return 2;
      }
    } else if (arg == "--no-parity") {
      config_a.mram_parity = false;
    } else if (arg == "--until-divergence") {
      // The only mode replay has; accepted so invocations read as intended.
    } else if (arg == "--compare" && i + 1 < args.size()) {
      compare_mode = args[++i];
      if (compare_mode != "auto" && compare_mode != "cycle" && compare_mode != "retire") {
        std::fprintf(stderr, "unknown compare mode '%s' (want auto, cycle or retire)\n",
                     compare_mode.c_str());
        return 2;
      }
    } else if (arg == "--b-storage" && i + 1 < args.size()) {
      const std::string& mode = args[++i];
      if (!ParseStorageMode(mode, &b_storage)) {
        std::fprintf(stderr, "unknown storage mode '%s'\n", mode.c_str());
        return 2;
      }
      b_storage_set = true;
    } else if (arg == "--b-fast") {
      b_fast = 1;
    } else if (arg == "--b-no-fast") {
      b_fast = 0;
    } else if (arg == "--b-fast-step") {
      b_fast_step = 1;
    } else if (arg == "--b-no-fast-step") {
      b_fast_step = 0;
    } else if (arg == "--b-superblocks") {
      b_superblocks = 1;
    } else if (arg == "--b-no-superblocks") {
      b_superblocks = 0;
    } else if (arg == "--b-inject" && i + 1 < args.size()) {
      inject_b.push_back(args[++i]);
    } else if (arg == "--b-fault-seed" && i + 1 < args.size()) {
      if (!ParseU64Flag("--b-fault-seed", args[++i], &fault_seed_b)) {
        return 2;
      }
      b_seed_set = true;
    } else if (arg == "--divergence-json" && i + 1 < args.size()) {
      divergence_json_path = args[++i];
    } else if (!arg.empty() && arg[0] != '-' && program_path.empty()) {
      program_path = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (program_path.empty()) {
    return Usage();
  }

  CoreConfig config_b = config_a;
  if (b_storage_set) {
    config_b.mroutine_storage = b_storage;
  }
  if (b_fast != -1) {
    config_b.fast_transition = (b_fast == 1);
  }
  if (b_fast_step != -1) {
    config_b.fast_step = (b_fast_step == 1);
  }
  if (b_superblocks != -1) {
    config_b.superblocks = (b_superblocks == 1);
  }

  // Cycle-granularity lockstep compares full per-cycle state digests, which
  // only lines up when both machines have identical timing. Fault injection
  // perturbs state, not timing parameters, so A-vs-A-plus-fault stays
  // cycle-comparable — that is how an injection is pinpointed to its cycle.
  const bool same_timing = config_b.mroutine_storage == config_a.mroutine_storage &&
                           config_b.fast_transition == config_a.fast_transition;
  // fast_step does not change timing (StepFast is cycle-exact), but the
  // cycle-granularity driver steps both cores per cycle and would never run
  // the hot path at all — a fast-vs-slow compare only means something at
  // retire granularity, where A is pumped through StepFast.
  const bool same_stepping = config_b.fast_step == config_a.fast_step &&
                             config_b.superblocks == config_a.superblocks;
  LockstepOptions options;
  if (compare_mode == "cycle") {
    if (!same_timing) {
      std::fprintf(stderr,
                   "--compare cycle requires identical timing configurations; B differs in "
                   "--b-storage/--b-fast, use --compare retire\n");
      return 2;
    }
    if (!same_stepping) {
      std::fprintf(stderr,
                   "--compare cycle steps both machines per cycle and would not exercise "
                   "fast_step/superblocks; use --compare retire with --b-no-fast-step or "
                   "--b-no-superblocks\n");
      return 2;
    }
    options.granularity = CompareGranularity::kCycle;
  } else if (compare_mode == "retire") {
    options.granularity = CompareGranularity::kRetire;
  } else {
    options.granularity = (same_timing && same_stepping) ? CompareGranularity::kCycle
                                                         : CompareGranularity::kRetire;
  }
  options.max_cycles = max_cycles;
  // The fast path only exists under MRAM storage (Core::IdReplacementChain),
  // so whether menter/mexit retire depends on the *effective* fast setting.
  const bool effective_fast_a =
      config_a.fast_transition && config_a.mroutine_storage == MroutineStorage::kMram;
  const bool effective_fast_b =
      config_b.fast_transition && config_b.mroutine_storage == MroutineStorage::kMram;
  options.ignore_transition_retires = effective_fast_a != effective_fast_b;
  options.metal_pc_insensitive = config_b.mroutine_storage != config_a.mroutine_storage;

  MetalSystem system_a(config_a);
  MetalSystem system_b(config_b);
  for (const std::string& path : mcode_paths) {
    auto source = ReadFile(path);
    if (!source.ok()) {
      std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
      return 1;
    }
    system_a.AddMcode(*source);
    system_b.AddMcode(*source);
  }
  auto program_source = ReadFile(program_path);
  if (!program_source.ok()) {
    std::fprintf(stderr, "%s\n", program_source.status().ToString().c_str());
    return 1;
  }
  for (MetalSystem* system : {&system_a, &system_b}) {
    if (Status status = system->LoadProgramSource(*program_source); !status.ok()) {
      std::fprintf(stderr, "%s: %s\n", program_path.c_str(), status.ToString().c_str());
      return 1;
    }
  }

  FaultEngine fault_a(fault_seed_a);
  FaultEngine fault_b(b_seed_set ? fault_seed_b : fault_seed_a);
  const uint64_t replay_budget = max_cycles != 0 ? max_cycles : config_a.default_max_cycles;
  for (const auto& [specs, engine] :
       {std::pair{&inject_a, &fault_a}, std::pair{&inject_b, &fault_b}}) {
    for (const std::string& text : *specs) {
      auto spec = ParseFaultSpec(text);
      if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return 2;
      }
      if (Status status = ValidateFaultSpec(*spec, config_a, replay_budget); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 2;
      }
      engine->AddSpec(*spec);
    }
  }
  if (fault_a.num_specs() != 0) {
    system_a.core().SetFaultEngine(&fault_a);
  }
  if (fault_b.num_specs() != 0) {
    system_b.core().SetFaultEngine(&fault_b);
  }

  auto report = RunLockstep(system_a, system_b, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  WriteDivergenceText(*report, std::cerr);
  if (!divergence_json_path.empty()) {
    std::ofstream out(divergence_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", divergence_json_path.c_str());
      return 1;
    }
    WriteDivergenceJson(*report, out);
    out << "\n";
    if (!out.good()) {
      return 1;
    }
  }
  return report->diverged ? kExitDivergence : kExitOk;
}

int CmdAsm(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return Usage();
  }
  auto source = ReadFile(args[0]);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = Assemble(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s: %s\n", args[0].c_str(), program.status().ToString().c_str());
    return 1;
  }
  std::printf("; text @ 0x%08x, %zu bytes; data @ 0x%08x, %zu bytes; entry 0x%08x\n",
              program->text.base, program->text.bytes.size(), program->data.base,
              program->data.bytes.size(), program->entry);
  for (size_t offset = 0; offset + 4 <= program->text.bytes.size(); offset += 4) {
    uint32_t word = 0;
    for (int b = 0; b < 4; ++b) {
      word |= static_cast<uint32_t>(program->text.bytes[offset + b]) << (8 * b);
    }
    const uint32_t addr = program->text.base + static_cast<uint32_t>(offset);
    // Label?
    for (const auto& [name, value] : program->symbols) {
      if (value == addr) {
        std::printf("%s:\n", name.c_str());
      }
    }
    std::printf("  %08x:  %08x  %s\n", addr, word, Disassemble(word).c_str());
  }
  for (const auto& [entry, addr] : program->metal_entries) {
    std::printf("; .mentry %u -> 0x%08x\n", entry, addr);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "run") {
    return CmdRun(args);
  }
  if (command == "replay") {
    return CmdReplay(args);
  }
  if (command == "asm") {
    return CmdAsm(args);
  }
  if (command == "table2") {
    std::printf("%s", FormatTable2(GenerateTable2()).c_str());
    return 0;
  }
  return Usage();
}
