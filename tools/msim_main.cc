// msim — command-line front end for the Metal simulator.
//
// Usage:
//   msim run <program.s> [--mcode file.s]... [options]   assemble + simulate
//   msim asm <file.s>                                    assemble + disassemble
//   msim table2                                          print paper Table 2
//
// Options for `run`:
//   --mcode FILE        install an mcode module (repeatable)
//   --storage MODE      mram | dram-cached | dram-uncached
//   --no-fast           disable decode-stage menter/mexit replacement
//   --max-cycles N        simulation budget (default 50M)
//   --trace-stats         print detailed pipeline statistics
//   --trace [N]           print the first N retired instructions (default 200)
//   --stats-json FILE     write run result + all counters as JSON
//   --trace-json FILE     record structured events, export Chrome trace JSON
//   --profile-mroutines   print per-mroutine cycle/instret breakdown
//
// Robustness options (docs/robustness.md):
//   --inject SPEC         inject a fault (repeatable; see src/fault/fault.h)
//   --fault-seed N        seed for the fault-injection RNG (default 0)
//   --watchdog N          Metal-mode watchdog budget in cycles (0 = off)
//   --no-parity           disable the MRAM parity model
//   --crash-dump FILE     write a crash-dump JSON at end of run
//
// Malformed numeric arguments exit with status 2. The program's exit code
// (from `halt rs1`) becomes the process exit code.
#include <cstdio>
#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "cpu/core.h"
#include "fault/crash_dump.h"
#include "fault/fault.h"
#include "isa/disasm.h"
#include "metal/system.h"
#include "support/strings.h"
#include "synth/designs.h"
#include "trace/json.h"
#include "trace/metrics.h"
#include "trace/profiler.h"
#include "trace/trace.h"

using namespace msim;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  msim run <program.s> [--mcode file.s]... [--storage mram|dram-cached|"
               "dram-uncached]\n"
               "           [--no-fast] [--max-cycles N] [--trace-stats] [--trace [N]]\n"
               "           [--stats-json FILE] [--trace-json FILE] [--profile-mroutines]\n"
               "           [--inject SPEC]... [--fault-seed N] [--watchdog N] [--no-parity]\n"
               "           [--crash-dump FILE]\n"
               "  msim asm <file.s>\n"
               "  msim table2\n");
  return 2;
}

// Strict numeric flag parsing (support/strings.h ParseInt): rejects trailing
// junk ("100abc"), bare garbage and values that overflow, instead of the
// strtoull behaviour of silently yielding 0 or saturating.
bool ParseU64Flag(const char* flag, const std::string& text, uint64_t* out) {
  const auto value = ParseInt(text);
  if (!value || *value < 0) {
    std::fprintf(stderr, "invalid value for %s: '%s' (want a non-negative integer)\n", flag,
                 text.c_str());
    return false;
  }
  *out = static_cast<uint64_t>(*value);
  return true;
}

const char* ReasonName(RunResult::Reason reason) {
  switch (reason) {
    case RunResult::Reason::kHalted: return "halted";
    case RunResult::Reason::kCycleLimit: return "cycle-limit";
    case RunResult::Reason::kFatal: return "fatal";
  }
  return "unknown";
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Enumerates the core's MetricRegistry instead of hand-copying struct fields;
// every counter any component registered shows up here automatically.
void PrintStats(Core& core) {
  const CoreStats& stats = core.stats();
  std::printf("--- pipeline statistics ---\n");
  std::printf("IPC %.3f (%llu instructions / %llu cycles)\n",
              stats.cycles ? (double)stats.instret / stats.cycles : 0.0,
              (unsigned long long)stats.instret, (unsigned long long)stats.cycles);
  std::ostringstream text;
  core.metrics().WriteText(text);
  std::fputs(text.str().c_str(), stdout);
}

bool WriteStatsJson(MetalSystem& system, const RunResult& result,
                    const std::string& program_path, const MroutineProfiler* profiler,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  JsonWriter json(out);
  json.BeginObject();
  json.Field("program", program_path);
  json.BeginObject("result");
  json.Field("reason", ReasonName(result.reason));
  json.Field("exit_code", result.exit_code);
  json.Field("cycles", result.cycles);
  json.Field("instret", result.instret);
  json.EndObject();
  json.BeginObject("metrics");
  system.metrics().AppendJson(json);
  json.EndObject();
  if (profiler != nullptr) {
    json.BeginObject("mroutine_profile");
    profiler->AppendJson(json, system.core().stats().cycles);
    json.EndObject();
  }
  json.EndObject();
  out << "\n";
  return out.good();
}

bool WriteTraceJson(const RingBufferSink& ring, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  if (ring.dropped() != 0) {
    std::fprintf(stderr, "[trace] ring buffer dropped %llu of %llu events\n",
                 (unsigned long long)ring.dropped(), (unsigned long long)ring.total());
  }
  ExportChromeTrace(ring.Events(), out);
  return out.good();
}

int CmdRun(const std::vector<std::string>& args) {
  std::string program_path;
  std::vector<std::string> mcode_paths;
  CoreConfig config;
  uint64_t max_cycles = 0;
  bool trace_stats = false;
  uint64_t trace_limit = 0;
  std::string stats_json_path;
  std::string trace_json_path;
  bool profile_mroutines = false;
  std::vector<std::string> inject_specs;
  uint64_t fault_seed = 0;
  std::string crash_dump_path;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--mcode" && i + 1 < args.size()) {
      mcode_paths.push_back(args[++i]);
    } else if (arg == "--storage" && i + 1 < args.size()) {
      const std::string& mode = args[++i];
      if (mode == "mram") {
        config.mroutine_storage = MroutineStorage::kMram;
      } else if (mode == "dram-cached") {
        config.mroutine_storage = MroutineStorage::kDramCached;
      } else if (mode == "dram-uncached") {
        config.mroutine_storage = MroutineStorage::kDramUncached;
      } else {
        std::fprintf(stderr, "unknown storage mode '%s'\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--no-fast") {
      config.fast_transition = false;
    } else if (arg == "--max-cycles" && i + 1 < args.size()) {
      if (!ParseU64Flag("--max-cycles", args[++i], &max_cycles)) {
        return 2;
      }
    } else if (arg == "--inject" && i + 1 < args.size()) {
      inject_specs.push_back(args[++i]);
    } else if (arg == "--fault-seed" && i + 1 < args.size()) {
      if (!ParseU64Flag("--fault-seed", args[++i], &fault_seed)) {
        return 2;
      }
    } else if (arg == "--watchdog" && i + 1 < args.size()) {
      if (!ParseU64Flag("--watchdog", args[++i], &config.metal_watchdog_cycles)) {
        return 2;
      }
    } else if (arg == "--no-parity") {
      config.mram_parity = false;
    } else if (arg == "--crash-dump" && i + 1 < args.size()) {
      crash_dump_path = args[++i];
    } else if (arg == "--trace-stats") {
      trace_stats = true;
    } else if (arg == "--stats-json" && i + 1 < args.size()) {
      stats_json_path = args[++i];
    } else if (arg == "--trace-json" && i + 1 < args.size()) {
      trace_json_path = args[++i];
    } else if (arg == "--profile-mroutines") {
      profile_mroutines = true;
    } else if (arg == "--trace") {
      trace_limit = 200;
      if (i + 1 < args.size() && !args[i + 1].empty() && args[i + 1][0] != '-' &&
          isdigit(static_cast<unsigned char>(args[i + 1][0]))) {
        if (!ParseU64Flag("--trace", args[++i], &trace_limit)) {
          return 2;
        }
      }
    } else if (!arg.empty() && arg[0] != '-' && program_path.empty()) {
      program_path = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (program_path.empty()) {
    return Usage();
  }

  MetalSystem system(config);
  for (const std::string& path : mcode_paths) {
    auto source = ReadFile(path);
    if (!source.ok()) {
      std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
      return 1;
    }
    system.AddMcode(*source);
  }
  auto program_source = ReadFile(program_path);
  if (!program_source.ok()) {
    std::fprintf(stderr, "%s\n", program_source.status().ToString().c_str());
    return 1;
  }
  if (Status status = system.LoadProgramSource(*program_source); !status.ok()) {
    std::fprintf(stderr, "%s: %s\n", program_path.c_str(), status.ToString().c_str());
    return 1;
  }

  // Fault injection: parse specs up front (malformed specs are a usage error)
  // and attach the engine so its Tick runs every cycle.
  FaultEngine fault_engine(fault_seed);
  for (const std::string& spec : inject_specs) {
    if (Status status = fault_engine.AddSpec(spec); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 2;
    }
  }
  if (fault_engine.num_specs() != 0) {
    fault_engine.RegisterMetrics(system.core().metrics());
    system.core().SetFaultEngine(&fault_engine);
  }

  // Structured-event sinks. The ring buffer feeds the Chrome-trace export and
  // the crash dump's last-N event window; the profiler aggregates in place.
  // When several consumers are requested they share one stream through a tee.
  RingBufferSink ring;
  MroutineProfiler profiler;
  TeeSink tee;
  TraceSink* sink = nullptr;
  const bool want_ring = !trace_json_path.empty() || !crash_dump_path.empty();
  const bool want_profile = profile_mroutines || !stats_json_path.empty();
  if (want_ring && want_profile) {
    tee.Add(&ring);
    tee.Add(&profiler);
    sink = &tee;
  } else if (want_ring) {
    sink = &ring;
  } else if (want_profile) {
    sink = &profiler;
  }
  if (sink != nullptr) {
    system.SetTraceSink(sink);
  }

  uint64_t traced = 0;
  if (trace_limit != 0) {
    system.core().SetRetireTrace([&traced, trace_limit](const Core::RetireEvent& event) {
      if (traced++ >= trace_limit) {
        return;
      }
      std::fprintf(stderr, "%10llu  %c %08x  %s\n", (unsigned long long)event.cycle,
                   event.metal ? 'M' : ' ', event.pc, Disassemble(event.raw).c_str());
    });
  }

  const RunResult result = system.Run(max_cycles);
  const std::string& console = system.core().console().output();
  if (!console.empty()) {
    std::fwrite(console.data(), 1, console.size(), stdout);
  }
  switch (result.reason) {
    case RunResult::Reason::kHalted:
      std::fprintf(stderr, "[halted] exit=%u cycles=%llu instret=%llu\n", result.exit_code,
                   (unsigned long long)result.cycles, (unsigned long long)result.instret);
      break;
    case RunResult::Reason::kCycleLimit:
      std::fprintf(stderr, "[cycle limit reached] cycles=%llu\n",
                   (unsigned long long)result.cycles);
      break;
    case RunResult::Reason::kFatal:
      std::fprintf(stderr, "[fatal] %s\n", result.fatal_message.c_str());
      break;
  }
  if (sink != nullptr) {
    profiler.Finalize(system.core().cycle());
  }
  if (trace_stats) {
    PrintStats(system.core());
  }
  if (profile_mroutines) {
    std::ostringstream text;
    profiler.WriteText(text, system.core().stats().cycles);
    std::fputs(text.str().c_str(), stdout);
  }
  bool io_ok = true;
  if (!stats_json_path.empty()) {
    io_ok &= WriteStatsJson(system, result, program_path,
                            want_profile ? &profiler : nullptr, stats_json_path);
  }
  if (!trace_json_path.empty()) {
    io_ok &= WriteTraceJson(ring, trace_json_path);
  }
  if (!crash_dump_path.empty()) {
    // Written for every outcome (the reason field records which), so fatal
    // paths are debuggable and deterministic runs diff byte-identically.
    CrashDumpOptions options;
    options.reason = ReasonName(result.reason);
    options.fatal_message = result.fatal_message;
    if (Status status = WriteCrashDumpFile(system.core(), want_ring ? &ring : nullptr,
                                           options, crash_dump_path);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      io_ok = false;
    }
  }
  if (!io_ok) {
    return 1;
  }
  return result.reason == RunResult::Reason::kHalted ? static_cast<int>(result.exit_code & 0xFF)
                                                     : 1;
}

int CmdAsm(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return Usage();
  }
  auto source = ReadFile(args[0]);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto program = Assemble(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s: %s\n", args[0].c_str(), program.status().ToString().c_str());
    return 1;
  }
  std::printf("; text @ 0x%08x, %zu bytes; data @ 0x%08x, %zu bytes; entry 0x%08x\n",
              program->text.base, program->text.bytes.size(), program->data.base,
              program->data.bytes.size(), program->entry);
  for (size_t offset = 0; offset + 4 <= program->text.bytes.size(); offset += 4) {
    uint32_t word = 0;
    for (int b = 0; b < 4; ++b) {
      word |= static_cast<uint32_t>(program->text.bytes[offset + b]) << (8 * b);
    }
    const uint32_t addr = program->text.base + static_cast<uint32_t>(offset);
    // Label?
    for (const auto& [name, value] : program->symbols) {
      if (value == addr) {
        std::printf("%s:\n", name.c_str());
      }
    }
    std::printf("  %08x:  %08x  %s\n", addr, word, Disassemble(word).c_str());
  }
  for (const auto& [entry, addr] : program->metal_entries) {
    std::printf("; .mentry %u -> 0x%08x\n", entry, addr);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "run") {
    return CmdRun(args);
  }
  if (command == "asm") {
    return CmdAsm(args);
  }
  if (command == "table2") {
    std::printf("%s", FormatTable2(GenerateTable2()).c_str());
    return 0;
  }
  return Usage();
}
