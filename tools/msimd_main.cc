// msimd — the fault-tolerant simulation fleet supervisor.
//
// Runs a manifest of independent msim jobs (src/fleet/manifest.h) across a
// pool of isolated worker processes with crash/hang/deadline supervision,
// checkpoint-restart retries and graceful degradation under memory pressure
// (src/fleet/scheduler.h). Writes a deterministic fleet.json report.
//
// Exit codes (support/exit_codes.h):
//   0   every job reached a successful terminal state
//   1   infrastructure failure (out dir, fork, report I/O)
//   2   usage or manifest error
//   20  at least one job ended crashed or timed-out
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fleet/manifest.h"
#include "fleet/report.h"
#include "fleet/scheduler.h"
#include "support/exit_codes.h"
#include "support/strings.h"

using namespace msim;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  msimd run <manifest.ini> [--msim PATH] [--out-dir D] [--workers N]\n"
               "            [--retries N] [--deadline-ms N] [--hang-timeout-ms N]\n"
               "            [--heartbeat-every CYCLES] [--backoff-base-ms N] "
               "[--backoff-max-ms N]\n"
               "            [--mem-limit-mb N] [--grace-ms N] [--poll-ms N]\n"
               "            [--fail-streak-throttle N] [--chaos kill|term|stop@JOB]...\n"
               "            [--fleet-json FILE|-] [--quiet]\n"
               "  msimd check <manifest.ini>\n"
               "\n"
               "--msim defaults to an 'msim' binary next to msimd; --fleet-json defaults\n"
               "to <out-dir>/fleet.json ('-' writes the report to stdout).\n");
  return kExitUsage;
}

// Strict numeric flag parsing, same contract as msim's: trailing junk, bare
// garbage and overflow are errors, never silently 0.
bool ParseU64Flag(const char* flag, const std::string& text, uint64_t* out) {
  const auto value = ParseInt(text);
  if (!value || *value < 0) {
    std::fprintf(stderr, "invalid value for %s: '%s' (want a non-negative integer)\n", flag,
                 text.c_str());
    return false;
  }
  *out = static_cast<uint64_t>(*value);
  return true;
}

// Default worker binary: 'msim' in the directory msimd was invoked from.
std::string DefaultMsimPath(const char* argv0) {
  const std::string self(argv0);
  const size_t slash = self.rfind('/');
  return slash == std::string::npos ? "msim" : self.substr(0, slash + 1) + "msim";
}

int RunFleet(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string manifest_path = argv[2];
  FleetOptions options;
  options.msim_path = DefaultMsimPath(argv[0]);
  std::string fleet_json;

  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--msim") {
      const char* v = next("--msim");
      if (v == nullptr) return Usage();
      options.msim_path = v;
    } else if (arg == "--out-dir") {
      const char* v = next("--out-dir");
      if (v == nullptr) return Usage();
      options.out_dir = v;
    } else if (arg == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr || !ParseU64Flag("--workers", v, &options.workers)) return Usage();
      if (options.workers == 0) {
        std::fprintf(stderr, "--workers must be >= 1\n");
        return Usage();
      }
    } else if (arg == "--retries") {
      const char* v = next("--retries");
      if (v == nullptr || !ParseU64Flag("--retries", v, &options.retries)) return Usage();
    } else if (arg == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (v == nullptr || !ParseU64Flag("--deadline-ms", v, &options.deadline_ms)) return Usage();
    } else if (arg == "--hang-timeout-ms") {
      const char* v = next("--hang-timeout-ms");
      if (v == nullptr || !ParseU64Flag("--hang-timeout-ms", v, &options.hang_timeout_ms)) {
        return Usage();
      }
    } else if (arg == "--heartbeat-every") {
      const char* v = next("--heartbeat-every");
      if (v == nullptr ||
          !ParseU64Flag("--heartbeat-every", v, &options.heartbeat_every_cycles)) {
        return Usage();
      }
    } else if (arg == "--backoff-base-ms") {
      const char* v = next("--backoff-base-ms");
      if (v == nullptr || !ParseU64Flag("--backoff-base-ms", v, &options.backoff.base_ms)) {
        return Usage();
      }
    } else if (arg == "--backoff-max-ms") {
      const char* v = next("--backoff-max-ms");
      if (v == nullptr || !ParseU64Flag("--backoff-max-ms", v, &options.backoff.max_ms)) {
        return Usage();
      }
    } else if (arg == "--mem-limit-mb") {
      const char* v = next("--mem-limit-mb");
      if (v == nullptr || !ParseU64Flag("--mem-limit-mb", v, &options.mem_limit_mb)) {
        return Usage();
      }
    } else if (arg == "--grace-ms") {
      const char* v = next("--grace-ms");
      if (v == nullptr || !ParseU64Flag("--grace-ms", v, &options.grace_ms)) return Usage();
    } else if (arg == "--poll-ms") {
      const char* v = next("--poll-ms");
      if (v == nullptr || !ParseU64Flag("--poll-ms", v, &options.poll_ms)) return Usage();
      if (options.poll_ms == 0) {
        options.poll_ms = 1;
      }
    } else if (arg == "--fail-streak-throttle") {
      const char* v = next("--fail-streak-throttle");
      if (v == nullptr ||
          !ParseU64Flag("--fail-streak-throttle", v, &options.fail_streak_throttle)) {
        return Usage();
      }
    } else if (arg == "--chaos") {
      const char* v = next("--chaos");
      if (v == nullptr) return Usage();
      options.chaos.push_back(v);
    } else if (arg == "--fleet-json") {
      const char* v = next("--fleet-json");
      if (v == nullptr) return Usage();
      fleet_json = v;
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }

  auto jobs = LoadManifestFile(manifest_path);
  if (!jobs.ok()) {
    std::fprintf(stderr, "msimd: %s\n", jobs.status().message().c_str());
    return kExitUsage;
  }
  if (fleet_json.empty()) {
    fleet_json = options.out_dir + "/fleet.json";
  }

  FleetSupervisor fleet(std::move(*jobs), std::move(options));
  if (const Status status = fleet.Run(); !status.ok()) {
    std::fprintf(stderr, "msimd: %s\n", status.message().c_str());
    return status.code() == ErrorCode::kInvalidArgument || status.code() == ErrorCode::kParseError
               ? kExitUsage
               : kExitRuntimeError;
  }

  if (fleet_json == "-") {
    WriteFleetJson(fleet, std::cout);
  } else {
    std::ofstream out(fleet_json, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "msimd: cannot write %s\n", fleet_json.c_str());
      return kExitRuntimeError;
    }
    WriteFleetJson(fleet, out);
  }

  const int exit_code = fleet.SuggestedExitCode();
  if (fleet.options().verbose) {
    uint64_t succeeded = 0;
    for (const JobRecord& record : fleet.records()) {
      succeeded += record.outcome == JobOutcome::kOk || record.outcome == JobOutcome::kRetriedOk ||
                           record.outcome == JobOutcome::kEvictedOk
                       ? 1
                       : 0;
    }
    std::fprintf(stderr, "[fleet] done: %llu/%zu jobs succeeded, report in %s\n",
                 (unsigned long long)succeeded, fleet.records().size(),
                 fleet_json == "-" ? "stdout" : fleet_json.c_str());
  }
  return exit_code;
}

int CheckManifest(int argc, char** argv) {
  if (argc != 3) {
    return Usage();
  }
  const auto jobs = LoadManifestFile(argv[2]);
  if (!jobs.ok()) {
    std::fprintf(stderr, "msimd: %s\n", jobs.status().message().c_str());
    return kExitUsage;
  }
  std::printf("%zu job(s) ok\n", jobs->size());
  for (const JobSpec& job : *jobs) {
    std::printf("  %s: %s%s\n", job.name.c_str(), job.program.c_str(),
                job.checkpoint_every != 0 ? " (checkpointed)" : "");
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "run") {
    return RunFleet(argc, argv);
  }
  if (command == "check") {
    return CheckManifest(argc, argv);
  }
  return Usage();
}
