// mfuzz — differential fuzzer for the Metal simulator (docs/determinism.md).
//
// Generates random (but always well-formed) programs plus mcode modules,
// biased toward the paper's hot constructs — menter/mexit transitions,
// mld/mst, rmr/wmr, TLB ops and instruction-interception toggles — and uses
// the lockstep comparator (src/snap/diverge.h) as the oracle:
//
//   determinism  two machines with identical configuration, compared per
//                cycle by full state digest — any divergence is a real
//                nondeterminism bug in the simulator;
//   storage      MRAM vs. DRAM-cached mroutine storage, compared by retire
//                stream (Metal-mode pc-insensitive): storage mode must be
//                architecturally invisible;
//   fast         fast vs. slow menter/mexit transitions, compared by retire
//                stream with transition retires canonicalized away.
//
// A fourth oracle, `injection` (not part of `all` — it tests the machine's
// fault detection, not the simulator's determinism), runs each generated
// program clean to get a golden outcome, derives one deterministic pinned
// fault from the case seed (MRAM code/data word or cache tag — the targets
// the machine claims to detect or tolerate), reruns with the fault injected
// and classifies the divergence with the campaign classifier
// (src/campaign). A run whose final architectural state differs from golden
// with no machine check raised is silent data corruption: mfuzz pinpoints
// the first divergent cycle by lockstep, writes a repro directory and exits
// 14. With MRAM parity on, a finding is a real detection hole; pass
// --no-parity to watch the oracle light up on the unprotected machine.
//
// On a failure mfuzz writes a self-contained repro directory (program.s,
// mcode.s, divergence.json, repro.sh), shrinks same-config divergences by
// checkpoint bisection (the latest snapshot from which the divergence still
// reproduces bounds the window the bug lives in), and exits 10.
//
// Usage:
//   mfuzz [--seed N] [--runs N] [--time-budget-seconds N] [--max-cycles N]
//         [--oracle all|determinism|storage|fast|faststep|injection]
//         [--no-parity] [--out DIR]
//
// Exit: 0 = all runs clean, 10 = divergence found, 14 = silent data
// corruption found (injection oracle), 2 = usage, 1 = error. All reporting
// goes to stderr; artifacts go to --out (default mfuzz-out).
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "fault/fault.h"
#include "metal/system.h"
#include "snap/diverge.h"
#include "snap/snapshot.h"
#include "support/exit_codes.h"
#include "support/rng.h"
#include "support/strings.h"

using namespace msim;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: mfuzz [--seed N] [--runs N] [--time-budget-seconds N] "
               "[--max-cycles N]\n"
               "             [--oracle all|determinism|storage|fast|faststep|superblock|"
               "injection]\n"
               "             [--no-parity] [--out DIR]\n");
  return kExitUsage;
}

bool ParseU64Flag(const char* flag, const std::string& text, uint64_t* out) {
  const auto value = ParseInt(text);
  if (!value || *value < 0) {
    std::fprintf(stderr, "invalid value for %s: '%s' (want a non-negative integer)\n", flag,
                 text.c_str());
    return false;
  }
  *out = static_cast<uint64_t>(*value);
  return true;
}

// ---------------------------------------------------------------------------
// Program generation. Everything emitted is well-formed by construction:
// branches only target labels the generator itself laid down, loops are
// bounded by a dedicated counter register, Metal-only instructions appear
// only inside mroutines, and mcode never embeds an absolute code address —
// so the same source assembles to the same words under every storage mode.
// ---------------------------------------------------------------------------

struct GeneratedCase {
  std::string mcode;
  std::string program;
  unsigned num_entries = 0;
};

// Registers the generator scribbles on. t6 holds the scratch-data base and
// s11 the loop counter, so neither appears in the pool.
const char* const kPool[] = {"t0", "t1", "t2", "t3", "t4", "t5", "s2", "s3", "s4", "s5"};
constexpr size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

const char* PickReg(Rng& rng) { return kPool[rng.Below(kPoolSize)]; }

void EmitAlu(Rng& rng, std::string& out) {
  static const char* const kOps3[] = {"add", "sub", "xor", "or", "and", "sll", "srl"};
  static const char* const kOpsImm[] = {"addi", "xori", "ori", "andi"};
  switch (rng.Below(3)) {
    case 0:
      out += StrFormat("  %s %s, %s, %s\n", kOps3[rng.Below(7)], PickReg(rng), PickReg(rng),
                       PickReg(rng));
      break;
    case 1:
      out += StrFormat("  %s %s, %s, %d\n", kOpsImm[rng.Below(4)], PickReg(rng), PickReg(rng),
                       (int)rng.Range(0, 4094) - 2047);
      break;
    default:
      out += StrFormat("  li %s, 0x%08x\n", PickReg(rng), rng.Next32());
      break;
  }
}

// One instruction of an mroutine body. Biased toward the Metal register file
// and MRAM data segment; rcr sticks to the always-safe trap-context cregs
// (reading cycle/instret would make timing architecturally visible and
// legitimately diverge across storage modes).
void EmitMetalInstr(Rng& rng, std::string& out) {
  switch (rng.Below(10)) {
    case 0:
    case 1:
      out += StrFormat("  rmr %s, m%u\n", PickReg(rng), (unsigned)rng.Below(32));
      break;
    case 2:
    case 3:
      // m31 is the mexit retry-pc control; writing it at random could re-run
      // an intercepted instruction with interception still armed.
      out += StrFormat("  wmr m%u, %s\n", (unsigned)rng.Below(31), PickReg(rng));
      break;
    case 4:
      out += StrFormat("  mld %s, %u(zero)\n", PickReg(rng), (unsigned)rng.Below(256) * 4);
      break;
    case 5:
      out += StrFormat("  mst %s, %u(zero)\n", PickReg(rng), (unsigned)rng.Below(256) * 4);
      break;
    case 6:
      out += StrFormat("  rcr %s, %u\n", PickReg(rng), (unsigned)rng.Below(5));
      break;
    case 7:
      switch (rng.Below(3)) {
        case 0:
          out += StrFormat("  tlbwr %s, %s\n", PickReg(rng), PickReg(rng));
          break;
        case 1:
          out += StrFormat("  tlbrd %s, %s\n", PickReg(rng), PickReg(rng));
          break;
        default:
          out += StrFormat("  tlbinv %s\n", PickReg(rng));
          break;
      }
      break;
    default:
      EmitAlu(rng, out);
      break;
  }
}

GeneratedCase Generate(uint64_t seed) {
  Rng rng(seed);
  GeneratedCase result;
  result.num_entries = (unsigned)rng.Range(2, 4);
  const bool use_intercept = rng.Chance(1, 2);
  // Entry num_entries is the interception handler (a plain generated routine).
  const unsigned handler = result.num_entries;
  const unsigned opcode = rng.Chance(1, 2) ? 0x03u : 0x23u;  // loads or stores

  for (unsigned entry = 1; entry <= result.num_entries; ++entry) {
    result.mcode += StrFormat("  .mentry %u, routine%u\nroutine%u:\n", entry, entry, entry);
    if (use_intercept && entry == 1) {
      // Arm slot 0; a later toggle may disarm it again (clearing bit 31).
      result.mcode += StrFormat("  li t0, 0x%08x\n  li t1, %u\n  mintset t0, t1\n",
                                0x80000000u | opcode, handler);
    }
    const unsigned body = (unsigned)rng.Range(4, 12);
    for (unsigned i = 0; i < body; ++i) {
      EmitMetalInstr(rng, result.mcode);
    }
    if (use_intercept && rng.Chance(1, 4)) {
      result.mcode += StrFormat("  li t0, 0x%08x\n  li t1, %u\n  mintset t0, t1\n",
                                rng.Chance(1, 2) ? (0x80000000u | opcode) : opcode, handler);
    }
    result.mcode += "  mexit\n";
  }

  result.program += "_start:\n  la t6, scratch\n";
  const unsigned blocks = (unsigned)rng.Range(5, 12);
  unsigned next_label = 0;
  for (unsigned b = 0; b < blocks; ++b) {
    switch (rng.Below(7)) {
      case 0: {  // bounded loop, body may re-enter Metal mode (the hot path)
        const unsigned label = next_label++;
        result.program += StrFormat("  li s11, %u\nloop%u:\n", (unsigned)rng.Range(2, 8), label);
        const unsigned body = (unsigned)rng.Range(1, 3);
        for (unsigned i = 0; i < body; ++i) {
          if (rng.Chance(1, 3)) {
            result.program +=
                StrFormat("  menter %u\n", (unsigned)rng.Range(1, result.num_entries));
          } else {
            EmitAlu(rng, result.program);
          }
        }
        result.program += StrFormat("  addi s11, s11, -1\n  bnez s11, loop%u\n", label);
        break;
      }
      case 1:  // Metal transition
        result.program += StrFormat("  menter %u\n", (unsigned)rng.Range(1, result.num_entries));
        break;
      case 2:  // scratch-memory traffic (interception targets these, too)
        if (rng.Chance(1, 2)) {
          result.program +=
              StrFormat("  sw %s, %u(t6)\n", PickReg(rng), (unsigned)rng.Below(16) * 4);
        } else {
          result.program +=
              StrFormat("  lw %s, %u(t6)\n", PickReg(rng), (unsigned)rng.Below(16) * 4);
        }
        break;
      case 3: {  // load/store-dense straight-line run: every width, mixed
                 // with occasional immediate load-use pairs so superblock
                 // memory slots exercise both the non-stall dispatch and the
                 // skid/stall path (docs/performance.md).
        static const struct {
          const char* op;
          unsigned width;
          bool store;
        } kMemOps[] = {{"lb", 1, false}, {"lbu", 1, false}, {"lh", 2, false},
                       {"lhu", 2, false}, {"lw", 4, false}, {"sb", 1, true},
                       {"sh", 2, true},  {"sw", 4, true}};
        const unsigned count = (unsigned)rng.Range(4, 10);
        for (unsigned i = 0; i < count; ++i) {
          const auto& m = kMemOps[rng.Below(8)];
          const unsigned offset = (unsigned)rng.Below(64 / m.width) * m.width;
          const char* reg = PickReg(rng);
          result.program += StrFormat("  %s %s, %u(t6)\n", m.op, reg, offset);
          if (!m.store && rng.Chance(1, 3)) {
            result.program += StrFormat("  add %s, %s, %s\n", PickReg(rng), reg, reg);
          }
        }
        break;
      }
      case 4: {  // store aliasing the code segment: the target words sit
                 // behind the program counter (nothing branches back to
                 // _start), so executed semantics are unchanged — but the
                 // predecode cache and any superblock trace built over those
                 // words must invalidate on the write-generation bump.
        static const struct {
          const char* op;
          unsigned width;
        } kStores[] = {{"sb", 1}, {"sh", 2}, {"sw", 4}};
        const auto& s = kStores[rng.Below(3)];
        const unsigned offset = (unsigned)rng.Below(8 / s.width) * s.width;
        result.program += StrFormat("  la s10, _start\n  %s %s, %u(s10)\n", s.op,
                                    PickReg(rng), offset);
        break;
      }
      default: {
        const unsigned count = (unsigned)rng.Range(1, 3);
        for (unsigned i = 0; i < count; ++i) {
          EmitAlu(rng, result.program);
        }
        break;
      }
    }
  }
  result.program += StrFormat("  li a0, %u\n  halt a0\n", (unsigned)rng.Below(256));
  result.program += ".data\nscratch:\n";
  for (int i = 0; i < 16; ++i) {
    result.program += StrFormat("  .word 0x%08x\n", rng.Next32());
  }
  return result;
}

// ---------------------------------------------------------------------------
// Oracles.
// ---------------------------------------------------------------------------

struct Oracle {
  const char* name;
  CoreConfig config_a;
  CoreConfig config_b;
  LockstepOptions options;
};

std::vector<Oracle> BuildOracles(const std::string& which, const CoreConfig& base,
                                 uint64_t max_cycles) {
  std::vector<Oracle> oracles;
  if (which == "all" || which == "determinism") {
    Oracle o{"determinism", base, base, {}};
    o.options.granularity = CompareGranularity::kCycle;
    o.options.max_cycles = max_cycles;
    oracles.push_back(o);
  }
  if (which == "all" || which == "storage") {
    Oracle o{"storage", base, base, {}};
    o.config_b.mroutine_storage = MroutineStorage::kDramCached;
    o.options.granularity = CompareGranularity::kRetire;
    o.options.max_cycles = max_cycles;
    o.options.metal_pc_insensitive = true;
    // Fast transitions only exist under MRAM storage (core.cc
    // IdReplacementChain), so the storage change also flips whether
    // menter/mexit retire.
    o.options.ignore_transition_retires = true;
    oracles.push_back(o);
  }
  if (which == "all" || which == "fast") {
    Oracle o{"fast", base, base, {}};
    o.config_b.fast_transition = false;
    o.options.granularity = CompareGranularity::kRetire;
    o.options.max_cycles = max_cycles;
    o.options.ignore_transition_retires = true;
    oracles.push_back(o);
  }
  if (which == "all" || which == "faststep") {
    // Hot-path stepping vs per-cycle reference. No canonicalization: StepFast
    // is byte-exact, so every retire (cycle included) must match. Retire
    // granularity because the per-cycle driver would never run the hot path.
    Oracle o{"faststep", base, base, {}};
    o.config_b.fast_step = false;
    o.options.granularity = CompareGranularity::kRetire;
    o.options.max_cycles = max_cycles;
    oracles.push_back(o);
  }
  if (which == "all" || which == "superblock") {
    // Superblock trace execution vs the plain fast-step window. Byte-exact
    // like faststep: no canonicalization, every retire (cycle included) must
    // match. Catches trace-build, chaining and invalidation bugs that the
    // faststep oracle would attribute to the whole hot path.
    Oracle o{"superblock", base, base, {}};
    o.config_b.superblocks = false;
    o.options.granularity = CompareGranularity::kRetire;
    o.options.max_cycles = max_cycles;
    oracles.push_back(o);
  }
  return oracles;
}

Status BuildSystem(MetalSystem& system, const GeneratedCase& c) {
  system.AddMcode(c.mcode);
  MSIM_RETURN_IF_ERROR(system.LoadProgramSource(c.program));
  return system.Boot();
}

// Shrinks a same-config cycle-granularity divergence by checkpoint bisection:
// finds the latest cycle S from which a snapshot of the reference machine,
// restored into both sides, still reproduces the divergence. The returned
// window [S, diverge_cycle] is the smallest state-context the bug needs.
Result<uint64_t> ShrinkByCheckpointBisection(const GeneratedCase& c, const Oracle& oracle,
                                             uint64_t diverge_cycle) {
  uint64_t lo = 0;  // known-reproducing snapshot cycle
  uint64_t hi = diverge_cycle;
  while (lo + 1 < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    MetalSystem reference(oracle.config_a);
    MSIM_RETURN_IF_ERROR(BuildSystem(reference, c));
    reference.core().Run(mid);
    if (reference.core().cycle() != mid || reference.core().halted()) {
      hi = mid;  // machine never reaches mid cleanly; try earlier
      continue;
    }
    const std::vector<uint8_t> image = SaveSnapshot(reference.core());
    MetalSystem a(oracle.config_a);
    MetalSystem b(oracle.config_b);
    MSIM_RETURN_IF_ERROR(BuildSystem(a, c));
    MSIM_RETURN_IF_ERROR(BuildSystem(b, c));
    MSIM_RETURN_IF_ERROR(RestoreSnapshot(a.core(), image));
    MSIM_RETURN_IF_ERROR(RestoreSnapshot(b.core(), image));
    LockstepOptions options = oracle.options;
    options.max_cycles = diverge_cycle - mid + 16;
    MSIM_ASSIGN_OR_RETURN(const DivergenceReport report, RunLockstep(a, b, options));
    if (report.diverged) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  return out.good();
}

int WriteArtifacts(const std::string& out_dir, uint64_t seed, const char* oracle_name,
                   const GeneratedCase& c, const DivergenceReport& report,
                   uint64_t max_cycles) {
  if (::mkdir(out_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create '%s': %s\n", out_dir.c_str(), std::strerror(errno));
    return 1;
  }
  const std::string dir = StrFormat("%s/case-%llu-%s", out_dir.c_str(),
                                    (unsigned long long)seed, oracle_name);
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create '%s': %s\n", dir.c_str(), std::strerror(errno));
    return 1;
  }
  bool ok = WriteTextFile(dir + "/program.s", c.program);
  ok &= WriteTextFile(dir + "/mcode.s", c.mcode);
  {
    std::ofstream out(dir + "/divergence.json");
    WriteDivergenceJson(report, out);
    out << "\n";
    ok &= out.good();
  }
  // A repro that needs only the msim CLI, not mfuzz or the seed.
  std::string repro = "#!/bin/sh\n# Reproduces the divergence found by mfuzz.\n";
  const char* b_flags = "";
  if (std::strcmp(oracle_name, "storage") == 0) {
    b_flags = " --b-storage dram-cached";
  } else if (std::strcmp(oracle_name, "fast") == 0) {
    b_flags = " --b-no-fast";
  } else if (std::strcmp(oracle_name, "faststep") == 0) {
    b_flags = " --b-no-fast-step";
  } else if (std::strcmp(oracle_name, "superblock") == 0) {
    b_flags = " --b-no-superblocks";
  }
  repro += StrFormat(
      "exec msim replay program.s --mcode mcode.s --until-divergence%s --max-cycles %llu\n",
      b_flags, (unsigned long long)max_cycles);
  ok &= WriteTextFile(dir + "/repro.sh", repro);
  ::chmod((dir + "/repro.sh").c_str(), 0755);
  if (!ok) {
    std::fprintf(stderr, "failed writing artifacts under '%s'\n", dir.c_str());
    return 1;
  }
  std::fprintf(stderr, "[mfuzz] artifacts: %s\n", dir.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Injection oracle (src/campaign): golden run vs. one seeded fault.
// ---------------------------------------------------------------------------

// One fully pinned fault spec derived from the case seed. Targets are the
// structures the machine claims to detect (MRAM words, via parity) or
// tolerate (cache tags, timing-only); the silent-by-design targets (mreg,
// tlb, bus) would trivially "find" corruption the architecture never
// promised to catch. MRAM locations are drawn from the first 256 words —
// the region the generator's mld/mst traffic and mcode actually occupy —
// so faults land on live state instead of measuring dead space.
FaultSpec DeriveInjectionSpec(uint64_t seed, const CoreConfig& config, uint64_t golden_cycles) {
  static const FaultTarget kTargets[] = {FaultTarget::kMramCode, FaultTarget::kMramData,
                                         FaultTarget::kICache, FaultTarget::kDCache};
  Rng rng(seed ^ 0xFA17ull);
  FaultSpec spec;
  spec.target = kTargets[rng.Below(4)];
  spec.cycle = rng.Range(1, golden_cycles - 1);
  const uint32_t capacity =
      std::min(FaultTargetCapacity(spec.target, config), UINT32_C(256));
  const uint32_t location = static_cast<uint32_t>(rng.Below(capacity));
  const uint32_t bit = static_cast<uint32_t>(rng.Below(32));
  spec.has_at = true;
  spec.at = (spec.target == FaultTarget::kMramCode || spec.target == FaultTarget::kMramData)
                ? location * 4
                : location;
  spec.mask = 1u << bit;
  spec.text = StrFormat("%s@%llu:at=%u,bit=%u", FaultTargetName(spec.target),
                        (unsigned long long)spec.cycle, spec.at, bit);
  return spec;
}

int WriteInjectionArtifacts(const std::string& out_dir, uint64_t seed, const GeneratedCase& c,
                            const FaultSpec& spec, const DivergenceReport& report,
                            uint64_t budget, const CoreConfig& config) {
  if (::mkdir(out_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create '%s': %s\n", out_dir.c_str(), std::strerror(errno));
    return 1;
  }
  const std::string dir =
      StrFormat("%s/case-%llu-injection", out_dir.c_str(), (unsigned long long)seed);
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create '%s': %s\n", dir.c_str(), std::strerror(errno));
    return 1;
  }
  bool ok = WriteTextFile(dir + "/program.s", c.program);
  ok &= WriteTextFile(dir + "/mcode.s", c.mcode);
  ok &= WriteTextFile(dir + "/spec.txt", spec.text + "\n");
  {
    std::ofstream out(dir + "/divergence.json");
    WriteDivergenceJson(report, out);
    out << "\n";
    ok &= out.good();
  }
  std::string repro =
      "#!/bin/sh\n# Replays the silent data corruption found by the mfuzz injection oracle:\n"
      "# machine B runs with the fault injected, machine A clean, compared per cycle.\n"
      "cd \"$(dirname \"$0\")\"\n";
  repro += StrFormat(
      "exec \"${MSIM:-msim}\" replay program.s --mcode mcode.s --until-divergence%s "
      "--b-inject '%s' --max-cycles %llu\n",
      config.mram_parity ? "" : " --no-parity", spec.text.c_str(), (unsigned long long)budget);
  ok &= WriteTextFile(dir + "/repro.sh", repro);
  ::chmod((dir + "/repro.sh").c_str(), 0755);
  if (!ok) {
    std::fprintf(stderr, "failed writing artifacts under '%s'\n", dir.c_str());
    return 1;
  }
  std::fprintf(stderr, "[mfuzz] artifacts: %s\n", dir.c_str());
  return 0;
}

// One injection case: clean golden run, one injected rerun, campaign
// classification. Returns true when the case is a finding (an SDC — silent
// architectural divergence with no machine check), after pinpointing the
// first divergent cycle and writing the repro directory.
Result<bool> RunInjectionCase(uint64_t seed, const GeneratedCase& c, const CoreConfig& config,
                              uint64_t max_cycles, const std::string& out_dir) {
  MetalSystem golden_sys(config);
  MSIM_RETURN_IF_ERROR(BuildSystem(golden_sys, c));
  golden_sys.core().Run(max_cycles);
  if (!golden_sys.core().halted() || golden_sys.core().has_fatal()) {
    // Generated programs are bounded by construction; a clean run that does
    // not halt is a generator problem, not a detection hole — skip the case.
    std::fprintf(stderr, "[mfuzz] seed %llu: clean run did not halt in %llu cycles, skipping\n",
                 (unsigned long long)seed, (unsigned long long)max_cycles);
    return false;
  }
  const ArchOutcome golden = CaptureArchOutcome(golden_sys.core());
  if (golden.cycles < 4) {
    return false;  // no live cycle range to inject into
  }

  const FaultSpec spec = DeriveInjectionSpec(seed, config, golden.cycles);
  const uint64_t budget = golden.cycles * 4;

  MetalSystem trial_sys(config);
  MSIM_RETURN_IF_ERROR(BuildSystem(trial_sys, c));
  FaultEngine engine(0);
  engine.AddSpec(spec);
  trial_sys.core().SetFaultEngine(&engine);
  trial_sys.core().Run(budget);
  const TrialOutcome outcome = ClassifyTrial(golden, CaptureArchOutcome(trial_sys.core()));
  if (outcome != TrialOutcome::kSdc) {
    if (outcome != TrialOutcome::kMasked) {
      std::fprintf(stderr, "[mfuzz] seed %llu oracle injection: %s (%s)\n",
                   (unsigned long long)seed, TrialOutcomeName(outcome), spec.text.c_str());
    }
    return false;
  }

  std::fprintf(stderr, "[mfuzz] seed %llu oracle injection: SILENT DATA CORRUPTION (%s)\n",
               (unsigned long long)seed, spec.text.c_str());
  MetalSystem a(config);
  MetalSystem b(config);
  MSIM_RETURN_IF_ERROR(BuildSystem(a, c));
  MSIM_RETURN_IF_ERROR(BuildSystem(b, c));
  FaultEngine pin_engine(0);
  pin_engine.AddSpec(spec);
  b.core().SetFaultEngine(&pin_engine);
  LockstepOptions options;
  options.granularity = CompareGranularity::kCycle;
  options.max_cycles = budget;
  MSIM_ASSIGN_OR_RETURN(const DivergenceReport report, RunLockstep(a, b, options));
  WriteDivergenceText(report, std::cerr);
  if (WriteInjectionArtifacts(out_dir, seed, c, spec, report, budget, config) != 0) {
    return Internal("failed writing injection artifacts");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t base_seed = 1;
  uint64_t runs = 0;
  uint64_t time_budget_seconds = 0;
  uint64_t max_cycles = 200000;
  std::string oracle_name = "all";
  std::string out_dir = "mfuzz-out";
  bool no_parity = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--seed" && i + 1 < args.size()) {
      if (!ParseU64Flag("--seed", args[++i], &base_seed)) {
        return 2;
      }
    } else if (arg == "--runs" && i + 1 < args.size()) {
      if (!ParseU64Flag("--runs", args[++i], &runs)) {
        return 2;
      }
    } else if (arg == "--time-budget-seconds" && i + 1 < args.size()) {
      if (!ParseU64Flag("--time-budget-seconds", args[++i], &time_budget_seconds)) {
        return 2;
      }
    } else if (arg == "--max-cycles" && i + 1 < args.size()) {
      if (!ParseU64Flag("--max-cycles", args[++i], &max_cycles)) {
        return 2;
      }
    } else if (arg == "--oracle" && i + 1 < args.size()) {
      oracle_name = args[++i];
      if (oracle_name != "all" && oracle_name != "determinism" && oracle_name != "storage" &&
          oracle_name != "fast" && oracle_name != "faststep" && oracle_name != "superblock" &&
          oracle_name != "injection") {
        std::fprintf(stderr,
                     "unknown oracle '%s' (want all, determinism, storage, fast, faststep, "
                     "superblock or injection)\n",
                     oracle_name.c_str());
        return 2;
      }
    } else if (arg == "--no-parity") {
      no_parity = true;
    } else if (arg == "--out" && i + 1 < args.size()) {
      out_dir = args[++i];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (runs == 0 && time_budget_seconds == 0) {
    runs = 100;
  }

  CoreConfig base_config;
  base_config.mram_parity = !no_parity;
  const bool injection = oracle_name == "injection";
  const std::vector<Oracle> oracles =
      injection ? std::vector<Oracle>{} : BuildOracles(oracle_name, base_config, max_cycles);
  const auto start = std::chrono::steady_clock::now();
  auto out_of_budget = [&] {
    if (time_budget_seconds == 0) {
      return false;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration_cast<std::chrono::seconds>(elapsed).count() >=
           (long long)time_budget_seconds;
  };

  uint64_t executed = 0;
  for (uint64_t i = 0; (runs == 0 || i < runs) && !out_of_budget(); ++i) {
    const uint64_t seed = base_seed + i;
    const GeneratedCase c = Generate(seed);
    if (injection) {
      auto found = RunInjectionCase(seed, c, base_config, max_cycles, out_dir);
      if (!found.ok()) {
        std::fprintf(stderr, "[mfuzz] seed %llu oracle injection: %s\n",
                     (unsigned long long)seed, found.status().ToString().c_str());
        return 1;
      }
      if (*found) {
        return kExitSdc;
      }
      ++executed;
      if (executed % 25 == 0) {
        std::fprintf(stderr, "[mfuzz] %llu cases clean\n", (unsigned long long)executed);
      }
      continue;
    }
    for (const Oracle& oracle : oracles) {
      MetalSystem a(oracle.config_a);
      MetalSystem b(oracle.config_b);
      if (Status status = BuildSystem(a, c); !status.ok()) {
        std::fprintf(stderr, "[mfuzz] seed %llu: generated case does not assemble: %s\n",
                     (unsigned long long)seed, status.ToString().c_str());
        return 1;  // a generator bug, not a simulator bug — fix the generator
      }
      if (Status status = BuildSystem(b, c); !status.ok()) {
        std::fprintf(stderr, "[mfuzz] seed %llu: %s\n", (unsigned long long)seed,
                     status.ToString().c_str());
        return 1;
      }
      auto report = RunLockstep(a, b, oracle.options);
      if (!report.ok()) {
        std::fprintf(stderr, "[mfuzz] seed %llu oracle %s: %s\n", (unsigned long long)seed,
                     oracle.name, report.status().ToString().c_str());
        return 1;
      }
      if (report->diverged) {
        std::fprintf(stderr, "[mfuzz] seed %llu oracle %s: DIVERGENCE\n",
                     (unsigned long long)seed, oracle.name);
        WriteDivergenceText(*report, std::cerr);
        if (oracle.options.granularity == CompareGranularity::kCycle) {
          auto window = ShrinkByCheckpointBisection(c, oracle, report->cycle_a);
          if (window.ok()) {
            std::fprintf(stderr,
                         "[mfuzz] shrunk: divergence reproduces from a snapshot at cycle %llu "
                         "(window %llu cycles)\n",
                         (unsigned long long)*window,
                         (unsigned long long)(report->cycle_a - *window));
          }
        }
        if (int rc = WriteArtifacts(out_dir, seed, oracle.name, c, *report, max_cycles);
            rc != 0) {
          return rc;
        }
        return kExitDivergence;
      }
    }
    ++executed;
    if (executed % 25 == 0) {
      std::fprintf(stderr, "[mfuzz] %llu cases clean\n", (unsigned long long)executed);
    }
  }
  std::fprintf(stderr, "[mfuzz] done: %llu cases, no divergence\n",
               (unsigned long long)executed);
  return 0;
}
