#include "isa/decode.h"

#include "support/bits.h"

namespace msim {
namespace {

using K = InstrKind;

K DecodeOpImm(uint32_t f3, uint32_t f7) {
  switch (f3) {
    case 0:
      return K::kAddi;
    case 1:
      return f7 == 0x00 ? K::kSlli : K::kIllegal;
    case 2:
      return K::kSlti;
    case 3:
      return K::kSltiu;
    case 4:
      return K::kXori;
    case 5:
      if (f7 == 0x00) return K::kSrli;
      if (f7 == 0x20) return K::kSrai;
      return K::kIllegal;
    case 6:
      return K::kOri;
    case 7:
      return K::kAndi;
  }
  return K::kIllegal;
}

K DecodeOpReg(uint32_t f3, uint32_t f7) {
  if (f7 == 0x01) {
    switch (f3) {
      case 0: return K::kMul;
      case 1: return K::kMulh;
      case 2: return K::kMulhsu;
      case 3: return K::kMulhu;
      case 4: return K::kDiv;
      case 5: return K::kDivu;
      case 6: return K::kRem;
      case 7: return K::kRemu;
    }
    return K::kIllegal;
  }
  switch (f3) {
    case 0:
      if (f7 == 0x00) return K::kAdd;
      if (f7 == 0x20) return K::kSub;
      return K::kIllegal;
    case 1:
      return f7 == 0x00 ? K::kSll : K::kIllegal;
    case 2:
      return f7 == 0x00 ? K::kSlt : K::kIllegal;
    case 3:
      return f7 == 0x00 ? K::kSltu : K::kIllegal;
    case 4:
      return f7 == 0x00 ? K::kXor : K::kIllegal;
    case 5:
      if (f7 == 0x00) return K::kSrl;
      if (f7 == 0x20) return K::kSra;
      return K::kIllegal;
    case 6:
      return f7 == 0x00 ? K::kOr : K::kIllegal;
    case 7:
      return f7 == 0x00 ? K::kAnd : K::kIllegal;
  }
  return K::kIllegal;
}

K DecodeBranch(uint32_t f3) {
  switch (f3) {
    case 0: return K::kBeq;
    case 1: return K::kBne;
    case 4: return K::kBlt;
    case 5: return K::kBge;
    case 6: return K::kBltu;
    case 7: return K::kBgeu;
  }
  return K::kIllegal;
}

K DecodeLoad(uint32_t f3) {
  switch (f3) {
    case 0: return K::kLb;
    case 1: return K::kLh;
    case 2: return K::kLw;
    case 4: return K::kLbu;
    case 5: return K::kLhu;
  }
  return K::kIllegal;
}

K DecodeStore(uint32_t f3) {
  switch (f3) {
    case 0: return K::kSb;
    case 1: return K::kSh;
    case 2: return K::kSw;
  }
  return K::kIllegal;
}

K DecodeMetal(uint32_t f3) {
  switch (f3) {
    case 0: return K::kMenter;
    case 1: return K::kMexit;
    case 2: return K::kRmr;
    case 3: return K::kWmr;
    case 4: return K::kMld;
    case 5: return K::kMst;
    case 6: return K::kHalt;
  }
  return K::kIllegal;
}

K DecodeMetalArch(uint32_t f3, uint32_t f7) {
  switch (f3) {
    case 0:
      return K::kPlw;
    case 1:
      return K::kPsw;
    case 2:
      switch (f7) {
        case 0x00: return K::kTlbwr;
        case 0x01: return K::kTlbinv;
        case 0x02: return K::kTlbflush;
        case 0x03: return K::kTlbrd;
        case 0x04: return K::kMintset;
        case 0x05: return K::kMopr;
        case 0x06: return K::kMopw;
      }
      return K::kIllegal;
    case 3:
      return K::kRcr;
    case 4:
      return K::kWcr;
  }
  return K::kIllegal;
}

int32_t ImmI(uint32_t w) { return SignExtend(Bits(w, 31, 20), 12); }
int32_t ImmS(uint32_t w) { return SignExtend(Bits(w, 31, 25) << 5 | Bits(w, 11, 7), 12); }
int32_t ImmB(uint32_t w) {
  const uint32_t imm = Bit(w, 31) << 12 | Bit(w, 7) << 11 | Bits(w, 30, 25) << 5 |
                       Bits(w, 11, 8) << 1;
  return SignExtend(imm, 13);
}
int32_t ImmU(uint32_t w) { return static_cast<int32_t>(Bits(w, 31, 12)); }
int32_t ImmJ(uint32_t w) {
  const uint32_t imm = Bit(w, 31) << 20 | Bits(w, 19, 12) << 12 | Bit(w, 20) << 11 |
                       Bits(w, 30, 21) << 1;
  return SignExtend(imm, 21);
}

}  // namespace

Decoded DecodeInstr(uint32_t word) {
  Decoded d;
  d.raw = word;
  const uint32_t opcode = Bits(word, 6, 0);
  const uint32_t f3 = Bits(word, 14, 12);
  const uint32_t f7 = Bits(word, 31, 25);
  d.rd = static_cast<uint8_t>(Bits(word, 11, 7));
  d.rs1 = static_cast<uint8_t>(Bits(word, 19, 15));
  d.rs2 = static_cast<uint8_t>(Bits(word, 24, 20));

  switch (opcode) {
    case kOpLui:
      d.kind = K::kLui;
      d.imm = ImmU(word);
      return d;
    case kOpAuipc:
      d.kind = K::kAuipc;
      d.imm = ImmU(word);
      return d;
    case kOpJal:
      d.kind = K::kJal;
      d.imm = ImmJ(word);
      return d;
    case kOpJalr:
      d.kind = f3 == 0 ? K::kJalr : K::kIllegal;
      d.imm = ImmI(word);
      return d;
    case kOpBranch:
      d.kind = DecodeBranch(f3);
      d.imm = ImmB(word);
      return d;
    case kOpLoad:
      d.kind = DecodeLoad(f3);
      d.imm = ImmI(word);
      return d;
    case kOpStore:
      d.kind = DecodeStore(f3);
      d.imm = ImmS(word);
      return d;
    case kOpImm:
      d.kind = DecodeOpImm(f3, f7);
      // Shifts take the 5-bit shamt; everything else the 12-bit immediate.
      d.imm = (d.kind == K::kSlli || d.kind == K::kSrli || d.kind == K::kSrai)
                  ? static_cast<int32_t>(Bits(word, 24, 20))
                  : ImmI(word);
      return d;
    case kOpReg:
      d.kind = DecodeOpReg(f3, f7);
      return d;
    case kOpMiscMem:
      d.kind = f3 == 0 ? K::kFence : K::kIllegal;
      d.imm = ImmI(word);
      return d;
    case kOpSystem: {
      if (f3 != 0) {
        return d;
      }
      const int32_t imm = ImmI(word);
      if (imm == 0) {
        d.kind = K::kEcall;
      } else if (imm == 1) {
        d.kind = K::kEbreak;
      }
      d.imm = imm;
      return d;
    }
    case kOpMetal:
      d.kind = DecodeMetal(f3);
      d.imm = d.info().format == InstrFormat::kS ? ImmS(word) : ImmI(word);
      return d;
    case kOpMetalArch:
      d.kind = DecodeMetalArch(f3, f7);
      switch (d.info().format) {
        case InstrFormat::kI:
          d.imm = ImmI(word);
          break;
        case InstrFormat::kS:
          d.imm = ImmS(word);
          break;
        default:
          break;
      }
      return d;
    default:
      return d;
  }
}

}  // namespace msim
