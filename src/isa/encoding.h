// Instruction word construction.
#ifndef MSIM_ISA_ENCODING_H_
#define MSIM_ISA_ENCODING_H_

#include <cstdint>

#include "isa/isa.h"
#include "support/result.h"

namespace msim {

// Encodes one instruction. Field use depends on the format:
//   R: rd, rs1, rs2            I: rd, rs1, imm (12-bit signed)
//   S: rs1, rs2, imm           B: rs1, rs2, imm (byte offset, even)
//   U: rd, imm (upper 20 bits as imm >> 12)
//   J: rd, imm (byte offset)
// Unused fields must be zero. Immediates are range-checked.
Result<uint32_t> Encode(InstrKind kind, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm);

// Convenience wrappers used heavily by tests and extension builders.
Result<uint32_t> EncodeR(InstrKind kind, uint8_t rd, uint8_t rs1, uint8_t rs2);
Result<uint32_t> EncodeI(InstrKind kind, uint8_t rd, uint8_t rs1, int32_t imm);
Result<uint32_t> EncodeS(InstrKind kind, uint8_t rs1, uint8_t rs2, int32_t imm);
Result<uint32_t> EncodeB(InstrKind kind, uint8_t rs1, uint8_t rs2, int32_t offset);
Result<uint32_t> EncodeU(InstrKind kind, uint8_t rd, int32_t imm);
Result<uint32_t> EncodeJ(InstrKind kind, uint8_t rd, int32_t offset);

}  // namespace msim

#endif  // MSIM_ISA_ENCODING_H_
