// Instruction word decoding.
#ifndef MSIM_ISA_DECODE_H_
#define MSIM_ISA_DECODE_H_

#include <cstdint>

#include "isa/isa.h"

namespace msim {

// Decodes a 32-bit instruction word. Unknown encodings yield kIllegal (the
// pipeline turns that into an IllegalInstruction exception); decoding itself
// never fails.
Decoded DecodeInstr(uint32_t word);

}  // namespace msim

#endif  // MSIM_ISA_DECODE_H_
