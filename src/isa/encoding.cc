#include "isa/encoding.h"

#include "support/bits.h"
#include "support/strings.h"

namespace msim {
namespace {

Status BadImm(const InstrInfo& info, int32_t imm) {
  return InvalidArgument(StrFormat("immediate %d out of range for '%s'", imm, info.mnemonic));
}

}  // namespace

Result<uint32_t> Encode(InstrKind kind, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm) {
  const InstrInfo& info = GetInstrInfo(kind);
  if (info.kind == InstrKind::kIllegal) {
    return InvalidArgument("cannot encode the illegal instruction");
  }
  if (rd >= 32 || rs1 >= 32 || rs2 >= 32) {
    return InvalidArgument(StrFormat("register index out of range for '%s'", info.mnemonic));
  }
  const uint32_t f3 = info.has_funct3 ? info.funct3 : 0;
  uint32_t word = info.opcode;
  switch (info.format) {
    case InstrFormat::kR: {
      word |= static_cast<uint32_t>(rd) << 7 | f3 << 12 | static_cast<uint32_t>(rs1) << 15 |
              static_cast<uint32_t>(rs2) << 20 | info.funct7 << 25;
      return word;
    }
    case InstrFormat::kI: {
      // Shift-immediates embed funct7 in the upper immediate bits.
      if (info.has_funct7) {
        if (imm < 0 || imm > 31) {
          return BadImm(info, imm);
        }
        word |= static_cast<uint32_t>(rd) << 7 | f3 << 12 | static_cast<uint32_t>(rs1) << 15 |
                static_cast<uint32_t>(imm) << 20 | info.funct7 << 25;
        return word;
      }
      // ecall/ebreak use fixed imm encodings.
      if (kind == InstrKind::kEcall) {
        imm = 0;
      } else if (kind == InstrKind::kEbreak) {
        imm = 1;
      }
      if (!FitsSigned(imm, 12)) {
        return BadImm(info, imm);
      }
      word |= static_cast<uint32_t>(rd) << 7 | f3 << 12 | static_cast<uint32_t>(rs1) << 15 |
              (static_cast<uint32_t>(imm) & 0xFFF) << 20;
      return word;
    }
    case InstrFormat::kS: {
      if (!FitsSigned(imm, 12)) {
        return BadImm(info, imm);
      }
      const uint32_t uimm = static_cast<uint32_t>(imm);
      word |= (uimm & 0x1F) << 7 | f3 << 12 | static_cast<uint32_t>(rs1) << 15 |
              static_cast<uint32_t>(rs2) << 20 | ((uimm >> 5) & 0x7F) << 25;
      return word;
    }
    case InstrFormat::kB: {
      if (!FitsSigned(imm, 13) || (imm & 1) != 0) {
        return BadImm(info, imm);
      }
      const uint32_t uimm = static_cast<uint32_t>(imm);
      word |= Bit(uimm, 11) << 7 | Bits(uimm, 4, 1) << 8 | f3 << 12 |
              static_cast<uint32_t>(rs1) << 15 | static_cast<uint32_t>(rs2) << 20 |
              Bits(uimm, 10, 5) << 25 | Bit(uimm, 12) << 31;
      return word;
    }
    case InstrFormat::kU: {
      // imm is the full 32-bit value whose low 12 bits must be zero, OR the
      // raw upper-20 value; we accept the raw upper-20 form (0..0xFFFFF).
      if (imm < 0 || !FitsUnsigned(static_cast<uint64_t>(imm), 20)) {
        return BadImm(info, imm);
      }
      word |= static_cast<uint32_t>(rd) << 7 | static_cast<uint32_t>(imm) << 12;
      return word;
    }
    case InstrFormat::kJ: {
      if (!FitsSigned(imm, 21) || (imm & 1) != 0) {
        return BadImm(info, imm);
      }
      const uint32_t uimm = static_cast<uint32_t>(imm);
      word |= static_cast<uint32_t>(rd) << 7 | Bits(uimm, 19, 12) << 12 | Bit(uimm, 11) << 20 |
              Bits(uimm, 10, 1) << 21 | Bit(uimm, 20) << 31;
      return word;
    }
    case InstrFormat::kNone:
      break;
  }
  return Internal(StrFormat("unhandled format for '%s'", info.mnemonic));
}

Result<uint32_t> EncodeR(InstrKind kind, uint8_t rd, uint8_t rs1, uint8_t rs2) {
  return Encode(kind, rd, rs1, rs2, 0);
}
Result<uint32_t> EncodeI(InstrKind kind, uint8_t rd, uint8_t rs1, int32_t imm) {
  return Encode(kind, rd, rs1, 0, imm);
}
Result<uint32_t> EncodeS(InstrKind kind, uint8_t rs1, uint8_t rs2, int32_t imm) {
  return Encode(kind, 0, rs1, rs2, imm);
}
Result<uint32_t> EncodeB(InstrKind kind, uint8_t rs1, uint8_t rs2, int32_t offset) {
  return Encode(kind, 0, rs1, rs2, offset);
}
Result<uint32_t> EncodeU(InstrKind kind, uint8_t rd, int32_t imm) {
  return Encode(kind, rd, 0, 0, imm);
}
Result<uint32_t> EncodeJ(InstrKind kind, uint8_t rd, int32_t offset) {
  return Encode(kind, rd, 0, 0, offset);
}

}  // namespace msim
