// MRV32: the simulator's instruction set.
//
// The paper prototypes Metal on "a 5-stage pipelined RISC processor". We use
// the RISC-V 32-bit encoding formats (R/I/S/B/U/J) for the base ISA and place
// the Metal extension in the custom-0/custom-1 opcode spaces:
//
//   custom-0 (0x0B): the Table 1 instructions — menter, mexit, rmr, wmr,
//                    mld, mst — plus the simulator-only `halt`.
//   custom-1 (0x2B): architectural features the processor exposes to Metal
//                    mode only (paper §2.3): physical loads/stores, TLB
//                    modification, control registers, intercept configuration
//                    and intercepted-operand access.
#ifndef MSIM_ISA_ISA_H_
#define MSIM_ISA_ISA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace msim {

// Major opcodes (bits [6:0] of every instruction word).
enum Opcode : uint32_t {
  kOpLui = 0x37,
  kOpAuipc = 0x17,
  kOpJal = 0x6F,
  kOpJalr = 0x67,
  kOpBranch = 0x63,
  kOpLoad = 0x03,
  kOpStore = 0x23,
  kOpImm = 0x13,
  kOpReg = 0x33,
  kOpMiscMem = 0x0F,
  kOpSystem = 0x73,
  kOpMetal = 0x0B,     // custom-0: Metal core instructions (paper Table 1)
  kOpMetalArch = 0x2B, // custom-1: Metal-mode architectural features (paper §2.3)
};

// Every architectural instruction the simulator implements.
enum class InstrKind : uint8_t {
  kIllegal = 0,
  // RV32I base.
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // M extension.
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // Metal core (paper Table 1).
  kMenter,  // enter Metal mode via mroutine entry number (imm)
  kMexit,   // exit Metal mode; resume at address in m31
  kRmr,     // rd <- m[imm]
  kWmr,     // m[imm] <- rs1
  kMld,     // rd <- MRAM data segment[rs1 + imm]
  kMst,     // MRAM data segment[rs1 + imm] <- rs2
  kHalt,    // simulator-only: stop simulation (exit code in rs1)
  // Metal-mode architectural features (paper §2.3).
  kPlw,       // physical (untranslated) word load
  kPsw,       // physical (untranslated) word store
  kTlbwr,     // write TLB entry: vaddr in rs1, PTE in rs2
  kTlbinv,    // invalidate TLB entries matching vaddr in rs1 (current ASID)
  kTlbflush,  // rs1 == x0: flush all; else flush entries with ASID == rs1
  kTlbrd,     // probe: rd <- PTE matching vaddr rs1, or 0
  kMintset,   // configure instruction interception: spec rs1, target rs2
  kMopr,      // rd <- intercepted-instruction operand (selector in rs2 field)
  kMopw,      // pending rd-writeback for the intercepted instruction <- rs1
  kRcr,       // rd <- control register imm
  kWcr,       // control register imm <- rs1
  kCount,
};

// Instruction encoding formats.
enum class InstrFormat : uint8_t { kR, kI, kS, kB, kU, kJ, kNone };

// Static properties consulted by the decoder, pipeline and assembler.
struct InstrInfo {
  InstrKind kind = InstrKind::kIllegal;
  const char* mnemonic = "illegal";
  InstrFormat format = InstrFormat::kNone;
  uint32_t opcode = 0;
  uint32_t funct3 = 0;   // valid if has_funct3
  uint32_t funct7 = 0;   // valid if has_funct7
  bool has_funct3 = false;
  bool has_funct7 = false;
  bool metal_only = false;  // raises PrivilegeViolation outside Metal mode
  bool is_load = false;
  bool is_store = false;
  bool is_branch = false;  // conditional branch
  bool is_jump = false;    // unconditional control transfer (jal/jalr)
  bool writes_rd = false;
};

// Returns the info entry for `kind`. kind must be a valid InstrKind.
const InstrInfo& GetInstrInfo(InstrKind kind);

// Looks up an instruction by mnemonic ("add", "menter", ...). Pseudo
// instructions are handled by the assembler, not here.
const InstrInfo* FindInstrByMnemonic(std::string_view mnemonic);

// A decoded instruction: kind plus extracted operand fields.
struct Decoded {
  InstrKind kind = InstrKind::kIllegal;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;
  uint32_t raw = 0;

  const InstrInfo& info() const { return GetInstrInfo(kind); }
};

// Register name helpers. Accepts "x7", ABI names ("t0", "a1", "sp", ...) and
// Metal register names ("m0".."m31" via ParseMetalRegister).
std::optional<uint8_t> ParseGpr(std::string_view name);
std::optional<uint8_t> ParseMetalRegister(std::string_view name);

// Canonical ABI name of GPR index ("zero", "ra", "sp", ...).
std::string_view GprName(uint8_t index);

// Operand selectors for `mopr` (read intercepted-instruction state).
enum MoprSelector : uint8_t {
  kMoprRs1Value = 0,
  kMoprRs2Value = 1,
  kMoprImm = 2,
  kMoprRdIndex = 3,
  kMoprRaw = 4,
  kMoprRs1Index = 5,
  kMoprRs2Index = 6,
};

// Number of Metal registers (m0..m31); m31 receives the return address.
inline constexpr unsigned kNumMetalRegisters = 32;
inline constexpr uint8_t kMetalLinkRegister = 31;

// Maximum number of mroutine entries (paper §2: "up to 64 mroutines").
inline constexpr unsigned kMaxMroutines = 64;

}  // namespace msim

#endif  // MSIM_ISA_ISA_H_
