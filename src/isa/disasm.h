// Disassembly, used for pipeline traces and error messages.
#ifndef MSIM_ISA_DISASM_H_
#define MSIM_ISA_DISASM_H_

#include <cstdint>
#include <string>

#include "isa/isa.h"

namespace msim {

// Renders a decoded instruction as assembly text, e.g. "addi a0, a0, 1".
std::string Disassemble(const Decoded& d);

// Decodes and renders a raw instruction word.
std::string Disassemble(uint32_t word);

}  // namespace msim

#endif  // MSIM_ISA_DISASM_H_
