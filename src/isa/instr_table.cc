#include <array>
#include <cstring>

#include "isa/isa.h"
#include "support/strings.h"

namespace msim {
namespace {

constexpr InstrInfo MakeInfo(InstrKind kind, const char* mnemonic, InstrFormat format,
                             uint32_t opcode, int funct3, int funct7, bool metal_only,
                             bool is_load, bool is_store, bool is_branch, bool is_jump,
                             bool writes_rd) {
  InstrInfo info;
  info.kind = kind;
  info.mnemonic = mnemonic;
  info.format = format;
  info.opcode = opcode;
  info.funct3 = funct3 >= 0 ? static_cast<uint32_t>(funct3) : 0;
  info.funct7 = funct7 >= 0 ? static_cast<uint32_t>(funct7) : 0;
  info.has_funct3 = funct3 >= 0;
  info.has_funct7 = funct7 >= 0;
  info.metal_only = metal_only;
  info.is_load = is_load;
  info.is_store = is_store;
  info.is_branch = is_branch;
  info.is_jump = is_jump;
  info.writes_rd = writes_rd;
  return info;
}

// Shorthands: L=load S=store B=branch J=jump W=writes rd M=metal-only.
constexpr InstrInfo Base(InstrKind k, const char* m, InstrFormat f, uint32_t op, int f3, int f7,
                         bool L = false, bool S = false, bool B = false, bool J = false,
                         bool W = false) {
  return MakeInfo(k, m, f, op, f3, f7, /*metal_only=*/false, L, S, B, J, W);
}
constexpr InstrInfo Metal(InstrKind k, const char* m, InstrFormat f, uint32_t op, int f3, int f7,
                          bool L = false, bool S = false, bool W = false) {
  return MakeInfo(k, m, f, op, f3, f7, /*metal_only=*/true, L, S, /*B=*/false, /*J=*/false, W);
}

using K = InstrKind;
using F = InstrFormat;

constexpr std::array<InstrInfo, static_cast<size_t>(InstrKind::kCount)> BuildTable() {
  std::array<InstrInfo, static_cast<size_t>(InstrKind::kCount)> t{};
  auto set = [&t](InstrInfo info) { t[static_cast<size_t>(info.kind)] = info; };

  set(MakeInfo(K::kIllegal, "illegal", F::kNone, 0, -1, -1, false, false, false, false, false,
               false));
  // RV32I base.
  set(Base(K::kLui, "lui", F::kU, kOpLui, -1, -1, false, false, false, false, true));
  set(Base(K::kAuipc, "auipc", F::kU, kOpAuipc, -1, -1, false, false, false, false, true));
  set(Base(K::kJal, "jal", F::kJ, kOpJal, -1, -1, false, false, false, true, true));
  set(Base(K::kJalr, "jalr", F::kI, kOpJalr, 0, -1, false, false, false, true, true));
  set(Base(K::kBeq, "beq", F::kB, kOpBranch, 0, -1, false, false, true));
  set(Base(K::kBne, "bne", F::kB, kOpBranch, 1, -1, false, false, true));
  set(Base(K::kBlt, "blt", F::kB, kOpBranch, 4, -1, false, false, true));
  set(Base(K::kBge, "bge", F::kB, kOpBranch, 5, -1, false, false, true));
  set(Base(K::kBltu, "bltu", F::kB, kOpBranch, 6, -1, false, false, true));
  set(Base(K::kBgeu, "bgeu", F::kB, kOpBranch, 7, -1, false, false, true));
  set(Base(K::kLb, "lb", F::kI, kOpLoad, 0, -1, true, false, false, false, true));
  set(Base(K::kLh, "lh", F::kI, kOpLoad, 1, -1, true, false, false, false, true));
  set(Base(K::kLw, "lw", F::kI, kOpLoad, 2, -1, true, false, false, false, true));
  set(Base(K::kLbu, "lbu", F::kI, kOpLoad, 4, -1, true, false, false, false, true));
  set(Base(K::kLhu, "lhu", F::kI, kOpLoad, 5, -1, true, false, false, false, true));
  set(Base(K::kSb, "sb", F::kS, kOpStore, 0, -1, false, true));
  set(Base(K::kSh, "sh", F::kS, kOpStore, 1, -1, false, true));
  set(Base(K::kSw, "sw", F::kS, kOpStore, 2, -1, false, true));
  set(Base(K::kAddi, "addi", F::kI, kOpImm, 0, -1, false, false, false, false, true));
  set(Base(K::kSlti, "slti", F::kI, kOpImm, 2, -1, false, false, false, false, true));
  set(Base(K::kSltiu, "sltiu", F::kI, kOpImm, 3, -1, false, false, false, false, true));
  set(Base(K::kXori, "xori", F::kI, kOpImm, 4, -1, false, false, false, false, true));
  set(Base(K::kOri, "ori", F::kI, kOpImm, 6, -1, false, false, false, false, true));
  set(Base(K::kAndi, "andi", F::kI, kOpImm, 7, -1, false, false, false, false, true));
  set(Base(K::kSlli, "slli", F::kI, kOpImm, 1, 0x00, false, false, false, false, true));
  set(Base(K::kSrli, "srli", F::kI, kOpImm, 5, 0x00, false, false, false, false, true));
  set(Base(K::kSrai, "srai", F::kI, kOpImm, 5, 0x20, false, false, false, false, true));
  set(Base(K::kAdd, "add", F::kR, kOpReg, 0, 0x00, false, false, false, false, true));
  set(Base(K::kSub, "sub", F::kR, kOpReg, 0, 0x20, false, false, false, false, true));
  set(Base(K::kSll, "sll", F::kR, kOpReg, 1, 0x00, false, false, false, false, true));
  set(Base(K::kSlt, "slt", F::kR, kOpReg, 2, 0x00, false, false, false, false, true));
  set(Base(K::kSltu, "sltu", F::kR, kOpReg, 3, 0x00, false, false, false, false, true));
  set(Base(K::kXor, "xor", F::kR, kOpReg, 4, 0x00, false, false, false, false, true));
  set(Base(K::kSrl, "srl", F::kR, kOpReg, 5, 0x00, false, false, false, false, true));
  set(Base(K::kSra, "sra", F::kR, kOpReg, 5, 0x20, false, false, false, false, true));
  set(Base(K::kOr, "or", F::kR, kOpReg, 6, 0x00, false, false, false, false, true));
  set(Base(K::kAnd, "and", F::kR, kOpReg, 7, 0x00, false, false, false, false, true));
  set(Base(K::kFence, "fence", F::kI, kOpMiscMem, 0, -1));
  set(Base(K::kEcall, "ecall", F::kI, kOpSystem, 0, -1));
  set(Base(K::kEbreak, "ebreak", F::kI, kOpSystem, 0, -1));
  // M extension.
  set(Base(K::kMul, "mul", F::kR, kOpReg, 0, 0x01, false, false, false, false, true));
  set(Base(K::kMulh, "mulh", F::kR, kOpReg, 1, 0x01, false, false, false, false, true));
  set(Base(K::kMulhsu, "mulhsu", F::kR, kOpReg, 2, 0x01, false, false, false, false, true));
  set(Base(K::kMulhu, "mulhu", F::kR, kOpReg, 3, 0x01, false, false, false, false, true));
  set(Base(K::kDiv, "div", F::kR, kOpReg, 4, 0x01, false, false, false, false, true));
  set(Base(K::kDivu, "divu", F::kR, kOpReg, 5, 0x01, false, false, false, false, true));
  set(Base(K::kRem, "rem", F::kR, kOpReg, 6, 0x01, false, false, false, false, true));
  set(Base(K::kRemu, "remu", F::kR, kOpReg, 7, 0x01, false, false, false, false, true));
  // Metal core (paper Table 1). menter is deliberately NOT metal-only: normal
  // mode applications invoke it to enter Metal mode.
  set(Base(K::kMenter, "menter", F::kI, kOpMetal, 0, -1));
  set(Metal(K::kMexit, "mexit", F::kI, kOpMetal, 1, -1));
  set(Metal(K::kRmr, "rmr", F::kI, kOpMetal, 2, -1, false, false, true));
  set(Metal(K::kWmr, "wmr", F::kI, kOpMetal, 3, -1));
  set(Metal(K::kMld, "mld", F::kI, kOpMetal, 4, -1, true, false, true));
  set(Metal(K::kMst, "mst", F::kS, kOpMetal, 5, -1, false, true));
  set(Base(K::kHalt, "halt", F::kI, kOpMetal, 6, -1));
  // Metal-mode architectural features (paper §2.3).
  set(Metal(K::kPlw, "plw", F::kI, kOpMetalArch, 0, -1, true, false, true));
  set(Metal(K::kPsw, "psw", F::kS, kOpMetalArch, 1, -1, false, true));
  set(Metal(K::kTlbwr, "tlbwr", F::kR, kOpMetalArch, 2, 0x00));
  set(Metal(K::kTlbinv, "tlbinv", F::kR, kOpMetalArch, 2, 0x01));
  set(Metal(K::kTlbflush, "tlbflush", F::kR, kOpMetalArch, 2, 0x02));
  set(Metal(K::kTlbrd, "tlbrd", F::kR, kOpMetalArch, 2, 0x03, false, false, true));
  set(Metal(K::kMintset, "mintset", F::kR, kOpMetalArch, 2, 0x04));
  set(Metal(K::kMopr, "mopr", F::kR, kOpMetalArch, 2, 0x05, false, false, true));
  set(Metal(K::kMopw, "mopw", F::kR, kOpMetalArch, 2, 0x06));
  set(Metal(K::kRcr, "rcr", F::kI, kOpMetalArch, 3, -1, false, false, true));
  set(Metal(K::kWcr, "wcr", F::kI, kOpMetalArch, 4, -1));
  return t;
}

constexpr auto kTable = BuildTable();

constexpr const char* kGprNames[32] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

}  // namespace

const InstrInfo& GetInstrInfo(InstrKind kind) { return kTable[static_cast<size_t>(kind)]; }

const InstrInfo* FindInstrByMnemonic(std::string_view mnemonic) {
  for (const InstrInfo& info : kTable) {
    if (info.kind != InstrKind::kIllegal && mnemonic == info.mnemonic) {
      return &info;
    }
  }
  return nullptr;
}

std::optional<uint8_t> ParseGpr(std::string_view name) {
  if (name.size() >= 2 && (name[0] == 'x' || name[0] == 'X')) {
    const auto index = ParseInt(name.substr(1));
    if (index && *index >= 0 && *index < 32) {
      return static_cast<uint8_t>(*index);
    }
    // "x" followed by a non-register suffix falls through to ABI names below
    // (no ABI name starts with 'x', so this will return nullopt).
  }
  for (uint8_t i = 0; i < 32; ++i) {
    if (name == kGprNames[i]) {
      return i;
    }
  }
  if (name == "fp") {
    return 8;  // frame pointer alias for s0
  }
  return std::nullopt;
}

std::optional<uint8_t> ParseMetalRegister(std::string_view name) {
  if (name.size() < 2 || (name[0] != 'm' && name[0] != 'M')) {
    return std::nullopt;
  }
  const auto index = ParseInt(name.substr(1));
  if (index && *index >= 0 && *index < static_cast<int64_t>(kNumMetalRegisters)) {
    return static_cast<uint8_t>(*index);
  }
  return std::nullopt;
}

std::string_view GprName(uint8_t index) { return kGprNames[index & 31]; }

}  // namespace msim
