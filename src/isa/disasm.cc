#include "isa/disasm.h"

#include "isa/decode.h"
#include "support/strings.h"

namespace msim {
namespace {

std::string Gpr(uint8_t r) { return std::string(GprName(r)); }

}  // namespace

std::string Disassemble(const Decoded& d) {
  const InstrInfo& info = d.info();
  const char* m = info.mnemonic;
  switch (d.kind) {
    case InstrKind::kIllegal:
      return StrFormat("illegal (0x%08x)", d.raw);
    case InstrKind::kLui:
    case InstrKind::kAuipc:
      return StrFormat("%s %s, 0x%x", m, Gpr(d.rd).c_str(), static_cast<uint32_t>(d.imm));
    case InstrKind::kJal:
      return StrFormat("%s %s, %d", m, Gpr(d.rd).c_str(), d.imm);
    case InstrKind::kJalr:
      return StrFormat("%s %s, %d(%s)", m, Gpr(d.rd).c_str(), d.imm, Gpr(d.rs1).c_str());
    case InstrKind::kEcall:
    case InstrKind::kEbreak:
    case InstrKind::kFence:
    case InstrKind::kMexit:
      return m;
    case InstrKind::kMenter:
      return StrFormat("%s %d", m, d.imm);
    case InstrKind::kHalt:
      return StrFormat("%s %s", m, Gpr(d.rs1).c_str());
    case InstrKind::kRmr:
      return StrFormat("%s %s, m%d", m, Gpr(d.rd).c_str(), d.imm);
    case InstrKind::kWmr:
      return StrFormat("%s m%d, %s", m, d.imm, Gpr(d.rs1).c_str());
    case InstrKind::kRcr:
      return StrFormat("%s %s, cr%d", m, Gpr(d.rd).c_str(), d.imm);
    case InstrKind::kWcr:
      return StrFormat("%s cr%d, %s", m, d.imm, Gpr(d.rs1).c_str());
    case InstrKind::kMopr:
      return StrFormat("%s %s, #%d", m, Gpr(d.rd).c_str(), d.rs2);
    case InstrKind::kMopw:
    case InstrKind::kTlbinv:
    case InstrKind::kTlbflush:
      return StrFormat("%s %s", m, Gpr(d.rs1).c_str());
    case InstrKind::kTlbwr:
    case InstrKind::kMintset:
      return StrFormat("%s %s, %s", m, Gpr(d.rs1).c_str(), Gpr(d.rs2).c_str());
    case InstrKind::kTlbrd:
      return StrFormat("%s %s, %s", m, Gpr(d.rd).c_str(), Gpr(d.rs1).c_str());
    default:
      break;
  }
  switch (info.format) {
    case InstrFormat::kR:
      return StrFormat("%s %s, %s, %s", m, Gpr(d.rd).c_str(), Gpr(d.rs1).c_str(),
                       Gpr(d.rs2).c_str());
    case InstrFormat::kI:
      if (info.is_load) {
        return StrFormat("%s %s, %d(%s)", m, Gpr(d.rd).c_str(), d.imm, Gpr(d.rs1).c_str());
      }
      return StrFormat("%s %s, %s, %d", m, Gpr(d.rd).c_str(), Gpr(d.rs1).c_str(), d.imm);
    case InstrFormat::kS:
      return StrFormat("%s %s, %d(%s)", m, Gpr(d.rs2).c_str(), d.imm, Gpr(d.rs1).c_str());
    case InstrFormat::kB:
      return StrFormat("%s %s, %s, %d", m, Gpr(d.rs1).c_str(), Gpr(d.rs2).c_str(), d.imm);
    default:
      return m;
  }
}

std::string Disassemble(uint32_t word) { return Disassemble(DecodeInstr(word)); }

}  // namespace msim
