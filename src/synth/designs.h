// Component inventories of the baseline and Metal processors, and the
// Table 2 report generator.
#ifndef MSIM_SYNTH_DESIGNS_H_
#define MSIM_SYNTH_DESIGNS_H_

#include <string>

#include "synth/component.h"

namespace msim {

// The 5-stage pipelined RISC processor without Metal.
Design BaselineProcessorDesign();

// The same processor with the Metal extension (paper Figure 1: MRAM, MReg,
// mode logic, decode-stage replacement muxes, intercept matchers, entry
// table, operand latch, control registers).
Design MetalProcessorDesign();

// Paper Table 2 reference values.
struct Table2Reference {
  static constexpr double kBaselineWires = 170264;
  static constexpr double kBaselineCells = 180546;
  static constexpr double kMetalWires = 197705;
  static constexpr double kMetalCells = 206384;
};

struct Table2Row {
  std::string metric;  // "Number of Wires" / "Number of Cells"
  double baseline = 0;
  double metal = 0;
  double percent_change = 0;
};

struct Table2Result {
  Table2Row wires;
  Table2Row cells;
};

// Evaluates both designs and scales abstract units so that the baseline row
// matches the paper's baseline exactly (one scale factor per metric); the
// Metal row and the % change then follow from the component inventory alone.
Table2Result GenerateTable2();

// Renders the table in the paper's layout.
std::string FormatTable2(const Table2Result& result);

}  // namespace msim

#endif  // MSIM_SYNTH_DESIGNS_H_
