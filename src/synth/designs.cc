#include "synth/designs.h"

#include "support/strings.h"

namespace msim {
namespace {

// Blocks shared by both designs: the plain 5-stage pipeline.
void AddBaselineComponents(Design& design) {
  design.Add(Comb("pc / fetch control", 900, 1400));
  design.Add(RamMacro("I-cache data array (4 KiB)", 32768, 1));
  design.Add(RegisterBits("I-cache tags (64 x 21b)", 1344));
  design.Add(RamMacro("D-cache data array (4 KiB)", 32768, 1));
  design.Add(RegisterBits("D-cache tags (64 x 21b)", 1344));
  design.Add(Comb("cache controllers", 1800, 2400));
  design.Add(Comb("instruction decoder", 1500, 1800));
  design.Add(Comb("immediate generator", 250, 420));
  design.Add(RegisterBits("GPR file 32x32 (2R1W)", 1024, 2));
  design.Add(RegisterBits("pipeline latches (IF/ID .. MEM/WB)", 420));
  design.Add(Comb("ALU (32-bit)", 1600, 1900));
  design.Add(Comb("multiplier (32x32)", 9000, 8400));
  design.Add(Comb("divider (radix-2)", 6000, 5600));
  design.Add(Comb("branch unit", 400, 520));
  design.Add(Comb("hazard + forwarding control", 700, 1200));
  design.Add(Comb("operand bypass network", 1200, 5200));
  design.Add(Comb("load/store unit", 800, 1000));
  design.Add(RegisterBits("store buffer (4 x 68b)", 272));
  design.Add(CamBits("TLB CAM (32 x 36b tags)", 1152));
  design.Add(RegisterBits("TLB data (32 x 36b)", 1152));
  design.Add(Comb("MMU permission / page-key check", 600, 800));
  design.Add(RegisterBits("counters + status", 200));
  design.Add(RegisterBits("performance counters", 192));
  design.Add(Comb("pipeline control & stall logic", 1200, 1800));
  design.Add(Comb("bus interface", 700, 1100));
  design.Add(Comb("interrupt / exception unit", 900, 1300));
  design.Add(Comb("debug / trace", 1500, 1800));
  design.Add(Comb("control signal distribution", 600, 2400));
  design.Add(Comb("clock + reset distribution", 900, 6000));
}

// The Metal extension (paper Figure 1): what §2.4 measures the cost of.
void AddMetalComponents(Design& design) {
  design.Add(RegisterBits("MReg file 32x32 (m0-m31)", 1024));
  // Entry table words are stored inside the MRAM macro (dedicated region),
  // so the macro carries two ports: fetch and mld/mst data.
  design.Add(RamMacro("MRAM (16 KiB code + 8 KiB data + entry table)", 196608, 2));
  design.Add(CamBits("intercept matchers (8 x 15b)", 120));
  design.Add(RegisterBits("intercepted-operand latch", 101));
  design.Add(RegisterBits("Metal control registers", 96));
  design.Add(Comb("Metal mode / transition FSM", 350, 500));
  design.Add(Mux32("decode-stage replacement muxes", 3));
  design.Add(Comb("fetch-path MRAM routing", 150, 700));
  design.Add(Comb("delegation table logic", 250, 350));
}

}  // namespace

Design BaselineProcessorDesign() {
  Design design("baseline 5-stage processor");
  AddBaselineComponents(design);
  return design;
}

Design MetalProcessorDesign() {
  Design design("5-stage processor + Metal");
  AddBaselineComponents(design);
  AddMetalComponents(design);
  return design;
}

Table2Result GenerateTable2() {
  const DesignTotals baseline = BaselineProcessorDesign().Totals();
  const DesignTotals metal = MetalProcessorDesign().Totals();

  // One calibration scale per metric, anchored to the paper's baseline row.
  const double cell_scale = Table2Reference::kBaselineCells / baseline.cells;
  const double wire_scale = Table2Reference::kBaselineWires / baseline.wires;

  Table2Result result;
  result.wires.metric = "Number of Wires";
  result.wires.baseline = baseline.wires * wire_scale;
  result.wires.metal = metal.wires * wire_scale;
  result.wires.percent_change = 100.0 * (metal.wires - baseline.wires) / baseline.wires;
  result.cells.metric = "Number of Cells";
  result.cells.baseline = baseline.cells * cell_scale;
  result.cells.metal = metal.cells * cell_scale;
  result.cells.percent_change = 100.0 * (metal.cells - baseline.cells) / baseline.cells;
  return result;
}

std::string FormatTable2(const Table2Result& result) {
  std::string out;
  out += StrFormat("%-18s %12s %12s %10s\n", "", "Baseline", "Metal", "%Change");
  for (const Table2Row* row : {&result.wires, &result.cells}) {
    out += StrFormat("%-18s %12.0f %12.0f %9.1f%%\n", row->metric.c_str(), row->baseline,
                     row->metal, row->percent_change);
  }
  return out;
}

}  // namespace msim
