#include "synth/component.h"

namespace msim {

DesignTotals Design::Totals() const {
  DesignTotals totals;
  for (const Component& component : components_) {
    totals.cells += component.cells;
    totals.wires += component.wires;
  }
  return totals;
}

Component RegisterBits(const std::string& name, double bits, double read_ports) {
  // DFF + write mux per bit, plus one read mux path per extra read port.
  const double cells = bits * (8.0 + 1.5 * (read_ports - 1));
  const double wires = bits * (9.0 + 2.5 * (read_ports - 1));
  return {name, cells, wires};
}

Component CamBits(const std::string& name, double bits) {
  // Storage plus a match comparator per bit and priority encoding.
  return {name, bits * 12.0, bits * 13.0};
}

Component Mux32(const std::string& name, double ways) {
  // A 32-bit wide N-way mux: mostly wiring.
  return {name, ways * 32.0 * 2.5, ways * 32.0 * 4.5};
}

Component Comb(const std::string& name, double cells, double wires) {
  return {name, cells, wires};
}

Component RamMacro(const std::string& name, double bits, double ports) {
  // Decode + sense + port routing; bit cells are in the macro.
  const double cells = 400.0 * ports + bits * 0.008;
  const double wires = 900.0 * ports + bits * 0.015;
  return {name, cells, wires};
}

}  // namespace msim
