// Structural hardware-resource model (paper §2.4 / Table 2).
//
// The paper synthesizes a Verilog 5-stage processor with and without Metal
// (Yosys + the Synopsys standard cell library) and reports wires and cells.
// We cannot run logic synthesis here, so we model the design at the component
// level: every RTL-scale block (register file, pipeline latch, ALU, TLB CAM,
// matchers, ...) carries a cell and wire cost in abstract units, derived from
// per-bit costs of the structures it is made of. The *ratio* between the
// baseline and Metal designs is determined purely by which components Metal
// adds — the quantity the paper's Table 2 argues about — while one global
// scale factor per metric calibrates absolute units to the paper's baseline
// row (documented in DESIGN.md §2).
#ifndef MSIM_SYNTH_COMPONENT_H_
#define MSIM_SYNTH_COMPONENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msim {

struct Component {
  std::string name;
  double cells = 0;  // abstract cell units
  double wires = 0;  // abstract wire units
};

struct DesignTotals {
  double cells = 0;
  double wires = 0;
};

class Design {
 public:
  explicit Design(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Component>& components() const { return components_; }

  void Add(Component component) { components_.push_back(std::move(component)); }

  DesignTotals Totals() const;

 private:
  std::string name_;
  std::vector<Component> components_;
};

// --- Per-structure cost helpers (units per bit) -----------------------------
// Derived from typical standard-cell mappings: a registered bit costs roughly
// a flip-flop plus input mux and clock buffers; CAM bits add a comparator;
// pure combinational structures are cheaper in cells but wire-heavy.

Component RegisterBits(const std::string& name, double bits, double read_ports = 1);
Component CamBits(const std::string& name, double bits);
Component Mux32(const std::string& name, double ways);
Component Comb(const std::string& name, double cells, double wires);

// A RAM macro: bit cells live in the macro (not in the standard-cell count),
// but address decode, sense and port routing still cost logic and wires.
Component RamMacro(const std::string& name, double bits, double ports);

}  // namespace msim

#endif  // MSIM_SYNTH_COMPONENT_H_
