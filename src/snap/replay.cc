#include "snap/replay.h"

#include <algorithm>

#include "ext/stm.h"
#include "metal/system.h"
#include "snap/snapshot.h"
#include "snap/snapstream.h"
#include "support/strings.h"

namespace msim {

void ReplayLog::RecordNicPacket(MetalSystem& system, uint64_t arrival_cycle,
                                std::vector<uint8_t> payload) {
  Event event;
  event.kind = Kind::kNicPacket;
  event.cycle = arrival_cycle;
  event.payload = payload;
  events_.push_back(std::move(event));
  system.core().nic().SchedulePacket(arrival_cycle, std::move(payload));
}

Status ReplayLog::RecordStmRemoteCommit(MetalSystem& system, uint32_t clock_addr,
                                        uint32_t vtbl_addr, uint32_t vtbl_words,
                                        uint32_t addr, uint32_t value) {
  MSIM_RETURN_IF_ERROR(StmExtension::InjectRemoteCommit(system.core(), clock_addr,
                                                        vtbl_addr, vtbl_words, addr, value));
  Event event;
  event.kind = Kind::kStmRemoteCommit;
  event.cycle = system.core().cycle();
  event.clock_addr = clock_addr;
  event.vtbl_addr = vtbl_addr;
  event.vtbl_words = vtbl_words;
  event.addr = addr;
  event.value = value;
  events_.push_back(event);
  return Status::Ok();
}

Result<RunResult> ReplayLog::Replay(MetalSystem& system, uint64_t max_cycles) {
  MSIM_RETURN_IF_ERROR(system.Boot());
  Core& core = system.core();
  if (max_cycles == 0) {
    max_cycles = core.config().default_max_cycles;
  }
  const uint64_t start_cycle = core.cycle();

  // NIC arrivals are cycle-addressed at the device, so the whole schedule can
  // be installed up front; only synchronous injections need stepped replay.
  std::vector<const Event*> synchronous;
  for (const Event& event : events_) {
    if (event.kind == Kind::kNicPacket) {
      core.nic().SchedulePacket(event.cycle, event.payload);
    } else {
      synchronous.push_back(&event);
    }
  }
  std::stable_sort(synchronous.begin(), synchronous.end(),
                   [](const Event* a, const Event* b) { return a->cycle < b->cycle; });

  RunResult result;
  for (const Event* event : synchronous) {
    if (core.halted() || core.has_fatal()) {
      break;
    }
    if (event->cycle > core.cycle()) {
      const uint64_t budget = max_cycles - (core.cycle() - start_cycle);
      const uint64_t need = std::min(event->cycle - core.cycle(), budget);
      if (need == 0) {
        break;
      }
      result = core.Run(need);
    }
    if (core.cycle() != event->cycle || core.halted() || core.has_fatal()) {
      // The machine halted (or hit the budget) before the injection point;
      // replay the remainder without it, like the recorded run would have.
      continue;
    }
    MSIM_RETURN_IF_ERROR(StmExtension::InjectRemoteCommit(
        core, event->clock_addr, event->vtbl_addr, event->vtbl_words, event->addr,
        event->value));
  }
  if (!core.halted() && !core.has_fatal() && core.cycle() - start_cycle < max_cycles) {
    result = core.Run(max_cycles - (core.cycle() - start_cycle));
  }
  // Rebuild the summary from core state so it is correct even when the last
  // Run() call above was skipped (e.g. machine halted before any injection).
  result.cycles = core.cycle() - start_cycle;
  result.instret = core.stats().instret;
  result.exit_code = core.exit_code();
  if (core.has_fatal()) {
    result.reason = RunResult::Reason::kFatal;
    result.fatal_message = core.fatal_status().message();
  } else if (core.halted()) {
    result.reason = RunResult::Reason::kHalted;
  } else {
    result.reason = RunResult::Reason::kCycleLimit;
  }
  return result;
}

void ReplayLog::Save(SnapWriter& w) const {
  const char magic[8] = {'M', 'S', 'I', 'M', 'R', 'P', 'L', 'Y'};
  for (char c : magic) {
    w.U8(static_cast<uint8_t>(c));
  }
  w.U32(kReplayLogVersion);
  w.U64(static_cast<uint64_t>(events_.size()));
  for (const Event& event : events_) {
    w.U8(static_cast<uint8_t>(event.kind));
    w.U64(event.cycle);
    switch (event.kind) {
      case Kind::kNicPacket:
        w.Bytes(event.payload);
        break;
      case Kind::kStmRemoteCommit:
        w.U32(event.clock_addr);
        w.U32(event.vtbl_addr);
        w.U32(event.vtbl_words);
        w.U32(event.addr);
        w.U32(event.value);
        break;
    }
  }
}

Status ReplayLog::Restore(SnapReader& r) {
  const char magic[8] = {'M', 'S', 'I', 'M', 'R', 'P', 'L', 'Y'};
  for (char c : magic) {
    if (static_cast<char>(r.U8()) != c) {
      return FailedPrecondition("not an msim replay log (bad magic)");
    }
  }
  const uint32_t version = r.U32();
  MSIM_RETURN_IF_ERROR(r.ToStatus("replay log header"));
  if (version != kReplayLogVersion) {
    return FailedPrecondition(StrFormat("replay log version %u not supported (expected %u)",
                                        version, kReplayLogVersion));
  }
  const uint64_t count = r.U64();
  MSIM_RETURN_IF_ERROR(r.ToStatus("replay log event count"));
  events_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    Event event;
    const uint8_t kind = r.U8();
    event.cycle = r.U64();
    switch (kind) {
      case static_cast<uint8_t>(Kind::kNicPacket):
        event.kind = Kind::kNicPacket;
        event.payload = r.Bytes();
        break;
      case static_cast<uint8_t>(Kind::kStmRemoteCommit):
        event.kind = Kind::kStmRemoteCommit;
        event.clock_addr = r.U32();
        event.vtbl_addr = r.U32();
        event.vtbl_words = r.U32();
        event.addr = r.U32();
        event.value = r.U32();
        break;
      default:
        return InvalidArgument(StrFormat("replay log event %llu has unknown kind %u",
                                         static_cast<unsigned long long>(i), kind));
    }
    MSIM_RETURN_IF_ERROR(r.ToStatus("replay log event"));
    events_.push_back(std::move(event));
  }
  return Status::Ok();
}

Status ReplayLog::SaveFile(const std::string& path) const {
  SnapWriter w;
  Save(w);
  return WriteFileBytes(path, w.bytes());
}

Status ReplayLog::LoadFile(const std::string& path) {
  MSIM_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes, ReadFileBytes(path));
  SnapReader r(bytes);
  return Restore(r);
}

}  // namespace msim
