// Versioned machine snapshots (checkpoint/restore).
//
// A snapshot is a small container around Core::SaveState:
//
//   magic    "MSIMSNAP"            8 bytes
//   version  u32                   kSnapshotVersion
//   config   u64                   CoreConfigHash of the saved machine
//   cycle    u64                   Core::cycle() at save time
//   sections u32 count, then per section: name (string), payload (bytes)
//
// The mandatory "core" section holds the complete machine state (including
// sparse DRAM). Callers can attach extra named sections — the CLI persists
// the fault-engine RNG position ("fault") and the mroutine profiler
// ("profiler") this way — and unknown sections are preserved for forward
// compatibility: restore hands them back instead of failing.
//
// Compatibility rules (docs/determinism.md):
//   * the version must match exactly — the format is byte-exact, so there is
//     no in-place migration;
//   * the CoreConfig hash must match the restoring machine's configuration —
//     timing parameters change architectural interleavings, so restoring
//     into a differently-configured core would be silently wrong.
// Both mismatches produce a clear FailedPrecondition error, never UB.
#ifndef MSIM_SNAP_SNAPSHOT_H_
#define MSIM_SNAP_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"

namespace msim {

class Core;
struct CoreConfig;

// Version 2: the core payload gained the predecode-cache section (contents
// and counters), and predecode_entries joined the config hash.
inline constexpr uint32_t kSnapshotVersion = 2;

// FNV-1a over every CoreConfig field; two configs hash equal iff a snapshot
// taken under one can be restored under the other.
uint64_t CoreConfigHash(const CoreConfig& config);

struct SnapshotSection {
  std::string name;
  std::vector<uint8_t> payload;
};

struct SnapshotMeta {
  uint32_t version = 0;
  uint64_t config_hash = 0;
  uint64_t cycle = 0;
};

// Serializes `core` (with DRAM) plus `extras` into a byte buffer.
std::vector<uint8_t> SaveSnapshot(const Core& core,
                                  const std::vector<SnapshotSection>& extras = {});

// Header-only parse: magic and version are validated, the config hash is not
// (callers use this to report *why* a snapshot is incompatible).
Result<SnapshotMeta> ReadSnapshotMeta(const std::vector<uint8_t>& image);

// Restores `core` from `image`. Validates magic, version and config hash
// against `core.config()` before touching any state. Extra sections are
// appended to `extras` when non-null (the "core" section is consumed).
Status RestoreSnapshot(Core& core, const std::vector<uint8_t>& image,
                       std::vector<SnapshotSection>* extras = nullptr);

// File variants.
Status SaveSnapshotFile(const Core& core, const std::string& path,
                        const std::vector<SnapshotSection>& extras = {});
Status RestoreSnapshotFile(Core& core, const std::string& path,
                           std::vector<SnapshotSection>* extras = nullptr);
Result<SnapshotMeta> ReadSnapshotMetaFile(const std::string& path);

// Shared by the replay log: whole-file byte I/O with Status errors.
Status WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes);
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

// Checkpoint discovery (used by the fleet supervisor to resume interrupted
// jobs, src/fleet). Lists the `checkpoint-<cycle>.msnap` files in `dir`,
// sorted by ascending cycle.
struct SnapshotFileInfo {
  std::string path;
  uint64_t cycle = 0;
};
Result<std::vector<SnapshotFileInfo>> ListSnapshots(const std::string& dir);

// Newest checkpoint in `dir` whose header parses (magic + version) and, when
// `expect_config_hash` is nonzero, whose CoreConfig hash matches. Corrupt or
// mismatched files are skipped, not errors — after a crash the newest file
// may be garbage while an older one is perfectly resumable.
Result<SnapshotFileInfo> FindLatestValidSnapshot(const std::string& dir,
                                                 uint64_t expect_config_hash = 0);

}  // namespace msim

#endif  // MSIM_SNAP_SNAPSHOT_H_
