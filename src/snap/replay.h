// Record/replay of nondeterministic host inputs.
//
// The simulator itself is deterministic: given a program, a config and a
// fault seed, every run is bit-identical. What makes two runs differ is the
// HOST — tests and harnesses push inputs into the machine mid-run (NIC packet
// arrivals, STM remote commits from a simulated "other core"). ReplayLog
// intercepts exactly those inputs: the Record* helpers apply the input AND
// append it to the log, so a saved log plus the original program reproduces
// the run without any host logic ("attach the snapshot + replay log",
// docs/determinism.md).
//
// File format: "MSIMRPLY" magic, u32 version, u64 event count, then per
// event: u8 kind, u64 cycle, kind-specific payload.
#ifndef MSIM_SNAP_REPLAY_H_
#define MSIM_SNAP_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "support/result.h"

namespace msim {

class MetalSystem;
class SnapWriter;
class SnapReader;

inline constexpr uint32_t kReplayLogVersion = 1;

class ReplayLog {
 public:
  enum class Kind : uint8_t {
    kNicPacket = 1,        // cycle = arrival cycle; payload = packet bytes
    kStmRemoteCommit = 2,  // cycle = injection cycle; u32 fields below
  };

  struct Event {
    Kind kind = Kind::kNicPacket;
    uint64_t cycle = 0;
    std::vector<uint8_t> payload;  // kNicPacket
    uint32_t clock_addr = 0;       // kStmRemoteCommit...
    uint32_t vtbl_addr = 0;
    uint32_t vtbl_words = 0;
    uint32_t addr = 0;
    uint32_t value = 0;
  };

  // Applies the input to `system` and records it. SchedulePacket is
  // cycle-addressed, so recording may happen any time before arrival.
  void RecordNicPacket(MetalSystem& system, uint64_t arrival_cycle,
                       std::vector<uint8_t> payload);
  // Applies an STM remote commit at the core's CURRENT cycle and records it.
  Status RecordStmRemoteCommit(MetalSystem& system, uint32_t clock_addr,
                               uint32_t vtbl_addr, uint32_t vtbl_words,
                               uint32_t addr, uint32_t value);

  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Runs `system` to completion (halt/fatal/max_cycles), re-applying every
  // recorded input at its recorded cycle. The system must be freshly booted
  // with the same program/mcode as the recorded run.
  Result<RunResult> Replay(MetalSystem& system, uint64_t max_cycles = 0);

  void Save(SnapWriter& w) const;
  Status Restore(SnapReader& r);
  Status SaveFile(const std::string& path) const;
  Status LoadFile(const std::string& path);

 private:
  std::vector<Event> events_;
};

}  // namespace msim

#endif  // MSIM_SNAP_REPLAY_H_
