// Lockstep divergence detection between two machine configurations.
//
// Runs two MetalSystems side by side and reports the first point where their
// architecturally visible behaviour differs, plus a structured diff of the
// delta (msim replay --until-divergence, and the mfuzz oracle).
//
// Two granularities:
//   * kCycle — both machines are stepped one cycle at a time and their full
//     state digests (Core::StateDigest, DRAM excluded) are compared after
//     every cycle. This pinpoints an injected fault to the exact cycle it
//     first perturbs state, but requires the two configurations to have
//     identical timing (same CoreConfig apart from the fault specs).
//   * kRetire — the retired-instruction streams are compared record by
//     record. Timing-insensitive, so it can compare configurations whose
//     interleavings differ (MRAM vs. DRAM mroutine storage, fast vs. slow
//     transitions); the first mismatching retired instruction is reported.
//
// Retire-stream canonicalization (both knobs default on in the CLI when the
// configs differ in the corresponding dimension):
//   * ignore_transition_retires drops menter/mexit records — the fast path
//     replaces them in decode, so they only retire in the slow path;
//   * metal_pc_insensitive compares Metal-mode records by raw word only —
//     mroutines live at different addresses under different storage modes.
#ifndef MSIM_SNAP_DIVERGE_H_
#define MSIM_SNAP_DIVERGE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/result.h"

namespace msim {

class MetalSystem;

enum class CompareGranularity { kCycle, kRetire };

struct RetireRecord {
  uint64_t cycle = 0;
  uint32_t pc = 0;
  uint32_t raw = 0;
  bool metal = false;
};

// One architectural register (or scalar) that differs: name, value in A,
// value in B.
struct RegDelta {
  std::string name;
  uint32_t a = 0;
  uint32_t b = 0;
};

struct DivergenceReport {
  bool diverged = false;
  CompareGranularity granularity = CompareGranularity::kCycle;
  // kCycle: both equal the first divergent cycle. kRetire: the cycle each
  // machine retired the first mismatching instruction at.
  uint64_t cycle_a = 0;
  uint64_t cycle_b = 0;
  uint64_t retire_index = 0;  // matching retires before the divergence
  // Component digests that differ at the divergence point (kCycle), e.g.
  // "mreg-file", "mram"; "pipeline" when only un-named core state differs.
  std::vector<std::string> components;
  std::vector<RegDelta> deltas;
  bool has_retires = false;  // kRetire: the mismatching records below are set
  RetireRecord retire_a;
  RetireRecord retire_b;
  bool a_finished = false;  // machine halted/faulted before the other
  bool b_finished = false;
  std::string summary;  // one-line human description
};

struct LockstepOptions {
  CompareGranularity granularity = CompareGranularity::kCycle;
  uint64_t max_cycles = 0;  // per machine; 0 = A's default_max_cycles
  bool ignore_transition_retires = false;
  bool metal_pc_insensitive = false;
};

// Boots both systems if needed and runs them to completion or first
// divergence. Cycle granularity requires identical timing configurations;
// this is the caller's contract (the CLI enforces it by construction).
Result<DivergenceReport> RunLockstep(MetalSystem& a, MetalSystem& b,
                                     const LockstepOptions& options);

void WriteDivergenceJson(const DivergenceReport& report, std::ostream& out);
void WriteDivergenceText(const DivergenceReport& report, std::ostream& out);

}  // namespace msim

#endif  // MSIM_SNAP_DIVERGE_H_
