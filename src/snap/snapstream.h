// Byte-exact binary serialization primitives for machine snapshots.
//
// SnapWriter/SnapReader implement a tiny little-endian wire format used by
// the checkpoint/restore layer (snap/snapshot.h) and the divergence detector
// (snap/diverge.h). Design constraints, in order:
//   * byte-exact determinism: the same machine state always serializes to the
//     same bytes, so snapshot files can be diffed and digests compared;
//   * streaming digest: the writer folds every byte into an FNV-1a hash as it
//     goes, and can run in digest-only mode (no buffering) so per-cycle state
//     digests cost no allocation;
//   * explicit failure: the reader never aborts — truncated or oversized
//     input trips a sticky failure flag the caller converts into a Status.
// No endianness, padding or struct-layout assumptions leak into the format:
// every field is written value-by-value.
#ifndef MSIM_SNAP_SNAPSTREAM_H_
#define MSIM_SNAP_SNAPSTREAM_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.h"

namespace msim {

inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

class SnapWriter {
 public:
  enum class Mode { kBuffer, kDigestOnly };

  explicit SnapWriter(Mode mode = Mode::kBuffer) : mode_(mode) {}

  void U8(uint8_t v) { Append(&v, 1); }
  void U16(uint16_t v) {
    uint8_t b[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
    Append(b, 2);
  }
  void U32(uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) {
      b[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    Append(b, 4);
  }
  void U64(uint64_t v) {
    uint8_t b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    Append(b, 8);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }

  // Length-prefixed byte array / string.
  void Bytes(const uint8_t* data, size_t size) {
    U64(static_cast<uint64_t>(size));
    Append(data, size);
  }
  void Bytes(const std::vector<uint8_t>& data) { Bytes(data.data(), data.size()); }
  void Str(std::string_view text) {
    Bytes(reinterpret_cast<const uint8_t*>(text.data()), text.size());
  }

  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buffer_); }
  uint64_t digest() const { return digest_; }
  uint64_t size() const { return written_; }

 private:
  void Append(const uint8_t* data, size_t size) {
    for (size_t i = 0; i < size; ++i) {
      digest_ = (digest_ ^ data[i]) * kFnvPrime;
    }
    written_ += size;
    if (mode_ == Mode::kBuffer) {
      buffer_.insert(buffer_.end(), data, data + size);
    }
  }

  Mode mode_;
  std::vector<uint8_t> buffer_;
  uint64_t digest_ = kFnvOffsetBasis;
  uint64_t written_ = 0;
};

class SnapReader {
 public:
  SnapReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit SnapReader(const std::vector<uint8_t>& data)
      : SnapReader(data.data(), data.size()) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t U8() {
    uint8_t b[1] = {};
    Take(b, 1);
    return b[0];
  }
  uint16_t U16() {
    uint8_t b[2] = {};
    Take(b, 2);
    return static_cast<uint16_t>(b[0] | (b[1] << 8));
  }
  uint32_t U32() {
    uint8_t b[4] = {};
    Take(b, 4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(b[i]) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    uint8_t b[8] = {};
    Take(b, 8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(b[i]) << (8 * i);
    }
    return v;
  }
  bool Bool() { return U8() != 0; }

  std::vector<uint8_t> Bytes() {
    const uint64_t size = U64();
    if (!ok_ || size > remaining()) {
      ok_ = false;
      return {};
    }
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + size);
    pos_ += size;
    return out;
  }
  std::string Str() {
    const std::vector<uint8_t> bytes = Bytes();
    return std::string(bytes.begin(), bytes.end());
  }

  // Converts the sticky failure flag into a Status, naming the consumer.
  Status ToStatus(const char* what) const {
    if (ok_) {
      return Status::Ok();
    }
    return InvalidArgument(std::string("truncated or malformed snapshot data while reading ") +
                           what);
  }

 private:
  void Take(uint8_t* out, size_t size) {
    if (!ok_ || size > remaining()) {
      ok_ = false;
      std::memset(out, 0, size);
      return;
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace msim

#endif  // MSIM_SNAP_SNAPSTREAM_H_
