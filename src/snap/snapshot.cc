#include "snap/snapshot.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "cpu/config.h"
#include "cpu/core.h"
#include "snap/snapstream.h"
#include "support/strings.h"

namespace msim {

namespace {

constexpr char kMagic[8] = {'M', 'S', 'I', 'M', 'S', 'N', 'A', 'P'};
constexpr const char* kCoreSection = "core";

}  // namespace

uint64_t CoreConfigHash(const CoreConfig& config) {
  SnapWriter w(SnapWriter::Mode::kDigestOnly);
  w.U32(config.dram_size);
  w.U32(config.icache_lines);
  w.U32(config.icache_line_size);
  w.U32(config.dcache_lines);
  w.U32(config.dcache_line_size);
  w.U32(config.cache_hit_latency);
  w.U32(config.dram_latency);
  w.U32(config.mmio_latency);
  w.U32(config.mram_latency);
  w.U32(config.tlb_entries);
  w.U32(static_cast<uint32_t>(config.mroutine_storage));
  w.Bool(config.fast_transition);
  w.U32(config.dram_handler_code_base);
  w.U32(config.dram_handler_data_base);
  w.Bool(config.mram_parity);
  w.U64(config.metal_watchdog_cycles);
  // Predecode geometry is serialized state, so it gates restore. fast_step is
  // deliberately ABSENT: stepping mode is architecturally invisible, and
  // snapshots must stay portable across it (the lockstep compare restores one
  // snapshot into both a fast and a slow core).
  w.U32(config.predecode_entries);
  return w.digest();
}

std::vector<uint8_t> SaveSnapshot(const Core& core,
                                  const std::vector<SnapshotSection>& extras) {
  SnapWriter core_state;
  core.SaveState(core_state, /*include_dram=*/true);

  SnapWriter w;
  for (char c : kMagic) {
    w.U8(static_cast<uint8_t>(c));
  }
  w.U32(kSnapshotVersion);
  w.U64(CoreConfigHash(core.config()));
  w.U64(core.cycle());
  w.U32(static_cast<uint32_t>(1 + extras.size()));
  w.Str(kCoreSection);
  w.Bytes(core_state.bytes());
  for (const SnapshotSection& section : extras) {
    w.Str(section.name);
    w.Bytes(section.payload);
  }
  return w.TakeBytes();
}

namespace {

// Parses the fixed header; on success leaves `r` positioned at the section
// count.
Status ParseHeader(SnapReader& r, SnapshotMeta* meta) {
  char magic[8];
  for (char& c : magic) {
    c = static_cast<char>(r.U8());
  }
  MSIM_RETURN_IF_ERROR(r.ToStatus("snapshot magic"));
  for (size_t i = 0; i < sizeof(kMagic); ++i) {
    if (magic[i] != kMagic[i]) {
      return FailedPrecondition("not an msim snapshot (bad magic)");
    }
  }
  meta->version = r.U32();
  meta->config_hash = r.U64();
  meta->cycle = r.U64();
  MSIM_RETURN_IF_ERROR(r.ToStatus("snapshot header"));
  if (meta->version != kSnapshotVersion) {
    return FailedPrecondition(StrFormat(
        "snapshot version %u is not supported by this build (expected %u); "
        "re-create the snapshot with a matching msim",
        meta->version, kSnapshotVersion));
  }
  return Status::Ok();
}

}  // namespace

Result<SnapshotMeta> ReadSnapshotMeta(const std::vector<uint8_t>& image) {
  SnapReader r(image);
  SnapshotMeta meta;
  MSIM_RETURN_IF_ERROR(ParseHeader(r, &meta));
  return meta;
}

Status RestoreSnapshot(Core& core, const std::vector<uint8_t>& image,
                       std::vector<SnapshotSection>* extras) {
  SnapReader r(image);
  SnapshotMeta meta;
  MSIM_RETURN_IF_ERROR(ParseHeader(r, &meta));
  const uint64_t want_hash = CoreConfigHash(core.config());
  if (meta.config_hash != want_hash) {
    return FailedPrecondition(StrFormat(
        "snapshot was taken under a different CoreConfig (hash %016llx, this "
        "machine %016llx); restore requires identical timing/storage "
        "configuration",
        static_cast<unsigned long long>(meta.config_hash),
        static_cast<unsigned long long>(want_hash)));
  }

  const uint32_t num_sections = r.U32();
  MSIM_RETURN_IF_ERROR(r.ToStatus("snapshot section count"));
  bool restored_core = false;
  for (uint32_t i = 0; i < num_sections; ++i) {
    const std::string name = r.Str();
    const std::vector<uint8_t> payload = r.Bytes();
    MSIM_RETURN_IF_ERROR(r.ToStatus("snapshot section"));
    if (name == kCoreSection) {
      SnapReader section(payload);
      MSIM_RETURN_IF_ERROR(core.RestoreState(section));
      restored_core = true;
    } else if (extras != nullptr) {
      extras->push_back(SnapshotSection{name, payload});
    }
  }
  if (!restored_core) {
    return InvalidArgument("snapshot has no core section");
  }
  return Status::Ok();
}

Status WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return NotFound(StrFormat("cannot open %s for writing", path.c_str()));
  }
  const size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = std::fclose(f) == 0 && written == bytes.size();
  if (!ok) {
    return Internal(StrFormat("short write to %s", path.c_str()));
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[65536];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    return Internal(StrFormat("read error on %s", path.c_str()));
  }
  return bytes;
}

Status SaveSnapshotFile(const Core& core, const std::string& path,
                        const std::vector<SnapshotSection>& extras) {
  // Write-then-rename so a reader (or a resume after the writer was SIGKILLed
  // mid-save) never observes a truncated snapshot at the final path.
  const std::string tmp = path + ".tmp";
  MSIM_RETURN_IF_ERROR(WriteFileBytes(tmp, SaveSnapshot(core, extras)));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Internal(StrFormat("cannot rename %s into place", tmp.c_str()));
  }
  return Status::Ok();
}

Status RestoreSnapshotFile(Core& core, const std::string& path,
                           std::vector<SnapshotSection>* extras) {
  MSIM_ASSIGN_OR_RETURN(const std::vector<uint8_t> image, ReadFileBytes(path));
  return RestoreSnapshot(core, image, extras);
}

Result<SnapshotMeta> ReadSnapshotMetaFile(const std::string& path) {
  MSIM_ASSIGN_OR_RETURN(const std::vector<uint8_t> image, ReadFileBytes(path));
  return ReadSnapshotMeta(image);
}

Result<std::vector<SnapshotFileInfo>> ListSnapshots(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return NotFound(StrFormat("cannot open checkpoint directory %s", dir.c_str()));
  }
  std::vector<SnapshotFileInfo> found;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    // checkpoint-<cycle>.msnap, as written by `msim run --checkpoint-every`.
    constexpr const char* kPrefix = "checkpoint-";
    constexpr const char* kSuffix = ".msnap";
    if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix) ||
        name.compare(0, std::strlen(kPrefix), kPrefix) != 0 ||
        name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix), kSuffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        std::strlen(kPrefix), name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
    const auto cycle = ParseInt(digits);
    if (!cycle || *cycle < 0) {
      continue;
    }
    found.push_back(SnapshotFileInfo{dir + "/" + name, static_cast<uint64_t>(*cycle)});
  }
  ::closedir(d);
  std::sort(found.begin(), found.end(),
            [](const SnapshotFileInfo& a, const SnapshotFileInfo& b) { return a.cycle < b.cycle; });
  return found;
}

Result<SnapshotFileInfo> FindLatestValidSnapshot(const std::string& dir,
                                                 uint64_t expect_config_hash) {
  MSIM_ASSIGN_OR_RETURN(std::vector<SnapshotFileInfo> all, ListSnapshots(dir));
  // Newest first; skip anything that fails header validation (a stray or
  // corrupt file must not stop a resume when an older good checkpoint exists).
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    const auto meta = ReadSnapshotMetaFile(it->path);
    if (!meta.ok()) {
      continue;
    }
    if (expect_config_hash != 0 && meta->config_hash != expect_config_hash) {
      continue;
    }
    it->cycle = meta->cycle;
    return *it;
  }
  return NotFound(StrFormat("no valid checkpoint in %s", dir.c_str()));
}

}  // namespace msim
