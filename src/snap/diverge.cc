#include "snap/diverge.h"

#include <deque>

#include "cpu/core.h"
#include "isa/decode.h"
#include "metal/system.h"
#include "snap/snapstream.h"
#include "support/strings.h"
#include "trace/json.h"

namespace msim {

namespace {

// Digest of one component's serialized state (DRAM never included here; the
// per-component breakdown is for naming the divergent unit, not for equality
// — the full-state digest decides that).
template <typename Component>
uint64_t ComponentDigest(const Component& component) {
  SnapWriter w(SnapWriter::Mode::kDigestOnly);
  component.SaveState(w);
  return w.digest();
}

void CompareComponents(Core& a, Core& b, DivergenceReport* report) {
  struct Named {
    const char* name;
    uint64_t a;
    uint64_t b;
  };
  const Named digests[] = {
      {"metal-unit", ComponentDigest(a.metal()), ComponentDigest(b.metal())},
      {"mram", ComponentDigest(a.mram()), ComponentDigest(b.mram())},
      {"tlb", ComponentDigest(a.mmu().tlb()), ComponentDigest(b.mmu().tlb())},
      {"icache", ComponentDigest(a.icache()), ComponentDigest(b.icache())},
      {"dcache", ComponentDigest(a.dcache()), ComponentDigest(b.dcache())},
      {"intc", ComponentDigest(a.intc()), ComponentDigest(b.intc())},
      {"timer", ComponentDigest(a.timer()), ComponentDigest(b.timer())},
      {"nic", ComponentDigest(a.nic()), ComponentDigest(b.nic())},
      {"console", ComponentDigest(a.console()), ComponentDigest(b.console())},
  };
  for (const Named& digest : digests) {
    if (digest.a != digest.b) {
      report->components.push_back(digest.name);
    }
  }
  if (report->components.empty()) {
    // The full digests differ but every named component matches: the delta is
    // in the core's own registers/latches.
    report->components.push_back("pipeline");
  }
}

void CompareRegisters(Core& a, Core& b, DivergenceReport* report) {
  for (uint8_t i = 0; i < 32; ++i) {
    const uint32_t va = a.ReadReg(i);
    const uint32_t vb = b.ReadReg(i);
    if (va != vb) {
      report->deltas.push_back({StrFormat("x%u", i), va, vb});
    }
  }
  for (uint8_t i = 0; i < kNumMetalRegisters; ++i) {
    const uint32_t va = a.metal().ReadMreg(i);
    const uint32_t vb = b.metal().ReadMreg(i);
    if (va != vb) {
      report->deltas.push_back({StrFormat("m%u", i), va, vb});
    }
  }
  for (uint32_t i = 0; i < kCrCount; ++i) {
    const uint32_t va =
        a.metal().ReadCreg(i, a.cycle(), a.stats().instret, a.intc().pending());
    const uint32_t vb =
        b.metal().ReadCreg(i, b.cycle(), b.stats().instret, b.intc().pending());
    if (va != vb) {
      report->deltas.push_back({StrFormat("c%u", i), va, vb});
    }
  }
  if (a.fetch_pc() != b.fetch_pc()) {
    report->deltas.push_back({"pc", a.fetch_pc(), b.fetch_pc()});
  }
  if (a.metal_mode() != b.metal_mode()) {
    report->deltas.push_back({"metal_mode", a.metal_mode() ? 1u : 0u, b.metal_mode() ? 1u : 0u});
  }
  if (a.halted() != b.halted()) {
    report->deltas.push_back({"halted", a.halted() ? 1u : 0u, b.halted() ? 1u : 0u});
  }
  if (a.exit_code() != b.exit_code()) {
    report->deltas.push_back({"exit_code", a.exit_code(), b.exit_code()});
  }
}

bool Finished(const Core& core) { return core.halted() || core.has_fatal(); }

Result<DivergenceReport> RunCycleLockstep(MetalSystem& sys_a, MetalSystem& sys_b,
                                          uint64_t max_cycles) {
  Core& a = sys_a.core();
  Core& b = sys_b.core();
  DivergenceReport report;
  report.granularity = CompareGranularity::kCycle;

  for (uint64_t step = 0; step <= max_cycles; ++step) {
    if (a.StateDigest() != b.StateDigest()) {
      report.diverged = true;
      report.cycle_a = a.cycle();
      report.cycle_b = b.cycle();
      report.a_finished = Finished(a);
      report.b_finished = Finished(b);
      CompareComponents(a, b, &report);
      CompareRegisters(a, b, &report);
      std::string components;
      for (const std::string& component : report.components) {
        if (!components.empty()) {
          components += ",";
        }
        components += component;
      }
      report.summary = StrFormat("states diverge at cycle %llu (components: %s)",
                                 static_cast<unsigned long long>(report.cycle_a),
                                 components.c_str());
      return report;
    }
    if (Finished(a) && Finished(b)) {
      report.a_finished = true;
      report.b_finished = true;
      report.summary = StrFormat("no divergence: both machines finished at cycle %llu",
                                 static_cast<unsigned long long>(a.cycle()));
      return report;
    }
    if (step == max_cycles) {
      break;
    }
    a.StepCycle();
    b.StepCycle();
  }
  report.summary = StrFormat("no divergence within %llu cycles",
                             static_cast<unsigned long long>(max_cycles));
  return report;
}

bool IsTransitionRetire(uint32_t raw) {
  const InstrKind kind = DecodeInstr(raw).kind;
  return kind == InstrKind::kMenter || kind == InstrKind::kMexit;
}

Result<DivergenceReport> RunRetireLockstep(MetalSystem& sys_a, MetalSystem& sys_b,
                                           const LockstepOptions& options,
                                           uint64_t max_cycles) {
  Core& a = sys_a.core();
  Core& b = sys_b.core();
  DivergenceReport report;
  report.granularity = CompareGranularity::kRetire;

  std::deque<RetireRecord> ra;
  std::deque<RetireRecord> rb;
  const bool drop_transitions = options.ignore_transition_retires;
  auto collect = [drop_transitions](std::deque<RetireRecord>* into) {
    return [into, drop_transitions](const Core::RetireEvent& event) {
      if (drop_transitions && IsTransitionRetire(event.raw)) {
        return;
      }
      into->push_back({event.cycle, event.pc, event.raw, event.metal});
    };
  };
  a.SetRetireTrace(collect(&ra));
  b.SetRetireTrace(collect(&rb));
  // The collectors capture stack state; never leave them attached.
  struct TraceGuard {
    Core& a;
    Core& b;
    ~TraceGuard() {
      a.SetRetireTrace({});
      b.SetRetireTrace({});
    }
  } guard{a, b};

  const uint64_t start_a = a.cycle();
  const uint64_t start_b = b.cycle();
  // A fast_step core is pumped through StepFast so the compare actually
  // exercises the hot path (that is the whole point of the fast-vs-slow
  // oracle); max_retires bounds how far past the first retirement it can run
  // so the record deques stay small. StepFast refuses ineligible states, so
  // the StepCycle fallback below stays the reference.
  auto pump = [max_cycles](Core& core, std::deque<RetireRecord>& records,
                           uint64_t start) {
    while (records.empty() && !Finished(core) && core.cycle() - start < max_cycles) {
      if (core.config().fast_step &&
          core.StepFast(max_cycles - (core.cycle() - start), /*max_retires=*/1024) != 0) {
        continue;
      }
      core.StepCycle();
    }
    return !records.empty();
  };

  uint64_t matched = 0;
  while (true) {
    const bool have_a = pump(a, ra, start_a);
    const bool have_b = pump(b, rb, start_b);
    if (!have_a || !have_b) {
      if (have_a != have_b) {
        // One stream ended early: a length divergence.
        report.diverged = true;
        report.retire_index = matched;
        report.cycle_a = a.cycle();
        report.cycle_b = b.cycle();
        report.a_finished = Finished(a);
        report.b_finished = Finished(b);
        report.has_retires = have_a || have_b;
        if (have_a) {
          report.retire_a = ra.front();
        }
        if (have_b) {
          report.retire_b = rb.front();
        }
        CompareRegisters(a, b, &report);
        report.summary = StrFormat(
            "retire streams diverge in length after %llu matching instructions "
            "(%s retires more)",
            static_cast<unsigned long long>(matched), have_a ? "A" : "B");
        return report;
      }
      break;  // both ended
    }
    const RetireRecord& head_a = ra.front();
    const RetireRecord& head_b = rb.front();
    const bool compare_pc = !(options.metal_pc_insensitive && head_a.metal && head_b.metal);
    const bool equal = head_a.raw == head_b.raw && head_a.metal == head_b.metal &&
                       (!compare_pc || head_a.pc == head_b.pc);
    if (!equal) {
      report.diverged = true;
      report.retire_index = matched;
      report.cycle_a = head_a.cycle;
      report.cycle_b = head_b.cycle;
      report.has_retires = true;
      report.retire_a = head_a;
      report.retire_b = head_b;
      CompareRegisters(a, b, &report);
      report.summary = StrFormat(
          "retire streams diverge at instruction %llu (A: pc=0x%08x raw=0x%08x, "
          "B: pc=0x%08x raw=0x%08x)",
          static_cast<unsigned long long>(matched), head_a.pc, head_a.raw, head_b.pc,
          head_b.raw);
      return report;
    }
    ra.pop_front();
    rb.pop_front();
    ++matched;
  }

  // Streams matched to the end; the final architectural outcome must agree
  // too (exit code and console output are the program's observable result).
  if (a.exit_code() != b.exit_code() || a.halted() != b.halted() ||
      a.console().output() != b.console().output()) {
    report.diverged = true;
    report.retire_index = matched;
    report.cycle_a = a.cycle();
    report.cycle_b = b.cycle();
    report.a_finished = Finished(a);
    report.b_finished = Finished(b);
    CompareRegisters(a, b, &report);
    report.summary = StrFormat(
        "retire streams match (%llu instructions) but final outcomes differ "
        "(exit %u vs %u)",
        static_cast<unsigned long long>(matched), a.exit_code(), b.exit_code());
    return report;
  }
  report.retire_index = matched;
  report.a_finished = Finished(a);
  report.b_finished = Finished(b);
  report.summary = StrFormat("no divergence: %llu retired instructions match",
                             static_cast<unsigned long long>(matched));
  return report;
}

}  // namespace

Result<DivergenceReport> RunLockstep(MetalSystem& a, MetalSystem& b,
                                     const LockstepOptions& options) {
  MSIM_RETURN_IF_ERROR(a.Boot());
  MSIM_RETURN_IF_ERROR(b.Boot());
  const uint64_t max_cycles = options.max_cycles != 0
                                  ? options.max_cycles
                                  : a.core().config().default_max_cycles;
  if (options.granularity == CompareGranularity::kCycle) {
    return RunCycleLockstep(a, b, max_cycles);
  }
  return RunRetireLockstep(a, b, options, max_cycles);
}

namespace {

void WriteRetireRecord(JsonWriter& json, const char* key, const RetireRecord& record) {
  json.BeginObject(key);
  json.Field("cycle", record.cycle);
  json.Field("pc", StrFormat("0x%08x", record.pc));
  json.Field("raw", StrFormat("0x%08x", record.raw));
  json.Field("metal", record.metal);
  json.EndObject();
}

}  // namespace

void WriteDivergenceJson(const DivergenceReport& report, std::ostream& out) {
  JsonWriter json(out);
  json.BeginObject();
  json.Field("diverged", report.diverged);
  json.Field("granularity",
             report.granularity == CompareGranularity::kCycle ? "cycle" : "retire");
  json.Field("summary", report.summary);
  json.Field("cycle_a", report.cycle_a);
  json.Field("cycle_b", report.cycle_b);
  json.Field("retire_index", report.retire_index);
  json.Field("a_finished", report.a_finished);
  json.Field("b_finished", report.b_finished);
  json.BeginArray("components");
  for (const std::string& component : report.components) {
    json.Value(component);
  }
  json.EndArray();
  json.BeginArray("deltas");
  for (const RegDelta& delta : report.deltas) {
    json.BeginObject();
    json.Field("reg", delta.name);
    json.Field("a", StrFormat("0x%08x", delta.a));
    json.Field("b", StrFormat("0x%08x", delta.b));
    json.EndObject();
  }
  json.EndArray();
  if (report.has_retires) {
    WriteRetireRecord(json, "retire_a", report.retire_a);
    WriteRetireRecord(json, "retire_b", report.retire_b);
  }
  json.EndObject();
  out << "\n";
}

void WriteDivergenceText(const DivergenceReport& report, std::ostream& out) {
  out << (report.diverged ? "DIVERGENCE: " : "ok: ") << report.summary << "\n";
  if (!report.diverged) {
    return;
  }
  if (report.has_retires) {
    out << StrFormat("  A retired pc=0x%08x raw=0x%08x cycle=%llu%s\n", report.retire_a.pc,
                     report.retire_a.raw,
                     static_cast<unsigned long long>(report.retire_a.cycle),
                     report.retire_a.metal ? " [metal]" : "");
    out << StrFormat("  B retired pc=0x%08x raw=0x%08x cycle=%llu%s\n", report.retire_b.pc,
                     report.retire_b.raw,
                     static_cast<unsigned long long>(report.retire_b.cycle),
                     report.retire_b.metal ? " [metal]" : "");
  }
  for (const std::string& component : report.components) {
    out << "  component: " << component << "\n";
  }
  for (const RegDelta& delta : report.deltas) {
    out << StrFormat("  %-10s A=0x%08x B=0x%08x\n", delta.name.c_str(), delta.a, delta.b);
  }
}

}  // namespace msim
