// The system bus: routes physical addresses to DRAM or MMIO devices.
//
// Physical address map:
//   [0, dram_size)          DRAM
//   [0xF0000000, ...)       MMIO devices (uncached, word access only)
//   0xFFFF0000..0xFFFF3FFF  MRAM code segment (fetch port only, not on the bus)
#ifndef MSIM_MEM_BUS_H_
#define MSIM_MEM_BUS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/phys_mem.h"

namespace msim {

inline constexpr uint32_t kMmioBase = 0xF0000000u;

class InterruptController;

// A memory-mapped device. Offsets are relative to the device's base address.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual const char* name() const = 0;
  virtual uint32_t size() const = 0;
  virtual uint32_t Read32(uint32_t offset) = 0;
  virtual void Write32(uint32_t offset, uint32_t value) = 0;
  // Called once per simulated cycle; devices raise interrupts here.
  virtual void Tick(uint64_t cycle, InterruptController& intc) {
    (void)cycle;
    (void)intc;
  }
  // The earliest cycle > `cycle` at which this device's Tick would do
  // anything beyond idempotent bookkeeping (raise an interrupt, deliver a
  // packet). kNoPendingEvent when no event is scheduled. The hot-path stepper
  // (Core::Run with fast_step) skips per-cycle Tick calls strictly before
  // this horizon; a device whose Tick is not an idempotent catch-up must
  // override this to return `cycle + 1` (the conservative default is "event
  // every cycle" only for such devices — the built-in devices all catch up
  // from the cycle argument).
  static constexpr uint64_t kNoPendingEvent = UINT64_MAX;
  virtual uint64_t NextEventCycle(uint64_t cycle) const {
    (void)cycle;
    return kNoPendingEvent;
  }
};

class Bus {
 public:
  explicit Bus(uint32_t dram_size) : dram_(dram_size) {}

  PhysicalMemory& dram() { return dram_; }
  const PhysicalMemory& dram() const { return dram_; }

  // Registers `device` at `base` (must be >= kMmioBase, non-overlapping).
  Status AttachDevice(uint32_t base, MmioDevice* device);

  // Word access routed to DRAM or a device. nullopt/false = bus error.
  std::optional<uint32_t> Read32(uint32_t paddr);
  bool Write32(uint32_t paddr, uint32_t value);
  // Sub-word accesses are DRAM-only (devices are word-oriented).
  std::optional<uint16_t> Read16(uint32_t paddr);
  std::optional<uint8_t> Read8(uint32_t paddr);
  bool Write16(uint32_t paddr, uint16_t value);
  bool Write8(uint32_t paddr, uint8_t value);

  bool IsMmio(uint32_t paddr) const { return paddr >= kMmioBase; }

  // Advances all devices by one cycle.
  void TickDevices(uint64_t cycle, InterruptController& intc);

  // Minimum of the attached devices' NextEventCycle: the first cycle after
  // `cycle` whose TickDevices may have an observable effect.
  uint64_t NextDeviceEventCycle(uint64_t cycle) const;

 private:
  struct Mapping {
    uint32_t base = 0;
    MmioDevice* device = nullptr;
  };
  MmioDevice* Find(uint32_t paddr, uint32_t* offset);

  PhysicalMemory dram_;
  std::vector<Mapping> mappings_;
};

}  // namespace msim

#endif  // MSIM_MEM_BUS_H_
