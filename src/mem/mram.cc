#include "mem/mram.h"

#include <algorithm>
#include <cstring>

#include "snap/snapstream.h"
#include "support/bits.h"

namespace msim {

namespace {

uint8_t WordParity(uint32_t word) { return static_cast<uint8_t>(Popcount(word) & 1); }

}  // namespace

Mram::Mram()
    : code_(kMramCodeSize, 0),
      data_(kMramDataSize, 0),
      code_shadow_(kMramCodeSize, 0),
      data_shadow_(kMramDataSize, 0),
      code_parity_(kMramCodeSize / 4, 0),
      data_parity_(kMramDataSize / 4, 0) {}

uint32_t Mram::LoadWord(const std::vector<uint8_t>& segment, uint32_t offset) const {
  uint32_t word;
  std::memcpy(&word, &segment[offset], 4);
  return word;
}

void Mram::StoreWord(std::vector<uint8_t>& segment, uint32_t offset, uint32_t word) {
  std::memcpy(&segment[offset], &word, 4);
}

std::optional<uint32_t> Mram::FetchWord(uint32_t addr) const {
  if (!InCodeRange(addr) || (addr & 3) != 0) {
    return std::nullopt;
  }
  ++stats_.code_fetches;
  if (tracer_ != nullptr) {
    tracer_->Emit(TraceEventKind::kMramAccess, addr, /*arg0=*/0, /*arg1=*/0, /*metal=*/true);
  }
  return LoadWord(code_, addr - kMramCodeBase);
}

bool Mram::WriteCodeWord(uint32_t offset, uint32_t word) {
  if (offset + 4 > code_.size() || (offset & 3) != 0) {
    return false;
  }
  StoreWord(code_, offset, word);
  StoreWord(code_shadow_, offset, word);
  code_parity_[offset / 4] = WordParity(word);
  ++generation_;
  return true;
}

std::optional<uint32_t> Mram::ReadData32(uint32_t offset) const {
  if (offset + 4 > data_.size() || offset + 4 < offset) {
    return std::nullopt;
  }
  ++stats_.data_reads;
  if (tracer_ != nullptr) {
    tracer_->Emit(TraceEventKind::kMramAccess, offset, /*arg0=*/1, /*arg1=*/0, /*metal=*/true);
  }
  return LoadWord(data_, offset);
}

bool Mram::WriteData32(uint32_t offset, uint32_t value) {
  if (offset + 4 > data_.size() || offset + 4 < offset) {
    return false;
  }
  ++stats_.data_writes;
  if (tracer_ != nullptr) {
    tracer_->Emit(TraceEventKind::kMramAccess, offset, /*arg0=*/2, /*arg1=*/0, /*metal=*/true);
  }
  StoreWord(data_, offset, value);
  StoreWord(data_shadow_, offset, value);
  data_parity_[offset / 4] = WordParity(value);
  ++generation_;
  return true;
}

bool Mram::CodeParityError(uint32_t addr) const {
  if (!parity_enabled_ || !InCodeRange(addr) || (addr & 3) != 0) {
    return false;
  }
  const uint32_t offset = addr - kMramCodeBase;
  if (WordParity(LoadWord(code_, offset)) == code_parity_[offset / 4]) {
    return false;
  }
  ++stats_.parity_errors;
  return true;
}

bool Mram::DataParityError(uint32_t offset) const {
  if (!parity_enabled_ || offset + 4 > data_.size() || offset + 4 < offset ||
      (offset & 3) != 0) {
    return false;
  }
  if (WordParity(LoadWord(data_, offset)) == data_parity_[offset / 4]) {
    return false;
  }
  ++stats_.parity_errors;
  return true;
}

bool Mram::CorruptCodeWord(uint32_t offset, uint32_t and_mask, uint32_t xor_mask) {
  if (offset + 4 > code_.size() || (offset & 3) != 0) {
    return false;
  }
  StoreWord(code_, offset, (LoadWord(code_, offset) & and_mask) ^ xor_mask);
  ++stats_.words_corrupted;
  ++generation_;
  return true;
}

bool Mram::CorruptDataWord(uint32_t offset, uint32_t and_mask, uint32_t xor_mask) {
  if (offset + 4 > data_.size() || (offset & 3) != 0) {
    return false;
  }
  StoreWord(data_, offset, (LoadWord(data_, offset) & and_mask) ^ xor_mask);
  ++stats_.words_corrupted;
  ++generation_;
  return true;
}

uint32_t Mram::Scrub() {
  uint32_t restored = 0;
  const auto scrub_segment = [&](std::vector<uint8_t>& segment,
                                 const std::vector<uint8_t>& shadow,
                                 std::vector<uint8_t>& parity) {
    for (uint32_t offset = 0; offset + 4 <= segment.size(); offset += 4) {
      const uint32_t good = LoadWord(shadow, offset);
      if (LoadWord(segment, offset) != good) {
        StoreWord(segment, offset, good);
        ++restored;
      }
      parity[offset / 4] = WordParity(good);
    }
  };
  scrub_segment(code_, code_shadow_, code_parity_);
  scrub_segment(data_, data_shadow_, data_parity_);
  stats_.words_scrubbed += restored;
  ++generation_;
  return restored;
}

void Mram::Clear() {
  std::fill(code_.begin(), code_.end(), 0);
  std::fill(data_.begin(), data_.end(), 0);
  std::fill(code_shadow_.begin(), code_shadow_.end(), 0);
  std::fill(data_shadow_.begin(), data_shadow_.end(), 0);
  std::fill(code_parity_.begin(), code_parity_.end(), 0);
  std::fill(data_parity_.begin(), data_parity_.end(), 0);
  ++generation_;
}

void Mram::RegisterMetrics(MetricRegistry& registry) const {
  registry.Register("mram", "code_fetches", &stats_.code_fetches,
                    "instruction words read through the fetch port");
  registry.Register("mram", "data_reads", &stats_.data_reads, "mld accesses");
  registry.Register("mram", "data_writes", &stats_.data_writes, "mst accesses");
  registry.Register("mram", "parity_errors", &stats_.parity_errors,
                    "parity mismatches observed on fetch/mld");
  registry.Register("mram", "words_corrupted", &stats_.words_corrupted,
                    "words rewritten behind the write path (fault injection)");
  registry.Register("mram", "words_scrubbed", &stats_.words_scrubbed,
                    "words restored from the shadow copy by Scrub()");
}

void Mram::SaveState(SnapWriter& w) const {
  w.Bool(parity_enabled_);
  w.U64(generation_);
  w.Bytes(code_);
  w.Bytes(data_);
  w.Bytes(code_shadow_);
  w.Bytes(data_shadow_);
  w.Bytes(code_parity_);
  w.Bytes(data_parity_);
  w.U64(stats_.code_fetches);
  w.U64(stats_.data_reads);
  w.U64(stats_.data_writes);
  w.U64(stats_.parity_errors);
  w.U64(stats_.words_corrupted);
  w.U64(stats_.words_scrubbed);
}

Status Mram::RestoreState(SnapReader& r) {
  parity_enabled_ = r.Bool();
  generation_ = r.U64();
  std::vector<uint8_t> code = r.Bytes();
  std::vector<uint8_t> data = r.Bytes();
  std::vector<uint8_t> code_shadow = r.Bytes();
  std::vector<uint8_t> data_shadow = r.Bytes();
  std::vector<uint8_t> code_parity = r.Bytes();
  std::vector<uint8_t> data_parity = r.Bytes();
  MSIM_RETURN_IF_ERROR(r.ToStatus("mram segments"));
  if (code.size() != code_.size() || data.size() != data_.size() ||
      code_shadow.size() != code_shadow_.size() || data_shadow.size() != data_shadow_.size() ||
      code_parity.size() != code_parity_.size() || data_parity.size() != data_parity_.size()) {
    return InvalidArgument("snapshot MRAM geometry differs from this build");
  }
  code_ = std::move(code);
  data_ = std::move(data);
  code_shadow_ = std::move(code_shadow);
  data_shadow_ = std::move(data_shadow);
  code_parity_ = std::move(code_parity);
  data_parity_ = std::move(data_parity);
  stats_.code_fetches = r.U64();
  stats_.data_reads = r.U64();
  stats_.data_writes = r.U64();
  stats_.parity_errors = r.U64();
  stats_.words_corrupted = r.U64();
  stats_.words_scrubbed = r.U64();
  return r.ToStatus("mram stats");
}

}  // namespace msim
