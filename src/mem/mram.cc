#include "mem/mram.h"

#include <algorithm>
#include <cstring>

namespace msim {

Mram::Mram() : code_(kMramCodeSize, 0), data_(kMramDataSize, 0) {}

std::optional<uint32_t> Mram::FetchWord(uint32_t addr) const {
  if (!InCodeRange(addr) || (addr & 3) != 0) {
    return std::nullopt;
  }
  ++stats_.code_fetches;
  if (tracer_ != nullptr) {
    tracer_->Emit(TraceEventKind::kMramAccess, addr, /*arg0=*/0, /*arg1=*/0, /*metal=*/true);
  }
  uint32_t word;
  std::memcpy(&word, &code_[addr - kMramCodeBase], 4);
  return word;
}

bool Mram::WriteCodeWord(uint32_t offset, uint32_t word) {
  if (offset + 4 > code_.size() || (offset & 3) != 0) {
    return false;
  }
  std::memcpy(&code_[offset], &word, 4);
  return true;
}

std::optional<uint32_t> Mram::ReadData32(uint32_t offset) const {
  if (offset + 4 > data_.size() || offset + 4 < offset) {
    return std::nullopt;
  }
  ++stats_.data_reads;
  if (tracer_ != nullptr) {
    tracer_->Emit(TraceEventKind::kMramAccess, offset, /*arg0=*/1, /*arg1=*/0, /*metal=*/true);
  }
  uint32_t value;
  std::memcpy(&value, &data_[offset], 4);
  return value;
}

bool Mram::WriteData32(uint32_t offset, uint32_t value) {
  if (offset + 4 > data_.size() || offset + 4 < offset) {
    return false;
  }
  ++stats_.data_writes;
  if (tracer_ != nullptr) {
    tracer_->Emit(TraceEventKind::kMramAccess, offset, /*arg0=*/2, /*arg1=*/0, /*metal=*/true);
  }
  std::memcpy(&data_[offset], &value, 4);
  return true;
}

void Mram::Clear() {
  std::fill(code_.begin(), code_.end(), 0);
  std::fill(data_.begin(), data_.end(), 0);
}

void Mram::RegisterMetrics(MetricRegistry& registry) const {
  registry.Register("mram", "code_fetches", &stats_.code_fetches,
                    "instruction words read through the fetch port");
  registry.Register("mram", "data_reads", &stats_.data_reads, "mld accesses");
  registry.Register("mram", "data_writes", &stats_.data_writes, "mst accesses");
}

}  // namespace msim
