// Flat physical memory (the simulated DRAM).
#ifndef MSIM_MEM_PHYS_MEM_H_
#define MSIM_MEM_PHYS_MEM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "asm/program.h"
#include "support/result.h"

namespace msim {

class SnapWriter;
class SnapReader;

class PhysicalMemory {
 public:
  explicit PhysicalMemory(uint32_t size_bytes);

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }

  // Aligned accessors; nullopt/false on out-of-range. Alignment is checked by
  // the CPU core before these are called, but misaligned addresses are still
  // handled correctly (byte-assembled little-endian).
  std::optional<uint32_t> Read32(uint32_t paddr) const;
  std::optional<uint16_t> Read16(uint32_t paddr) const;
  std::optional<uint8_t> Read8(uint32_t paddr) const;
  bool Write32(uint32_t paddr, uint32_t value);
  bool Write16(uint32_t paddr, uint16_t value);
  bool Write8(uint32_t paddr, uint8_t value);

  // Copies a program section into memory. Fails if it does not fit.
  Status LoadSection(const Section& section);

  // Zeroes all of memory.
  void Clear();

  // Monotonic mutation counter: bumped by every successful write, section
  // load, Clear and RestoreState. The predecode cache (src/cpu/predecode.h)
  // keys decoded DRAM words on this, so any write path — pipeline stores,
  // the loader, host-side pokes through Bus — implicitly invalidates stale
  // decodes without a snoop port.
  uint64_t write_generation() const { return write_generation_; }

  // Checkpoint/restore (src/snap). The image is sparse and page-granular:
  // only pages containing a non-zero byte are written, so a 16 MiB DRAM with
  // a small program serializes to a few KiB. Restore zeroes everything first;
  // it fails if the saved size differs from this memory's size.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

 private:
  std::vector<uint8_t> bytes_;
  uint64_t write_generation_ = 0;
};

}  // namespace msim

#endif  // MSIM_MEM_PHYS_MEM_H_
