#include "mem/bus.h"

#include <algorithm>

#include "support/strings.h"

namespace msim {

Status Bus::AttachDevice(uint32_t base, MmioDevice* device) {
  if (base < kMmioBase) {
    return InvalidArgument(StrFormat("device base 0x%08x below MMIO region", base));
  }
  for (const Mapping& m : mappings_) {
    const uint32_t m_end = m.base + m.device->size();
    const uint32_t new_end = base + device->size();
    if (base < m_end && m.base < new_end) {
      return AlreadyExists(StrFormat("device '%s' overlaps '%s'", device->name(),
                                     m.device->name()));
    }
  }
  mappings_.push_back({base, device});
  return Status::Ok();
}

MmioDevice* Bus::Find(uint32_t paddr, uint32_t* offset) {
  for (const Mapping& m : mappings_) {
    if (paddr >= m.base && paddr < m.base + m.device->size()) {
      *offset = paddr - m.base;
      return m.device;
    }
  }
  return nullptr;
}

std::optional<uint32_t> Bus::Read32(uint32_t paddr) {
  if (IsMmio(paddr)) {
    uint32_t offset = 0;
    MmioDevice* device = Find(paddr, &offset);
    if (device == nullptr) {
      return std::nullopt;
    }
    return device->Read32(offset);
  }
  return dram_.Read32(paddr);
}

bool Bus::Write32(uint32_t paddr, uint32_t value) {
  if (IsMmio(paddr)) {
    uint32_t offset = 0;
    MmioDevice* device = Find(paddr, &offset);
    if (device == nullptr) {
      return false;
    }
    device->Write32(offset, value);
    return true;
  }
  return dram_.Write32(paddr, value);
}

std::optional<uint16_t> Bus::Read16(uint32_t paddr) {
  if (IsMmio(paddr)) {
    return std::nullopt;
  }
  return dram_.Read16(paddr);
}

std::optional<uint8_t> Bus::Read8(uint32_t paddr) {
  if (IsMmio(paddr)) {
    return std::nullopt;
  }
  return dram_.Read8(paddr);
}

bool Bus::Write16(uint32_t paddr, uint16_t value) {
  if (IsMmio(paddr)) {
    return false;
  }
  return dram_.Write16(paddr, value);
}

bool Bus::Write8(uint32_t paddr, uint8_t value) {
  if (IsMmio(paddr)) {
    return false;
  }
  return dram_.Write8(paddr, value);
}

void Bus::TickDevices(uint64_t cycle, InterruptController& intc) {
  for (const Mapping& m : mappings_) {
    m.device->Tick(cycle, intc);
  }
}

uint64_t Bus::NextDeviceEventCycle(uint64_t cycle) const {
  uint64_t next = MmioDevice::kNoPendingEvent;
  for (const Mapping& m : mappings_) {
    next = std::min(next, m.device->NextEventCycle(cycle));
  }
  return next;
}

}  // namespace msim
