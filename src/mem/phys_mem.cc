#include "mem/phys_mem.h"

#include <algorithm>
#include <cstring>

#include "support/strings.h"

namespace msim {

PhysicalMemory::PhysicalMemory(uint32_t size_bytes) : bytes_(size_bytes, 0) {}

std::optional<uint32_t> PhysicalMemory::Read32(uint32_t paddr) const {
  if (paddr + 4 > bytes_.size() || paddr + 4 < paddr) {
    return std::nullopt;
  }
  uint32_t value;
  std::memcpy(&value, &bytes_[paddr], 4);
  return value;
}

std::optional<uint16_t> PhysicalMemory::Read16(uint32_t paddr) const {
  if (paddr + 2 > bytes_.size() || paddr + 2 < paddr) {
    return std::nullopt;
  }
  uint16_t value;
  std::memcpy(&value, &bytes_[paddr], 2);
  return value;
}

std::optional<uint8_t> PhysicalMemory::Read8(uint32_t paddr) const {
  if (paddr >= bytes_.size()) {
    return std::nullopt;
  }
  return bytes_[paddr];
}

bool PhysicalMemory::Write32(uint32_t paddr, uint32_t value) {
  if (paddr + 4 > bytes_.size() || paddr + 4 < paddr) {
    return false;
  }
  std::memcpy(&bytes_[paddr], &value, 4);
  return true;
}

bool PhysicalMemory::Write16(uint32_t paddr, uint16_t value) {
  if (paddr + 2 > bytes_.size() || paddr + 2 < paddr) {
    return false;
  }
  std::memcpy(&bytes_[paddr], &value, 2);
  return true;
}

bool PhysicalMemory::Write8(uint32_t paddr, uint8_t value) {
  if (paddr >= bytes_.size()) {
    return false;
  }
  bytes_[paddr] = value;
  return true;
}

Status PhysicalMemory::LoadSection(const Section& section) {
  if (section.bytes.empty()) {
    return Status::Ok();
  }
  if (section.base + section.bytes.size() > bytes_.size() ||
      section.base + section.bytes.size() < section.base) {
    return OutOfRange(StrFormat("section [0x%08x, 0x%08x) does not fit in %u bytes of memory",
                                section.base, section.end(), size()));
  }
  std::copy(section.bytes.begin(), section.bytes.end(), bytes_.begin() + section.base);
  return Status::Ok();
}

void PhysicalMemory::Clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

}  // namespace msim
