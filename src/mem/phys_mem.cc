#include "mem/phys_mem.h"

#include <algorithm>
#include <cstring>

#include "snap/snapstream.h"
#include "support/strings.h"

namespace msim {

PhysicalMemory::PhysicalMemory(uint32_t size_bytes) : bytes_(size_bytes, 0) {}

std::optional<uint32_t> PhysicalMemory::Read32(uint32_t paddr) const {
  if (paddr + 4 > bytes_.size() || paddr + 4 < paddr) {
    return std::nullopt;
  }
  uint32_t value;
  std::memcpy(&value, &bytes_[paddr], 4);
  return value;
}

std::optional<uint16_t> PhysicalMemory::Read16(uint32_t paddr) const {
  if (paddr + 2 > bytes_.size() || paddr + 2 < paddr) {
    return std::nullopt;
  }
  uint16_t value;
  std::memcpy(&value, &bytes_[paddr], 2);
  return value;
}

std::optional<uint8_t> PhysicalMemory::Read8(uint32_t paddr) const {
  if (paddr >= bytes_.size()) {
    return std::nullopt;
  }
  return bytes_[paddr];
}

bool PhysicalMemory::Write32(uint32_t paddr, uint32_t value) {
  if (paddr + 4 > bytes_.size() || paddr + 4 < paddr) {
    return false;
  }
  std::memcpy(&bytes_[paddr], &value, 4);
  ++write_generation_;
  return true;
}

bool PhysicalMemory::Write16(uint32_t paddr, uint16_t value) {
  if (paddr + 2 > bytes_.size() || paddr + 2 < paddr) {
    return false;
  }
  std::memcpy(&bytes_[paddr], &value, 2);
  ++write_generation_;
  return true;
}

bool PhysicalMemory::Write8(uint32_t paddr, uint8_t value) {
  if (paddr >= bytes_.size()) {
    return false;
  }
  bytes_[paddr] = value;
  ++write_generation_;
  return true;
}

Status PhysicalMemory::LoadSection(const Section& section) {
  if (section.bytes.empty()) {
    return Status::Ok();
  }
  if (section.base + section.bytes.size() > bytes_.size() ||
      section.base + section.bytes.size() < section.base) {
    return OutOfRange(StrFormat("section [0x%08x, 0x%08x) does not fit in %u bytes of memory",
                                section.base, section.end(), size()));
  }
  std::copy(section.bytes.begin(), section.bytes.end(), bytes_.begin() + section.base);
  ++write_generation_;
  return Status::Ok();
}

void PhysicalMemory::Clear() {
  std::fill(bytes_.begin(), bytes_.end(), 0);
  ++write_generation_;
}

namespace {
constexpr uint32_t kSnapPageSize = 4096;
}  // namespace

void PhysicalMemory::SaveState(SnapWriter& w) const {
  w.U32(size());
  w.U64(write_generation_);
  w.U32(kSnapPageSize);
  const uint32_t num_pages = (size() + kSnapPageSize - 1) / kSnapPageSize;
  uint32_t live_pages = 0;
  for (uint32_t page = 0; page < num_pages; ++page) {
    const uint32_t begin = page * kSnapPageSize;
    const uint32_t end = std::min(begin + kSnapPageSize, size());
    bool live = false;
    for (uint32_t i = begin; i < end && !live; ++i) {
      live = bytes_[i] != 0;
    }
    live_pages += live ? 1 : 0;
  }
  w.U32(live_pages);
  for (uint32_t page = 0; page < num_pages; ++page) {
    const uint32_t begin = page * kSnapPageSize;
    const uint32_t end = std::min(begin + kSnapPageSize, size());
    bool live = false;
    for (uint32_t i = begin; i < end && !live; ++i) {
      live = bytes_[i] != 0;
    }
    if (live) {
      w.U32(page);
      w.Bytes(bytes_.data() + begin, end - begin);
    }
  }
}

Status PhysicalMemory::RestoreState(SnapReader& r) {
  const uint32_t saved_size = r.U32();
  const uint64_t saved_generation = r.U64();
  const uint32_t page_size = r.U32();
  const uint32_t live_pages = r.U32();
  MSIM_RETURN_IF_ERROR(r.ToStatus("dram header"));
  if (saved_size != size()) {
    return InvalidArgument(StrFormat("snapshot DRAM size %u differs from configured size %u",
                                     saved_size, size()));
  }
  if (page_size != kSnapPageSize) {
    return InvalidArgument(StrFormat("snapshot DRAM page size %u unsupported", page_size));
  }
  Clear();
  for (uint32_t i = 0; i < live_pages; ++i) {
    const uint32_t page = r.U32();
    const std::vector<uint8_t> contents = r.Bytes();
    MSIM_RETURN_IF_ERROR(r.ToStatus("dram page"));
    const uint64_t begin = static_cast<uint64_t>(page) * kSnapPageSize;
    if (begin + contents.size() > size()) {
      return InvalidArgument(StrFormat("snapshot DRAM page %u out of range", page));
    }
    std::copy(contents.begin(), contents.end(), bytes_.begin() + begin);
  }
  // Last: Clear() above bumps the generation, and a restored machine must
  // report exactly the saved value or the re-serialized state diverges.
  write_generation_ = saved_generation;
  return Status::Ok();
}

}  // namespace msim
