// MRAM: the small RAM collocated with the instruction fetch unit (paper §2).
//
// MRAM is split into a code segment (mroutines, fetched by the pipeline when
// executing in Metal mode) and a data segment (mroutine-private data, accessed
// with mld/mst). It is not on the system bus: normal loads/stores cannot reach
// it, and MRAM accesses never touch the caches.
#ifndef MSIM_MEM_MRAM_H_
#define MSIM_MEM_MRAM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/metrics.h"
#include "trace/trace.h"

namespace msim {

// The code segment occupies a dedicated region of the fetch address space so
// that intra-mroutine branches and jumps work unmodified.
inline constexpr uint32_t kMramCodeBase = 0xFFFF0000u;
inline constexpr uint32_t kMramCodeSize = 16 * 1024;  // 4096 instructions
inline constexpr uint32_t kMramDataSize = 8 * 1024;

struct MramStats {
  uint64_t code_fetches = 0;  // successful fetch-port reads
  uint64_t data_reads = 0;
  uint64_t data_writes = 0;
};

class Mram {
 public:
  Mram();

  static bool InCodeRange(uint32_t addr) {
    return addr >= kMramCodeBase && addr < kMramCodeBase + kMramCodeSize;
  }

  // Fetch port (1-cycle; used combinationally for decode-stage replacement).
  std::optional<uint32_t> FetchWord(uint32_t addr) const;

  // Loader-side write into the code segment (offset from kMramCodeBase).
  bool WriteCodeWord(uint32_t offset, uint32_t word);

  // Data segment, addressed by byte offset (mld/mst).
  std::optional<uint32_t> ReadData32(uint32_t offset) const;
  bool WriteData32(uint32_t offset, uint32_t value);

  void Clear();

  const MramStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MramStats{}; }
  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  std::vector<uint8_t> code_;
  std::vector<uint8_t> data_;
  // The fetch/read ports are architecturally read-only, so accounting from
  // the const accessors mutates through `mutable`.
  mutable MramStats stats_;
  Tracer* tracer_ = nullptr;
};

}  // namespace msim

#endif  // MSIM_MEM_MRAM_H_
