// MRAM: the small RAM collocated with the instruction fetch unit (paper §2).
//
// MRAM is split into a code segment (mroutines, fetched by the pipeline when
// executing in Metal mode) and a data segment (mroutine-private data, accessed
// with mld/mst). It is not on the system bus: normal loads/stores cannot reach
// it, and MRAM accesses never touch the caches.
//
// Reliability model (docs/robustness.md): every 32-bit word carries a parity
// bit maintained by the write path (loader writes, mst). Fault injection
// corrupts words *behind* the write path (CorruptCodeWord/CorruptDataWord), so
// a subsequent fetch or mld observes a parity mismatch — the pipeline turns
// that into a machine check instead of executing/returning the corrupted word.
// A shadow copy tracks the last legitimately written contents; Scrub()
// restores mismatching words from it (ECC-style scrubbing), which is what the
// machine-check recovery mroutine triggers through the MRAMSCRUB control
// register.
#ifndef MSIM_MEM_MRAM_H_
#define MSIM_MEM_MRAM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "support/result.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace msim {

class SnapWriter;
class SnapReader;

// The code segment occupies a dedicated region of the fetch address space so
// that intra-mroutine branches and jumps work unmodified.
inline constexpr uint32_t kMramCodeBase = 0xFFFF0000u;
inline constexpr uint32_t kMramCodeSize = 16 * 1024;  // 4096 instructions
inline constexpr uint32_t kMramDataSize = 8 * 1024;

struct MramStats {
  uint64_t code_fetches = 0;  // successful fetch-port reads
  uint64_t data_reads = 0;
  uint64_t data_writes = 0;
  uint64_t parity_errors = 0;   // mismatches observed by CodeParityError/DataParityError
  uint64_t words_corrupted = 0; // CorruptCodeWord/CorruptDataWord applications
  uint64_t words_scrubbed = 0;  // words restored from the shadow copy
};

class Mram {
 public:
  Mram();

  static bool InCodeRange(uint32_t addr) {
    return addr >= kMramCodeBase && addr < kMramCodeBase + kMramCodeSize;
  }

  // Fetch port (1-cycle; used combinationally for decode-stage replacement).
  // Returns the stored (possibly corrupted) word; the caller checks
  // CodeParityError to decide whether it is trustworthy.
  std::optional<uint32_t> FetchWord(uint32_t addr) const;

  // Accounting for a fetch served from the predecode cache: counts the code
  // fetch and emits the same trace event FetchWord would, without touching
  // the array. Keeps mram.code_fetches and the kMramAccess trace stream
  // identical between cached and cold fetch paths.
  void NoteCachedFetch(uint32_t addr) const {
    ++stats_.code_fetches;
    if (tracer_ != nullptr) {
      tracer_->Emit(TraceEventKind::kMramAccess, addr, /*arg0=*/0, /*arg1=*/0, /*metal=*/true);
    }
  }

  // Monotonic mutation counter covering BOTH segments: bumped by code/data
  // writes (loader, mst), corruption behind the write path, scrubs, Clear
  // and RestoreState. The predecode cache keys decoded mroutine words on it,
  // so any MRAM mutation forces a re-fetch + parity re-check before a cached
  // decode is trusted again.
  uint64_t generation() const { return generation_; }

  // Loader-side write into the code segment (offset from kMramCodeBase).
  bool WriteCodeWord(uint32_t offset, uint32_t word);

  // Data segment, addressed by byte offset (mld/mst).
  std::optional<uint32_t> ReadData32(uint32_t offset) const;
  bool WriteData32(uint32_t offset, uint32_t value);

  // --- reliability model ---
  void SetParityEnabled(bool enabled) { parity_enabled_ = enabled; }
  bool parity_enabled() const { return parity_enabled_; }

  // True when parity is enabled and the stored word's parity bit mismatches
  // its contents. `addr` is a code address; `offset` a data byte offset.
  // Counts a parity error when it returns true.
  bool CodeParityError(uint32_t addr) const;
  bool DataParityError(uint32_t offset) const;

  // Fault-injection ports: rewrite the stored word as (word & and_mask) ^
  // xor_mask WITHOUT updating parity or the shadow copy — this is corruption
  // behind the write path. Returns false for out-of-range/misaligned offsets.
  bool CorruptCodeWord(uint32_t offset, uint32_t and_mask, uint32_t xor_mask);
  bool CorruptDataWord(uint32_t offset, uint32_t and_mask, uint32_t xor_mask);

  // Restores every word that differs from the shadow copy and recomputes its
  // parity. Returns the number of words restored.
  uint32_t Scrub();

  void Clear();

  // Checkpoint/restore (src/snap): contents, shadow copies, parity bits and
  // counters — including corruption applied behind the write path, so a
  // restored machine re-observes the same parity errors.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

  const MramStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MramStats{}; }
  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  uint32_t LoadWord(const std::vector<uint8_t>& segment, uint32_t offset) const;
  void StoreWord(std::vector<uint8_t>& segment, uint32_t offset, uint32_t word);

  std::vector<uint8_t> code_;
  std::vector<uint8_t> data_;
  // Last legitimately written contents (loader writes and mst); Scrub()
  // restores the primary arrays from these.
  std::vector<uint8_t> code_shadow_;
  std::vector<uint8_t> data_shadow_;
  // One parity bit per 32-bit word, maintained by the write path only.
  std::vector<uint8_t> code_parity_;
  std::vector<uint8_t> data_parity_;
  bool parity_enabled_ = true;
  uint64_t generation_ = 0;
  // The fetch/read ports are architecturally read-only, so accounting from
  // the const accessors mutates through `mutable`.
  mutable MramStats stats_;
  Tracer* tracer_ = nullptr;
};

}  // namespace msim

#endif  // MSIM_MEM_MRAM_H_
