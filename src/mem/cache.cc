#include "mem/cache.h"

#include <cassert>

#include "snap/snapstream.h"
#include "support/bits.h"

namespace msim {

Cache::Cache(uint32_t num_lines, uint32_t line_size, uint32_t hit_latency, uint32_t miss_latency)
    : num_lines_(num_lines),
      line_size_(line_size),
      hit_latency_(hit_latency),
      miss_latency_(miss_latency),
      lines_(num_lines) {
  assert(IsPowerOfTwo(num_lines) && IsPowerOfTwo(line_size));
}

uint32_t Cache::Access(uint32_t paddr) {
  Line& line = lines_[IndexOf(paddr)];
  const uint32_t tag = TagOf(paddr);
  if (line.valid && line.tag == tag) {
    ++stats_.hits;
    return hit_latency_;
  }
  ++stats_.misses;
  if (tracer_ != nullptr) {
    tracer_->Emit(miss_kind_, paddr);
  }
  line.valid = true;
  line.tag = tag;
  return miss_latency_;
}

void Cache::RegisterMetrics(MetricRegistry& registry, const std::string& component) const {
  registry.Register(component, "hits", &stats_.hits, "accesses that hit a resident line");
  registry.Register(component, "misses", &stats_.misses, "accesses that filled a line");
}

bool Cache::CorruptLine(uint32_t index, uint32_t and_mask, uint32_t xor_mask) {
  Line& line = lines_[index % num_lines_];
  if (!line.valid) {
    return false;
  }
  line.tag = (line.tag & and_mask) ^ xor_mask;
  return true;
}

void Cache::InvalidateAll() {
  for (Line& line : lines_) {
    line.valid = false;
  }
}

void Cache::SaveState(SnapWriter& w) const {
  w.U32(num_lines_);
  for (const Line& line : lines_) {
    w.Bool(line.valid);
    w.U32(line.tag);
  }
  w.U64(stats_.hits);
  w.U64(stats_.misses);
}

Status Cache::RestoreState(SnapReader& r) {
  const uint32_t saved_lines = r.U32();
  MSIM_RETURN_IF_ERROR(r.ToStatus("cache header"));
  if (saved_lines != num_lines_) {
    return InvalidArgument("snapshot cache geometry differs from this configuration");
  }
  for (Line& line : lines_) {
    line.valid = r.Bool();
    line.tag = r.U32();
  }
  stats_.hits = r.U64();
  stats_.misses = r.U64();
  return r.ToStatus("cache lines");
}

}  // namespace msim
