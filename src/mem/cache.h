// Direct-mapped cache timing model.
//
// The cache tracks tags only: data always comes from the backing store so the
// model is purely a latency/statistics device. This keeps the simulator
// functionally simple while preserving the latency ordering the paper's
// claims rest on (MRAM ~ cache hit << DRAM). It also lets benches measure the
// cache-pollution ablation (a trap handler fetched through the I-cache evicts
// application lines; an mroutine in MRAM does not — paper §2, "Accesses to
// the RAM do not alter processor caches").
#ifndef MSIM_MEM_CACHE_H_
#define MSIM_MEM_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace msim {

class SnapWriter;
class SnapReader;

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

class Cache {
 public:
  // num_lines and line_size must be powers of two.
  Cache(uint32_t num_lines, uint32_t line_size, uint32_t hit_latency, uint32_t miss_latency);

  // Performs a (timing-only) access; returns the latency in cycles and
  // updates tags and statistics.
  uint32_t Access(uint32_t paddr);

  // True if the line holding paddr is currently resident (no state change).
  // Inline: the hot-path stepper (Core::StepFast) probes once per cycle.
  bool Probe(uint32_t paddr) const {
    const Line& line = lines_[IndexOf(paddr)];
    return line.valid && line.tag == TagOf(paddr);
  }

  // Hot-path port (Core::StepFast): once Probe confirmed residency, Access
  // would only count a hit and return hit_latency_ — the stepper counts the
  // hits locally and credits them in bulk at window exit.
  void CreditHits(uint64_t n) { stats_.hits += n; }

  void InvalidateAll();

  // Fault-injection port: rewrites the indexed line's tag as
  // (tag & and_mask) ^ xor_mask. A corrupted tag makes the line hit for the
  // wrong address range — a timing-only upset, since the model is tags-only
  // and data always comes from the backing store. `index` wraps modulo the
  // line count. Only valid lines are affected; returns whether one was.
  bool CorruptLine(uint32_t index, uint32_t and_mask, uint32_t xor_mask);

  uint32_t num_lines() const { return num_lines_; }

  // Checkpoint/restore (src/snap): tag array and counters. Geometry and
  // latencies come from CoreConfig, not the snapshot; restore fails if the
  // saved line count differs.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  // Registers hit/miss counters under `component` (e.g. "icache").
  void RegisterMetrics(MetricRegistry& registry, const std::string& component) const;

  // Attaches the core's tracer; misses emit `miss_kind` events.
  void SetTracer(Tracer* tracer, TraceEventKind miss_kind) {
    tracer_ = tracer;
    miss_kind_ = miss_kind;
  }

  uint32_t hit_latency() const { return hit_latency_; }
  uint32_t miss_latency() const { return miss_latency_; }

 private:
  struct Line {
    bool valid = false;
    uint32_t tag = 0;
  };

  uint32_t IndexOf(uint32_t paddr) const { return (paddr / line_size_) & (num_lines_ - 1); }
  uint32_t TagOf(uint32_t paddr) const { return paddr / line_size_ / num_lines_; }

  uint32_t num_lines_;
  uint32_t line_size_;
  uint32_t hit_latency_;
  uint32_t miss_latency_;
  std::vector<Line> lines_;
  CacheStats stats_;
  Tracer* tracer_ = nullptr;
  TraceEventKind miss_kind_ = TraceEventKind::kDCacheMiss;
};

}  // namespace msim

#endif  // MSIM_MEM_CACHE_H_
