#include "fault/crash_dump.h"

#include <fstream>

#include "cpu/core.h"
#include "trace/flight.h"
#include "trace/json.h"

namespace msim {

void WriteCrashDump(Core& core, const RingBufferSink* trace, const FlightRecorder* flight,
                    const CrashDumpOptions& options, std::ostream& out) {
  const CoreStats& stats = core.stats();
  const MetalUnit& metal = core.metal();
  const auto creg = [&](uint32_t number) {
    return core.metal().ReadCreg(number, core.cycle(), stats.instret, core.intc().pending());
  };

  JsonWriter json(out);
  json.BeginObject();
  json.Field("version", 2);
  json.Field("reason", options.reason);
  json.Field("fatal_message", options.fatal_message);
  json.Field("cycle", core.cycle());
  json.Field("instret", stats.instret);
  json.Field("halted", core.halted());
  json.Field("exit_code", core.exit_code());

  json.BeginObject("metal");
  json.Field("mode", core.metal_mode());
  json.Field("in_machine_check", core.in_machine_check());
  json.Field("menters", stats.menters);
  json.Field("mexits", stats.mexits);
  json.Field("machine_checks", stats.machine_checks);
  json.Field("watchdog_fires", stats.watchdog_fires);
  json.EndObject();

  json.BeginArray("gprs");
  for (uint8_t i = 0; i < 32; ++i) {
    json.Value(static_cast<uint64_t>(core.ReadReg(i)));
  }
  json.EndArray();

  json.BeginArray("mregs");
  for (uint8_t i = 0; i < 32; ++i) {
    json.Value(static_cast<uint64_t>(metal.ReadMreg(i)));
  }
  json.EndArray();

  json.BeginObject("trap");
  json.Field("mcause", creg(kCrMcause));
  json.Field("mepc", creg(kCrMepc));
  json.Field("mbadvaddr", creg(kCrMbadvaddr));
  json.Field("minstr", creg(kCrMinstr));
  json.EndObject();

  const auto kind = static_cast<McheckKind>(creg(kCrMcheckKind));
  json.BeginObject("machine_check");
  json.Field("kind", static_cast<uint64_t>(kind));
  json.Field("kind_name", McheckKindName(kind));
  json.Field("info", creg(kCrMcheckInfo));
  json.Field("saved_m31", creg(kCrMcheckM31));
  json.EndObject();

  json.BeginArray("trace");
  if (trace != nullptr) {
    const std::vector<TraceEvent> events = trace->Events();
    const size_t first =
        events.size() > options.max_trace_events ? events.size() - options.max_trace_events : 0;
    for (size_t i = first; i < events.size(); ++i) {
      const TraceEvent& event = events[i];
      json.BeginObject();
      json.Field("cycle", event.cycle);
      json.Field("kind", TraceEventKindName(event.kind));
      json.Field("pc", event.pc);
      json.Field("arg0", event.arg0);
      json.Field("arg1", event.arg1);
      json.Field("metal", event.metal);
      json.EndObject();
    }
  }
  json.EndArray();

  json.BeginObject("flight_recorder");
  if (flight != nullptr) {
    flight->AppendJson(json);
  } else {
    json.Field("capacity", 0);
    json.Field("total", 0);
    json.Field("dropped", 0);
    json.BeginArray("events");
    json.EndArray();
  }
  json.EndObject();

  json.EndObject();
  out << "\n";
}

Status WriteCrashDumpFile(Core& core, const RingBufferSink* trace, const FlightRecorder* flight,
                          const CrashDumpOptions& options, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return InvalidArgument("cannot open crash-dump file: " + path);
  }
  WriteCrashDump(core, trace, flight, options, out);
  if (!out.good()) {
    return Internal("failed writing crash dump to " + path);
  }
  return Status::Ok();
}

}  // namespace msim
