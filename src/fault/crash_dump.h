// Structured crash dumps (docs/robustness.md).
//
// When the simulator dies — an undelegated trap, a double machine check, any
// Fatal() — the CLI can serialize the architectural state to JSON
// (`msim run --crash-dump FILE`) so the failure is debuggable after the
// process exits: GPRs, Metal registers, the Metal mode/entry state, the
// pending trap and machine-check control registers, and the last N structured
// trace events from an attached ring buffer. The dump contains only simulated
// state (no timestamps, no host paths), so a deterministic run produces a
// byte-identical dump.
#ifndef MSIM_FAULT_CRASH_DUMP_H_
#define MSIM_FAULT_CRASH_DUMP_H_

#include <cstddef>
#include <ostream>
#include <string>

#include "support/result.h"
#include "trace/trace.h"

namespace msim {

class Core;

struct CrashDumpOptions {
  std::string reason;         // "fatal" | "halted" | "cycle_limit" (RunResult)
  std::string fatal_message;  // empty unless reason == "fatal"
  size_t max_trace_events = 64;  // last-N cap on the trace ring buffer
};

// Writes the dump JSON for `core`. `trace` may be null (the "trace" array is
// then empty).
void WriteCrashDump(Core& core, const RingBufferSink* trace, const CrashDumpOptions& options,
                    std::ostream& out);

// WriteCrashDump into `path`; fails if the file cannot be created.
Status WriteCrashDumpFile(Core& core, const RingBufferSink* trace,
                          const CrashDumpOptions& options, const std::string& path);

}  // namespace msim

#endif  // MSIM_FAULT_CRASH_DUMP_H_
