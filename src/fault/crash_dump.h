// Structured crash dumps (docs/robustness.md).
//
// When the simulator dies — an undelegated trap, a double machine check, any
// Fatal() — the CLI can serialize the architectural state to JSON
// (`msim run --crash-dump FILE`) so the failure is debuggable after the
// process exits: GPRs, Metal registers, the Metal mode/entry state, the
// pending trap and machine-check control registers, the last N structured
// trace events from an attached ring buffer, and the flight recorder's ring
// of architectural events (trace/flight.h) when one is attached. The dump
// contains only simulated state (no timestamps, no host paths), so a
// deterministic run produces a byte-identical dump.
//
// Dump versions:
//   1 — initial format (through the fault-injection PR)
//   2 — adds the "flight_recorder" section
#ifndef MSIM_FAULT_CRASH_DUMP_H_
#define MSIM_FAULT_CRASH_DUMP_H_

#include <cstddef>
#include <ostream>
#include <string>

#include "support/result.h"
#include "trace/trace.h"

namespace msim {

class Core;
class FlightRecorder;

struct CrashDumpOptions {
  std::string reason;         // "fatal" | "halted" | "cycle_limit" (RunResult)
  std::string fatal_message;  // empty unless reason == "fatal"
  size_t max_trace_events = 64;  // last-N cap on the trace ring buffer
};

// Writes the dump JSON for `core`. `trace` may be null (the "trace" array is
// then empty); `flight` may be null (the "flight_recorder" object then
// records zero events).
void WriteCrashDump(Core& core, const RingBufferSink* trace, const FlightRecorder* flight,
                    const CrashDumpOptions& options, std::ostream& out);

// WriteCrashDump into `path`; fails if the file cannot be created.
Status WriteCrashDumpFile(Core& core, const RingBufferSink* trace, const FlightRecorder* flight,
                          const CrashDumpOptions& options, const std::string& path);

}  // namespace msim

#endif  // MSIM_FAULT_CRASH_DUMP_H_
