// Deterministic fault injection (docs/robustness.md).
//
// A FaultEngine owns a list of parsed fault specs and a seeded RNG
// (support/rng.h). The core calls Tick() at the top of every StepCycle; specs
// whose trigger matches rewrite processor state as (word & and_mask) ^
// xor_mask — bit flips or stuck-at bits in MRAM words, Metal registers, TLB
// entries, cache tags or the next bus response. Because every random choice
// (probabilistic triggers, unpinned locations and bits) draws from the one
// seeded generator in spec order, a given program + seed + spec list replays
// the exact same upsets on every run.
//
// Spec grammar (CLI: `msim run --inject SPEC`, repeatable):
//
//   SPEC    := TARGET '@' TRIGGER [':' PARAM (',' PARAM)*]
//   TARGET  := mram-code | mram-data | mreg | tlb | icache | dcache | bus
//   TRIGGER := CYCLE        one-shot, fires at the first cycle >= CYCLE
//            | '~' N        probabilistic, 1/N chance every cycle
//   PARAM   := bit=N        corrupt bit N (repeatable; bits accumulate)
//            | mask=X       corrupt the bits set in X
//            | at=N         location: MRAM byte offset / mreg index /
//                           TLB-entry or cache-line index (ignored for bus)
//            | stuck=0|1    stuck-at instead of the default bit flip
//
// Unpinned locations and an empty bit set are chosen uniformly by the RNG at
// application time (one random word, one random bit).
#ifndef MSIM_FAULT_FAULT_H_
#define MSIM_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.h"
#include "support/rng.h"
#include "trace/metrics.h"

namespace msim {

class Core;
class SnapWriter;
class SnapReader;
struct CoreConfig;

enum class FaultTarget : uint32_t {
  kMramCode = 0,  // MRAM code words (detected by fetch parity)
  kMramData = 1,  // MRAM data words (detected by mld parity)
  kMreg = 2,      // Metal registers m0..m31 (silent)
  kTlb = 3,       // TLB entry PTEs (silent; surfaces as wrong translations)
  kICache = 4,    // I-cache tags (timing-only)
  kDCache = 5,    // D-cache tags (timing-only)
  kBus = 6,       // next completed load's response (silent)
};

const char* FaultTargetName(FaultTarget target);

// How the corruption mask is applied to the victim word.
enum class FaultMode : uint32_t {
  kFlip = 0,    // word ^ mask
  kStuck0 = 1,  // word & ~mask
  kStuck1 = 2,  // (word & ~mask) | mask
};

struct FaultSpec {
  FaultTarget target = FaultTarget::kMramCode;
  bool probabilistic = false;
  uint64_t cycle = 0;   // one-shot: fires at the first Tick with cycle >= this
  uint64_t period = 1;  // probabilistic: 1/period chance per cycle
  bool has_at = false;
  uint32_t at = 0;      // location (see grammar); random when !has_at
  uint32_t mask = 0;    // bits to corrupt; a random single bit when zero
  FaultMode mode = FaultMode::kFlip;
  std::string text;     // the original spec, for diagnostics
};

// Parses one spec string; the error message names the offending piece.
Result<FaultSpec> ParseFaultSpec(std::string_view text);

// Number of distinct injectable locations the target exposes under `config`:
// MRAM words, Metal registers, TLB entries or cache lines (1 for bus, which
// has no location). This is the sampling universe for campaign fault spaces
// and the bound behind `at=` validation.
uint32_t FaultTargetCapacity(FaultTarget target, const CoreConfig& config);

// Strict semantic validation of a parsed spec against a concrete machine:
// pinned locations must exist (MRAM byte offsets inside the array, mreg
// index 0..31, TLB/cache indices below capacity, no at= for bus) and a
// one-shot trigger cycle must be reachable within `max_cycles` (0 = no
// budget). ParseFaultSpec alone accepts these because it cannot know the
// machine; the CLI calls this afterwards so typos exit 2 with a pointed
// message instead of silently never firing.
Status ValidateFaultSpec(const FaultSpec& spec, const CoreConfig& config,
                         uint64_t max_cycles);

// Human-readable grammar + per-target table of valid ranges and detection
// story for `msim run --list-fault-targets`.
std::string DescribeFaultTargets(const CoreConfig& config);

class FaultEngine {
 public:
  explicit FaultEngine(uint64_t seed) : rng_(seed) {}

  // Parses and appends a spec.
  Status AddSpec(std::string_view text);
  void AddSpec(const FaultSpec& spec);

  // Runs every spec's trigger for the core's current cycle and applies the
  // matching ones. Called by Core::StepCycle when attached.
  void Tick(Core& core);

  size_t num_specs() const { return specs_.size(); }
  uint64_t injections() const { return injections_; }

  // Checkpoint/restore (src/snap): the RNG stream position, one-shot fired
  // flags and the injection counter. Specs themselves are configuration (they
  // come from the CLI), so restore only validates that the attached engine
  // has the same number of specs as the one that was saved.
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);
  void RegisterMetrics(MetricRegistry& registry) const {
    registry.Register("fault", "injections", &injections_,
                      "fault-spec applications (trace kind fault_inject)");
  }

 private:
  void Apply(Core& core, const FaultSpec& spec);

  Rng rng_;
  std::vector<FaultSpec> specs_;
  std::vector<bool> fired_;  // parallel to specs_; one-shots already applied
  uint64_t injections_ = 0;
};

}  // namespace msim

#endif  // MSIM_FAULT_FAULT_H_
