#include "fault/fault.h"

#include "cpu/config.h"
#include "cpu/core.h"
#include "mem/mram.h"
#include "snap/snapstream.h"
#include "support/strings.h"

namespace msim {
namespace {

// Resolves the grammar's TARGET word; nullopt for unknown names.
std::optional<FaultTarget> TargetFromName(std::string_view name) {
  if (name == "mram-code") return FaultTarget::kMramCode;
  if (name == "mram-data") return FaultTarget::kMramData;
  if (name == "mreg") return FaultTarget::kMreg;
  if (name == "tlb") return FaultTarget::kTlb;
  if (name == "icache") return FaultTarget::kICache;
  if (name == "dcache") return FaultTarget::kDCache;
  if (name == "bus") return FaultTarget::kBus;
  return std::nullopt;
}

// (and_mask, xor_mask) realising `mode` over the bits in `mask`.
void MasksFor(FaultMode mode, uint32_t mask, uint32_t* and_mask, uint32_t* xor_mask) {
  switch (mode) {
    case FaultMode::kFlip:
      *and_mask = 0xFFFFFFFFu;
      *xor_mask = mask;
      break;
    case FaultMode::kStuck0:
      *and_mask = ~mask;
      *xor_mask = 0;
      break;
    case FaultMode::kStuck1:
      *and_mask = ~mask;
      *xor_mask = mask;
      break;
  }
}

}  // namespace

const char* FaultTargetName(FaultTarget target) {
  switch (target) {
    case FaultTarget::kMramCode: return "mram-code";
    case FaultTarget::kMramData: return "mram-data";
    case FaultTarget::kMreg: return "mreg";
    case FaultTarget::kTlb: return "tlb";
    case FaultTarget::kICache: return "icache";
    case FaultTarget::kDCache: return "dcache";
    case FaultTarget::kBus: return "bus";
  }
  return "unknown";
}

Result<FaultSpec> ParseFaultSpec(std::string_view text) {
  FaultSpec spec;
  spec.text = std::string(text);

  const size_t at_sign = text.find('@');
  if (at_sign == std::string_view::npos) {
    return ParseError(StrFormat("fault spec '%s': expected TARGET@TRIGGER[:PARAM,...]",
                                spec.text.c_str()));
  }
  const std::string_view target_name = TrimWhitespace(text.substr(0, at_sign));
  const auto target = TargetFromName(target_name);
  if (!target) {
    return ParseError(StrFormat(
        "fault spec '%s': unknown target '%.*s' (want mram-code|mram-data|mreg|tlb|"
        "icache|dcache|bus)",
        spec.text.c_str(), static_cast<int>(target_name.size()), target_name.data()));
  }
  spec.target = *target;

  std::string_view rest = text.substr(at_sign + 1);
  std::string_view params;
  const size_t colon = rest.find(':');
  if (colon != std::string_view::npos) {
    params = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }

  std::string_view trigger = TrimWhitespace(rest);
  if (!trigger.empty() && trigger.front() == '~') {
    spec.probabilistic = true;
    const auto period = ParseInt(TrimWhitespace(trigger.substr(1)));
    if (!period || *period <= 0) {
      return ParseError(StrFormat("fault spec '%s': '~N' needs a positive integer N",
                                  spec.text.c_str()));
    }
    spec.period = static_cast<uint64_t>(*period);
  } else {
    const auto cycle = ParseInt(trigger);
    if (!cycle || *cycle < 0) {
      return ParseError(StrFormat(
          "fault spec '%s': trigger must be a cycle number or '~N'", spec.text.c_str()));
    }
    spec.cycle = static_cast<uint64_t>(*cycle);
  }

  if (!params.empty()) {
    for (std::string_view param : Split(params, ',')) {
      param = TrimWhitespace(param);
      const size_t eq = param.find('=');
      if (eq == std::string_view::npos) {
        return ParseError(StrFormat("fault spec '%s': parameter '%.*s' is not KEY=VALUE",
                                    spec.text.c_str(), static_cast<int>(param.size()),
                                    param.data()));
      }
      const std::string_view key = TrimWhitespace(param.substr(0, eq));
      const auto value = ParseInt(TrimWhitespace(param.substr(eq + 1)));
      if (!value) {
        return ParseError(StrFormat("fault spec '%s': bad integer in '%.*s'",
                                    spec.text.c_str(), static_cast<int>(param.size()),
                                    param.data()));
      }
      if (key == "bit") {
        if (*value < 0 || *value > 31) {
          return ParseError(
              StrFormat("fault spec '%s': bit=N needs N in 0..31", spec.text.c_str()));
        }
        spec.mask |= 1u << *value;
      } else if (key == "mask") {
        if (*value < 0 || static_cast<uint64_t>(*value) > 0xFFFFFFFFull) {
          return ParseError(
              StrFormat("fault spec '%s': mask=X needs a 32-bit value", spec.text.c_str()));
        }
        if (*value == 0) {
          return ParseError(StrFormat(
              "fault spec '%s': mask=0 corrupts nothing; omit mask for a random "
              "single-bit flip or set at least one bit",
              spec.text.c_str()));
        }
        spec.mask |= static_cast<uint32_t>(*value);
      } else if (key == "at") {
        if (*value < 0 || static_cast<uint64_t>(*value) > 0xFFFFFFFFull) {
          return ParseError(
              StrFormat("fault spec '%s': at=N needs a 32-bit value", spec.text.c_str()));
        }
        spec.has_at = true;
        spec.at = static_cast<uint32_t>(*value);
      } else if (key == "stuck") {
        if (*value == 0) {
          spec.mode = FaultMode::kStuck0;
        } else if (*value == 1) {
          spec.mode = FaultMode::kStuck1;
        } else {
          return ParseError(
              StrFormat("fault spec '%s': stuck= must be 0 or 1", spec.text.c_str()));
        }
      } else {
        return ParseError(StrFormat(
            "fault spec '%s': unknown parameter '%.*s' (want bit|mask|at|stuck)",
            spec.text.c_str(), static_cast<int>(key.size()), key.data()));
      }
    }
  }
  return spec;
}

uint32_t FaultTargetCapacity(FaultTarget target, const CoreConfig& config) {
  switch (target) {
    case FaultTarget::kMramCode: return kMramCodeSize / 4;
    case FaultTarget::kMramData: return kMramDataSize / 4;
    case FaultTarget::kMreg: return 32;
    case FaultTarget::kTlb: return config.tlb_entries;
    case FaultTarget::kICache: return config.icache_lines;
    case FaultTarget::kDCache: return config.dcache_lines;
    case FaultTarget::kBus: return 1;
  }
  return 1;
}

Status ValidateFaultSpec(const FaultSpec& spec, const CoreConfig& config,
                         uint64_t max_cycles) {
  if (!spec.probabilistic && max_cycles != 0 && spec.cycle >= max_cycles) {
    return InvalidArgument(StrFormat(
        "fault spec '%s': trigger cycle %llu never fires within the cycle "
        "budget of %llu (raise --max-cycles or lower the trigger)",
        spec.text.c_str(), static_cast<unsigned long long>(spec.cycle),
        static_cast<unsigned long long>(max_cycles)));
  }
  if (!spec.has_at) {
    return Status::Ok();
  }
  switch (spec.target) {
    case FaultTarget::kMramCode:
      if (spec.at >= kMramCodeSize) {
        return InvalidArgument(StrFormat(
            "fault spec '%s': at=%u is outside mram-code (byte offsets 0..%u)",
            spec.text.c_str(), spec.at, kMramCodeSize - 1));
      }
      break;
    case FaultTarget::kMramData:
      if (spec.at >= kMramDataSize) {
        return InvalidArgument(StrFormat(
            "fault spec '%s': at=%u is outside mram-data (byte offsets 0..%u)",
            spec.text.c_str(), spec.at, kMramDataSize - 1));
      }
      break;
    case FaultTarget::kMreg:
      if (spec.at >= 32) {
        return InvalidArgument(
            StrFormat("fault spec '%s': at=%u is not a Metal register (m0..m31)",
                      spec.text.c_str(), spec.at));
      }
      break;
    case FaultTarget::kTlb:
      if (spec.at >= config.tlb_entries) {
        return InvalidArgument(StrFormat(
            "fault spec '%s': at=%u is outside the TLB (entries 0..%u)",
            spec.text.c_str(), spec.at, config.tlb_entries - 1));
      }
      break;
    case FaultTarget::kICache:
      if (spec.at >= config.icache_lines) {
        return InvalidArgument(StrFormat(
            "fault spec '%s': at=%u is outside the I-cache (lines 0..%u)",
            spec.text.c_str(), spec.at, config.icache_lines - 1));
      }
      break;
    case FaultTarget::kDCache:
      if (spec.at >= config.dcache_lines) {
        return InvalidArgument(StrFormat(
            "fault spec '%s': at=%u is outside the D-cache (lines 0..%u)",
            spec.text.c_str(), spec.at, config.dcache_lines - 1));
      }
      break;
    case FaultTarget::kBus:
      return InvalidArgument(StrFormat(
          "fault spec '%s': bus faults corrupt the next completed load and "
          "have no location; drop at=",
          spec.text.c_str()));
  }
  return Status::Ok();
}

std::string DescribeFaultTargets(const CoreConfig& config) {
  std::string out;
  out +=
      "fault spec grammar (msim run --inject SPEC, repeatable):\n"
      "\n"
      "  SPEC    := TARGET '@' TRIGGER [':' PARAM (',' PARAM)*]\n"
      "  TRIGGER := CYCLE        one-shot, fires at the first cycle >= CYCLE\n"
      "                          (must lie inside the --max-cycles budget)\n"
      "           | '~' N        probabilistic, 1/N chance every cycle\n"
      "  PARAM   := bit=N        corrupt bit N (0..31; repeatable, bits accumulate)\n"
      "           | mask=X       corrupt the bits set in X (nonzero 32-bit)\n"
      "           | at=N         pin the location (see table; random when absent)\n"
      "           | stuck=0|1    stuck-at instead of the default bit flip\n"
      "\n"
      "  TARGET     at= range                    detection\n";
  out += StrFormat(
      "  mram-code  byte offset 0..%u (word-aligned)   fetch parity -> machine check\n",
      kMramCodeSize - 1);
  out += StrFormat(
      "  mram-data  byte offset 0..%u (word-aligned)    mld parity -> machine check\n",
      kMramDataSize - 1);
  out += "  mreg       register index 0..31             none (silent)\n";
  out += StrFormat(
      "  tlb        entry index 0..%u                silent; wrong translations\n",
      config.tlb_entries - 1);
  out += StrFormat(
      "  icache     line index 0..%u                 timing-only (tags)\n",
      config.icache_lines - 1);
  out += StrFormat(
      "  dcache     line index 0..%u                 timing-only (tags)\n",
      config.dcache_lines - 1);
  out += "  bus        (no location; at= rejected)      silent; next load's data\n";
  return out;
}

Status FaultEngine::AddSpec(std::string_view text) {
  MSIM_ASSIGN_OR_RETURN(const FaultSpec spec, ParseFaultSpec(text));
  AddSpec(spec);
  return Status::Ok();
}

void FaultEngine::AddSpec(const FaultSpec& spec) {
  specs_.push_back(spec);
  fired_.push_back(false);
}

void FaultEngine::Tick(Core& core) {
  const uint64_t cycle = core.cycle();
  for (size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& spec = specs_[i];
    if (spec.probabilistic) {
      // Every probabilistic spec draws exactly once per cycle, so the RNG
      // stream — and therefore the whole run — is reproducible.
      if (rng_.Chance(1, spec.period)) {
        Apply(core, spec);
      }
    } else if (!fired_[i] && cycle >= spec.cycle) {
      fired_[i] = true;
      Apply(core, spec);
    }
  }
}

void FaultEngine::Apply(Core& core, const FaultSpec& spec) {
  const uint32_t mask = spec.mask != 0 ? spec.mask : (1u << rng_.Below(32));
  uint32_t and_mask = 0xFFFFFFFFu;
  uint32_t xor_mask = 0;
  MasksFor(spec.mode, mask, &and_mask, &xor_mask);

  uint32_t location = 0;
  switch (spec.target) {
    case FaultTarget::kMramCode: {
      location = spec.has_at ? (spec.at & ~3u)
                             : static_cast<uint32_t>(rng_.Below(kMramCodeSize / 4)) * 4;
      core.mram().CorruptCodeWord(location, and_mask, xor_mask);
      // CorruptCodeWord bumps the MRAM generation (predecode entries go
      // stale); drop the cache outright so the upset is visible even to a
      // same-word revalidation.
      core.predecode().InvalidateAll();
      break;
    }
    case FaultTarget::kMramData: {
      location = spec.has_at ? (spec.at & ~3u)
                             : static_cast<uint32_t>(rng_.Below(kMramDataSize / 4)) * 4;
      core.mram().CorruptDataWord(location, and_mask, xor_mask);
      break;
    }
    case FaultTarget::kMreg: {
      location = spec.has_at ? (spec.at & 31) : static_cast<uint32_t>(rng_.Below(32));
      const uint32_t value = core.metal().ReadMreg(static_cast<uint8_t>(location));
      core.metal().WriteMreg(static_cast<uint8_t>(location), (value & and_mask) ^ xor_mask);
      break;
    }
    case FaultTarget::kTlb: {
      const uint32_t capacity = core.mmu().tlb().capacity();
      location = spec.has_at ? spec.at : static_cast<uint32_t>(rng_.Below(capacity));
      core.mmu().tlb().CorruptEntry(location, and_mask, xor_mask);
      break;
    }
    case FaultTarget::kICache: {
      location =
          spec.has_at ? spec.at : static_cast<uint32_t>(rng_.Below(core.icache().num_lines()));
      core.icache().CorruptLine(location, and_mask, xor_mask);
      // An upset frontend structure must not keep serving predecoded words.
      core.predecode().InvalidateAll();
      break;
    }
    case FaultTarget::kDCache: {
      location =
          spec.has_at ? spec.at : static_cast<uint32_t>(rng_.Below(core.dcache().num_lines()));
      core.dcache().CorruptLine(location, and_mask, xor_mask);
      break;
    }
    case FaultTarget::kBus: {
      core.ArmBusFault(and_mask, xor_mask);
      break;
    }
  }
  ++injections_;
  core.tracer().Emit(TraceEventKind::kFaultInject, location,
                     static_cast<uint32_t>(spec.target), xor_mask, core.metal_mode());
}

void FaultEngine::SaveState(SnapWriter& w) const {
  w.U64(static_cast<uint64_t>(specs_.size()));
  w.U64(rng_.state());
  w.U64(static_cast<uint64_t>(fired_.size()));
  for (size_t i = 0; i < fired_.size(); ++i) {
    w.Bool(fired_[i]);
  }
  w.U64(injections_);
}

Status FaultEngine::RestoreState(SnapReader& r) {
  const uint64_t num_specs = r.U64();
  MSIM_RETURN_IF_ERROR(r.ToStatus("fault engine header"));
  if (num_specs != specs_.size()) {
    return InvalidArgument(
        "snapshot fault-engine state was saved with a different --inject spec list");
  }
  rng_.set_state(r.U64());
  const uint64_t num_fired = r.U64();
  MSIM_RETURN_IF_ERROR(r.ToStatus("fault engine fired flags"));
  fired_.assign(num_fired, false);
  for (uint64_t i = 0; i < num_fired; ++i) {
    fired_[i] = r.Bool();
  }
  injections_ = r.U64();
  return r.ToStatus("fault engine");
}

}  // namespace msim
