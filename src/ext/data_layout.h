// MRAM data-segment map shared by the extensions.
//
// Extensions statically allocate their mroutine-private data in the MRAM data
// segment (paper §2.1: "developers must statically allocate resources
// including ... the MRAM data segment"). Each extension owns a fixed byte
// range; the assembly sources use matching .equ constants.
#ifndef MSIM_EXT_DATA_LAYOUT_H_
#define MSIM_EXT_DATA_LAYOUT_H_

#include <cstdint>

namespace msim {

// NOTE: literal mld/mst offsets are 12-bit signed immediates, so every
// extension keeps its fixed (non-indexed) offsets below 2048.
inline constexpr uint32_t kPrivilegeDataBase = 0;       // [0, 32)
inline constexpr uint32_t kCptDataBase = 32;            // [32, 44)
inline constexpr uint32_t kEnclaveDataBase = 44;        // [44, 60)
inline constexpr uint32_t kIsolationDataBase = 60;      // [60, 64)
inline constexpr uint32_t kStmDataBase = 64;            // [64, 104) + sets at [128, 512)
inline constexpr uint32_t kNestedDataBase = 104;        // [104, 112)
inline constexpr uint32_t kVirtDataBase = 112;          // [112, 128)
inline constexpr uint32_t kUliDataBase = 1088;          // [1088, 1352)
inline constexpr uint32_t kShadowStackDataBase = 1408;  // [1408, 1904)
inline constexpr uint32_t kCapsDataBase = 1928;         // [1928, 2188)

// Entry-number map (64 available, paper §2).
//   0..7    reserved for applications / examples
//   8..10   privilege levels (kenter, kexit, ktlbflush)
//   12..13  in-process isolation
//   16..18  custom page tables
//   20      nested paging (virtualization)
//   24..29  transactional memory
//   32..35  user-level interrupts
//   36..38  shadow stack
//   40..45  capabilities
//   48..51  enclaves
//   52..55  nested Metal dispatcher

}  // namespace msim

#endif  // MSIM_EXT_DATA_LAYOUT_H_
