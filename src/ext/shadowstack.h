// Shadow-stack control-flow protection (paper §3.5, Control Flow Protection).
//
// "Metal can offer similar application control flow protection as existing
// techniques such as shadow stacks and control flow integrity. ...
// applications can store cryptographic keys inside Metal registers or MRAM."
//
// When enabled, every jal and jalr is intercepted:
//   * a call (jal with rd == ra) pushes its return address onto a shadow
//     stack kept in the MRAM data segment — unreachable from normal mode;
//   * a return (jalr with rd == x0, rs1 == ra) pops and compares; a mismatch
//     (e.g. a smashed stack) halts the machine with exit code 0xDC
//     (underflow/overflow: 0xDD);
//   * all other jal/jalr forms are emulated transparently.
// No compiler support is needed — the paper's point versus classic CFI.
#ifndef MSIM_EXT_SHADOWSTACK_H_
#define MSIM_EXT_SHADOWSTACK_H_

#include <cstdint>

#include "metal/system.h"

namespace msim {

class ShadowStackExtension {
 public:
  static constexpr uint32_t kCallEntry = 36;
  static constexpr uint32_t kRetEntry = 37;
  static constexpr uint32_t kCtlEntry = 38;  // a0 = 1 enable / 0 disable

  static constexpr uint32_t kViolationExitCode = 0xDC;
  static constexpr uint32_t kOverflowExitCode = 0xDD;

  // MRAM data offsets (ext/data_layout.h: [1408, 1928)).
  static constexpr uint32_t kDataSp = 1408;
  static constexpr uint32_t kDataViolations = 1412;
  static constexpr uint32_t kDataMax = 1416;
  static constexpr uint32_t kDataStack = 1424;  // kCapacity words
  static constexpr uint32_t kCapacity = 120;

  static const char* McodeSource();
  static Status Install(MetalSystem& system);
};

}  // namespace msim

#endif  // MSIM_EXT_SHADOWSTACK_H_
