#include "ext/nested.h"

#include "metal/loader.h"

namespace msim {
namespace {

// m20 = resume address, m21 = current layer (1 -> still propagatable),
// m22/m23 = interrupted a0/a1.
constexpr const char* kMcode = R"(
    # ---- nested Metal: layered intercept propagation (paper §3.5) ----
    .equ D_NEST_H0, 104
    .equ D_NEST_H1, 108

    .mentry 52, nested_set
    .mentry 53, nested_dispatch
    .mentry 54, nested_ret
    .mentry 55, nested_ctl

# Register a layer handler: a0 = layer (0 = VMM, 1 = guest), a1 = handler.
nested_set:
    beqz a0, nested_set_l0
    mst a1, D_NEST_H1(zero)
    li a0, 0
    mexit
nested_set_l0:
    mst a1, D_NEST_H0(zero)
    li a0, 0
    mexit

# Intercepted load: deliver to the highest registered layer first.
nested_dispatch:
    wmr m10, t0
    wmr m11, t1
    rmr t0, m31
    wmr m20, t0                 # resume address
    wmr m22, a0                 # save interrupted a0/a1 (handler arguments)
    wmr m23, a1
    mopr t0, 0
    mopr t1, 2
    add t1, t0, t1              # effective address of the intercepted load
    mld t0, D_NEST_H1(zero)
    beqz t0, nested_try0
    mv a1, t1
    li t1, 1
    wmr m21, t1                 # at layer 1: may still propagate down
    wmr m31, t0
    rmr t0, m10
    rmr t1, m11
    mexit
nested_try0:
    mld t0, D_NEST_H0(zero)
    beqz t0, nested_emulate
    mv a1, t1
    wmr m21, zero               # at layer 0: next stop is native emulation
    wmr m31, t0
    rmr t0, m10
    rmr t1, m11
    mexit
nested_emulate:
    plw t1, 0(t1)               # no layer claimed it: native load
    mopw t1
    rmr a0, m22
    rmr a1, m23
    rmr t0, m10
    rmr t1, m11
    mexit

# Handler epilogue. a0 = 1: consume, a2 = value for the intercepted rd.
#                   a0 = 0: reuse the instruction -> propagate downward.
nested_ret:
    wmr m10, t0
    wmr m11, t1
    beqz a0, nested_prop
    mopw a2
    j nested_resume
nested_prop:
    rmr t0, m21
    beqz t0, nested_ret_emul    # already at layer 0: emulate natively
    mld t0, D_NEST_H0(zero)
    beqz t0, nested_ret_emul
    # deliver to layer 0; recompute the address argument from the latch
    mopr t1, 0
    wmr m21, zero
    mopr a1, 2
    add a1, a1, t1
    wmr m31, t0
    rmr t0, m10
    rmr t1, m11
    mexit
nested_ret_emul:
    mopr t0, 0
    mopr t1, 2
    add t1, t0, t1
    plw t1, 0(t1)
    mopw t1
nested_resume:
    rmr a0, m22
    rmr a1, m23
    rmr t0, m20
    wmr m31, t0
    rmr t0, m10
    rmr t1, m11
    mexit

# Enable (a0 = 1) / disable (a0 = 0) load interception into the dispatcher.
nested_ctl:
    wmr m10, t0
    wmr m11, t1
    beqz a0, nested_off
    li t0, 0x80000003           # intercept loads -> slot 4, entry 53
    li t1, 1077
    mintset t0, t1
    j nested_ctl_done
nested_off:
    li t0, 3
    li t1, 1077
    mintset t0, t1
nested_ctl_done:
    rmr t0, m10
    rmr t1, m11
    mexit
)";

}  // namespace

const char* NestedMetalExtension::McodeSource() { return kMcode; }

Status NestedMetalExtension::Install(MetalSystem& system) {
  system.AddMcode(kMcode);
  system.AddBootHook([](Core& core) {
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataHandler0, 0));
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataHandler1, 0));
    return Status::Ok();
  });
  return Status::Ok();
}

}  // namespace msim
