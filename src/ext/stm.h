// Software transactional memory via instruction interception (paper §3.3).
//
// "We created several new mroutines: tstart starts a transaction, tabort
// aborts the transaction, and tcommit commits the transaction. We intercept
// all memory access instructions within a transaction and invoke tread and
// twrite instead, which perform and record the memory accesses. Upon tcommit,
// all accessed memory addresses within the transaction are inspected for
// conflict. ... Metal turns on and off interception of loads and stores at
// runtime ... Our implementation is under 100 instructions and closely
// resembles TL2."
//
// The design follows TL2's global-version-clock scheme at word granularity:
//   * tstart samples the global clock into rv (Metal register m1) and enables
//     load/store interception;
//   * tread forwards from the write buffer, validates the location's version
//     against rv (abort on a newer version), and logs the read set;
//   * twrite buffers stores in the MRAM data segment (no memory writes until
//     commit);
//   * tcommit re-validates the read set, advances the clock, writes back the
//     buffer, and stamps written locations with the new version.
// Conflicts with "other cores" are injected by the host (InjectRemoteCommit)
// since the simulated processor is single-core; the interleaving matches a
// committed remote writer.
//
// Limits (static allocation, paper §2.1): 32-entry read set, 32-entry write
// set; overflow aborts the transaction. Word accesses only.
#ifndef MSIM_EXT_STM_H_
#define MSIM_EXT_STM_H_

#include <cstdint>

#include "metal/system.h"

namespace msim {

class StmExtension {
 public:
  static constexpr uint32_t kTstartEntry = 24;
  static constexpr uint32_t kTreadEntry = 25;
  static constexpr uint32_t kTwriteEntry = 26;
  static constexpr uint32_t kTcommitEntry = 27;
  static constexpr uint32_t kTabortEntry = 28;

  // MRAM data offsets (ext/data_layout.h: STM owns [64, 1088)).
  static constexpr uint32_t kDataActive = 64;
  static constexpr uint32_t kDataRsCount = 72;
  static constexpr uint32_t kDataWsCount = 76;
  static constexpr uint32_t kDataAborts = 80;
  static constexpr uint32_t kDataCommits = 84;
  static constexpr uint32_t kDataStarts = 88;
  static constexpr uint32_t kDataClockAddr = 92;
  static constexpr uint32_t kDataVtblAddr = 96;
  static constexpr uint32_t kDataVtblMask = 100;
  static constexpr uint32_t kDataReadSet = 128;   // 32 x 4 bytes (addr)
  static constexpr uint32_t kDataWriteSet = 256;  // 32 x 8 bytes (addr, value)
  static constexpr uint32_t kSetCapacity = 32;

  static const char* McodeSource();

  // Installs the mroutines and initializes the global clock (at
  // `clock_addr`) and the per-location version table (`vtbl_addr`, with
  // `vtbl_words` power-of-two word entries) in DRAM.
  static Status Install(MetalSystem& system, uint32_t clock_addr, uint32_t vtbl_addr,
                        uint32_t vtbl_words);

  // Host-side statistics.
  static Result<uint32_t> Commits(Core& core);
  static Result<uint32_t> Aborts(Core& core);
  static Result<uint32_t> Starts(Core& core);

  // Simulates a committed remote writer: advances the global clock, writes
  // `value` to `addr`, and stamps the location's version — a transaction that
  // read `addr` earlier will fail validation and abort.
  static Status InjectRemoteCommit(Core& core, uint32_t clock_addr, uint32_t vtbl_addr,
                                   uint32_t vtbl_words, uint32_t addr, uint32_t value);

  // Number of 32-bit instructions in the installed mroutines (for the
  // paper's "under 100 instructions" claim).
  static Result<uint32_t> InstructionCount();
};

}  // namespace msim

#endif  // MSIM_EXT_STM_H_
