#include "ext/shadowstack.h"

#include "metal/loader.h"

namespace msim {
namespace {

constexpr const char* kMcode = R"(
    # ---- shadow-stack control-flow protection (paper §3.5) ----
    .equ D_SS_SP, 1408
    .equ D_SS_VIOL, 1412
    .equ D_SS_MAX, 1416
    .equ D_SS_STACK, 1424
    .equ CR_MEPC, 1

    .mentry 36, ss_call
    .mentry 37, ss_ret
    .mentry 38, ss_ctl

# Intercepted jal: emulate, pushing the return address when rd == ra.
ss_call:
    wmr m10, t0
    wmr m11, t1
    wmr m12, t2
    wmr m13, t3
    rcr t0, CR_MEPC
    mopr t1, 2                 # J-immediate
    add t1, t0, t1             # branch target
    addi t0, t0, 4             # link value
    mopr t2, 3                 # rd index
    beqz t2, ss_call_go        # jal x0 (plain jump): no link, no push
    mopw t0                    # deliver the link value to rd
    addi t2, t2, -1
    bnez t2, ss_call_go        # only rd == ra counts as a call
    mld t2, D_SS_SP(zero)
    mld t3, D_SS_MAX(zero)
    beq t2, t3, ss_overflow
    slli t3, t2, 2
    mst t0, D_SS_STACK(t3)
    addi t2, t2, 1
    mst t2, D_SS_SP(zero)
ss_call_go:
    wmr m31, t1
    rmr t0, m10
    rmr t1, m11
    rmr t2, m12
    rmr t3, m13
    mexit

# Intercepted jalr: emulate; a return (rd == x0, rs1 == ra) pops and checks.
ss_ret:
    wmr m10, t0
    wmr m11, t1
    wmr m12, t2
    wmr m13, t3
    mopr t0, 0                 # rs1 value
    mopr t1, 2                 # immediate
    add t0, t0, t1
    andi t0, t0, -2            # target
    rcr t1, CR_MEPC
    addi t1, t1, 4             # link value
    mopr t2, 3                 # rd index
    beqz t2, ss_ret_check
    mopw t1                    # indirect call/jump with link
    j ss_ret_go
ss_ret_check:
    mopr t2, 5                 # rs1 index
    addi t2, t2, -1
    bnez t2, ss_ret_go         # jr through a non-ra register: plain jump
    mld t2, D_SS_SP(zero)
    beqz t2, ss_violation      # underflow
    addi t2, t2, -1
    mst t2, D_SS_SP(zero)
    slli t2, t2, 2
    mld t2, D_SS_STACK(t2)
    bne t2, t0, ss_violation
ss_ret_go:
    wmr m31, t0
    rmr t0, m10
    rmr t1, m11
    rmr t2, m12
    rmr t3, m13
    mexit

ss_violation:
    mld t0, D_SS_VIOL(zero)
    addi t0, t0, 1
    mst t0, D_SS_VIOL(zero)
    li t0, 0xDC
    halt t0
ss_overflow:
    li t0, 0xDD
    halt t0

# Enable (a0 = 1) or disable (a0 = 0) protection.
ss_ctl:
    wmr m10, t0
    wmr m11, t1
    beqz a0, ss_off
    mst zero, D_SS_SP(zero)
    li t0, 0x8000006F          # intercept jal  -> slot 2, entry 36
    li t1, 548
    mintset t0, t1
    li t0, 0x80000067          # intercept jalr -> slot 3, entry 37
    li t1, 805
    mintset t0, t1
    j ss_ctl_done
ss_off:
    li t0, 0x6F
    li t1, 548
    mintset t0, t1
    li t0, 0x67
    li t1, 805
    mintset t0, t1
ss_ctl_done:
    rmr t0, m10
    rmr t1, m11
    mexit
)";

}  // namespace

const char* ShadowStackExtension::McodeSource() { return kMcode; }

Status ShadowStackExtension::Install(MetalSystem& system) {
  system.AddMcode(kMcode);
  system.AddBootHook([](Core& core) {
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataSp, 0));
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataViolations, 0));
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataMax, kCapacity));
    return Status::Ok();
  });
  return Status::Ok();
}

}  // namespace msim
