#include "ext/stm.h"

#include "metal/loader.h"
#include "metal/mroutine.h"
#include "support/strings.h"

namespace msim {
namespace {

// Register conventions:
//   m1 = rv (read version), m2 = abort handler, m3 = wv (write version),
//   m10..m14 save the application's t0..t4 across tread/twrite (interception
//   can hit any point in the transaction body, so those handlers preserve
//   every register they touch; tstart/tcommit/tabort are invoked like calls
//   and may clobber temporaries).
constexpr const char* kMcode = R"(
    # ---- software transactional memory, TL2-style (paper §3.3) ----
    .equ D_ACTIVE, 64
    .equ D_RS_COUNT, 72
    .equ D_WS_COUNT, 76
    .equ D_ABORTS, 80
    .equ D_COMMITS, 84
    .equ D_STARTS, 88
    .equ D_CLOCK_ADDR, 92
    .equ D_VTBL_ADDR, 96
    .equ D_VTBL_MASK, 100
    .equ D_RS, 128
    .equ D_WS, 256
    .equ SET_CAP, 32

    .mentry 24, tstart
    .mentry 25, tread
    .mentry 26, twrite
    .mentry 27, tcommit
    .mentry 28, tabort

# Begin a transaction. a0 = abort handler address.
tstart:
    mst zero, D_RS_COUNT(zero)
    mst zero, D_WS_COUNT(zero)
    li t0, 1
    mst t0, D_ACTIVE(zero)
    wmr m2, a0
    # rv <- global version clock
    mld t0, D_CLOCK_ADDR(zero)
    plw t0, 0(t0)
    wmr m1, t0
    mld t0, D_STARTS(zero)
    addi t0, t0, 1
    mst t0, D_STARTS(zero)
    # turn ON interception of all loads (slot 0 -> tread) and stores
    # (slot 1 -> twrite) — paper: "Metal turns on and off interception of
    # loads and stores at runtime"
    li t0, 0x80000003
    li t1, 25
    mintset t0, t1
    li t0, 0x80000023
    li t1, 282
    mintset t0, t1
    mexit

# Intercepted load: forward from the write buffer or read memory, validate
# the location version against rv, log the read set.
tread:
    wmr m10, t0
    wmr m11, t1
    wmr m12, t2
    wmr m13, t3
    wmr m14, t4
    mopr t0, 0                 # rs1 value
    mopr t1, 2                 # immediate
    add t0, t0, t1             # effective address
    mld t1, D_WS_COUNT(zero)
    li t2, 0
tread_ws_loop:
    beq t2, t1, tread_mem
    slli t3, t2, 3
    mld t4, D_WS(t3)
    beq t4, t0, tread_ws_hit
    addi t2, t2, 1
    j tread_ws_loop
tread_ws_hit:
    mld t4, D_WS+4(t3)
    j tread_done
tread_mem:
    plw t4, 0(t0)
    # validate: version[addr] <= rv ?
    srli t1, t0, 2
    mld t2, D_VTBL_MASK(zero)
    and t1, t1, t2
    slli t1, t1, 2
    mld t2, D_VTBL_ADDR(zero)
    add t1, t1, t2
    plw t1, 0(t1)
    rmr t2, m1
    bltu t2, t1, stm_abort_path
    # append to the read set
    mld t1, D_RS_COUNT(zero)
    li t2, SET_CAP
    beq t1, t2, stm_abort_path
    slli t2, t1, 2
    mst t0, D_RS(t2)
    addi t1, t1, 1
    mst t1, D_RS_COUNT(zero)
tread_done:
    mopw t4                    # value for the intercepted instruction's rd
    rmr t0, m10
    rmr t1, m11
    rmr t2, m12
    rmr t3, m13
    rmr t4, m14
    mexit

# Intercepted store: buffer in the write set (no memory write until commit).
twrite:
    wmr m10, t0
    wmr m11, t1
    wmr m12, t2
    wmr m13, t3
    wmr m14, t4
    mopr t0, 0
    mopr t1, 2
    add t0, t0, t1             # effective address
    mopr t4, 1                 # store data (rs2 value)
    mld t1, D_WS_COUNT(zero)
    li t2, 0
twrite_loop:
    beq t2, t1, twrite_append
    slli t3, t2, 3
    mld t3, D_WS(t3)
    beq t3, t0, twrite_update
    addi t2, t2, 1
    j twrite_loop
twrite_update:
    slli t3, t2, 3
    mst t4, D_WS+4(t3)
    j twrite_done
twrite_append:
    li t2, SET_CAP
    beq t1, t2, stm_abort_path
    slli t3, t1, 3
    mst t0, D_WS(t3)
    mst t4, D_WS+4(t3)
    addi t1, t1, 1
    mst t1, D_WS_COUNT(zero)
twrite_done:
    rmr t0, m10
    rmr t1, m11
    rmr t2, m12
    rmr t3, m13
    rmr t4, m14
    mexit

# Commit: re-validate the read set, advance the clock, write back, stamp
# versions. Returns a0 = 1; on conflict control transfers to the abort
# handler with a0 = 0.
tcommit:
    mld t1, D_RS_COUNT(zero)
    li t2, 0
tc_val_loop:
    beq t2, t1, tc_writeback
    slli t3, t2, 2
    mld t0, D_RS(t3)
    srli t0, t0, 2
    mld t3, D_VTBL_MASK(zero)
    and t0, t0, t3
    slli t0, t0, 2
    mld t3, D_VTBL_ADDR(zero)
    add t0, t0, t3
    plw t0, 0(t0)
    rmr t3, m1
    bltu t3, t0, stm_abort_path
    addi t2, t2, 1
    j tc_val_loop
tc_writeback:
    # wv = ++clock
    mld t0, D_CLOCK_ADDR(zero)
    plw t1, 0(t0)
    addi t1, t1, 1
    psw t1, 0(t0)
    wmr m3, t1
    mld t1, D_WS_COUNT(zero)
    li t2, 0
tc_wb_loop:
    beq t2, t1, tc_finish
    slli t3, t2, 3
    mld t0, D_WS(t3)
    mld t4, D_WS+4(t3)
    psw t4, 0(t0)
    srli t0, t0, 2
    mld t3, D_VTBL_MASK(zero)
    and t0, t0, t3
    slli t0, t0, 2
    mld t3, D_VTBL_ADDR(zero)
    add t0, t0, t3
    rmr t4, m3
    psw t4, 0(t0)
    addi t2, t2, 1
    j tc_wb_loop
tc_finish:
    mst zero, D_ACTIVE(zero)
    jal t0, stm_intercepts_off
    mld t0, D_COMMITS(zero)
    addi t0, t0, 1
    mst t0, D_COMMITS(zero)
    li a0, 1
    mexit

# Application-requested abort.
tabort:
    j stm_abort_path

# Shared abort path: turn interception off, count, longjmp to the abort
# handler registered by tstart with a0 = 0.
stm_abort_path:
    mst zero, D_ACTIVE(zero)
    jal t0, stm_intercepts_off
    mld t0, D_ABORTS(zero)
    addi t0, t0, 1
    mst t0, D_ABORTS(zero)
    li a0, 0
    rmr t1, m2
    wmr m31, t1
    mexit

stm_intercepts_off:
    li t1, 3
    li t2, 25
    mintset t1, t2
    li t1, 0x23
    li t2, 282
    mintset t1, t2
    jr t0
)";

}  // namespace

const char* StmExtension::McodeSource() { return kMcode; }

Status StmExtension::Install(MetalSystem& system, uint32_t clock_addr, uint32_t vtbl_addr,
                             uint32_t vtbl_words) {
  if ((vtbl_words & (vtbl_words - 1)) != 0) {
    return InvalidArgument("version table size must be a power of two");
  }
  system.AddMcode(kMcode);
  system.AddBootHook([=](Core& core) {
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataClockAddr, clock_addr));
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataVtblAddr, vtbl_addr));
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataVtblMask, vtbl_words - 1));
    for (const uint32_t offset : {kDataActive, kDataRsCount, kDataWsCount, kDataAborts,
                                  kDataCommits, kDataStarts}) {
      MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, offset, 0));
    }
    if (!core.bus().dram().Write32(clock_addr, 0)) {
      return OutOfRange("STM clock outside DRAM");
    }
    for (uint32_t i = 0; i < vtbl_words; ++i) {
      if (!core.bus().dram().Write32(vtbl_addr + 4 * i, 0)) {
        return OutOfRange("STM version table outside DRAM");
      }
    }
    return Status::Ok();
  });
  return Status::Ok();
}

Result<uint32_t> StmExtension::Commits(Core& core) {
  return ReadHandlerData32(core, kDataCommits);
}
Result<uint32_t> StmExtension::Aborts(Core& core) { return ReadHandlerData32(core, kDataAborts); }
Result<uint32_t> StmExtension::Starts(Core& core) { return ReadHandlerData32(core, kDataStarts); }

Status StmExtension::InjectRemoteCommit(Core& core, uint32_t clock_addr, uint32_t vtbl_addr,
                                        uint32_t vtbl_words, uint32_t addr, uint32_t value) {
  PhysicalMemory& dram = core.bus().dram();
  const auto clock = dram.Read32(clock_addr);
  if (!clock) {
    return OutOfRange("STM clock outside DRAM");
  }
  const uint32_t wv = *clock + 1;
  if (!dram.Write32(clock_addr, wv) || !dram.Write32(addr, value)) {
    return OutOfRange("remote commit target outside DRAM");
  }
  const uint32_t index = (addr >> 2) & (vtbl_words - 1);
  if (!dram.Write32(vtbl_addr + 4 * index, wv)) {
    return OutOfRange("STM version table outside DRAM");
  }
  return Status::Ok();
}

Result<uint32_t> StmExtension::InstructionCount() {
  MSIM_ASSIGN_OR_RETURN(McodeModule module, AssembleMcode(kMcode, CoreConfig{}));
  return static_cast<uint32_t>(module.program.text.bytes.size() / 4);
}

}  // namespace msim
