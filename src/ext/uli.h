// User-level interrupts (paper §3.4).
//
// "Metal supports user level interrupt by handling the processor's interrupt
// delivery. When an interrupt occurs, Metal invokes specific mroutines to
// optionally redirect the interrupt to processes running at lower privilege
// levels. ... Developers control whether a specific privilege level is
// allowed to process interrupts."
//
// Design:
//   * all interrupt delivery is delegated to `uli_dispatch`;
//   * a per-line table (MRAM data) holds a user handler address plus a
//     bitmap of privilege levels allowed to take the interrupt directly;
//   * when a user handler is registered and the current privilege (m0, from
//     the privilege extension) is allowed, the dispatcher masks the line,
//     saves the interrupted pc (m4) and a0 (m6), and mexits STRAIGHT INTO the
//     user handler — no kernel transition, which is the paper's point
//     (DPDK/SPDK get notified without polling or kernel round trips);
//   * the user handler finishes with `menter uli_ret`, which unmasks the line
//     and resumes the interrupted context;
//   * unregistered lines or disallowed privilege levels fall back to the
//     kernel handler at kernel privilege.
//
// Registration (`uli_register`, `uli_kernel_set`) is kernel-only (m0 == 0).
#ifndef MSIM_EXT_ULI_H_
#define MSIM_EXT_ULI_H_

#include <cstdint>

#include "metal/system.h"

namespace msim {

class UliExtension {
 public:
  static constexpr uint32_t kDispatchEntry = 32;
  static constexpr uint32_t kRetEntry = 33;
  static constexpr uint32_t kRegisterEntry = 34;
  static constexpr uint32_t kKernelSetEntry = 35;

  // MRAM data offsets (ext/data_layout.h: ULI owns [1088, 1408)).
  static constexpr uint32_t kDataTable = 1088;   // 32 lines x {handler, allowed-mask}
  static constexpr uint32_t kDataKernel = 1344;  // kernel fallback handler
  static constexpr uint32_t kDataCount = 1348;   // user deliveries (statistics)

  static const char* McodeSource();

  // Installs the dispatcher and delegates interrupt delivery to it.
  static Status Install(MetalSystem& system);

  // Host-side statistics: interrupts delivered directly to user handlers.
  static Result<uint32_t> UserDeliveries(Core& core);
};

}  // namespace msim

#endif  // MSIM_EXT_ULI_H_
