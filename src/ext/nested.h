// Nested Metal (paper §3.5, Nested Metal).
//
// "Metal should allow VMMs, OSes and applications to define their own
// mroutines ... Instruction interception proceeds in reverse, with higher
// layers intercepting the instruction first ... The intercept propagates
// downward through layers that intercept the same instruction."
//
// The paper leaves nested Metal as future work; this extension prototypes the
// intercept-propagation half in software with two layers:
//   * layer 1 (higher: the application/guest) and layer 0 (lower: the
//     VMM/host) each register a normal-mode handler for intercepted loads;
//   * the dispatcher mroutine delivers to layer 1 first;
//   * a handler finishes with `menter nested_ret`: a0 = 1 consumes the
//     intercept, a0 = 0 "reuses the instruction", propagating it down to
//     layer 0 and finally to native emulation — the downward propagation the
//     paper describes.
// Handlers read the intercepted operands via `mopr`-backed values passed in
// a1 (address); they may change the result with a2 when consuming.
#ifndef MSIM_EXT_NESTED_H_
#define MSIM_EXT_NESTED_H_

#include <cstdint>

#include "metal/system.h"

namespace msim {

class NestedMetalExtension {
 public:
  static constexpr uint32_t kSetEntry = 52;       // a0=layer(0/1), a1=handler
  static constexpr uint32_t kDispatchEntry = 53;  // intercept target
  static constexpr uint32_t kRetEntry = 54;       // a0=1 handled / 0 propagate, a2=result
  static constexpr uint32_t kCtlEntry = 55;       // a0=1 enable load interception

  // MRAM data offsets (ext/data_layout.h: [104, 112)).
  static constexpr uint32_t kDataHandler0 = 104;
  static constexpr uint32_t kDataHandler1 = 108;

  static const char* McodeSource();
  static Status Install(MetalSystem& system);
};

}  // namespace msim

#endif  // MSIM_EXT_NESTED_H_
