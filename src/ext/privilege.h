// User-defined privilege levels (paper §3.1).
//
// Metal does not architect privilege levels beyond normal vs. Metal mode;
// this extension builds the traditional kernel/user model entirely in mcode,
// reproducing the paper's Listing 2:
//   * Metal register m0 holds the current privilege level (0 = kernel,
//     1 = user).
//   * `kenter` (syscall entry) switches to kernel: sets m0, opens the kernel
//     page key, saves the userspace return address in `ra` (per the ABI, as
//     in the paper), looks the syscall number in a0 up in the kernel's
//     syscall table, and transfers control to the handler by rewriting m31
//     and executing mexit.
//   * `kexit` returns to userspace: sets m0 = 1, closes the kernel page key,
//     and mexits to the address the kernel left in `ra`.
//   * `kcheck`-style privileged services (here: privileged TLB flush) verify
//     m0 == 0 and deliver a software "privilege fault" upcall to the kernel
//     otherwise — privileged resources are "protected by a privilege check
//     that triggers an exception if violated".
//
// MRAM data layout (byte offsets, see kDataLayout* constants):
//   +0  syscall table base (physical address of a table of handler pointers)
//   +4  number of syscall table slots
//   +8  kernel fault-upcall entry point
//   +12 saved user return address during a syscall (single-threaded model)
#ifndef MSIM_EXT_PRIVILEGE_H_
#define MSIM_EXT_PRIVILEGE_H_

#include <cstdint>

#include "metal/system.h"

namespace msim {

class PrivilegeExtension {
 public:
  // mroutine entry numbers used by this extension.
  static constexpr uint32_t kKenterEntry = 8;
  static constexpr uint32_t kKexitEntry = 9;
  static constexpr uint32_t kPrivTlbFlushEntry = 10;

  // Privilege levels stored in m0.
  static constexpr uint32_t kKernelLevel = 0;
  static constexpr uint32_t kUserLevel = 1;

  // Page key reserved for kernel-only pages. kenter opens it; kexit closes
  // it — a batch permission change through the KEYPERM register (paper §2.3).
  static constexpr uint32_t kKernelPageKey = 1;

  // MRAM data-segment offsets.
  static constexpr uint32_t kDataSyscallTable = 0;
  static constexpr uint32_t kDataSyscallCount = 4;
  static constexpr uint32_t kDataFaultEntry = 8;
  static constexpr uint32_t kDataSavedUserRa = 12;
  static constexpr uint32_t kDataSize = 16;

  // The kenter/kexit mcode (paper Figure 2). Exposed so benches and docs can
  // show/measure exactly what is installed.
  static const char* McodeSource();

  // Adds the mcode and wires the host-visible configuration:
  //  - syscall_table: physical address of the kernel's syscall pointer table,
  //  - syscall_count: number of valid slots,
  //  - fault_entry:   kernel entry point for privilege-fault upcalls.
  static Status Install(MetalSystem& system, uint32_t syscall_table, uint32_t syscall_count,
                        uint32_t fault_entry);

  // Writes the boot-time MRAM data words (called by Install after Boot(); use
  // directly when booting manually).
  static Status WriteBootData(Core& core, uint32_t syscall_table, uint32_t syscall_count,
                              uint32_t fault_entry);
};

}  // namespace msim

#endif  // MSIM_EXT_PRIVILEGE_H_
