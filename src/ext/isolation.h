// In-process isolation (paper §3.1, In-process Isolation).
//
// "Applications can use multiple privilege levels internally to implement
// in-process isolation to protect sensitive data. For example, isolating
// sensitive cryptographic keys in OpenSSL from the rest of the application.
// ... Metal enables developers to safely encapsulate the transition code
// without CFI."
//
// Secret pages carry page key kSecretKey; outside the trusted compartment the
// KEYPERM register denies that key, so any access raises a key violation.
// `iso_enter` is the ONLY way into the compartment: it opens the key and
// transfers control to the registered gate — the transition code lives in
// MRAM where the application cannot jump into its middle, which is what makes
// CFI unnecessary. `iso_exit` closes the key and returns to the saved caller.
#ifndef MSIM_EXT_ISOLATION_H_
#define MSIM_EXT_ISOLATION_H_

#include <cstdint>

#include "metal/system.h"

namespace msim {

class IsolationExtension {
 public:
  static constexpr uint32_t kEnterEntry = 12;
  static constexpr uint32_t kExitEntry = 13;
  static constexpr uint32_t kSetupEntry = 14;  // a0 = gate address; once only

  // Page key protecting compartment pages (KEYPERM bits 4 and 5).
  static constexpr uint32_t kSecretKey = 2;
  static constexpr uint32_t kSecretKeyBits = 0x30;

  // MRAM data offsets (ext/data_layout.h: [60, 64)).
  static constexpr uint32_t kDataGate = 60;

  static const char* McodeSource();

  // Installs the mroutines and closes kSecretKey in KEYPERM at boot.
  static Status Install(MetalSystem& system);
};

}  // namespace msim

#endif  // MSIM_EXT_ISOLATION_H_
