#include "ext/cpt.h"

#include "cpu/trap.h"
#include "metal/loader.h"
#include "support/strings.h"

namespace msim {
namespace {

// The walker preserves the interrupted program's registers through Metal
// registers m10..m13 (mroutines share the GPR file with the application).
constexpr const char* kMcode = R"(
    # ---- custom page tables: x86-style radix walk (paper §3.2) ----
    .equ D_CPT_ROOT, 32
    .equ D_CPT_OS_ENTRY, 36
    .equ D_CPT_FILLS, 40
    .equ CR_MEPC, 1
    .equ CR_MBADVADDR, 2

    .mentry 16, cpt_fault

cpt_fault:
    # save the application's temporaries
    wmr m10, t0
    wmr m11, t1
    wmr m12, t2
    wmr m13, t3
    rcr t0, CR_MBADVADDR
    mld t1, D_CPT_ROOT(zero)
    # level 1: PDE index = vaddr[31:22]
    srli t2, t0, 22
    slli t2, t2, 2
    add t1, t1, t2
    plw t1, 0(t1)
    andi t3, t1, 1                 # present?
    beqz t3, cpt_not_present
    andi t3, t1, 64                # superpage PDE?
    bnez t3, cpt_fill
    # level 2: PTE index = vaddr[21:12]
    srli t2, t0, 12
    andi t2, t2, 0x3FF
    slli t2, t2, 2
    li t3, -4096
    and t1, t1, t3                 # level-2 table frame
    add t1, t1, t2
    plw t1, 0(t1)
    andi t3, t1, 1
    beqz t3, cpt_not_present
cpt_fill:
    tlbwr t0, t1                   # refill; TLB ignores the P bit
    mld t3, D_CPT_FILLS(zero)
    addi t3, t3, 1
    mst t3, D_CPT_FILLS(zero)
    # restore and retry the faulting instruction (m31 = faulting pc)
    rmr t0, m10
    rmr t1, m11
    rmr t2, m12
    rmr t3, m13
    mexit

cpt_not_present:
    # deliver the page fault to the OS: a0 = faulting vaddr, a1 = faulting pc
    rcr a0, CR_MBADVADDR
    rcr a1, CR_MEPC
    wmr m0, zero                   # kernel privilege for the OS handler
    mld t1, D_CPT_OS_ENTRY(zero)
    beqz t1, cpt_no_os
    wmr m31, t1
    rmr t0, m10
    rmr t1, m11
    rmr t2, m12
    rmr t3, m13
    mexit
cpt_no_os:
    li t0, 0xFA                    # no OS handler registered: stop
    halt t0
)";

}  // namespace

const char* CustomPageTable::McodeSource() { return kMcode; }

Status CustomPageTable::Install(MetalSystem& system, uint32_t os_fault_entry) {
  system.AddMcode(kMcode);
  system.AddBootHook([os_fault_entry](Core& core) {
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataOsEntry, os_fault_entry));
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataFillCount, 0));
    core.metal().Delegate(ExcCause::kTlbMissLoad, kFaultEntry);
    core.metal().Delegate(ExcCause::kTlbMissStore, kFaultEntry);
    core.metal().Delegate(ExcCause::kTlbMissFetch, kFaultEntry);
    return Status::Ok();
  });
  return Status::Ok();
}

CustomPageTable::CustomPageTable(Core& core, uint32_t region_base, uint32_t region_size)
    : core_(core),
      region_base_(region_base),
      region_end_(region_base + region_size),
      next_frame_(region_base) {}

Result<uint32_t> CustomPageTable::AllocTable() {
  if (next_frame_ + kPageSize > region_end_) {
    return ResourceExhausted("page-table frame region exhausted");
  }
  const uint32_t frame = next_frame_;
  next_frame_ += kPageSize;
  for (uint32_t offset = 0; offset < kPageSize; offset += 4) {
    if (!core_.bus().dram().Write32(frame + offset, 0)) {
      return OutOfRange(StrFormat("table frame 0x%08x outside DRAM", frame));
    }
  }
  return frame;
}

Result<uint32_t> CustomPageTable::CreateAddressSpace() { return AllocTable(); }

Status CustomPageTable::Map(uint32_t root, uint32_t vaddr, uint32_t paddr, uint32_t perms,
                            uint32_t key, bool superpage) {
  PhysicalMemory& dram = core_.bus().dram();
  const uint32_t pde_addr = root + ((vaddr >> 22) << 2);
  if (superpage) {
    const uint32_t pde = MakePte(paddr & 0xFFC00000u, perms, key, /*global=*/false,
                                 /*superpage=*/true) |
                         kCptPresent;
    if (!dram.Write32(pde_addr, pde)) {
      return OutOfRange("PDE outside DRAM");
    }
    return Status::Ok();
  }
  const auto pde = dram.Read32(pde_addr);
  if (!pde) {
    return OutOfRange("PDE outside DRAM");
  }
  uint32_t table;
  if ((*pde & kCptPresent) == 0) {
    MSIM_ASSIGN_OR_RETURN(table, AllocTable());
    if (!dram.Write32(pde_addr, (table & 0xFFFFF000u) | kCptPresent)) {
      return OutOfRange("PDE outside DRAM");
    }
  } else {
    if ((*pde & kPteSuper) != 0) {
      return FailedPrecondition(
          StrFormat("vaddr 0x%08x already covered by a superpage mapping", vaddr));
    }
    table = *pde & 0xFFFFF000u;
  }
  const uint32_t pte_addr = table + (((vaddr >> 12) & 0x3FF) << 2);
  const uint32_t pte = MakePte(paddr, perms, key) | kCptPresent;
  if (!dram.Write32(pte_addr, pte)) {
    return OutOfRange("PTE outside DRAM");
  }
  return Status::Ok();
}

Status CustomPageTable::Unmap(uint32_t root, uint32_t vaddr) {
  PhysicalMemory& dram = core_.bus().dram();
  const uint32_t pde_addr = root + ((vaddr >> 22) << 2);
  const auto pde = dram.Read32(pde_addr);
  if (!pde) {
    return OutOfRange("PDE outside DRAM");
  }
  if ((*pde & kCptPresent) == 0) {
    return Status::Ok();
  }
  if ((*pde & kPteSuper) != 0) {
    dram.Write32(pde_addr, 0);
  } else {
    const uint32_t pte_addr = (*pde & 0xFFFFF000u) + (((vaddr >> 12) & 0x3FF) << 2);
    dram.Write32(pte_addr, 0);
  }
  core_.mmu().tlb().InvalidateVaddr(vaddr, core_.metal().asid());
  return Status::Ok();
}

Status CustomPageTable::Activate(uint32_t root) {
  MSIM_RETURN_IF_ERROR(WriteHandlerData32(core_, kDataRoot, root));
  core_.mmu().tlb().FlushAll();
  return Status::Ok();
}

Result<uint32_t> CustomPageTable::FillCount() { return ReadHandlerData32(core_, kDataFillCount); }

}  // namespace msim
