#include "ext/uli.h"

#include "metal/loader.h"

namespace msim {
namespace {

// Metal register use: m4 = interrupted pc, m5 = masked IENABLE bit,
// m6 = interrupted a0, m15 = interrupted privilege level (m0); m10..m13 save
// temporaries inside the dispatcher. uli_ret restores a0, m0 and the line
// mask, so handlers only need to preserve the registers they themselves use.
constexpr const char* kMcode = R"(
    # ---- user-level interrupts (paper §3.4) ----
    .equ D_ULI_TABLE, 1088
    .equ D_ULI_KERNEL, 1344
    .equ D_ULI_COUNT, 1348
    .equ CR_MCAUSE, 0
    .equ CR_IENABLE, 8

    .mentry 32, uli_dispatch
    .mentry 33, uli_ret
    .mentry 34, uli_register
    .mentry 35, uli_kernel_set

# All interrupt delivery lands here (delegated at boot).
uli_dispatch:
    wmr m10, t0
    wmr m11, t1
    wmr m12, t2
    wmr m13, t3
    rcr t0, CR_MCAUSE
    slli t0, t0, 1
    srli t0, t0, 1                 # t0 = interrupt line
    slli t1, t0, 3
    mld t2, D_ULI_TABLE(t1)        # registered user handler
    beqz t2, uli_kernel
    mld t1, D_ULI_TABLE+4(t1)      # allowed-privilege bitmap
    rmr t3, m0                     # current user-defined privilege level
    srl t1, t1, t3
    andi t1, t1, 1
    beqz t1, uli_kernel
    # mask this line until uli_ret so the handler itself is not re-entered
    li t1, 1
    sll t1, t1, t0
    wmr m5, t1
    rcr t3, CR_IENABLE
    not t1, t1
    and t3, t3, t1
    wcr CR_IENABLE, t3
    # save the interrupted context: pc (m31), a0 and privilege level
    rmr t1, m31
    wmr m4, t1
    wmr m6, a0
    rmr t1, m0
    wmr m15, t1
    mv a0, t0                      # handler argument: the line number
    mld t1, D_ULI_COUNT(zero)
    addi t1, t1, 1
    mst t1, D_ULI_COUNT(zero)
    wmr m31, t2                    # deliver to the USER handler directly
    rmr t0, m10
    rmr t1, m11
    rmr t2, m12
    rmr t3, m13
    mexit

uli_kernel:
    # fall back to the kernel at kernel privilege; a0 = raw cause. The line
    # is masked exactly like the user path so the kernel handler is not
    # re-entered before it acknowledges; it re-enables via uli_ret.
    li t1, 1
    sll t1, t1, t0
    wmr m5, t1
    rcr t3, CR_IENABLE
    not t1, t1
    and t3, t3, t1
    wcr CR_IENABLE, t3
    rmr t1, m0
    wmr m15, t1                    # remember the interrupted privilege level
    wmr m0, zero
    rmr t1, m31
    wmr m4, t1
    wmr m6, a0
    rcr a0, CR_MCAUSE
    mld t1, D_ULI_KERNEL(zero)
    beqz t1, uli_dead
    wmr m31, t1
    rmr t0, m10
    rmr t1, m11
    rmr t2, m12
    rmr t3, m13
    mexit
uli_dead:
    li t0, 0xFB                    # no kernel handler registered
    halt t0

# Return from a user interrupt handler: unmask and resume.
uli_ret:
    wmr m10, t0
    wmr m11, t1
    rmr a0, m6
    rmr t0, m5
    rcr t1, CR_IENABLE
    or t1, t1, t0
    wcr CR_IENABLE, t1
    rmr t0, m4
    wmr m31, t0
    rmr t0, m10
    rmr t1, m11
    mexit

# Register a user handler: a0 = line, a1 = handler, a2 = allowed-privilege
# bitmap. Kernel-only.
uli_register:
    rmr t0, m0
    bnez t0, uli_denied
    slli t0, a0, 3
    mst a1, D_ULI_TABLE(t0)
    mst a2, D_ULI_TABLE+4(t0)
    li a0, 0
    mexit

# Set the kernel fallback handler: a0 = handler. Kernel-only.
uli_kernel_set:
    rmr t0, m0
    bnez t0, uli_denied
    mst a0, D_ULI_KERNEL(zero)
    li a0, 0
    mexit

uli_denied:
    li a0, -1
    mexit
)";

}  // namespace

const char* UliExtension::McodeSource() { return kMcode; }

Status UliExtension::Install(MetalSystem& system) {
  system.AddMcode(kMcode);
  system.AddBootHook([](Core& core) {
    for (uint32_t line = 0; line < 32; ++line) {
      MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataTable + 8 * line, 0));
      MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataTable + 8 * line + 4, 0));
    }
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataKernel, 0));
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataCount, 0));
    core.metal().DelegateIrq(kDispatchEntry);
    return Status::Ok();
  });
  return Status::Ok();
}

Result<uint32_t> UliExtension::UserDeliveries(Core& core) {
  return ReadHandlerData32(core, kDataCount);
}

}  // namespace msim
