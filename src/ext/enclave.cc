#include "ext/enclave.h"

#include "cpu/creg.h"
#include "metal/loader.h"

namespace msim {
namespace {

// m8 = caller return address, m9 = caller privilege level.
constexpr const char* kMcode = R"(
    # ---- security enclaves (paper §3.5) ----
    .equ D_ENC_BASE, 44
    .equ D_ENC_LEN, 48
    .equ D_ENC_MEAS, 52
    .equ D_ENC_ACTIVE, 56
    .equ CR_KEYPERM, 6

    .mentry 48, encl_create
    .mentry 49, encl_enter
    .mentry 50, encl_exit
    .mentry 51, encl_measure

# Load + measure an enclave (kernel only). a0 = base, a1 = byte length.
encl_create:
    rmr t0, m0
    bnez t0, encl_denied
    mst a0, D_ENC_BASE(zero)
    mst a1, D_ENC_LEN(zero)
    # measurement: h = h * 31 + word over the enclave image
    li t0, 0
    mv t1, a0
    add t2, a0, a1
encl_meas_loop:
    bgeu t1, t2, encl_meas_done
    plw t3, 0(t1)
    slli t4, t0, 5
    sub t0, t4, t0
    add t0, t0, t3
    addi t1, t1, 4
    j encl_meas_loop
encl_meas_done:
    mst t0, D_ENC_MEAS(zero)
    li t0, 1
    mst t0, D_ENC_ACTIVE(zero)
    li a0, 0
    mexit
encl_denied:
    li a0, -1
    mexit

# Enter the trusted execution layer at the enclave privilege level.
encl_enter:
    mld t0, D_ENC_ACTIVE(zero)
    beqz t0, encl_denied
    rmr t0, m0
    wmr m9, t0
    li t0, 2
    wmr m0, t0
    rcr t0, CR_KEYPERM
    ori t0, t0, 0xC0               # open the enclave key
    wcr CR_KEYPERM, t0
    rmr t0, m31
    wmr m8, t0
    mld t0, D_ENC_BASE(zero)
    wmr m31, t0
    mexit

# Leave the enclave: close the key, restore privilege, return.
encl_exit:
    rcr t0, CR_KEYPERM
    andi t0, t0, -193              # ~0xC0
    wcr CR_KEYPERM, t0
    rmr t0, m9
    wmr m0, t0
    rmr t0, m8
    wmr m31, t0
    mexit

# Report the load-time measurement (attestation).
encl_measure:
    mld a0, D_ENC_MEAS(zero)
    mexit
)";

}  // namespace

const char* EnclaveExtension::McodeSource() { return kMcode; }

Status EnclaveExtension::Install(MetalSystem& system) {
  system.AddMcode(kMcode);
  system.AddBootHook([](Core& core) {
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataActive, 0));
    // The enclave key is closed for everyone (including the kernel) except
    // inside encl_enter/encl_exit.
    const uint32_t keyperm = core.metal().ReadCreg(kCrKeyPerm, 0, 0, 0) & ~kEnclaveKeyBits;
    core.metal().WriteCreg(kCrKeyPerm, keyperm);
    return Status::Ok();
  });
  return Status::Ok();
}

uint32_t EnclaveExtension::MeasureRegion(Core& core, uint32_t base, uint32_t len) {
  uint32_t h = 0;
  for (uint32_t addr = base; addr < base + len; addr += 4) {
    h = h * 31 + core.bus().dram().Read32(addr).value_or(0);
  }
  return h;
}

}  // namespace msim
