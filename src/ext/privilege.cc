#include "ext/privilege.h"

#include "cpu/creg.h"
#include "metal/loader.h"

namespace msim {
namespace {

// Bits of KEYPERM covering the kernel page key (read + write).
// key k occupies bits (2k, 2k+1); kKernelPageKey == 1 -> bits 2 and 3.
constexpr const char* kMcode = R"(
    # ---- user-defined privilege levels (paper §3.1, Listing 2) ----
    .equ PRIV_KERNEL, 0
    .equ PRIV_USER, 1
    .equ KEY_KERNEL_BITS, 0x0C        # KEYPERM bits for page key 1 (R|W)
    .equ D_SYSCALL_TABLE, 0
    .equ D_SYSCALL_COUNT, 4
    .equ D_FAULT_ENTRY, 8
    .equ D_SAVED_RA, 12
    .equ CR_KEYPERM, 6

    .mentry 8, kenter
    .mentry 9, kexit
    .mentry 10, ktlbflush

# System call entry: a0 = syscall number (paper Figure 2).
kenter:
    # current privilege -> kernel, open the kernel page key
    wmr m0, zero                      # m0 <- PRIV_KERNEL (0)
    rcr t0, CR_KEYPERM
    ori t0, t0, KEY_KERNEL_BITS
    wcr CR_KEYPERM, t0
    # save the userspace return address in ra, as defined by the ABI
    rmr ra, m31
    mst ra, D_SAVED_RA(zero)
    # bounds-check the syscall number
    mld t0, D_SYSCALL_COUNT(zero)
    bgeu a0, t0, kenter_bad
    # compute the kernel syscall entry point
    mld t0, D_SYSCALL_TABLE(zero)
    slli t1, a0, 2
    add t0, t0, t1
    lw t0, 0(t0)                      # Metal mode: physical access
    # jump to the kernel system call entry point
    wmr m31, t0
    mexit
kenter_bad:
    # undefined syscall: deliver a fault upcall to the kernel (still at
    # kernel privilege; the kernel decides what to do with the process)
    mld t0, D_FAULT_ENTRY(zero)
    wmr m31, t0
    mexit

# Return to userspace: kernel leaves the user resume address in ra.
kexit:
    li t0, PRIV_USER
    wmr m0, t0
    # close the kernel page key (batch permission change via KEYPERM)
    rcr t0, CR_KEYPERM
    andi t0, t0, -13                  # ~KEY_KERNEL_BITS
    wcr CR_KEYPERM, t0
    wmr m31, ra
    mexit

# Privileged service: TLB flush. Demonstrates the privilege check that
# protects every mroutine touching privileged resources (paper §3.1).
ktlbflush:
    rmr t0, m0
    bnez t0, ktlbflush_denied
    tlbflush zero
    mexit
ktlbflush_denied:
    # privilege violation: upcall into the kernel fault entry at kernel level
    wmr m0, zero
    mld t0, D_FAULT_ENTRY(zero)
    wmr m31, t0
    mexit
)";

}  // namespace

const char* PrivilegeExtension::McodeSource() { return kMcode; }

Status PrivilegeExtension::WriteBootData(Core& core, uint32_t syscall_table,
                                         uint32_t syscall_count, uint32_t fault_entry) {
  MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataSyscallTable, syscall_table));
  MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataSyscallCount, syscall_count));
  MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataFaultEntry, fault_entry));
  // Boot in user mode by convention; the loader/OS flips m0 as needed. The
  // kernel page key starts closed — only kenter opens it.
  core.metal().WriteMreg(0, kUserLevel);
  const uint32_t kernel_bits = 3u << (2 * kKernelPageKey);
  core.metal().WriteCreg(kCrKeyPerm, core.metal().ReadCreg(kCrKeyPerm, 0, 0, 0) & ~kernel_bits);
  return Status::Ok();
}

Status PrivilegeExtension::Install(MetalSystem& system, uint32_t syscall_table,
                                   uint32_t syscall_count, uint32_t fault_entry) {
  system.AddMcode(kMcode);
  system.AddBootHook([=](Core& core) {
    return WriteBootData(core, syscall_table, syscall_count, fault_entry);
  });
  return Status::Ok();
}

}  // namespace msim
