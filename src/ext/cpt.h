// Custom page tables (paper §3.2).
//
// There is no hardware page-table walker: TLB misses are delegated to an
// mroutine that walks an x86-style two-level radix tree with direct physical
// memory access (plw) and refills the TLB with tlbwr — "In a few lines of
// assembly, we walk an x86-style radix tree on page fault. We populate the
// processor's TLB mappings from the page table. If the page is not present or
// the access violates the page protection, we deliver the exception to the
// OS."
//
// In-memory PTE/PDE format (chosen to line up with the TLB PTE so the walker
// inserts entries without bit surgery — see src/mmu/tlb.h):
//   [31:12] frame    [11:8] key    [7] G    [6] S (4 MiB superpage)
//   [5] X  [4] W  [3] R            [0] P (present)
// A PDE uses [31:12] as the level-2 table frame, or is itself a superpage
// mapping when S is set.
//
// The same mcode runs unchanged in all three mroutine-storage configurations
// (MRAM / cached DRAM / uncached DRAM), which is exactly the comparison
// bench_pagefault draws.
#ifndef MSIM_EXT_CPT_H_
#define MSIM_EXT_CPT_H_

#include <cstdint>

#include "metal/system.h"
#include "mmu/tlb.h"

namespace msim {

// In-memory page-table entry bits.
inline constexpr uint32_t kCptPresent = 1u << 0;

class CustomPageTable {
 public:
  static constexpr uint32_t kFaultEntry = 16;  // shared by load/store/fetch misses

  // MRAM data offsets (see ext/data_layout.h).
  static constexpr uint32_t kDataRoot = 32;      // current root table (physical)
  static constexpr uint32_t kDataOsEntry = 36;   // OS page-fault upcall address
  static constexpr uint32_t kDataFillCount = 40; // statistics: TLB fills performed

  static const char* McodeSource();

  // Installs the walker mroutine and delegates the three TLB-miss causes.
  // `os_fault_entry` is where non-present faults are delivered (0 = halt the
  // simulation via a fatal upcall — useful in tests).
  static Status Install(MetalSystem& system, uint32_t os_fault_entry);

  // --- host-side page-table construction --------------------------------
  // Builds radix tables in simulated physical memory, allocating 4 KiB table
  // frames from [region_base, region_base + region_size).
  CustomPageTable(Core& core, uint32_t region_base, uint32_t region_size);

  // Allocates and zeroes a root (level-1) table. Returns its physical base.
  Result<uint32_t> CreateAddressSpace();

  // Maps vaddr -> paddr with TLB-format permission bits (kPteR/W/X), a page
  // key, and optionally as a 4 MiB superpage.
  Status Map(uint32_t root, uint32_t vaddr, uint32_t paddr, uint32_t perms, uint32_t key = 0,
             bool superpage = false);

  // Marks the page not-present (subsequent access -> OS fault upcall).
  Status Unmap(uint32_t root, uint32_t vaddr);

  // Makes `root` the active address space: writes the walker's root slot and
  // flushes the TLB.
  Status Activate(uint32_t root);

  // Host-side read of the walker's fill counter.
  Result<uint32_t> FillCount();

 private:
  Result<uint32_t> AllocTable();

  Core& core_;
  uint32_t region_base_;
  uint32_t region_end_;
  uint32_t next_frame_;
};

}  // namespace msim

#endif  // MSIM_EXT_CPT_H_
