#include "ext/caps.h"

#include "metal/loader.h"

namespace msim {
namespace {

constexpr const char* kMcode = R"(
    # ---- hardware capabilities (paper §3.5) ----
    .equ D_CAP_COUNT, 1928
    .equ D_CAP_TABLE, 1932

    .mentry 40, cap_create
    .mentry 41, cap_load
    .mentry 42, cap_store
    .mentry 43, cap_revoke

# Mint a capability (kernel only). a0=base, a1=len, a2=perms -> a0=id or -1.
cap_create:
    rmr t0, m0
    bnez t0, cap_denied
    mld t0, D_CAP_COUNT(zero)
    li t1, 16
    beq t0, t1, cap_denied
    slli t1, t0, 4
    mst a0, D_CAP_TABLE(t1)
    mst a1, D_CAP_TABLE+4(t1)
    mst a2, D_CAP_TABLE+8(t1)
    li t2, 1
    mst t2, D_CAP_TABLE+12(t1)
    addi t1, t0, 1
    mst t1, D_CAP_COUNT(zero)
    mv a0, t0
    mexit
cap_denied:
    li a0, -1
    li a1, -1
    mexit

# Load through a capability. a0=id, a1=byte offset -> a0=value, a1=0 (or -1).
cap_load:
    mld t0, D_CAP_COUNT(zero)
    bgeu a0, t0, cap_fail
    slli t0, a0, 4
    mld t1, D_CAP_TABLE+12(t0)
    beqz t1, cap_fail              # revoked
    mld t1, D_CAP_TABLE+8(t0)
    andi t1, t1, 1                 # read permission
    beqz t1, cap_fail
    mld t1, D_CAP_TABLE+4(t0)      # length
    addi t2, a1, 4
    bltu t1, t2, cap_fail          # offset + 4 <= len
    mld t0, D_CAP_TABLE(t0)
    add t0, t0, a1
    plw a0, 0(t0)
    li a1, 0
    mexit
cap_fail:
    li a1, -1
    mexit

# Store through a capability. a0=id, a1=offset, a2=value -> a1=0 (or -1).
cap_store:
    mld t0, D_CAP_COUNT(zero)
    bgeu a0, t0, cap_fail
    slli t0, a0, 4
    mld t1, D_CAP_TABLE+12(t0)
    beqz t1, cap_fail
    mld t1, D_CAP_TABLE+8(t0)
    andi t1, t1, 2                 # write permission
    beqz t1, cap_fail
    mld t1, D_CAP_TABLE+4(t0)
    addi t2, a1, 4
    bltu t1, t2, cap_fail
    mld t0, D_CAP_TABLE(t0)
    add t0, t0, a1
    psw a2, 0(t0)
    li a1, 0
    mexit

# Revoke (kernel only): every outstanding copy of the id dies with the entry.
cap_revoke:
    rmr t0, m0
    bnez t0, cap_denied
    mld t0, D_CAP_COUNT(zero)
    bgeu a0, t0, cap_denied
    slli t0, a0, 4
    mst zero, D_CAP_TABLE+12(t0)
    li a0, 0
    mexit
)";

}  // namespace

const char* CapabilityExtension::McodeSource() { return kMcode; }

Status CapabilityExtension::Install(MetalSystem& system) {
  system.AddMcode(kMcode);
  system.AddBootHook([](Core& core) { return WriteHandlerData32(core, kDataCount, 0); });
  return Status::Ok();
}

}  // namespace msim
