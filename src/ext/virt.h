// Virtualization: nested page tables (paper §3.5, Virtualization).
//
// "Developers can use Metal to implement virtualization. For example, Metal
// allows hypervisors to implement nested page tables. ... Privileged
// instructions can be intercepted and trapped by Metal for proper handling."
//
// The TLB-miss mroutine performs the full two-dimensional walk:
//   guest VA --(guest page table, owned by the guest OS)--> guest PA
//   guest PA --(host page table, owned by the VMM)-------> host PA
// Every guest-page-table access is itself translated through the host table
// (the tables live in guest-physical memory), exactly like hardware nested
// walkers. The combined mapping is inserted into the TLB, so the walk cost
// is paid once per miss.
//
// Fault routing follows the paper's layering: a guest-not-present fault is
// delivered to the GUEST OS handler; a host-not-present fault (including
// misses on guest-table accesses) is delivered to the VMM handler.
//
// Host-side, NestedPaging builds both radix trees. Guest-physical memory is
// backed contiguously at `gpa_base` (host frame = gpa_base + guest frame)
// purely as a convenience for tests; the mcode walker works for arbitrary
// host mappings.
#ifndef MSIM_EXT_VIRT_H_
#define MSIM_EXT_VIRT_H_

#include <cstdint>

#include "metal/system.h"
#include "mmu/tlb.h"

namespace msim {

class NestedPaging {
 public:
  static constexpr uint32_t kFaultEntry = 20;

  // MRAM data offsets (ext/data_layout.h: [112, 128)).
  static constexpr uint32_t kDataGuestRoot = 112;  // guest-PHYSICAL address
  static constexpr uint32_t kDataHostRoot = 116;   // host-physical address
  static constexpr uint32_t kDataGuestFault = 120; // guest OS handler (guest VA)
  static constexpr uint32_t kDataVmmFault = 124;   // VMM handler address

  static const char* McodeSource();

  // Installs the nested walker and delegates the TLB-miss causes to it.
  static Status Install(MetalSystem& system, uint32_t guest_fault_entry,
                        uint32_t vmm_fault_entry);

  // Host-side builder. `table_region` supplies 4 KiB frames (host-physical)
  // for both trees; `gpa_base` is where guest-physical 0 is backed.
  NestedPaging(Core& core, uint32_t table_region, uint32_t table_region_size,
               uint32_t gpa_base);

  // Creates the host (stage-2) table; returns its host-physical root.
  Result<uint32_t> CreateHostSpace();
  // Maps guest-physical -> host-physical in the host table.
  Status MapHost(uint32_t hroot, uint32_t gpa, uint32_t hpa, uint32_t perms);

  // Creates a guest (stage-1) table INSIDE guest-physical memory; returns its
  // guest-physical root. Guest tables consume guest-physical frames starting
  // at `guest_table_gpa`.
  Result<uint32_t> CreateGuestSpace(uint32_t guest_table_gpa, uint32_t frames);
  // Maps guest-virtual -> guest-physical in the guest table (written through
  // the gpa_base backing).
  Status MapGuest(uint32_t groot_gpa, uint32_t gva, uint32_t gpa, uint32_t perms);

  // Activates the pair: writes both roots into MRAM data and flushes the TLB.
  Status Activate(uint32_t groot_gpa, uint32_t hroot);

  uint32_t gpa_base() const { return gpa_base_; }

 private:
  Result<uint32_t> AllocHostFrame();

  Core& core_;
  uint32_t region_base_;
  uint32_t region_end_;
  uint32_t next_frame_;
  uint32_t gpa_base_;
  uint32_t next_guest_table_gpa_ = 0;
  uint32_t guest_table_end_gpa_ = 0;
};

}  // namespace msim

#endif  // MSIM_EXT_VIRT_H_
