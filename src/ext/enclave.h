// Security enclaves (paper §3.5, Security Enclaves).
//
// "Metal's flexibility in defining privilege levels enables developers to
// implement enclave extensions. Developers create a trusted execution layer
// that runs at a higher privilege level than the host OS. After Metal loads
// and verifies an enclave, the enclave runs in the trusted execution layer
// which the host OS cannot access."
//
// Realization: enclave pages carry page key kEnclaveKey, which is closed for
// every privilege level — including the kernel — except while execution is
// inside the enclave (entered via `encl_enter`, which runs at the dedicated
// privilege level kEnclaveLevel). `encl_create` measures the enclave
// (multiply-accumulate hash over its words) at load time, modelling
// SGX-style attestation; `encl_measure` reports the measurement.
#ifndef MSIM_EXT_ENCLAVE_H_
#define MSIM_EXT_ENCLAVE_H_

#include <cstdint>

#include "metal/system.h"

namespace msim {

class EnclaveExtension {
 public:
  static constexpr uint32_t kCreateEntry = 48;   // a0=base a1=len (kernel only)
  static constexpr uint32_t kEnterEntry = 49;
  static constexpr uint32_t kExitEntry = 50;
  static constexpr uint32_t kMeasureEntry = 51;  // -> a0 = measurement

  static constexpr uint32_t kEnclaveLevel = 2;   // m0 value inside the enclave
  static constexpr uint32_t kEnclaveKey = 3;     // KEYPERM bits 6 and 7
  static constexpr uint32_t kEnclaveKeyBits = 0xC0;

  // MRAM data offsets (ext/data_layout.h: [44, 64)).
  static constexpr uint32_t kDataBase = 44;
  static constexpr uint32_t kDataLen = 48;
  static constexpr uint32_t kDataMeasurement = 52;
  static constexpr uint32_t kDataActive = 56;

  static const char* McodeSource();
  static Status Install(MetalSystem& system);

  // Host-side helper: the same measurement the mroutine computes, for
  // attestation checks in tests.
  static uint32_t MeasureRegion(Core& core, uint32_t base, uint32_t len);
};

}  // namespace msim

#endif  // MSIM_EXT_ENCLAVE_H_
