#include "ext/virt.h"

#include "cpu/trap.h"
#include "metal/loader.h"
#include "support/strings.h"

namespace msim {
namespace {

// Register budget: t0..t4 plus the t6 subroutine link, preserved in
// m10..m14 and m16 (the walker is invoked transparently on TLB misses).
constexpr const char* kMcode = R"(
    # ---- nested page tables for virtualization (paper §3.5) ----
    .equ D_VIRT_GROOT, 112
    .equ D_VIRT_HROOT, 116
    .equ D_VIRT_GFAULT, 120
    .equ D_VIRT_VFAULT, 124
    .equ CR_MEPC, 1
    .equ CR_MBADVADDR, 2

    .mentry 20, npt_fault

npt_fault:
    wmr m10, t0
    wmr m11, t1
    wmr m12, t2
    wmr m13, t3
    wmr m14, t4
    wmr m16, t6
    rcr t4, CR_MBADVADDR           # guest virtual address
    # --- guest walk, level 1 (every table access goes through gpa2hpa) ---
    mld t1, D_VIRT_GROOT(zero)
    srli t2, t4, 22
    slli t2, t2, 2
    add t1, t1, t2                 # gPA of the guest PDE
    jal t6, gpa2hpa
    plw t1, 0(t1)
    andi t3, t1, 1
    beqz t3, npt_guest_fault
    # --- guest walk, level 2 ---
    li t3, -4096
    and t1, t1, t3                 # gPA of the guest L2 table
    srli t2, t4, 12
    andi t2, t2, 0x3FF
    slli t2, t2, 2
    add t1, t1, t2                 # gPA of the guest PTE
    jal t6, gpa2hpa
    plw t1, 0(t1)
    andi t3, t1, 1
    beqz t3, npt_guest_fault
    mv t0, t1                      # keep the guest PTE's permission bits
    # --- stage 2: translate the guest frame to a host frame ---
    li t3, -4096
    and t1, t1, t3                 # guest-physical frame
    jal t6, gpa2hpa                # host-physical frame (page-aligned in/out)
    li t3, -4096
    and t1, t1, t3
    andi t0, t0, 0x38              # guest R/W/X
    or t1, t1, t0
    tlbwr t4, t1                   # combined gVA -> hPA mapping
    j npt_done

# t1 = guest-physical address -> t1 = host-physical address.
# Clobbers t2, t3; faults to the VMM when the host mapping is absent.
gpa2hpa:
    mld t2, D_VIRT_HROOT(zero)
    srli t3, t1, 22
    slli t3, t3, 2
    add t2, t2, t3
    plw t2, 0(t2)
    andi t3, t2, 1
    beqz t3, npt_vmm_fault
    li t3, -4096
    and t2, t2, t3                 # host L2 table
    srli t3, t1, 12
    andi t3, t3, 0x3FF
    slli t3, t3, 2
    add t2, t2, t3
    plw t2, 0(t2)
    andi t3, t2, 1
    beqz t3, npt_vmm_fault
    li t3, -4096
    and t2, t2, t3
    slli t1, t1, 20
    srli t1, t1, 20                # page offset
    or t1, t1, t2
    jr t6

npt_guest_fault:
    # guest-level page fault: deliver to the GUEST OS handler
    rcr a0, CR_MBADVADDR
    rcr a1, CR_MEPC
    mld t1, D_VIRT_GFAULT(zero)
    beqz t1, npt_dead
    wmr m31, t1
    j npt_done

npt_vmm_fault:
    # host-level fault: deliver to the VMM handler
    rcr a0, CR_MBADVADDR
    rcr a1, CR_MEPC
    mld t1, D_VIRT_VFAULT(zero)
    beqz t1, npt_dead
    wmr m31, t1
    j npt_done

npt_done:
    rmr t0, m10
    rmr t1, m11
    rmr t2, m12
    rmr t3, m13
    rmr t4, m14
    rmr t6, m16
    mexit

npt_dead:
    li t0, 0xFC
    halt t0
)";

constexpr uint32_t kPresent = 1u;

}  // namespace

const char* NestedPaging::McodeSource() { return kMcode; }

Status NestedPaging::Install(MetalSystem& system, uint32_t guest_fault_entry,
                             uint32_t vmm_fault_entry) {
  system.AddMcode(kMcode);
  system.AddBootHook([=](Core& core) {
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataGuestFault, guest_fault_entry));
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataVmmFault, vmm_fault_entry));
    core.metal().Delegate(ExcCause::kTlbMissLoad, kFaultEntry);
    core.metal().Delegate(ExcCause::kTlbMissStore, kFaultEntry);
    core.metal().Delegate(ExcCause::kTlbMissFetch, kFaultEntry);
    return Status::Ok();
  });
  return Status::Ok();
}

NestedPaging::NestedPaging(Core& core, uint32_t table_region, uint32_t table_region_size,
                           uint32_t gpa_base)
    : core_(core),
      region_base_(table_region),
      region_end_(table_region + table_region_size),
      next_frame_(table_region),
      gpa_base_(gpa_base) {}

Result<uint32_t> NestedPaging::AllocHostFrame() {
  if (next_frame_ + kPageSize > region_end_) {
    return ResourceExhausted("host table frame region exhausted");
  }
  const uint32_t frame = next_frame_;
  next_frame_ += kPageSize;
  for (uint32_t offset = 0; offset < kPageSize; offset += 4) {
    if (!core_.bus().dram().Write32(frame + offset, 0)) {
      return OutOfRange("host table frame outside DRAM");
    }
  }
  return frame;
}

Result<uint32_t> NestedPaging::CreateHostSpace() { return AllocHostFrame(); }

Status NestedPaging::MapHost(uint32_t hroot, uint32_t gpa, uint32_t hpa, uint32_t perms) {
  PhysicalMemory& dram = core_.bus().dram();
  const uint32_t pde_addr = hroot + ((gpa >> 22) << 2);
  const auto pde = dram.Read32(pde_addr);
  if (!pde) {
    return OutOfRange("host PDE outside DRAM");
  }
  uint32_t table;
  if ((*pde & kPresent) == 0) {
    MSIM_ASSIGN_OR_RETURN(table, AllocHostFrame());
    if (!dram.Write32(pde_addr, (table & 0xFFFFF000u) | kPresent)) {
      return OutOfRange("host PDE outside DRAM");
    }
  } else {
    table = *pde & 0xFFFFF000u;
  }
  const uint32_t pte_addr = table + (((gpa >> 12) & 0x3FF) << 2);
  if (!dram.Write32(pte_addr, MakePte(hpa, perms) | kPresent)) {
    return OutOfRange("host PTE outside DRAM");
  }
  return Status::Ok();
}

Result<uint32_t> NestedPaging::CreateGuestSpace(uint32_t guest_table_gpa, uint32_t frames) {
  next_guest_table_gpa_ = guest_table_gpa;
  guest_table_end_gpa_ = guest_table_gpa + frames * kPageSize;
  // Zero + hand out the root frame (through the contiguous backing).
  const uint32_t root_gpa = next_guest_table_gpa_;
  next_guest_table_gpa_ += kPageSize;
  for (uint32_t offset = 0; offset < kPageSize; offset += 4) {
    if (!core_.bus().dram().Write32(gpa_base_ + root_gpa + offset, 0)) {
      return OutOfRange("guest table backing outside DRAM");
    }
  }
  return root_gpa;
}

Status NestedPaging::MapGuest(uint32_t groot_gpa, uint32_t gva, uint32_t gpa, uint32_t perms) {
  PhysicalMemory& dram = core_.bus().dram();
  const uint32_t pde_backing = gpa_base_ + groot_gpa + ((gva >> 22) << 2);
  const auto pde = dram.Read32(pde_backing);
  if (!pde) {
    return OutOfRange("guest PDE backing outside DRAM");
  }
  uint32_t table_gpa;
  if ((*pde & kPresent) == 0) {
    if (next_guest_table_gpa_ + kPageSize > guest_table_end_gpa_) {
      return ResourceExhausted("guest table gpa region exhausted");
    }
    table_gpa = next_guest_table_gpa_;
    next_guest_table_gpa_ += kPageSize;
    for (uint32_t offset = 0; offset < kPageSize; offset += 4) {
      if (!dram.Write32(gpa_base_ + table_gpa + offset, 0)) {
        return OutOfRange("guest table backing outside DRAM");
      }
    }
    if (!dram.Write32(pde_backing, (table_gpa & 0xFFFFF000u) | kPresent)) {
      return OutOfRange("guest PDE backing outside DRAM");
    }
  } else {
    table_gpa = *pde & 0xFFFFF000u;
  }
  const uint32_t pte_backing = gpa_base_ + table_gpa + (((gva >> 12) & 0x3FF) << 2);
  if (!dram.Write32(pte_backing, MakePte(gpa, perms) | kPresent)) {
    return OutOfRange("guest PTE backing outside DRAM");
  }
  return Status::Ok();
}

Status NestedPaging::Activate(uint32_t groot_gpa, uint32_t hroot) {
  MSIM_RETURN_IF_ERROR(WriteHandlerData32(core_, kDataGuestRoot, groot_gpa));
  MSIM_RETURN_IF_ERROR(WriteHandlerData32(core_, kDataHostRoot, hroot));
  core_.mmu().tlb().FlushAll();
  return Status::Ok();
}

}  // namespace msim
