#include "ext/isolation.h"

#include "cpu/creg.h"
#include "metal/loader.h"

namespace msim {
namespace {

// m7 holds the caller's return address while inside the compartment.
constexpr const char* kMcode = R"(
    # ---- in-process isolation (paper §3.1) ----
    .equ D_ISO_GATE, 60
    .equ CR_KEYPERM, 6

    .mentry 12, iso_enter
    .mentry 13, iso_exit
    .mentry 14, iso_setup

# Enter the trusted compartment through the registered gate.
iso_enter:
    mld t0, D_ISO_GATE(zero)
    beqz t0, iso_fail
    rcr t1, CR_KEYPERM
    ori t1, t1, 0x30            # open the secret page key
    wcr CR_KEYPERM, t1
    rmr t1, m31
    wmr m7, t1                  # remember the caller
    wmr m31, t0
    mexit
iso_fail:
    li a0, -1
    mexit

# Leave the compartment: close the key, return to the caller.
iso_exit:
    rcr t0, CR_KEYPERM
    andi t0, t0, -49            # ~0x30
    wcr CR_KEYPERM, t0
    rmr t0, m7
    wmr m31, t0
    mexit

# One-time gate registration (first call wins; later calls fail).
iso_setup:
    mld t0, D_ISO_GATE(zero)
    bnez t0, iso_fail
    mst a0, D_ISO_GATE(zero)
    li a0, 0
    mexit
)";

}  // namespace

const char* IsolationExtension::McodeSource() { return kMcode; }

Status IsolationExtension::Install(MetalSystem& system) {
  system.AddMcode(kMcode);
  system.AddBootHook([](Core& core) {
    MSIM_RETURN_IF_ERROR(WriteHandlerData32(core, kDataGate, 0));
    // Close the secret key by default: only iso_enter opens it.
    const uint32_t keyperm =
        core.metal().ReadCreg(kCrKeyPerm, 0, 0, 0) & ~kSecretKeyBits;
    core.metal().WriteCreg(kCrKeyPerm, keyperm);
    return Status::Ok();
  });
  return Status::Ok();
}

}  // namespace msim
