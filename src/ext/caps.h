// Hardware capabilities (paper §3.5, Hardware Capabilities).
//
// "The IBM System/38 and Intel iAPX 432 processors implement capabilities in
// hardware using microcode. ... Metal can support capabilities by writing
// mroutines to create and manipulate domains and capabilities."
//
// A capability is an unforgeable handle to a bounded physical memory region
// with read/write permissions. Descriptors live in the MRAM data segment —
// normal-mode code can only use them through the mroutines, never mint or
// alter them. Creation and revocation require kernel privilege (m0 == 0).
#ifndef MSIM_EXT_CAPS_H_
#define MSIM_EXT_CAPS_H_

#include <cstdint>

#include "metal/system.h"

namespace msim {

class CapabilityExtension {
 public:
  static constexpr uint32_t kCreateEntry = 40;  // a0=base a1=len a2=perms -> a0=id/-1
  static constexpr uint32_t kLoadEntry = 41;    // a0=id a1=offset -> a0=value, a1=status
  static constexpr uint32_t kStoreEntry = 42;   // a0=id a1=offset a2=value -> a1=status
  static constexpr uint32_t kRevokeEntry = 43;  // a0=id -> a0=status

  static constexpr uint32_t kPermRead = 1;
  static constexpr uint32_t kPermWrite = 2;
  static constexpr uint32_t kMaxCaps = 16;

  // MRAM data offsets (ext/data_layout.h: [1928, 2200)).
  static constexpr uint32_t kDataCount = 1928;
  static constexpr uint32_t kDataTable = 1932;  // kMaxCaps x {base,len,perms,valid}

  static const char* McodeSource();
  static Status Install(MetalSystem& system);
};

}  // namespace msim

#endif  // MSIM_EXT_CAPS_H_
