#include "fleet/manifest.h"

#include <fstream>
#include <sstream>

#include "support/strings.h"

namespace msim {

namespace {

bool ParseU64(std::string_view value, uint64_t* out) {
  const auto parsed = ParseInt(value);
  if (!parsed || *parsed < 0) {
    return false;
  }
  *out = static_cast<uint64_t>(*parsed);
  return true;
}

Status KeyError(size_t line, std::string_view key, std::string_view value) {
  return ParseError(StrFormat("manifest line %zu: invalid value '%.*s' for key '%.*s'", line,
                              static_cast<int>(value.size()), value.data(),
                              static_cast<int>(key.size()), key.data()));
}

// Applies `key = value` to `spec`. `is_defaults` restricts the [defaults]
// section to the keys that make sense fleet-wide (budgets and checkpointing,
// not programs or fault specs).
Status ApplyKey(size_t line, std::string_view key, std::string_view value, bool is_defaults,
                JobSpec* spec) {
  if (!is_defaults) {
    if (key == "program") {
      spec->program = std::string(value);
      return Status::Ok();
    }
    if (key == "mcode") {
      spec->mcode.push_back(std::string(value));
      return Status::Ok();
    }
    if (key == "inject") {
      spec->inject.push_back(std::string(value));
      return Status::Ok();
    }
    if (key == "fault-seed") {
      if (!ParseU64(value, &spec->fault_seed)) {
        return KeyError(line, key, value);
      }
      spec->has_fault_seed = true;
      return Status::Ok();
    }
    if (key == "watchdog") {
      return ParseU64(value, &spec->watchdog) ? Status::Ok() : KeyError(line, key, value);
    }
    if (key == "args") {
      for (std::string_view part : Split(value, ' ')) {
        if (!part.empty()) {
          spec->extra_args.push_back(std::string(part));
        }
      }
      return Status::Ok();
    }
  }
  if (key == "storage") {
    if (value != "mram" && value != "dram-cached" && value != "dram-uncached") {
      return KeyError(line, key, value);
    }
    spec->storage = std::string(value);
    return Status::Ok();
  }
  if (key == "max-cycles") {
    return ParseU64(value, &spec->max_cycles) ? Status::Ok() : KeyError(line, key, value);
  }
  if (key == "checkpoint-every") {
    return ParseU64(value, &spec->checkpoint_every) ? Status::Ok() : KeyError(line, key, value);
  }
  if (key == "deadline-ms") {
    return ParseU64(value, &spec->deadline_ms) ? Status::Ok() : KeyError(line, key, value);
  }
  if (key == "retries") {
    const auto parsed = ParseInt(value);
    if (!parsed || *parsed < -1) {
      return KeyError(line, key, value);
    }
    spec->retries = *parsed;
    return Status::Ok();
  }
  return ParseError(StrFormat("manifest line %zu: unknown key '%.*s'%s", line,
                              static_cast<int>(key.size()), key.data(),
                              is_defaults ? " in [defaults]" : ""));
}

}  // namespace

bool IsValidJobName(std::string_view name) {
  if (name.empty() || name.size() > 128) {
    return false;
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  // "." / ".." would escape the output tree.
  return name != "." && name != "..";
}

Result<std::vector<JobSpec>> ParseManifest(std::string_view text) {
  std::vector<JobSpec> jobs;
  JobSpec defaults;
  bool in_defaults = false;
  bool in_job = false;
  size_t line_number = 0;

  const auto finish_job = [&]() -> Status {
    if (!in_job) {
      return Status::Ok();
    }
    JobSpec& job = jobs.back();
    if (job.program.empty()) {
      return ParseError(StrFormat("job '%s' has no program", job.name.c_str()));
    }
    return Status::Ok();
  };

  for (std::string_view raw : Split(text, '\n')) {
    ++line_number;
    std::string_view line = TrimWhitespace(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') {
      continue;
    }
    if (line.front() == '[' && line.back() == ']') {
      MSIM_RETURN_IF_ERROR(finish_job());
      std::string_view section = TrimWhitespace(line.substr(1, line.size() - 2));
      if (section == "defaults") {
        in_defaults = true;
        in_job = false;
        continue;
      }
      constexpr std::string_view kJobPrefix = "job ";
      if (section.size() <= kJobPrefix.size() ||
          section.substr(0, kJobPrefix.size()) != kJobPrefix) {
        return ParseError(StrFormat("manifest line %zu: expected [defaults] or [job NAME]",
                                    line_number));
      }
      const std::string_view name = TrimWhitespace(section.substr(kJobPrefix.size()));
      if (!IsValidJobName(name)) {
        return ParseError(StrFormat("manifest line %zu: invalid job name '%.*s' "
                                    "(want [A-Za-z0-9._-]+)",
                                    line_number, static_cast<int>(name.size()), name.data()));
      }
      for (const JobSpec& existing : jobs) {
        if (existing.name == name) {
          return ParseError(StrFormat("manifest line %zu: duplicate job name '%.*s'", line_number,
                                      static_cast<int>(name.size()), name.data()));
        }
      }
      JobSpec job = defaults;  // budgets/checkpointing inherited at definition
      job.name = std::string(name);
      jobs.push_back(std::move(job));
      in_defaults = false;
      in_job = true;
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return ParseError(StrFormat("manifest line %zu: expected 'key = value'", line_number));
    }
    const std::string_view key = TrimWhitespace(line.substr(0, eq));
    const std::string_view value = TrimWhitespace(line.substr(eq + 1));
    if (in_defaults) {
      MSIM_RETURN_IF_ERROR(ApplyKey(line_number, key, value, /*is_defaults=*/true, &defaults));
    } else if (in_job) {
      MSIM_RETURN_IF_ERROR(ApplyKey(line_number, key, value, /*is_defaults=*/false, &jobs.back()));
    } else {
      return ParseError(
          StrFormat("manifest line %zu: key outside a [defaults] or [job] section", line_number));
    }
  }
  MSIM_RETURN_IF_ERROR(finish_job());
  if (jobs.empty()) {
    return ParseError("manifest defines no jobs");
  }
  return jobs;
}

Result<std::vector<JobSpec>> LoadManifestFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound(StrFormat("cannot open manifest '%s'", path.c_str()));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseManifest(text.str());
}

}  // namespace msim
