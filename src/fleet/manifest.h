// Fleet job manifests (docs/robustness.md "Fleet supervision").
//
// A manifest describes a batch of independent simulation jobs the fleet
// supervisor (src/fleet/scheduler.h) executes across a pool of msim worker
// processes. The format is line-based INI:
//
//   # comment (also ';')
//   [defaults]              # optional; applies to jobs defined BELOW it
//   checkpoint-every = 5000
//   retries = 2
//
//   [job sweep-mram]        # names must be unique, [A-Za-z0-9._-]+
//   program = progs/alu.s   # required; path to the guest program source
//   mcode = m.s             # repeatable
//   storage = mram          # mram | dram-cached | dram-uncached
//   inject = mreg@100:bit=3 # repeatable (src/fault fault spec)
//   fault-seed = 7
//   watchdog = 100000
//   max-cycles = 2000000    # guest cycle budget for the whole job
//   checkpoint-every = 5000 # enables crash/evict resume for this job
//   deadline-ms = 10000     # per-attempt wall-clock budget (0 = fleet default)
//   retries = 3             # attempt failures tolerated (-1 = fleet default)
//   args = --no-fast-step   # raw extra `msim run` arguments, space-split
//
// Numeric values use the strict ParseInt grammar (support/strings.h):
// malformed numbers, unknown keys, duplicate job names and jobs without a
// program are parse errors, never silently ignored.
#ifndef MSIM_FLEET_MANIFEST_H_
#define MSIM_FLEET_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.h"

namespace msim {

// One simulation job: enough to build an `msim run` command line plus the
// per-job robustness budgets that override the fleet-wide defaults.
struct JobSpec {
  std::string name;
  std::string program;
  std::vector<std::string> mcode;
  std::string storage;                  // empty = msim default
  std::vector<std::string> inject;
  bool has_fault_seed = false;
  uint64_t fault_seed = 0;
  uint64_t watchdog = 0;                // 0 = off
  uint64_t max_cycles = 0;              // 0 = msim default budget
  uint64_t checkpoint_every = 0;        // 0 = no checkpoints, no resume
  uint64_t deadline_ms = 0;             // 0 = inherit fleet default
  int64_t retries = -1;                 // -1 = inherit fleet default
  std::vector<std::string> extra_args;
};

// True when `name` is safe to use as a directory component.
bool IsValidJobName(std::string_view name);

Result<std::vector<JobSpec>> ParseManifest(std::string_view text);
Result<std::vector<JobSpec>> LoadManifestFile(const std::string& path);

}  // namespace msim

#endif  // MSIM_FLEET_MANIFEST_H_
