// The fleet scheduler: runs a manifest of simulation jobs across a pool of
// msim worker processes with robustness as the contract
// (docs/robustness.md "Fleet supervision").
//
// Failure taxonomy and response:
//   crash          child died on a signal, aborted, or exited nonzero
//                  -> retry with bounded exponential backoff (fleet/backoff),
//                     resuming from the newest valid checkpoint;
//   hang           host-side watchdog saw no guest-cycle progress on the
//                  worker's heartbeat stream for --hang-timeout-ms
//                  -> SIGTERM (graceful), SIGKILL after a grace period, retry;
//   deadline       the attempt outlived its wall-clock budget
//                  -> same kill sequence, retry;
//   guest timeout  the worker itself reported kExitTimeout (absolute guest
//                  cycle budget exhausted) — deterministic, so retrying
//                  cannot help -> terminal timed-out;
//   eviction       a graceful SIGTERM stop (memory pressure or chaos): the
//                  worker checkpointed and exited kExitEvicted -> requeued,
//                  resumes later; evictions never consume the retry budget.
//
// Graceful degradation: when aggregate worker RSS exceeds --mem-limit-mb the
// oldest running job is checkpoint-evicted; a streak of consecutive failures
// halves admission (down to one worker) until something succeeds again.
//
// Every terminal failure is harvested into a self-contained repro directory
// (command line, stderr tail, crash dump, newest checkpoint), mfuzz-style.
#ifndef MSIM_FLEET_SCHEDULER_H_
#define MSIM_FLEET_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fleet/backoff.h"
#include "fleet/manifest.h"
#include "fleet/worker.h"
#include "trace/histogram.h"
#include "trace/metrics.h"

namespace msim {

struct FleetOptions {
  std::string msim_path;            // required: the worker binary
  std::string out_dir = "fleet-out";
  uint64_t workers = 4;             // max concurrent worker processes
  uint64_t retries = 2;             // default failed-attempt budget per job
  uint64_t deadline_ms = 60000;     // default per-attempt wall budget (0 = none)
  uint64_t hang_timeout_ms = 0;     // 0 = hang detector off
  uint64_t heartbeat_every_cycles = 65536;  // guest-cycle heartbeat granularity
  BackoffPolicy backoff;
  uint64_t mem_limit_mb = 0;        // 0 = no memory-pressure eviction
  uint64_t grace_ms = 2000;         // SIGTERM -> SIGKILL escalation delay
  uint64_t poll_ms = 15;            // supervisor poll interval
  uint64_t fail_streak_throttle = 5;  // consecutive failures per admission halving
  std::vector<std::string> chaos;   // test-only fault injection, see ParseChaosSpec
  bool verbose = true;              // progress lines on stderr
};

// Chaos specs inject supervisor-visible faults for testing the supervisor
// itself: ACTION@JOB with ACTION one of
//   kill  SIGKILL the job's first attempt (a hard crash),
//   term  SIGTERM it (a graceful checkpoint-eviction),
//   stop  SIGSTOP it (a wedge the hang detector must catch).
// The signal fires once, as soon as the attempt has a checkpoint to resume
// from (immediately for jobs that do not checkpoint).
struct ChaosSpec {
  enum class Action { kKill, kTerm, kStop };
  Action action = Action::kKill;
  std::string job;
  bool fired = false;
};
Result<ChaosSpec> ParseChaosSpec(std::string_view text);

// Terminal outcome of one job. kOk/kRetriedOk/kEvictedOk all mean the job's
// final stats are good; the distinction records what it survived.
enum class JobOutcome {
  kPending,
  kOk,         // clean first attempt
  kRetriedOk,  // succeeded after >= 1 failed attempt
  kEvictedOk,  // succeeded after >= 1 checkpoint-eviction
  kCrashed,    // retry budget exhausted on crashes (or unusable command line)
  kTimedOut,   // guest cycle budget, wall deadline or hang — budget exhausted
};
const char* JobOutcomeName(JobOutcome outcome);

// Deterministic per-job record for the fleet report: everything here is a
// function of the manifest + chaos specs, never of host timing.
struct JobRecord {
  std::string name;
  JobOutcome outcome = JobOutcome::kPending;
  int exit_code = 0;           // final attempt's exit code (128+N for signals)
  int signal = 0;              // final attempt's terminating signal, 0 if none
  uint64_t attempts = 0;       // processes launched
  uint64_t failures = 0;       // failed attempts (retry budget consumed)
  uint64_t evictions = 0;      // graceful checkpoint-evictions
  uint64_t deadline_kills = 0;
  uint64_t hang_kills = 0;
  uint64_t guest_cycles = 0;   // absolute cycles from the final stats.json
  std::string stats_json;      // path relative to out_dir, empty if never written
  std::string repro_dir;       // relative path, set when a failure was harvested
};

class FleetSupervisor {
 public:
  FleetSupervisor(std::vector<JobSpec> jobs, FleetOptions options);
  ~FleetSupervisor();  // defined where RunningJob is complete

  // Runs the whole fleet to terminal states. Returns an error only for
  // infrastructure failures (unusable out dir, bad chaos spec, fork failure);
  // job failures are recorded, not errors.
  Status Run();

  const std::vector<JobRecord>& records() const { return records_; }
  const FleetOptions& options() const { return options_; }
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  // kExitOk when every job succeeded, kExitJobsFailed otherwise.
  int SuggestedExitCode() const;

 private:
  struct RunningJob;

  std::string JobDir(const JobSpec& spec) const;
  Status LaunchAttempt(size_t index);
  void HandleExit(RunningJob& running, int raw_status, uint64_t now_ms);
  void FinishJob(size_t index, JobOutcome outcome, const AttemptOutcome& last);
  void HarvestRepro(size_t index, const RunningJob& running, const AttemptOutcome& last);
  void RequeueFront(size_t index, uint64_t eligible_at_ms);
  uint64_t EffectiveWorkers() const;
  void CheckMemoryPressure(uint64_t now_ms);

  std::vector<JobSpec> jobs_;
  FleetOptions options_;
  std::vector<JobRecord> records_;
  std::vector<ChaosSpec> chaos_;

  // Scheduler state during Run().
  std::deque<size_t> queue_;                         // pending job indices
  std::vector<std::unique_ptr<RunningJob>> running_;
  std::vector<uint64_t> eligible_at_ms_;             // per-job backoff gate
  uint64_t fail_streak_ = 0;
  uint64_t last_mem_evict_ms_ = 0;                   // eviction-storm cooldown

  // Fleet-level metrics; deterministic counters/histograms only, so the
  // report stays byte-identical across identical runs.
  MetricRegistry metrics_;
  uint64_t attempts_total_ = 0;
  uint64_t retries_total_ = 0;
  uint64_t evictions_total_ = 0;
  uint64_t deadline_kills_ = 0;
  uint64_t hang_kills_ = 0;
  uint64_t mem_evictions_ = 0;
  uint64_t chaos_fired_ = 0;
  uint64_t admission_throttled_ = 0;
  Histogram job_cycles_;    // guest cycles per successfully finished job
  Histogram job_attempts_;  // attempts per terminal job
};

}  // namespace msim

#endif  // MSIM_FLEET_SCHEDULER_H_
