// Bounded exponential retry backoff for the fleet supervisor.
//
// After the k-th failed attempt of a job, the job becomes eligible to run
// again base_ms * 2^(k-1) milliseconds later, capped at max_ms. The policy is
// deliberately jitter-free: fleet outcomes (attempt counts, resume points,
// the --fleet-json report) must be reproducible across identical runs
// (docs/determinism.md), and jobs in one fleet are independent simulations,
// not clients thundering against a shared service.
#ifndef MSIM_FLEET_BACKOFF_H_
#define MSIM_FLEET_BACKOFF_H_

#include <cstdint>

namespace msim {

struct BackoffPolicy {
  uint64_t base_ms = 200;
  uint64_t max_ms = 5000;
};

// Delay before retry number `failures` (>= 1). failures == 0 returns 0.
uint64_t BackoffDelayMs(const BackoffPolicy& policy, uint64_t failures);

}  // namespace msim

#endif  // MSIM_FLEET_BACKOFF_H_
