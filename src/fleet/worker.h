// Per-job worker processes for the fleet supervisor.
//
// Each job attempt runs as its own msim child process (fork/exec), so a
// crash, sanitizer abort, wedge or OOM kill in one simulation cannot take
// down the supervisor or any other job — process isolation IS the fault
// boundary. This header covers the mechanics of one attempt:
//
//   PlanAttempt     builds the msim command line for attempt k of a job,
//                   including checkpoint/resume, stats, crash-dump and
//                   heartbeat plumbing;
//   WorkerProcess   spawns it with stdout/stderr captured into the job
//                   directory and exposes non-blocking poll, signalling and
//                   RSS sampling;
//   ClassifyWaitStatus  maps a raw wait(2) status onto the shared exit-code
//                   table (support/exit_codes.h).
#ifndef MSIM_FLEET_WORKER_H_
#define MSIM_FLEET_WORKER_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/manifest.h"
#include "support/result.h"

namespace msim {

// The fully resolved launch plan for one attempt of one job.
struct AttemptPlan {
  std::vector<std::string> argv;  // argv[0] is the msim binary path
  std::string stdout_path;        // guest console output
  std::string stderr_path;        // msim's human-readable reporting
};

// Builds the command line for attempt `attempt` of `spec`.
//   * stats always go to <job_dir>/stats.json and the crash dump to
//     <job_dir>/crash.json (both deterministic, both overwritten per attempt);
//   * when the job checkpoints, checkpoints live in <job_dir>/ckpts and a
//     non-empty `restore_path` resumes from it — `restore_cycle` shrinks the
//     guest cycle budget so `max-cycles` stays an absolute-cycle deadline
//     across resumes;
//   * `heartbeat_every_cycles` != 0 adds a --metrics-jsonl stream the
//     supervisor's hang detector watches for guest-cycle progress.
AttemptPlan PlanAttempt(const JobSpec& spec, const std::string& msim_path,
                        const std::string& job_dir, uint64_t attempt,
                        const std::string& restore_path, uint64_t restore_cycle,
                        uint64_t heartbeat_every_cycles);

// One running child process. Movable handle; does not kill on destruction
// (the scheduler owns shutdown policy).
class WorkerProcess {
 public:
  // fork/execs the plan. stdin is /dev/null; stdout/stderr go to the plan's
  // capture files (truncated per attempt).
  Status Start(const AttemptPlan& plan);

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  // Non-blocking reap. Returns true and fills `raw_status` when the child has
  // exited (the handle then stops running); false while it is still alive.
  Result<bool> Poll(int* raw_status);

  // Sends `sig`; safe to call after exit (becomes a no-op).
  void Signal(int sig);

  // Resident set size in KiB from /proc/<pid>/status, 0 if unreadable.
  uint64_t RssKb() const;

 private:
  pid_t pid_ = -1;
};

// What a finished attempt means to the scheduler.
enum class AttemptClass {
  kSuccess,       // exit 0
  kEvicted,       // exit kExitEvicted: graceful stop, resumable, not a failure
  kGuestTimeout,  // exit kExitTimeout: guest cycle budget exhausted
  kUsageError,    // exit kExitUsage: bad command line/manifest — retry is futile
  kSdc,           // exit kExitSdc: silent data corruption found; the campaign
                  // is deterministic, so retry is futile — harvest the repro
  kCrash,         // signal death or any other nonzero exit
};

struct AttemptOutcome {
  AttemptClass cls = AttemptClass::kCrash;
  int exit_code = 0;  // valid when exited normally
  int signal = 0;     // valid when signalled
};

AttemptOutcome ClassifyWaitStatus(int raw_status);

// Last `max_bytes` of a file, for stderr tails in repro directories.
std::string ReadFileTail(const std::string& path, size_t max_bytes);

}  // namespace msim

#endif  // MSIM_FLEET_WORKER_H_
