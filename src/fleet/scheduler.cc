#include "fleet/scheduler.h"

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "fleet/report.h"
#include "snap/snapshot.h"
#include "support/exit_codes.h"
#include "support/strings.h"

namespace msim {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void SleepMs(uint64_t ms) { ::usleep(static_cast<useconds_t>(ms * 1000)); }

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
    return Internal(StrFormat("cannot create directory '%s': %s", path.c_str(),
                              std::strerror(errno)));
  }
  return Status::Ok();
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// POSIX-shell single quoting for repro.sh.
std::string ShellQuote(const std::string& arg) {
  std::string quoted = "'";
  for (char c : arg) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

}  // namespace

Result<ChaosSpec> ParseChaosSpec(std::string_view text) {
  const size_t at = text.find('@');
  if (at == std::string_view::npos) {
    return ParseError(StrFormat("chaos spec '%.*s': want ACTION@JOB",
                                static_cast<int>(text.size()), text.data()));
  }
  const std::string_view action = text.substr(0, at);
  const std::string_view job = text.substr(at + 1);
  ChaosSpec spec;
  if (action == "kill") {
    spec.action = ChaosSpec::Action::kKill;
  } else if (action == "term") {
    spec.action = ChaosSpec::Action::kTerm;
  } else if (action == "stop") {
    spec.action = ChaosSpec::Action::kStop;
  } else {
    return ParseError(StrFormat("chaos spec '%.*s': unknown action (want kill, term or stop)",
                                static_cast<int>(text.size()), text.data()));
  }
  if (!IsValidJobName(job)) {
    return ParseError(StrFormat("chaos spec '%.*s': invalid job name",
                                static_cast<int>(text.size()), text.data()));
  }
  spec.job = std::string(job);
  return spec;
}

const char* JobOutcomeName(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kPending: return "pending";
    case JobOutcome::kOk: return "ok";
    case JobOutcome::kRetriedOk: return "retried";
    case JobOutcome::kEvictedOk: return "evicted";
    case JobOutcome::kCrashed: return "crashed";
    case JobOutcome::kTimedOut: return "timed-out";
  }
  return "unknown";
}

struct FleetSupervisor::RunningJob {
  size_t index = 0;
  WorkerProcess process;
  AttemptPlan plan;
  uint64_t attempt = 0;
  std::string restore_path;  // checkpoint this attempt resumed from, if any

  uint64_t started_ms = 0;
  uint64_t deadline_at_ms = 0;  // absolute, 0 = none

  enum class KillReason { kNone, kDeadline, kHang, kEvict };
  KillReason kill_reason = KillReason::kNone;
  uint64_t term_sent_ms = 0;

  uint64_t heartbeat_size = 0;
  uint64_t last_progress_ms = 0;
};

FleetSupervisor::~FleetSupervisor() = default;

FleetSupervisor::FleetSupervisor(std::vector<JobSpec> jobs, FleetOptions options)
    : jobs_(std::move(jobs)), options_(std::move(options)) {
  records_.resize(jobs_.size());
  for (size_t i = 0; i < jobs_.size(); ++i) {
    records_[i].name = jobs_[i].name;
  }
  const auto count_outcome = [this](JobOutcome outcome) {
    uint64_t n = 0;
    for (const JobRecord& record : records_) {
      n += record.outcome == outcome ? 1 : 0;
    }
    return n;
  };
  metrics_.RegisterFn("fleet", "jobs_total", [this] { return (uint64_t)records_.size(); },
                      "jobs in the manifest");
  metrics_.RegisterFn("fleet", "jobs_ok", [=] { return count_outcome(JobOutcome::kOk); },
                      "clean first-attempt successes");
  metrics_.RegisterFn("fleet", "jobs_retried",
                      [=] { return count_outcome(JobOutcome::kRetriedOk); },
                      "successes after >=1 failed attempt");
  metrics_.RegisterFn("fleet", "jobs_evicted",
                      [=] { return count_outcome(JobOutcome::kEvictedOk); },
                      "successes after >=1 checkpoint-eviction");
  metrics_.RegisterFn("fleet", "jobs_crashed",
                      [=] { return count_outcome(JobOutcome::kCrashed); },
                      "terminal failures (crash class)");
  metrics_.RegisterFn("fleet", "jobs_timed_out",
                      [=] { return count_outcome(JobOutcome::kTimedOut); },
                      "terminal failures (budget class)");
  metrics_.Register("fleet", "attempts_total", &attempts_total_, "worker processes launched");
  metrics_.Register("fleet", "retries_total", &retries_total_, "failed attempts retried");
  metrics_.Register("fleet", "evictions_total", &evictions_total_,
                    "graceful checkpoint-evictions");
  metrics_.Register("fleet", "deadline_kills", &deadline_kills_,
                    "attempts killed at the wall-clock deadline");
  metrics_.Register("fleet", "hang_kills", &hang_kills_,
                    "attempts killed by the heartbeat hang detector");
  metrics_.Register("fleet", "mem_evictions", &mem_evictions_,
                    "evictions forced by the memory-pressure limit");
  metrics_.Register("fleet", "chaos_fired", &chaos_fired_, "chaos injections delivered");
  metrics_.Register("fleet", "admission_throttled", &admission_throttled_,
                    "admission halvings after failure streaks");
  metrics_.RegisterHistogram("fleet", "job_guest_cycles", &job_cycles_,
                             "absolute guest cycles per successful job");
  metrics_.RegisterHistogram("fleet", "job_attempts", &job_attempts_,
                             "attempts per terminal job");
}

std::string FleetSupervisor::JobDir(const JobSpec& spec) const {
  return options_.out_dir + "/jobs/" + spec.name;
}

uint64_t FleetSupervisor::EffectiveWorkers() const {
  uint64_t workers = options_.workers != 0 ? options_.workers : 1;
  if (options_.fail_streak_throttle == 0) {
    return workers;
  }
  uint64_t halvings = fail_streak_ / options_.fail_streak_throttle;
  while (halvings-- > 0 && workers > 1) {
    workers /= 2;
  }
  return workers;
}

Status FleetSupervisor::LaunchAttempt(size_t index) {
  const JobSpec& spec = jobs_[index];
  JobRecord& record = records_[index];
  const std::string job_dir = JobDir(spec);
  MSIM_RETURN_IF_ERROR(MakeDir(job_dir));
  if (spec.checkpoint_every != 0) {
    MSIM_RETURN_IF_ERROR(MakeDir(job_dir + "/ckpts"));
  }

  auto running = std::make_unique<RunningJob>();
  running->index = index;
  running->attempt = record.attempts;
  uint64_t restore_cycle = 0;
  if (spec.checkpoint_every != 0 && record.attempts > 0) {
    // Resume from the newest checkpoint that validates; a first attempt never
    // restores (there is nothing to resume, and a stale dir must not leak
    // state into a fresh job).
    if (const auto found = FindLatestValidSnapshot(job_dir + "/ckpts"); found.ok()) {
      running->restore_path = found->path;
      restore_cycle = found->cycle;
    }
  }
  running->plan =
      PlanAttempt(spec, options_.msim_path, job_dir, record.attempts, running->restore_path,
                  restore_cycle, options_.hang_timeout_ms != 0 ? options_.heartbeat_every_cycles : 0);
  MSIM_RETURN_IF_ERROR(running->process.Start(running->plan));
  record.attempts += 1;
  attempts_total_ += 1;

  const uint64_t now = NowMs();
  running->started_ms = now;
  running->last_progress_ms = now;
  const uint64_t deadline = spec.deadline_ms != 0 ? spec.deadline_ms : options_.deadline_ms;
  running->deadline_at_ms = deadline != 0 ? now + deadline : 0;
  if (options_.verbose) {
    std::fprintf(stderr, "[fleet] %s: attempt %llu started (pid %d)%s%s\n", spec.name.c_str(),
                 (unsigned long long)running->attempt, (int)running->process.pid(),
                 running->restore_path.empty() ? "" : ", resuming from ",
                 running->restore_path.c_str());
  }
  running_.push_back(std::move(running));
  return Status::Ok();
}

void FleetSupervisor::RequeueFront(size_t index, uint64_t eligible_at_ms) {
  eligible_at_ms_[index] = eligible_at_ms;
  queue_.push_front(index);
}

void FleetSupervisor::FinishJob(size_t index, JobOutcome outcome, const AttemptOutcome& last) {
  JobRecord& record = records_[index];
  record.outcome = outcome;
  record.exit_code = last.exit_code;
  record.signal = last.signal;
  job_attempts_.Record(record.attempts);
  const bool success = outcome == JobOutcome::kOk || outcome == JobOutcome::kRetriedOk ||
                       outcome == JobOutcome::kEvictedOk;
  if (success) {
    const std::string stats_path = JobDir(jobs_[index]) + "/stats.json";
    if (const auto bytes = ReadFileBytes(stats_path); bytes.ok()) {
      const std::string text(bytes->begin(), bytes->end());
      if (const auto cycles = ExtractJsonUint(text, "cycles"); cycles.ok()) {
        record.guest_cycles = *cycles;
      }
      record.stats_json = "jobs/" + record.name + "/stats.json";
    }
    job_cycles_.Record(record.guest_cycles);
  }
  if (options_.verbose) {
    std::fprintf(stderr,
                 "[fleet] %s: %s (exit=%d signal=%d attempts=%llu failures=%llu "
                 "evictions=%llu cycles=%llu)\n",
                 record.name.c_str(), JobOutcomeName(outcome), record.exit_code, record.signal,
                 (unsigned long long)record.attempts, (unsigned long long)record.failures,
                 (unsigned long long)record.evictions, (unsigned long long)record.guest_cycles);
  }
}

void FleetSupervisor::HarvestRepro(size_t index, const RunningJob& running,
                                   const AttemptOutcome& last) {
  const JobSpec& spec = jobs_[index];
  JobRecord& record = records_[index];
  const std::string job_dir = JobDir(spec);
  const std::string repro_dir = job_dir + "/repro";
  if (!MakeDir(repro_dir).ok()) {
    return;
  }
  // repro.sh: the exact failing command line, runnable standalone.
  std::string repro = "#!/bin/sh\n";
  repro += StrFormat("# msimd repro for job '%s': attempt %llu ended %s (exit=%d signal=%d)\n",
                     spec.name.c_str(), (unsigned long long)running.attempt,
                     ExitCodeName(last.exit_code), last.exit_code, last.signal);
  if (!running.restore_path.empty()) {
    repro += StrFormat("# attempt resumed from %s (copied here as resume.msnap)\n",
                       running.restore_path.c_str());
  }
  repro += "exec";
  for (const std::string& arg : running.plan.argv) {
    repro += " " + ShellQuote(arg);
  }
  repro += "\n";
  {
    std::vector<uint8_t> bytes(repro.begin(), repro.end());
    WriteFileBytes(repro_dir + "/repro.sh", bytes);
    ::chmod((repro_dir + "/repro.sh").c_str(), 0755);
  }
  // stderr tail of the failing attempt.
  const std::string tail = ReadFileTail(running.plan.stderr_path, 4096);
  WriteFileBytes(repro_dir + "/stderr.tail", std::vector<uint8_t>(tail.begin(), tail.end()));
  // Crash dump, when the worker lived long enough to write one.
  if (const auto dump = ReadFileBytes(job_dir + "/crash.json"); dump.ok()) {
    WriteFileBytes(repro_dir + "/crash.json", *dump);
  }
  // Newest valid checkpoint, so the repro can resume from where it died.
  if (spec.checkpoint_every != 0) {
    if (const auto found = FindLatestValidSnapshot(job_dir + "/ckpts"); found.ok()) {
      if (const auto snap = ReadFileBytes(found->path); snap.ok()) {
        WriteFileBytes(repro_dir + "/resume.msnap", *snap);
      }
    }
  }
  record.repro_dir = "jobs/" + record.name + "/repro";
}

void FleetSupervisor::HandleExit(RunningJob& running, int raw_status, uint64_t now_ms) {
  const size_t index = running.index;
  const JobSpec& spec = jobs_[index];
  JobRecord& record = records_[index];
  AttemptOutcome outcome = ClassifyWaitStatus(raw_status);

  if (outcome.cls == AttemptClass::kSuccess) {
    fail_streak_ = 0;
    FinishJob(index,
              record.evictions > 0   ? JobOutcome::kEvictedOk
              : record.failures > 0 ? JobOutcome::kRetriedOk
                                    : JobOutcome::kOk,
              outcome);
    return;
  }

  // A worker that died on the eviction SIGTERM itself (signal landed before
  // the graceful handler was installed, or the run loop never got to poll it)
  // is still an eviction: the supervisor chose to stop it, and the newest
  // checkpoint makes the stop lossless. A worker that had to be SIGKILLed
  // after the grace period stays a crash — it was wedged, not stopping.
  const bool died_on_evict_term = running.kill_reason == RunningJob::KillReason::kEvict &&
                                  outcome.cls == AttemptClass::kCrash &&
                                  outcome.signal == SIGTERM;
  if ((outcome.cls == AttemptClass::kEvicted || died_on_evict_term) &&
      (running.kill_reason == RunningJob::KillReason::kNone ||
       running.kill_reason == RunningJob::KillReason::kEvict)) {
    // A genuine graceful eviction (memory pressure, chaos, or an external
    // SIGTERM): requeue behind the currently waiting jobs, resume later.
    // Evictions do not consume the retry budget.
    record.evictions += 1;
    evictions_total_ += 1;
    eligible_at_ms_[index] = now_ms;
    queue_.push_back(index);
    if (options_.verbose) {
      std::fprintf(stderr, "[fleet] %s: evicted at attempt %llu, requeued\n", spec.name.c_str(),
                   (unsigned long long)running.attempt);
    }
    return;
  }

  // A graceful exit after a deadline/hang SIGTERM is still a budget failure;
  // so is a self-reported guest cycle-budget timeout.
  const bool budget_class = running.kill_reason == RunningJob::KillReason::kDeadline ||
                            running.kill_reason == RunningJob::KillReason::kHang ||
                            outcome.cls == AttemptClass::kGuestTimeout;

  if (outcome.cls == AttemptClass::kUsageError && !running.restore_path.empty()) {
    // The worker rejected the checkpoint we handed it (truncated or
    // config-mismatched). Quarantine it so the next attempt resumes from an
    // older checkpoint — or cold-starts — instead of failing forever.
    std::rename(running.restore_path.c_str(), (running.restore_path + ".bad").c_str());
    outcome.cls = AttemptClass::kCrash;
  }

  record.failures += 1;
  fail_streak_ += 1;
  if (options_.fail_streak_throttle != 0 && fail_streak_ % options_.fail_streak_throttle == 0 &&
      EffectiveWorkers() < (options_.workers != 0 ? options_.workers : 1)) {
    admission_throttled_ += 1;
    if (options_.verbose) {
      std::fprintf(stderr, "[fleet] failure streak %llu: admission throttled to %llu worker(s)\n",
                   (unsigned long long)fail_streak_, (unsigned long long)EffectiveWorkers());
    }
  }

  const uint64_t retry_budget =
      spec.retries >= 0 ? static_cast<uint64_t>(spec.retries) : options_.retries;
  // SDC findings are deterministic (same program, seed and fault space every
  // attempt), so a retry would only reproduce the corruption — fail fast and
  // harvest the repro instead.
  const bool retry_futile = outcome.cls == AttemptClass::kUsageError ||
                            outcome.cls == AttemptClass::kGuestTimeout ||
                            outcome.cls == AttemptClass::kSdc;
  if (retry_futile || record.failures > retry_budget) {
    HarvestRepro(index, running, outcome);
    FinishJob(index, budget_class ? JobOutcome::kTimedOut : JobOutcome::kCrashed, outcome);
    return;
  }
  retries_total_ += 1;
  const uint64_t delay = BackoffDelayMs(options_.backoff, record.failures);
  if (options_.verbose) {
    std::fprintf(stderr, "[fleet] %s: attempt %llu failed (%s, exit=%d signal=%d), retry %llu/%llu "
                         "in %llu ms\n",
                 spec.name.c_str(), (unsigned long long)running.attempt,
                 budget_class ? "budget" : "crash", outcome.exit_code, outcome.signal,
                 (unsigned long long)record.failures, (unsigned long long)retry_budget,
                 (unsigned long long)delay);
  }
  RequeueFront(index, now_ms + delay);
}

void FleetSupervisor::CheckMemoryPressure(uint64_t now_ms) {
  if (options_.mem_limit_mb == 0 || running_.size() <= 1) {
    return;
  }
  // One eviction per grace period at most: give the fleet time to actually
  // shrink before concluding the pressure persists, instead of TERMing every
  // worker on consecutive polls.
  if (last_mem_evict_ms_ != 0 && now_ms - last_mem_evict_ms_ < options_.grace_ms) {
    return;
  }
  uint64_t total_kb = 0;
  for (const auto& running : running_) {
    total_kb += running->process.RssKb();
  }
  if (total_kb <= options_.mem_limit_mb * 1024) {
    return;
  }
  // Checkpoint-evict the oldest running job that is not already being killed:
  // it has the most sunk work, which the checkpoint preserves, and freeing
  // the oldest avoids starving recent admissions into thrash.
  RunningJob* oldest = nullptr;
  for (const auto& running : running_) {
    if (running->kill_reason == RunningJob::KillReason::kNone &&
        (oldest == nullptr || running->started_ms < oldest->started_ms)) {
      oldest = running.get();
    }
  }
  if (oldest == nullptr) {
    return;
  }
  oldest->kill_reason = RunningJob::KillReason::kEvict;
  oldest->term_sent_ms = now_ms;
  last_mem_evict_ms_ = now_ms;
  mem_evictions_ += 1;
  if (options_.verbose) {
    std::fprintf(stderr, "[fleet] memory pressure (%llu MiB > %llu MiB): evicting %s\n",
                 (unsigned long long)(total_kb / 1024), (unsigned long long)options_.mem_limit_mb,
                 jobs_[oldest->index].name.c_str());
  }
  oldest->process.Signal(SIGTERM);
}

Status FleetSupervisor::Run() {
  if (options_.msim_path.empty()) {
    return InvalidArgument("fleet: msim path not set");
  }
  if (::access(options_.msim_path.c_str(), X_OK) != 0) {
    return InvalidArgument(StrFormat("fleet: '%s' is not an executable msim binary",
                                     options_.msim_path.c_str()));
  }
  chaos_.clear();
  for (const std::string& text : options_.chaos) {
    MSIM_ASSIGN_OR_RETURN(ChaosSpec spec, ParseChaosSpec(text));
    bool known = false;
    for (const JobSpec& job : jobs_) {
      known |= job.name == spec.job;
    }
    if (!known) {
      return InvalidArgument(StrFormat("chaos spec targets unknown job '%s'", spec.job.c_str()));
    }
    chaos_.push_back(std::move(spec));
  }
  MSIM_RETURN_IF_ERROR(MakeDir(options_.out_dir));
  MSIM_RETURN_IF_ERROR(MakeDir(options_.out_dir + "/jobs"));

  queue_.clear();
  eligible_at_ms_.assign(jobs_.size(), 0);
  for (size_t i = 0; i < jobs_.size(); ++i) {
    queue_.push_back(i);
  }

  while (!queue_.empty() || !running_.empty()) {
    uint64_t now = NowMs();

    // Admission: launch eligible jobs in queue order up to the (possibly
    // failure-throttled) worker cap.
    while (running_.size() < EffectiveWorkers()) {
      size_t pick = queue_.size();
      for (size_t p = 0; p < queue_.size(); ++p) {
        if (eligible_at_ms_[queue_[p]] <= now) {
          pick = p;
          break;
        }
      }
      if (pick == queue_.size()) {
        break;
      }
      const size_t index = queue_[pick];
      queue_.erase(queue_.begin() + static_cast<long>(pick));
      MSIM_RETURN_IF_ERROR(LaunchAttempt(index));
    }

    // Poll the fleet.
    for (size_t r = 0; r < running_.size();) {
      RunningJob& running = *running_[r];
      int raw_status = 0;
      MSIM_ASSIGN_OR_RETURN(const bool exited, running.process.Poll(&raw_status));
      now = NowMs();
      if (exited) {
        HandleExit(running, raw_status, now);
        running_.erase(running_.begin() + static_cast<long>(r));
        continue;
      }
      // Chaos injection: fire once per spec, as soon as the target can
      // resume (first checkpoint written, or immediately when the job does
      // not checkpoint).
      for (ChaosSpec& chaos : chaos_) {
        if (chaos.fired || chaos.job != jobs_[running.index].name) {
          continue;
        }
        const bool resumable =
            jobs_[running.index].checkpoint_every == 0 ||
            FindLatestValidSnapshot(JobDir(jobs_[running.index]) + "/ckpts").ok();
        if (!resumable) {
          continue;
        }
        chaos.fired = true;
        chaos_fired_ += 1;
        switch (chaos.action) {
          case ChaosSpec::Action::kKill:
            if (options_.verbose) {
              std::fprintf(stderr, "[fleet] chaos: SIGKILL %s\n", chaos.job.c_str());
            }
            running.process.Signal(SIGKILL);
            break;
          case ChaosSpec::Action::kTerm:
            if (options_.verbose) {
              std::fprintf(stderr, "[fleet] chaos: SIGTERM (evict) %s\n", chaos.job.c_str());
            }
            running.kill_reason = RunningJob::KillReason::kEvict;
            running.term_sent_ms = now;
            running.process.Signal(SIGTERM);
            break;
          case ChaosSpec::Action::kStop:
            if (options_.verbose) {
              std::fprintf(stderr, "[fleet] chaos: SIGSTOP (wedge) %s\n", chaos.job.c_str());
            }
            running.process.Signal(SIGSTOP);
            break;
        }
      }
      // Hang detector: guest-cycle progress shows up as heartbeat growth.
      if (options_.hang_timeout_ms != 0 &&
          running.kill_reason == RunningJob::KillReason::kNone) {
        const uint64_t size = FileSize(JobDir(jobs_[running.index]) + "/heartbeat.jsonl");
        if (size != running.heartbeat_size) {
          running.heartbeat_size = size;
          running.last_progress_ms = now;
        } else if (now - running.last_progress_ms > options_.hang_timeout_ms) {
          running.kill_reason = RunningJob::KillReason::kHang;
          running.term_sent_ms = now;
          records_[running.index].hang_kills += 1;
          hang_kills_ += 1;
          if (options_.verbose) {
            std::fprintf(stderr, "[fleet] %s: no heartbeat progress for %llu ms, killing\n",
                         jobs_[running.index].name.c_str(),
                         (unsigned long long)options_.hang_timeout_ms);
          }
          running.process.Signal(SIGTERM);
        }
      }
      // Wall-clock deadline.
      if (running.deadline_at_ms != 0 && now >= running.deadline_at_ms &&
          running.kill_reason == RunningJob::KillReason::kNone) {
        running.kill_reason = RunningJob::KillReason::kDeadline;
        running.term_sent_ms = now;
        records_[running.index].deadline_kills += 1;
        deadline_kills_ += 1;
        if (options_.verbose) {
          std::fprintf(stderr, "[fleet] %s: wall deadline exceeded, killing\n",
                       jobs_[running.index].name.c_str());
        }
        running.process.Signal(SIGTERM);
      }
      // SIGTERM -> SIGKILL escalation (also catches SIGSTOPped wedges, which
      // never process the SIGTERM).
      if (running.kill_reason != RunningJob::KillReason::kNone &&
          now - running.term_sent_ms >= options_.grace_ms) {
        running.process.Signal(SIGKILL);
      }
      ++r;
    }

    CheckMemoryPressure(NowMs());

    if (!running_.empty()) {
      SleepMs(options_.poll_ms);
    } else if (!queue_.empty()) {
      // Everyone is backing off; sleep until the earliest retry gate.
      uint64_t earliest = UINT64_MAX;
      for (size_t index : queue_) {
        earliest = eligible_at_ms_[index] < earliest ? eligible_at_ms_[index] : earliest;
      }
      now = NowMs();
      const uint64_t wait = earliest > now ? earliest - now : 1;
      SleepMs(wait < 200 ? wait : 200);
    }
  }
  return Status::Ok();
}

int FleetSupervisor::SuggestedExitCode() const {
  for (const JobRecord& record : records_) {
    if (record.outcome != JobOutcome::kOk && record.outcome != JobOutcome::kRetriedOk &&
        record.outcome != JobOutcome::kEvictedOk) {
      return kExitJobsFailed;
    }
  }
  return kExitOk;
}

}  // namespace msim
