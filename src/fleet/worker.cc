#include "fleet/worker.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/exit_codes.h"
#include "support/strings.h"

namespace msim {

AttemptPlan PlanAttempt(const JobSpec& spec, const std::string& msim_path,
                        const std::string& job_dir, uint64_t attempt,
                        const std::string& restore_path, uint64_t restore_cycle,
                        uint64_t heartbeat_every_cycles) {
  AttemptPlan plan;
  plan.stdout_path = StrFormat("%s/attempt-%llu.stdout", job_dir.c_str(),
                               (unsigned long long)attempt);
  plan.stderr_path = StrFormat("%s/attempt-%llu.stderr", job_dir.c_str(),
                               (unsigned long long)attempt);
  std::vector<std::string>& argv = plan.argv;
  argv.push_back(msim_path);
  argv.push_back("run");
  argv.push_back(spec.program);
  for (const std::string& mcode : spec.mcode) {
    argv.push_back("--mcode");
    argv.push_back(mcode);
  }
  if (!spec.storage.empty()) {
    argv.push_back("--storage");
    argv.push_back(spec.storage);
  }
  for (const std::string& inject : spec.inject) {
    argv.push_back("--inject");
    argv.push_back(inject);
  }
  if (spec.has_fault_seed) {
    argv.push_back("--fault-seed");
    argv.push_back(StrFormat("%llu", (unsigned long long)spec.fault_seed));
  }
  if (spec.watchdog != 0) {
    argv.push_back("--watchdog");
    argv.push_back(StrFormat("%llu", (unsigned long long)spec.watchdog));
  }
  if (spec.max_cycles != 0) {
    // The budget is absolute guest cycles for the whole job: a resume from
    // cycle C gets the remaining C-relative slice, so an uninterrupted run
    // and a crash-resumed one time out at the same absolute cycle.
    const uint64_t remaining =
        restore_cycle < spec.max_cycles ? spec.max_cycles - restore_cycle : 1;
    argv.push_back("--max-cycles");
    argv.push_back(StrFormat("%llu", (unsigned long long)remaining));
  }
  if (spec.checkpoint_every != 0) {
    argv.push_back("--checkpoint-every");
    argv.push_back(StrFormat("%llu", (unsigned long long)spec.checkpoint_every));
    argv.push_back("--checkpoint-dir");
    argv.push_back(job_dir + "/ckpts");
  }
  if (!restore_path.empty()) {
    argv.push_back("--restore");
    argv.push_back(restore_path);
  }
  argv.push_back("--stats-json");
  argv.push_back(job_dir + "/stats.json");
  argv.push_back("--crash-dump");
  argv.push_back(job_dir + "/crash.json");
  if (heartbeat_every_cycles != 0) {
    argv.push_back("--metrics-every");
    argv.push_back(StrFormat("%llu", (unsigned long long)heartbeat_every_cycles));
    argv.push_back("--metrics-jsonl");
    argv.push_back(job_dir + "/heartbeat.jsonl");
  }
  for (const std::string& extra : spec.extra_args) {
    argv.push_back(extra);
  }
  return plan;
}

Status WorkerProcess::Start(const AttemptPlan& plan) {
  if (running()) {
    return FailedPrecondition("worker already running");
  }
  std::vector<char*> argv;
  argv.reserve(plan.argv.size() + 1);
  for (const std::string& arg : plan.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Internal(StrFormat("fork failed: %s", std::strerror(errno)));
  }
  if (pid == 0) {
    // Child. Wire the standard streams, then exec; on any failure exit with
    // a code the parent classifies as a crash.
    const int devnull = ::open("/dev/null", O_RDONLY);
    const int out = ::open(plan.stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    const int err = ::open(plan.stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (devnull < 0 || out < 0 || err < 0 || ::dup2(devnull, 0) < 0 || ::dup2(out, 1) < 0 ||
        ::dup2(err, 2) < 0) {
      ::_exit(127);
    }
    ::close(devnull);
    ::close(out);
    ::close(err);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "exec %s failed: %s\n", argv[0], std::strerror(errno));
    ::_exit(127);
  }
  pid_ = pid;
  return Status::Ok();
}

Result<bool> WorkerProcess::Poll(int* raw_status) {
  if (!running()) {
    return FailedPrecondition("worker not running");
  }
  const pid_t got = ::waitpid(pid_, raw_status, WNOHANG);
  if (got == 0) {
    return false;
  }
  if (got < 0) {
    return Internal(StrFormat("waitpid(%d) failed: %s", (int)pid_, std::strerror(errno)));
  }
  pid_ = -1;
  return true;
}

void WorkerProcess::Signal(int sig) {
  if (running()) {
    ::kill(pid_, sig);
  }
}

uint64_t WorkerProcess::RssKb() const {
  if (!running()) {
    return 0;
  }
  std::ifstream in(StrFormat("/proc/%d/status", (int)pid_));
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {  // "VmRSS:    1234 kB"
      uint64_t kb = 0;
      for (char c : line) {
        if (c >= '0' && c <= '9') {
          kb = kb * 10 + static_cast<uint64_t>(c - '0');
        }
      }
      return kb;
    }
  }
  return 0;
}

AttemptOutcome ClassifyWaitStatus(int raw_status) {
  AttemptOutcome outcome;
  if (WIFSIGNALED(raw_status)) {
    outcome.cls = AttemptClass::kCrash;
    outcome.signal = WTERMSIG(raw_status);
    outcome.exit_code = 128 + outcome.signal;
    return outcome;
  }
  outcome.exit_code = WIFEXITED(raw_status) ? WEXITSTATUS(raw_status) : 127;
  switch (outcome.exit_code) {
    case kExitOk:
      outcome.cls = AttemptClass::kSuccess;
      break;
    case kExitEvicted:
      outcome.cls = AttemptClass::kEvicted;
      break;
    case kExitTimeout:
      outcome.cls = AttemptClass::kGuestTimeout;
      break;
    case kExitUsage:
      outcome.cls = AttemptClass::kUsageError;
      break;
    case kExitSdc:
      outcome.cls = AttemptClass::kSdc;
      break;
    default:
      // Runtime errors, fatal simulation faults and nonzero guest halts all
      // land here: the attempt failed and may be retried.
      outcome.cls = AttemptClass::kCrash;
      break;
  }
  return outcome;
}

std::string ReadFileTail(const std::string& path, size_t max_bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return {};
  }
  const std::streamoff size = in.tellg();
  const std::streamoff start =
      size > static_cast<std::streamoff>(max_bytes) ? size - static_cast<std::streamoff>(max_bytes)
                                                    : 0;
  in.seekg(start);
  std::string tail(static_cast<size_t>(size - start), '\0');
  in.read(tail.data(), static_cast<std::streamsize>(tail.size()));
  tail.resize(static_cast<size_t>(in.gcount()));
  return tail;
}

}  // namespace msim
