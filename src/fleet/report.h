// The fleet report: a deterministic JSON summary of a whole fleet run.
//
// The report is a function of the manifest, the chaos specs and the guest
// programs only — it contains job outcomes, attempt/retry/eviction counts and
// guest-cycle histograms, but never wall-clock values or host timing, so two
// identical campaigns produce byte-identical reports (CI asserts this).
#ifndef MSIM_FLEET_REPORT_H_
#define MSIM_FLEET_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "support/result.h"

namespace msim {

class FleetSupervisor;

// Writes {"fleet": 1, "jobs": [...], "summary": {...}, "metrics": {...},
// "histograms": {...}} for a finished supervisor.
void WriteFleetJson(const FleetSupervisor& fleet, std::ostream& out);

// First `"key": <uint>` member in a JSON text, by string scan. Good enough to
// pull top-level counters like "cycles" out of a worker's stats.json without
// a parser; the result object's members come first in every msim document.
Result<uint64_t> ExtractJsonUint(std::string_view text, std::string_view key);

}  // namespace msim

#endif  // MSIM_FLEET_REPORT_H_
