#include "fleet/backoff.h"

namespace msim {

uint64_t BackoffDelayMs(const BackoffPolicy& policy, uint64_t failures) {
  if (failures == 0 || policy.base_ms == 0) {
    return 0;
  }
  // 2^63 already dwarfs any cap; avoid the UB shift long before it.
  if (failures - 1 >= 63) {
    return policy.max_ms;
  }
  const uint64_t factor = 1ull << (failures - 1);
  if (factor > policy.max_ms / policy.base_ms) {
    return policy.max_ms;
  }
  const uint64_t delay = policy.base_ms * factor;
  return delay < policy.max_ms ? delay : policy.max_ms;
}

}  // namespace msim
