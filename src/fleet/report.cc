#include "fleet/report.h"

#include "fleet/scheduler.h"
#include "support/exit_codes.h"
#include "support/strings.h"
#include "trace/json.h"

namespace msim {

void WriteFleetJson(const FleetSupervisor& fleet, std::ostream& out) {
  JsonWriter json(out);
  json.BeginObject();
  json.Field("fleet", (uint64_t)1);

  json.BeginArray("jobs");
  for (const JobRecord& record : fleet.records()) {
    json.BeginObject();
    json.Field("name", record.name);
    json.Field("outcome", JobOutcomeName(record.outcome));
    json.Field("exit_code", record.exit_code);
    // Symbolic name from the shared exit-code table, so readers do not have
    // to memorise the numbers. Signal deaths have no meaningful exit code.
    json.Field("exit_name", record.signal != 0 ? "signal" : ExitCodeName(record.exit_code));
    json.Field("signal", record.signal);
    json.Field("attempts", record.attempts);
    json.Field("failures", record.failures);
    json.Field("evictions", record.evictions);
    json.Field("deadline_kills", record.deadline_kills);
    json.Field("hang_kills", record.hang_kills);
    json.Field("guest_cycles", record.guest_cycles);
    if (!record.stats_json.empty()) {
      json.Field("stats_json", record.stats_json);
    }
    if (!record.repro_dir.empty()) {
      json.Field("repro_dir", record.repro_dir);
    }
    json.EndObject();
  }
  json.EndArray();

  uint64_t ok = 0, retried = 0, evicted = 0, crashed = 0, timed_out = 0;
  for (const JobRecord& record : fleet.records()) {
    switch (record.outcome) {
      case JobOutcome::kOk: ok += 1; break;
      case JobOutcome::kRetriedOk: retried += 1; break;
      case JobOutcome::kEvictedOk: evicted += 1; break;
      case JobOutcome::kCrashed: crashed += 1; break;
      case JobOutcome::kTimedOut: timed_out += 1; break;
      case JobOutcome::kPending: break;
    }
  }
  json.BeginObject("summary");
  json.Field("total", (uint64_t)fleet.records().size());
  json.Field("ok", ok);
  json.Field("retried", retried);
  json.Field("evicted", evicted);
  json.Field("crashed", crashed);
  json.Field("timed_out", timed_out);
  json.EndObject();

  json.BeginObject("metrics");
  fleet.metrics().AppendJson(json);
  json.EndObject();
  json.BeginObject("histograms");
  fleet.metrics().AppendHistogramsJson(json);
  json.EndObject();

  json.EndObject();
  out << "\n";
}

Result<uint64_t> ExtractJsonUint(std::string_view text, std::string_view key) {
  const std::string needle = StrFormat("\"%.*s\":", (int)key.size(), key.data());
  const size_t at = text.find(needle);
  if (at == std::string_view::npos) {
    return NotFound(StrFormat("no \"%.*s\" member", (int)key.size(), key.data()));
  }
  size_t p = at + needle.size();
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) {
    ++p;
  }
  const size_t begin = p;
  uint64_t value = 0;
  while (p < text.size() && text[p] >= '0' && text[p] <= '9') {
    value = value * 10 + static_cast<uint64_t>(text[p] - '0');
    ++p;
  }
  if (p == begin) {
    return ParseError(StrFormat("\"%.*s\" is not an unsigned integer", (int)key.size(),
                                key.data()));
  }
  return value;
}

}  // namespace msim
