#include "metal/mroutine.h"

#include "asm/assembler.h"
#include "isa/decode.h"
#include "mem/mram.h"
#include "support/strings.h"

namespace msim {

Result<McodeModule> AssembleMcode(std::string_view source, const CoreConfig& config) {
  AssembleOptions options;
  options.text_base = config.mroutine_storage == MroutineStorage::kMram
                          ? kMramCodeBase
                          : config.dram_handler_code_base;
  options.data_base = 0;  // mld/mst offsets
  MSIM_ASSIGN_OR_RETURN(Program program, Assemble(source, options));
  McodeModule module;
  module.program = std::move(program);
  module.storage = config.mroutine_storage;
  return module;
}

Status VerifyMcode(const McodeModule& module) {
  const Program& program = module.program;
  if (program.text.bytes.size() > kMramCodeSize) {
    return ResourceExhausted(
        StrFormat("mcode text is %zu bytes; MRAM code segment holds %u",
                  program.text.bytes.size(), kMramCodeSize));
  }
  if (program.data.bytes.size() > kMramDataSize) {
    return ResourceExhausted(
        StrFormat("mcode data is %zu bytes; MRAM data segment holds %u",
                  program.data.bytes.size(), kMramDataSize));
  }
  if (program.metal_entries.empty()) {
    return FailedPrecondition("mcode module declares no .mentry entries");
  }
  const uint32_t text_end = program.text.end();
  for (const auto& [entry, addr] : program.metal_entries) {
    if (entry >= kMaxMroutines) {
      return InvalidArgument(StrFormat("entry number %u exceeds the %u-entry table", entry,
                                       kMaxMroutines));
    }
    if (addr < program.text.base || addr >= text_end || (addr & 3) != 0) {
      return InvalidArgument(
          StrFormat("entry %u points at 0x%08x, outside the mcode text", entry, addr));
    }
  }
  // Instruction-level checks.
  for (size_t offset = 0; offset + 4 <= program.text.bytes.size(); offset += 4) {
    uint32_t word = 0;
    for (int b = 0; b < 4; ++b) {
      word |= static_cast<uint32_t>(program.text.bytes[offset + b]) << (8 * b);
    }
    const Decoded d = DecodeInstr(word);
    if (d.kind == InstrKind::kEcall || d.kind == InstrKind::kEbreak) {
      return FailedPrecondition(
          StrFormat("mcode contains %s at offset 0x%zx; traps inside Metal mode are machine "
                    "checks",
                    d.info().mnemonic, offset));
    }
  }
  // Conservative termination scan: from each entry, straight-line execution
  // must reach mexit, halt or an unconditional control transfer before the
  // end of the module.
  for (const auto& [entry, addr] : program.metal_entries) {
    bool terminated = false;
    for (uint32_t pc = addr; pc + 4 <= text_end; pc += 4) {
      const size_t offset = pc - program.text.base;
      uint32_t word = 0;
      for (int b = 0; b < 4; ++b) {
        word |= static_cast<uint32_t>(program.text.bytes[offset + b]) << (8 * b);
      }
      const Decoded d = DecodeInstr(word);
      if (d.kind == InstrKind::kMexit || d.kind == InstrKind::kHalt ||
          d.kind == InstrKind::kJal || d.kind == InstrKind::kJalr) {
        terminated = true;
        break;
      }
    }
    if (!terminated) {
      return FailedPrecondition(
          StrFormat("mroutine entry %u can fall off the end of MRAM without reaching mexit",
                    entry));
    }
  }
  return Status::Ok();
}

}  // namespace msim
