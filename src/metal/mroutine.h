// mcode modules: assembled mroutine collections.
//
// An mcode module is one assembly source defining any number of mroutines.
// Each mroutine is announced with `.mentry <number>, <label>`; the label is
// the mroutine's first instruction (paper §2: "Metal assigns each mroutine
// with a unique entry number, which serves as entry points into Metal mode").
// The module's `.data` section initializes the MRAM data segment and is
// addressed by mld/mst byte offsets starting at 0.
#ifndef MSIM_METAL_MROUTINE_H_
#define MSIM_METAL_MROUTINE_H_

#include <string_view>

#include "asm/program.h"
#include "cpu/config.h"
#include "support/result.h"

namespace msim {

struct McodeModule {
  Program program;
  MroutineStorage storage = MroutineStorage::kMram;
};

// Assembles mcode for the given storage placement. The text base is
// kMramCodeBase for MRAM storage or the DRAM handler region otherwise; data
// is always assembled at offset 0 (the mld/mst address space).
Result<McodeModule> AssembleMcode(std::string_view source, const CoreConfig& config);

// Static verification (paper §2.1: static allocation and non-interruptibility
// "improve performance, security and reliability ... simplifying mroutine
// verification"):
//   * code and data fit their segments,
//   * at least one entry is declared and all entries point into the code,
//   * no ecall/ebreak (they would machine-check inside Metal mode),
//   * every declared entry can reach an mexit without falling off the end
//     (conservative straight-line scan; jumps/branches end the scan).
Status VerifyMcode(const McodeModule& module);

}  // namespace msim

#endif  // MSIM_METAL_MROUTINE_H_
