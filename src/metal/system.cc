#include "metal/system.h"

#include "asm/assembler.h"
#include "support/strings.h"

namespace msim {

MetalSystem::MetalSystem(const CoreConfig& config) : core_(std::make_unique<Core>(config)) {}

void MetalSystem::AddMcode(std::string_view source) {
  mcode_source_.append(source);
  mcode_source_.push_back('\n');
  booted_ = false;
}

Status MetalSystem::Boot() {
  if (booted_) {
    return Status::Ok();
  }
  if (!mcode_source_.empty()) {
    MSIM_ASSIGN_OR_RETURN(McodeModule module, AssembleMcode(mcode_source_, core_->config()));
    MSIM_RETURN_IF_ERROR(LoadMcode(*core_, module));
  }
  for (const auto& hook : boot_hooks_) {
    MSIM_RETURN_IF_ERROR(hook(*core_));
  }
  booted_ = true;
  return Status::Ok();
}

void MetalSystem::AddBootHook(std::function<Status(Core&)> hook) {
  boot_hooks_.push_back(std::move(hook));
  booted_ = false;
}

Status MetalSystem::LoadProgramSource(std::string_view source, const AssembleOptions& options) {
  MSIM_ASSIGN_OR_RETURN(Program program, Assemble(source, options));
  return LoadProgram(program);
}

Status MetalSystem::LoadProgram(const Program& program) {
  MSIM_RETURN_IF_ERROR(core_->LoadProgram(program));
  last_program_ = program;
  return Status::Ok();
}

Result<uint32_t> MetalSystem::Symbol(std::string_view name) const {
  const auto it = last_program_.symbols.find(std::string(name));
  if (it == last_program_.symbols.end()) {
    return NotFound(StrFormat("symbol '%.*s' not found in the loaded program",
                              static_cast<int>(name.size()), name.data()));
  }
  return it->second;
}

Result<uint32_t> MetalSystem::EntryAddress(uint32_t entry) const {
  const uint32_t addr = core_->metal().EntryAddress(entry);
  if (addr == 0) {
    return NotFound(StrFormat("mroutine entry %u is not configured", entry));
  }
  return addr;
}

void MetalSystem::DelegateException(ExcCause cause, uint32_t entry) {
  core_->metal().Delegate(cause, entry);
}

void MetalSystem::DelegateInterrupts(uint32_t entry) { core_->metal().DelegateIrq(entry); }

RunResult MetalSystem::Run(uint64_t max_cycles) {
  if (!booted_) {
    const Status status = Boot();
    if (!status.ok()) {
      RunResult result;
      result.reason = RunResult::Reason::kFatal;
      result.fatal_message = "boot failed: " + status.ToString();
      return result;
    }
  }
  return core_->Run(max_cycles);
}

}  // namespace msim
