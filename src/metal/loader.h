// Boot-time mroutine loading (paper §2: "At boot time, Metal loads a
// collection of mcode subroutines called mroutines").
#ifndef MSIM_METAL_LOADER_H_
#define MSIM_METAL_LOADER_H_

#include "cpu/core.h"
#include "metal/mroutine.h"
#include "support/result.h"

namespace msim {

// Verifies `module` and installs it:
//   * kMram: code into the MRAM code segment, data into the MRAM data
//     segment, entry table pointing at MRAM addresses;
//   * kDramCached / kDramUncached: code/data into the DRAM handler region,
//     entry table pointing at physical addresses (trap / PALcode
//     comparison configurations).
// The module must match the core's configured mroutine storage.
Status LoadMcode(Core& core, const McodeModule& module);

// Host-side access to the mroutine data segment (MRAM data, or the DRAM
// handler data area in the trap/PALcode configurations). `offset` is the
// mld/mst byte offset.
Status WriteHandlerData32(Core& core, uint32_t offset, uint32_t value);
Result<uint32_t> ReadHandlerData32(Core& core, uint32_t offset);

}  // namespace msim

#endif  // MSIM_METAL_LOADER_H_
