#include "metal/loader.h"

#include "support/strings.h"

namespace msim {

Status LoadMcode(Core& core, const McodeModule& module) {
  if (module.storage != core.config().mroutine_storage) {
    return FailedPrecondition("mcode module was assembled for a different mroutine storage");
  }
  MSIM_RETURN_IF_ERROR(VerifyMcode(module));
  const Program& program = module.program;

  if (module.storage == MroutineStorage::kMram) {
    for (size_t offset = 0; offset + 4 <= program.text.bytes.size(); offset += 4) {
      uint32_t word = 0;
      for (int b = 0; b < 4; ++b) {
        word |= static_cast<uint32_t>(program.text.bytes[offset + b]) << (8 * b);
      }
      if (!core.mram().WriteCodeWord(static_cast<uint32_t>(offset), word)) {
        return Internal(StrFormat("MRAM code write failed at offset 0x%zx", offset));
      }
    }
    for (size_t offset = 0; offset < program.data.bytes.size(); offset += 4) {
      uint32_t word = 0;
      for (size_t b = 0; b < 4 && offset + b < program.data.bytes.size(); ++b) {
        word |= static_cast<uint32_t>(program.data.bytes[offset + b]) << (8 * b);
      }
      if (!core.mram().WriteData32(static_cast<uint32_t>(offset), word)) {
        return Internal(StrFormat("MRAM data write failed at offset 0x%zx", offset));
      }
    }
  } else {
    MSIM_RETURN_IF_ERROR(core.bus().dram().LoadSection(program.text));
    Section data = program.data;
    data.base = core.config().dram_handler_data_base;
    MSIM_RETURN_IF_ERROR(core.bus().dram().LoadSection(data));
  }

  for (const auto& [entry, addr] : program.metal_entries) {
    core.metal().SetEntryAddress(entry, addr);
  }
  return Status::Ok();
}

Status WriteHandlerData32(Core& core, uint32_t offset, uint32_t value) {
  if (core.config().mroutine_storage == MroutineStorage::kMram) {
    if (!core.mram().WriteData32(offset, value)) {
      return OutOfRange(StrFormat("MRAM data offset 0x%x out of range", offset));
    }
    return Status::Ok();
  }
  if (!core.bus().dram().Write32(core.config().dram_handler_data_base + offset, value)) {
    return OutOfRange(StrFormat("handler data offset 0x%x out of range", offset));
  }
  return Status::Ok();
}

Result<uint32_t> ReadHandlerData32(Core& core, uint32_t offset) {
  if (core.config().mroutine_storage == MroutineStorage::kMram) {
    const auto value = core.mram().ReadData32(offset);
    if (!value) {
      return OutOfRange(StrFormat("MRAM data offset 0x%x out of range", offset));
    }
    return *value;
  }
  const auto value = core.bus().dram().Read32(core.config().dram_handler_data_base + offset);
  if (!value) {
    return OutOfRange(StrFormat("handler data offset 0x%x out of range", offset));
  }
  return *value;
}

}  // namespace msim
