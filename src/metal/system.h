// MetalSystem: the library's main facade.
//
// Owns a Core, accumulates mcode from any number of extensions, assembles and
// verifies it as one module at boot, loads application programs, and exposes
// firmware-style configuration (exception/interrupt delegation).
//
// Typical use (see examples/quickstart.cc):
//   MetalSystem sys;
//   sys.AddMcode(kMyMroutines);            // .mentry N, label ...
//   sys.LoadProgramSource(kMyApp);         // normal-mode assembly
//   RunResult r = sys.Run();
#ifndef MSIM_METAL_SYSTEM_H_
#define MSIM_METAL_SYSTEM_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "asm/assembler.h"
#include "cpu/core.h"
#include "metal/loader.h"
#include "metal/mroutine.h"
#include "support/result.h"

namespace msim {

class MetalSystem {
 public:
  explicit MetalSystem(const CoreConfig& config = CoreConfig{});

  Core& core() { return *core_; }
  const Core& core() const { return *core_; }

  // Observability passthroughs (see src/trace/): the core's counter registry
  // and structured-event sink (null detaches).
  MetricRegistry& metrics() { return core_->metrics(); }
  const MetricRegistry& metrics() const { return core_->metrics(); }
  void SetTraceSink(TraceSink* sink) { core_->SetTraceSink(sink); }

  // Appends mcode source. All accumulated sources are assembled as ONE module
  // at Boot() so they share labels and the MRAM data segment; extensions must
  // use distinct entry numbers (each header documents its range).
  void AddMcode(std::string_view source);

  // Assembles, verifies and loads the accumulated mcode. Called implicitly by
  // Run() if still pending. Returns an error if mcode fails verification.
  Status Boot();
  bool booted() const { return booted_; }

  // Registers a hook run at the end of Boot(), after mcode is loaded —
  // extensions use this to write their boot-time MRAM data and delegation.
  void AddBootHook(std::function<Status(Core&)> hook);

  // Assembles and loads a normal-mode application program.
  Status LoadProgramSource(std::string_view source,
                           const AssembleOptions& options = AssembleOptions{});
  Status LoadProgram(const Program& program);

  // Symbol lookup in the most recently loaded application program.
  Result<uint32_t> Symbol(std::string_view name) const;
  // Address of an installed mroutine entry (after Boot()).
  Result<uint32_t> EntryAddress(uint32_t entry) const;

  // Firmware-style delegation configuration (what a boot mroutine would do).
  void DelegateException(ExcCause cause, uint32_t entry);
  void DelegateInterrupts(uint32_t entry);

  // Boots if needed, then runs the core.
  RunResult Run(uint64_t max_cycles = 0);

 private:
  std::unique_ptr<Core> core_;
  std::string mcode_source_;
  std::vector<std::function<Status(Core&)>> boot_hooks_;
  Program last_program_;
  bool booted_ = false;
};

}  // namespace msim

#endif  // MSIM_METAL_SYSTEM_H_
