// Minimal leveled logging for the simulator.
//
// The simulator is a library first; logging defaults to warnings-and-above on
// stderr and can be raised for debugging (e.g. per-cycle pipeline traces in
// the CPU core honour kTrace). The initial threshold honours the
// MSIM_LOG_LEVEL environment variable (a name like "debug" or a number 0-5);
// SetLogLevel overrides it. When a core registers its cycle counter, every
// line carries the current simulated cycle so logs correlate with traces.
#ifndef MSIM_SUPPORT_LOG_H_
#define MSIM_SUPPORT_LOG_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace msim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "trace|debug|info|warn[ing]|error|off" or "0".."5"; returns the
// fallback on anything else.
LogLevel ParseLogLevel(const char* text, LogLevel fallback);

// Registers the simulated-cycle counter to prefix log lines with (the Core
// constructor registers, its destructor unregisters); null disables.
void SetLogCycleSource(const uint64_t* cycle);
const uint64_t* GetLogCycleSource();

// Emits one line to stderr: "[level] [cyc N] message" (cycle when registered).
void LogMessage(LogLevel level, const std::string& message);

namespace log_internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define MSIM_LOG(level)                                   \
  if (::msim::GetLogLevel() > ::msim::LogLevel::k##level) \
    ;                                                     \
  else                                                    \
    ::msim::log_internal::LogLine(::msim::LogLevel::k##level)

}  // namespace msim

#endif  // MSIM_SUPPORT_LOG_H_
