// Canonical process exit codes for the msim tool family (msim, mfuzz, msimd).
//
// The tools share one exit-code table so that a supervisor (src/fleet) can
// classify a child's fate from its wait status alone, without parsing stderr.
// `msim run` maps a *halted* guest's `halt rs1` code straight through as the
// process exit code, so guest codes 0..255 share the space with the table
// below; guests that want to cooperate with the fleet supervisor should avoid
// the reserved values (docs/robustness.md documents the table). Everything
// that is not a clean guest halt uses a reserved code:
//
//   0   success (guest halted with code 0 / all fleet jobs ok)
//   1   runtime error (I/O failure, internal error)
//   2   usage error (bad flags, malformed numeric arguments, bad manifest)
//   10  lockstep divergence found (msim replay, mfuzz)
//   11  simulation died fatally (undelegated trap, double machine check)
//   12  guest cycle budget exhausted before halt (--max-cycles timeout)
//   13  evicted: a graceful SIGTERM/SIGINT stop wrote a final checkpoint and
//       flushed artifacts; the run is resumable, not failed
//   14  silent data corruption found (mcamp campaign, mfuzz injection
//       oracle): an injected fault changed the architectural outcome without
//       being detected — deterministic, so retrying cannot help
//   20  fleet run finished but one or more jobs ended in a failed terminal
//       state (msimd)
#ifndef MSIM_SUPPORT_EXIT_CODES_H_
#define MSIM_SUPPORT_EXIT_CODES_H_

namespace msim {

inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntimeError = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitDivergence = 10;
inline constexpr int kExitFatalFault = 11;
inline constexpr int kExitTimeout = 12;
inline constexpr int kExitEvicted = 13;
inline constexpr int kExitSdc = 14;
inline constexpr int kExitJobsFailed = 20;

// Stable name for an exit code, for logs and the fleet report. Codes in
// 0..255 that are not in the table are guest halt codes.
inline const char* ExitCodeName(int code) {
  switch (code) {
    case kExitOk: return "ok";
    case kExitRuntimeError: return "runtime-error";
    case kExitUsage: return "usage";
    case kExitDivergence: return "divergence";
    case kExitFatalFault: return "fatal-fault";
    case kExitTimeout: return "timeout";
    case kExitEvicted: return "evicted";
    case kExitSdc: return "sdc";
    case kExitJobsFailed: return "jobs-failed";
    default: return "guest-exit";
  }
}

}  // namespace msim

#endif  // MSIM_SUPPORT_EXIT_CODES_H_
