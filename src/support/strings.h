// String helpers used mostly by the assembler.
#ifndef MSIM_SUPPORT_STRINGS_H_
#define MSIM_SUPPORT_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace msim {

// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

// Splits on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view text, char sep);

// Lowercases ASCII characters.
std::string ToLower(std::string_view text);

// Parses a signed 64-bit integer. Accepts decimal, 0x hex, 0b binary and a
// leading '-'. Returns nullopt on malformed input or overflow.
std::optional<int64_t> ParseInt(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace msim

#endif  // MSIM_SUPPORT_STRINGS_H_
