// Bit-manipulation helpers shared by the ISA encoder/decoder and the MMU.
#ifndef MSIM_SUPPORT_BITS_H_
#define MSIM_SUPPORT_BITS_H_

#include <cstdint>

namespace msim {

// Extracts bits [hi:lo] (inclusive) of `value`, right-aligned.
constexpr uint32_t Bits(uint32_t value, unsigned hi, unsigned lo) {
  return (value >> lo) & ((hi - lo == 31u) ? 0xFFFFFFFFu : ((1u << (hi - lo + 1)) - 1u));
}

// Extracts a single bit.
constexpr uint32_t Bit(uint32_t value, unsigned pos) { return (value >> pos) & 1u; }

// Sign-extends the low `bits` bits of `value` to 32 bits.
constexpr int32_t SignExtend(uint32_t value, unsigned bits) {
  const uint32_t shift = 32u - bits;
  return static_cast<int32_t>(value << shift) >> shift;
}

// True if `value` fits in a signed `bits`-bit immediate.
constexpr bool FitsSigned(int64_t value, unsigned bits) {
  const int64_t lo = -(int64_t{1} << (bits - 1));
  const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
  return value >= lo && value <= hi;
}

// True if `value` fits in an unsigned `bits`-bit field.
constexpr bool FitsUnsigned(uint64_t value, unsigned bits) {
  return bits >= 64 || value < (uint64_t{1} << bits);
}

// Number of set bits in `value`.
constexpr unsigned Popcount(uint32_t value) {
  unsigned count = 0;
  for (; value != 0; value &= value - 1) {
    ++count;
  }
  return count;
}

// True if `value` is a power of two (and non-zero).
constexpr bool IsPowerOfTwo(uint64_t value) { return value != 0 && (value & (value - 1)) == 0; }

// Rounds `value` up to the next multiple of `align` (align must be a power of two).
constexpr uint32_t AlignUp(uint32_t value, uint32_t align) {
  return (value + align - 1) & ~(align - 1);
}

// Rounds `value` down to a multiple of `align` (align must be a power of two).
constexpr uint32_t AlignDown(uint32_t value, uint32_t align) { return value & ~(align - 1); }

}  // namespace msim

#endif  // MSIM_SUPPORT_BITS_H_
