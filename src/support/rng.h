// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (workload generators, benchmark
// sweeps, property tests) derives from this seeded generator so that every
// run is reproducible (DESIGN.md §5.6). SplitMix64 is small, fast and passes
// the statistical tests that matter for workload generation.
#ifndef MSIM_SUPPORT_RNG_H_
#define MSIM_SUPPORT_RNG_H_

#include <cstdint>

namespace msim {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ull) {}

  // Next 64 uniformly distributed bits.
  uint64_t Next64() {
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  // Uniform integer in [0, bound). bound must be non-zero.
  uint64_t Below(uint64_t bound) { return Next64() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Bernoulli trial with probability numerator/denominator.
  bool Chance(uint64_t numerator, uint64_t denominator) {
    return Below(denominator) < numerator;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Raw generator state, for checkpoint/restore (src/snap). Restoring the
  // state resumes the stream exactly where the saved run left off.
  uint64_t state() const { return state_; }
  void set_state(uint64_t state) { state_ = state; }

 private:
  uint64_t state_;
};

}  // namespace msim

#endif  // MSIM_SUPPORT_RNG_H_
