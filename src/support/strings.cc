#include "support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace msim {

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<int64_t> ParseInt(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.empty()) {
    return std::nullopt;
  }
  bool negative = false;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    text.remove_prefix(1);
    if (text.empty()) {
      return std::nullopt;
    }
  }
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    text.remove_prefix(2);
  } else if (text.size() > 2 && text[0] == '0' && (text[1] == 'b' || text[1] == 'B')) {
    base = 2;
    text.remove_prefix(2);
  }
  if (text.empty()) {
    return std::nullopt;
  }
  uint64_t magnitude = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else if (c == '_') {
      continue;  // digit separator
    } else {
      return std::nullopt;
    }
    if (digit >= base) {
      return std::nullopt;
    }
    const uint64_t next = magnitude * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
    if (next < magnitude) {
      return std::nullopt;  // overflow
    }
    magnitude = next;
  }
  // Allow the full unsigned 32-bit range as well as negative values; the
  // assembler range-checks against the target field afterwards.
  if (!negative && magnitude > 0xFFFFFFFFull && magnitude > 0x7FFFFFFFFFFFFFFFull) {
    return std::nullopt;
  }
  if (negative && magnitude > 0x8000000000000000ull) {
    return std::nullopt;
  }
  return negative ? -static_cast<int64_t>(magnitude) : static_cast<int64_t>(magnitude);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace msim
