#include "support/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace msim {
namespace {

LogLevel InitialLevel() {
  return ParseLogLevel(std::getenv("MSIM_LOG_LEVEL"), LogLevel::kWarning);
}

LogLevel g_level = InitialLevel();
const uint64_t* g_cycle_source = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel ParseLogLevel(const char* text, LogLevel fallback) {
  if (text == nullptr || *text == '\0') {
    return fallback;
  }
  if (std::strcmp(text, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "warn") == 0 || std::strcmp(text, "warning") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "off") == 0) return LogLevel::kOff;
  if (text[0] >= '0' && text[0] <= '5' && text[1] == '\0') {
    return static_cast<LogLevel>(text[0] - '0');
  }
  return fallback;
}

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void SetLogCycleSource(const uint64_t* cycle) { g_cycle_source = cycle; }

const uint64_t* GetLogCycleSource() { return g_cycle_source; }

void LogMessage(LogLevel level, const std::string& message) {
  if (level < g_level) {
    return;
  }
  if (g_cycle_source != nullptr) {
    std::fprintf(stderr, "[%s] [cyc %llu] %s\n", LevelName(level),
                 (unsigned long long)*g_cycle_source, message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace msim
