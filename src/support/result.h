// Lightweight error handling for the Metal simulator.
//
// The library does not use exceptions (see DESIGN.md §7). Fallible operations
// return Status (no payload) or Result<T> (payload or error). Both carry a
// human-readable message describing the first failure.
#ifndef MSIM_SUPPORT_RESULT_H_
#define MSIM_SUPPORT_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace msim {

namespace internal {
// Always-on misuse check: unlike assert() this fires in release builds too,
// and it prints the carried error so the root cause survives into the abort
// message instead of being reduced to "assertion failed".
[[noreturn]] inline void ResultFatal(const char* what, const std::string& detail) {
  std::fprintf(stderr, "msim: fatal: %s: %s\n", what, detail.c_str());
  std::abort();
}
}  // namespace internal

// Error category for programmatic inspection. Most call sites only care about
// ok/not-ok; categories exist so tests can assert on the *kind* of failure.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kResourceExhausted,
  kInternal,
  kParseError,
};

// Returns a stable lowercase name for an error code ("invalid_argument", ...).
const char* ErrorCodeName(ErrorCode code);

// Status: success, or an error code plus message.
class Status {
 public:
  // Success.
  Status() = default;

  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {
    if (code_ == ErrorCode::kOk) {
      internal::ResultFatal("error Status constructed with kOk code", message_);
    }
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code-name>: <message>"; handy for gtest failure output.
  std::string ToString() const {
    if (ok()) {
      return "ok";
    }
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfRange(std::string msg) { return Status(ErrorCode::kOutOfRange, std::move(msg)); }
inline Status NotFound(std::string msg) { return Status(ErrorCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(ErrorCode::kUnimplemented, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(ErrorCode::kInternal, std::move(msg)); }
inline Status ParseError(std::string msg) { return Status(ErrorCode::kParseError, std::move(msg)); }

// Result<T>: either a value of T or an error Status.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from an error Status keeps call
  // sites readable: `return 42;` / `return InvalidArgument("...")`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    if (std::get<Status>(data_).ok()) {
      internal::ResultFatal("Result error constructed from ok Status",
                            "use the value constructor for success");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  // Error accessor; returns Ok status when the result holds a value so that
  // `result.status().ToString()` is always safe to log.
  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  // Accessing value() on an error Result aborts with the carried error rather
  // than tripping std::get's UB/exception path.
  void CheckOk() const {
    if (!ok()) {
      internal::ResultFatal("Result::value() called on error Result",
                            std::get<Status>(data_).ToString());
    }
  }

  std::variant<T, Status> data_;
};

// Propagates an error Status from an expression that yields Status.
#define MSIM_RETURN_IF_ERROR(expr)      \
  do {                                  \
    ::msim::Status status_ = (expr);    \
    if (!status_.ok()) return status_;  \
  } while (0)

// Evaluates a Result<T> expression, propagating errors and binding the value.
#define MSIM_ASSIGN_OR_RETURN(lhs, expr)          \
  MSIM_ASSIGN_OR_RETURN_IMPL_(                    \
      MSIM_RESULT_CONCAT_(result_, __LINE__), lhs, expr)
#define MSIM_RESULT_CONCAT_INNER_(a, b) a##b
#define MSIM_RESULT_CONCAT_(a, b) MSIM_RESULT_CONCAT_INNER_(a, b)
#define MSIM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

inline const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kOutOfRange:
      return "out_of_range";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kUnimplemented:
      return "unimplemented";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kParseError:
      return "parse_error";
  }
  return "unknown";
}

}  // namespace msim

#endif  // MSIM_SUPPORT_RESULT_H_
