#include "asm/assembler.h"

#include <cctype>

#include "asm/lexer.h"
#include "isa/encoding.h"
#include "support/bits.h"
#include "support/strings.h"

namespace msim {
namespace {

enum class SectionKind { kText, kData };

struct ParsedLine {
  int line_number = 0;
  std::string label;        // empty if none
  std::string mnemonic;     // lowercased; empty for label-only/blank lines
  std::vector<std::string> operands;
  SectionKind section = SectionKind::kText;
  uint32_t address = 0;     // assigned in pass 1
  int emit_words = 0;       // instruction words this line expands to (pass 1)
};

struct PseudoInfo {
  const char* name;
  int min_operands;
  int max_operands;
};

constexpr PseudoInfo kPseudos[] = {
    {"nop", 0, 0},  {"mv", 2, 2},   {"not", 2, 2},  {"neg", 2, 2},  {"seqz", 2, 2},
    {"snez", 2, 2}, {"sltz", 2, 2}, {"sgtz", 2, 2}, {"li", 2, 2},   {"la", 2, 2},
    {"j", 1, 1},    {"jr", 1, 1},   {"call", 1, 1}, {"ret", 0, 0},  {"beqz", 2, 2},
    {"bnez", 2, 2}, {"blez", 2, 2}, {"bgez", 2, 2}, {"bltz", 2, 2}, {"bgtz", 2, 2},
    {"bgt", 3, 3},  {"ble", 3, 3},  {"bgtu", 3, 3}, {"bleu", 3, 3},
};

const PseudoInfo* FindPseudo(std::string_view name) {
  for (const PseudoInfo& p : kPseudos) {
    if (name == p.name) {
      return &p;
    }
  }
  return nullptr;
}

class Assembler {
 public:
  explicit Assembler(const AssembleOptions& options) : options_(options) {
    text_cursor_ = options.text_base;
    data_cursor_ = options.data_base;
  }

  Result<Program> Run(std::string_view source) {
    MSIM_RETURN_IF_ERROR(ParseLines(source));
    MSIM_RETURN_IF_ERROR(PassOne());
    MSIM_RETURN_IF_ERROR(PassTwo());
    if (const auto it = symbols_.find("_start"); it != symbols_.end()) {
      program_.entry = it->second;
    } else {
      program_.entry = options_.text_base;
    }
    program_.symbols = symbols_;
    return std::move(program_);
  }

 private:
  Status LineError(const ParsedLine& line, const std::string& message) const {
    return ParseError(StrFormat("line %d: %s", line.line_number, message.c_str()));
  }

  // ---- Parsing ----------------------------------------------------------

  Status ParseLines(std::string_view source) {
    int line_number = 0;
    for (std::string_view raw : Split(source, '\n')) {
      ++line_number;
      std::string_view body = TrimWhitespace(StripComment(raw));
      // Peel off any leading labels ("foo: bar: insn" is legal).
      while (true) {
        const size_t colon = body.find(':');
        if (colon == std::string_view::npos) {
          break;
        }
        const std::string_view candidate = TrimWhitespace(body.substr(0, colon));
        if (candidate.empty() || candidate.find(' ') != std::string_view::npos ||
            candidate.find('\t') != std::string_view::npos) {
          break;
        }
        ParsedLine label_line;
        label_line.line_number = line_number;
        label_line.label = std::string(candidate);
        lines_.push_back(std::move(label_line));
        body = TrimWhitespace(body.substr(colon + 1));
      }
      if (body.empty()) {
        continue;
      }
      ParsedLine line;
      line.line_number = line_number;
      size_t space = 0;
      while (space < body.size() && !std::isspace(static_cast<unsigned char>(body[space]))) {
        ++space;
      }
      line.mnemonic = ToLower(body.substr(0, space));
      for (std::string_view op : SplitOperands(body.substr(space))) {
        if (!op.empty()) {
          line.operands.emplace_back(op);
        }
      }
      lines_.push_back(std::move(line));
    }
    return Status::Ok();
  }

  // ---- Pass 1: layout ----------------------------------------------------

  uint32_t& Cursor() { return section_ == SectionKind::kText ? text_cursor_ : data_cursor_; }

  Status PassOne() {
    section_ = SectionKind::kText;
    for (ParsedLine& line : lines_) {
      line.section = section_;
      line.address = Cursor();
      if (!line.label.empty()) {
        if (symbols_.contains(line.label)) {
          return LineError(line, StrFormat("duplicate label '%s'", line.label.c_str()));
        }
        symbols_[line.label] = Cursor();
        continue;
      }
      if (line.mnemonic.empty()) {
        continue;
      }
      if (line.mnemonic[0] == '.') {
        MSIM_RETURN_IF_ERROR(LayoutDirective(line));
        continue;
      }
      MSIM_ASSIGN_OR_RETURN(line.emit_words, InstructionSize(line));
      if (line.section == SectionKind::kData) {
        return LineError(line, "instructions are not allowed in .data");
      }
      Cursor() += static_cast<uint32_t>(line.emit_words) * 4;
    }
    return Status::Ok();
  }

  Result<int> InstructionSize(const ParsedLine& line) {
    if (line.mnemonic == "li") {
      if (line.operands.size() != 2) {
        return LineError(line, "li takes two operands");
      }
      if (ExprReferencesUnknown(line.operands[1], symbols_)) {
        return LineError(line,
                         "li operand must be a constant known at this point "
                         "(use 'la' for addresses)");
      }
      auto value = EvalExpr(line.operands[1], symbols_);
      if (!value.ok()) {
        return LineError(line, value.status().message());
      }
      return FitsSigned(*value, 12) ? 1 : 2;
    }
    if (line.mnemonic == "la") {
      return 2;
    }
    if (FindPseudo(line.mnemonic) != nullptr) {
      return 1;
    }
    if (FindInstrByMnemonic(line.mnemonic) != nullptr) {
      return 1;
    }
    return LineError(line, StrFormat("unknown mnemonic '%s'", line.mnemonic.c_str()));
  }

  Status LayoutDirective(ParsedLine& line) {
    const std::string& d = line.mnemonic;
    auto& cursor = Cursor();
    if (d == ".text") {
      section_ = SectionKind::kText;
      return Status::Ok();
    }
    if (d == ".data") {
      section_ = SectionKind::kData;
      return Status::Ok();
    }
    if (d == ".globl" || d == ".global") {
      return Status::Ok();
    }
    if (d == ".equ" || d == ".set") {
      if (line.operands.size() != 2) {
        return LineError(line, ".equ takes a name and a value");
      }
      auto value = EvalExpr(line.operands[1], symbols_);
      if (!value.ok()) {
        return LineError(line, value.status().message());
      }
      symbols_[line.operands[0]] = static_cast<uint32_t>(*value);
      return Status::Ok();
    }
    if (d == ".org") {
      if (line.operands.size() != 1) {
        return LineError(line, ".org takes one operand");
      }
      auto value = EvalExpr(line.operands[0], symbols_);
      if (!value.ok()) {
        return LineError(line, value.status().message());
      }
      const uint32_t target = static_cast<uint32_t>(*value);
      if (target < cursor) {
        return LineError(line, ".org cannot move backwards");
      }
      cursor = target;
      line.address = target;
      return Status::Ok();
    }
    if (d == ".align") {
      if (line.operands.size() != 1) {
        return LineError(line, ".align takes one operand");
      }
      auto value = EvalExpr(line.operands[0], symbols_);
      if (!value.ok() || *value < 0 || *value > 16) {
        return LineError(line, "bad .align amount");
      }
      cursor = AlignUp(cursor, 1u << *value);
      return Status::Ok();
    }
    if (d == ".space") {
      if (line.operands.size() != 1) {
        return LineError(line, ".space takes one operand");
      }
      auto value = EvalExpr(line.operands[0], symbols_);
      if (!value.ok() || *value < 0) {
        return LineError(line, "bad .space amount");
      }
      cursor += static_cast<uint32_t>(*value);
      return Status::Ok();
    }
    if (d == ".word") {
      cursor += 4 * static_cast<uint32_t>(line.operands.size());
      return Status::Ok();
    }
    if (d == ".half") {
      cursor += 2 * static_cast<uint32_t>(line.operands.size());
      return Status::Ok();
    }
    if (d == ".byte") {
      cursor += static_cast<uint32_t>(line.operands.size());
      return Status::Ok();
    }
    if (d == ".asciz" || d == ".string") {
      if (line.operands.size() != 1) {
        return LineError(line, ".asciz takes one string operand");
      }
      auto text = ParseStringLiteral(line.operands[0]);
      if (!text.ok()) {
        return LineError(line, text.status().message());
      }
      cursor += static_cast<uint32_t>(text->size()) + 1;
      return Status::Ok();
    }
    if (d == ".mentry") {
      return Status::Ok();  // handled in pass 2
    }
    return LineError(line, StrFormat("unknown directive '%s'", d.c_str()));
  }

  // ---- Pass 2: emission ---------------------------------------------------

  Status PassTwo() {
    program_.text.base = options_.text_base;
    program_.data.base = options_.data_base;
    for (const ParsedLine& line : lines_) {
      if (!line.label.empty() || line.mnemonic.empty()) {
        continue;
      }
      if (line.mnemonic[0] == '.') {
        MSIM_RETURN_IF_ERROR(EmitDirective(line));
        continue;
      }
      MSIM_RETURN_IF_ERROR(EmitInstruction(line));
    }
    return Status::Ok();
  }

  Section& SectionFor(const ParsedLine& line) {
    return line.section == SectionKind::kText ? program_.text : program_.data;
  }

  // Extends the section with zero fill so that `address` is in range, then
  // writes `size` bytes of `value` (little-endian) at it.
  void EmitBytes(const ParsedLine& line, uint32_t address, uint32_t value, unsigned size) {
    Section& section = SectionFor(line);
    const uint32_t offset = address - section.base;
    if (section.bytes.size() < offset + size) {
      section.bytes.resize(offset + size, 0);
    }
    for (unsigned i = 0; i < size; ++i) {
      section.bytes[offset + i] = static_cast<uint8_t>(value >> (8 * i));
    }
  }

  Status EmitDirective(const ParsedLine& line) {
    const std::string& d = line.mnemonic;
    if (d == ".word" || d == ".half" || d == ".byte") {
      const unsigned size = d == ".word" ? 4 : d == ".half" ? 2 : 1;
      uint32_t address = line.address;
      for (const std::string& op : line.operands) {
        auto value = EvalExpr(op, symbols_);
        if (!value.ok()) {
          return LineError(line, value.status().message());
        }
        EmitBytes(line, address, static_cast<uint32_t>(*value), size);
        address += size;
      }
      return Status::Ok();
    }
    if (d == ".asciz" || d == ".string") {
      auto text = ParseStringLiteral(line.operands[0]);
      if (!text.ok()) {
        return LineError(line, text.status().message());
      }
      uint32_t address = line.address;
      for (char c : *text) {
        EmitBytes(line, address++, static_cast<uint8_t>(c), 1);
      }
      EmitBytes(line, address, 0, 1);
      return Status::Ok();
    }
    if (d == ".space") {
      auto value = EvalExpr(line.operands[0], symbols_);
      if (value.ok() && *value > 0) {
        EmitBytes(line, line.address + static_cast<uint32_t>(*value) - 1, 0, 1);
      }
      return Status::Ok();
    }
    if (d == ".mentry") {
      if (line.operands.size() != 2) {
        return LineError(line, ".mentry takes an entry number and a label");
      }
      auto number = EvalExpr(line.operands[0], symbols_);
      if (!number.ok() || *number < 0 || *number >= static_cast<int64_t>(kMaxMroutines)) {
        return LineError(line, StrFormat("bad mroutine entry number (0..%u allowed)",
                                         kMaxMroutines - 1));
      }
      auto target = EvalExpr(line.operands[1], symbols_);
      if (!target.ok()) {
        return LineError(line, target.status().message());
      }
      const uint32_t entry = static_cast<uint32_t>(*number);
      if (program_.metal_entries.contains(entry)) {
        return LineError(line, StrFormat("duplicate .mentry %u", entry));
      }
      program_.metal_entries[entry] = static_cast<uint32_t>(*target);
      return Status::Ok();
    }
    // .text/.data/.org/.align/.equ/.globl were fully handled in pass 1.
    return Status::Ok();
  }

  // ---- Operand helpers ----------------------------------------------------

  Result<uint8_t> Gpr(const ParsedLine& line, const std::string& op) const {
    if (const auto reg = ParseGpr(op)) {
      return *reg;
    }
    return LineError(line, StrFormat("expected a register, got '%s'", op.c_str()));
  }

  Result<uint8_t> MetalReg(const ParsedLine& line, const std::string& op) const {
    if (const auto reg = ParseMetalRegister(op)) {
      return *reg;
    }
    auto value = EvalExpr(op, symbols_);
    if (value.ok() && *value >= 0 && *value < static_cast<int64_t>(kNumMetalRegisters)) {
      return static_cast<uint8_t>(*value);
    }
    return LineError(line, StrFormat("expected a Metal register (m0..m31), got '%s'", op.c_str()));
  }

  Result<int64_t> Imm(const ParsedLine& line, const std::string& op) const {
    auto value = EvalExpr(op, symbols_);
    if (!value.ok()) {
      return LineError(line, value.status().message());
    }
    return *value;
  }

  // Control register operand: "crN" or an expression (including .equ names).
  Result<int32_t> CrNumber(const ParsedLine& line, const std::string& op) const {
    std::string_view text = op;
    // Strip the "cr" prefix only for the literal crN form, so symbolic names
    // that happen to start with "cr"/"CR" still evaluate as expressions.
    if (text.size() > 2 && (text.substr(0, 2) == "cr" || text.substr(0, 2) == "CR") &&
        text.find_first_not_of("0123456789", 2) == std::string_view::npos) {
      text.remove_prefix(2);
    }
    auto value = EvalExpr(text, symbols_);
    if (!value.ok() || *value < 0 || *value > 255) {
      return LineError(line, StrFormat("bad control register '%s'", op.c_str()));
    }
    return static_cast<int32_t>(*value);
  }

  // "imm(reg)" or "(reg)" or "imm" -> {imm, reg}.
  struct MemOperand {
    int32_t offset = 0;
    uint8_t base = 0;
  };
  Result<MemOperand> Mem(const ParsedLine& line, const std::string& op) const {
    MemOperand out;
    const size_t open = op.rfind('(');
    if (open == std::string::npos) {
      MSIM_ASSIGN_OR_RETURN(int64_t value, Imm(line, op));
      out.offset = static_cast<int32_t>(value);
      return out;
    }
    if (op.back() != ')') {
      return LineError(line, StrFormat("malformed memory operand '%s'", op.c_str()));
    }
    const std::string reg_text(TrimWhitespace(op.substr(open + 1, op.size() - open - 2)));
    MSIM_ASSIGN_OR_RETURN(out.base, Gpr(line, reg_text));
    const std::string offset_text(TrimWhitespace(op.substr(0, open)));
    if (!offset_text.empty()) {
      MSIM_ASSIGN_OR_RETURN(int64_t value, Imm(line, offset_text));
      out.offset = static_cast<int32_t>(value);
    }
    return out;
  }

  Result<int32_t> BranchOffset(const ParsedLine& line, const std::string& op,
                               uint32_t pc) const {
    MSIM_ASSIGN_OR_RETURN(int64_t target, Imm(line, op));
    return static_cast<int32_t>(static_cast<uint32_t>(target) - pc);
  }

  void EmitWord(const ParsedLine& line, uint32_t word) {
    EmitBytes(line, emit_address_, word, 4);
    emit_address_ += 4;
  }

  Status EmitEncoded(const ParsedLine& line, Result<uint32_t> encoded) {
    if (!encoded.ok()) {
      return LineError(line, encoded.status().message());
    }
    EmitWord(line, *encoded);
    return Status::Ok();
  }

  // ---- Instructions -------------------------------------------------------

  Status EmitInstruction(const ParsedLine& line) {
    emit_address_ = line.address;
    if (FindPseudo(line.mnemonic) != nullptr || line.mnemonic == "li" || line.mnemonic == "la") {
      return EmitPseudo(line);
    }
    const InstrInfo* info = FindInstrByMnemonic(line.mnemonic);
    if (info == nullptr) {
      return LineError(line, StrFormat("unknown mnemonic '%s'", line.mnemonic.c_str()));
    }
    return EmitReal(line, *info);
  }

  Status CheckOperandCount(const ParsedLine& line, size_t want) const {
    if (line.operands.size() != want) {
      return LineError(line, StrFormat("'%s' expects %zu operand(s), got %zu",
                                       line.mnemonic.c_str(), want, line.operands.size()));
    }
    return Status::Ok();
  }

  Status EmitReal(const ParsedLine& line, const InstrInfo& info) {
    using K = InstrKind;
    const auto& ops = line.operands;
    switch (info.kind) {
      case K::kEcall:
      case K::kEbreak:
      case K::kFence:
      case K::kMexit:
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 0));
        return EmitEncoded(line, EncodeI(info.kind, 0, 0, 0));
      case K::kHalt: {
        if (ops.empty()) {
          return EmitEncoded(line, EncodeI(info.kind, 0, 0, 0));
        }
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 1));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[0]));
        return EmitEncoded(line, EncodeI(info.kind, 0, rs1, 0));
      }
      case K::kMenter: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 1));
        MSIM_ASSIGN_OR_RETURN(int64_t entry, Imm(line, ops[0]));
        if (entry < 0 || entry >= static_cast<int64_t>(kMaxMroutines)) {
          return LineError(line, "menter entry number out of range");
        }
        return EmitEncoded(line, EncodeI(info.kind, 0, 0, static_cast<int32_t>(entry)));
      }
      case K::kRmr: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(uint8_t mreg, MetalReg(line, ops[1]));
        return EmitEncoded(line, EncodeI(info.kind, rd, 0, mreg));
      }
      case K::kWmr: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(uint8_t mreg, MetalReg(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[1]));
        return EmitEncoded(line, EncodeI(info.kind, 0, rs1, mreg));
      }
      case K::kRcr: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(int32_t cr, CrNumber(line, ops[1]));
        return EmitEncoded(line, EncodeI(info.kind, rd, 0, cr));
      }
      case K::kWcr: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(int32_t cr, CrNumber(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[1]));
        return EmitEncoded(line, EncodeI(info.kind, 0, rs1, cr));
      }
      case K::kMopr: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(int64_t sel, Imm(line, ops[1]));
        if (sel < 0 || sel > 31) {
          return LineError(line, "mopr selector out of range");
        }
        return EmitEncoded(line, EncodeR(info.kind, rd, 0, static_cast<uint8_t>(sel)));
      }
      case K::kMopw:
      case K::kTlbinv:
      case K::kTlbflush: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 1));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[0]));
        return EmitEncoded(line, EncodeR(info.kind, 0, rs1, 0));
      }
      case K::kTlbwr:
      case K::kMintset: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs2, Gpr(line, ops[1]));
        return EmitEncoded(line, EncodeR(info.kind, 0, rs1, rs2));
      }
      case K::kTlbrd: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[1]));
        return EmitEncoded(line, EncodeR(info.kind, rd, rs1, 0));
      }
      case K::kJal: {
        // "jal target" (rd = ra) or "jal rd, target".
        uint8_t rd = 1;
        std::string target;
        if (ops.size() == 1) {
          target = ops[0];
        } else {
          MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
          MSIM_ASSIGN_OR_RETURN(rd, Gpr(line, ops[0]));
          target = ops[1];
        }
        MSIM_ASSIGN_OR_RETURN(int32_t offset, BranchOffset(line, target, line.address));
        return EmitEncoded(line, EncodeJ(info.kind, rd, offset));
      }
      case K::kJalr: {
        // "jalr rs1", "jalr rd, imm(rs1)", or "jalr rd, rs1, imm".
        if (ops.size() == 1) {
          MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[0]));
          return EmitEncoded(line, EncodeI(info.kind, 1, rs1, 0));
        }
        if (ops.size() == 3) {
          MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
          MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[1]));
          MSIM_ASSIGN_OR_RETURN(int64_t imm, Imm(line, ops[2]));
          return EmitEncoded(line, EncodeI(info.kind, rd, rs1, static_cast<int32_t>(imm)));
        }
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(MemOperand mem, Mem(line, ops[1]));
        return EmitEncoded(line, EncodeI(info.kind, rd, mem.base, mem.offset));
      }
      default:
        break;
    }
    switch (info.format) {
      case InstrFormat::kR: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 3));
        MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[1]));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs2, Gpr(line, ops[2]));
        return EmitEncoded(line, EncodeR(info.kind, rd, rs1, rs2));
      }
      case InstrFormat::kI: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, info.is_load ? 2 : 3));
        MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
        if (info.is_load) {
          MSIM_ASSIGN_OR_RETURN(MemOperand mem, Mem(line, ops[1]));
          return EmitEncoded(line, EncodeI(info.kind, rd, mem.base, mem.offset));
        }
        MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[1]));
        MSIM_ASSIGN_OR_RETURN(int64_t imm, Imm(line, ops[2]));
        return EmitEncoded(line, EncodeI(info.kind, rd, rs1, static_cast<int32_t>(imm)));
      }
      case InstrFormat::kS: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs2, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(MemOperand mem, Mem(line, ops[1]));
        return EmitEncoded(line, EncodeS(info.kind, mem.base, rs2, mem.offset));
      }
      case InstrFormat::kB: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 3));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs1, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(uint8_t rs2, Gpr(line, ops[1]));
        MSIM_ASSIGN_OR_RETURN(int32_t offset, BranchOffset(line, ops[2], line.address));
        return EmitEncoded(line, EncodeB(info.kind, rs1, rs2, offset));
      }
      case InstrFormat::kU: {
        MSIM_RETURN_IF_ERROR(CheckOperandCount(line, 2));
        MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
        MSIM_ASSIGN_OR_RETURN(int64_t imm, Imm(line, ops[1]));
        return EmitEncoded(line, EncodeU(info.kind, rd, static_cast<int32_t>(imm)));
      }
      default:
        return LineError(line, StrFormat("cannot assemble '%s'", line.mnemonic.c_str()));
    }
  }

  Status EmitPseudo(const ParsedLine& line) {
    using K = InstrKind;
    const std::string& m = line.mnemonic;
    const auto& ops = line.operands;
    const PseudoInfo* pseudo = FindPseudo(m);
    if (pseudo != nullptr) {
      if (ops.size() < static_cast<size_t>(pseudo->min_operands) ||
          ops.size() > static_cast<size_t>(pseudo->max_operands)) {
        return LineError(line, StrFormat("'%s' expects %d operand(s)", m.c_str(),
                                         pseudo->min_operands));
      }
    }
    if (m == "nop") {
      return EmitEncoded(line, EncodeI(K::kAddi, 0, 0, 0));
    }
    if (m == "mv" || m == "not" || m == "neg" || m == "seqz" || m == "snez" || m == "sltz" ||
        m == "sgtz") {
      MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
      MSIM_ASSIGN_OR_RETURN(uint8_t rs, Gpr(line, ops[1]));
      if (m == "mv") return EmitEncoded(line, EncodeI(K::kAddi, rd, rs, 0));
      if (m == "not") return EmitEncoded(line, EncodeI(K::kXori, rd, rs, -1));
      if (m == "neg") return EmitEncoded(line, EncodeR(K::kSub, rd, 0, rs));
      if (m == "seqz") return EmitEncoded(line, EncodeI(K::kSltiu, rd, rs, 1));
      if (m == "snez") return EmitEncoded(line, EncodeR(K::kSltu, rd, 0, rs));
      if (m == "sltz") return EmitEncoded(line, EncodeR(K::kSlt, rd, rs, 0));
      return EmitEncoded(line, EncodeR(K::kSlt, rd, 0, rs));  // sgtz
    }
    if (m == "li") {
      MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
      MSIM_ASSIGN_OR_RETURN(int64_t value, Imm(line, ops[1]));
      const uint32_t uvalue = static_cast<uint32_t>(value);
      if (line.emit_words == 1) {
        return EmitEncoded(line, EncodeI(K::kAddi, rd, 0, static_cast<int32_t>(value)));
      }
      const int32_t hi = static_cast<int32_t>((uvalue + 0x800u) >> 12);
      const int32_t lo = static_cast<int32_t>(uvalue << 20) >> 20;
      MSIM_RETURN_IF_ERROR(EmitEncoded(line, EncodeU(K::kLui, rd, hi & 0xFFFFF)));
      return EmitEncoded(line, EncodeI(K::kAddi, rd, rd, lo));
    }
    if (m == "la") {
      MSIM_ASSIGN_OR_RETURN(uint8_t rd, Gpr(line, ops[0]));
      MSIM_ASSIGN_OR_RETURN(int64_t value, Imm(line, ops[1]));
      const uint32_t addr = static_cast<uint32_t>(value);
      const int32_t hi = static_cast<int32_t>((addr + 0x800u) >> 12);
      const int32_t lo = static_cast<int32_t>(addr << 20) >> 20;
      MSIM_RETURN_IF_ERROR(EmitEncoded(line, EncodeU(K::kLui, rd, hi & 0xFFFFF)));
      return EmitEncoded(line, EncodeI(K::kAddi, rd, rd, lo));
    }
    if (m == "j") {
      MSIM_ASSIGN_OR_RETURN(int32_t offset, BranchOffset(line, ops[0], line.address));
      return EmitEncoded(line, EncodeJ(K::kJal, 0, offset));
    }
    if (m == "jr") {
      MSIM_ASSIGN_OR_RETURN(uint8_t rs, Gpr(line, ops[0]));
      return EmitEncoded(line, EncodeI(K::kJalr, 0, rs, 0));
    }
    if (m == "call") {
      MSIM_ASSIGN_OR_RETURN(int32_t offset, BranchOffset(line, ops[0], line.address));
      return EmitEncoded(line, EncodeJ(K::kJal, 1, offset));
    }
    if (m == "ret") {
      return EmitEncoded(line, EncodeI(K::kJalr, 0, 1, 0));
    }
    if (m == "beqz" || m == "bnez" || m == "blez" || m == "bgez" || m == "bltz" || m == "bgtz") {
      MSIM_ASSIGN_OR_RETURN(uint8_t rs, Gpr(line, ops[0]));
      MSIM_ASSIGN_OR_RETURN(int32_t offset, BranchOffset(line, ops[1], line.address));
      if (m == "beqz") return EmitEncoded(line, EncodeB(K::kBeq, rs, 0, offset));
      if (m == "bnez") return EmitEncoded(line, EncodeB(K::kBne, rs, 0, offset));
      if (m == "blez") return EmitEncoded(line, EncodeB(K::kBge, 0, rs, offset));
      if (m == "bgez") return EmitEncoded(line, EncodeB(K::kBge, rs, 0, offset));
      if (m == "bltz") return EmitEncoded(line, EncodeB(K::kBlt, rs, 0, offset));
      return EmitEncoded(line, EncodeB(K::kBlt, 0, rs, offset));  // bgtz
    }
    if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
      MSIM_ASSIGN_OR_RETURN(uint8_t a, Gpr(line, ops[0]));
      MSIM_ASSIGN_OR_RETURN(uint8_t b, Gpr(line, ops[1]));
      MSIM_ASSIGN_OR_RETURN(int32_t offset, BranchOffset(line, ops[2], line.address));
      if (m == "bgt") return EmitEncoded(line, EncodeB(K::kBlt, b, a, offset));
      if (m == "ble") return EmitEncoded(line, EncodeB(K::kBge, b, a, offset));
      if (m == "bgtu") return EmitEncoded(line, EncodeB(K::kBltu, b, a, offset));
      return EmitEncoded(line, EncodeB(K::kBgeu, b, a, offset));  // bleu
    }
    return LineError(line, StrFormat("unhandled pseudo '%s'", m.c_str()));
  }

  static Result<std::string> ParseStringLiteral(std::string_view text) {
    text = TrimWhitespace(text);
    if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
      return ParseError("expected a double-quoted string");
    }
    std::string out;
    for (size_t i = 1; i + 1 < text.size(); ++i) {
      char c = text[i];
      if (c == '\\' && i + 2 < text.size()) {
        ++i;
        switch (text[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: c = text[i]; break;
        }
      }
      out.push_back(c);
    }
    return out;
  }

  const AssembleOptions options_;
  std::vector<ParsedLine> lines_;
  std::map<std::string, uint32_t> symbols_;
  Program program_;
  SectionKind section_ = SectionKind::kText;
  uint32_t text_cursor_ = 0;
  uint32_t data_cursor_ = 0;
  uint32_t emit_address_ = 0;
};

}  // namespace

Result<Program> Assemble(std::string_view source, const AssembleOptions& options) {
  return Assembler(options).Run(source);
}

}  // namespace msim
