#include "asm/lexer.h"

#include <cctype>

#include "support/strings.h"

namespace msim {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '$';
}

// Recursive-descent evaluator over the expression text.
class ExprParser {
 public:
  ExprParser(std::string_view text, const std::map<std::string, uint32_t>& symbols)
      : text_(text), symbols_(symbols) {}

  Result<int64_t> Parse() {
    MSIM_ASSIGN_OR_RETURN(int64_t value, ParseSum());
    SkipSpace();
    if (pos_ != text_.size()) {
      return ParseError(StrFormat("unexpected trailing characters in expression '%.*s'",
                                  static_cast<int>(text_.size()), text_.data()));
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<int64_t> ParseSum() {
    MSIM_ASSIGN_OR_RETURN(int64_t value, ParseTerm());
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        const char op = text_[pos_++];
        MSIM_ASSIGN_OR_RETURN(int64_t rhs, ParseTerm());
        value = op == '+' ? value + rhs : value - rhs;
      } else {
        return value;
      }
    }
  }

  Result<int64_t> ParseTerm() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return ParseError("unexpected end of expression");
    }
    const char c = text_[pos_];
    if (c == '-') {
      ++pos_;
      MSIM_ASSIGN_OR_RETURN(int64_t value, ParseTerm());
      return -value;
    }
    if (c == '(') {
      ++pos_;
      MSIM_ASSIGN_OR_RETURN(int64_t value, ParseSum());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return ParseError("missing ')' in expression");
      }
      ++pos_;
      return value;
    }
    if (c == '%') {
      return ParseReloc();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    if (IsIdentStart(c)) {
      return ParseSymbol();
    }
    return ParseError(StrFormat("unexpected character '%c' in expression", c));
  }

  Result<int64_t> ParseReloc() {
    ++pos_;  // consume '%'
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) {
      ++pos_;
    }
    const std::string_view name = text_.substr(start, pos_ - start);
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return ParseError(StrFormat("%%%.*s requires parenthesized argument",
                                  static_cast<int>(name.size()), name.data()));
    }
    ++pos_;
    MSIM_ASSIGN_OR_RETURN(int64_t value, ParseSum());
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      return ParseError("missing ')' after relocation argument");
    }
    ++pos_;
    const uint32_t addr = static_cast<uint32_t>(value);
    if (name == "hi") {
      // Compensates for the sign extension of the paired %lo addi.
      return static_cast<int64_t>((addr + 0x800u) >> 12);
    }
    if (name == "lo") {
      return static_cast<int64_t>(static_cast<int32_t>(addr << 20) >> 20);
    }
    return ParseError(StrFormat("unknown relocation %%%.*s", static_cast<int>(name.size()),
                                name.data()));
  }

  Result<int64_t> ParseNumber() {
    size_t start = pos_;
    // Consume digits plus hex/binary markers.
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    const std::string_view digits = text_.substr(start, pos_ - start);
    const auto value = ParseInt(digits);
    if (!value) {
      return ParseError(StrFormat("malformed number '%.*s'", static_cast<int>(digits.size()),
                                  digits.data()));
    }
    return *value;
  }

  Result<int64_t> ParseSymbol() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) {
      ++pos_;
    }
    const std::string name(text_.substr(start, pos_ - start));
    const auto it = symbols_.find(name);
    if (it == symbols_.end()) {
      return Status(ErrorCode::kNotFound, StrFormat("undefined symbol '%s'", name.c_str()));
    }
    return static_cast<int64_t>(it->second);
  }

  std::string_view text_;
  const std::map<std::string, uint32_t>& symbols_;
  size_t pos_ = 0;
};

}  // namespace

std::string_view StripComment(std::string_view line) {
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      continue;
    }
    if (c == '#' || c == ';') {
      return line.substr(0, i);
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      return line.substr(0, i);
    }
  }
  return line;
}

std::vector<std::string_view> SplitOperands(std::string_view text) {
  std::vector<std::string_view> out;
  text = TrimWhitespace(text);
  if (text.empty()) {
    return out;
  }
  int depth = 0;
  bool in_string = false;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '(':
        ++depth;
        break;
      case ')':
        --depth;
        break;
      case ',':
        if (depth == 0) {
          out.push_back(TrimWhitespace(text.substr(start, i - start)));
          start = i + 1;
        }
        break;
      default:
        break;
    }
  }
  out.push_back(TrimWhitespace(text.substr(start)));
  return out;
}

Result<int64_t> EvalExpr(std::string_view text, const std::map<std::string, uint32_t>& symbols) {
  return ExprParser(text, symbols).Parse();
}

bool ExprReferencesUnknown(std::string_view text,
                           const std::map<std::string, uint32_t>& symbols) {
  for (size_t i = 0; i < text.size(); ++i) {
    if (IsIdentStart(text[i]) && (i == 0 || !IsIdentChar(text[i - 1]))) {
      size_t j = i;
      while (j < text.size() && IsIdentChar(text[j])) {
        ++j;
      }
      const std::string name(text.substr(i, j - i));
      // %hi / %lo keywords are preceded by '%' and skipped here.
      if (i > 0 && text[i - 1] == '%') {
        i = j;
        continue;
      }
      if (!symbols.contains(name)) {
        return true;
      }
      i = j;
    }
  }
  return false;
}

}  // namespace msim
