// Line-level tokenization helpers for the assembler.
#ifndef MSIM_ASM_LEXER_H_
#define MSIM_ASM_LEXER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.h"

namespace msim {

// Removes `#`, `//` and `;` comments (outside string literals).
std::string_view StripComment(std::string_view line);

// Splits an operand list on top-level commas; parentheses and string literals
// protect embedded commas. Each field is trimmed.
std::vector<std::string_view> SplitOperands(std::string_view text);

// Evaluates an assembler expression: numbers, symbols, unary -, binary + and
// -, and the relocation helpers %hi(expr) / %lo(expr). `symbols` supplies
// label and .equ values. The special symbol "." (current address) must be
// provided by the caller via `symbols` when meaningful.
Result<int64_t> EvalExpr(std::string_view text, const std::map<std::string, uint32_t>& symbols);

// True if `text` contains an identifier that is not defined in `symbols`
// (used in pass 1 to detect label references before labels are resolved).
bool ExprReferencesUnknown(std::string_view text,
                           const std::map<std::string, uint32_t>& symbols);

}  // namespace msim

#endif  // MSIM_ASM_LEXER_H_
