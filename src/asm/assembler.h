// Two-pass assembler for MRV32 and mcode.
//
// Supported syntax (one statement per line):
//   label:                 .text / .data
//   .org EXPR              .equ NAME, EXPR        .globl NAME (recorded, no-op)
//   .word E[,E...]         .half E[,E...]         .byte E[,E...]
//   .asciz "text"          .space N               .align N   (2^N bytes)
//   .mentry NUM, LABEL     -- declare mroutine entry NUM at LABEL (mcode only)
//   <mnemonic> operands    -- every instruction in src/isa plus pseudos:
//       nop, mv, not, neg, seqz, snez, sltz, sgtz, li, la, j, jr, call, ret,
//       beqz, bnez, blez, bgez, bltz, bgtz, bgt, ble, bgtu, bleu
// Comments: '#', ';' and '//' to end of line.
// Expressions: numbers (dec/hex/bin), labels, .equ symbols, + and -, unary -,
// %hi(expr), %lo(expr).
#ifndef MSIM_ASM_ASSEMBLER_H_
#define MSIM_ASM_ASSEMBLER_H_

#include <string_view>

#include "asm/program.h"
#include "support/result.h"

namespace msim {

struct AssembleOptions {
  uint32_t text_base = 0x00001000;
  uint32_t data_base = 0x00100000;
};

// Assembles `source` into a loadable program. Errors name the source line.
Result<Program> Assemble(std::string_view source, const AssembleOptions& options = {});

}  // namespace msim

#endif  // MSIM_ASM_ASSEMBLER_H_
