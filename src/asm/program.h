// Loadable program images produced by the assembler.
#ifndef MSIM_ASM_PROGRAM_H_
#define MSIM_ASM_PROGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace msim {

// A contiguous byte range to be loaded at `base`.
struct Section {
  uint32_t base = 0;
  std::vector<uint8_t> bytes;

  uint32_t end() const { return base + static_cast<uint32_t>(bytes.size()); }
};

// An assembled program: text + data sections, the symbol table, and — for
// mcode modules — the mroutine entry table declared with `.mentry`.
struct Program {
  Section text;
  Section data;
  std::map<std::string, uint32_t> symbols;
  // Entry number -> address of the mroutine's first instruction. Filled by
  // `.mentry <number>, <label>` directives (paper §2: each mroutine has a
  // unique entry number serving as its entry point into Metal mode).
  std::map<uint32_t, uint32_t> metal_entries;
  // `_start` if defined, else text.base.
  uint32_t entry = 0;
};

}  // namespace msim

#endif  // MSIM_ASM_PROGRAM_H_
