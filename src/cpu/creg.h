// Control registers, readable/writable only in Metal mode via rcr/wcr.
//
// The paper (§2.1) leaves it to the processor to expose architectural
// features "as either Metal instructions, control registers or memory mapped
// IO"; this is our processor's control-register file.
#ifndef MSIM_CPU_CREG_H_
#define MSIM_CPU_CREG_H_

#include <cstdint>

namespace msim {

enum ControlReg : uint32_t {
  kCrMcause = 0,     // cause of the most recent Metal-mode entry
  kCrMepc = 1,       // pc of the faulting/intercepted instruction
  kCrMbadvaddr = 2,  // faulting virtual address (TLB/page faults)
  kCrMinstr = 3,     // raw intercepted/faulting instruction word
  kCrAsid = 4,       // current address-space ID (low 16 bits)
  kCrPgEnable = 5,   // bit0: enable paging for normal-mode accesses
  kCrKeyPerm = 6,    // page-key permissions: bit(2k)=read/exec, bit(2k+1)=write
  kCrIpend = 7,      // interrupt pending bitmap (RO; writes ignored)
  kCrIenable = 8,    // interrupt enable bitmap
  kCrCycle = 9,      // cycle counter, low 32 bits (RO)
  kCrCycleH = 10,    // cycle counter, high 32 bits (RO)
  kCrInstret = 11,   // retired instruction counter, low 32 bits (RO)
  kCrScratch0 = 12,  // four scratch registers for mroutine use
  kCrScratch1 = 13,
  kCrScratch2 = 14,
  kCrScratch3 = 15,
  // Delegation table: writing kCrDelegBase + cause sets the mroutine entry
  // number that handles that exception cause; 0xFFFFFFFF = undelegated.
  kCrDelegBase = 16,
  // kCrDelegBase + 31 is the last delegation slot.
  kCrDelegEnd = 47,
  // Interrupt delegation: entry handling all interrupt lines.
  kCrIrqEntry = 48,
  // Machine-check state, written by hardware when a machine check is
  // delivered (docs/robustness.md): the sub-cause (McheckKind), a
  // kind-specific detail word (faulting address / offending entry / original
  // cause), and the m31 value at delivery time so a recovery mroutine can
  // restore the pre-fault return address.
  kCrMcheckKind = 49,
  kCrMcheckInfo = 50,
  kCrMcheckM31 = 51,
  // Write-only trigger: any write restores MRAM code/data words that fail
  // parity from the shadow copy and recomputes parity (ECC-style scrub).
  kCrMramScrub = 52,
  kCrCount = 64,
};

inline constexpr uint32_t kNoDelegation = 0xFFFFFFFFu;

}  // namespace msim

#endif  // MSIM_CPU_CREG_H_
