#include "cpu/metal_unit.h"

#include "snap/snapstream.h"
#include "support/bits.h"

namespace msim {

uint32_t PackInterceptSpec(const InterceptSlot& slot) {
  uint32_t spec = slot.opcode & 0x7Fu;
  spec |= static_cast<uint32_t>(slot.funct3 & 7u) << 7;
  spec |= static_cast<uint32_t>(slot.funct7 & 0x7Fu) << 10;
  if (slot.match_funct3) {
    spec |= 1u << 24;
  }
  if (slot.match_funct7) {
    spec |= 1u << 25;
  }
  if (slot.enable) {
    spec |= 1u << 31;
  }
  return spec;
}

uint32_t PackInterceptTarget(unsigned slot_index, const InterceptSlot& slot) {
  return (slot.entry & 0x3Fu) | (static_cast<uint32_t>(slot_index & 7u) << 8);
}

void MetalUnit::Reset() {
  mreg_.fill(0);
  creg_.fill(0);
  creg_[kCrKeyPerm] = 0xFFFFFFFFu;  // all keys permissive until configured
  entry_table_.fill(0);
  delegation_.fill(kNoDelegation);
  irq_entry_ = kNoDelegation;
  intercepts_ = {};
  any_intercept_ = false;
  operands_ = {};
  pending_writeback_valid_ = false;
  pending_writeback_ = 0;
}

uint32_t MetalUnit::ReadCreg(uint32_t number, uint64_t cycle, uint64_t instret,
                             uint32_t irq_pending) const {
  switch (number) {
    case kCrIpend:
      return irq_pending;
    case kCrCycle:
      return static_cast<uint32_t>(cycle);
    case kCrCycleH:
      return static_cast<uint32_t>(cycle >> 32);
    case kCrInstret:
      return static_cast<uint32_t>(instret);
    case kCrIrqEntry:
      return irq_entry_;
    default:
      break;
  }
  if (number >= kCrDelegBase && number <= kCrDelegEnd) {
    return delegation_[number - kCrDelegBase];
  }
  if (number < kCrCount) {
    return creg_[number];
  }
  return 0;
}

void MetalUnit::WriteCreg(uint32_t number, uint32_t value) {
  switch (number) {
    case kCrIpend:
    case kCrCycle:
    case kCrCycleH:
    case kCrInstret:
      return;  // read-only
    case kCrIrqEntry:
      irq_entry_ = value;
      return;
    default:
      break;
  }
  if (number >= kCrDelegBase && number <= kCrDelegEnd) {
    delegation_[number - kCrDelegBase] = value;
    return;
  }
  if (number < kCrCount) {
    creg_[number] = value;
  }
}

void MetalUnit::LatchOperands(const OperandLatch& latch) {
  operands_ = latch;
  ++stats_.operand_latches;
  if (tracer_ != nullptr) {
    tracer_->Emit(TraceEventKind::kIntercept, /*pc=*/0, latch.raw, latch.rd_index);
  }
}

void MetalUnit::RegisterMetrics(MetricRegistry& registry) const {
  registry.Register("metal", "intercept_configs", &stats_.intercept_configs,
                    "mintset slot writes");
  registry.Register("metal", "operand_latches", &stats_.operand_latches,
                    "committed instruction interceptions");
  registry.Register("metal", "writebacks_taken", &stats_.writebacks_taken,
                    "mopw writebacks applied at mexit");
}

void MetalUnit::ApplyMintset(uint32_t spec, uint32_t target) {
  ++stats_.intercept_configs;
  const unsigned index = (target >> 8) & (kNumInterceptSlots - 1);
  InterceptSlot& slot = intercepts_[index];
  slot.opcode = static_cast<uint8_t>(spec & 0x7F);
  slot.funct3 = static_cast<uint8_t>((spec >> 7) & 7);
  slot.funct7 = static_cast<uint8_t>((spec >> 10) & 0x7F);
  slot.match_funct3 = Bit(spec, 24) != 0;
  slot.match_funct7 = Bit(spec, 25) != 0;
  slot.enable = Bit(spec, 31) != 0;
  slot.entry = static_cast<uint8_t>(target & 0x3F);
  any_intercept_ = false;
  for (const InterceptSlot& s : intercepts_) {
    any_intercept_ = any_intercept_ || s.enable;
  }
}

const InterceptSlot* MetalUnit::MatchIntercept(uint32_t raw) const {
  if (!any_intercept_) {
    return nullptr;
  }
  const uint32_t opcode = raw & 0x7F;
  const uint32_t funct3 = (raw >> 12) & 7;
  const uint32_t funct7 = (raw >> 25) & 0x7F;
  for (const InterceptSlot& slot : intercepts_) {
    if (!slot.enable || slot.opcode != opcode) {
      continue;
    }
    if (slot.match_funct3 && slot.funct3 != funct3) {
      continue;
    }
    if (slot.match_funct7 && slot.funct7 != funct7) {
      continue;
    }
    return &slot;
  }
  return nullptr;
}

void MetalUnit::SaveState(SnapWriter& w) const {
  for (uint32_t value : mreg_) {
    w.U32(value);
  }
  for (uint32_t value : creg_) {
    w.U32(value);
  }
  for (uint32_t address : entry_table_) {
    w.U32(address);
  }
  for (uint32_t entry : delegation_) {
    w.U32(entry);
  }
  w.U32(irq_entry_);
  for (const InterceptSlot& slot : intercepts_) {
    w.Bool(slot.enable);
    w.U8(slot.opcode);
    w.U8(slot.funct3);
    w.Bool(slot.match_funct3);
    w.U8(slot.funct7);
    w.Bool(slot.match_funct7);
    w.U8(slot.entry);
  }
  w.Bool(any_intercept_);
  w.U32(operands_.rs1_value);
  w.U32(operands_.rs2_value);
  w.U32(static_cast<uint32_t>(operands_.imm));
  w.U8(operands_.rd_index);
  w.U8(operands_.rs1_index);
  w.U8(operands_.rs2_index);
  w.U32(operands_.raw);
  w.Bool(pending_writeback_valid_);
  w.U32(pending_writeback_);
  w.U64(stats_.intercept_configs);
  w.U64(stats_.operand_latches);
  w.U64(stats_.writebacks_taken);
}

Status MetalUnit::RestoreState(SnapReader& r) {
  for (uint32_t& value : mreg_) {
    value = r.U32();
  }
  for (uint32_t& value : creg_) {
    value = r.U32();
  }
  for (uint32_t& address : entry_table_) {
    address = r.U32();
  }
  for (uint32_t& entry : delegation_) {
    entry = r.U32();
  }
  irq_entry_ = r.U32();
  for (InterceptSlot& slot : intercepts_) {
    slot.enable = r.Bool();
    slot.opcode = r.U8();
    slot.funct3 = r.U8();
    slot.match_funct3 = r.Bool();
    slot.funct7 = r.U8();
    slot.match_funct7 = r.Bool();
    slot.entry = r.U8();
  }
  any_intercept_ = r.Bool();
  operands_.rs1_value = r.U32();
  operands_.rs2_value = r.U32();
  operands_.imm = static_cast<int32_t>(r.U32());
  operands_.rd_index = r.U8();
  operands_.rs1_index = r.U8();
  operands_.rs2_index = r.U8();
  operands_.raw = r.U32();
  pending_writeback_valid_ = r.Bool();
  pending_writeback_ = r.U32();
  stats_.intercept_configs = r.U64();
  stats_.operand_latches = r.U64();
  stats_.writebacks_taken = r.U64();
  return r.ToStatus("metal unit");
}

}  // namespace msim
