// The Metal hardware unit: Metal register file, control registers, mroutine
// entry table, instruction-intercept matchers and the intercepted-operand
// latch (paper Figure 1: MRAM + MReg. + mode logic).
#ifndef MSIM_CPU_METAL_UNIT_H_
#define MSIM_CPU_METAL_UNIT_H_

#include <array>
#include <cstdint>

#include "cpu/creg.h"
#include "cpu/trap.h"
#include "isa/isa.h"
#include "support/result.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace msim {

class SnapWriter;
class SnapReader;

// One instruction-interception matcher slot. `mintset` writes these from
// Metal mode; the decode stage compares every normal-mode instruction
// against all enabled slots (paper §2.3, Instruction Interception).
struct InterceptSlot {
  bool enable = false;
  uint8_t opcode = 0;       // bits [6:0]
  uint8_t funct3 = 0;
  bool match_funct3 = false;
  uint8_t funct7 = 0;
  bool match_funct7 = false;
  uint8_t entry = 0;        // target mroutine
};

inline constexpr unsigned kNumInterceptSlots = 8;

// mintset operand encoding:
//   rs1 (match spec): [6:0] opcode, [9:7] funct3, [16:10] funct7,
//                     [24] match_funct3, [25] match_funct7, [31] enable
//   rs2 (target):     [5:0] entry, [10:8] slot index
uint32_t PackInterceptSpec(const InterceptSlot& slot);
uint32_t PackInterceptTarget(unsigned slot_index, const InterceptSlot& slot);

// Values of the intercepted instruction latched by the pipeline so that the
// handling mroutine can emulate it without decoding GPR indices itself
// (read via `mopr`, rd-writeback via `mopw`).
struct OperandLatch {
  uint32_t rs1_value = 0;
  uint32_t rs2_value = 0;
  int32_t imm = 0;
  uint8_t rd_index = 0;
  uint8_t rs1_index = 0;
  uint8_t rs2_index = 0;
  uint32_t raw = 0;
};

struct MetalUnitStats {
  uint64_t intercept_configs = 0;   // mintset writes
  uint64_t operand_latches = 0;     // committed interceptions
  uint64_t writebacks_taken = 0;    // mopw values applied at mexit
};

class MetalUnit {
 public:
  MetalUnit() { Reset(); }

  void Reset();

  // --- Metal registers (m0..m31) ---
  uint32_t ReadMreg(uint8_t index) const { return mreg_[index & 31]; }
  void WriteMreg(uint8_t index, uint32_t value) { mreg_[index & 31] = value; }

  // --- Control registers ---
  // Cycle/instret values come from the core; they are passed in on reads.
  uint32_t ReadCreg(uint32_t number, uint64_t cycle, uint64_t instret,
                    uint32_t irq_pending) const;
  void WriteCreg(uint32_t number, uint32_t value);

  // --- Entry table ---
  void SetEntryAddress(uint32_t entry, uint32_t address) {
    entry_table_[entry & (kMaxMroutines - 1)] = address;
  }
  uint32_t EntryAddress(uint32_t entry) const {
    return entry_table_[entry & (kMaxMroutines - 1)];
  }

  // --- Delegation ---
  uint32_t DelegatedEntry(ExcCause cause) const {
    return delegation_[static_cast<uint32_t>(cause) & 31];
  }
  uint32_t IrqEntry() const { return irq_entry_; }
  void Delegate(ExcCause cause, uint32_t entry) {
    delegation_[static_cast<uint32_t>(cause) & 31] = entry;
  }
  void DelegateIrq(uint32_t entry) { irq_entry_ = entry; }

  // --- Interception ---
  void ApplyMintset(uint32_t spec, uint32_t target);
  // Returns the matching slot for a raw instruction word, or nullptr.
  const InterceptSlot* MatchIntercept(uint32_t raw) const;
  bool AnyInterceptEnabled() const { return any_intercept_; }

  // --- Operand latch ---
  // Latches the operands of a committed intercepted instruction (the core
  // calls this exactly once per interception, from the EX stage).
  void LatchOperands(const OperandLatch& latch);
  const OperandLatch& operands() const { return operands_; }
  // mopw: value to write to the intercepted instruction's rd on mexit.
  void SetPendingWriteback(uint32_t value) {
    pending_writeback_valid_ = true;
    pending_writeback_ = value;
  }
  bool TakePendingWriteback(uint8_t* rd, uint32_t* value) {
    if (!pending_writeback_valid_) {
      return false;
    }
    pending_writeback_valid_ = false;
    ++stats_.writebacks_taken;
    *rd = operands_.rd_index;
    *value = pending_writeback_;
    return true;
  }

  // --- Checkpoint/restore (src/snap) ---
  void SaveState(SnapWriter& w) const;
  Status RestoreState(SnapReader& r);

  // --- Observability ---
  const MetalUnitStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MetalUnitStats{}; }
  void RegisterMetrics(MetricRegistry& registry) const;
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  // --- Trap state (set by the core on Metal-mode entry) ---
  void SetTrapState(uint32_t cause, uint32_t epc, uint32_t badvaddr, uint32_t instr) {
    creg_[kCrMcause] = cause;
    creg_[kCrMepc] = epc;
    creg_[kCrMbadvaddr] = badvaddr;
    creg_[kCrMinstr] = instr;
  }

  // --- Machine-check state (set by the core when delivering kMachineCheck) ---
  void SetMachineCheckState(McheckKind kind, uint32_t info, uint32_t saved_m31) {
    creg_[kCrMcheckKind] = static_cast<uint32_t>(kind);
    creg_[kCrMcheckInfo] = info;
    creg_[kCrMcheckM31] = saved_m31;
  }

  uint16_t asid() const { return static_cast<uint16_t>(creg_[kCrAsid]); }
  bool paging_enabled() const { return (creg_[kCrPgEnable] & 1) != 0; }
  uint32_t keyperm() const { return creg_[kCrKeyPerm]; }
  uint32_t ienable() const { return creg_[kCrIenable]; }

 private:
  std::array<uint32_t, kNumMetalRegisters> mreg_{};
  std::array<uint32_t, kCrCount> creg_{};
  std::array<uint32_t, kMaxMroutines> entry_table_{};
  std::array<uint32_t, 32> delegation_{};
  uint32_t irq_entry_ = kNoDelegation;
  std::array<InterceptSlot, kNumInterceptSlots> intercepts_{};
  bool any_intercept_ = false;
  OperandLatch operands_{};
  bool pending_writeback_valid_ = false;
  uint32_t pending_writeback_ = 0;
  MetalUnitStats stats_;
  Tracer* tracer_ = nullptr;
};

}  // namespace msim

#endif  // MSIM_CPU_METAL_UNIT_H_
