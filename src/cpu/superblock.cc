#include "cpu/superblock.h"

#include "isa/decode.h"
#include "mem/bus.h"
#include "mem/phys_mem.h"
#include "snap/snapstream.h"

namespace msim {

bool WindowSafeInstr(InstrKind kind) {
  switch (kind) {
    case InstrKind::kLui:
    case InstrKind::kAuipc:
    case InstrKind::kJal:
    case InstrKind::kJalr:
    case InstrKind::kBeq:
    case InstrKind::kBne:
    case InstrKind::kBlt:
    case InstrKind::kBge:
    case InstrKind::kBltu:
    case InstrKind::kBgeu:
    case InstrKind::kAddi:
    case InstrKind::kSlti:
    case InstrKind::kSltiu:
    case InstrKind::kXori:
    case InstrKind::kOri:
    case InstrKind::kAndi:
    case InstrKind::kSlli:
    case InstrKind::kSrli:
    case InstrKind::kSrai:
    case InstrKind::kAdd:
    case InstrKind::kSub:
    case InstrKind::kSll:
    case InstrKind::kSlt:
    case InstrKind::kSltu:
    case InstrKind::kXor:
    case InstrKind::kSrl:
    case InstrKind::kSra:
    case InstrKind::kOr:
    case InstrKind::kAnd:
    case InstrKind::kFence:
    case InstrKind::kMul:
    case InstrKind::kMulh:
    case InstrKind::kMulhsu:
    case InstrKind::kMulhu:
    case InstrKind::kDiv:
    case InstrKind::kDivu:
    case InstrKind::kRem:
    case InstrKind::kRemu:
      return true;
    default:
      return false;
  }
}

namespace {

// A word the fetch unit could pull speculatively: aligned, DRAM-resident,
// below the MMIO aperture. Mirrors the per-cycle fetch eligibility check in
// Core::StepFast (minus the icache probe, which is dynamic and verified at
// every trace entry instead).
bool Fetchable(uint32_t addr, uint32_t dram_size) {
  return (addr & 3) == 0 && addr < kMmioBase && addr + 4 <= dram_size;
}

}  // namespace

SuperblockCache::SuperblockCache(bool enabled, uint32_t max_len)
    : max_len_(max_len) {
  if (!enabled || max_len < kSuperblockMinLen) {
    return;
  }
  traces_.resize(kSuperblockEntries);
  mask_ = kSuperblockEntries - 1;
}

bool SuperblockCache::TranslateSlot(const Decoded& d, uint32_t pc, uint32_t raw,
                                    SbSlot* out) {
  using K = InstrKind;
  using E = SbExec;
  const uint32_t imm = static_cast<uint32_t>(d.imm);
  out->rd = d.rd & 31;
  out->rs1 = d.rs1 & 31;
  out->rs2 = d.rs2 & 31;
  out->imm = imm;
  out->cval = 0;
  out->target = 0;
  out->addr = pc;
  out->raw = raw;
  out->d = d;
  switch (d.kind) {
    case K::kLui:
      out->exec = E::kConst;
      out->cval = imm << 12;
      break;
    case K::kAuipc:
      out->exec = E::kConst;
      out->cval = pc + (imm << 12);
      break;
    case K::kJal:
      out->exec = E::kJal;
      out->cval = pc + 4;
      out->target = pc + imm;
      break;
    case K::kJalr:
      out->exec = E::kJalr;
      out->cval = pc + 4;
      break;
    case K::kBeq: out->exec = E::kBeq; out->target = pc + imm; break;
    case K::kBne: out->exec = E::kBne; out->target = pc + imm; break;
    case K::kBlt: out->exec = E::kBlt; out->target = pc + imm; break;
    case K::kBge: out->exec = E::kBge; out->target = pc + imm; break;
    case K::kBltu: out->exec = E::kBltu; out->target = pc + imm; break;
    case K::kBgeu: out->exec = E::kBgeu; out->target = pc + imm; break;
    case K::kAddi: out->exec = E::kAddi; break;
    case K::kSlti: out->exec = E::kSlti; break;
    case K::kSltiu: out->exec = E::kSltiu; break;
    case K::kXori: out->exec = E::kXori; break;
    case K::kOri: out->exec = E::kOri; break;
    case K::kAndi: out->exec = E::kAndi; break;
    case K::kSlli: out->exec = E::kSlli; out->imm = imm & 31; break;
    case K::kSrli: out->exec = E::kSrli; out->imm = imm & 31; break;
    case K::kSrai: out->exec = E::kSrai; out->imm = imm & 31; break;
    case K::kAdd: out->exec = E::kAdd; break;
    case K::kSub: out->exec = E::kSub; break;
    case K::kSll: out->exec = E::kSll; break;
    case K::kSlt: out->exec = E::kSlt; break;
    case K::kSltu: out->exec = E::kSltu; break;
    case K::kXor: out->exec = E::kXor; break;
    case K::kSrl: out->exec = E::kSrl; break;
    case K::kSra: out->exec = E::kSra; break;
    case K::kOr: out->exec = E::kOr; break;
    case K::kAnd: out->exec = E::kAnd; break;
    case K::kFence: out->exec = E::kFence; break;
    case K::kMul: out->exec = E::kMul; break;
    case K::kMulh: out->exec = E::kMulh; break;
    case K::kMulhsu: out->exec = E::kMulhsu; break;
    case K::kMulhu: out->exec = E::kMulhu; break;
    case K::kDiv: out->exec = E::kDiv; break;
    case K::kDivu: out->exec = E::kDivu; break;
    case K::kRem: out->exec = E::kRem; break;
    case K::kRemu: out->exec = E::kRemu; break;
    default:
      return false;
  }
  return true;
}

Superblock* SuperblockCache::Build(uint32_t start, const PhysicalMemory& dram) {
  if (traces_.empty() || !Fetchable(start, dram.size())) {
    return nullptr;
  }
  std::vector<SbSlot> slots;
  slots.reserve(16);
  uint32_t addr = start;
  bool jump_terminated = false;
  while (slots.size() < max_len_ && Fetchable(addr, dram.size())) {
    const auto word = dram.Read32(addr);
    if (!word) {
      break;
    }
    const Decoded d = DecodeInstr(*word);
    if (!WindowSafeInstr(d.kind)) {
      break;
    }
    SbSlot slot;
    if (!TranslateSlot(d, addr, *word, &slot)) {
      break;
    }
    slots.push_back(slot);
    addr += 4;
    if (d.kind == InstrKind::kJal || d.kind == InstrKind::kJalr) {
      jump_terminated = true;
      break;
    }
  }
  const uint32_t exec_len = static_cast<uint32_t>(slots.size());
  if (exec_len < kSuperblockMinLen) {
    return nullptr;
  }
  // Fetch-only tail: the words the pipeline pulls speculatively while the
  // final slots execute (see Superblock::len). A jump-terminated trace never
  // fetches past exec_len + 1 (the jump slot fetches nothing).
  const uint32_t tail = jump_terminated ? 1 : 2;
  for (uint32_t i = 0; i < tail && Fetchable(addr, dram.size()); ++i) {
    const auto word = dram.Read32(addr);
    if (!word) {
      break;
    }
    SbSlot slot;
    slot.exec = SbExec::kFence;  // never dispatched
    slot.addr = addr;
    slot.raw = *word;
    slot.d = DecodeInstr(*word);
    slots.push_back(slot);
    addr += 4;
  }

  Superblock& sb = traces_[Index(start)];
  if (sb.valid && sb.start != start) {
    ++stats_.evictions;
  }
  sb.valid = true;
  sb.start = start;
  sb.exec_len = exec_len;
  sb.len = static_cast<uint32_t>(slots.size());
  sb.slots = std::move(slots);
  ++stats_.builds;
  return &sb;
}

void SuperblockCache::InvalidateAll() {
  bool any = false;
  for (Superblock& sb : traces_) {
    any |= sb.valid;
    sb.valid = false;
  }
  if (any) {
    ++stats_.invalidations;
  }
}

void SuperblockCache::RegisterMetrics(MetricRegistry& registry) const {
  registry.Register("superblock", "builds", &stats_.builds,
                    "superblock traces constructed");
  registry.Register("superblock", "executions", &stats_.executions,
                    "trace executions entered from the hot-path window");
  registry.Register("superblock", "chains", &stats_.chains,
                    "taken branches chained directly into a cached trace");
  registry.Register("superblock", "instructions", &stats_.instructions,
                    "instructions retired inside superblock traces");
  registry.Register("superblock", "invalidations", &stats_.invalidations,
                    "traces killed by stale raw words or InvalidateAll");
  registry.Register("superblock", "evictions", &stats_.evictions,
                    "builds that overwrote a different live trace");
}

void SuperblockCache::SaveState(SnapWriter& w) const {
  uint32_t live = 0;
  for (const Superblock& sb : traces_) {
    live += sb.valid ? 1 : 0;
  }
  w.U32(live);
  for (const Superblock& sb : traces_) {
    if (!sb.valid) {
      continue;
    }
    w.U32(sb.start);
    w.U32(sb.exec_len);
    w.U32(sb.len);
    for (const SbSlot& slot : sb.slots) {
      w.U32(slot.raw);
    }
  }
  w.U64(stats_.builds);
  w.U64(stats_.executions);
  w.U64(stats_.chains);
  w.U64(stats_.instructions);
  w.U64(stats_.invalidations);
  w.U64(stats_.evictions);
}

Status SuperblockCache::RestoreState(SnapReader& r) {
  for (Superblock& sb : traces_) {
    sb.valid = false;
  }
  const uint32_t live = r.U32();
  if (!r.ok() || live > kSuperblockEntries) {
    return InvalidArgument("superblock section: bad trace count");
  }
  for (uint32_t i = 0; i < live; ++i) {
    const uint32_t start = r.U32();
    const uint32_t exec_len = r.U32();
    const uint32_t len = r.U32();
    if (!r.ok() || exec_len < kSuperblockMinLen || len < exec_len ||
        len > exec_len + 2 || len > kSuperblockMaxRestoreLen || (start & 3) != 0) {
      return InvalidArgument("superblock section: bad trace geometry");
    }
    std::vector<SbSlot> slots;
    slots.reserve(len);
    for (uint32_t j = 0; j < len; ++j) {
      const uint32_t raw = r.U32();
      const uint32_t addr = start + 4 * j;
      const Decoded d = DecodeInstr(raw);
      SbSlot slot;
      if (j < exec_len) {
        if (!TranslateSlot(d, addr, raw, &slot)) {
          return InvalidArgument("superblock section: untranslatable slot");
        }
      } else {
        slot.exec = SbExec::kFence;
        slot.addr = addr;
        slot.raw = raw;
        slot.d = d;
      }
      slots.push_back(slot);
    }
    MSIM_RETURN_IF_ERROR(r.ToStatus("superblock trace"));
    if (traces_.empty()) {
      // Cache disabled in this core: drop the traces, keep the counters (the
      // executor never runs, so they stay frozen at their restored values).
      continue;
    }
    Superblock& sb = traces_[Index(start)];
    sb.valid = true;
    sb.start = start;
    sb.exec_len = exec_len;
    sb.len = len;
    sb.slots = std::move(slots);
  }
  stats_.builds = r.U64();
  stats_.executions = r.U64();
  stats_.chains = r.U64();
  stats_.instructions = r.U64();
  stats_.invalidations = r.U64();
  stats_.evictions = r.U64();
  return r.ToStatus("superblock counters");
}

}  // namespace msim
