#include "cpu/superblock.h"

#include "isa/decode.h"
#include "mem/bus.h"
#include "mem/phys_mem.h"
#include "mmu/mmu.h"
#include "snap/snapstream.h"

namespace msim {

bool WindowSafeInstr(InstrKind kind) {
  switch (kind) {
    case InstrKind::kLui:
    case InstrKind::kAuipc:
    case InstrKind::kJal:
    case InstrKind::kJalr:
    case InstrKind::kBeq:
    case InstrKind::kBne:
    case InstrKind::kBlt:
    case InstrKind::kBge:
    case InstrKind::kBltu:
    case InstrKind::kBgeu:
    case InstrKind::kAddi:
    case InstrKind::kSlti:
    case InstrKind::kSltiu:
    case InstrKind::kXori:
    case InstrKind::kOri:
    case InstrKind::kAndi:
    case InstrKind::kSlli:
    case InstrKind::kSrli:
    case InstrKind::kSrai:
    case InstrKind::kAdd:
    case InstrKind::kSub:
    case InstrKind::kSll:
    case InstrKind::kSlt:
    case InstrKind::kSltu:
    case InstrKind::kXor:
    case InstrKind::kSrl:
    case InstrKind::kSra:
    case InstrKind::kOr:
    case InstrKind::kAnd:
    case InstrKind::kFence:
    case InstrKind::kMul:
    case InstrKind::kMulh:
    case InstrKind::kMulhsu:
    case InstrKind::kMulhu:
    case InstrKind::kDiv:
    case InstrKind::kDivu:
    case InstrKind::kRem:
    case InstrKind::kRemu:
      return true;
    default:
      return false;
  }
}

bool TraceSafeInstr(InstrKind kind) {
  switch (kind) {
    case InstrKind::kLb:
    case InstrKind::kLh:
    case InstrKind::kLw:
    case InstrKind::kLbu:
    case InstrKind::kLhu:
    case InstrKind::kSb:
    case InstrKind::kSh:
    case InstrKind::kSw:
      return true;
    default:
      return WindowSafeInstr(kind);
  }
}

bool InstrReadsGpr(const Decoded& d, uint8_t reg) {
  if (reg == 0) {
    return false;
  }
  switch (d.kind) {
    // No GPR sources.
    case InstrKind::kLui:
    case InstrKind::kAuipc:
    case InstrKind::kJal:
    case InstrKind::kEcall:
    case InstrKind::kEbreak:
    case InstrKind::kFence:
    case InstrKind::kMenter:
    case InstrKind::kMexit:
    case InstrKind::kRmr:
    case InstrKind::kRcr:
    case InstrKind::kMopr:
      return false;
    // rs1 only.
    case InstrKind::kJalr:
    case InstrKind::kWmr:
    case InstrKind::kWcr:
    case InstrKind::kMopw:
    case InstrKind::kTlbinv:
    case InstrKind::kTlbflush:
    case InstrKind::kTlbrd:
    case InstrKind::kHalt:
    case InstrKind::kMld:
    case InstrKind::kPlw:
      return d.rs1 == reg;
    // rs1 + rs2.
    case InstrKind::kMst:
    case InstrKind::kPsw:
    case InstrKind::kTlbwr:
    case InstrKind::kMintset:
      return d.rs1 == reg || d.rs2 == reg;
    default:
      break;
  }
  switch (d.info().format) {
    case InstrFormat::kR:
    case InstrFormat::kS:
    case InstrFormat::kB:
      return d.rs1 == reg || d.rs2 == reg;
    case InstrFormat::kI:
      return d.rs1 == reg;
    default:
      return false;
  }
}

namespace {

// A word the fetch unit could pull speculatively: aligned and below the MMIO
// aperture (which also excludes the MRAM code range at 0xFFFF0000). Physical
// bounds are checked separately on the RESOLVED address — with paging on the
// two differ. Mirrors the per-cycle fetch eligibility check in
// Core::StepFast (minus the icache probe, which is dynamic and verified at
// every segment entry instead).
bool FetchableVa(uint32_t addr) { return (addr & 3) == 0 && addr < kMmioBase; }

bool FetchablePa(uint32_t paddr, uint32_t dram_size) {
  return paddr < kMmioBase && paddr + 4 <= dram_size;
}

// Marks load slots whose successor reads the loaded register: dispatching
// one costs the per-cycle load-use stall plus a bubble, and the executor
// models exactly that (core.cc). Static because the dynamic StageId hazard
// check is a pure function of two adjacent instructions.
void ComputeStallAfter(std::vector<SbSlot>& slots, uint32_t base, uint32_t exec_len) {
  for (uint32_t i = 0; i + 1 < exec_len; ++i) {
    SbSlot& slot = slots[base + i];
    slot.stall_after = SbIsLoad(slot.exec) && slot.rd != 0 &&
                       InstrReadsGpr(slots[base + i + 1].d, slot.rd);
  }
}

}  // namespace

bool SbAddrSpace::Resolve(uint32_t vaddr, uint32_t* paddr) const {
  if (mmu == nullptr) {
    *paddr = vaddr;
    return true;
  }
  const TranslateResult tr = mmu->ProbeTranslate(vaddr, AccessType::kFetch, asid, keyperm);
  if (!tr.ok) {
    return false;
  }
  *paddr = tr.paddr;
  return true;
}

SuperblockCache::SuperblockCache(bool enabled, uint32_t max_len)
    : max_len_(max_len) {
  if (!enabled || max_len < kSuperblockMinLen) {
    return;
  }
  traces_.resize(kSuperblockEntries);
  mask_ = kSuperblockEntries - 1;
}

bool SuperblockCache::TranslateSlot(const Decoded& d, uint32_t pc, uint32_t raw,
                                    SbSlot* out) {
  using K = InstrKind;
  using E = SbExec;
  const uint32_t imm = static_cast<uint32_t>(d.imm);
  out->rd = d.rd & 31;
  out->rs1 = d.rs1 & 31;
  out->rs2 = d.rs2 & 31;
  out->imm = imm;
  out->cval = 0;
  out->target = 0;
  out->addr = pc;
  out->raw = raw;
  out->d = d;
  switch (d.kind) {
    case K::kLui:
      out->exec = E::kConst;
      out->cval = imm << 12;
      break;
    case K::kAuipc:
      out->exec = E::kConst;
      out->cval = pc + (imm << 12);
      break;
    case K::kJal:
      out->exec = E::kJal;
      out->cval = pc + 4;
      out->target = pc + imm;
      break;
    case K::kJalr:
      out->exec = E::kJalr;
      out->cval = pc + 4;
      break;
    case K::kBeq: out->exec = E::kBeq; out->target = pc + imm; break;
    case K::kBne: out->exec = E::kBne; out->target = pc + imm; break;
    case K::kBlt: out->exec = E::kBlt; out->target = pc + imm; break;
    case K::kBge: out->exec = E::kBge; out->target = pc + imm; break;
    case K::kBltu: out->exec = E::kBltu; out->target = pc + imm; break;
    case K::kBgeu: out->exec = E::kBgeu; out->target = pc + imm; break;
    case K::kAddi: out->exec = E::kAddi; break;
    case K::kSlti: out->exec = E::kSlti; break;
    case K::kSltiu: out->exec = E::kSltiu; break;
    case K::kXori: out->exec = E::kXori; break;
    case K::kOri: out->exec = E::kOri; break;
    case K::kAndi: out->exec = E::kAndi; break;
    case K::kSlli: out->exec = E::kSlli; out->imm = imm & 31; break;
    case K::kSrli: out->exec = E::kSrli; out->imm = imm & 31; break;
    case K::kSrai: out->exec = E::kSrai; out->imm = imm & 31; break;
    case K::kAdd: out->exec = E::kAdd; break;
    case K::kSub: out->exec = E::kSub; break;
    case K::kSll: out->exec = E::kSll; break;
    case K::kSlt: out->exec = E::kSlt; break;
    case K::kSltu: out->exec = E::kSltu; break;
    case K::kXor: out->exec = E::kXor; break;
    case K::kSrl: out->exec = E::kSrl; break;
    case K::kSra: out->exec = E::kSra; break;
    case K::kOr: out->exec = E::kOr; break;
    case K::kAnd: out->exec = E::kAnd; break;
    case K::kFence: out->exec = E::kFence; break;
    case K::kMul: out->exec = E::kMul; break;
    case K::kMulh: out->exec = E::kMulh; break;
    case K::kMulhsu: out->exec = E::kMulhsu; break;
    case K::kMulhu: out->exec = E::kMulhu; break;
    case K::kDiv: out->exec = E::kDiv; break;
    case K::kDivu: out->exec = E::kDivu; break;
    case K::kRem: out->exec = E::kRem; break;
    case K::kRemu: out->exec = E::kRemu; break;
    case K::kLb: out->exec = E::kLb; break;
    case K::kLbu: out->exec = E::kLbu; break;
    case K::kLh: out->exec = E::kLh; break;
    case K::kLhu: out->exec = E::kLhu; break;
    case K::kLw: out->exec = E::kLw; break;
    case K::kSb: out->exec = E::kSb; break;
    case K::kSh: out->exec = E::kSh; break;
    case K::kSw: out->exec = E::kSw; break;
    default:
      return false;
  }
  return true;
}

uint32_t SuperblockCache::WalkSegment(uint32_t start, const PhysicalMemory& dram,
                                      const SbAddrSpace& as,
                                      std::vector<SbSlot>* slots) const {
  const uint32_t base = static_cast<uint32_t>(slots->size());
  uint32_t addr = start;
  // A segment spans at most one virtual-to-physical delta: the executor
  // translates the segment entry once (a consistent delta re-probed per
  // page) and fetches slot words at addr + delta, so a page run mapped with
  // a different offset ends the walk. Identity mapping when paging is off.
  uint32_t delta = 0;
  bool have_delta = false;
  auto resolve = [&](uint32_t va, uint32_t* pa) {
    if (!FetchableVa(va) || !as.Resolve(va, pa) || !FetchablePa(*pa, dram.size())) {
      return false;
    }
    if (!have_delta) {
      delta = *pa - va;
      have_delta = true;
    }
    return *pa - va == delta;
  };
  while (slots->size() - base < max_len_) {
    uint32_t pa = 0;
    if (!resolve(addr, &pa)) {
      break;
    }
    const auto word = dram.Read32(pa);
    if (!word) {
      break;
    }
    const Decoded d = DecodeInstr(*word);
    if (!TraceSafeInstr(d.kind)) {
      break;
    }
    SbSlot slot;
    if (!TranslateSlot(d, addr, *word, &slot)) {
      break;
    }
    slots->push_back(slot);
    addr += 4;
    if (d.kind == InstrKind::kJal || d.kind == InstrKind::kJalr) {
      break;
    }
  }
  const uint32_t exec_len = static_cast<uint32_t>(slots->size()) - base;
  if (exec_len < kSuperblockMinLen) {
    slots->resize(base);
    return 0;
  }
  // Fetch-only tail: the words the pipeline pulls speculatively while the
  // final slots execute (see Superblock::len). Two words even for a
  // jump-terminated segment: under a live load-use skid (depth 1) the
  // frontend runs one fetch ahead, reaching exec_len + 1 on the cycle
  // before the jump dispatches.
  for (uint32_t i = 0; i < 2; ++i) {
    uint32_t pa = 0;
    if (!resolve(addr, &pa)) {
      break;
    }
    const auto word = dram.Read32(pa);
    if (!word) {
      break;
    }
    SbSlot slot;
    slot.exec = SbExec::kFence;  // never dispatched
    slot.addr = addr;
    slot.raw = *word;
    slot.d = DecodeInstr(*word);
    slots->push_back(slot);
    addr += 4;
  }
  ComputeStallAfter(*slots, base, exec_len);
  return exec_len;
}

Superblock* SuperblockCache::Build(uint32_t start, const PhysicalMemory& dram,
                                   const SbAddrSpace& as) {
  if (traces_.empty()) {
    return nullptr;
  }
  std::vector<SbSlot> slots;
  slots.reserve(16);
  const uint32_t exec_len = WalkSegment(start, dram, as, &slots);
  if (exec_len == 0) {
    return nullptr;
  }
  Superblock& sb = traces_[Index(start)];
  if (sb.valid && sb.start != start) {
    ++stats_.evictions;
  }
  sb.valid = true;
  sb.start = start;
  sb.exec_len = exec_len;
  sb.len = static_cast<uint32_t>(slots.size());
  sb.slots = std::move(slots);
  sb.segs.clear();
  sb.segs.push_back(SbSegment{start, 0, exec_len, sb.len});
  sb.grow_pending = false;
  sb.grow_slot = 0;
  ++stats_.builds;
  return &sb;
}

void SuperblockCache::MaybeGrow(Superblock& sb, const PhysicalMemory& dram,
                                const SbAddrSpace& as, uint32_t max_trees) {
  if (!sb.grow_pending) {
    return;
  }
  sb.grow_pending = false;
  const uint32_t slot_index = sb.grow_slot;
  if (slot_index >= sb.slots.size() ||
      sb.slots[slot_index].taken_seg != kSbSegUnlinked) {
    return;
  }
  if (sb.segs.size() - 1 >= max_trees ||
      sb.segs.size() >= kSuperblockMaxRestoreSegs ||
      sb.segs.size() > static_cast<uint32_t>(INT16_MAX)) {
    // Over budget: freeze the branch's counters so it never re-arms growth.
    sb.slots[slot_index].taken_seg = kSbSegNoGrow;
    return;
  }
  const uint32_t target = sb.slots[slot_index].target;
  const uint32_t before = static_cast<uint32_t>(sb.slots.size());
  // WalkSegment may reallocate sb.slots: no slot references survive it.
  const uint32_t exec_len = WalkSegment(target, dram, as, &sb.slots);
  if (exec_len == 0) {
    sb.slots[slot_index].taken_seg = kSbSegNoGrow;
    return;
  }
  const uint32_t seg_index = static_cast<uint32_t>(sb.segs.size());
  sb.segs.push_back(SbSegment{target, before, exec_len,
                              static_cast<uint32_t>(sb.slots.size()) - before});
  sb.slots[slot_index].taken_seg = static_cast<int16_t>(seg_index);
  ++stats_.tree_grows;
}

void SuperblockCache::InvalidateAll() {
  bool any = false;
  for (Superblock& sb : traces_) {
    any |= sb.valid;
    sb.valid = false;
  }
  if (any) {
    ++stats_.invalidations;
  }
}

void SuperblockCache::RegisterMetrics(MetricRegistry& registry) const {
  registry.Register("superblock", "builds", &stats_.builds,
                    "superblock traces constructed");
  registry.Register("superblock", "executions", &stats_.executions,
                    "trace executions entered from the hot-path window");
  registry.Register("superblock", "chains", &stats_.chains,
                    "taken branches chained directly into a cached trace");
  registry.Register("superblock", "instructions", &stats_.instructions,
                    "instructions retired inside superblock traces");
  registry.Register("superblock", "invalidations", &stats_.invalidations,
                    "traces killed by stale raw words or InvalidateAll");
  registry.Register("superblock", "evictions", &stats_.evictions,
                    "builds that overwrote a different live trace");
  registry.Register("superblock", "mem_fast_hits", &stats_.mem_fast_hits,
                    "memory slots dispatched on the in-trace fast path");
  registry.Register("superblock", "mem_slow_exits", &stats_.mem_slow_exits,
                    "trace exits forced by a slow-path memory op");
  registry.Register("superblock", "tree_grows", &stats_.tree_grows,
                    "biased-branch successor segments built");
  registry.Register("superblock", "tree_transitions", &stats_.tree_transitions,
                    "taken branches that stayed in-trace via a tree segment");
}

void SuperblockCache::SaveState(SnapWriter& w) const {
  w.U32(kSuperblockSectionV2);
  w.U32(2);  // section format version
  uint32_t live = 0;
  for (const Superblock& sb : traces_) {
    live += sb.valid ? 1 : 0;
  }
  w.U32(live);
  for (const Superblock& sb : traces_) {
    if (!sb.valid) {
      continue;
    }
    w.U32(sb.start);
    w.U32(static_cast<uint32_t>(sb.segs.size()));
    for (const SbSegment& seg : sb.segs) {
      w.U32(seg.start);
      w.U32(seg.exec_len);
      w.U32(seg.len);
    }
    for (const SbSlot& slot : sb.slots) {
      w.U32(slot.raw);
    }
    for (const SbSlot& slot : sb.slots) {
      w.U32(static_cast<uint32_t>(static_cast<int32_t>(slot.taken_seg)));
      w.U32(slot.taken_n);
      w.U32(slot.nottaken_n);
    }
    w.U8(sb.grow_pending ? 1 : 0);
    w.U32(sb.grow_slot);
  }
  w.U64(stats_.builds);
  w.U64(stats_.executions);
  w.U64(stats_.chains);
  w.U64(stats_.instructions);
  w.U64(stats_.invalidations);
  w.U64(stats_.evictions);
  w.U64(stats_.mem_fast_hits);
  w.U64(stats_.mem_slow_exits);
  w.U64(stats_.tree_grows);
  w.U64(stats_.tree_transitions);
}

Status SuperblockCache::RestoreState(SnapReader& r) {
  for (Superblock& sb : traces_) {
    sb.valid = false;
  }
  const uint32_t first = r.U32();
  if (!r.ok()) {
    return InvalidArgument("superblock section: truncated header");
  }
  // v1 sections (rung 1) lead with the live-trace count, which is bounded by
  // kSuperblockEntries and so can never collide with the v2 sentinel.
  if (first != kSuperblockSectionV2) {
    return RestoreV1(first, r);
  }
  const uint32_t version = r.U32();
  if (!r.ok() || version != 2) {
    return InvalidArgument("superblock section: unsupported version");
  }
  const uint32_t live = r.U32();
  if (!r.ok() || live > kSuperblockEntries) {
    return InvalidArgument("superblock section: bad trace count");
  }
  for (uint32_t i = 0; i < live; ++i) {
    const uint32_t start = r.U32();
    const uint32_t n_segs = r.U32();
    if (!r.ok() || n_segs == 0 || n_segs > kSuperblockMaxRestoreSegs) {
      return InvalidArgument("superblock section: bad segment count");
    }
    std::vector<SbSegment> segs;
    segs.reserve(n_segs);
    uint32_t total = 0;
    for (uint32_t s = 0; s < n_segs; ++s) {
      SbSegment seg;
      seg.start = r.U32();
      seg.exec_len = r.U32();
      seg.len = r.U32();
      seg.base = total;
      if (!r.ok() || seg.exec_len < kSuperblockMinLen || seg.len < seg.exec_len ||
          seg.len > seg.exec_len + 2 || seg.len > kSuperblockMaxRestoreLen ||
          (seg.start & 3) != 0) {
        return InvalidArgument("superblock section: bad segment geometry");
      }
      total += seg.len;
      segs.push_back(seg);
    }
    if (segs[0].start != start) {
      return InvalidArgument("superblock section: root segment mismatch");
    }
    std::vector<SbSlot> slots;
    slots.reserve(total);
    for (const SbSegment& seg : segs) {
      for (uint32_t j = 0; j < seg.len; ++j) {
        const uint32_t raw = r.U32();
        const uint32_t addr = seg.start + 4 * j;
        const Decoded d = DecodeInstr(raw);
        SbSlot slot;
        if (j < seg.exec_len) {
          if (!TranslateSlot(d, addr, raw, &slot)) {
            return InvalidArgument("superblock section: untranslatable slot");
          }
        } else {
          slot.exec = SbExec::kFence;
          slot.addr = addr;
          slot.raw = raw;
          slot.d = d;
        }
        slots.push_back(slot);
      }
    }
    for (uint32_t j = 0; j < total; ++j) {
      const int32_t ts = static_cast<int32_t>(r.U32());
      SbSlot& slot = slots[j];
      slot.taken_n = r.U32();
      slot.nottaken_n = r.U32();
      if (!r.ok() || ts < kSbSegNoGrow || ts >= static_cast<int32_t>(n_segs)) {
        return InvalidArgument("superblock section: bad tree link");
      }
      // A live link is only meaningful on a conditional-branch slot whose
      // taken edge actually lands at the segment start (the executor follows
      // it blind): reject anything else rather than execute a wrong tree.
      if (ts >= 1 &&
          (!SbIsCondBranch(slot.exec) || segs[ts].start != slot.target)) {
        return InvalidArgument("superblock section: inconsistent tree link");
      }
      if (ts == 0) {
        return InvalidArgument("superblock section: link to root segment");
      }
      slot.taken_seg = static_cast<int16_t>(ts);
    }
    const bool grow_pending = r.U8() != 0;
    const uint32_t grow_slot = r.U32();
    if (!r.ok() || (grow_pending && grow_slot >= total)) {
      return InvalidArgument("superblock section: bad growth state");
    }
    for (const SbSegment& seg : segs) {
      ComputeStallAfter(slots, seg.base, seg.exec_len);
    }
    MSIM_RETURN_IF_ERROR(r.ToStatus("superblock trace"));
    if (traces_.empty()) {
      // Cache disabled in this core: drop the traces, keep the counters (the
      // executor never runs, so they stay frozen at their restored values).
      continue;
    }
    Superblock& sb = traces_[Index(start)];
    sb.valid = true;
    sb.start = start;
    sb.exec_len = segs[0].exec_len;
    sb.len = segs[0].len;
    sb.slots = std::move(slots);
    sb.segs = std::move(segs);
    sb.grow_pending = grow_pending;
    sb.grow_slot = grow_slot;
  }
  stats_.builds = r.U64();
  stats_.executions = r.U64();
  stats_.chains = r.U64();
  stats_.instructions = r.U64();
  stats_.invalidations = r.U64();
  stats_.evictions = r.U64();
  stats_.mem_fast_hits = r.U64();
  stats_.mem_slow_exits = r.U64();
  stats_.tree_grows = r.U64();
  stats_.tree_transitions = r.U64();
  return r.ToStatus("superblock counters");
}

Status SuperblockCache::RestoreV1(uint32_t live, SnapReader& r) {
  if (live > kSuperblockEntries) {
    return InvalidArgument("superblock section: bad trace count");
  }
  for (uint32_t i = 0; i < live; ++i) {
    const uint32_t start = r.U32();
    const uint32_t exec_len = r.U32();
    const uint32_t len = r.U32();
    if (!r.ok() || exec_len < kSuperblockMinLen || len < exec_len ||
        len > exec_len + 2 || len > kSuperblockMaxRestoreLen || (start & 3) != 0) {
      return InvalidArgument("superblock section: bad trace geometry");
    }
    std::vector<SbSlot> slots;
    slots.reserve(len);
    for (uint32_t j = 0; j < len; ++j) {
      const uint32_t raw = r.U32();
      const uint32_t addr = start + 4 * j;
      const Decoded d = DecodeInstr(raw);
      SbSlot slot;
      if (j < exec_len) {
        if (!TranslateSlot(d, addr, raw, &slot)) {
          return InvalidArgument("superblock section: untranslatable slot");
        }
      } else {
        slot.exec = SbExec::kFence;
        slot.addr = addr;
        slot.raw = raw;
        slot.d = d;
      }
      slots.push_back(slot);
    }
    ComputeStallAfter(slots, 0, exec_len);
    MSIM_RETURN_IF_ERROR(r.ToStatus("superblock trace"));
    if (traces_.empty()) {
      continue;
    }
    Superblock& sb = traces_[Index(start)];
    sb.valid = true;
    sb.start = start;
    sb.exec_len = exec_len;
    sb.len = len;
    sb.slots = std::move(slots);
    sb.segs.assign(1, SbSegment{start, 0, exec_len, len});
    sb.grow_pending = false;
    sb.grow_slot = 0;
  }
  stats_.builds = r.U64();
  stats_.executions = r.U64();
  stats_.chains = r.U64();
  stats_.instructions = r.U64();
  stats_.invalidations = r.U64();
  stats_.evictions = r.U64();
  return r.ToStatus("superblock counters");
}

}  // namespace msim
